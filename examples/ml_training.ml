(* Machine-learning training with in-network aggregation (Fig. 2 right):
   worker task groups whose gradient aggregation can run on a SHArP-style
   switch tree, saving workers and wall-clock time.

     dune exec examples/ml_training.exe

   Submits the same training jobs twice — once with the SHArP alternative
   available and once server-only — and compares the placement outcome:
   served-with-INC ratio, runtime saving, and server hours consumed. *)

module Comp_store = Hire.Comp_store
module Comp_req = Hire.Comp_req
module Rng = Prelude.Rng

let training_req ~with_inc ~workers =
  let aggregator =
    {
      Comp_req.comp_id = "aggregate";
      template = "aggregator";
      base = { Comp_req.instances = workers; cpu = 16.0; mem = 32.0; duration = 600.0 };
      inc_alternatives = (if with_inc then [ "sharp" ] else []);
    }
  in
  let ps =
    {
      Comp_req.comp_id = "param-server";
      template = "server";
      base = { Comp_req.instances = 2; cpu = 8.0; mem = 64.0; duration = 600.0 };
      inc_alternatives = [];
    }
  in
  {
    Comp_req.priority = Workload.Job.Batch;
    composites = [ aggregator; ps ];
    connections = [ ("aggregate", "param-server") ];
  }

let run_variant ~with_inc =
  let store = Comp_store.default () in
  let cluster =
    Sim.Cluster.create ~inc_capable_fraction:1.0 ~k:6 ~setup:Sim.Cluster.Homogeneous
      ~services:(Array.to_list (Comp_store.service_names store))
      (Rng.create 3)
  in
  let ids = Hire.Transformer.Id_gen.create () in
  let rng = Rng.create 4 in
  let arrivals =
    List.init 4 (fun i ->
        let workers = 16 + (8 * i) in
        let arrival = float_of_int i *. 2.0 in
        ( arrival,
          Hire.Transformer.transform store ids rng ~job_id:i ~arrival
            (training_req ~with_inc ~workers) ))
  in
  let sched = Schedulers.Registry.create "hire" ~seed:1 cluster in
  let result = Sim.Simulator.run cluster sched arrivals in
  (result.Sim.Simulator.report, arrivals)

let server_hours arrivals (r : Sim.Metrics.report) =
  ignore r;
  (* Account the chosen variants' server work from the poly reqs is not
     directly observable here; approximate with CPU-seconds of all server
     groups that were satisfied. *)
  List.fold_left
    (fun acc (_, poly) ->
      List.fold_left
        (fun acc (tg : Hire.Poly_req.task_group) ->
          if Hire.Poly_req.is_network tg then acc
          else acc +. (float_of_int tg.count *. tg.duration /. 3600.0))
        acc poly.Hire.Poly_req.task_groups)
    0.0 arrivals

let () =
  Format.printf "training with SHArP in-network aggregation available:@.";
  let with_inc, arr_inc = run_variant ~with_inc:true in
  Format.printf "  %a@." Sim.Metrics.pp_report with_inc;
  Format.printf "  aggregation trees served in-network: %d/%d@."
    with_inc.Sim.Metrics.inc_jobs_served with_inc.Sim.Metrics.inc_jobs_total;

  Format.printf "@.training server-only (no INC alternative):@.";
  let without_inc, _arr_plain = run_variant ~with_inc:false in
  Format.printf "  %a@." Sim.Metrics.pp_report without_inc;

  (* The INC variant shrinks the worker group and its runtime by the
     service's saving factor (capped at 10% per the paper's methodology),
     freeing server capacity for other tenants. *)
  let lat r = Obs.Histogram.quantile r.Sim.Metrics.placement_latency 0.5 in
  Format.printf "@.median placement latency: with INC %.3fs, without %.3fs@."
    (lat with_inc) (lat without_inc);
  Format.printf "requested server-hours (both variants submitted): %.1f@."
    (server_hours arr_inc with_inc);
  Format.printf "done.@."
