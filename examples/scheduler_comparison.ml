(* Head-to-head scheduler comparison on one synthetic trace — a miniature
   of the paper's evaluation (§6), runnable in seconds:

     dune exec examples/scheduler_comparison.exe

   Prints, per scheduler: satisfied INC jobs, unserved INC task groups,
   mean switch detour, and placement-latency percentiles. *)

let () =
  let spec =
    {
      Harness.Experiment.default with
      k = 8;
      mu = 1.0;
      horizon = 200.0;
      target_utilization = 0.8;
    }
  in
  Format.printf
    "mini evaluation: k=%d fat tree, mu=%.1f, %.0fs trace, homogeneous switches@.@."
    spec.Harness.Experiment.k spec.Harness.Experiment.mu spec.Harness.Experiment.horizon;
  Format.printf "%-20s %10s %12s %9s %9s %9s@." "scheduler" "inc-served" "tg-unserved"
    "detour" "lat-p50" "lat-p99";
  List.iter
    (fun scheduler ->
      let r = Harness.Experiment.run { spec with scheduler } in
      let lat q = Obs.Histogram.quantile r.Sim.Metrics.placement_latency q in
      Format.printf "%-20s %9.1f%% %11.1f%% %9.2f %8.2fs %8.2fs@." scheduler
        (100.0 *. Sim.Metrics.inc_satisfaction_ratio r)
        (100.0 *. Sim.Metrics.inc_tg_unserved_ratio r)
        r.Sim.Metrics.detour_mean (lat 0.5) (lat 0.99))
    [
      "hire";
      "hire-simple";
      "yarn-concurrent";
      "yarn-timeout";
      "k8-concurrent";
      "k8-timeout";
      "sparrow-concurrent";
      "sparrow-timeout";
      "coco-timeout";
    ];
  Format.printf
    "@.expected shape (paper Fig. 8): HIRE serves the most INC jobs; K8++ is the@.";
  Format.printf "best baseline; Yarn++ has by far the worst detours; Sparrow++ starves.@."
