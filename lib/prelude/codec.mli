(** Deterministic binary codec for the journal subsystem
    (docs/JOURNAL.md).

    Integers are LEB128 varints (zigzag for signed), floats are their
    exact IEEE-754 bits little-endian, strings and sequences are
    length-prefixed.  Encoding the same value always yields the same
    bytes, so journal validation can compare records byte-for-byte, and
    decoding restores floats bit-exactly — the property crash recovery
    rests on. *)

(** Raised by every decoder on malformed input; callers at the journal
    layer convert it into a structured journal error. *)
exception Error of string

module Enc : sig
  type t

  val create : ?initial:int -> unit -> t
  val to_string : t -> string
  val byte : t -> int -> unit

  (** Unsigned LEB128.  @raise Invalid_argument on negatives. *)
  val uint : t -> int -> unit

  (** Zigzag varint: small negatives encode small. *)
  val int : t -> int -> unit

  val bool : t -> bool -> unit

  (** Exact IEEE-754 bits, little-endian. *)
  val f64 : t -> float -> unit

  val string : t -> string -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val array : t -> (t -> 'a -> unit) -> 'a array -> unit
  val float_array : t -> float array -> unit
end

module Dec : sig
  type t

  val of_string : string -> t
  val remaining : t -> int
  val at_end : t -> bool
  val byte : t -> int
  val uint : t -> int
  val int : t -> int
  val bool : t -> bool
  val f64 : t -> float
  val string : t -> string
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val float_array : t -> float array
end

(** [decode_string blob f] runs a decoder, catching {!Error} (and
    [Invalid_argument] from validating constructors) into [Result]. *)
val decode_string : string -> (Dec.t -> 'a) -> ('a, string) result
