(** Summary statistics used by metrics collection and the experiment
    harness (means, standard deviations, percentiles, CDF/CCDF tables,
    online accumulators). *)

(** [mean xs] is the arithmetic mean; 0 on the empty list. *)
val mean : float list -> float

val mean_arr : float array -> float

(** [stddev xs] is the population standard deviation; 0 on fewer than two
    samples. *)
val stddev : float list -> float

val stddev_arr : float array -> float

(** [percentile p xs] is the [p]-th percentile ([p] in [\[0,100\]]) using
    linear interpolation between order statistics.  Raises
    [Invalid_argument] on an empty list. *)
val percentile : float -> float list -> float

(** [percentiles ps xs] computes several percentiles with a single
    sort. *)
val percentiles : float list -> float list -> (float * float) list

(** [cdf_points ~points xs] returns [points] evenly spaced (value,
    cumulative-fraction) pairs describing the empirical CDF. *)
val cdf_points : points:int -> float list -> (float * float) list

(** [ccdf_points ~points xs] is the complementary CDF (value, 1 - F). *)
val ccdf_points : points:int -> float list -> (float * float) list

(** Online mean/min/max/count accumulator. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val min : t -> float  (** [infinity] when empty *)

  val max : t -> float  (** [neg_infinity] when empty *)
end

(** Reservoir sampler keeping at most [capacity] uniformly-chosen samples
    out of an unbounded stream.  Kept as a general-purpose utility
    (exercised by the property tests); production latency distributions
    are tracked with [Obs.Histogram] instead, which is mergeable and
    needs no RNG. *)
module Reservoir : sig
  type t

  val create : ?capacity:int -> Rng.t -> t
  val add : t -> float -> unit
  val count : t -> int  (** total observations, not just retained ones *)

  val samples : t -> float list
end
