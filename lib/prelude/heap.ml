type 'a t = { cmp : 'a -> 'a -> int; mutable data : 'a array; mutable size : int }

let create ~cmp = { cmp; data = [||]; size = 0 }
let is_empty t = t.size = 0
let size t = t.size

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 8 (2 * cap) in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then raise Not_found;
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  top

let peek t = if t.size = 0 then raise Not_found else t.data.(0)
let clear t = t.size <- 0
let to_list t = Array.to_list (Array.sub t.data 0 t.size)

(* Monomorphic (int key, int value) min-heap on parallel arrays: no
   tuple boxing, no polymorphic-compare dispatch.  Ordering is the
   canonical lexicographic (key, value) order — equal keys break ties
   toward the smaller value — so pop order is a total order independent
   of insertion order.  This is the property that makes the heap
   interchangeable with the monotone bucket queue (Bucket_queue) on the
   Dijkstra hot path: both serve entries in exactly the same sequence,
   so the solver's tie-breaking does not depend on which queue was
   selected.

   No decrease-key is needed (or provided): Dijkstra pushes a fresh
   entry on every distance improvement and lazily skips stale entries
   at pop time (popped key > current dist).  Since improvements are
   strictly decreasing per node, duplicate (key, value) entries cannot
   occur, and the lexicographic order stays total in practice. *)
module Int_pair = struct
  type t = { mutable key : int array; mutable value : int array; mutable size : int }

  let create () = { key = [||]; value = [||]; size = 0 }
  let is_empty t = t.size = 0
  let size t = t.size
  let clear t = t.size <- 0

  let grow t =
    let cap = Array.length t.key in
    if t.size = cap then begin
      let ncap = max 8 (2 * cap) in
      let nkey = Array.make ncap 0 and nvalue = Array.make ncap 0 in
      Array.blit t.key 0 nkey 0 t.size;
      Array.blit t.value 0 nvalue 0 t.size;
      t.key <- nkey;
      t.value <- nvalue
    end

  let swap t i j =
    let k = t.key.(i) and v = t.value.(i) in
    t.key.(i) <- t.key.(j);
    t.value.(i) <- t.value.(j);
    t.key.(j) <- k;
    t.value.(j) <- v

  (* Lexicographic (key, value) comparison. *)
  let less t i j =
    t.key.(i) < t.key.(j) || (t.key.(i) = t.key.(j) && t.value.(i) < t.value.(j))

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && less t l !smallest then smallest := l;
    if r < t.size && less t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t k v =
    grow t;
    t.key.(t.size) <- k;
    t.value.(t.size) <- v;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let min_key t =
    if t.size = 0 then raise Not_found;
    t.key.(0)

  let pop t =
    if t.size = 0 then raise Not_found;
    let top = t.value.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.key.(0) <- t.key.(t.size);
      t.value.(0) <- t.value.(t.size);
      sift_down t 0
    end;
    top
end
