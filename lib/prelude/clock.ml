external now : unit -> float = "hire_clock_monotonic_s"

let elapsed_since t0 = Float.max 0.0 (now () -. t0)
