(* Int-keyed hash table with a monomorphic hash.  The generic [Hashtbl]
   funnels every lookup through the polymorphic [Hashtbl.hash]; for the
   dense-int keys used throughout the solver hot paths (arc ids, node
   ids, task-group ids) a direct identity hash avoids that dispatch and
   the boxing it drags in. *)

include Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b

  (* [land max_int] clears the sign bit: Hashtbl requires non-negative
     hashes. *)
  let hash (x : int) = x land max_int
end)
