(** Monotonic clock for measuring durations.

    [Unix.gettimeofday] follows the system wall clock, which NTP can
    step backwards or forwards at any moment; a duration computed from
    two wall-clock reads can be negative or wildly wrong.  Everything in
    this codebase that measures an {e elapsed time} — solver wall times,
    solver budgets ({!Flow.Budget}), runner per-cell timing — must use
    this clock instead.  Wall-clock timestamps (absolute instants in
    trace records) legitimately stay on [Unix.gettimeofday].

    Backed by [clock_gettime(CLOCK_MONOTONIC)]; the epoch is arbitrary
    (typically boot time), so only differences between two reads are
    meaningful. *)

(** Seconds since an arbitrary fixed point; strictly non-decreasing
    within a process. *)
val now : unit -> float

(** [elapsed_since t0] is [now () -. t0], clamped to be non-negative. *)
val elapsed_since : float -> float
