let mean_arr xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let mean xs = mean_arr (Array.of_list xs)

let stddev_arr xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean_arr xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int n)
  end

let stddev xs = stddev_arr (Array.of_list xs)

let percentile_sorted p sorted =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile p xs =
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  percentile_sorted p arr

let percentiles ps xs =
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  List.map (fun p -> (p, percentile_sorted p arr)) ps

let cdf_points ~points xs =
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 0 then []
  else
    List.init points (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int points in
        let idx = min (n - 1) (int_of_float (ceil (frac *. float_of_int n)) - 1) in
        (arr.(max 0 idx), frac))

let ccdf_points ~points xs =
  List.map (fun (v, f) -> (v, 1.0 -. f)) (cdf_points ~points xs)

module Acc = struct
  type t = {
    mutable count : int;
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () = { count = 0; total = 0.0; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count
  let min t = t.min_v
  let max t = t.max_v
end

module Reservoir = struct
  type t = { rng : Rng.t; capacity : int; mutable seen : int; buf : float array }

  let create ?(capacity = 20_000) rng =
    if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
    { rng; capacity; seen = 0; buf = Array.make capacity 0.0 }

  let add t x =
    if t.seen < t.capacity then t.buf.(t.seen) <- x
    else begin
      (* Vitter's algorithm R: replace a random slot with decaying
         probability capacity/seen. *)
      let j = Rng.int t.rng (t.seen + 1) in
      if j < t.capacity then t.buf.(j) <- x
    end;
    t.seen <- t.seen + 1

  let count t = t.seen
  let samples t = Array.to_list (Array.sub t.buf 0 (min t.seen t.capacity))
end
