(** IEEE CRC-32 (the zlib polynomial), table-driven, pure OCaml.

    Used by the write-ahead journal (lib/journal) to checksum record
    frames and checkpoint blobs; 32-bit values are carried in native
    ints (always non-negative). *)

(** [string s] is the CRC-32 of the whole string. *)
val string : string -> int

(** [update crc s ~pos ~len] extends a running checksum ([0] for an
    empty prefix) over a substring.
    @raise Invalid_argument on an out-of-bounds substring. *)
val update : int -> string -> pos:int -> len:int -> int
