(** Imperative binary min-heap, parameterised by an ordering.

    Used by the MCMF solver (Dijkstra priority queue) and by the
    discrete-event simulator (pending-event queue). *)

type 'a t

(** [create ~cmp] makes an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

(** [pop t] removes and returns the minimum element.
    @raise Not_found when empty. *)
val pop : 'a t -> 'a

(** [peek t] returns the minimum without removing it.
    @raise Not_found when empty. *)
val peek : 'a t -> 'a

val clear : 'a t -> unit

(** [to_list t] returns the elements in unspecified order. *)
val to_list : 'a t -> 'a list

(** Monomorphic (int key, int value) min-heap on parallel int arrays.

    Allocation-free in steady state: [push]/[pop] reuse the backing
    arrays, and [clear] resets without freeing, so a heap held across
    Dijkstra runs never reallocates once warmed up.

    Ordering is the canonical lexicographic (key, value) order: among
    equal keys the smaller value pops first.  {!Bucket_queue} pops in
    the same order, so the MCMF solver can select either queue per
    solve without perturbing tie-breaking.  There is deliberately no
    decrease-key: Dijkstra pushes a new entry per improvement and skips
    stale ones at pop time, which keeps every operation O(log n) with
    zero bookkeeping. *)
module Int_pair : sig
  type t

  val create : unit -> t
  val is_empty : t -> bool
  val size : t -> int

  (** Reset to empty, keeping the backing arrays for reuse. *)
  val clear : t -> unit

  val push : t -> int -> int -> unit

  (** Key of the minimum entry.  @raise Not_found when empty. *)
  val min_key : t -> int

  (** Remove the minimum entry and return its {e value} (read the key
      with {!min_key} first if needed).  @raise Not_found when empty. *)
  val pop : t -> int
end
