exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module Enc = struct
  type t = Buffer.t

  let create ?(initial = 256) () = Buffer.create initial
  let to_string = Buffer.contents

  let byte b v = Buffer.add_char b (Char.chr (v land 0xFF))

  (* Unsigned LEB128 over the full 63-bit native range. *)
  let uint b v =
    if v < 0 then invalid_arg "Codec.Enc.uint: negative";
    let rec go v =
      if v < 0x80 then byte b v
      else begin
        byte b (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  (* Raw 63-bit varint: logical shifts, so bit patterns with the sign
     bit set (zigzagged extremes like [min_int]) still encode. *)
  let varint_bits b v =
    let rec go v =
      if v land lnot 0x7F = 0 then byte b v
      else begin
        byte b (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  (* Zigzag so small negatives stay small (requeue job ids are negative).
     [lsl] wraps, which is exactly what full-width zigzag needs: the
     decoder's [(v lsr 1) lxor (-(v land 1))] inverts it bit for bit. *)
  let int b v = varint_bits b ((v lsl 1) lxor (v asr 62))
  let bool b v = byte b (if v then 1 else 0)

  let f64 b v =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      byte b (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF)
    done

  let string b s =
    uint b (String.length s);
    Buffer.add_string b s

  let option b f = function
    | None -> bool b false
    | Some v ->
        bool b true;
        f b v

  let list b f l =
    uint b (List.length l);
    List.iter (f b) l

  let array b f a =
    uint b (Array.length a);
    Array.iter (f b) a

  let float_array b a = array b f64 a
end

module Dec = struct
  type t = { s : string; mutable pos : int }

  let of_string s = { s; pos = 0 }
  let remaining d = String.length d.s - d.pos
  let at_end d = remaining d = 0

  let byte d =
    if d.pos >= String.length d.s then fail "unexpected end of input at %d" d.pos;
    let c = Char.code (String.unsafe_get d.s d.pos) in
    d.pos <- d.pos + 1;
    c

  let uint d =
    let rec go shift acc =
      if shift > 62 then fail "varint overflow at %d" d.pos;
      let b = byte d in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int d =
    let v = uint d in
    (v lsr 1) lxor (-(v land 1))

  let bool d =
    match byte d with
    | 0 -> false
    | 1 -> true
    | b -> fail "bad bool byte %d at %d" b d.pos

  let f64 d =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte d)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string d =
    let n = uint d in
    if n > remaining d then fail "string length %d exceeds input at %d" n d.pos;
    let s = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    s

  let option d f = if bool d then Some (f d) else None

  let list d f =
    let n = uint d in
    List.init n (fun _ -> f d)

  let array d f =
    let n = uint d in
    if n > remaining d then fail "array length %d exceeds input at %d" n d.pos;
    Array.init n (fun _ -> f d)

  let float_array d = array d f64
end

let decode_string blob f =
  try Ok (f (Dec.of_string blob)) with
  | Error msg -> Result.Error msg
  | Invalid_argument msg -> Result.Error msg
