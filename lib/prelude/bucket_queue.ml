(* Monotone integer bucket queue for Dijkstra on small non-negative
   keys.  One growable int array of node ids per key ("bucket"), an
   occupancy bitset for O(1)-amortized find-next-nonempty, and a
   monotone front cursor: pops never go backwards, which is exactly the
   access pattern of Dijkstra with non-negative reduced costs.

   Pop order is the canonical lexicographic (key, value) order — the
   same total order the monomorphic binary heap (Heap.Int_pair) pops in
   — so the two queues are interchangeable on the solver hot path
   without perturbing tie-breaking.  Within a bucket the minimum value
   is served by lazily heapifying the bucket (on values) the first time
   the front cursor lands on it; same-key pushes arriving while the
   bucket is being drained sift into the live heap.

   Generation stamps make [clear] O(1): per-bucket stamps mark which
   buckets hold current-generation entries, and the occupancy bitset is
   allowed to carry stale bits — the scan verifies against the stamp
   and scrubs as it goes. *)

type t = {
  mutable buckets : int array array;  (* per-key value arrays *)
  mutable blen : int array;           (* live entries per bucket *)
  mutable bgen : int array;           (* generation that owns blen *)
  mutable occ : int array;            (* occupancy bitset, stale bits ok *)
  mutable nkeys : int;                (* usable key range [0, nkeys) *)
  mutable gen : int;
  mutable front : int;                (* monotone minimum-key cursor *)
  mutable active : int;               (* heapified bucket key, -1 = none *)
  mutable size : int;
}

let create () =
  {
    buckets = [||];
    blen = [||];
    bgen = [||];
    occ = [||];
    nkeys = 0;
    gen = 0;
    front = 0;
    active = -1;
    size = 0;
  }

let is_empty t = t.size = 0
let size t = t.size

let clear t =
  t.gen <- t.gen + 1;
  t.front <- 0;
  t.active <- -1;
  t.size <- 0

(* 32 occupancy bits per word: OCaml ints are 63-bit, so 64-bit words
   would need [1 lsl 63], which overflows.  32 keeps every shift in
   range while preserving power-of-two index arithmetic. *)
let word k = k lsr 5
let bit k = 1 lsl (k land 31)

let ensure_key t k =
  if k >= t.nkeys then begin
    let cap = max (k + 1) (max 64 (2 * t.nkeys)) in
    let nb = Array.make cap [||] in
    Array.blit t.buckets 0 nb 0 t.nkeys;
    let nl = Array.make cap 0 in
    Array.blit t.blen 0 nl 0 t.nkeys;
    (* New buckets start one generation behind, so their lengths read as
       empty until first touched. *)
    let ng = Array.make cap (t.gen - 1) in
    Array.blit t.bgen 0 ng 0 t.nkeys;
    let nocc = Array.make ((cap lsr 5) + 1) 0 in
    Array.blit t.occ 0 nocc 0 (Array.length t.occ);
    t.buckets <- nb;
    t.blen <- nl;
    t.bgen <- ng;
    t.occ <- nocc;
    t.nkeys <- cap
  end

let bucket_append t k v =
  let b = t.buckets.(k) in
  let len = t.blen.(k) in
  if len = Array.length b then begin
    let nb = Array.make (max 4 (2 * len)) 0 in
    Array.blit b 0 nb 0 len;
    nb.(len) <- v;
    t.buckets.(k) <- nb
  end
  else b.(len) <- v;
  t.blen.(k) <- len + 1

(* Min-heap on values inside one bucket (used only for the bucket the
   front cursor is draining). *)
let rec sift_up b i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if b.(i) < b.(p) then begin
      let tmp = b.(i) in
      b.(i) <- b.(p);
      b.(p) <- tmp;
      sift_up b p
    end
  end

let rec sift_down b len i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = ref i in
  if l < len && b.(l) < b.(!s) then s := l;
  if r < len && b.(r) < b.(!s) then s := r;
  if !s <> i then begin
    let tmp = b.(i) in
    b.(i) <- b.(!s);
    b.(!s) <- tmp;
    sift_down b len !s
  end

let heapify b len =
  for i = (len / 2) - 1 downto 0 do
    sift_down b len i
  done

let push t k v =
  if k < 0 then invalid_arg "Bucket_queue.push: negative key";
  if k < t.front then
    invalid_arg
      (Printf.sprintf "Bucket_queue.push: key %d below monotone front %d" k t.front);
  ensure_key t k;
  if t.bgen.(k) <> t.gen then begin
    t.bgen.(k) <- t.gen;
    t.blen.(k) <- 0
  end;
  bucket_append t k v;
  if k = t.active then sift_up t.buckets.(k) (t.blen.(k) - 1);
  t.occ.(word k) <- t.occ.(word k) lor bit k;
  t.size <- t.size + 1

let live t k = t.bgen.(k) = t.gen && t.blen.(k) > 0

(* Advance [front] to the smallest key >= front with a live bucket,
   scrubbing stale occupancy bits along the way.  Word-at-a-time: a zero
   word skips 32 keys in one test. *)
let advance t =
  let k = ref t.front in
  let found = ref (-1) in
  let nwords = Array.length t.occ in
  while !found < 0 && word !k < nwords do
    let w = word !k in
    let masked = t.occ.(w) land lnot (bit !k - 1) in
    if masked = 0 then k := (w + 1) lsl 5
    else begin
      (* Lowest set bit at or above !k in this word. *)
      let b = masked land -masked in
      let idx = ref 0 in
      let bb = ref b in
      while !bb land 1 = 0 do
        incr idx;
        bb := !bb lsr 1
      done;
      let key = (w lsl 5) + !idx in
      if key < t.nkeys && live t key then found := key
      else begin
        t.occ.(w) <- t.occ.(w) land lnot b;
        k := key + 1
      end
    end
  done;
  if !found < 0 then raise Not_found;
  if !found <> t.front then t.active <- -1;
  t.front <- !found;
  !found

let min_key t =
  if t.size = 0 then raise Not_found;
  advance t

let pop t =
  if t.size = 0 then raise Not_found;
  let k = advance t in
  if t.active <> k then begin
    heapify t.buckets.(k) t.blen.(k);
    t.active <- k
  end;
  let b = t.buckets.(k) in
  let len = t.blen.(k) in
  let top = b.(0) in
  let len = len - 1 in
  if len > 0 then begin
    b.(0) <- b.(len);
    sift_down b len 0
  end
  else begin
    t.occ.(word k) <- t.occ.(word k) land lnot (bit k);
    t.active <- -1
  end;
  t.blen.(k) <- len;
  t.size <- t.size - 1;
  top
