(** Int-keyed hash table ([Hashtbl.Make] over [int]) with a monomorphic
    identity hash — no polymorphic [Hashtbl.hash] dispatch on lookups.
    Use for hot-path tables keyed by dense integer ids (graph arcs,
    nodes, task groups); see [make lint-compare]. *)

include Hashtbl.S with type key = int
