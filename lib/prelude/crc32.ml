(* Table-driven IEEE CRC-32 (polynomial 0xEDB88320, the zlib/Ethernet
   one).  Pure OCaml: the journal cannot take a zlib dependency, and the
   63-bit native int comfortably holds the 32-bit registers. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask = 0xFFFFFFFF

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: bad substring";
  let table = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask land mask

let string s = update 0 s ~pos:0 ~len:(String.length s)
