/* Monotonic clock primitive for Prelude.Clock.

   CLOCK_MONOTONIC is immune to NTP steps and manual clock changes, so
   durations derived from it can never be negative and solver budgets
   can never be exhausted (or extended) by a wall-clock jump.  OCaml
   5.1's stdlib exposes no monotonic clock and Mtime is not a
   dependency, hence this tiny stub. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value hire_clock_monotonic_s(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
