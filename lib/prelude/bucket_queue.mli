(** Monotone integer bucket queue (radix-style priority queue) for
    Dijkstra with small non-negative integer keys.

    Drop-in alternative to {!Heap.Int_pair} on the solver hot path:
    [push]/[min_key]/[pop] have the same signatures, and pops follow the
    same canonical lexicographic (key, value) order, so a search that
    never pushes a key below the last popped one (the monotone property
    of Dijkstra with non-negative reduced costs) gets identical results
    from either queue — including tie-breaking among equal keys.

    Memory is proportional to the largest key pushed since creation
    (one growable bucket per key plus a bitset word per 64 keys);
    [clear] is O(1) via generation stamps and keeps all backing storage
    for reuse, so a queue held across solver rounds stops allocating
    once warmed up. *)

type t

val create : unit -> t
val is_empty : t -> bool
val size : t -> int

(** Reset to empty, keeping backing storage.  O(1). *)
val clear : t -> unit

(** [push t k v] inserts value [v] with key [k].
    @raise Invalid_argument if [k] is negative or below the monotone
    front (a key smaller than one already popped). *)
val push : t -> int -> int -> unit

(** Smallest live key.  @raise Not_found when empty. *)
val min_key : t -> int

(** Remove the minimum entry — smallest key, smallest value within the
    key — and return its value.  @raise Not_found when empty. *)
val pop : t -> int
