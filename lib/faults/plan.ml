module Rng = Prelude.Rng

type kind = Fail | Recover

type event = { time : float; node : int; kind : kind }

type t = { events : event list }

type config = {
  server_mtbf : float;
  server_mttr : float;
  switch_mtbf : float;
  switch_mttr : float;
  inc_weight : float;
}

let default_config =
  {
    server_mtbf = 200.0;
    server_mttr = 30.0;
    switch_mtbf = 400.0;
    switch_mttr = 30.0;
    inc_weight = 1.0;
  }

let kind_to_string = function Fail -> "fail" | Recover -> "recover"

let pp_event fmt e =
  Format.fprintf fmt "%.3fs node=%d %s" e.time e.node (kind_to_string e.kind)

(* Cross-node ties break on (node, kind) so a plan is a deterministic
   function of its event multiset; Fail sorts before Recover only via
   per-node alternation (a node never fails and recovers at the same
   instant — [generate] separates them by at least [min_downtime]). *)
let order a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else
    let c = compare a.node b.node in
    if c <> 0 then c
    else compare (a.kind = Recover) (b.kind = Recover)

let validate events =
  let last : (int, float * kind) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if not (Float.is_finite e.time) || e.time < 0.0 then
        invalid_arg "Faults.Plan: event times must be finite and non-negative";
      match (Hashtbl.find_opt last e.node, e.kind) with
      | None, Fail -> Hashtbl.replace last e.node (e.time, Fail)
      | None, Recover ->
          invalid_arg
            (Printf.sprintf "Faults.Plan: node %d recovers before any failure" e.node)
      | Some (_, Fail), Fail | Some (_, Recover), Recover ->
          invalid_arg
            (Printf.sprintf "Faults.Plan: node %d has consecutive %s events" e.node
               (kind_to_string e.kind))
      | Some (t0, _), _ ->
          if e.time <= t0 then
            invalid_arg
              (Printf.sprintf "Faults.Plan: node %d events not strictly increasing" e.node);
          Hashtbl.replace last e.node (e.time, e.kind))
    events;
  events

let scripted events = { events = validate (List.sort order events) }

let events t = t.events
let is_empty t = t.events = []
let length t = List.length t.events
let fail_count t = List.length (List.filter (fun e -> e.kind = Fail) t.events)

(* Lower bound on repair time: zero-length outages would make a fail and
   its recover coincide, where event order stops being meaningful. *)
let min_downtime = 1e-3

let check_config c =
  if c.server_mtbf <= 0.0 || c.switch_mtbf <= 0.0 then
    invalid_arg "Faults.Plan.generate: MTBF must be positive";
  if c.server_mttr <= 0.0 || c.switch_mttr <= 0.0 then
    invalid_arg "Faults.Plan.generate: MTTR must be positive";
  if c.inc_weight <= 0.0 then invalid_arg "Faults.Plan.generate: inc_weight must be positive"

let generate ?(inc_capable = fun _ -> false) config rng ~servers ~switches ~horizon =
  check_config config;
  if not (Float.is_finite horizon) || horizon < 0.0 then
    invalid_arg "Faults.Plan.generate: horizon must be finite and non-negative";
  let events = ref [] in
  (* One split stream per node, drawn in deterministic array order, so a
     node's fail/repair history is independent of every other node's. *)
  let gen_node node ~mtbf ~mttr =
    let r = Rng.split rng in
    let rec go t =
      let fail_t = t +. Rng.exponential r ~mean:mtbf in
      if fail_t <= horizon then begin
        let recover_t = fail_t +. Float.max min_downtime (Rng.exponential r ~mean:mttr) in
        events :=
          { time = recover_t; node; kind = Recover }
          :: { time = fail_t; node; kind = Fail }
          :: !events;
        go recover_t
      end
    in
    go 0.0
  in
  Array.iter
    (fun s -> gen_node s ~mtbf:config.server_mtbf ~mttr:config.server_mttr)
    servers;
  Array.iter
    (fun s ->
      let weight = if inc_capable s then config.inc_weight else 1.0 in
      gen_node s ~mtbf:(config.switch_mtbf /. weight) ~mttr:config.switch_mttr)
    switches;
  scripted !events
