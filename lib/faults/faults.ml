(** Deterministic fault injection for the cluster simulator.

    {!Plan} scripts {e which} nodes fail and recover when (seeded
    exponential MTBF/MTTR, or hand-written for tests); {!Policy} says
    what happens to the task groups a failure kills (requeue with
    exponential backoff, cancel on budget exhaustion).  The simulator
    consumes both; this library holds no mutable state of its own, so a
    plan can be replayed against any scheduler.  See docs/FAULTS.md. *)

module Plan = Plan
module Policy = Policy

(** Everything an experiment needs to run with faults enabled. *)
type spec = { plan : Plan.config; policy : Policy.t }

let default_spec = { plan = Plan.default_config; policy = Policy.default }
