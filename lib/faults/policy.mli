(** Retry/backoff policy for task groups whose tasks were killed by a
    node failure: requeue with exponential backoff, cancel once the
    retry budget is exhausted. *)

type t = {
  max_retries : int;  (** requeue attempts per task group before cancelling *)
  backoff : float;  (** first retry delay, seconds *)
  multiplier : float;  (** exponential backoff factor (>= 1) *)
}

(** 3 retries, 1 s initial backoff, doubling. *)
val default : t

(** Validating constructor.
    @raise Invalid_argument on a negative retry budget, non-positive
    backoff, or multiplier below 1. *)
val create : ?max_retries:int -> ?backoff:float -> ?multiplier:float -> unit -> t

(** [delay t ~attempt] is the requeue delay of the [attempt]-th retry
    (1-based): [backoff * multiplier ^ (attempt - 1)]. *)
val delay : t -> attempt:int -> float
