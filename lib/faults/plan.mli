(** Deterministic fault plans: a time-ordered script of node failures
    and recoveries, generated from exponential MTBF/MTTR draws per node
    (the renewal model used by DCSim-style co-simulators) or written by
    hand for tests.

    A plan is a pure value; the simulator replays it as
    [Node_fail]/[Node_recover] events.  Per node the events strictly
    alternate Fail → Recover → Fail … at strictly increasing times, so a
    plan can never take a dead node down again.  Reproducibility: the
    same {!config}, seed, node sets, and horizon yield the identical
    plan. *)

type kind = Fail | Recover

type event = {
  time : float;  (** simulated seconds *)
  node : int;  (** fat-tree node id (server or switch) *)
  kind : kind;
}

type t

(** MTBF/MTTR in simulated seconds (exponential renewal per node).
    [inc_weight] scales the failure {e rate} of INC-capable switches
    ([> 1.0] makes them fail more often — the paper's premise that
    programmable-switch state is the fragile resource). *)
type config = {
  server_mtbf : float;
  server_mttr : float;
  switch_mtbf : float;
  switch_mttr : float;
  inc_weight : float;
}

(** MTBF 200 s (servers) / 400 s (switches), MTTR 30 s, weight 1. *)
val default_config : config

(** [generate config rng ~servers ~switches ~horizon] draws a plan: per
    node an alternating fail/repair renewal process with the configured
    means, truncated so that every failure happens at or before
    [horizon] (matching recoveries may land later).  [inc_capable]
    applies [config.inc_weight] to the switches it selects.
    @raise Invalid_argument on non-positive means or weight. *)
val generate :
  ?inc_capable:(int -> bool) ->
  config ->
  Prelude.Rng.t ->
  servers:int array ->
  switches:int array ->
  horizon:float ->
  t

(** [scripted events] sorts and validates an explicit plan (tests).
    @raise Invalid_argument unless per-node events strictly alternate
    Fail/Recover at strictly increasing, finite, non-negative times. *)
val scripted : event list -> t

(** Events in replay order: by time, ties by node id then kind. *)
val events : t -> event list

val is_empty : t -> bool
val length : t -> int
val fail_count : t -> int
val kind_to_string : kind -> string
val pp_event : Format.formatter -> event -> unit
