type t = { max_retries : int; backoff : float; multiplier : float }

let default = { max_retries = 3; backoff = 1.0; multiplier = 2.0 }

let create ?(max_retries = default.max_retries) ?(backoff = default.backoff)
    ?(multiplier = default.multiplier) () =
  if max_retries < 0 then invalid_arg "Faults.Policy: max_retries must be non-negative";
  if backoff <= 0.0 || not (Float.is_finite backoff) then
    invalid_arg "Faults.Policy: backoff must be positive and finite";
  if multiplier < 1.0 || not (Float.is_finite multiplier) then
    invalid_arg "Faults.Policy: multiplier must be >= 1";
  { max_retries; backoff; multiplier }

let delay t ~attempt =
  if attempt < 1 then invalid_arg "Faults.Policy.delay: attempt must be >= 1";
  t.backoff *. (t.multiplier ** float_of_int (attempt - 1))
