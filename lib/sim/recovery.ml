(* Deterministic re-execution replay: see docs/JOURNAL.md.  The
   simulator is a deterministic function of its spec, so recovery does
   not interpret WAL records to mutate state — it re-runs the simulation
   and checks, byte for byte, that every re-derived record matches the
   stored log.  Any mismatch means the world being replayed is not the
   world that wrote the journal (code drift, wrong spec, corrupted
   state) and recovery fails closed with [Divergence]. *)

let divergence ~seq detail =
  Journal.Error.raise_ (Journal.Error.Divergence { seq; detail })

let describe body =
  match Wal.decode body with
  | r -> Format.asprintf "%a" Wal.pp r
  | exception Prelude.Codec.Error _ -> "<undecodable record>"

let replay sim ~records ~from_ ~live =
  let n = Array.length records in
  let cursor = ref from_ in
  if from_ < 0 || from_ > n then
    invalid_arg "Recovery.replay: replay start out of range";
  let emit r =
    if !cursor < n then begin
      let body = Wal.encode r in
      if not (String.equal body records.(!cursor)) then
        divergence ~seq:!cursor
          (Printf.sprintf "replay derived [%s] where the journal holds [%s]"
             (Format.asprintf "%a" Wal.pp r)
             (describe records.(!cursor)));
      incr cursor
    end
    else
      (* The step that consumed the last journaled record may keep
         emitting: those records are new history, appended live. *)
      live r
  in
  while !cursor < n && Simulator.step ~emit sim do
    ()
  done;
  if !cursor < n then
    divergence ~seq:!cursor
      (Printf.sprintf
         "journal holds %d records past the end of the replayed simulation (next: [%s])"
         (n - !cursor) (describe records.(!cursor)));
  !cursor - from_
