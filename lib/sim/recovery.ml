(* Deterministic re-execution replay: see docs/JOURNAL.md.  The
   simulator is a deterministic function of its spec, so recovery does
   not interpret WAL records to mutate state — it re-runs the simulation
   and checks, byte for byte, that every re-derived record matches the
   stored log.  Any mismatch means the world being replayed is not the
   world that wrote the journal (code drift, wrong spec, corrupted
   state) and recovery fails closed with [Divergence].

   Input records ([Wal.Admit]/[Wal.Inject], docs/SERVER.md) are the one
   exception: they carry external submissions *into* the simulation and
   cannot be re-derived.  Replay applies them — at exactly the stream
   position the live run appended them, which is always a step boundary
   because the serial server only accepts input between steps — through
   [on_input], and fails closed when a journal holds input records but
   the caller supplied no handler. *)

let divergence ~seq detail =
  Journal.Error.raise_ (Journal.Error.Divergence { seq; detail })

let describe body =
  match Wal.decode body with
  | r -> Format.asprintf "%a" Wal.pp r
  | exception Prelude.Codec.Error _ -> "<undecodable record>"

let replay ?on_input sim ~records ~from_ ~live =
  let n = Array.length records in
  let cursor = ref from_ in
  if from_ < 0 || from_ > n then
    invalid_arg "Recovery.replay: replay start out of range";
  let emit r =
    if !cursor < n then begin
      let body = Wal.encode r in
      if not (String.equal body records.(!cursor)) then
        divergence ~seq:!cursor
          (Printf.sprintf "replay derived [%s] where the journal holds [%s]"
             (Format.asprintf "%a" Wal.pp r)
             (describe records.(!cursor)));
      incr cursor
    end
    else
      (* The step that consumed the last journaled record may keep
         emitting: those records are new history, appended live. *)
      live r
  in
  while !cursor < n do
    if Wal.is_input_encoded records.(!cursor) then begin
      let r =
        match Wal.decode records.(!cursor) with
        | r -> r
        | exception Prelude.Codec.Error msg ->
            divergence ~seq:!cursor ("undecodable input record: " ^ msg)
      in
      (match on_input with
      | Some f -> f r
      | None ->
          divergence ~seq:!cursor
            (Printf.sprintf
               "journal holds input record [%s] but this recovery has no input \
                handler (was the journal written by an admission server? see \
                docs/SERVER.md)"
               (Format.asprintf "%a" Wal.pp r)));
      incr cursor
    end
    else if not (Simulator.step ~emit sim) then
      divergence ~seq:!cursor
        (Printf.sprintf
           "journal holds %d records past the end of the replayed simulation (next: [%s])"
           (n - !cursor) (describe records.(!cursor)))
  done;
  !cursor - from_
