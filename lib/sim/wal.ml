module Enc = Prelude.Codec.Enc
module Dec = Prelude.Codec.Dec

type record =
  | Submit of { time : float; job_id : int }
  | Resubmit of { time : float; job_id : int; tg_ids : int list }
  | Round of {
      time : float;
      round : int;
      placements : (int * int) list;
      cancelled : int list;
      think : float;
    }
  | Commit of { round : int }
  | Complete of { time : float; token : int; tg_id : int; machine : int }
  | Node_fail of { time : float; node : int; killed : (int * int) list }
  | Requeue of { time : float; tg_id : int; lost : int; attempt : int; retry_time : float }
  | Fault_cancel of { time : float; tg_id : int; lost : int }
  | Node_recover of { time : float; node : int; downtime_s : float }
  | Admit of { admit_id : int; client : string; poly : Hire.Poly_req.t }
  | Inject of { time : float; admit_ids : int list }

(* Input records carry external submissions into the simulation; replay
   applies them rather than re-deriving them (docs/SERVER.md). *)
let is_input = function Admit _ | Inject _ -> true | _ -> false

let admit_tag = 9
let inject_tag = 10

let is_input_encoded body =
  String.length body > 0
  &&
  let b = Char.code body.[0] in
  b = admit_tag || b = inject_tag

let enc_pair e (a, b) =
  Enc.int e a;
  Enc.int e b

let dec_pair d =
  let a = Dec.int d in
  let b = Dec.int d in
  (a, b)

let encode r =
  let e = Enc.create () in
  (match r with
  | Submit { time; job_id } ->
      Enc.byte e 0;
      Enc.f64 e time;
      Enc.int e job_id
  | Resubmit { time; job_id; tg_ids } ->
      Enc.byte e 1;
      Enc.f64 e time;
      Enc.int e job_id;
      Enc.list e Enc.int tg_ids
  | Round { time; round; placements; cancelled; think } ->
      Enc.byte e 2;
      Enc.f64 e time;
      Enc.uint e round;
      Enc.list e enc_pair placements;
      Enc.list e Enc.int cancelled;
      Enc.f64 e think
  | Commit { round } ->
      Enc.byte e 3;
      Enc.uint e round
  | Complete { time; token; tg_id; machine } ->
      Enc.byte e 4;
      Enc.f64 e time;
      Enc.uint e token;
      Enc.int e tg_id;
      Enc.int e machine
  | Node_fail { time; node; killed } ->
      Enc.byte e 5;
      Enc.f64 e time;
      Enc.int e node;
      Enc.list e enc_pair killed
  | Requeue { time; tg_id; lost; attempt; retry_time } ->
      Enc.byte e 6;
      Enc.f64 e time;
      Enc.int e tg_id;
      Enc.uint e lost;
      Enc.uint e attempt;
      Enc.f64 e retry_time
  | Fault_cancel { time; tg_id; lost } ->
      Enc.byte e 7;
      Enc.f64 e time;
      Enc.int e tg_id;
      Enc.uint e lost
  | Node_recover { time; node; downtime_s } ->
      Enc.byte e 8;
      Enc.f64 e time;
      Enc.int e node;
      Enc.f64 e downtime_s
  | Admit { admit_id; client; poly } ->
      Enc.byte e admit_tag;
      Enc.uint e admit_id;
      Enc.string e client;
      Hire.Persist.enc_poly e poly
  | Inject { time; admit_ids } ->
      Enc.byte e inject_tag;
      Enc.f64 e time;
      Enc.list e Enc.uint admit_ids);
  Enc.to_string e

let decode_body d =
  match Dec.byte d with
  | 0 ->
      let time = Dec.f64 d in
      let job_id = Dec.int d in
      Submit { time; job_id }
  | 1 ->
      let time = Dec.f64 d in
      let job_id = Dec.int d in
      let tg_ids = Dec.list d Dec.int in
      Resubmit { time; job_id; tg_ids }
  | 2 ->
      let time = Dec.f64 d in
      let round = Dec.uint d in
      let placements = Dec.list d dec_pair in
      let cancelled = Dec.list d Dec.int in
      let think = Dec.f64 d in
      Round { time; round; placements; cancelled; think }
  | 3 ->
      let round = Dec.uint d in
      Commit { round }
  | 4 ->
      let time = Dec.f64 d in
      let token = Dec.uint d in
      let tg_id = Dec.int d in
      let machine = Dec.int d in
      Complete { time; token; tg_id; machine }
  | 5 ->
      let time = Dec.f64 d in
      let node = Dec.int d in
      let killed = Dec.list d dec_pair in
      Node_fail { time; node; killed }
  | 6 ->
      let time = Dec.f64 d in
      let tg_id = Dec.int d in
      let lost = Dec.uint d in
      let attempt = Dec.uint d in
      let retry_time = Dec.f64 d in
      Requeue { time; tg_id; lost; attempt; retry_time }
  | 7 ->
      let time = Dec.f64 d in
      let tg_id = Dec.int d in
      let lost = Dec.uint d in
      Fault_cancel { time; tg_id; lost }
  | 8 ->
      let time = Dec.f64 d in
      let node = Dec.int d in
      let downtime_s = Dec.f64 d in
      Node_recover { time; node; downtime_s }
  | 9 ->
      let admit_id = Dec.uint d in
      let client = Dec.string d in
      let poly = Hire.Persist.dec_poly d in
      Admit { admit_id; client; poly }
  | 10 ->
      let time = Dec.f64 d in
      let admit_ids = Dec.list d Dec.uint in
      Inject { time; admit_ids }
  | b -> raise (Prelude.Codec.Error (Printf.sprintf "Wal: unknown record tag %d" b))

let decode body =
  let d = Dec.of_string body in
  let r = decode_body d in
  if not (Dec.at_end d) then
    raise (Prelude.Codec.Error "Wal: trailing bytes after record");
  r

let kind = function
  | Submit _ -> "submit"
  | Resubmit _ -> "resubmit"
  | Round _ -> "round"
  | Commit _ -> "commit"
  | Complete _ -> "complete"
  | Node_fail _ -> "node_fail"
  | Requeue _ -> "requeue"
  | Fault_cancel _ -> "fault_cancel"
  | Node_recover _ -> "node_recover"
  | Admit _ -> "admit"
  | Inject _ -> "inject"

let pp fmt = function
  | Submit { time; job_id } -> Format.fprintf fmt "submit t=%.6f job=%d" time job_id
  | Resubmit { time; job_id; tg_ids } ->
      Format.fprintf fmt "resubmit t=%.6f job=%d tgs=[%s]" time job_id
        (String.concat "," (List.map string_of_int tg_ids))
  | Round { time; round; placements; cancelled; think } ->
      Format.fprintf fmt "round t=%.6f n=%d placed=%d cancelled=%d think=%.6f" time round
        (List.length placements) (List.length cancelled) think
  | Commit { round } -> Format.fprintf fmt "commit n=%d" round
  | Complete { time; token; tg_id; machine } ->
      Format.fprintf fmt "complete t=%.6f token=%d tg=%d machine=%d" time token tg_id machine
  | Node_fail { time; node; killed } ->
      Format.fprintf fmt "node_fail t=%.6f node=%d groups=%d" time node (List.length killed)
  | Requeue { time; tg_id; lost; attempt; retry_time } ->
      Format.fprintf fmt "requeue t=%.6f tg=%d lost=%d attempt=%d retry=%.6f" time tg_id lost
        attempt retry_time
  | Fault_cancel { time; tg_id; lost } ->
      Format.fprintf fmt "fault_cancel t=%.6f tg=%d lost=%d" time tg_id lost
  | Node_recover { time; node; downtime_s } ->
      Format.fprintf fmt "node_recover t=%.6f node=%d downtime=%.3f" time node downtime_s
  | Admit { admit_id; client; poly } ->
      Format.fprintf fmt "admit id=%d client=%S job=%d tgs=%d" admit_id client
        poly.Hire.Poly_req.job_id
        (List.length poly.Hire.Poly_req.task_groups)
  | Inject { time; admit_ids } ->
      Format.fprintf fmt "inject t=%.6f ids=[%s]" time
        (String.concat "," (List.map string_of_int admit_ids))
