(** Mutable cluster state: the fat-tree topology plus the resource
    ledgers for servers and (via {!Hire.Sharing}) for INC switches.

    Switch INC capabilities implement the paper's two setups (§6.2):
    homogeneous — every switch supports every CompStore service — and
    heterogeneous — two randomly chosen services per switch. *)

module Vec = Prelude.Vec

type inc_setup = Homogeneous | Heterogeneous

val inc_setup_to_string : inc_setup -> string

type t

(** [create ~k ~setup ~services rng] builds a [k]-ary fat-tree cluster
    with default server/switch capacities.  [services] is the CompStore
    service-name universe; [rng] drives the heterogeneous capability
    assignment.

    [inc_capable_fraction] bounds which switches offer INC at all.  The
    paper's testbed (k = 26) has 5.2 servers per switch; a smaller
    fat-tree has proportionally more switches per server, which would
    dilute INC contention.  The default fraction [k/26] keeps the
    servers-per-INC-switch ratio of the paper at any scale. *)
val create :
  ?server_capacity:Vec.t ->
  ?switch_capacity:Vec.t ->
  ?inc_capable_fraction:float ->
  ?topology:Topology.Fat_tree.t ->
  k:int ->
  setup:inc_setup ->
  services:string list ->
  Prelude.Rng.t ->
  t
(** [topology] overrides the default fat-tree (e.g.
    {!Topology.Fat_tree.create_leaf_spine}); [k] is then ignored. *)

(** Switches offering at least one INC service. *)
val n_inc_capable : t -> int

val topo : t -> Topology.Fat_tree.t
val sharing : t -> Hire.Sharing.t
val n_servers : t -> int
val n_switches : t -> int

(** The read view handed to schedulers (includes node liveness). *)
val view : t -> Hire.View.t

(** {2 Liveness (fault injection)}

    Failing a node never touches the ledgers: the simulator kills and
    releases the node's running tasks before calling {!fail_node}, so
    total capacity is conserved across fail/recover cycles. *)

(** [is_alive t node] — servers and switches; initially every node is
    alive. *)
val is_alive : t -> int -> bool

(** Nodes currently down. *)
val n_dead : t -> int

(** [fail_node t ~time node] marks a node down ([time] is remembered for
    downtime accounting) and masks it from {!Hire.Sharing} placement
    checks when it is a switch.
    @raise Invalid_argument if the node is already down. *)
val fail_node : t -> time:float -> int -> unit

(** [recover_node t node] brings a node back and returns the time it
    failed.
    @raise Invalid_argument if the node is up. *)
val recover_node : t -> int -> float

val server_available : t -> int -> Vec.t
val server_capacity : t -> Vec.t

(** [place_server_task t ~server ~demand] charges a server.
    @raise Invalid_argument if the demand does not fit or the server is
    down. *)
val place_server_task : t -> server:int -> demand:Vec.t -> unit

(** Refund one task's demand.  Releasing on a dead server is legal (the
    kill path does exactly that).
    @raise Invalid_argument if the refund would push the ledger above
    capacity (double release / over-release). *)
val release_server_task : t -> server:int -> demand:Vec.t -> unit

(** [place_network_task t ~switch ~tg ~shared] charges a switch for one
    instance of the group's service.  With [shared = false] (retrofitted
    baselines) the registration part is folded into the per-instance
    demand, so co-located instances gain nothing ([nol] ignored).
    Returns the charged demand vector (needed for the release and for
    load accounting).
    @raise Invalid_argument if it does not fit or [tg] is not a network
    group. *)
val place_network_task :
  t -> switch:int -> tg:Hire.Poly_req.task_group -> shared:bool -> Vec.t

val release_network_task :
  t -> switch:int -> tg:Hire.Poly_req.task_group -> shared:bool -> unit

(** Mean per-dimension utilization across servers. *)
val server_utilization_avg : t -> Vec.t

(** Sum of used switch resources per dimension. *)
val switch_used_total : t -> Vec.t

(** Total switch capacity per dimension (all switches). *)
val switch_capacity_total : t -> Vec.t

(** Journal-checkpoint serialization (docs/JOURNAL.md) of the dynamic
    state only: server ledgers, dead set, switch-sharing ledgers.  The
    static parts (topology, capacities, INC capability map) must come
    from rebuilding the cluster with the same seed; [restore] then
    overlays the snapshot in place and marks the dirty set structural so
    the next flow-network build starts clean.  Raises
    {!Prelude.Codec.Error} when the snapshot does not match the
    cluster's shape. *)
val snapshot : t -> string

val restore : t -> string -> unit
