(** Time-ordered event queue for the discrete-event simulator.  Events
    with equal timestamps are delivered in insertion order (a strict
    total order keeps simulations deterministic). *)

type 'a t

val create : unit -> 'a t

(** [push q ~time ev] schedules [ev]; [time] must be finite. *)
val push : 'a t -> time:float -> 'a -> unit

(** Earliest event with its timestamp, removing it. *)
val pop : 'a t -> (float * 'a) option

(** Earliest timestamp without removing. *)
val peek_time : 'a t -> float option

val is_empty : 'a t -> bool
val size : 'a t -> int

(** Journal-checkpoint support (docs/JOURNAL.md).  [entries] exports the
    pending events as [(time, seq, payload)] sorted by insertion
    sequence; [next_seq] is the next sequence number to be assigned.
    [restore] replaces the queue's contents with previously exported
    entries and sets the sequence counter, so tie-break order — which
    the sequence numbers define — survives a checkpoint round-trip
    exactly.
    @raise Invalid_argument on non-finite times or sequence numbers
    outside [\[0, next_seq)]. *)
val entries : 'a t -> (float * int * 'a) list

val next_seq : 'a t -> int
val restore : 'a t -> next_seq:int -> (float * int * 'a) list -> unit
