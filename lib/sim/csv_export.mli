(** CSV export of metric reports, mirroring the paper artifact's
    per-simulation stats files: one row per ⟨scheduler, μ, setup, seed⟩
    cell so the sweep can be re-plotted outside OCaml. *)

val header : string

(** {!header} plus the fault-injection columns (node_fails …
    downtime_p50_s). *)
val header_with_faults : string

(** Header with the selected optional column groups appended, in fixed
    order: fault columns, then solver-resilience columns
    (degraded_rounds … salvaged_tasks). *)
val full_header : ?faults:bool -> ?resilience:bool -> unit -> string

(** [row ~scheduler ~mu ~setup ~seed report] renders one CSV line (no
    trailing newline).  [faults] appends the fault columns and
    [resilience] the solver-resilience columns; without them the row
    matches the pre-fault format byte for byte. *)
val row :
  ?faults:bool ->
  ?resilience:bool ->
  scheduler:string ->
  mu:float ->
  setup:Cluster.inc_setup ->
  seed:int ->
  Metrics.report ->
  string

(** [write_file path rows] writes header + rows ([faults]/[resilience]
    select the extended header — pass rows rendered with the same
    flags). *)
val write_file : ?faults:bool -> ?resilience:bool -> string -> string list -> unit
