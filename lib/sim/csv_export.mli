(** CSV export of metric reports, mirroring the paper artifact's
    per-simulation stats files: one row per ⟨scheduler, μ, setup, seed⟩
    cell so the sweep can be re-plotted outside OCaml. *)

val header : string

(** {!header} plus the fault-injection columns (node_fails …
    downtime_p50_s). *)
val header_with_faults : string

(** [row ~scheduler ~mu ~setup ~seed report] renders one CSV line (no
    trailing newline).  [faults] appends the fault columns; without it
    the row matches the pre-fault format byte for byte. *)
val row :
  ?faults:bool ->
  scheduler:string ->
  mu:float ->
  setup:Cluster.inc_setup ->
  seed:int ->
  Metrics.report ->
  string

(** [write_file path rows] writes header + rows ([faults] selects the
    extended header — pass rows rendered with the same flag). *)
val write_file : ?faults:bool -> string -> string list -> unit
