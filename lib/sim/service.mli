(** Journaled scheduler service (docs/JOURNAL.md): the simulator event
    loop with a write-ahead log underneath.

    Protocol, per event: the {!Wal} records the event gives rise to are
    appended (buffered, not yet durable) {e before} their effects
    become externally visible; every {!Wal.Commit} — one per scheduling
    round — is a durability point, group-committed within a bounded
    window ([fsync_interval_s], default 20ms; [0.0] restores strict
    fsync-per-round — see {!Journal.Sink}); and every
    [checkpoint_every]-th round a full {!Simulator.snapshot} is written
    as a generation-numbered checkpoint behind a {!Journal.Sink.barrier},
    so a checkpoint never subsumes records that could still be lost.

    Recovery ({!recover}) rebuilds a fresh world from the spec blob
    stored in the WAL header, overlays the newest usable checkpoint
    (when the scheduler offers {!Scheduler_intf.persist}), truncates a
    torn tail, replays the remaining records by deterministic
    re-execution ({!Recovery.replay}), cross-checks the landed ledgers
    against the running-task registry, and returns a service ready to
    continue — the continuation is byte-identical to the uninterrupted
    run. *)

type t

val sim : t -> Simulator.t

(** Tap invoked — in order — for every record the live event loop
    appends (not for {!append}ed input records, whose writer already
    knows them, nor for records validated during recovery replay; pass
    [observe] to {!recover} for those).  Replaces any previous
    observer; the admission front-end (docs/SERVER.md) tracks per-job
    progress through it. *)
val set_observer : t -> (Wal.record -> unit) -> unit

(** Next WAL sequence number — the total records appended so far. *)
val wal_seq : t -> int

(** Append one input record ({!Wal.Admit}/{!Wal.Inject}) through the
    journal sink, in stream order with the simulator's own records.
    Buffered, not yet durable: call {!ack_barrier} before acknowledging
    the admission to a client (WAL-before-ack, docs/SERVER.md). *)
val append : t -> Wal.record -> unit

(** Durability barrier: every record appended so far — input records
    included — is on disk when this returns, group-commit window
    notwithstanding.  The admission server calls it between accepting
    submissions and acknowledging them.  Raises {!Journal.Error.Io}
    (retryable — the frames stay buffered, see {!Journal.Sink}) when
    storage fails; a failed {!Journal.Checkpoint.write} is instead
    swallowed and the checkpoint skipped, because checkpoints only
    accelerate recovery. *)
val ack_barrier : t -> unit

(** [start ~dir ~checkpoint_every ~header sim] begins journaling a fresh
    simulation into [dir] (created if missing).  [header] is the opaque
    spec blob recovery hands back to [rebuild]; [checkpoint_every] <= 0
    (the default) disables checkpoints.
    @raise Journal.Error.Journal_error [State] if [dir] already holds a
    journal. *)
val start :
  dir:string ->
  ?checkpoint_every:int ->
  ?fsync_interval_s:float ->
  header:string ->
  Simulator.t ->
  t

type recovered = {
  service : t;
  replayed : int;  (** WAL records validated by re-execution *)
  from_checkpoint : int option;
      (** sequence the overlaid checkpoint subsumed, when one was used *)
}

(** [recover ~dir ~rebuild ()] resumes a crashed journaled run.
    [rebuild] must reconstruct the {e same} simulation from the spec
    blob that [start] wrote (same seeds, same config) — recovery
    validates rather than trusts it, and fails closed with [Divergence]
    on any mismatch.

    [on_input] applies input records ({!Wal.Admit}/{!Wal.Inject}) to the
    rebuilt simulation at their recorded stream positions; without it, a
    journal holding input records fails closed (see {!Recovery.replay}).
    [observe] is called once per loaded record — input records and
    checkpoint-subsumed history included — before replay, so an
    admission front-end can rebuild its tables (docs/SERVER.md). *)
val recover :
  dir:string ->
  ?checkpoint_every:int ->
  ?fsync_interval_s:float ->
  ?on_input:(Simulator.t -> Wal.record -> unit) ->
  ?observe:(Wal.record -> unit) ->
  rebuild:(string -> Simulator.t) ->
  unit ->
  recovered

(** Process one event under the journal (see {!Simulator.step}); returns
    [false] once the event queue is empty.  Interleave with {!append}
    and {!Simulator.inject} to drive the loop from external input. *)
val step : t -> bool

(** Final fsync, close the journal, finalize metrics.  [run] is exactly
    {!step} to exhaustion + [finish]. *)
val finish : t -> Simulator.result

(** Run the simulation to completion under the journal, final fsync
    included.  An armed {!Journal.Chaos} crash point propagates as
    {!Journal.Chaos.Crashed} with the log torn exactly as a real crash
    would leave it. *)
val run : t -> Simulator.result
