(** Journaled scheduler service (docs/JOURNAL.md): the simulator event
    loop with a write-ahead log underneath.

    Protocol, per event: the {!Wal} records the event gives rise to are
    appended (buffered, not yet durable) {e before} their effects
    become externally visible; every {!Wal.Commit} — one per scheduling
    round — is a durability point, group-committed within a bounded
    window ([fsync_interval_s], default 20ms; [0.0] restores strict
    fsync-per-round — see {!Journal.Sink}); and every
    [checkpoint_every]-th round a full {!Simulator.snapshot} is written
    as a generation-numbered checkpoint behind a {!Journal.Sink.barrier},
    so a checkpoint never subsumes records that could still be lost.

    Recovery ({!recover}) rebuilds a fresh world from the spec blob
    stored in the WAL header, overlays the newest usable checkpoint
    (when the scheduler offers {!Scheduler_intf.persist}), truncates a
    torn tail, replays the remaining records by deterministic
    re-execution ({!Recovery.replay}), cross-checks the landed ledgers
    against the running-task registry, and returns a service ready to
    continue — the continuation is byte-identical to the uninterrupted
    run. *)

type t

val sim : t -> Simulator.t

(** [start ~dir ~checkpoint_every ~header sim] begins journaling a fresh
    simulation into [dir] (created if missing).  [header] is the opaque
    spec blob recovery hands back to [rebuild]; [checkpoint_every] <= 0
    (the default) disables checkpoints.
    @raise Journal.Error.Journal_error [State] if [dir] already holds a
    journal. *)
val start :
  dir:string ->
  ?checkpoint_every:int ->
  ?fsync_interval_s:float ->
  header:string ->
  Simulator.t ->
  t

type recovered = {
  service : t;
  replayed : int;  (** WAL records validated by re-execution *)
  from_checkpoint : int option;
      (** sequence the overlaid checkpoint subsumed, when one was used *)
}

(** [recover ~dir ~rebuild ()] resumes a crashed journaled run.
    [rebuild] must reconstruct the {e same} simulation from the spec
    blob that [start] wrote (same seeds, same config) — recovery
    validates rather than trusts it, and fails closed with [Divergence]
    on any mismatch. *)
val recover :
  dir:string ->
  ?checkpoint_every:int ->
  ?fsync_interval_s:float ->
  rebuild:(string -> Simulator.t) ->
  unit ->
  recovered

(** Run the simulation to completion under the journal, final fsync
    included.  An armed {!Journal.Chaos} crash point propagates as
    {!Journal.Chaos.Crashed} with the log torn exactly as a real crash
    would leave it. *)
val run : t -> Simulator.result
