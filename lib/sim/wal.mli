(** Write-ahead-log records of the simulator's externally visible
    scheduling events (docs/JOURNAL.md).

    One record per observable decision or state transition: job
    submissions, scheduling rounds with their placements, round commits
    (the fsync points), task completions, and the fault-injection
    events.  Recovery re-executes the deterministic simulator and
    validates each re-derived record byte-for-byte against the stored
    log, so the encoding is canonical: encoding the same record always
    yields the same bytes. *)

type record =
  | Submit of { time : float; job_id : int }  (** job arrival handed to the scheduler *)
  | Resubmit of { time : float; job_id : int; tg_ids : int list }
      (** delayed fault-retry submission of the listed groups ([job_id]
          is the synthetic, negative clone id) *)
  | Round of {
      time : float;
      round : int;  (** 1-based round number *)
      placements : (int * int) list;  (** (tg_id, machine) in application order *)
      cancelled : int list;  (** tg_ids dropped by flavor decisions *)
      think : float;  (** simulated decision seconds *)
    }
      (** a scheduling round's decision, journaled {e before} the
          placements are applied to the running-task registry *)
  | Commit of { round : int }
      (** round [round] fully applied; the journal sink fsyncs here *)
  | Complete of { time : float; token : int; tg_id : int; machine : int }
      (** a live task finished (no record for completions of tasks
          already killed by a node failure) *)
  | Node_fail of { time : float; node : int; killed : (int * int) list }
      (** fault injection; [killed] = (tg_id, lost instances) in kill
          order *)
  | Requeue of { time : float; tg_id : int; lost : int; attempt : int; retry_time : float }
  | Fault_cancel of { time : float; tg_id : int; lost : int }
  | Node_recover of { time : float; node : int; downtime_s : float }
  | Admit of { admit_id : int; client : string; poly : Hire.Poly_req.t }
      (** an externally submitted job accepted by the admission front-end
          (docs/SERVER.md), journaled — and made durable — {e before} the
          acceptance is acknowledged to the client (WAL-before-ack).
          [client] is the submitter's optional idempotency key ([""]
          when absent); [poly.arrival] is a placeholder until the job is
          injected. *)
  | Inject of { time : float; admit_ids : int list }
      (** an admission batch handed to the scheduler: the listed admitted
          jobs enter the event loop as arrivals at simulated time
          [time].  Admitted ids that appear in no [Inject] record are
          the accepted-but-unplaced queue a crashed server recovers. *)

(** Input records ([Admit]/[Inject]) carry external submissions {e into}
    the simulation; recovery applies them instead of validating them
    against re-execution (every other record is an output the replayed
    simulator must re-derive byte for byte). *)
val is_input : record -> bool

(** {!is_input} on an encoded record without decoding it. *)
val is_input_encoded : string -> bool

(** Canonical binary encoding of one record. *)
val encode : record -> string

(** Inverse of {!encode}.
    @raise Prelude.Codec.Error on malformed input (including trailing
    bytes). *)
val decode : string -> record

(** Short kind tag (["submit"], ["round"], …) for counters and logs. *)
val kind : record -> string

val pp : Format.formatter -> record -> unit
