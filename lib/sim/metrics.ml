module Vec = Prelude.Vec
module Poly_req = Hire.Poly_req
module Fat_tree = Topology.Fat_tree

type tg_info = {
  ti_job : int;
  ti_comp : string;
  is_network : bool;
  expected : int;
  arrival : float;
  mutable placed : int;
  mutable cancelled : bool;
  mutable satisfied_at : float option;
  mutable ever_satisfied : bool;
      (* the group reached full placement at least once — even a group
         requeued before its first satisfaction still feeds the
         placement-latency histogram exactly once *)
  mutable requeued_at : float option;
      (* last fault-driven requeue still awaiting re-placement *)
}

type job_info = {
  mutable servers_used : int list;
  mutable switches_used : int list;
  has_inc : bool;
  network_tg_ids : int list;
}

type t = {
  topo : Fat_tree.t;
  tgs : (int, tg_info) Hashtbl.t;
  jobs : (int, job_info) Hashtbl.t;
  latency_h : Obs.Histogram.t;
  solver_h : Obs.Histogram.t;
  reschedule_h : Obs.Histogram.t;
  downtime_h : Obs.Histogram.t;
  mutable sw_used : Vec.t;
  mutable sw_integral : Vec.t;
  mutable last_time : float;
  mutable finalized_at : float option;
  mutable rounds : int;
  mutable think_total : float;
  mutable node_fails : int;
  mutable node_recoveries : int;
  mutable tasks_killed : int;
  mutable requeues : int;
  mutable fault_cancels : int;
  mutable degraded_rounds : int;
  mutable fallback_rounds : int;
  mutable fallback_depth_max : int;
  mutable guard_trips : int;
  mutable salvaged_tasks : int;
}

let create topo =
  let dims = Topology.Resource.Switch.count in
  {
    topo;
    tgs = Hashtbl.create 1024;
    jobs = Hashtbl.create 256;
    latency_h = Obs.Histogram.create ();
    solver_h = Obs.Histogram.create ();
    reschedule_h = Obs.Histogram.create ();
    downtime_h = Obs.Histogram.create ();
    sw_used = Vec.zero dims;
    sw_integral = Vec.zero dims;
    last_time = 0.0;
    finalized_at = None;
    rounds = 0;
    think_total = 0.0;
    node_fails = 0;
    node_recoveries = 0;
    tasks_killed = 0;
    requeues = 0;
    fault_cancels = 0;
    degraded_rounds = 0;
    fallback_rounds = 0;
    fallback_depth_max = 0;
    guard_trips = 0;
    salvaged_tasks = 0;
  }

let advance_load t time =
  let dt = time -. t.last_time in
  if dt > 0.0 then begin
    Vec.add_into t.sw_integral (Vec.scale dt t.sw_used);
    t.last_time <- time
  end

let on_submit t ~time (poly : Poly_req.t) =
  advance_load t time;
  List.iter
    (fun (tg : Poly_req.task_group) ->
      Hashtbl.replace t.tgs tg.tg_id
        {
          ti_job = poly.job_id;
          ti_comp = tg.comp_id;
          is_network = Poly_req.is_network tg;
          expected = tg.count;
          arrival = time;
          placed = 0;
          cancelled = false;
          satisfied_at = None;
          ever_satisfied = false;
          requeued_at = None;
        })
    poly.task_groups;
  Hashtbl.replace t.jobs poly.job_id
    {
      servers_used = [];
      switches_used = [];
      has_inc = Poly_req.has_inc poly;
      network_tg_ids = List.map (fun tg -> tg.Poly_req.tg_id) (Poly_req.network_groups poly);
    }

let on_place t ~time ~(tg : Poly_req.task_group) ~machine ~charged =
  advance_load t time;
  (match charged with Some v -> Vec.add_into t.sw_used v | None -> ());
  (match Hashtbl.find_opt t.tgs tg.tg_id with
  | None -> ()
  | Some ti ->
      ti.placed <- ti.placed + 1;
      ti.cancelled <- false;
      if ti.placed >= ti.expected && ti.satisfied_at = None then begin
        ti.satisfied_at <- Some time;
        (* First-ever satisfaction always feeds the paper's
           placement-latency figure (even when a fault requeued the
           group before it was ever fully placed — dropping those would
           bias the figure by exactly the slow cases); a re-placement
           after a fault additionally feeds the time-to-reschedule
           histogram. *)
        if not ti.ever_satisfied then begin
          ti.ever_satisfied <- true;
          Obs.Histogram.observe t.latency_h (time -. ti.arrival)
        end;
        match ti.requeued_at with
        | Some t0 ->
            ti.requeued_at <- None;
            Obs.Histogram.observe t.reschedule_h (time -. t0)
        | None -> ()
      end);
  match Hashtbl.find_opt t.jobs tg.job_id with
  | None -> ()
  | Some ji ->
      if Fat_tree.is_server t.topo machine then ji.servers_used <- machine :: ji.servers_used
      else ji.switches_used <- machine :: ji.switches_used

let on_task_complete t ~time ~tg:_ ~released =
  advance_load t time;
  match released with
  | Some v ->
      t.sw_used <- Vec.clamp_nonneg (Vec.sub t.sw_used v)
  | None -> ()

let on_cancel t ~time ~(tg : Poly_req.task_group) =
  advance_load t time;
  match Hashtbl.find_opt t.tgs tg.tg_id with
  | None -> ()
  | Some ti -> if ti.satisfied_at = None then ti.cancelled <- true

(* -------------------- fault injection -------------------- *)

let on_task_kill t ~time ~tg:_ ~released =
  advance_load t time;
  t.tasks_killed <- t.tasks_killed + 1;
  match released with
  | Some v -> t.sw_used <- Vec.clamp_nonneg (Vec.sub t.sw_used v)
  | None -> ()

let on_requeue t ~time ~(tg : Poly_req.task_group) ~n =
  advance_load t time;
  t.requeues <- t.requeues + n;
  match Hashtbl.find_opt t.tgs tg.tg_id with
  | None -> ()
  | Some ti ->
      ti.placed <- max 0 (ti.placed - n);
      (* The group is no longer (fully) running; it counts as satisfied
         again only once the lost tasks are re-placed. *)
      ti.satisfied_at <- None;
      ti.cancelled <- false;
      ti.requeued_at <- Some time

let on_fault_cancel t ~time ~(tg : Poly_req.task_group) ~n =
  advance_load t time;
  t.fault_cancels <- t.fault_cancels + n;
  match Hashtbl.find_opt t.tgs tg.tg_id with
  | None -> ()
  | Some ti ->
      ti.placed <- max 0 (ti.placed - n);
      ti.satisfied_at <- None;
      ti.requeued_at <- None;
      ti.cancelled <- true

let on_node_fail t ~time =
  advance_load t time;
  t.node_fails <- t.node_fails + 1

let on_node_recover t ~time ~downtime_s =
  advance_load t time;
  t.node_recoveries <- t.node_recoveries + 1;
  Obs.Histogram.observe t.downtime_h downtime_s

let on_solver_sample t ~wall_s = Obs.Histogram.observe t.solver_h wall_s

let on_round ?resilience t ~think_s =
  t.rounds <- t.rounds + 1;
  t.think_total <- t.think_total +. think_s;
  match (resilience : Scheduler_intf.round_resilience option) with
  | None -> ()
  | Some r ->
      if r.degraded then t.degraded_rounds <- t.degraded_rounds + 1;
      if r.fallback_depth > 0 then t.fallback_rounds <- t.fallback_rounds + 1;
      t.fallback_depth_max <- max t.fallback_depth_max r.fallback_depth;
      t.guard_trips <- t.guard_trips + r.guard_trips;
      t.salvaged_tasks <- t.salvaged_tasks + r.salvaged

let finalize t ~time =
  advance_load t time;
  t.finalized_at <- Some time

type report = {
  jobs_total : int;
  inc_jobs_total : int;
  inc_jobs_served : int;
  inc_tgs_total : int;
  inc_tgs_unserved : int;
  tgs_total : int;
  tgs_satisfied : int;
  detour_mean : float;
  span_mean : float;  (** topology levels covering servers+switches of a job *)
  detour_samples : int;
  switch_load : Vec.t;
  placement_latency : Obs.Histogram.t;
  solver_wall : Obs.Histogram.t;
  rounds : int;
  think_total : float;
  node_fails : int;
  node_recoveries : int;
  tasks_killed : int;
  requeues : int;
  fault_cancels : int;
  tgs_cancelled : int;
  time_to_reschedule : Obs.Histogram.t;
  node_downtime : Obs.Histogram.t;
  degraded_rounds : int;
  fallback_rounds : int;
  fallback_depth_max : int;
  guard_trips : int;
  salvaged_tasks : int;
}

(* Bindings of an int-keyed table in key order: [report] and [snapshot]
   must not depend on hash-bucket iteration order, which a
   checkpoint-restored table does not reproduce (docs/JOURNAL.md). *)
let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let report t =
  let jobs_total = Hashtbl.length t.jobs in
  let inc_jobs_total = ref 0 and inc_jobs_served = ref 0 in
  let detour_sum = ref 0.0 and detour_n = ref 0 in
  let span_sum = ref 0.0 in
  List.iter
    (fun (_, ji) ->
      if ji.has_inc then begin
        incr inc_jobs_total;
        (* Served with INC iff at least one network group ran fully and
           no chosen network group is left half-done. *)
        let satisfied, pending =
          List.fold_left
            (fun (sat, pend) tg_id ->
              match Hashtbl.find_opt t.tgs tg_id with
              | None -> (sat, pend)
              | Some ti ->
                  if ti.satisfied_at <> None then (sat + 1, pend)
                  else if ti.cancelled then (sat, pend)
                  else (sat, pend + 1))
            (0, 0) ji.network_tg_ids
        in
        if satisfied > 0 && pending = 0 then incr inc_jobs_served
      end;
      (* Detours are defined over jobs whose placement involves switches:
         extra levels needed to cover servers and switches together. *)
      if ji.servers_used <> [] && ji.switches_used <> [] then begin
        let servers = List.sort_uniq compare ji.servers_used in
        let switches = List.sort_uniq compare ji.switches_used in
        let d = Fat_tree.detour t.topo ~servers ~switches in
        detour_sum := !detour_sum +. float_of_int d;
        (* Fabric span: hierarchy levels needed to cover the whole job,
           a companion metric — schedulers that scatter servers across
           the fabric show zero *detour* simply because their jobs
           already span everything. *)
        span_sum := !span_sum +. float_of_int (3 - Fat_tree.cover_depth t.topo (servers @ switches));
        incr detour_n
      end)
    (sorted_bindings t.jobs);
  let inc_tgs_total = ref 0 and inc_tgs_unserved = ref 0 in
  let tgs_total = ref 0 and tgs_satisfied = ref 0 and tgs_cancelled = ref 0 in
  (* Composites with several INC alternatives run exactly one of them: a
     network group cancelled in favour of a *sibling* INC group is
     alternative-replaced, not unserved. *)
  let comp_inc_served = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ ti ->
      if ti.is_network && ti.satisfied_at <> None then
        Hashtbl.replace comp_inc_served (ti.ti_job, ti.ti_comp) ())
    t.tgs;
  List.iter
    (fun (_, ti) ->
      incr tgs_total;
      if ti.satisfied_at <> None then incr tgs_satisfied;
      if ti.cancelled then incr tgs_cancelled;
      if ti.is_network then begin
        let sibling_served = Hashtbl.mem comp_inc_served (ti.ti_job, ti.ti_comp) in
        if ti.satisfied_at <> None then incr inc_tgs_total
        else if not sibling_served then begin
          incr inc_tgs_total;
          incr inc_tgs_unserved
        end
      end)
    (sorted_bindings t.tgs);
  let total_time = Float.max 1e-9 t.last_time in
  let cap =
    Vec.scale
      (float_of_int (Array.length (Fat_tree.switches t.topo)))
      Topology.Resource.Switch.default_capacity
  in
  let switch_load =
    Array.mapi
      (fun i x -> if cap.(i) <= 0.0 then 0.0 else x /. (cap.(i) *. total_time))
      t.sw_integral
  in
  {
    jobs_total;
    inc_jobs_total = !inc_jobs_total;
    inc_jobs_served = !inc_jobs_served;
    inc_tgs_total = !inc_tgs_total;
    inc_tgs_unserved = !inc_tgs_unserved;
    tgs_total = !tgs_total;
    tgs_satisfied = !tgs_satisfied;
    detour_mean = (if !detour_n = 0 then 0.0 else !detour_sum /. float_of_int !detour_n);
    span_mean = (if !detour_n = 0 then 0.0 else !span_sum /. float_of_int !detour_n);
    detour_samples = !detour_n;
    switch_load;
    placement_latency = t.latency_h;
    solver_wall = t.solver_h;
    rounds = t.rounds;
    think_total = t.think_total;
    node_fails = t.node_fails;
    node_recoveries = t.node_recoveries;
    tasks_killed = t.tasks_killed;
    requeues = t.requeues;
    fault_cancels = t.fault_cancels;
    tgs_cancelled = !tgs_cancelled;
    time_to_reschedule = t.reschedule_h;
    node_downtime = t.downtime_h;
    degraded_rounds = t.degraded_rounds;
    fallback_rounds = t.fallback_rounds;
    fallback_depth_max = t.fallback_depth_max;
    guard_trips = t.guard_trips;
    salvaged_tasks = t.salvaged_tasks;
  }

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (journal checkpoints, docs/JOURNAL.md)           *)
(* ------------------------------------------------------------------ *)

module Enc = Prelude.Codec.Enc
module Dec = Prelude.Codec.Dec

let enc_hist e h =
  let r = Obs.Histogram.to_raw h in
  Enc.f64 e r.Obs.Histogram.r_lo;
  Enc.f64 e r.r_log_gamma;
  Enc.array e Enc.uint r.r_counts;
  Enc.uint e r.r_underflow;
  Enc.uint e r.r_overflow;
  Enc.uint e r.r_count;
  Enc.f64 e r.r_sum;
  Enc.f64 e r.r_vmin;
  Enc.f64 e r.r_vmax

(* Histograms live in immutable fields, so restore rebuilds the decoded
   one and folds it into the cleared live instance — [merge_into] on an
   empty histogram is an exact copy. *)
let dec_hist_into d h =
  let r_lo = Dec.f64 d in
  let r_log_gamma = Dec.f64 d in
  let r_counts = Dec.array d Dec.uint in
  let r_underflow = Dec.uint d in
  let r_overflow = Dec.uint d in
  let r_count = Dec.uint d in
  let r_sum = Dec.f64 d in
  let r_vmin = Dec.f64 d in
  let r_vmax = Dec.f64 d in
  let decoded =
    Obs.Histogram.of_raw
      {
        Obs.Histogram.r_lo;
        r_log_gamma;
        r_counts;
        r_underflow;
        r_overflow;
        r_count;
        r_sum;
        r_vmin;
        r_vmax;
      }
  in
  Obs.Histogram.clear h;
  try Obs.Histogram.merge_into h decoded
  with Invalid_argument msg -> raise (Prelude.Codec.Error ("Metrics.restore: " ^ msg))

let snapshot t =
  let e = Enc.create () in
  Enc.list e
    (fun e (id, ti) ->
      Enc.int e id;
      Enc.int e ti.ti_job;
      Enc.string e ti.ti_comp;
      Enc.bool e ti.is_network;
      Enc.uint e ti.expected;
      Enc.f64 e ti.arrival;
      Enc.uint e ti.placed;
      Enc.bool e ti.cancelled;
      Enc.option e Enc.f64 ti.satisfied_at;
      Enc.bool e ti.ever_satisfied;
      Enc.option e Enc.f64 ti.requeued_at)
    (sorted_bindings t.tgs);
  Enc.list e
    (fun e (id, ji) ->
      Enc.int e id;
      Enc.list e Enc.int ji.servers_used;
      Enc.list e Enc.int ji.switches_used;
      Enc.bool e ji.has_inc;
      Enc.list e Enc.int ji.network_tg_ids)
    (sorted_bindings t.jobs);
  enc_hist e t.latency_h;
  enc_hist e t.solver_h;
  enc_hist e t.reschedule_h;
  enc_hist e t.downtime_h;
  Enc.float_array e t.sw_used;
  Enc.float_array e t.sw_integral;
  Enc.f64 e t.last_time;
  Enc.option e Enc.f64 t.finalized_at;
  Enc.uint e t.rounds;
  Enc.f64 e t.think_total;
  Enc.uint e t.node_fails;
  Enc.uint e t.node_recoveries;
  Enc.uint e t.tasks_killed;
  Enc.uint e t.requeues;
  Enc.uint e t.fault_cancels;
  Enc.uint e t.degraded_rounds;
  Enc.uint e t.fallback_rounds;
  Enc.uint e t.fallback_depth_max;
  Enc.uint e t.guard_trips;
  Enc.uint e t.salvaged_tasks;
  Enc.to_string e

let restore t blob =
  let d = Dec.of_string blob in
  Hashtbl.reset t.tgs;
  List.iter
    (fun (id, ti) -> Hashtbl.replace t.tgs id ti)
    (Dec.list d (fun d ->
         let id = Dec.int d in
         let ti_job = Dec.int d in
         let ti_comp = Dec.string d in
         let is_network = Dec.bool d in
         let expected = Dec.uint d in
         let arrival = Dec.f64 d in
         let placed = Dec.uint d in
         let cancelled = Dec.bool d in
         let satisfied_at = Dec.option d Dec.f64 in
         let ever_satisfied = Dec.bool d in
         let requeued_at = Dec.option d Dec.f64 in
         ( id,
           {
             ti_job;
             ti_comp;
             is_network;
             expected;
             arrival;
             placed;
             cancelled;
             satisfied_at;
             ever_satisfied;
             requeued_at;
           } )));
  Hashtbl.reset t.jobs;
  List.iter
    (fun (id, ji) -> Hashtbl.replace t.jobs id ji)
    (Dec.list d (fun d ->
         let id = Dec.int d in
         let servers_used = Dec.list d Dec.int in
         let switches_used = Dec.list d Dec.int in
         let has_inc = Dec.bool d in
         let network_tg_ids = Dec.list d Dec.int in
         (id, { servers_used; switches_used; has_inc; network_tg_ids })));
  dec_hist_into d t.latency_h;
  dec_hist_into d t.solver_h;
  dec_hist_into d t.reschedule_h;
  dec_hist_into d t.downtime_h;
  t.sw_used <- Dec.float_array d;
  t.sw_integral <- Dec.float_array d;
  t.last_time <- Dec.f64 d;
  t.finalized_at <- Dec.option d Dec.f64;
  t.rounds <- Dec.uint d;
  t.think_total <- Dec.f64 d;
  t.node_fails <- Dec.uint d;
  t.node_recoveries <- Dec.uint d;
  t.tasks_killed <- Dec.uint d;
  t.requeues <- Dec.uint d;
  t.fault_cancels <- Dec.uint d;
  t.degraded_rounds <- Dec.uint d;
  t.fallback_rounds <- Dec.uint d;
  t.fallback_depth_max <- Dec.uint d;
  t.guard_trips <- Dec.uint d;
  t.salvaged_tasks <- Dec.uint d;
  if not (Dec.at_end d) then
    raise (Prelude.Codec.Error "Metrics.restore: trailing bytes in snapshot")

let inc_satisfaction_ratio r =
  if r.inc_jobs_total = 0 then 1.0
  else float_of_int r.inc_jobs_served /. float_of_int r.inc_jobs_total

let inc_tg_unserved_ratio r =
  if r.inc_tgs_total = 0 then 0.0
  else float_of_int r.inc_tgs_unserved /. float_of_int r.inc_tgs_total

let pp_report fmt r =
  Format.fprintf fmt
    "jobs=%d inc-jobs=%d/%d (%.1f%%) inc-tgs-unserved=%d/%d detour=%.3f load=%a rounds=%d"
    r.jobs_total r.inc_jobs_served r.inc_jobs_total
    (100.0 *. inc_satisfaction_ratio r)
    r.inc_tgs_unserved r.inc_tgs_total r.detour_mean Vec.pp r.switch_load r.rounds;
  (* Fault-free reports stay byte-identical to the pre-fault format. *)
  if r.node_fails > 0 then
    Format.fprintf fmt " faults=%d/%d killed=%d requeued=%d cancelled=%d" r.node_fails
      r.node_recoveries r.tasks_killed r.requeues r.fault_cancels;
  (* Likewise, runs without a resilience policy keep the legacy format. *)
  if
    r.degraded_rounds > 0 || r.fallback_rounds > 0 || r.guard_trips > 0
    || r.salvaged_tasks > 0
  then
    Format.fprintf fmt
      " resilience: degraded-rounds=%d fallback-rounds=%d max-depth=%d guard-trips=%d salvaged=%d"
      r.degraded_rounds r.fallback_rounds r.fallback_depth_max r.guard_trips
      r.salvaged_tasks
