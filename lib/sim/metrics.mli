(** Metric collection for the paper's evaluation (§6.2):

    - {b satisfied INC jobs} — fraction of INC-requesting jobs whose
      network task groups were served with INC (Fig. 8a/8f);
    - {b unallocated INC task groups} — fraction of requested network
      groups that never ran with INC (Fig. 8b/8g);
    - {b switch detours} — extra topology levels needed to cover a job's
      switches beyond its servers (Fig. 8c/8h);
    - {b switch load} — time-weighted per-dimension switch utilization
      (Fig. 8d/8i);
    - {b placement latency} — submission until all tasks of a task group
      are running (Fig. 8e/8j);
    - {b solver wall times} — measured MCMF solve times (Fig. 7). *)

type t

val create : Topology.Fat_tree.t -> t

val on_submit : t -> time:float -> Hire.Poly_req.t -> unit

(** One task of [tg] placed on [machine].  [charged] is the switch-side
    demand actually charged (network groups only), used for load
    accounting. *)
val on_place :
  t -> time:float -> tg:Hire.Poly_req.task_group -> machine:int -> charged:Prelude.Vec.t option -> unit

(** One task finished; [released] mirrors [charged]. *)
val on_task_complete :
  t -> time:float -> tg:Hire.Poly_req.task_group -> released:Prelude.Vec.t option -> unit

(** The group was dropped (flavor decision or fallback). *)
val on_cancel : t -> time:float -> tg:Hire.Poly_req.task_group -> unit

(** {2 Fault injection} *)

(** One running task killed by a node failure; [released] mirrors the
    charged switch demand (load accounting, like {!on_task_complete}). *)
val on_task_kill :
  t -> time:float -> tg:Hire.Poly_req.task_group -> released:Prelude.Vec.t option -> unit

(** [n] killed tasks of [tg] were re-enqueued: the group drops out of
    the satisfied state until they are re-placed; re-satisfaction feeds
    the time-to-reschedule histogram (plus placement latency if the
    group had never been fully placed before). *)
val on_requeue : t -> time:float -> tg:Hire.Poly_req.task_group -> n:int -> unit

(** [n] killed tasks of [tg] exhausted the retry budget: the group is
    cancelled. *)
val on_fault_cancel : t -> time:float -> tg:Hire.Poly_req.task_group -> n:int -> unit

val on_node_fail : t -> time:float -> unit
val on_node_recover : t -> time:float -> downtime_s:float -> unit

(** Record a measured MCMF solve (flow-based schedulers only). *)
val on_solver_sample : t -> wall_s:float -> unit

(** Count a scheduling round; [resilience] (if the scheduler runs a
    solver-resilience policy) feeds the degraded/fallback/guard
    aggregates. *)
val on_round : ?resilience:Scheduler_intf.round_resilience -> t -> think_s:float -> unit

(** Close the load integrals at simulation end. *)
val finalize : t -> time:float -> unit

(** Aggregated results. *)
type report = {
  jobs_total : int;
  inc_jobs_total : int;  (** jobs that requested INC *)
  inc_jobs_served : int;  (** ... whose chosen INC groups all ran with INC *)
  inc_tgs_total : int;
  inc_tgs_unserved : int;
  tgs_total : int;
  tgs_satisfied : int;
  detour_mean : float;
  span_mean : float;
      (** mean topology levels needed to cover a job's servers and
          switches together (fabric footprint; companion to detours) *)
  detour_samples : int;
  switch_load : Prelude.Vec.t;  (** time-weighted used fraction per dimension *)
  placement_latency : Obs.Histogram.t;
      (** seconds from submission to full placement, satisfied groups
          only; merge across seeds with [Obs.Histogram.merged] *)
  solver_wall : Obs.Histogram.t;  (** measured MCMF solve seconds *)
  rounds : int;
  think_total : float;
  node_fails : int;  (** fault events delivered (servers + switches) *)
  node_recoveries : int;
  tasks_killed : int;  (** running tasks lost to node failures *)
  requeues : int;  (** killed tasks re-enqueued through the scheduler *)
  fault_cancels : int;  (** killed tasks cancelled after max retries *)
  tgs_cancelled : int;  (** task groups ending cancelled (any cause) *)
  time_to_reschedule : Obs.Histogram.t;
      (** seconds from a fault-driven requeue until the group is fully
          placed again *)
  node_downtime : Obs.Histogram.t;  (** per-recovery outage seconds *)
  degraded_rounds : int;
      (** rounds applied from a budget-truncated solve or the greedy
          placer (docs/RESILIENCE.md) *)
  fallback_rounds : int;  (** rounds that advanced past the primary backend *)
  fallback_depth_max : int;  (** deepest chain rung ever applied *)
  guard_trips : int;  (** solutions quarantined by the invariant guard *)
  salvaged_tasks : int;  (** tasks placed by degraded rounds *)
}

val report : t -> report

val inc_satisfaction_ratio : report -> float
val inc_tg_unserved_ratio : report -> float
val pp_report : Format.formatter -> report -> unit

(** Journal-checkpoint serialization (docs/JOURNAL.md): all accumulated
    state — per-group and per-job records, the four histograms
    (bit-exact through {!Obs.Histogram.to_raw}), the switch-load
    integral, and every counter — so a restored collector produces the
    same [report] as the uninterrupted run.  [restore] replaces the
    collector's contents in place and raises {!Prelude.Codec.Error} on
    malformed blobs. *)
val snapshot : t -> string

val restore : t -> string -> unit
