let header =
  String.concat ","
    [
      "scheduler";
      "mu";
      "setup";
      "seed";
      "jobs";
      "inc_jobs";
      "inc_jobs_served";
      "inc_satisfaction";
      "inc_tgs";
      "inc_tgs_unserved";
      "tgs_total";
      "tgs_satisfied";
      "detour_mean";
      "span_mean";
      "load_recirc";
      "load_stages";
      "load_sram";
      "latency_p50_s";
      "latency_p99_s";
      "solver_p50_ms";
      "rounds";
    ]

let fault_columns =
  [
    "node_fails";
    "node_recoveries";
    "tasks_killed";
    "requeues";
    "fault_cancels";
    "reschedule_p50_s";
    "downtime_p50_s";
  ]

let header_with_faults = header ^ "," ^ String.concat "," fault_columns

let resilience_columns =
  [
    "degraded_rounds"; "fallback_rounds"; "fallback_depth_max"; "guard_trips";
    "salvaged_tasks";
  ]

let full_header ?(faults = false) ?(resilience = false) () =
  let cols = if faults then [ header; String.concat "," fault_columns ] else [ header ] in
  let cols = if resilience then cols @ [ String.concat "," resilience_columns ] else cols in
  String.concat "," cols

let quantile_or_zero q h = if Obs.Histogram.count h = 0 then 0.0 else Obs.Histogram.quantile h q

let row ?(faults = false) ?(resilience = false) ~scheduler ~mu ~setup ~seed
    (r : Metrics.report) =
  let base =
    Printf.sprintf
      "%s,%.3f,%s,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%.4f,%.4f,%.5f,%.5f,%.5f,%.4f,%.4f,%.4f,%d"
      scheduler mu
      (Cluster.inc_setup_to_string setup)
      seed r.jobs_total r.inc_jobs_total r.inc_jobs_served
      (Metrics.inc_satisfaction_ratio r)
      r.inc_tgs_total r.inc_tgs_unserved r.tgs_total r.tgs_satisfied r.detour_mean r.span_mean
      r.switch_load.(0) r.switch_load.(1) r.switch_load.(2)
      (quantile_or_zero 0.5 r.placement_latency)
      (quantile_or_zero 0.99 r.placement_latency)
      (1000.0 *. quantile_or_zero 0.5 r.solver_wall)
      r.rounds
  in
  let base =
    if not faults then base
    else
      base
      ^ Printf.sprintf ",%d,%d,%d,%d,%d,%.4f,%.4f" r.node_fails r.node_recoveries
          r.tasks_killed r.requeues r.fault_cancels
          (quantile_or_zero 0.5 r.time_to_reschedule)
          (quantile_or_zero 0.5 r.node_downtime)
  in
  if not resilience then base
  else
    base
    ^ Printf.sprintf ",%d,%d,%d,%d,%d" r.degraded_rounds r.fallback_rounds
        r.fallback_depth_max r.guard_trips r.salvaged_tasks

let write_file ?(faults = false) ?(resilience = false) path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (full_header ~faults ~resilience ());
      output_char oc '\n';
      List.iter
        (fun r ->
          output_string oc r;
          output_char oc '\n')
        rows)
