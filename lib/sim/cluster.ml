module Vec = Prelude.Vec
module Fat_tree = Topology.Fat_tree
module Sharing = Hire.Sharing
module Poly_req = Hire.Poly_req

type inc_setup = Homogeneous | Heterogeneous

let inc_setup_to_string = function
  | Homogeneous -> "homogeneous"
  | Heterogeneous -> "heterogeneous"

type t = {
  topo : Fat_tree.t;
  server_cap : Vec.t;
  switch_cap : Vec.t;
  server_avail : (int, Vec.t) Hashtbl.t;
  sharing : Sharing.t;
  dead : (int, float) Hashtbl.t;  (* node -> failure time *)
  dirty : Hire.Dirty.t;  (* ledger changes since the last network build *)
}

let create ?server_capacity ?switch_capacity ?inc_capable_fraction ?topology ~k ~setup ~services rng =
  let server_cap =
    match server_capacity with
    | Some c -> c
    | None -> Topology.Resource.Server.default_capacity
  in
  let switch_cap =
    match switch_capacity with
    | Some c -> c
    | None -> Topology.Resource.Switch.default_capacity
  in
  let topo = match topology with Some t -> t | None -> Fat_tree.create ~k in
  let server_avail = Hashtbl.create 256 in
  Array.iter (fun s -> Hashtbl.replace server_avail s (Vec.copy server_cap)) (Fat_tree.servers topo);
  let service_arr = Array.of_list services in
  (* Keep the paper's servers-per-INC-switch ratio (k = 26 ⇒ 5.2) at any
     scale: only a k/26 fraction of switches offer INC. *)
  let fraction =
    match inc_capable_fraction with
    | Some f -> Float.max 0.0 (Float.min 1.0 f)
    | None -> Float.min 1.0 (float_of_int k /. 26.0)
  in
  let all_switches = Fat_tree.switches topo in
  let capable = Hashtbl.create 64 in
  let n_capable =
    max 1 (int_of_float (Float.round (fraction *. float_of_int (Array.length all_switches))))
  in
  List.iter
    (fun s -> Hashtbl.replace capable s ())
    (Prelude.Rng.sample_without_replacement rng ~n:n_capable all_switches);
  let supported switch =
    if not (Hashtbl.mem capable switch) then []
    else begin
      match setup with
      | Homogeneous -> services
      | Heterogeneous ->
          if Array.length service_arr <= 2 then services
          else Prelude.Rng.sample_without_replacement rng ~n:2 service_arr
    end
  in
  let sharing = Sharing.create ~topo ~capacity:switch_cap ~supported in
  {
    topo;
    server_cap;
    switch_cap;
    server_avail;
    sharing;
    dead = Hashtbl.create 16;
    dirty = Hire.Dirty.create ~node_count:(Fat_tree.node_count topo);
  }

let topo t = t.topo
let sharing t = t.sharing

(* ------------------------------------------------------------------ *)
(* Liveness (fault injection)                                         *)
(* ------------------------------------------------------------------ *)

let is_alive t node = not (Hashtbl.mem t.dead node)
let n_dead t = Hashtbl.length t.dead

let fail_node t ~time node =
  if Hashtbl.mem t.dead node then
    invalid_arg (Printf.sprintf "Cluster.fail_node: node %d is already down" node);
  (* Ledgers are untouched: the simulator kills and releases the node's
     running tasks first, so capacity conservation holds through the
     outage (a recovered node comes back with exactly its capacity). *)
  if not (Fat_tree.is_server t.topo node) then Sharing.set_alive t.sharing node false;
  Hire.Dirty.mark_structural t.dirty;
  Hashtbl.replace t.dead node time

let recover_node t node =
  match Hashtbl.find_opt t.dead node with
  | None -> invalid_arg (Printf.sprintf "Cluster.recover_node: node %d is up" node)
  | Some failed_at ->
      Hashtbl.remove t.dead node;
      if not (Fat_tree.is_server t.topo node) then Sharing.set_alive t.sharing node true;
      Hire.Dirty.mark_structural t.dirty;
      failed_at

let n_inc_capable t =
  Array.fold_left
    (fun acc s -> if Sharing.supported_services t.sharing s = [] then acc else acc + 1)
    0
    (Fat_tree.switches t.topo)
let n_servers t = Array.length (Fat_tree.servers t.topo)
let n_switches t = Array.length (Fat_tree.switches t.topo)

let server_available t s =
  match Hashtbl.find_opt t.server_avail s with
  | Some v -> Vec.copy v
  | None -> invalid_arg (Printf.sprintf "Cluster.server_available: %d is not a server" s)

let server_capacity t = Vec.copy t.server_cap

let view t =
  {
    Hire.View.topo = t.topo;
    server_capacity = t.server_cap;
    server_available = (fun s -> server_available t s);
    sharing = t.sharing;
    alive = (fun node -> is_alive t node);
    dirty = Some t.dirty;
  }

let place_server_task t ~server ~demand =
  match Hashtbl.find_opt t.server_avail server with
  | None -> invalid_arg (Printf.sprintf "Cluster.place_server_task: %d is not a server" server)
  | Some avail ->
      if not (is_alive t server) then
        invalid_arg (Printf.sprintf "Cluster.place_server_task: server %d is down" server);
      if not (Vec.fits ~demand ~available:avail) then
        invalid_arg
          (Printf.sprintf "Cluster.place_server_task: demand does not fit on server %d" server);
      Vec.sub_into avail demand;
      Hire.Dirty.mark_server t.dirty server

let release_server_task t ~server ~demand =
  match Hashtbl.find_opt t.server_avail server with
  | None -> invalid_arg "Cluster.release_server_task: not a server"
  | Some avail ->
      Vec.add_into avail demand;
      (* Defensive ledger check: a refund beyond capacity means a double
         release (or a release with the wrong demand).  Fail loudly —
         the fault-injection requeue path leans on this invariant —
         while tolerating floating-point drift from charge/refund
         cycles. *)
      Array.iteri
        (fun i x ->
          let cap = t.server_cap.(i) in
          let eps = 1e-6 *. (1.0 +. Float.abs cap) in
          if x > cap +. eps then begin
            if Obs.enabled () then
              Obs.Registry.incr (Obs.Registry.counter "cluster.over_release");
            invalid_arg
              (Printf.sprintf "Cluster.release_server_task: over-release on server %d (dimension %d)"
                 server i)
          end
          else if x > cap then avail.(i) <- cap)
        avail;
      Hire.Dirty.mark_server t.dirty server

let network_parts tg ~shared =
  match tg.Poly_req.kind with
  | Poly_req.Server_tg -> invalid_arg "Cluster: not a network task group"
  | Poly_req.Network_tg n ->
      if shared then (n.Poly_req.service, n.Poly_req.per_switch, tg.Poly_req.demand)
      else
        (* Baselines cannot track reuse: fold the registration into the
           per-instance demand so nothing is ever shared. *)
        ( n.Poly_req.service,
          Vec.zero (Vec.dim tg.Poly_req.demand),
          Vec.add n.Poly_req.per_switch tg.Poly_req.demand )

let place_network_task t ~switch ~tg ~shared =
  let service, per_switch, per_instance = network_parts tg ~shared in
  let charged =
    Sharing.effective_demand t.sharing ~switch ~service ~per_switch ~per_instance
  in
  Sharing.place t.sharing ~switch ~service ~per_switch ~per_instance;
  Hire.Dirty.mark_switch t.dirty switch;
  charged

let release_network_task t ~switch ~tg ~shared =
  let service, _per_switch, per_instance = network_parts tg ~shared in
  Sharing.release t.sharing ~switch ~service ~per_instance;
  Hire.Dirty.mark_switch t.dirty switch

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (journal checkpoints, docs/JOURNAL.md)           *)
(* ------------------------------------------------------------------ *)

(* Topology, capacities and the INC capability map are reproduced by
   rebuilding the cluster from its seed; the snapshot carries only the
   dynamic ledgers: server availability (in [Fat_tree.servers] order),
   the dead set (sorted), and the switch-sharing state. *)
let snapshot t =
  let module Enc = Prelude.Codec.Enc in
  let e = Enc.create () in
  Enc.array e
    (fun e s -> Enc.float_array e (Hashtbl.find t.server_avail s))
    (Fat_tree.servers t.topo);
  let dead =
    Hashtbl.fold (fun n tm acc -> (n, tm) :: acc) t.dead []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Enc.list e
    (fun e (n, tm) ->
      Enc.int e n;
      Enc.f64 e tm)
    dead;
  Sharing.encode_state t.sharing e;
  Enc.to_string e

let restore t blob =
  let module Dec = Prelude.Codec.Dec in
  let d = Dec.of_string blob in
  let servers = Fat_tree.servers t.topo in
  let n = Dec.uint d in
  if n <> Array.length servers then
    raise
      (Prelude.Codec.Error
         (Printf.sprintf "Cluster.restore: snapshot has %d servers, cluster has %d" n
            (Array.length servers)));
  Array.iter
    (fun s ->
      let avail = Dec.float_array d in
      let dst = Hashtbl.find t.server_avail s in
      if Array.length avail <> Array.length dst then
        raise (Prelude.Codec.Error "Cluster.restore: server dimension mismatch");
      Array.blit avail 0 dst 0 (Array.length avail))
    servers;
  Hashtbl.reset t.dead;
  List.iter
    (fun (node, tm) -> Hashtbl.replace t.dead node tm)
    (Dec.list d (fun d ->
         let node = Dec.int d in
         let tm = Dec.f64 d in
         (node, tm)));
  Sharing.decode_state t.sharing d;
  if not (Dec.at_end d) then
    raise (Prelude.Codec.Error "Cluster.restore: trailing bytes in snapshot");
  (* Everything may have moved: force the next network build to start
     from a clean rebuild rather than an incremental patch. *)
  Hire.Dirty.mark_structural t.dirty

let server_utilization_avg t =
  let acc = Vec.zero (Vec.dim t.server_cap) in
  let n = ref 0 in
  Hashtbl.iter
    (fun _ avail ->
      Vec.add_into acc (Topology.Resource.utilization ~capacity:t.server_cap ~available:avail);
      incr n)
    t.server_avail;
  if !n = 0 then acc else Vec.scale (1.0 /. float_of_int !n) acc

let switch_used_total t = Sharing.total_used t.sharing

let switch_capacity_total t =
  Vec.scale (float_of_int (n_switches t)) t.switch_cap
