module Poly_req = Hire.Poly_req

type config = {
  drain : float;
  min_round_interval : float;
  no_progress_backoff : float;
  gang : bool;
}

let default_config =
  { drain = 300.0; min_round_interval = 0.001; no_progress_backoff = 0.25; gang = false }

type event =
  | Arrival of Poly_req.t
  | Round
  | Complete of int  (* running-task token *)
  | Node_fail of int
  | Node_recover of int
  | Retry of Poly_req.t

(* One running task.  Tokens decouple completion events from the task
   registry: a task killed by a node failure simply disappears from the
   registry and its already-queued [Complete] becomes a no-op. *)
type running = {
  r_tg : Poly_req.task_group;
  r_machine : int;
  r_shared : bool;
  r_charged : Prelude.Vec.t option;
}

type gang_entry = {
  target : int;  (* instances the group needs before any task starts *)
  mutable g_placed : int;
  mutable held : int list;  (* tokens holding resources until assembly *)
}

type result = { report : Metrics.report; end_time : float; events_processed : int }

let run ?(config = default_config) ?faults ?fault_policy cluster
    (sched : Scheduler_intf.t) arrivals =
  let policy = match fault_policy with Some p -> p | None -> Faults.Policy.default in
  let queue = Event_queue.create () in
  let metrics = Metrics.create (Cluster.topo cluster) in
  let last_arrival =
    List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 arrivals
  in
  let hard_end = last_arrival +. config.drain in
  List.iter (fun (t, poly) -> Event_queue.push queue ~time:t (Arrival poly)) arrivals;
  (match faults with
  | None -> ()
  | Some plan ->
      (* Plan events past [hard_end] cannot affect any placement; letting
         them through would only stretch [end_time] and the load
         integrals, skewing faulty vs fault-free comparisons.  A recover
         whose fail did make it in is clamped to [hard_end] so every
         seeded outage stays paired. *)
      let down_at_end : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (e : Faults.Plan.event) ->
          match e.kind with
          | Faults.Plan.Fail ->
              if e.time <= hard_end then begin
                Hashtbl.replace down_at_end e.node ();
                Event_queue.push queue ~time:e.time (Node_fail e.node)
              end
          | Faults.Plan.Recover ->
              if Hashtbl.mem down_at_end e.node then begin
                Hashtbl.remove down_at_end e.node;
                Event_queue.push queue ~time:(Float.min e.time hard_end)
                  (Node_recover e.node)
              end)
        (Faults.Plan.events plan));
  let round_armed = ref false in
  let arm_round ~time delay =
    if not !round_armed && time +. delay <= hard_end then begin
      round_armed := true;
      Event_queue.push queue ~time:(time +. Float.max delay config.min_round_interval) Round
    end
  in
  let events = ref 0 in
  let now = ref 0.0 in
  (* ---- running-task registry ---- *)
  let next_token = ref 0 in
  let running : (int, running) Hashtbl.t = Hashtbl.create 1024 in
  let on_machine : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let register token r =
    Hashtbl.replace running token r;
    let tbl =
      match Hashtbl.find_opt on_machine r.r_machine with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace on_machine r.r_machine tbl;
          tbl
    in
    Hashtbl.replace tbl token ()
  in
  let unregister token r =
    Hashtbl.remove running token;
    match Hashtbl.find_opt on_machine r.r_machine with
    | Some tbl -> Hashtbl.remove tbl token
    | None -> ()
  in
  let release_resources (r : running) =
    match r.r_tg.Poly_req.kind with
    | Poly_req.Server_tg ->
        Cluster.release_server_task cluster ~server:r.r_machine
          ~demand:r.r_tg.Poly_req.demand
    | Poly_req.Network_tg _ ->
        Cluster.release_network_task cluster ~switch:r.r_machine ~tg:r.r_tg
          ~shared:r.r_shared
  in
  (* ---- requeue state ---- *)
  (* Per task group: how many times a failure already sent it back. *)
  let attempts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* Groups whose retry budget is exhausted: a still-queued [Retry] for
     such a group must not resubmit it. *)
  let cancelled_tgs : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Requeued clones carry a synthetic (negative) poly job id so that
     scheduler-internal keying never collides with a live original; the
     embedded task groups keep their real ids for metrics and ledgers. *)
  let next_requeue_job = ref (-1) in
  let job_priority : (int, Workload.Job.priority) Hashtbl.t = Hashtbl.create 256 in
  (* Gang semantics (§5.1: no partial scheduling): tasks of a group hold
     their resources from placement, but only start running — and hence
     schedule completions — once the whole group is placed. *)
  let gang_state : (int, gang_entry) Hashtbl.t = Hashtbl.create 64 in
  let schedule_completion ~time token (r : running) =
    Event_queue.push queue ~time:(time +. r.r_tg.Poly_req.duration) (Complete token)
  in
  let apply_placement ~time (p : Scheduler_intf.placement) =
    (* The scheduler has already charged the ledgers. *)
    if Obs.enabled () then
      Obs.Trace.emit "task_place"
        [
          ("tg", Obs.Trace.Int p.tg.Poly_req.tg_id);
          ("job", Obs.Trace.Int p.tg.Poly_req.job_id);
          ("machine", Obs.Trace.Int p.machine);
        ];
    Metrics.on_place metrics ~time ~tg:p.tg ~machine:p.machine ~charged:p.charged;
    let token = !next_token in
    incr next_token;
    let r =
      { r_tg = p.tg; r_machine = p.machine; r_shared = p.shared; r_charged = p.charged }
    in
    register token r;
    if not config.gang then schedule_completion ~time token r
    else begin
      let tg_id = p.tg.Poly_req.tg_id in
      let ge =
        match Hashtbl.find_opt gang_state tg_id with
        | Some ge -> ge
        | None ->
            (* The target is fixed at first sight of the group: a requeue
               clone for the lost instances re-arms it with just those. *)
            let ge = { target = p.tg.Poly_req.count; g_placed = 0; held = [] } in
            Hashtbl.replace gang_state tg_id ge;
            ge
      in
      ge.g_placed <- ge.g_placed + 1;
      ge.held <- token :: ge.held;
      if ge.g_placed >= ge.target then begin
        Hashtbl.remove gang_state tg_id;
        (* No member runs before the last one lands, so every completion
           is anchored at the assembly time — not each task's own
           placement time. *)
        List.iter
          (fun tok ->
            match Hashtbl.find_opt running tok with
            | Some r -> schedule_completion ~time tok r
            | None -> () (* killed while the gang was assembling *))
          ge.held
      end
    end
  in
  (* ---- fault handling ---- *)
  let kill_tasks_on ~time machine =
    (* Tokens sorted for a deterministic kill order regardless of hash
       internals. *)
    let tokens =
      match Hashtbl.find_opt on_machine machine with
      | None -> []
      | Some tbl -> List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
    in
    let killed_per_tg : (int, Poly_req.task_group * int ref) Hashtbl.t = Hashtbl.create 8 in
    let kill_order = ref [] in
    List.iter
      (fun token ->
        match Hashtbl.find_opt running token with
        | None -> ()
        | Some r ->
            unregister token r;
            release_resources r;
            (if config.gang then
               match Hashtbl.find_opt gang_state r.r_tg.Poly_req.tg_id with
               | Some ge ->
                   ge.g_placed <- ge.g_placed - 1;
                   ge.held <- List.filter (fun tok -> tok <> token) ge.held
               | None -> ());
            if Obs.enabled () then begin
              Obs.Trace.emit "task_kill"
                [
                  ("tg", Obs.Trace.Int r.r_tg.Poly_req.tg_id);
                  ("machine", Obs.Trace.Int machine);
                ];
              Obs.Registry.incr (Obs.Registry.counter "sim.task_kills")
            end;
            Metrics.on_task_kill metrics ~time ~tg:r.r_tg ~released:r.r_charged;
            sched.on_task_complete ~time ~tg:r.r_tg ~machine;
            (match Hashtbl.find_opt killed_per_tg r.r_tg.Poly_req.tg_id with
            | Some (_, n) -> incr n
            | None ->
                kill_order := r.r_tg.Poly_req.tg_id :: !kill_order;
                Hashtbl.replace killed_per_tg r.r_tg.Poly_req.tg_id (r.r_tg, ref 1)))
      tokens;
    List.rev_map (fun tg_id -> Hashtbl.find killed_per_tg tg_id) !kill_order
  in
  let requeue_or_cancel ~time ((tg : Poly_req.task_group), n) =
    let n = !n in
    let attempt = 1 + (match Hashtbl.find_opt attempts tg.tg_id with Some a -> a | None -> 0) in
    Hashtbl.replace attempts tg.tg_id attempt;
    let retry_time = time +. Faults.Policy.delay policy ~attempt in
    if attempt > policy.Faults.Policy.max_retries || retry_time > hard_end then begin
      if Obs.enabled () then begin
        Obs.Registry.incr ~by:n (Obs.Registry.counter "sim.fault_cancels");
        Obs.Trace.emit "tg_fault_cancel"
          [ ("tg", Obs.Trace.Int tg.tg_id); ("lost", Obs.Trace.Int n) ]
      end;
      Metrics.on_fault_cancel metrics ~time ~tg ~n;
      (* A cancelled group can never finish: stop the scheduler from
         placing its remaining instances, and tear down any siblings
         still holding resources while the gang was assembling —
         otherwise their capacity leaks for the rest of the run. *)
      Hashtbl.replace cancelled_tgs tg.tg_id ();
      sched.drop_task_group ~time ~tg_id:tg.tg_id;
      match Hashtbl.find_opt gang_state tg.tg_id with
      | None -> ()
      | Some ge ->
          Hashtbl.remove gang_state tg.tg_id;
          List.iter
            (fun tok ->
              match Hashtbl.find_opt running tok with
              | None -> ()
              | Some r ->
                  unregister tok r;
                  release_resources r;
                  if Obs.enabled () then begin
                    Obs.Trace.emit "task_kill"
                      [
                        ("tg", Obs.Trace.Int r.r_tg.Poly_req.tg_id);
                        ("machine", Obs.Trace.Int r.r_machine);
                      ];
                    Obs.Registry.incr (Obs.Registry.counter "sim.task_kills")
                  end;
                  Metrics.on_task_kill metrics ~time ~tg:r.r_tg ~released:r.r_charged;
                  sched.on_task_complete ~time ~tg:r.r_tg ~machine:r.r_machine)
            (List.rev ge.held)
    end
    else begin
      if Obs.enabled () then begin
        Obs.Registry.incr ~by:n (Obs.Registry.counter "sim.requeues");
        Obs.Trace.emit "tg_requeue"
          [
            ("tg", Obs.Trace.Int tg.tg_id);
            ("lost", Obs.Trace.Int n);
            ("attempt", Obs.Trace.Int attempt);
          ]
      end;
      Metrics.on_requeue metrics ~time ~tg ~n;
      (* Re-submit only the lost instances, flavor already materialized
         (the original decision stands; re-placement must not reopen
         it). *)
      let clone = { tg with Poly_req.count = n; flavor = Hire.Flavor.all_x 0 } in
      let priority =
        match Hashtbl.find_opt job_priority tg.Poly_req.job_id with
        | Some p -> p
        | None -> Workload.Job.Batch
      in
      let job_id = !next_requeue_job in
      decr next_requeue_job;
      let poly =
        {
          Poly_req.job_id;
          priority;
          arrival = retry_time;
          flavor_len = 0;
          task_groups = [ clone ];
        }
      in
      Event_queue.push queue ~time:retry_time (Retry poly)
    end
  in
  let rec loop () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, ev) ->
        now := Float.max !now time;
        incr events;
        if Obs.enabled () then Obs.Trace.set_sim_time time;
        (match ev with
        | Arrival poly ->
            if Obs.enabled () then begin
              Obs.Trace.emit "job_submit"
                [
                  ("job", Obs.Trace.Int poly.Poly_req.job_id);
                  ("task_groups", Obs.Trace.Int (List.length poly.Poly_req.task_groups));
                ];
              Obs.Registry.incr (Obs.Registry.counter "sim.arrivals")
            end;
            Hashtbl.replace job_priority poly.Poly_req.job_id poly.Poly_req.priority;
            Metrics.on_submit metrics ~time poly;
            sched.submit ~time poly;
            arm_round ~time 0.0
        | Retry poly ->
            (* Metrics saw the requeue at kill time; this is the delayed
               re-submission of the lost instances.  Groups cancelled in
               the meantime (a later failure exhausted the budget) are
               dropped rather than resubmitted. *)
            let live =
              List.filter
                (fun (tg : Poly_req.task_group) ->
                  not (Hashtbl.mem cancelled_tgs tg.Poly_req.tg_id))
                poly.Poly_req.task_groups
            in
            if live <> [] then begin
              if Obs.enabled () then
                Obs.Trace.emit "tg_resubmit"
                  [ ("job", Obs.Trace.Int poly.Poly_req.job_id) ];
              sched.submit ~time { poly with Poly_req.task_groups = live };
              arm_round ~time 0.0
            end
        | Round ->
            round_armed := false;
            let res = sched.round ~time in
            if Obs.enabled () then begin
              Obs.Registry.incr (Obs.Registry.counter "sim.rounds");
              Obs.Registry.incr
                ~by:(List.length res.placements)
                (Obs.Registry.counter "sim.placements");
              Obs.Registry.incr
                ~by:(List.length res.cancelled)
                (Obs.Registry.counter "sim.cancels");
              List.iter
                (fun (tg : Poly_req.task_group) ->
                  Obs.Trace.emit "tg_cancel"
                    [
                      ("tg", Obs.Trace.Int tg.Poly_req.tg_id);
                      ("job", Obs.Trace.Int tg.Poly_req.job_id);
                    ])
                res.cancelled
            end;
            Metrics.on_round ?resilience:res.resilience metrics ~think_s:res.think;
            (match res.solver_wall with
            | Some w -> Metrics.on_solver_sample metrics ~wall_s:w
            | None -> ());
            List.iter (apply_placement ~time) res.placements;
            List.iter (fun tg -> Metrics.on_cancel metrics ~time ~tg) res.cancelled;
            if sched.pending () then begin
              let delay =
                if res.placements <> [] || res.cancelled <> [] then res.think
                else Float.max res.think config.no_progress_backoff
              in
              arm_round ~time delay
            end
        | Complete token -> (
            match Hashtbl.find_opt running token with
            | None -> () (* killed by a node failure; already released *)
            | Some r ->
                unregister token r;
                let tg = r.r_tg and machine = r.r_machine in
                release_resources r;
                if Obs.enabled () then begin
                  Obs.Trace.emit "task_complete"
                    [
                      ("tg", Obs.Trace.Int tg.Poly_req.tg_id);
                      ("machine", Obs.Trace.Int machine);
                    ];
                  Obs.Registry.incr (Obs.Registry.counter "sim.completions")
                end;
                Metrics.on_task_complete metrics ~time ~tg ~released:r.r_charged;
                sched.on_task_complete ~time ~tg ~machine;
                if sched.pending () then arm_round ~time config.min_round_interval)
        | Node_fail node ->
            if Cluster.is_alive cluster node then begin
              let killed = kill_tasks_on ~time node in
              Cluster.fail_node cluster ~time node;
              Metrics.on_node_fail metrics ~time;
              sched.on_node_event ~time ~node ~up:false;
              if Obs.enabled () then begin
                Obs.Registry.incr (Obs.Registry.counter "sim.node_fails");
                Obs.Trace.emit "node_fail"
                  [
                    ("node", Obs.Trace.Int node);
                    ("killed", Obs.Trace.Int (List.length killed));
                  ]
              end;
              List.iter (requeue_or_cancel ~time) killed
            end
        | Node_recover node ->
            if not (Cluster.is_alive cluster node) then begin
              let failed_at = Cluster.recover_node cluster node in
              Metrics.on_node_recover metrics ~time ~downtime_s:(time -. failed_at);
              sched.on_node_event ~time ~node ~up:true;
              if Obs.enabled () then begin
                Obs.Registry.incr (Obs.Registry.counter "sim.node_recoveries");
                Obs.Trace.emit "node_recover"
                  [
                    ("node", Obs.Trace.Int node);
                    ("downtime_s", Obs.Trace.Float (time -. failed_at));
                  ]
              end;
              (* Fresh capacity may unblock pending work. *)
              if sched.pending () then arm_round ~time config.min_round_interval
            end);
        loop ()
  in
  loop ();
  Metrics.finalize metrics ~time:(Float.max !now hard_end);
  if Obs.enabled () then begin
    Obs.Trace.set_sim_time !now;
    Obs.Trace.emit "sim_end"
      [ ("events", Obs.Trace.Int !events); ("end_time", Obs.Trace.Float !now) ]
  end;
  { report = Metrics.report metrics; end_time = !now; events_processed = !events }
