module Poly_req = Hire.Poly_req
module Vec = Prelude.Vec

type config = {
  drain : float;
  min_round_interval : float;
  no_progress_backoff : float;
  gang : bool;
  deterministic_wall : bool;
}

let default_config =
  {
    drain = 300.0;
    min_round_interval = 0.001;
    no_progress_backoff = 0.25;
    gang = false;
    deterministic_wall = false;
  }

type event =
  | Arrival of Poly_req.t
  | Round
  | Complete of int  (* running-task token *)
  | Node_fail of int
  | Node_recover of int
  | Retry of Poly_req.t

(* One running task.  Tokens decouple completion events from the task
   registry: a task killed by a node failure simply disappears from the
   registry and its already-queued [Complete] becomes a no-op. *)
type running = {
  r_tg : Poly_req.task_group;
  r_machine : int;
  r_shared : bool;
  r_charged : Prelude.Vec.t option;
}

type gang_entry = {
  target : int;  (* instances the group needs before any task starts *)
  mutable g_placed : int;
  mutable held : int list;  (* tokens holding resources until assembly *)
}

type result = { report : Metrics.report; end_time : float; events_processed : int }

(* The live simulation: the event loop's whole state as an explicit
   record so it can be advanced one event at a time ([step]), journaled
   (docs/JOURNAL.md) and checkpointed ([snapshot]/[restore]). *)
type t = {
  config : config;
  policy : Faults.Policy.t;
  cluster : Cluster.t;
  sched : Scheduler_intf.t;
  queue : event Event_queue.t;
  metrics : Metrics.t;
  mutable hard_end : float;
      (* scheduling horizon: last arrival + drain.  Mutable because
         externally injected submissions ([inject], docs/SERVER.md)
         extend it — an open-ended admission server has no static last
         arrival. *)
  mutable round_armed : bool;
  mutable events : int;
  mutable now : float;
  mutable rounds : int;
  (* ---- running-task registry ---- *)
  mutable next_token : int;
  running : (int, running) Hashtbl.t;
  on_machine : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  (* ---- requeue state ---- *)
  attempts : (int, int) Hashtbl.t;
      (* per task group: how many times a failure already sent it back *)
  cancelled_tgs : (int, unit) Hashtbl.t;
      (* groups whose retry budget is exhausted: a still-queued [Retry]
         for such a group must not resubmit it *)
  mutable next_requeue_job : int;
      (* requeued clones carry a synthetic (negative) poly job id so
         that scheduler-internal keying never collides with a live
         original; the embedded task groups keep their real ids for
         metrics and ledgers *)
  job_priority : (int, Workload.Job.priority) Hashtbl.t;
  gang_state : (int, gang_entry) Hashtbl.t;
      (* gang semantics (§5.1: no partial scheduling): tasks of a group
         hold their resources from placement, but only start running —
         and hence schedule completions — once the whole group is
         placed *)
}

let init ?(config = default_config) ?faults ?fault_policy cluster
    (sched : Scheduler_intf.t) arrivals =
  let policy = match fault_policy with Some p -> p | None -> Faults.Policy.default in
  let queue = Event_queue.create () in
  let metrics = Metrics.create (Cluster.topo cluster) in
  let last_arrival = List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 arrivals in
  let hard_end = last_arrival +. config.drain in
  List.iter (fun (t, poly) -> Event_queue.push queue ~time:t (Arrival poly)) arrivals;
  (match faults with
  | None -> ()
  | Some plan ->
      (* Plan events past [hard_end] cannot affect any placement; letting
         them through would only stretch [end_time] and the load
         integrals, skewing faulty vs fault-free comparisons.  A recover
         whose fail did make it in is clamped to [hard_end] so every
         seeded outage stays paired. *)
      let down_at_end : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (e : Faults.Plan.event) ->
          match e.kind with
          | Faults.Plan.Fail ->
              if e.time <= hard_end then begin
                Hashtbl.replace down_at_end e.node ();
                Event_queue.push queue ~time:e.time (Node_fail e.node)
              end
          | Faults.Plan.Recover ->
              if Hashtbl.mem down_at_end e.node then begin
                Hashtbl.remove down_at_end e.node;
                Event_queue.push queue ~time:(Float.min e.time hard_end)
                  (Node_recover e.node)
              end)
        (Faults.Plan.events plan));
  {
    config;
    policy;
    cluster;
    sched;
    queue;
    metrics;
    hard_end;
    round_armed = false;
    events = 0;
    now = 0.0;
    rounds = 0;
    next_token = 0;
    running = Hashtbl.create 1024;
    on_machine = Hashtbl.create 256;
    attempts = Hashtbl.create 64;
    cancelled_tgs = Hashtbl.create 16;
    next_requeue_job = -1;
    job_priority = Hashtbl.create 256;
    gang_state = Hashtbl.create 64;
  }

let arm_round t ~time delay =
  if (not t.round_armed) && time +. delay <= t.hard_end then begin
    t.round_armed <- true;
    Event_queue.push t.queue
      ~time:(time +. Float.max delay t.config.min_round_interval)
      Round
  end

let register t token r =
  Hashtbl.replace t.running token r;
  let tbl =
    match Hashtbl.find_opt t.on_machine r.r_machine with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.on_machine r.r_machine tbl;
        tbl
  in
  Hashtbl.replace tbl token ()

let unregister t token r =
  Hashtbl.remove t.running token;
  match Hashtbl.find_opt t.on_machine r.r_machine with
  | Some tbl -> Hashtbl.remove tbl token
  | None -> ()

let release_resources t (r : running) =
  match r.r_tg.Poly_req.kind with
  | Poly_req.Server_tg ->
      Cluster.release_server_task t.cluster ~server:r.r_machine
        ~demand:r.r_tg.Poly_req.demand
  | Poly_req.Network_tg _ ->
      Cluster.release_network_task t.cluster ~switch:r.r_machine ~tg:r.r_tg
        ~shared:r.r_shared

let schedule_completion t ~time token (r : running) =
  Event_queue.push t.queue ~time:(time +. r.r_tg.Poly_req.duration) (Complete token)

let apply_placement t ~time (p : Scheduler_intf.placement) =
  (* The scheduler has already charged the ledgers. *)
  if Obs.enabled () then
    Obs.Trace.emit "task_place"
      [
        ("tg", Obs.Trace.Int p.tg.Poly_req.tg_id);
        ("job", Obs.Trace.Int p.tg.Poly_req.job_id);
        ("machine", Obs.Trace.Int p.machine);
      ];
  Metrics.on_place t.metrics ~time ~tg:p.tg ~machine:p.machine ~charged:p.charged;
  let token = t.next_token in
  t.next_token <- t.next_token + 1;
  let r =
    { r_tg = p.tg; r_machine = p.machine; r_shared = p.shared; r_charged = p.charged }
  in
  register t token r;
  if not t.config.gang then schedule_completion t ~time token r
  else begin
    let tg_id = p.tg.Poly_req.tg_id in
    let ge =
      match Hashtbl.find_opt t.gang_state tg_id with
      | Some ge -> ge
      | None ->
          (* The target is fixed at first sight of the group: a requeue
             clone for the lost instances re-arms it with just those. *)
          let ge = { target = p.tg.Poly_req.count; g_placed = 0; held = [] } in
          Hashtbl.replace t.gang_state tg_id ge;
          ge
    in
    ge.g_placed <- ge.g_placed + 1;
    ge.held <- token :: ge.held;
    if ge.g_placed >= ge.target then begin
      Hashtbl.remove t.gang_state tg_id;
      (* No member runs before the last one lands, so every completion
         is anchored at the assembly time — not each task's own
         placement time. *)
      List.iter
        (fun tok ->
          match Hashtbl.find_opt t.running tok with
          | Some r -> schedule_completion t ~time tok r
          | None -> () (* killed while the gang was assembling *))
        ge.held
    end
  end

(* ---- fault handling ---- *)

let kill_tasks_on t ~time machine =
  (* Tokens sorted for a deterministic kill order regardless of hash
     internals. *)
  let tokens =
    match Hashtbl.find_opt t.on_machine machine with
    | None -> []
    | Some tbl -> List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
  in
  let killed_per_tg : (int, Poly_req.task_group * int ref) Hashtbl.t = Hashtbl.create 8 in
  let kill_order = ref [] in
  List.iter
    (fun token ->
      match Hashtbl.find_opt t.running token with
      | None -> ()
      | Some r ->
          unregister t token r;
          release_resources t r;
          (if t.config.gang then
             match Hashtbl.find_opt t.gang_state r.r_tg.Poly_req.tg_id with
             | Some ge ->
                 ge.g_placed <- ge.g_placed - 1;
                 ge.held <- List.filter (fun tok -> tok <> token) ge.held
             | None -> ());
          if Obs.enabled () then begin
            Obs.Trace.emit "task_kill"
              [
                ("tg", Obs.Trace.Int r.r_tg.Poly_req.tg_id);
                ("machine", Obs.Trace.Int machine);
              ];
            Obs.Registry.incr (Obs.Registry.counter "sim.task_kills")
          end;
          Metrics.on_task_kill t.metrics ~time ~tg:r.r_tg ~released:r.r_charged;
          t.sched.on_task_complete ~time ~tg:r.r_tg ~machine;
          (match Hashtbl.find_opt killed_per_tg r.r_tg.Poly_req.tg_id with
          | Some (_, n) -> incr n
          | None ->
              kill_order := r.r_tg.Poly_req.tg_id :: !kill_order;
              Hashtbl.replace killed_per_tg r.r_tg.Poly_req.tg_id (r.r_tg, ref 1)))
    tokens;
  List.rev_map (fun tg_id -> Hashtbl.find killed_per_tg tg_id) !kill_order

let requeue_or_cancel t ~emit ~time ((tg : Poly_req.task_group), n) =
  let n = !n in
  let attempt =
    1 + (match Hashtbl.find_opt t.attempts tg.Poly_req.tg_id with Some a -> a | None -> 0)
  in
  Hashtbl.replace t.attempts tg.Poly_req.tg_id attempt;
  let retry_time = time +. Faults.Policy.delay t.policy ~attempt in
  if attempt > t.policy.Faults.Policy.max_retries || retry_time > t.hard_end then begin
    emit (Wal.Fault_cancel { time; tg_id = tg.Poly_req.tg_id; lost = n });
    if Obs.enabled () then begin
      Obs.Registry.incr ~by:n (Obs.Registry.counter "sim.fault_cancels");
      Obs.Trace.emit "tg_fault_cancel"
        [ ("tg", Obs.Trace.Int tg.Poly_req.tg_id); ("lost", Obs.Trace.Int n) ]
    end;
    Metrics.on_fault_cancel t.metrics ~time ~tg ~n;
    (* A cancelled group can never finish: stop the scheduler from
       placing its remaining instances, and tear down any siblings
       still holding resources while the gang was assembling —
       otherwise their capacity leaks for the rest of the run. *)
    Hashtbl.replace t.cancelled_tgs tg.Poly_req.tg_id ();
    t.sched.drop_task_group ~time ~tg_id:tg.Poly_req.tg_id;
    match Hashtbl.find_opt t.gang_state tg.Poly_req.tg_id with
    | None -> ()
    | Some ge ->
        Hashtbl.remove t.gang_state tg.Poly_req.tg_id;
        List.iter
          (fun tok ->
            match Hashtbl.find_opt t.running tok with
            | None -> ()
            | Some r ->
                unregister t tok r;
                release_resources t r;
                if Obs.enabled () then begin
                  Obs.Trace.emit "task_kill"
                    [
                      ("tg", Obs.Trace.Int r.r_tg.Poly_req.tg_id);
                      ("machine", Obs.Trace.Int r.r_machine);
                    ];
                  Obs.Registry.incr (Obs.Registry.counter "sim.task_kills")
                end;
                Metrics.on_task_kill t.metrics ~time ~tg:r.r_tg ~released:r.r_charged;
                t.sched.on_task_complete ~time ~tg:r.r_tg ~machine:r.r_machine)
          (List.rev ge.held)
  end
  else begin
    emit
      (Wal.Requeue { time; tg_id = tg.Poly_req.tg_id; lost = n; attempt; retry_time });
    if Obs.enabled () then begin
      Obs.Registry.incr ~by:n (Obs.Registry.counter "sim.requeues");
      Obs.Trace.emit "tg_requeue"
        [
          ("tg", Obs.Trace.Int tg.Poly_req.tg_id);
          ("lost", Obs.Trace.Int n);
          ("attempt", Obs.Trace.Int attempt);
        ]
    end;
    Metrics.on_requeue t.metrics ~time ~tg ~n;
    (* Re-submit only the lost instances, flavor already materialized
       (the original decision stands; re-placement must not reopen
       it). *)
    let clone = { tg with Poly_req.count = n; flavor = Hire.Flavor.all_x 0 } in
    let priority =
      match Hashtbl.find_opt t.job_priority tg.Poly_req.job_id with
      | Some p -> p
      | None -> Workload.Job.Batch
    in
    let job_id = t.next_requeue_job in
    t.next_requeue_job <- t.next_requeue_job - 1;
    let poly =
      {
        Poly_req.job_id;
        priority;
        arrival = retry_time;
        flavor_len = 0;
        task_groups = [ clone ];
      }
    in
    Event_queue.push t.queue ~time:retry_time (Retry poly)
  end

let no_emit : Wal.record -> unit = fun _ -> ()

(* Process one event.  [emit] receives the WAL record(s) the event gives
   rise to, in order, before their effects become externally visible
   (for [Round]: after the scheduler decided — and charged the ledgers —
   but before the placements are applied; see docs/JOURNAL.md for the
   exact protocol).  Returns [false] once the queue is empty. *)
let step ?(emit = no_emit) t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
      t.now <- Float.max t.now time;
      t.events <- t.events + 1;
      if Obs.enabled () then Obs.Trace.set_sim_time time;
      (match ev with
      | Arrival poly ->
          emit (Wal.Submit { time; job_id = poly.Poly_req.job_id });
          if Obs.enabled () then begin
            Obs.Trace.emit "job_submit"
              [
                ("job", Obs.Trace.Int poly.Poly_req.job_id);
                ("task_groups", Obs.Trace.Int (List.length poly.Poly_req.task_groups));
              ];
            Obs.Registry.incr (Obs.Registry.counter "sim.arrivals")
          end;
          Hashtbl.replace t.job_priority poly.Poly_req.job_id poly.Poly_req.priority;
          Metrics.on_submit t.metrics ~time poly;
          t.sched.submit ~time poly;
          arm_round t ~time 0.0
      | Retry poly ->
          (* Metrics saw the requeue at kill time; this is the delayed
             re-submission of the lost instances.  Groups cancelled in
             the meantime (a later failure exhausted the budget) are
             dropped rather than resubmitted. *)
          let live =
            List.filter
              (fun (tg : Poly_req.task_group) ->
                not (Hashtbl.mem t.cancelled_tgs tg.Poly_req.tg_id))
              poly.Poly_req.task_groups
          in
          if live <> [] then begin
            emit
              (Wal.Resubmit
                 {
                   time;
                   job_id = poly.Poly_req.job_id;
                   tg_ids = List.map (fun (tg : Poly_req.task_group) -> tg.tg_id) live;
                 });
            if Obs.enabled () then
              Obs.Trace.emit "tg_resubmit" [ ("job", Obs.Trace.Int poly.Poly_req.job_id) ];
            t.sched.submit ~time { poly with Poly_req.task_groups = live };
            arm_round t ~time 0.0
          end
      | Round ->
          t.round_armed <- false;
          let res = t.sched.round ~time in
          t.rounds <- t.rounds + 1;
          emit
            (Wal.Round
               {
                 time;
                 round = t.rounds;
                 placements =
                   List.map
                     (fun (p : Scheduler_intf.placement) ->
                       (p.tg.Poly_req.tg_id, p.machine))
                     res.placements;
                 cancelled =
                   List.map (fun (tg : Poly_req.task_group) -> tg.tg_id) res.cancelled;
                 think = res.think;
               });
          if Obs.enabled () then begin
            Obs.Registry.incr (Obs.Registry.counter "sim.rounds");
            Obs.Registry.incr
              ~by:(List.length res.placements)
              (Obs.Registry.counter "sim.placements");
            Obs.Registry.incr
              ~by:(List.length res.cancelled)
              (Obs.Registry.counter "sim.cancels");
            List.iter
              (fun (tg : Poly_req.task_group) ->
                Obs.Trace.emit "tg_cancel"
                  [
                    ("tg", Obs.Trace.Int tg.Poly_req.tg_id);
                    ("job", Obs.Trace.Int tg.Poly_req.job_id);
                  ])
              res.cancelled
          end;
          Metrics.on_round ?resilience:res.resilience t.metrics ~think_s:res.think;
          (match res.solver_wall with
          | Some w ->
              (* Journaled runs substitute the simulated think time for
                 the measured wall time: replayed rounds do not re-run
                 the solver under identical machine conditions, and the
                 recovery proof demands byte-identical metrics. *)
              let w = if t.config.deterministic_wall then res.think else w in
              Metrics.on_solver_sample t.metrics ~wall_s:w
          | None -> ());
          List.iter (apply_placement t ~time) res.placements;
          List.iter (fun tg -> Metrics.on_cancel t.metrics ~time ~tg) res.cancelled;
          (if t.sched.pending () then begin
             let delay =
               if res.placements <> [] || res.cancelled <> [] then res.think
               else Float.max res.think t.config.no_progress_backoff
             in
             arm_round t ~time delay
           end);
          emit (Wal.Commit { round = t.rounds })
      | Complete token -> (
          match Hashtbl.find_opt t.running token with
          | None -> () (* killed by a node failure; already released *)
          | Some r ->
              let tg = r.r_tg and machine = r.r_machine in
              emit (Wal.Complete { time; token; tg_id = tg.Poly_req.tg_id; machine });
              unregister t token r;
              release_resources t r;
              if Obs.enabled () then begin
                Obs.Trace.emit "task_complete"
                  [
                    ("tg", Obs.Trace.Int tg.Poly_req.tg_id);
                    ("machine", Obs.Trace.Int machine);
                  ];
                Obs.Registry.incr (Obs.Registry.counter "sim.completions")
              end;
              Metrics.on_task_complete t.metrics ~time ~tg ~released:r.r_charged;
              t.sched.on_task_complete ~time ~tg ~machine;
              if t.sched.pending () then arm_round t ~time t.config.min_round_interval)
      | Node_fail node ->
          if Cluster.is_alive t.cluster node then begin
            let killed = kill_tasks_on t ~time node in
            Cluster.fail_node t.cluster ~time node;
            emit
              (Wal.Node_fail
                 {
                   time;
                   node;
                   killed =
                     List.map
                       (fun ((tg : Poly_req.task_group), n) -> (tg.tg_id, !n))
                       killed;
                 });
            Metrics.on_node_fail t.metrics ~time;
            t.sched.on_node_event ~time ~node ~up:false;
            if Obs.enabled () then begin
              Obs.Registry.incr (Obs.Registry.counter "sim.node_fails");
              Obs.Trace.emit "node_fail"
                [
                  ("node", Obs.Trace.Int node);
                  ("killed", Obs.Trace.Int (List.length killed));
                ]
            end;
            List.iter (requeue_or_cancel t ~emit ~time) killed
          end
      | Node_recover node ->
          if not (Cluster.is_alive t.cluster node) then begin
            let failed_at = Cluster.recover_node t.cluster node in
            emit (Wal.Node_recover { time; node; downtime_s = time -. failed_at });
            Metrics.on_node_recover t.metrics ~time ~downtime_s:(time -. failed_at);
            t.sched.on_node_event ~time ~node ~up:true;
            if Obs.enabled () then begin
              Obs.Registry.incr (Obs.Registry.counter "sim.node_recoveries");
              Obs.Trace.emit "node_recover"
                [
                  ("node", Obs.Trace.Int node);
                  ("downtime_s", Obs.Trace.Float (time -. failed_at));
                ]
            end;
            (* Fresh capacity may unblock pending work. *)
            if t.sched.pending () then arm_round t ~time t.config.min_round_interval
          end);
      true

let finish t =
  Metrics.finalize t.metrics ~time:(Float.max t.now t.hard_end);
  if Obs.enabled () then begin
    Obs.Trace.set_sim_time t.now;
    Obs.Trace.emit "sim_end"
      [ ("events", Obs.Trace.Int t.events); ("end_time", Obs.Trace.Float t.now) ]
  end;
  { report = Metrics.report t.metrics; end_time = t.now; events_processed = t.events }

let run ?config ?faults ?fault_policy cluster sched arrivals =
  let t = init ?config ?faults ?fault_policy cluster sched arrivals in
  while step t do
    ()
  done;
  finish t

let now t = t.now
let events_processed t = t.events
let rounds t = t.rounds
let metrics t = t.metrics
let quiescent t = Event_queue.is_empty t.queue

(* External submission (admission front-end, docs/SERVER.md): queue an
   arrival the static spec knows nothing about and push the scheduling
   horizon out past it.  Callers must only inject between [step]s and at
   non-decreasing times — the journal replays injections at their
   recorded positions, so the live order is the replayed order. *)
let inject t ~time poly =
  if not (Float.is_finite time) then invalid_arg "Simulator.inject: non-finite time";
  if time < t.now then invalid_arg "Simulator.inject: time precedes simulated now";
  t.hard_end <- Float.max t.hard_end (time +. t.config.drain);
  Event_queue.push t.queue ~time
    (Arrival { poly with Poly_req.arrival = time })

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (journal checkpoints, docs/JOURNAL.md)           *)
(* ------------------------------------------------------------------ *)

module Enc = Prelude.Codec.Enc
module Dec = Prelude.Codec.Dec

let enc_event e = function
  | Arrival poly ->
      Enc.byte e 0;
      Hire.Persist.enc_poly e poly
  | Round -> Enc.byte e 1
  | Complete token ->
      Enc.byte e 2;
      Enc.uint e token
  | Node_fail node ->
      Enc.byte e 3;
      Enc.int e node
  | Node_recover node ->
      Enc.byte e 4;
      Enc.int e node
  | Retry poly ->
      Enc.byte e 5;
      Hire.Persist.enc_poly e poly

let dec_event d =
  match Dec.byte d with
  | 0 -> Arrival (Hire.Persist.dec_poly d)
  | 1 -> Round
  | 2 -> Complete (Dec.uint d)
  | 3 -> Node_fail (Dec.int d)
  | 4 -> Node_recover (Dec.int d)
  | 5 -> Retry (Hire.Persist.dec_poly d)
  | b -> raise (Prelude.Codec.Error (Printf.sprintf "Simulator: bad event tag %d" b))

let sorted_int_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let can_snapshot t = t.sched.Scheduler_intf.persist <> None

(* Everything the event loop owns, plus the cluster, metrics and
   scheduler states as nested blobs.  The static inputs (topology,
   arrival stream, fault plan, config) are NOT captured — a snapshot is
   only meaningful overlaid on a simulation rebuilt from the same spec
   ([init] with identical inputs), which reproduces them exactly. *)
let snapshot t =
  match t.sched.Scheduler_intf.persist with
  | None -> None
  | Some persist ->
      let e = Enc.create () in
      Enc.f64 e t.now;
      (* Dynamic since [inject]: a rebuilt world derives the horizon
         from the static arrivals only, so the snapshot must carry it. *)
      Enc.f64 e t.hard_end;
      Enc.uint e t.events;
      Enc.uint e t.rounds;
      Enc.uint e t.next_token;
      Enc.int e t.next_requeue_job;
      Enc.bool e t.round_armed;
      Enc.uint e (Event_queue.next_seq t.queue);
      Enc.list e
        (fun e (time, seq, ev) ->
          Enc.f64 e time;
          Enc.uint e seq;
          enc_event e ev)
        (Event_queue.entries t.queue);
      Enc.list e
        (fun e (token, r) ->
          Enc.uint e token;
          Hire.Persist.enc_task_group e r.r_tg;
          Enc.int e r.r_machine;
          Enc.bool e r.r_shared;
          Enc.option e Enc.float_array r.r_charged)
        (sorted_int_bindings t.running);
      Enc.list e
        (fun e (tg_id, ge) ->
          Enc.int e tg_id;
          Enc.uint e ge.target;
          Enc.uint e ge.g_placed;
          Enc.list e Enc.uint ge.held)
        (sorted_int_bindings t.gang_state);
      Enc.list e
        (fun e (tg_id, a) ->
          Enc.int e tg_id;
          Enc.uint e a)
        (sorted_int_bindings t.attempts);
      Enc.list e Enc.int
        (List.map fst (sorted_int_bindings t.cancelled_tgs));
      Enc.list e
        (fun e (job_id, p) ->
          Enc.int e job_id;
          Hire.Persist.enc_priority e p)
        (sorted_int_bindings t.job_priority);
      Enc.string e (Cluster.snapshot t.cluster);
      Enc.string e (Metrics.snapshot t.metrics);
      Enc.string e (persist.Scheduler_intf.snapshot ());
      Some (Enc.to_string e)

let restore t blob =
  let persist =
    match t.sched.Scheduler_intf.persist with
    | Some p -> p
    | None ->
        raise
          (Prelude.Codec.Error
             "Simulator.restore: scheduler has no persist capability")
  in
  let d = Dec.of_string blob in
  t.now <- Dec.f64 d;
  t.hard_end <- Dec.f64 d;
  t.events <- Dec.uint d;
  t.rounds <- Dec.uint d;
  t.next_token <- Dec.uint d;
  t.next_requeue_job <- Dec.int d;
  t.round_armed <- Dec.bool d;
  let next_seq = Dec.uint d in
  let entries =
    Dec.list d (fun d ->
        let time = Dec.f64 d in
        let seq = Dec.uint d in
        let ev = dec_event d in
        (time, seq, ev))
  in
  (try Event_queue.restore t.queue ~next_seq entries
   with Invalid_argument msg -> raise (Prelude.Codec.Error ("Simulator.restore: " ^ msg)));
  Hashtbl.reset t.running;
  Hashtbl.reset t.on_machine;
  List.iter
    (fun (token, r) -> register t token r)
    (Dec.list d (fun d ->
         let token = Dec.uint d in
         let r_tg = Hire.Persist.dec_task_group d in
         let r_machine = Dec.int d in
         let r_shared = Dec.bool d in
         let r_charged = Dec.option d Dec.float_array in
         (token, { r_tg; r_machine; r_shared; r_charged })));
  Hashtbl.reset t.gang_state;
  List.iter
    (fun (tg_id, ge) -> Hashtbl.replace t.gang_state tg_id ge)
    (Dec.list d (fun d ->
         let tg_id = Dec.int d in
         let target = Dec.uint d in
         let g_placed = Dec.uint d in
         let held = Dec.list d Dec.uint in
         (tg_id, { target; g_placed; held })));
  Hashtbl.reset t.attempts;
  List.iter
    (fun (tg_id, a) -> Hashtbl.replace t.attempts tg_id a)
    (Dec.list d (fun d ->
         let tg_id = Dec.int d in
         let a = Dec.uint d in
         (tg_id, a)));
  Hashtbl.reset t.cancelled_tgs;
  List.iter (fun tg_id -> Hashtbl.replace t.cancelled_tgs tg_id ()) (Dec.list d Dec.int);
  Hashtbl.reset t.job_priority;
  List.iter
    (fun (job_id, p) -> Hashtbl.replace t.job_priority job_id p)
    (Dec.list d (fun d ->
         let job_id = Dec.int d in
         let p = Hire.Persist.dec_priority d in
         (job_id, p)));
  Cluster.restore t.cluster (Dec.string d);
  Metrics.restore t.metrics (Dec.string d);
  persist.Scheduler_intf.restore (Dec.string d);
  if not (Dec.at_end d) then
    raise (Prelude.Codec.Error "Simulator.restore: trailing bytes in snapshot")

(* ------------------------------------------------------------------ *)
(* Post-recovery invariant check (docs/JOURNAL.md)                     *)
(* ------------------------------------------------------------------ *)

(* Recompute expected ledger usage from the running-task registry and
   compare with the cluster's actual ledgers: every charge must be
   accounted for by a live task.  Catches restores that drifted from
   the journaled history before the drift can corrupt a run. *)
let ledger_check t =
  let topo = Cluster.topo t.cluster in
  let used : (int, Vec.t) Hashtbl.t = Hashtbl.create 64 in
  let charge machine v =
    match Hashtbl.find_opt used machine with
    | Some acc -> Vec.add_into acc v
    | None -> Hashtbl.replace used machine (Vec.copy v)
  in
  (* Sharing semantics (Hire.Sharing): a shared service's per-switch
     registration is charged once, by whichever instance arrives first,
     and refunded only when the last one leaves — so it cannot be
     attributed to any single token ([r_charged] embeds the asymmetry).
     Reconstruct it the way the ledger accounts it: per-instance demand
     per token, plus one registration per distinct (switch, service)
     with live shared instances. *)
  let reg_seen : (int * string, unit) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ r ->
      let demand = r.r_tg.Poly_req.demand in
      match r.r_tg.Poly_req.kind with
      | Poly_req.Server_tg -> charge r.r_machine demand
      | Poly_req.Network_tg n ->
          if r.r_shared then begin
            charge r.r_machine demand;
            if not (Hashtbl.mem reg_seen (r.r_machine, n.Poly_req.service)) then begin
              Hashtbl.add reg_seen (r.r_machine, n.Poly_req.service) ();
              charge r.r_machine n.Poly_req.per_switch
            end
          end
          else
            (* Unshared placements fold the registration into every
               instance (Cluster.network_parts). *)
            charge r.r_machine (Vec.add n.Poly_req.per_switch demand))
    t.running;
  let mismatch = ref None in
  let check ~what ~id ~cap ~avail =
    if !mismatch = None then begin
      let expected =
        match Hashtbl.find_opt used id with
        | Some v -> Vec.sub cap v
        | None -> cap
      in
      Array.iteri
        (fun i x ->
          let eps = 1e-6 *. (1.0 +. Float.abs cap.(i)) in
          if !mismatch = None && Float.abs (x -. avail.(i)) > eps then
            mismatch :=
              Some
                (Printf.sprintf
                   "%s %d dimension %d: ledger has %.9g available, running tasks imply %.9g"
                   what id i avail.(i) x))
        expected
    end
  in
  let server_cap = Cluster.server_capacity t.cluster in
  Array.iter
    (fun s ->
      check ~what:"server" ~id:s ~cap:server_cap
        ~avail:(Cluster.server_available t.cluster s))
    (Topology.Fat_tree.servers topo);
  let sharing = Cluster.sharing t.cluster in
  let switch_cap = Hire.Sharing.capacity sharing in
  Array.iter
    (fun sw ->
      check ~what:"switch" ~id:sw ~cap:switch_cap
        ~avail:(Hire.Sharing.available sharing sw))
    (Hire.Sharing.switch_ids sharing);
  match !mismatch with None -> Ok () | Some msg -> Error msg
