module Poly_req = Hire.Poly_req

type config = {
  drain : float;
  min_round_interval : float;
  no_progress_backoff : float;
  gang : bool;
}

let default_config =
  { drain = 300.0; min_round_interval = 0.001; no_progress_backoff = 0.25; gang = false }

type event =
  | Arrival of Poly_req.t
  | Round
  | Complete of {
      tg : Poly_req.task_group;
      machine : int;
      shared : bool;
      released : Prelude.Vec.t option;
    }

type result = { report : Metrics.report; end_time : float; events_processed : int }

let run ?(config = default_config) cluster (sched : Scheduler_intf.t) arrivals =
  let queue = Event_queue.create () in
  let metrics = Metrics.create (Cluster.topo cluster) in
  let last_arrival =
    List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 arrivals
  in
  let hard_end = last_arrival +. config.drain in
  List.iter (fun (t, poly) -> Event_queue.push queue ~time:t (Arrival poly)) arrivals;
  let round_armed = ref false in
  let arm_round ~time delay =
    if not !round_armed && time +. delay <= hard_end then begin
      round_armed := true;
      Event_queue.push queue ~time:(time +. Float.max delay config.min_round_interval) Round
    end
  in
  let events = ref 0 in
  let now = ref 0.0 in
  (* Gang semantics (§5.1: no partial scheduling): tasks of a group hold
     their resources from placement, but only start running — and hence
     schedule completions — once the whole group is placed. *)
  let gang_state : (int, int * Scheduler_intf.placement list) Hashtbl.t = Hashtbl.create 64 in
  let schedule_completion ~time (p : Scheduler_intf.placement) =
    Event_queue.push queue
      ~time:(time +. p.tg.Poly_req.duration)
      (Complete { tg = p.tg; machine = p.machine; shared = p.shared; released = p.charged })
  in
  let apply_placement ~time (p : Scheduler_intf.placement) =
    (* The scheduler has already charged the ledgers. *)
    if Obs.enabled () then
      Obs.Trace.emit "task_place"
        [
          ("tg", Obs.Trace.Int p.tg.Poly_req.tg_id);
          ("job", Obs.Trace.Int p.tg.Poly_req.job_id);
          ("machine", Obs.Trace.Int p.machine);
        ];
    Metrics.on_place metrics ~time ~tg:p.tg ~machine:p.machine ~charged:p.charged;
    if not config.gang then schedule_completion ~time p
    else begin
      let tg_id = p.tg.Poly_req.tg_id in
      let placed, held =
        match Hashtbl.find_opt gang_state tg_id with Some x -> x | None -> (0, [])
      in
      let placed = placed + 1 and held = p :: held in
      if placed >= p.tg.Poly_req.count then begin
        Hashtbl.remove gang_state tg_id;
        List.iter (schedule_completion ~time) held
      end
      else Hashtbl.replace gang_state tg_id (placed, held)
    end
  in
  let rec loop () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, ev) ->
        now := Float.max !now time;
        incr events;
        if Obs.enabled () then Obs.Trace.set_sim_time time;
        (match ev with
        | Arrival poly ->
            if Obs.enabled () then begin
              Obs.Trace.emit "job_submit"
                [
                  ("job", Obs.Trace.Int poly.Poly_req.job_id);
                  ("task_groups", Obs.Trace.Int (List.length poly.Poly_req.task_groups));
                ];
              Obs.Registry.incr (Obs.Registry.counter "sim.arrivals")
            end;
            Metrics.on_submit metrics ~time poly;
            sched.submit ~time poly;
            arm_round ~time 0.0
        | Round ->
            round_armed := false;
            let res = sched.round ~time in
            if Obs.enabled () then begin
              Obs.Registry.incr (Obs.Registry.counter "sim.rounds");
              Obs.Registry.incr
                ~by:(List.length res.placements)
                (Obs.Registry.counter "sim.placements");
              Obs.Registry.incr
                ~by:(List.length res.cancelled)
                (Obs.Registry.counter "sim.cancels");
              List.iter
                (fun (tg : Poly_req.task_group) ->
                  Obs.Trace.emit "tg_cancel"
                    [
                      ("tg", Obs.Trace.Int tg.Poly_req.tg_id);
                      ("job", Obs.Trace.Int tg.Poly_req.job_id);
                    ])
                res.cancelled
            end;
            Metrics.on_round metrics ~think_s:res.think;
            (match res.solver_wall with
            | Some w -> Metrics.on_solver_sample metrics ~wall_s:w
            | None -> ());
            List.iter (apply_placement ~time) res.placements;
            List.iter (fun tg -> Metrics.on_cancel metrics ~time ~tg) res.cancelled;
            if sched.pending () then begin
              let delay =
                if res.placements <> [] || res.cancelled <> [] then res.think
                else Float.max res.think config.no_progress_backoff
              in
              arm_round ~time delay
            end
        | Complete { tg; machine; shared; released } ->
            (match tg.Poly_req.kind with
            | Poly_req.Server_tg ->
                Cluster.release_server_task cluster ~server:machine ~demand:tg.Poly_req.demand
            | Poly_req.Network_tg _ ->
                Cluster.release_network_task cluster ~switch:machine ~tg ~shared);
            if Obs.enabled () then begin
              Obs.Trace.emit "task_complete"
                [
                  ("tg", Obs.Trace.Int tg.Poly_req.tg_id);
                  ("machine", Obs.Trace.Int machine);
                ];
              Obs.Registry.incr (Obs.Registry.counter "sim.completions")
            end;
            Metrics.on_task_complete metrics ~time ~tg ~released;
            sched.on_task_complete ~time ~tg ~machine;
            if sched.pending () then arm_round ~time config.min_round_interval);
        loop ()
  in
  loop ();
  Metrics.finalize metrics ~time:(Float.max !now hard_end);
  if Obs.enabled () then begin
    Obs.Trace.set_sim_time !now;
    Obs.Trace.emit "sim_end"
      [ ("events", Obs.Trace.Int !events); ("end_time", Obs.Trace.Float !now) ]
  end;
  { report = Metrics.report metrics; end_time = !now; events_processed = !events }
