(* Journaled scheduler service: the serial event loop with a write-ahead
   log underneath (docs/JOURNAL.md).  Every externally visible decision
   is appended to the WAL before it takes effect; [Wal.Commit] records
   are the durability barriers (fsync), and every [checkpoint_every]-th
   round a full snapshot is written so recovery replays only a suffix. *)

let wal_name = "wal.bin"
let wal_path dir = Filename.concat dir wal_name

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

type t = {
  dir : string;
  checkpoint_every : int;  (* rounds between checkpoints; <= 0 disables *)
  sim : Simulator.t;
  sink : Journal.Sink.t;
  mutable next_gen : int;
  mutable observer : Wal.record -> unit;
      (* tap on every record the live event loop appends; the admission
         front-end (docs/SERVER.md) tracks per-job progress through it *)
}

let sim t = t.sim
let set_observer t f = t.observer <- f
let wal_seq t = Journal.Sink.next_seq t.sink

let write_checkpoint t =
  match Simulator.snapshot t.sim with
  | None -> ()  (* scheduler has no persist capability: genesis replay only *)
  | Some blob -> (
      (* Join outstanding overlapped fsyncs first: a checkpoint's
         [upto_seq] must never cover records that are not yet durable,
         or recovery after a crash would refuse the journal. *)
      Journal.Sink.barrier t.sink;
      (* Checkpoints are recovery accelerators, not a correctness
         dependency: a failed write (ENOSPC, EIO, injected) is skipped —
         recovery falls back to an older generation or genesis replay —
         and the same generation is retried at the next cadence.  A
         failed {e barrier} above still propagates: that is WAL
         durability, not checkpointing. *)
      match
        Journal.Checkpoint.write ~dir:t.dir ~gen:t.next_gen
          ~upto_seq:(Journal.Sink.next_seq t.sink)
          blob
      with
      | () -> t.next_gen <- t.next_gen + 1
      | exception Journal.Error.Journal_error (Journal.Error.Io _) -> ())

(* The WAL protocol: append every record as it is emitted (buffered,
   not yet durable); every round commit is a durability point,
   group-committed within a bounded window so one fsync covers the
   rounds that land inside it (see {!Journal.Sink}); checkpoint at each
   due round behind a sync barrier, so a checkpoint's [upto_seq] only
   ever covers durable records. *)
let live_emit t r =
  let (_ : int) = Journal.Sink.append t.sink (Wal.encode r) in
  t.observer r;
  match r with
  | Wal.Commit { round } ->
      Journal.Sink.commit t.sink;
      if t.checkpoint_every > 0 && round mod t.checkpoint_every = 0 then
        write_checkpoint t
  | _ -> ()

(* Manual append for input records ([Wal.Admit]/[Wal.Inject]): the
   admission layer writes them through the same sink so they land in
   stream order with the simulator's own records.  Buffered — call
   [ack_barrier] before acknowledging anything to a client. *)
let append t r =
  let (_ : int) = Journal.Sink.append t.sink (Wal.encode r) in
  ()

(* WAL-before-ack (docs/SERVER.md): every record appended so far is on
   disk when this returns, group-commit window notwithstanding. *)
let ack_barrier t =
  Journal.Sink.commit t.sink;
  Journal.Sink.barrier t.sink

(* Group-commit window: one fsync covers the rounds that land within
   20ms of the last sync.  On crash at most that window of committed
   records is lost — and deterministic replay re-derives them, so the
   recovered continuation is unaffected (docs/JOURNAL.md). *)
let default_fsync_interval_s = 0.02

let start ~dir ?(checkpoint_every = 0) ?(fsync_interval_s = default_fsync_interval_s)
    ~header sim =
  mkdir_p dir;
  let sink = Journal.Sink.create ~fsync_interval_s ~path:(wal_path dir) ~header () in
  { dir; checkpoint_every; sim; sink; next_gen = 0; observer = ignore }

type recovered = { service : t; replayed : int; from_checkpoint : int option }

let recover ~dir ?(checkpoint_every = 0)
    ?(fsync_interval_s = default_fsync_interval_s) ?on_input ?observe ~rebuild () =
  let path = wal_path dir in
  let loaded =
    match Journal.Source.load ~path with
    | Ok l -> l
    | Error e -> Journal.Error.raise_ e
  in
  (match loaded.Journal.Source.tail with
  | Journal.Source.Clean -> ()
  | Journal.Source.Torn _ ->
      (* The tear is cut when the sink reopens below. *)
      if Obs.enabled () then Obs.Registry.incr (Obs.Registry.counter "journal.torn_tail"));
  let sim = rebuild loaded.Journal.Source.header in
  let n = Array.length loaded.Journal.Source.records in
  let from_ =
    if not (Simulator.can_snapshot sim) then 0
    else
      match Journal.Checkpoint.latest ~dir with
      | None -> 0
      | Some c ->
          if c.Journal.Checkpoint.upto_seq > n then
            Journal.Error.raise_
              (Journal.Error.State
                 (Printf.sprintf
                    "checkpoint generation %d subsumes %d records but the journal \
                     holds only %d — the WAL lost committed data"
                    c.Journal.Checkpoint.gen c.Journal.Checkpoint.upto_seq n));
          (try Simulator.restore sim c.Journal.Checkpoint.blob
           with Prelude.Codec.Error msg ->
             Journal.Error.raise_
               (Journal.Error.State
                  (Printf.sprintf "checkpoint generation %d does not restore: %s"
                     c.Journal.Checkpoint.gen msg)));
          c.Journal.Checkpoint.upto_seq
  in
  let sink =
    Journal.Sink.open_append ~fsync_interval_s ~path
      ~valid_end:loaded.Journal.Source.valid_end ~next_seq:n ()
  in
  let next_gen =
    match Journal.Checkpoint.generations ~dir with [] -> 0 | g :: _ -> g + 1
  in
  let t = { dir; checkpoint_every; sim; sink; next_gen; observer = ignore } in
  (* Full-log scan for the caller's bookkeeping (admission tables,
     docs/SERVER.md) — checkpoint-agnostic on purpose: the overlay skips
     re-execution, not history.  Undecodable records are skipped here;
     if one matters, replay fails closed on it below. *)
  (match observe with
  | None -> ()
  | Some f ->
      Array.iter
        (fun body ->
          match Wal.decode body with
          | r -> f r
          | exception Prelude.Codec.Error _ -> ())
        loaded.Journal.Source.records);
  (* Install the observer before replay: a step that crosses the end of
     the stored log emits new records through [live_emit], and the
     caller's bookkeeping must see those too — the scan above only
     covered stored history. *)
  (match observe with None -> () | Some f -> t.observer <- f);
  let on_input = Option.map (fun f r -> f sim r) on_input in
  let replayed =
    Recovery.replay ?on_input sim ~records:loaded.Journal.Source.records ~from_
      ~live:(live_emit t)
  in
  (* First thing after landing: cross-check the restored ledgers against
     the running-task registry before any live decision builds on them. *)
  (match Simulator.ledger_check sim with
  | Ok () -> ()
  | Error msg ->
      Journal.Error.raise_
        (Journal.Error.State ("post-recovery ledger check failed: " ^ msg)));
  if Obs.enabled () then begin
    Obs.Registry.incr (Obs.Registry.counter "journal.recoveries");
    Obs.Registry.incr ~by:replayed (Obs.Registry.counter "journal.replayed_records")
  end;
  {
    service = t;
    replayed;
    from_checkpoint = (if from_ > 0 then Some from_ else None);
  }

(* Stepped execution for callers that interleave the event loop with
   external input (docs/SERVER.md). *)
let step t = Simulator.step ~emit:(live_emit t) t.sim

let finish t =
  Journal.Sink.commit t.sink;
  Journal.Sink.close t.sink;
  Simulator.finish t.sim

(* Run to completion.  A [Chaos.Crashed] from an armed crash point
   propagates to the caller with the sink already torn — exactly the
   state a real crash leaves behind. *)
let run t =
  while step t do
    ()
  done;
  finish t
