(** Crash recovery by deterministic re-execution (docs/JOURNAL.md).

    The simulator is deterministic given its spec, so recovery rebuilds
    a fresh world from the journaled spec, optionally overlays the
    newest checkpoint, and then {e re-runs} the simulation — validating
    every re-derived {!Wal} record byte-for-byte against the stored log
    instead of interpreting the log to mutate state.  When the log is
    exhausted the simulation stands exactly where the crashed run did,
    and keeps executing live. *)

(** [replay sim ~records ~from_ ~live] steps [sim] until the records
    from index [from_] to the end have all been re-derived and matched.
    A step that emits past the last stored record hands those records to
    [live] (they are new history, to be appended to the journal).
    Returns the number of records validated.

    Input records ({!Wal.Admit}/{!Wal.Inject}) are applied through
    [on_input] — at exactly the stream position the live run appended
    them — instead of being matched against re-execution: they carry
    external submissions {e into} the simulation (docs/SERVER.md).

    @raise Journal.Error.Journal_error [Divergence] when a re-derived
    record differs from the stored bytes, the log holds records the
    simulation never produces, or the log holds input records and no
    [on_input] was supplied.
    @raise Invalid_argument when [from_] is outside [\[0, length\]]. *)
val replay :
  ?on_input:(Wal.record -> unit) ->
  Simulator.t ->
  records:string array ->
  from_:int ->
  live:(Wal.record -> unit) ->
  int
