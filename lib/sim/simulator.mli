(** Discrete-event cluster-scheduling simulator (in the spirit of the
    paper's Omega-style simulator, §6.2).

    Events: job arrivals, scheduling rounds, task completions — and,
    with a {!Faults.Plan.t}, node failures/recoveries.  Rounds are
    triggered by state changes (arrivals, completions) and re-armed
    after the scheduler's simulated think time while it keeps making
    progress; an idle scheduler with unplaceable work backs off instead
    of busy-looping.  Schedulers charge the cluster ledgers while
    deciding; the simulator schedules the matching task completions,
    releases resources when tasks finish, and feeds the metrics.

    Fault semantics (docs/FAULTS.md): a [Node_fail] kills every task
    running on the node, refunds their ledger charges, flips the
    cluster's liveness mask, and notifies the scheduler; the lost
    instances of each affected task group are re-submitted as a
    materialized single-group request after an exponential backoff, up
    to the policy's retry budget, then cancelled.  A [Node_recover]
    restores the liveness mask and re-arms a round. *)

type config = {
  drain : float;
      (** seconds past the last arrival during which scheduling continues *)
  min_round_interval : float;  (** lower bound between rounds, seconds *)
  no_progress_backoff : float;  (** retry delay when a round placed nothing *)
  gang : bool;
      (** gang semantics (§5.1, no partial scheduling): tasks of a group
          hold resources from placement but start running — and complete —
          only once the whole group is placed (default false: tasks start
          as placed, the paper simulator's behaviour for latency
          accounting) *)
  deterministic_wall : bool;
      (** substitute the simulated think time for the measured solver
          wall time in the metrics (docs/JOURNAL.md): journaled runs
          need byte-identical reports across a crash/recovery replay,
          and measured wall times are the one nondeterministic input.
          Default false — the off path is byte-identical to the
          pre-journal simulator. *)
}

val default_config : config

type result = {
  report : Metrics.report;
  end_time : float;  (** simulated seconds at finalization *)
  events_processed : int;
}

(** [run ~config cluster scheduler arrivals] replays the arrival stream
    to completion and returns the metric report.

    [faults] injects a deterministic fail/recover script;
    [fault_policy] (default {!Faults.Policy.default}) governs the
    requeue/backoff of killed task groups.  Without [faults] the run is
    byte-identical to a fault-free simulator. *)
val run :
  ?config:config ->
  ?faults:Faults.Plan.t ->
  ?fault_policy:Faults.Policy.t ->
  Cluster.t ->
  Scheduler_intf.t ->
  (float * Hire.Poly_req.t) list ->
  result

(** {1 Stepped execution}

    The event loop as an explicit state machine, for callers that need
    to interleave the simulation with journaling (docs/JOURNAL.md):
    [run] above is exactly [init] + [step] to exhaustion + [finish]. *)

(** A live simulation. *)
type t

(** Same inputs as {!run}; the fault plan and arrival stream are queued
    up front, nothing is executed yet. *)
val init :
  ?config:config ->
  ?faults:Faults.Plan.t ->
  ?fault_policy:Faults.Policy.t ->
  Cluster.t ->
  Scheduler_intf.t ->
  (float * Hire.Poly_req.t) list ->
  t

(** Process the next event.  [emit] receives the {!Wal.record}s the
    event gives rise to — in order, before their effects become
    externally visible (a [Round] record is emitted after the scheduler
    decided, and charged the cluster ledgers, but before the placements
    enter the running-task registry).  Returns [false] once the event
    queue is empty. *)
val step : ?emit:(Wal.record -> unit) -> t -> bool

(** Finalize metrics and build the result (call once, after [step]
    returns [false]). *)
val finish : t -> result

val now : t -> float
val events_processed : t -> int

(** True when the event queue is empty (the next {!step} would return
    [false]). *)
val quiescent : t -> bool

(** [inject t ~time poly] queues an externally submitted job — one the
    static arrival stream knows nothing about — as an arrival at
    simulated time [time], rewriting [poly.arrival] to [time] and
    extending the scheduling horizon past it (admission front-end,
    docs/SERVER.md).  Only call between {!step}s, with non-decreasing
    times: journal recovery re-applies injections at their recorded
    stream positions, so the live interleaving must be reproducible.
    @raise Invalid_argument on a non-finite [time] or one before
    {!now}. *)
val inject : t -> time:float -> Hire.Poly_req.t -> unit

(** Scheduling rounds executed so far (= the [round] field of the last
    {!Wal.Round} record). *)
val rounds : t -> int

val metrics : t -> Metrics.t

(** {1 Checkpointing (docs/JOURNAL.md)} *)

(** Whether the scheduler offers {!Scheduler_intf.persist} — without it
    [snapshot] returns [None] and recovery must replay from genesis. *)
val can_snapshot : t -> bool

(** Serialize the complete dynamic state: event queue (with tie-break
    sequence numbers), running-task registry, requeue/gang bookkeeping,
    cluster ledgers, metrics, and the scheduler's own snapshot.  The
    static inputs (topology, arrivals, fault plan, config) are not
    captured — a snapshot only makes sense overlaid on a simulation
    rebuilt from the same spec. *)
val snapshot : t -> string option

(** Overlay a {!snapshot} onto a freshly {!init}ed simulation of the
    same spec.  @raise Prelude.Codec.Error on malformed or mismatched
    blobs. *)
val restore : t -> string -> unit

(** Recompute expected ledger usage from the running-task registry and
    compare against the cluster's actual ledgers, dimension by
    dimension.  [Error msg] names the first mismatch; run after
    recovery to catch a restore that drifted from the journaled
    history. *)
val ledger_check : t -> (unit, string) Stdlib.result
