(** Discrete-event cluster-scheduling simulator (in the spirit of the
    paper's Omega-style simulator, §6.2).

    Events: job arrivals, scheduling rounds, task completions — and,
    with a {!Faults.Plan.t}, node failures/recoveries.  Rounds are
    triggered by state changes (arrivals, completions) and re-armed
    after the scheduler's simulated think time while it keeps making
    progress; an idle scheduler with unplaceable work backs off instead
    of busy-looping.  Schedulers charge the cluster ledgers while
    deciding; the simulator schedules the matching task completions,
    releases resources when tasks finish, and feeds the metrics.

    Fault semantics (docs/FAULTS.md): a [Node_fail] kills every task
    running on the node, refunds their ledger charges, flips the
    cluster's liveness mask, and notifies the scheduler; the lost
    instances of each affected task group are re-submitted as a
    materialized single-group request after an exponential backoff, up
    to the policy's retry budget, then cancelled.  A [Node_recover]
    restores the liveness mask and re-arms a round. *)

type config = {
  drain : float;
      (** seconds past the last arrival during which scheduling continues *)
  min_round_interval : float;  (** lower bound between rounds, seconds *)
  no_progress_backoff : float;  (** retry delay when a round placed nothing *)
  gang : bool;
      (** gang semantics (§5.1, no partial scheduling): tasks of a group
          hold resources from placement but start running — and complete —
          only once the whole group is placed (default false: tasks start
          as placed, the paper simulator's behaviour for latency
          accounting) *)
}

val default_config : config

type result = {
  report : Metrics.report;
  end_time : float;  (** simulated seconds at finalization *)
  events_processed : int;
}

(** [run ~config cluster scheduler arrivals] replays the arrival stream
    to completion and returns the metric report.

    [faults] injects a deterministic fail/recover script;
    [fault_policy] (default {!Faults.Policy.default}) governs the
    requeue/backoff of killed task groups.  Without [faults] the run is
    byte-identical to a fault-free simulator. *)
val run :
  ?config:config ->
  ?faults:Faults.Plan.t ->
  ?fault_policy:Faults.Policy.t ->
  Cluster.t ->
  Scheduler_intf.t ->
  (float * Hire.Poly_req.t) list ->
  result
