(** The scheduler interface the simulator drives.

    Schedulers are first-class records so the simulation engine does not
    depend on any concrete policy.  A scheduler {e charges the cluster
    ledgers itself} while deciding (so intra-round feasibility is exact)
    and reports the placements; the simulator schedules the matching
    completions, releases resources when tasks finish, and feeds the
    metrics. *)

type placement = {
  tg : Hire.Poly_req.task_group;
  machine : int;  (** server id for server groups, switch id for network groups *)
  shared : bool;  (** whether switch placement may exploit INC sharing *)
  charged : Prelude.Vec.t option;
      (** switch-side demand charged (network groups only) *)
}

(** Per-round solver-resilience report (docs/RESILIENCE.md); mirrors
    {!Hire.Hire_scheduler.round_resilience}.  Only schedulers running
    with a resilience policy produce it. *)
type round_resilience = {
  degraded : bool;  (** budget-truncated solve or greedy placer applied *)
  fallback_depth : int;  (** chain rungs abandoned before one was applied *)
  guard_trips : int;  (** solutions quarantined by the invariant guard *)
  salvaged : int;  (** tasks placed by a degraded rung *)
}

type round_result = {
  placements : placement list;
  cancelled : Hire.Poly_req.task_group list;
  think : float;  (** simulated decision time of this round, seconds *)
  solver_wall : float option;  (** measured MCMF wall time (flow-based only) *)
  resilience : round_resilience option;
      (** [None] unless the scheduler runs a resilience policy *)
}

(** Optional checkpoint capability (docs/JOURNAL.md).  A scheduler that
    can serialize its internal decision state offers it here so journal
    checkpoints capture mid-run state; schedulers without it (the
    queue-based baselines, whose per-round decisions are cheap to replay
    from the WAL alone) recover by genesis replay instead.  [restore]
    must leave a freshly created scheduler observably identical to the
    snapshotted one and raises {!Prelude.Codec.Error} on malformed
    blobs. *)
type persist = { snapshot : unit -> string; restore : string -> unit }

type t = {
  name : string;
  submit : time:float -> Hire.Poly_req.t -> unit;
  round : time:float -> round_result;
  pending : unit -> bool;  (** unfinished placement work remains *)
  on_task_complete : time:float -> tg:Hire.Poly_req.task_group -> machine:int -> unit;
      (** also invoked for tasks killed by a node failure (the machine
          is the failed node) so schedulers drop per-task state *)
  on_node_event : time:float -> node:int -> up:bool -> unit;
      (** fault injection: [node] failed ([up = false]) or recovered
          ([up = true]).  Called after the cluster liveness flip and
          after the killed tasks' [on_task_complete] calls; schedulers
          with machine-local state (e.g. Sparrow's stub queues) must
          flush it here. *)
  drop_task_group : time:float -> tg_id:int -> unit;
      (** fault injection: the simulator gave up on [tg_id] (retry
          budget exhausted); the scheduler must drop the group's
          still-pending instances so no further placements are attempted
          for it. *)
  persist : persist option;
      (** checkpoint capability; [None] = recover by genesis replay *)
}
