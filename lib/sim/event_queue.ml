module Heap = Prelude.Heap

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { heap : 'a entry Heap.t; mutable next_seq : int }

let cmp a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () = { heap = Heap.create ~cmp; next_seq = 0 }

let push q ~time payload =
  if not (Float.is_finite time) then invalid_arg "Event_queue.push: non-finite time";
  Heap.push q.heap { time; seq = q.next_seq; payload };
  q.next_seq <- q.next_seq + 1

let pop q =
  if Heap.is_empty q.heap then None
  else begin
    let e = Heap.pop q.heap in
    Some (e.time, e.payload)
  end

let peek_time q = if Heap.is_empty q.heap then None else Some (Heap.peek q.heap).time
let is_empty q = Heap.is_empty q.heap
let size q = Heap.size q.heap

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (journal checkpoints, docs/JOURNAL.md)           *)
(* ------------------------------------------------------------------ *)

(* The insertion sequence numbers ARE the tie-break order, so they must
   survive a checkpoint exactly: entries are exported with their seq and
   re-pushed raw, and [next_seq] carries over so events pushed after a
   restore sort exactly as they would have in the uninterrupted run. *)
let entries q =
  Heap.to_list q.heap
  |> List.map (fun e -> (e.time, e.seq, e.payload))
  |> List.sort (fun (_, a, _) (_, b, _) -> Int.compare a b)

let next_seq q = q.next_seq

let restore q ~next_seq entries =
  Heap.clear q.heap;
  List.iter
    (fun (time, seq, payload) ->
      if not (Float.is_finite time) then invalid_arg "Event_queue.restore: non-finite time";
      if seq < 0 || seq >= next_seq then
        invalid_arg "Event_queue.restore: sequence number out of range";
      Heap.push q.heap { time; seq; payload })
    entries;
  q.next_seq <- next_seq
