module Rng = Prelude.Rng

type outcome =
  | Errno of Unix.error
  | Short of int
  | Delay of float

(* Same explicit fold as [Flow.Chaos.string_seed]: a stable
   string -> int map with no dependence on the polymorphic hash. *)
let string_seed s =
  String.fold_left (fun h c -> (((h * 31) + Char.code c) land 0x3FFFFFFF)) 5381 s

type site = {
  spec : string;  (* the term this site was armed with, for {!describe} *)
  prob : float;  (* fire probability per evaluation *)
  mutable left : int;  (* remaining fires; -1 = unlimited *)
  action : outcome;
  rng : Rng.t;  (* private stream: draws depend only on this site *)
  mutable fired : int;
}

type t = { seed : int; mutable sites : (string * site) list }

(* [None] until the first query, then the resolved state; [activate] and
   [deactivate] pin it regardless of the environment. *)
let current : t option ref = ref None
let resolved = ref false

let activate ~seed =
  current := Some { seed; sites = [] };
  resolved := true

let deactivate () =
  current := None;
  resolved := true

let errno_of_action = function
  | "enospc" -> Some Unix.ENOSPC
  | "eio" -> Some Unix.EIO
  | "epipe" -> Some Unix.EPIPE
  | "econnreset" -> Some Unix.ECONNRESET
  | "econnaborted" -> Some Unix.ECONNABORTED
  | "emfile" -> Some Unix.EMFILE
  | "etimedout" -> Some Unix.ETIMEDOUT
  | _ -> None

let bad spec reason =
  invalid_arg (Printf.sprintf "HIRE_FAILPOINTS: bad spec %S (%s)" spec reason)

(* [spec ::= "off" | [P%][N*]action[(arg)]] — returns [None] for "off". *)
let parse_spec spec =
  let s = String.trim spec in
  if String.equal s "off" then None
  else begin
    let prob, s =
      match String.index_opt s '%' with
      | None -> (1.0, s)
      | Some i -> (
          let head = String.sub s 0 i in
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt head with
          | Some p when p >= 0.0 && p <= 100.0 -> (p /. 100.0, rest)
          | _ -> bad spec "percentage must be a number in [0,100]")
    in
    let left, s =
      match String.index_opt s '*' with
      | None -> (-1, s)
      | Some i -> (
          let head = String.sub s 0 i in
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt head with
          | Some n when n >= 0 -> (n, rest)
          | _ -> bad spec "count must be a non-negative integer")
    in
    let name, arg =
      match String.index_opt s '(' with
      | None -> (s, None)
      | Some i ->
          if String.length s = 0 || s.[String.length s - 1] <> ')' then
            bad spec "unterminated argument"
          else
            ( String.sub s 0 i,
              Some (String.sub s (i + 1) (String.length s - i - 2)) )
    in
    let action =
      match (errno_of_action name, name, arg) with
      | Some e, _, None -> Errno e
      | Some _, _, Some _ -> bad spec "errno actions take no argument"
      | None, "short", Some a -> (
          match int_of_string_opt a with
          | Some k when k >= 0 -> Short k
          | _ -> bad spec "short(k) needs a non-negative byte count")
      | None, "delay", Some a -> (
          match float_of_string_opt a with
          | Some d when d >= 0.0 && Float.is_finite d -> Delay d
          | _ -> bad spec "delay(s) needs a non-negative finite duration")
      | None, ("short" | "delay"), None -> bad spec "missing argument"
      | None, _, _ -> bad spec "unknown action"
    in
    Some (prob, left, action)
  end

let set name spec =
  let t =
    match !current with
    | Some t -> t
    | None ->
        activate ~seed:0;
        Option.get !current
  in
  let sites = List.remove_assoc name t.sites in
  match parse_spec spec with
  | None -> t.sites <- sites
  | Some (prob, left, action) ->
      let rng = Rng.create (t.seed lxor string_seed name) in
      t.sites <- (name, { spec = String.trim spec; prob; left; action; rng; fired = 0 }) :: sites

let clear name =
  match !current with
  | None -> ()
  | Some t -> t.sites <- List.remove_assoc name t.sites

(* Full HIRE_FAILPOINTS value: ';'/','-separated [seed=N] and
   [site=spec] terms.  The seed term is applied first regardless of
   position so site streams are always derived from it. *)
let load value =
  let terms =
    String.split_on_char ';' value
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun s -> not (String.equal s ""))
  in
  let split_term term =
    match String.index_opt term '=' with
    | None -> invalid_arg (Printf.sprintf "HIRE_FAILPOINTS: bad term %S (want site=spec)" term)
    | Some i ->
        ( String.trim (String.sub term 0 i),
          String.trim (String.sub term i (String.length term - i) |> fun s ->
                       String.sub s 1 (String.length s - 1)) )
  in
  let kvs = List.map split_term terms in
  let seed =
    match List.assoc_opt "seed" kvs with
    | None -> 0
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> invalid_arg (Printf.sprintf "HIRE_FAILPOINTS: bad seed %S" v))
  in
  activate ~seed;
  List.iter (fun (k, v) -> if not (String.equal k "seed") then set k v) kvs

let resolve () =
  if not !resolved then begin
    resolved := true;
    match Sys.getenv_opt "HIRE_FAILPOINTS" with
    | None | Some "" | Some "0" -> current := None
    | Some v -> load v
  end

let init_env () = resolve ()

let enabled () =
  resolve ();
  !current <> None

let eval name =
  resolve ();
  match !current with
  | None -> None
  | Some t -> (
      match List.assoc_opt name t.sites with
      | None -> None
      | Some s ->
          if s.left = 0 then None
          else if not (Rng.bernoulli s.rng s.prob) then None
          else begin
            if s.left > 0 then s.left <- s.left - 1;
            s.fired <- s.fired + 1;
            if Obs.enabled () then
              Obs.Registry.incr (Obs.Registry.counter "failpt.fired");
            Some s.action
          end)

let armed_sites () =
  resolve ();
  match !current with
  | None -> []
  | Some t ->
      List.filter_map (fun (n, s) -> if s.left <> 0 then Some n else None) t.sites
      |> List.sort String.compare

let describe () =
  resolve ();
  match !current with
  | None -> ""
  | Some t ->
      let sites =
        List.sort (fun (a, _) (b, _) -> String.compare a b) t.sites
        |> List.map (fun (n, s) -> Printf.sprintf "%s=%s" n s.spec)
      in
      String.concat " " (Printf.sprintf "seed=%d" t.seed :: sites)
