(** Seeded, named failpoint registry (docs/FAILPOINTS.md).

    A failpoint is a named site in the durability or network stack
    ([journal.write], [net.accept], ...) where a fault can be injected
    deterministically: the site calls {!eval} on its hot path and acts
    on the returned {!outcome}, exactly as it would on the real error.
    Sites cost one list lookup when the registry is armed and one
    [ref]-load branch when it is not, so production paths stay free.

    Activation follows the same convention as [HIRE_CHAOS]
    ([Flow.Chaos]) and [HIRE_CRASH_AT] ([Journal.Chaos]): a single
    environment variable resolved lazily on first use, a seed, and
    per-site named RNG streams so one site's draw sequence depends only
    on how many times {e that site} was evaluated.  Tests pin the
    registry programmatically with {!activate}/{!set}.

    {2 Grammar}

    {[ HIRE_FAILPOINTS="seed=42;journal.fsync=1*eio;net.write=25%3*short(1)" ]}

    Terms are separated by [;] (or [,]).  [seed=N] seeds every site
    stream (default 0).  Every other term is [site=spec] with

    {[ spec ::= "off" | [P%][N*]action[(arg)] ]}

    [P%] fires with probability [P/100] per evaluation (default:
    always); [N*] fires at most [N] times, then the site goes quiet
    (default: unlimited).  Actions: [enospc] [eio] [epipe] [econnreset]
    [econnaborted] [emfile] [etimedout] (POSIX errors), [short(k)]
    (write only [k] bytes, then fail), [delay(s)] (sleep [s] seconds),
    [off]. *)

(** What an armed site tells its caller to do. *)
type outcome =
  | Errno of Unix.error  (** fail as if the syscall returned this errno *)
  | Short of int  (** land only [k] bytes of the write, then fail *)
  | Delay of float  (** stall for [s] seconds, then proceed normally *)

(** Arm the registry programmatically (clears every site). *)
val activate : seed:int -> unit

(** Disarm every site; {!eval} returns [None] everywhere. *)
val deactivate : unit -> unit

val enabled : unit -> bool

(** Parse a full [HIRE_FAILPOINTS]-shaped value into the registry.
    @raise Invalid_argument on an unparseable term. *)
val load : string -> unit

(** Resolve [HIRE_FAILPOINTS] from the environment now (no-op when
    unset; the registry also resolves lazily on first {!eval}).
    @raise Invalid_argument on an unparseable value. *)
val init_env : unit -> unit

(** [set site spec] arms one site from a [spec] term (see grammar);
    ["off"] is equivalent to {!clear}.  Activates the registry with
    seed 0 if nothing is armed yet.
    @raise Invalid_argument on an unparseable spec. *)
val set : string -> string -> unit

val clear : string -> unit

(** [eval site] draws this site's next decision: [None] (proceed) or
    the armed {!outcome}.  Counts [failpt.fired] when armed sites fire
    and observability is on. *)
val eval : string -> outcome option

(** One-line description of the armed registry for startup logs:
    ["seed=42 journal.fsync=1*eio ..."]; [""] when disarmed. *)
val describe : unit -> string

(** Sites currently armed (spec not exhausted), sorted by name. *)
val armed_sites : unit -> string list
