module Vec = Prelude.Vec
module Fat_tree = Topology.Fat_tree
module Int_tbl = Prelude.Int_tbl

let place (view : View.t) ~jobs ~(params : Cost_model.params) =
  let topo = view.View.topo in
  let sharing = view.View.sharing in
  let servers = Fat_tree.servers topo in
  (* One new task per machine per round, mirroring the flow network's
     capacity-1 M→K arcs, so in-round ledger reads stay accurate. *)
  let used_this_round = Int_tbl.create 64 in
  let placements = ref [] in
  let place_on tg_id machine =
    Int_tbl.replace used_this_round machine ();
    placements := (tg_id, machine) :: !placements
  in
  let place_server_task (ts : Pending.tg_state) =
    let demand = ts.tg.Poly_req.demand in
    let found = ref None in
    Array.iter
      (fun s ->
        if
          !found = None
          && (not (Int_tbl.mem used_this_round s))
          && view.View.alive s
          && Vec.fits ~demand ~available:(view.View.server_available s)
        then found := Some s)
      servers;
    match !found with
    | Some s ->
        place_on ts.tg.Poly_req.tg_id s;
        true
    | None -> false
  in
  let place_network_task (ts : Pending.tg_state) (ninfo : Poly_req.network_info) ~taken =
    let service = ninfo.Poly_req.service in
    let per_switch, per_instance =
      if params.sharing_aware then (ninfo.Poly_req.per_switch, ts.tg.Poly_req.demand)
      else
        ( Vec.zero (Vec.dim ts.tg.Poly_req.demand),
          Vec.add ninfo.Poly_req.per_switch ts.tg.Poly_req.demand )
    in
    let found = ref None in
    Array.iter
      (fun s ->
        let shape_ok =
          match ninfo.Poly_req.shape with
          | Comp_store.Single_tor -> Fat_tree.kind topo s = Fat_tree.Tor
          | Comp_store.Single | Comp_store.Chain | Comp_store.Tree | Comp_store.Spine_leaf ->
              true
        in
        if
          !found = None && shape_ok
          && (not (Int_tbl.mem used_this_round s))
          && (not (List.mem s ts.placed_on))
          && (not (List.mem s taken))
          && Sharing.can_place sharing ~switch:s ~service ~per_switch ~per_instance
        then found := Some s)
      (Sharing.switch_ids sharing);
    match !found with
    | Some s ->
        place_on ts.tg.Poly_req.tg_id s;
        Some s
    | None -> None
  in
  (* Same FIFO selection and queue bound as Flow_network.build. *)
  let jobs =
    List.filter Pending.has_pending_work jobs
    |> List.sort (fun (a : Pending.job_state) b ->
           Float.compare a.poly.Poly_req.arrival b.poly.Poly_req.arrival)
  in
  let budget = ref params.max_queue_tgs in
  List.iter
    (fun (job : Pending.job_state) ->
      List.iter
        (fun (ts : Pending.tg_state) ->
          if !budget > 0 && ts.Pending.remaining > 0 then begin
            decr budget;
            match ts.tg.Poly_req.kind with
            | Poly_req.Server_tg ->
                let k = ref 0 in
                while !k < ts.Pending.remaining && place_server_task ts do
                  incr k
                done
            | Poly_req.Network_tg ninfo ->
                (* Distinct switches per instance within the round, on
                   top of the placed_on exclusion. *)
                let taken = ref [] in
                let continue_ = ref true in
                let k = ref 0 in
                while !k < ts.Pending.remaining && !continue_ do
                  (match place_network_task ts ninfo ~taken:!taken with
                  | Some s ->
                      taken := s :: !taken;
                      incr k
                  | None -> continue_ := false)
                done
          end)
        (Pending.materialized job))
    jobs;
  List.rev !placements
