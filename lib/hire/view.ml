type t = {
  topo : Topology.Fat_tree.t;
  server_capacity : Prelude.Vec.t;
  server_available : int -> Prelude.Vec.t;
  sharing : Sharing.t;
  alive : int -> bool;
  dirty : Dirty.t option;
}

let server_utilization t id =
  Topology.Resource.utilization ~capacity:t.server_capacity ~available:(t.server_available id)
