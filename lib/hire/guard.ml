module Vec = Prelude.Vec
module Int_tbl = Prelude.Int_tbl

type violation =
  | Flow_violation of Flow.Verify.violation
  | Machine_overuse of { machine : int }
  | Group_overplace of { tg_id : int; placed : int; remaining : int }
  | Server_overcommit of { server : int; tg_id : int }
  | Switch_overcommit of { switch : int; tg_id : int; service : string }

let pp_violation ppf = function
  | Flow_violation v -> Format.fprintf ppf "invalid flow: %a" Flow.Verify.pp_violation v
  | Machine_overuse { machine } ->
      Format.fprintf ppf "machine %d handed more than one task this round" machine
  | Group_overplace { tg_id; placed; remaining } ->
      Format.fprintf ppf "task group %d given %d tasks with only %d remaining" tg_id
        placed remaining
  | Server_overcommit { server; tg_id } ->
      Format.fprintf ppf "task group %d does not fit on server %d" tg_id server
  | Switch_overcommit { switch; tg_id; service } ->
      Format.fprintf ppf
        "service %s (task group %d) rejected by the sharing ledger of switch %d"
        service tg_id switch

let check_flow g =
  match Flow.Verify.check g with
  | Ok () -> Ok ()
  | Error v -> Error (Flow_violation v)

let check_placements (view : View.t) ~(params : Cost_model.params) ~placements =
  let exception Bad of violation in
  let sharing = view.View.sharing in
  (* Each machine may take at most one new task per round, so one
     placement can be checked against the live ledgers in isolation. *)
  let machines = Int_tbl.create 16 in
  let per_group = Int_tbl.create 16 in
  try
    List.iter
      (fun ((ts : Pending.tg_state), machine) ->
        if Int_tbl.mem machines machine then raise (Bad (Machine_overuse { machine }));
        Int_tbl.replace machines machine ();
        let tg = ts.Pending.tg in
        let tg_id = tg.Poly_req.tg_id in
        let placed = 1 + (Int_tbl.find_opt per_group tg_id |> Option.value ~default:0) in
        Int_tbl.replace per_group tg_id placed;
        if placed > ts.Pending.remaining then
          raise
            (Bad (Group_overplace { tg_id; placed; remaining = ts.Pending.remaining }));
        match tg.Poly_req.kind with
        | Poly_req.Server_tg ->
            if
              (not (view.View.alive machine))
              || not
                   (Vec.fits ~demand:tg.Poly_req.demand
                      ~available:(view.View.server_available machine))
            then raise (Bad (Server_overcommit { server = machine; tg_id }))
        | Poly_req.Network_tg ninfo ->
            let service = ninfo.Poly_req.service in
            let per_switch, per_instance =
              if params.Cost_model.sharing_aware then
                (ninfo.Poly_req.per_switch, tg.Poly_req.demand)
              else
                ( Vec.zero (Vec.dim tg.Poly_req.demand),
                  Vec.add ninfo.Poly_req.per_switch tg.Poly_req.demand )
            in
            if
              not
                (Sharing.can_place sharing ~switch:machine ~service ~per_switch
                   ~per_instance)
            then raise (Bad (Switch_overcommit { switch = machine; tg_id; service })))
      placements;
    Ok ()
  with Bad v -> Error v

let check_round view ~params ~graph ~placements =
  match check_flow graph with
  | Error _ as e -> e
  | Ok () -> check_placements view ~params ~placements
