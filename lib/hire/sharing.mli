(** Switch-resource ledger with non-linear sharing ([nol], §3.1/§5.1).

    Each INC switch tracks its remaining resources, the set of supported
    INC services (heterogeneity), and per-service instance counts.  A
    service's demand splits into a *per-switch registration* part —
    charged only when the first instance of that service lands on the
    switch and refunded when the last one leaves (e.g. shared RMT stages
    in NetCache) — and a *per-instance* part charged for every instance
    (e.g. tenant-specific SRAM entries).

    This implements the paper's sharing-degree semantics: on sharable
    dimensions, co-located tenants of the same service divide the shared
    registration among themselves. *)

module Vec = Prelude.Vec

type t

(** [create ~topo ~capacity ~supported] sets up ledger entries for every
    switch of the topology.  [supported id] lists the INC service names
    switch [id] can host (heterogeneity configuration). *)
val create :
  topo:Topology.Fat_tree.t -> capacity:Vec.t -> supported:(int -> string list) -> t

val capacity : t -> Vec.t

(** Remaining resources of a switch (a copy). *)
val available : t -> int -> Vec.t

(** [supports] iff the switch is alive {e and} capable of the service;
    every placement predicate ({!can_place}, the flow-network arcs, the
    baselines' feasibility checks) routes through it, so marking a
    switch dead masks it everywhere. *)
val supports : t -> switch:int -> service:string -> bool

(** Static capability set — {e not} masked by liveness, so hardware
    inventories stay stable under fault injection. *)
val supported_services : t -> int -> string list

(** Fault injection: liveness flag of a switch (default alive). *)
val is_alive : t -> int -> bool

val set_alive : t -> int -> bool -> unit
val active_services : t -> int -> string list

(** Number of distinct INC services currently running on the switch. *)
val n_active : t -> int -> int

(** Number of instances of one service on the switch. *)
val instances : t -> switch:int -> service:string -> int

(** The demand a new instance would actually consume on this switch:
    per-instance demand plus, if the service is not yet registered there,
    its per-switch registration ([nol] — the first tenant pays for the
    shared part). *)
val effective_demand :
  t -> switch:int -> service:string -> per_switch:Vec.t -> per_instance:Vec.t -> Vec.t

(** [can_place] iff the switch supports the service and the effective
    demand fits the remaining resources. *)
val can_place :
  t -> switch:int -> service:string -> per_switch:Vec.t -> per_instance:Vec.t -> bool

(** Charge the switch for one instance.
    @raise Invalid_argument when [can_place] is false. *)
val place :
  t -> switch:int -> service:string -> per_switch:Vec.t -> per_instance:Vec.t -> unit

(** Release one instance; refunds the registration with the last one.
    @raise Invalid_argument if no such instance is recorded, or if the
    refund would push the ledger above capacity (double release). *)
val release : t -> switch:int -> service:string -> per_instance:Vec.t -> unit

(** Per-dimension used fraction of a switch. *)
val utilization : t -> int -> Vec.t

(** Sum of used resources across all switches, per dimension. *)
val total_used : t -> Vec.t

val switch_ids : t -> int array

(** Journal-checkpoint serialization (docs/JOURNAL.md) of the {e
    dynamic} ledger state only: availability vectors, liveness flags,
    instance counts and per-switch registrations.  The static capability
    set and capacity are reproduced by rebuilding the ledger from its
    seed.  Encoding is canonical — the same state always yields the same
    bytes.  [decode_state] restores in place and raises
    {!Prelude.Codec.Error} when the snapshot does not match the ledger's
    switch set or dimensionality. *)
val encode_state : t -> Prelude.Codec.Enc.t -> unit

val decode_state : t -> Prelude.Codec.Dec.t -> unit
