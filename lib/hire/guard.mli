(** Runtime invariant guard for live scheduling rounds
    (docs/RESILIENCE.md).

    [Flow.Verify.check] re-derives flow-level properties from first
    principles but historically ran only in the test suite; this module
    brings it — plus a capacity-ledger cross-check against the cluster
    view — into the scheduling loop.  {!Hire_scheduler} samples rounds
    (every [guard_every]-th solve) and runs both checks on the live
    solution {e before} any cluster state is mutated; a violation
    quarantines the solution and the round is re-run on the next backend
    of the fallback chain.

    The violation taxonomy (documented in docs/RESILIENCE.md):

    - flow-level, from {!Flow.Verify.check}: capacity exceeded, negative
      flow, conservation broken, negative residual cycle;
    - placement-level, from the ledger cross-check: a machine handed
      more than one task in a round, a group given more tasks than it
      has remaining, a server placement that does not fit the server's
      remaining resources, a switch placement rejected by the sharing
      ledger. *)

type violation =
  | Flow_violation of Flow.Verify.violation
      (** the solved flow itself is invalid ({!Flow.Verify.check}) *)
  | Machine_overuse of { machine : int }
      (** more than one task routed to the machine this round (the M→K
          capacity-1 discipline was violated) *)
  | Group_overplace of { tg_id : int; placed : int; remaining : int }
      (** the round places more tasks of the group than remain *)
  | Server_overcommit of { server : int; tg_id : int }
      (** the task's demand does not fit the server's remaining
          resources (or the server is dead) *)
  | Switch_overcommit of { switch : int; tg_id : int; service : string }
      (** the sharing ledger rejects the instance
          ({!Sharing.can_place}) *)

val pp_violation : Format.formatter -> violation -> unit

(** [check_flow g] is {!Flow.Verify.check} wrapped into the guard's
    violation type. *)
val check_flow : Flow.Graph.t -> (unit, violation) result

(** [check_placements view ~params ~placements] cross-checks one round's
    extracted placements (task-group state × machine) against the live
    capacity ledgers, without mutating anything.  [params] selects the
    sharing mode, matching what the flow network priced. *)
val check_placements :
  View.t ->
  params:Cost_model.params ->
  placements:(Pending.tg_state * int) list ->
  (unit, violation) result

(** Both checks, flow first. *)
val check_round :
  View.t ->
  params:Cost_model.params ->
  graph:Flow.Graph.t ->
  placements:(Pending.tg_state * int) list ->
  (unit, violation) result
