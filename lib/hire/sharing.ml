module Vec = Prelude.Vec
module Fat_tree = Topology.Fat_tree
module Int_tbl = Prelude.Int_tbl

type sw_state = {
  avail : Vec.t;  (* mutated in place *)
  supported : (string, unit) Hashtbl.t;
  counts : (string, int) Hashtbl.t;  (* running instances per service *)
  registered : (string, Vec.t) Hashtbl.t;  (* per-switch part currently charged *)
  mutable alive : bool;  (* fault injection: dead switches host nothing *)
}

type t = { cap : Vec.t; states : sw_state Int_tbl.t; ids : int array }

let create ~topo ~capacity ~supported =
  let ids = Fat_tree.switches topo in
  let states = Int_tbl.create (Array.length ids) in
  Array.iter
    (fun id ->
      let sup = Hashtbl.create 8 in
      List.iter (fun s -> Hashtbl.replace sup s ()) (supported id);
      Int_tbl.replace states id
        {
          avail = Vec.copy capacity;
          supported = sup;
          counts = Hashtbl.create 4;
          registered = Hashtbl.create 4;
          alive = true;
        })
    ids;
  { cap = Vec.copy capacity; states; ids }

let state t switch =
  match Int_tbl.find_opt t.states switch with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sharing: %d is not a switch" switch)

let capacity t = Vec.copy t.cap
let available t switch = Vec.copy (state t switch).avail

let is_alive t switch = (state t switch).alive
let set_alive t switch alive = (state t switch).alive <- alive

(* Liveness masks capability: schedulers route every placement decision
   through [supports]/[can_place], so a dead switch offers no service.
   [supported_services] stays the static capability set — counting
   INC-capable hardware must not fluctuate with the fault plan. *)
let supports t ~switch ~service =
  let st = state t switch in
  st.alive && Hashtbl.mem st.supported service

let supported_services t switch =
  Hashtbl.fold (fun k () acc -> k :: acc) (state t switch).supported []
  |> List.sort String.compare

let active_services t switch =
  Hashtbl.fold (fun k c acc -> if c > 0 then k :: acc else acc) (state t switch).counts []
  |> List.sort String.compare

let n_active t switch = List.length (active_services t switch)

let instances t ~switch ~service =
  match Hashtbl.find_opt (state t switch).counts service with Some c -> c | None -> 0

let effective_demand t ~switch ~service ~per_switch ~per_instance =
  if instances t ~switch ~service > 0 then Vec.copy per_instance
  else Vec.add per_switch per_instance

let can_place t ~switch ~service ~per_switch ~per_instance =
  supports t ~switch ~service
  && Vec.fits
       ~demand:(effective_demand t ~switch ~service ~per_switch ~per_instance)
       ~available:(state t switch).avail

let place t ~switch ~service ~per_switch ~per_instance =
  if not (can_place t ~switch ~service ~per_switch ~per_instance) then
    invalid_arg
      (Printf.sprintf "Sharing.place: service %s does not fit on switch %d" service switch);
  let st = state t switch in
  let first = instances t ~switch ~service = 0 in
  Vec.sub_into st.avail per_instance;
  if first then begin
    Vec.sub_into st.avail per_switch;
    Hashtbl.replace st.registered service (Vec.copy per_switch)
  end;
  Hashtbl.replace st.counts service (instances t ~switch ~service + 1)

(* Defensive ledger check: a refund beyond capacity means a double
   release (or a release with the wrong demand) corrupted the ledger —
   fail loudly instead of silently inflating the switch.  Tolerates
   floating-point drift from repeated charge/refund cycles. *)
let check_over_release st cap ~switch =
  Array.iteri
    (fun i x ->
      let c = cap.(i) in
      let eps = 1e-6 *. (1.0 +. Float.abs c) in
      if x > c +. eps then
        invalid_arg
          (Printf.sprintf "Sharing.release: over-release on switch %d (dimension %d)" switch i)
      else if x > c then st.avail.(i) <- c)
    st.avail

let release t ~switch ~service ~per_instance =
  let st = state t switch in
  let c = instances t ~switch ~service in
  if c <= 0 then
    invalid_arg
      (Printf.sprintf "Sharing.release: no instance of %s on switch %d" service switch);
  Vec.add_into st.avail per_instance;
  if c = 1 then begin
    (match Hashtbl.find_opt st.registered service with
    | Some reg -> Vec.add_into st.avail reg
    | None -> ());
    Hashtbl.remove st.registered service;
    Hashtbl.remove st.counts service
  end
  else Hashtbl.replace st.counts service (c - 1);
  check_over_release st t.cap ~switch

let utilization t switch =
  let st = state t switch in
  Topology.Resource.utilization ~capacity:t.cap ~available:st.avail

let total_used t =
  let acc = Vec.zero (Vec.dim t.cap) in
  Array.iter
    (fun id ->
      let st = state t id in
      Vec.add_into acc (Vec.sub t.cap st.avail))
    t.ids;
  acc

let switch_ids t = t.ids

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (journal checkpoints, docs/JOURNAL.md)           *)
(* ------------------------------------------------------------------ *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* The static capability set ([supported]) and capacity are reproduced
   by rebuilding the cluster from its seed, so only the dynamic ledger
   state is serialized.  Switches are walked in [ids] order — a fixed
   array — and table contents in sorted-key order, so the same ledger
   state always encodes to the same bytes. *)
let encode_state t e =
  let module Enc = Prelude.Codec.Enc in
  Enc.array e
    (fun e id ->
      let st = state t id in
      Enc.float_array e st.avail;
      Enc.bool e st.alive;
      Enc.list e
        (fun e (s, c) ->
          Enc.string e s;
          Enc.uint e c)
        (sorted_bindings st.counts);
      Enc.list e
        (fun e (s, v) ->
          Enc.string e s;
          Enc.float_array e v)
        (sorted_bindings st.registered))
    t.ids

let decode_state t d =
  let module Dec = Prelude.Codec.Dec in
  let n = Dec.uint d in
  if n <> Array.length t.ids then
    raise
      (Prelude.Codec.Error
         (Printf.sprintf "Sharing: snapshot has %d switches, ledger has %d" n
            (Array.length t.ids)));
  Array.iter
    (fun id ->
      let st = state t id in
      let avail = Dec.float_array d in
      if Array.length avail <> Array.length st.avail then
        raise (Prelude.Codec.Error "Sharing: snapshot dimension mismatch");
      Array.blit avail 0 st.avail 0 (Array.length avail);
      st.alive <- Dec.bool d;
      Hashtbl.reset st.counts;
      List.iter (fun (s, c) -> Hashtbl.replace st.counts s c)
        (Dec.list d (fun d ->
             let s = Dec.string d in
             let c = Dec.uint d in
             (s, c)));
      Hashtbl.reset st.registered;
      List.iter (fun (s, v) -> Hashtbl.replace st.registered s v)
        (Dec.list d (fun d ->
             let s = Dec.string d in
             let v = Dec.float_array d in
             (s, v))))
    t.ids
