(** Dirty-set tracker driving incremental flow-network maintenance.

    The resource owner (lib/sim/cluster.ml) marks nodes whose ledgers
    changed since the last scheduling round; {!Flow_network.build}
    patches exactly those nodes' arcs instead of rebuilding the whole
    topology part, then calls {!clear}.  Marking is idempotent and
    allocation-light (a flag array plus a list of marked ids).

    [structural] covers changes that alter the {e shape} of the network
    rather than arc attributes — node failure/recovery, INC support
    changes — and forces the next build to rebuild the topology part
    from scratch.  A fresh tracker starts structural so the first build
    is always full. *)

type t

(** [create ~node_count] makes a tracker for topology ids
    [0 .. node_count-1], initially marked structural. *)
val create : node_count:int -> t

val mark_server : t -> int -> unit
val mark_switch : t -> int -> unit
val mark_structural : t -> unit
val structural : t -> bool
val iter_servers : t -> (int -> unit) -> unit
val iter_switches : t -> (int -> unit) -> unit

(** Forget all marks (called by the builder after folding them in). *)
val clear : t -> unit
