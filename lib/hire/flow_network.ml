module Graph = Flow.Graph
module Mcmf = Flow.Mcmf
module Vec = Prelude.Vec
module Int_tbl = Prelude.Int_tbl
module Fat_tree = Topology.Fat_tree

type node_role =
  | Super
  | Flavor_sel of int
  | Group of int
  | Postpone of int
  | Aux_server of int
  | Aux_inc of int
  | Machine_server of int
  | Machine_inc of int
  | Sink

let pp_role fmt = function
  | Super -> Format.pp_print_string fmt "S"
  | Flavor_sel j -> Format.fprintf fmt "F(job %d)" j
  | Group tg -> Format.fprintf fmt "G(tg %d)" tg
  | Postpone j -> Format.fprintf fmt "P(job %d)" j
  | Aux_server s -> Format.fprintf fmt "Ns(%d)" s
  | Aux_inc s -> Format.fprintf fmt "Nn(%d)" s
  | Machine_server s -> Format.fprintf fmt "Ms(%d)" s
  | Machine_inc s -> Format.fprintf fmt "Mn(%d)" s
  | Sink -> Format.pp_print_string fmt "K"

(* Roles live in a flat int array rather than a hashtable: tag in the
   low 4 bits, payload id shifted above.  -1 means "no role"; entries at
   or beyond [valid_n] are stale leftovers from a previous (larger)
   round and must be ignored. *)
let encode_role = function
  | Sink -> 0
  | Super -> 1
  | Flavor_sel j -> (j lsl 4) lor 2
  | Group tg -> (tg lsl 4) lor 3
  | Postpone j -> (j lsl 4) lor 4
  | Aux_server s -> (s lsl 4) lor 5
  | Aux_inc s -> (s lsl 4) lor 6
  | Machine_server s -> (s lsl 4) lor 7
  | Machine_inc s -> (s lsl 4) lor 8

let decode_role packed =
  let id = packed asr 4 in
  match packed land 15 with
  | 0 -> Sink
  | 1 -> Super
  | 2 -> Flavor_sel id
  | 3 -> Group id
  | 4 -> Postpone id
  | 5 -> Aux_server id
  | 6 -> Aux_inc id
  | 7 -> Machine_server id
  | 8 -> Machine_inc id
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Per-round aggregates                                               *)
(* ------------------------------------------------------------------ *)

(* Per-ToR aggregate of server availability: the lower bound implements
   the "all resource nodes reachable via N can run at least one task"
   rule for subtree shortcuts; the upper bound prices them. *)
type tor_agg = { n_servers : int; min_avail : Vec.t; max_avail : Vec.t }

let compute_tor_agg (view : View.t) tor =
  let topo = view.topo in
  (* Dead servers are invisible: they must not shape the aggregate
     bounds, or the ToR shortcut could admit flow the subtree cannot
     host. *)
  let servers =
    Array.of_list (List.filter view.alive (Array.to_list (Fat_tree.servers_under topo tor)))
  in
  if Array.length servers = 0 then None
  else begin
    let first = view.server_available servers.(0) in
    let min_avail = Vec.copy first and max_avail = Vec.copy first in
    Array.iter
      (fun s ->
        let a = view.server_available s in
        Array.iteri
          (fun i x ->
            if x < min_avail.(i) then min_avail.(i) <- x;
            if x > max_avail.(i) then max_avail.(i) <- x)
          a)
      servers;
    Some { n_servers = Array.length servers; min_avail; max_avail }
  end

(* ------------------------------------------------------------------ *)
(* Persistent builder                                                 *)
(* ------------------------------------------------------------------ *)

(* Watermark of the topology ("prefix") part of the network: everything
   up to and including the Ms/Ns/Nn/Mn nodes and topology arcs.  The
   per-round job part is a suffix appended after the mark and discarded
   by [Graph.release] at the start of the next build. *)
type prefix = {
  mark : Graph.mark;
  p_arcs : int;  (* forward-arc count at the mark *)
  mutable big : int;  (* switch-switch arc capacity used by this prefix *)
}

type builder = {
  g : Graph.t;
  reopt : bool;  (* sparse touched-arc flow resets on the patch path *)
  mutable roles : int array;  (* packed node roles, -1 = none *)
  mutable valid_n : int;  (* nodes with meaningful roles this round *)
  mutable prefix : prefix option;
  (* Topology-id -> graph-node / arc maps, -1 = absent. *)
  mutable ms_node : int array;
  mutable ns_node : int array;
  mutable nn_node : int array;
  mutable mn_node : int array;
  mutable ms_arc : int array;  (* Ms -> K arc, patched on server dirt *)
  mutable mn_arc : int array;  (* Mn -> K arc, patched on switch dirt *)
  mutable big_arcs : int array;  (* switch-switch arcs carrying [big] *)
  mutable n_big : int;
  mutable tor_aggs : tor_agg option array;  (* by ToR switch id *)
  mutable tor_stamp : int array;  (* dedupe per-round ToR recomputes *)
  mutable stamp : int;
  (* Stats. *)
  mutable builds : int;
  mutable full_rebuilds : int;
  mutable last_full : bool;
  mutable last_touched : int;
  mutable last_total : int;
  mutable last_reset : int;  (* arc pairs whose flow the pre-patch reset undid *)
}

let create_builder ?(reopt = false) () =
  let g = Graph.create ~node_hint:1024 ~arc_hint:8192 () in
  (* With re-optimization on, the graph records which arc pairs each
     solve moves flow on, so the next patch undoes only those instead of
     sweeping the whole arena. *)
  Graph.set_flow_tracking g reopt;
  {
    g;
    reopt;
    roles = [||];
    valid_n = 0;
    prefix = None;
    ms_node = [||];
    ns_node = [||];
    nn_node = [||];
    mn_node = [||];
    ms_arc = [||];
    mn_arc = [||];
    big_arcs = [||];
    n_big = 0;
    tor_aggs = [||];
    tor_stamp = [||];
    stamp = 0;
    builds = 0;
    full_rebuilds = 0;
    last_full = true;
    last_touched = 0;
    last_total = 0;
    last_reset = 0;
  }

let ensure_topology b node_count =
  if Array.length b.ms_node <> node_count then begin
    b.ms_node <- Array.make node_count (-1);
    b.ns_node <- Array.make node_count (-1);
    b.nn_node <- Array.make node_count (-1);
    b.mn_node <- Array.make node_count (-1);
    b.ms_arc <- Array.make node_count (-1);
    b.mn_arc <- Array.make node_count (-1);
    b.tor_aggs <- Array.make node_count None;
    b.tor_stamp <- Array.make node_count (-1);
    b.prefix <- None
  end

let ensure_roles b n =
  if Array.length b.roles < n then begin
    let cap = max n (2 * Array.length b.roles) in
    let arr = Array.make cap (-1) in
    Array.blit b.roles 0 arr 0 (Array.length b.roles);
    b.roles <- arr
  end

let push_big b a =
  if b.n_big = Array.length b.big_arcs then begin
    let cap = max 64 (2 * Array.length b.big_arcs) in
    let arr = Array.make cap 0 in
    Array.blit b.big_arcs 0 arr 0 b.n_big;
    b.big_arcs <- arr
  end;
  b.big_arcs.(b.n_big) <- a;
  b.n_big <- b.n_big + 1

type t = { b : builder; sink : int }

let graph t = t.b.g

let role_opt t v =
  if v >= 0 && v < t.b.valid_n && t.b.roles.(v) >= 0 then Some (decode_role t.b.roles.(v))
  else None

let role t v =
  match role_opt t v with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Flow_network.role: unknown node %d" v)

let size t = (Graph.node_count t.b.g, Graph.arc_count t.b.g)

type build_stats = {
  full : bool;
  touched_arcs : int;
  total_arcs : int;
  reset_arcs : int;
  builds : int;
  full_rebuilds : int;
}

let stats t =
  {
    full = t.b.last_full;
    touched_arcs = t.b.last_touched;
    total_arcs = t.b.last_total;
    reset_arcs = t.b.last_reset;
    builds = t.b.builds;
    full_rebuilds = t.b.full_rebuilds;
  }

(* Locality context of one task group: inputs of Φloc. *)
type loc_ctx = {
  related_placed : bool;
  server_weight : float;
  group_size : int;
  related : int list;
  gain : Locality.Gain.t;
}

let neutral_ctx view census ~(params : Cost_model.params) =
  {
    related_placed = false;
    server_weight = 0.5;
    group_size = 1;
    related = [];
    gain = Locality.Gain.compute view.View.topo census ~related:[] ~gamma:params.gamma ~xi:params.xi;
  }

and loc_ctx (view : View.t) census ~(params : Cost_model.params) (ts : Pending.tg_state) =
  let related = ts.tg.Poly_req.tg_id :: ts.tg.Poly_req.connected in
  let group_size =
    List.fold_left (fun acc id -> acc + Locality.Task_census.total census ~tg_id:id) 0 related
  in
  let on_servers, on_switches =
    List.fold_left
      (fun (sv, sw) tg_id ->
        List.fold_left
          (fun (sv, sw) (m, c) ->
            if Fat_tree.is_server view.topo m then (sv + c, sw) else (sv, sw + c))
          (sv, sw)
          (Locality.Task_census.machines census ~tg_id))
      (0, 0) related
  in
  let total_placed = on_servers + on_switches in
  {
    related_placed = total_placed > 0;
    server_weight =
      (if total_placed = 0 then 0.5
       else float_of_int on_servers /. float_of_int total_placed);
    group_size = max 1 group_size;
    related;
    gain = Locality.Gain.compute view.topo census ~related ~gamma:params.gamma ~xi:params.xi;
  }

let phi_loc_at (view : View.t) census ctx node =
  let upsilon =
    Locality.upsilon view.topo census ~tg_ids:ctx.related ~node ~group_size:ctx.group_size
  in
  Cost_model.phi_loc ~related_placed:ctx.related_placed ~upsilon
    ~gamma_norm:(Locality.Gain.normalized ctx.gain node)
    ~server_weight:ctx.server_weight

(* ------------------------------------------------------------------ *)
(* Shortcut candidates                                                *)
(* ------------------------------------------------------------------ *)

type shortcut = {
  target : [ `Tor of int | `Server of int | `Switch of int ];
  cap : int;
  cost : int;
}

let trim_shortcuts ~(params : Cost_model.params) candidates =
  let arr = Array.of_list candidates in
  Array.sort (fun a b -> Int.compare a.cost b.cost) arr;
  Array.to_list (Array.sub arr 0 (min (Array.length arr) params.max_shortcuts))

let server_shortcuts (view : View.t) census (tor_aggs : tor_agg option array) ~params ~ctx
    ~phi_prio (ts : Pending.tg_state) =
  let topo = view.topo in
  let demand = ts.tg.Poly_req.demand in
  let candidates = ref [] in
  Array.iter
    (fun tor ->
      match tor_aggs.(tor) with
      | None -> ()
      | Some agg ->
          if Vec.fits ~demand ~available:agg.min_avail then begin
            (* Every server under this ToR fits: one aggregate edge. *)
            let cost =
              Cost_model.gs_shortcut ~demand ~available:agg.max_avail
                ~phi_loc:(phi_loc_at view census ctx tor)
                ~phi_prio params
            in
            candidates :=
              { target = `Tor tor; cap = min ts.remaining agg.n_servers; cost } :: !candidates
          end
          else if Vec.fits ~demand ~available:agg.max_avail then
            (* Mixed ToR: direct edges to the servers that do fit. *)
            Array.iter
              (fun s ->
                let available = view.server_available s in
                if view.View.alive s && Vec.fits ~demand ~available then begin
                  let cost =
                    Cost_model.gs_shortcut ~demand ~available
                      ~phi_loc:(phi_loc_at view census ctx s)
                      ~phi_prio params
                  in
                  candidates := { target = `Server s; cap = 1; cost } :: !candidates
                end)
              (Fat_tree.servers_under topo tor))
    (Fat_tree.tor_switches topo);
  trim_shortcuts ~params !candidates

let network_shortcuts (view : View.t) census ~(params : Cost_model.params) ~ctx ~phi_prio
    (ts : Pending.tg_state) (ninfo : Poly_req.network_info) =
  let topo = view.topo in
  let sharing = view.sharing in
  let service = ninfo.Poly_req.service in
  (* A sharing-unaware scheduler (CoCo++ retrofit) folds the shared
     registration into every instance: no reuse benefit. *)
  let per_switch, per_instance =
    if params.sharing_aware then (ninfo.Poly_req.per_switch, ts.tg.Poly_req.demand)
    else
      ( Vec.zero (Vec.dim ts.tg.Poly_req.demand),
        Vec.add ninfo.Poly_req.per_switch ts.tg.Poly_req.demand )
  in
  let candidates = ref [] in
  Array.iter
    (fun s ->
      let shape_ok =
        match ninfo.Poly_req.shape with
        | Comp_store.Single_tor -> Fat_tree.kind topo s = Fat_tree.Tor
        | Comp_store.Single | Comp_store.Chain | Comp_store.Tree | Comp_store.Spine_leaf ->
            true
      in
      if
        shape_ok
        && (not (List.mem s ts.placed_on))
        && Sharing.can_place sharing ~switch:s ~service ~per_switch ~per_instance
      then begin
        let effective =
          Sharing.effective_demand sharing ~switch:s ~service ~per_switch ~per_instance
        in
        let available = Sharing.available sharing s in
        let n_supported = List.length (Sharing.supported_services sharing s) in
        let phi_new =
          if params.sharing_aware then
            Cost_model.phi_new
              ~service_active:(Sharing.instances sharing ~switch:s ~service > 0)
              ~n_active:(Sharing.n_active sharing s)
              ~max_possible:n_supported
          else 0.5
        in
        let cost =
          Cost_model.gn_shortcut ~demand:effective ~available
            ~capacity:(Sharing.capacity sharing)
            ~phi_loc:(phi_loc_at view census ctx s)
            ~phi_new ~phi_prio params
        in
        candidates := { target = `Switch s; cap = 1; cost } :: !candidates
      end)
    (Sharing.switch_ids sharing);
  trim_shortcuts ~params !candidates

(* ------------------------------------------------------------------ *)
(* Build                                                              *)
(* ------------------------------------------------------------------ *)

let mn_cost (view : View.t) s (params : Cost_model.params) =
  Cost_model.mn_to_k
    ~util:(Sharing.utilization view.sharing s)
    ~phi_tor:(Cost_model.phi_tor view.topo ~switch:s)
    ~phi_floor:
      (Cost_model.phi_floor_p
         ~active:(Sharing.n_active view.sharing s)
         ~max_possible:(List.length (Sharing.supported_services view.sharing s)))
    params

(* Rebuild the topology prefix from scratch: sink, machine nodes for
   alive servers / supported switches, the two topology copies, and the
   downward arcs.  Node and arc creation order is the contract here —
   the patch path below reuses these ids, so any reordering breaks the
   full-vs-incremental identity. *)
let build_prefix b (view : View.t) ~big ~(params : Cost_model.params) mk =
  let g = b.g in
  let topo = view.topo in
  let node_count = Fat_tree.node_count topo in
  Graph.clear g;
  Array.fill b.ms_node 0 node_count (-1);
  Array.fill b.ns_node 0 node_count (-1);
  Array.fill b.nn_node 0 node_count (-1);
  Array.fill b.mn_node 0 node_count (-1);
  Array.fill b.ms_arc 0 node_count (-1);
  Array.fill b.mn_arc 0 node_count (-1);
  b.n_big <- 0;
  let sink = mk Sink in
  (* Dead servers get no machine node at all: without an Ms→K arc no
     path can end there, and the ToR topology arcs below skip them. *)
  Array.iter
    (fun s ->
      if view.View.alive s then begin
        let v = mk (Machine_server s) in
        b.ms_node.(s) <- v;
        let cost = Cost_model.ms_to_k ~util:(View.server_utilization view s) params in
        b.ms_arc.(s) <- Graph.add_arc g ~src:v ~dst:sink ~cap:1 ~cost
      end)
    (Fat_tree.servers topo);
  Array.iter
    (fun s ->
      b.ns_node.(s) <- mk (Aux_server s);
      b.nn_node.(s) <- mk (Aux_inc s))
    (Fat_tree.switches topo);
  Array.iter
    (fun s ->
      if view.View.alive s && Sharing.supported_services view.sharing s <> [] then begin
        let v = mk (Machine_inc s) in
        b.mn_node.(s) <- v;
        ignore (Graph.add_arc g ~src:b.nn_node.(s) ~dst:v ~cap:1 ~cost:0);
        b.mn_arc.(s) <- Graph.add_arc g ~src:v ~dst:sink ~cap:1 ~cost:(mn_cost view s params)
      end)
    (Fat_tree.switches topo);
  (* Topology arcs, downward. *)
  Array.iter
    (fun s ->
      List.iter
        (fun child ->
          if Fat_tree.is_server topo child then begin
            let dst = b.ms_node.(child) in
            if dst >= 0 then ignore (Graph.add_arc g ~src:b.ns_node.(s) ~dst ~cap:1 ~cost:0)
            (* dead server: unreachable by construction *)
          end
          else begin
            push_big b (Graph.add_arc g ~src:b.ns_node.(s) ~dst:b.ns_node.(child) ~cap:big ~cost:0);
            push_big b (Graph.add_arc g ~src:b.nn_node.(s) ~dst:b.nn_node.(child) ~cap:big ~cost:0)
          end)
        (Fat_tree.children topo s))
    (Fat_tree.switches topo);
  Array.iter (fun tor -> b.tor_aggs.(tor) <- compute_tor_agg view tor) (Fat_tree.tor_switches topo);
  b.prefix <- Some { mark = Graph.mark g; p_arcs = Graph.arc_count g; big };
  sink

(* Rewind the graph to the topology prefix and patch only the arcs whose
   inputs changed: Ms→K / Mn→K costs of dirty nodes, switch-switch
   capacities when [big] moved, and the ToR aggregates of dirty servers.
   The resulting arrays are element-for-element identical to what
   [build_prefix] would produce from the same cluster state, which is
   what makes incremental solves bit-identical to full rebuilds. *)
let patch_prefix b (view : View.t) p d ~big ~(params : Cost_model.params) touched =
  let g = b.g in
  let topo = view.topo in
  Graph.release g p.mark;
  (* Undo last round's flow (and any chaos corruption) on prefix arcs:
     sparsely via the graph's touched-pair record when re-optimizing,
     otherwise a full arena sweep.  Bit-identical end state either
     way (Graph.reset_touched_flows contract). *)
  if b.reopt then b.last_reset <- Graph.reset_touched_flows g
  else begin
    Graph.reset_flows g;
    b.last_reset <- Graph.arc_count g
  end;
  if p.big <> big then begin
    for i = 0 to b.n_big - 1 do
      Graph.set_cap g b.big_arcs.(i) big
    done;
    touched := !touched + b.n_big;
    p.big <- big
  end;
  Dirty.iter_servers d (fun s ->
      let a = b.ms_arc.(s) in
      if a >= 0 then begin
        Graph.set_cost g a (Cost_model.ms_to_k ~util:(View.server_utilization view s) params);
        incr touched
      end);
  Dirty.iter_switches d (fun s ->
      let a = b.mn_arc.(s) in
      if a >= 0 then begin
        Graph.set_cost g a (mn_cost view s params);
        incr touched
      end);
  (* Re-aggregate only the ToRs owning a dirty server (deduped). *)
  b.stamp <- b.stamp + 1;
  Dirty.iter_servers d (fun s ->
      let tor = Fat_tree.tor_of_server topo s in
      if b.tor_stamp.(tor) <> b.stamp then begin
        b.tor_stamp.(tor) <- b.stamp;
        b.tor_aggs.(tor) <- compute_tor_agg view tor
      end)

let build ?builder (view : View.t) census ~jobs ~now ~(params : Cost_model.params) =
  let topo = view.topo in
  let b = match builder with Some b -> b | None -> create_builder () in
  ensure_topology b (Fat_tree.node_count topo);
  let g = b.g in
  let mk r =
    let v = Graph.add_node g in
    ensure_roles b (v + 1);
    b.roles.(v) <- encode_role r;
    v
  in

  (* --- select jobs and task groups, FIFO by arrival, bounded --- *)
  let jobs =
    List.filter Pending.has_pending_work jobs
    |> List.sort (fun (a : Pending.job_state) b ->
           Float.compare a.poly.Poly_req.arrival b.poly.Poly_req.arrival)
  in
  let budget = ref params.max_queue_tgs in
  let selected =
    List.filter_map
      (fun (job : Pending.job_state) ->
        if !budget <= 0 then None
        else begin
          let wanted ts =
            ts.Pending.remaining > 0
            &&
            match Pending.status job ts with
            | Flavor.Materialized -> true
            | Flavor.Undecided -> not job.inc_flavor_locked
            | Flavor.Dropped -> false
          in
          let entries = Array.to_list job.tg_states |> List.filter wanted in
          let take = min (List.length entries) !budget in
          if take = 0 then None
          else begin
            budget := !budget - take;
            Some (job, List.filteri (fun i _ -> i < take) entries)
          end
        end)
      jobs
  in
  let total_supply =
    List.fold_left
      (fun acc (job, tgs) ->
        List.fold_left
          (fun acc ts ->
            if Pending.status job ts = Flavor.Materialized then acc + ts.Pending.remaining
            else acc)
          acc tgs)
      0 selected
  in
  let big = total_supply + List.length selected + 1 in

  (* --- topology part: patch the persistent prefix or rebuild it --- *)
  let touched = ref 0 in
  let dirt =
    match view.View.dirty with
    | Some d when not (Dirty.structural d) -> Some d
    | _ -> None
  in
  let sink =
    match (b.prefix, dirt) with
    | Some p, Some d ->
        patch_prefix b view p d ~big ~params touched;
        b.last_full <- false;
        0
    | _ ->
        let sink = build_prefix b view ~big ~params mk in
        b.last_full <- true;
        b.full_rebuilds <- b.full_rebuilds + 1;
        b.last_reset <- 0;
        sink
  in
  (* The marks are folded in (or subsumed by a full rebuild); forget
     them.  Safe within a round's resilience fallback chain because
     ledgers only change after the round returns. *)
  (match view.View.dirty with Some d -> Dirty.clear d | None -> ());

  let tor_aggs = b.tor_aggs in
  let max_waiting =
    List.fold_left
      (fun acc (job, _) -> Float.max acc (now -. (job : Pending.job_state).poly.Poly_req.arrival))
      1e-6 selected
  in

  (* --- job, group, postpone, flavor nodes --- *)
  let cheapest_shortcut = Int_tbl.create 64 in
  let flavor_jobs = ref [] in
  List.iter
    (fun ((job : Pending.job_state), tgs) ->
      let waiting = Float.max 0.0 (now -. job.poly.Poly_req.arrival) in
      let p = mk (Postpone job.poly.Poly_req.job_id) in
      let p_cap = ref 0 in
      let phi_prio = Cost_model.phi_prio job.poly.Poly_req.priority in
      let undecided_here = ref [] in
      List.iter
        (fun (ts : Pending.tg_state) ->
          let tg = ts.tg in
          let gnode = mk (Group tg.Poly_req.tg_id) in
          let ctx =
            if params.locality_aware then loc_ctx view census ~params ts
            else neutral_ctx view census ~params
          in
          let shortcuts =
            match tg.Poly_req.kind with
            | Poly_req.Server_tg ->
                server_shortcuts view census tor_aggs ~params ~ctx ~phi_prio ts
            | Poly_req.Network_tg ninfo ->
                network_shortcuts view census ~params ~ctx ~phi_prio ts ninfo
          in
          (match shortcuts with
          | [] -> ()
          | best :: _ -> Int_tbl.replace cheapest_shortcut tg.Poly_req.tg_id best.cost);
          List.iter
            (fun sc ->
              let dst =
                match sc.target with
                | `Tor s -> b.ns_node.(s)
                | `Server s -> b.ms_node.(s)
                | `Switch s -> b.mn_node.(s)
              in
              ignore (Graph.add_arc g ~src:gnode ~dst ~cap:sc.cap ~cost:sc.cost))
            shortcuts;
          match Pending.status job ts with
          | Flavor.Materialized ->
              Graph.set_supply g gnode ts.remaining;
              let phi_delay =
                Cost_model.phi_delay ~waiting ~max_waiting
                  ~placed:(tg.Poly_req.count - ts.remaining)
                  ~total:tg.Poly_req.count
              in
              ignore
                (Graph.add_arc g ~src:gnode ~dst:p ~cap:ts.remaining
                   ~cost:(Cost_model.g_to_p ~phi_delay params));
              p_cap := !p_cap + ts.remaining
          | Flavor.Undecided -> undecided_here := (ts, gnode) :: !undecided_here
          | Flavor.Dropped -> ())
        tgs;
      if !undecided_here <> [] then begin
        let f = mk (Flavor_sel job.poly.Poly_req.job_id) in
        ignore
          (Graph.add_arc g ~src:f ~dst:p ~cap:1
             ~cost:(Cost_model.f_to_p ~phi_w:(Cost_model.phi_w ~waiting params) params));
        p_cap := !p_cap + 1;
        flavor_jobs := (job, f, waiting, List.rev !undecided_here) :: !flavor_jobs
      end;
      if !p_cap > 0 then ignore (Graph.add_arc g ~src:p ~dst:sink ~cap:!p_cap ~cost:0))
    selected;

  (* --- flavor estimates and F→G arcs --- *)
  let sentinel = 6 * params.cost_scale in
  List.iter
    (fun ((_job : Pending.job_state), f, waiting, und) ->
      (* Group the undecided task groups into variants by flavor. *)
      let variants = Hashtbl.create 4 in
      List.iter
        (fun ((ts : Pending.tg_state), gnode) ->
          let key = Flavor.to_string ts.tg.Poly_req.flavor in
          let cur = match Hashtbl.find_opt variants key with Some l -> l | None -> [] in
          Hashtbl.replace variants key ((ts, gnode) :: cur))
        und;
      let estimate_of key =
        let members = Hashtbl.find variants key in
        List.fold_left
          (fun acc ((ts : Pending.tg_state), _) ->
            let c =
              match Int_tbl.find_opt cheapest_shortcut ts.tg.Poly_req.tg_id with
              | Some c -> c
              | None -> sentinel
            in
            acc +. (float_of_int c *. float_of_int ts.tg.Poly_req.count))
          0.0 members
      in
      let max_est =
        Hashtbl.fold (fun key _ acc -> Float.max acc (estimate_of key)) variants 1.0
      in
      let job_has_inc_variant =
        List.exists (fun ((ts : Pending.tg_state), _) -> Poly_req.is_network ts.tg) und
      in
      Hashtbl.iter
        (fun key members ->
          (* "All parts of a flavor take resource availability into
             account" (§5.2): a variant with a shortcut-less member has
             no valid allocation anywhere this round and must not be
             selectable — otherwise the flavor decision could flow
             through its feasible sibling group. *)
          let fully_feasible =
            List.for_all
              (fun ((ts : Pending.tg_state), _) ->
                Int_tbl.mem cheapest_shortcut ts.tg.Poly_req.tg_id)
              members
          in
          if fully_feasible then begin
            let est = estimate_of key in
            let is_inc_variant =
              List.exists
                (fun ((ts : Pending.tg_state), _) -> Poly_req.is_network ts.tg)
                members
            in
            let cost =
              Cost_model.f_to_g
                ~phi_xhat:(Cost_model.phi_xhat ~estimate:est ~max_estimate:max_est)
                ~phi_pref:(Cost_model.phi_pref ~waiting params)
                ~fallback:(job_has_inc_variant && not is_inc_variant)
                params
            in
            List.iter
              (fun (_, gnode) -> ignore (Graph.add_arc g ~src:f ~dst:gnode ~cap:1 ~cost))
              members
          end)
        variants)
    !flavor_jobs;

  (* --- super selector and sink demand --- *)
  let n_flavor = List.length !flavor_jobs in
  let s_supply = min n_flavor params.max_flavor_decisions in
  if n_flavor > 0 then begin
    let s = mk Super in
    Graph.set_supply g s s_supply;
    List.iter
      (fun (_, f, _, _) ->
        ignore (Graph.add_arc g ~src:s ~dst:f ~cap:1 ~cost:(Cost_model.s_to_f params)))
      !flavor_jobs
  end;
  Graph.set_supply g sink (-(total_supply + s_supply));

  (* --- bookkeeping --- *)
  b.valid_n <- Graph.node_count g;
  b.builds <- b.builds + 1;
  let total_arcs = Graph.arc_count g in
  b.last_total <- total_arcs;
  b.last_touched <-
    (if b.last_full then total_arcs
     else
       let p_arcs = match b.prefix with Some p -> p.p_arcs | None -> 0 in
       !touched + (total_arcs - p_arcs));
  { b; sink }

(* ------------------------------------------------------------------ *)
(* Extraction                                                         *)
(* ------------------------------------------------------------------ *)

type outcome = {
  placements : (int * int) list;
  flavor_picks : (int * int) list;
  solver : Mcmf.result;
}

type solver = Ssp | Ssp_classic | Cost_scaling

let solver_name = function
  | Ssp -> "ssp"
  | Ssp_classic -> "ssp-classic"
  | Cost_scaling -> "cost-scaling"

(* Module-level solve usable on any graph carrying this network's node
   ids — the builder's own graph or a private [Graph.copy] snapshot (the
   portfolio race).  [ctl] is forwarded to the backend as its prepared
   budget state (see Mcmf.solve). *)
let solve_graph ?(solver = Ssp) ?budget ?ctl ?scratch ?warm g =
  match solver with
  | Ssp -> Mcmf.solve ?budget ?ctl ?scratch ?warm g
  | Ssp_classic -> Mcmf.solve ~algo:Mcmf.Classic ?budget ?ctl ?scratch ?warm g
  | Cost_scaling ->
      let r = Flow.Cost_scaling.solve ?budget ?ctl g in
      {
        Mcmf.shipped = r.Flow.Cost_scaling.shipped;
        unshipped = r.Flow.Cost_scaling.unshipped;
        total_cost = r.Flow.Cost_scaling.total_cost;
        augmentations = r.Flow.Cost_scaling.pushes;
        elapsed_s = r.Flow.Cost_scaling.elapsed_s;
        degraded = r.Flow.Cost_scaling.degraded;
        profile = r.Flow.Cost_scaling.profile;
      }

let solve_only ?solver ?budget ?ctl ?scratch ?warm t =
  solve_graph ?solver ?budget ?ctl ?scratch ?warm t.b.g

let extract_on t ~graph ~solver =
  let extract_t0 = if Obs.enabled () then Prelude.Clock.now () else 0.0 in
  let paths = Mcmf.decompose graph in
  let placements = ref [] and flavor_picks = ref [] in
  List.iter
    (fun (p : Mcmf.path) ->
      (* Nodes without a role are skipped rather than fatal: the
         cost-scaling backend leaves its virtual feasibility node in the
         graph, and a budget-exhausted partial flow may route through
         it. *)
      let roles_on_path = List.filter_map (role_opt t) p.nodes in
      let group = List.find_opt (function Group _ -> true | _ -> false) roles_on_path in
      let flavor = List.find_opt (function Flavor_sel _ -> true | _ -> false) roles_on_path in
      let machine =
        List.find_opt
          (function Machine_server _ | Machine_inc _ -> true | _ -> false)
          roles_on_path
      in
      (match (flavor, group) with
      | Some (Flavor_sel job_id), Some (Group tg_id) ->
          flavor_picks := (job_id, tg_id) :: !flavor_picks
      | _ -> ());
      match (group, machine) with
      | Some (Group tg_id), Some (Machine_server m) | Some (Group tg_id), Some (Machine_inc m)
        ->
          (* M→K capacity is 1, so such a path carries exactly one task. *)
          for _ = 1 to p.amount do
            placements := (tg_id, m) :: !placements
          done
      | _ -> ())
    paths;
  if Obs.enabled () then
    Obs.Trace.emit "flow_extract"
      [
        ("paths", Obs.Trace.Int (List.length paths));
        ("placements", Obs.Trace.Int (List.length !placements));
        ("flavor_picks", Obs.Trace.Int (List.length !flavor_picks));
        ("extract_s", Obs.Trace.Float (Prelude.Clock.now () -. extract_t0));
      ];
  { placements = List.rev !placements; flavor_picks = List.rev !flavor_picks; solver }

let extract t ~solver = extract_on t ~graph:t.b.g ~solver

let solve_and_extract ?solver ?budget ?scratch ?warm t =
  let solver = solve_only ?solver ?budget ?scratch ?warm t in
  extract t ~solver
