module Codec = Prelude.Codec
module Enc = Codec.Enc
module Dec = Codec.Dec

let fail fmt = Printf.ksprintf (fun s -> raise (Codec.Error s)) fmt

(* ---- primitives ---- *)

let enc_vec e (v : Prelude.Vec.t) = Enc.float_array e v
let dec_vec d : Prelude.Vec.t = Dec.float_array d

let enc_flavor e (f : Flavor.t) =
  Enc.uint e (Array.length f);
  Array.iter
    (fun b -> Enc.byte e (match b with Flavor.Zero -> 0 | Flavor.One -> 1 | Flavor.X -> 2))
    f

let dec_flavor d : Flavor.t =
  let n = Dec.uint d in
  Array.init n (fun _ ->
      match Dec.byte d with
      | 0 -> Flavor.Zero
      | 1 -> Flavor.One
      | 2 -> Flavor.X
      | b -> fail "bad flavor bit %d" b)

let enc_shape e (s : Comp_store.shape) =
  Enc.byte e
    (match s with
    | Comp_store.Single -> 0
    | Single_tor -> 1
    | Chain -> 2
    | Tree -> 3
    | Spine_leaf -> 4)

let dec_shape d : Comp_store.shape =
  match Dec.byte d with
  | 0 -> Comp_store.Single
  | 1 -> Single_tor
  | 2 -> Chain
  | 3 -> Tree
  | 4 -> Spine_leaf
  | b -> fail "bad shape tag %d" b

let enc_priority e (p : Workload.Job.priority) =
  Enc.byte e (match p with Workload.Job.Batch -> 0 | Service -> 1)

let dec_priority d : Workload.Job.priority =
  match Dec.byte d with
  | 0 -> Workload.Job.Batch
  | 1 -> Workload.Job.Service
  | b -> fail "bad priority tag %d" b

(* ---- task groups and PolyReqs ---- *)

let enc_kind e (k : Poly_req.kind) =
  match k with
  | Poly_req.Server_tg -> Enc.byte e 0
  | Poly_req.Network_tg n ->
      Enc.byte e 1;
      Enc.string e n.Poly_req.service;
      enc_shape e n.shape;
      enc_vec e n.per_switch;
      Enc.string e n.role

let dec_kind d : Poly_req.kind =
  match Dec.byte d with
  | 0 -> Poly_req.Server_tg
  | 1 ->
      let service = Dec.string d in
      let shape = dec_shape d in
      let per_switch = dec_vec d in
      let role = Dec.string d in
      Poly_req.Network_tg { Poly_req.service; shape; per_switch; role }
  | b -> fail "bad task-group kind tag %d" b

let enc_task_group e (tg : Poly_req.task_group) =
  Enc.int e tg.Poly_req.tg_id;
  Enc.int e tg.job_id;
  Enc.string e tg.comp_id;
  enc_kind e tg.kind;
  Enc.uint e tg.count;
  enc_vec e tg.demand;
  Enc.f64 e tg.duration;
  enc_flavor e tg.flavor;
  Enc.list e Enc.int tg.connected

let dec_task_group d : Poly_req.task_group =
  let tg_id = Dec.int d in
  let job_id = Dec.int d in
  let comp_id = Dec.string d in
  let kind = dec_kind d in
  let count = Dec.uint d in
  let demand = dec_vec d in
  let duration = Dec.f64 d in
  let flavor = dec_flavor d in
  let connected = Dec.list d Dec.int in
  { Poly_req.tg_id; job_id; comp_id; kind; count; demand; duration; flavor; connected }

let enc_poly e (p : Poly_req.t) =
  Enc.int e p.Poly_req.job_id;
  enc_priority e p.priority;
  Enc.f64 e p.arrival;
  Enc.uint e p.flavor_len;
  Enc.list e enc_task_group p.task_groups

let dec_poly d : Poly_req.t =
  let job_id = Dec.int d in
  let priority = dec_priority d in
  let arrival = Dec.f64 d in
  let flavor_len = Dec.uint d in
  let task_groups = Dec.list d dec_task_group in
  { Poly_req.job_id; priority; arrival; flavor_len; task_groups }

(* ---- pending jobs (scheduler queue state) ---- *)

(* A job is its immutable PolyReq plus the mutable decision/placement
   state layered on top; decode rebuilds via [Pending.of_poly] and
   patches that state back in, so any derived structure stays
   consistent with a freshly submitted job. *)
let enc_job e (job : Pending.job_state) =
  enc_poly e job.Pending.poly;
  enc_flavor e job.x_hat;
  Enc.bool e job.inc_flavor_locked;
  Enc.array e
    (fun e (ts : Pending.tg_state) ->
      Enc.uint e ts.Pending.remaining;
      Enc.list e Enc.int ts.placed_on)
    job.tg_states

let dec_job d : Pending.job_state =
  let poly = dec_poly d in
  let x_hat = dec_flavor d in
  let inc_flavor_locked = Dec.bool d in
  let job = Pending.of_poly poly in
  job.Pending.x_hat <- x_hat;
  job.inc_flavor_locked <- inc_flavor_locked;
  let n = Dec.uint d in
  if n <> Array.length job.tg_states then fail "job %d: %d task groups where %d expected"
      poly.Poly_req.job_id n (Array.length job.tg_states);
  Array.iter
    (fun (ts : Pending.tg_state) ->
      ts.Pending.remaining <- Dec.uint d;
      ts.placed_on <- Dec.list d Dec.int)
    job.tg_states;
  job
