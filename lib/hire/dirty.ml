(* Dirty-set tracker for incremental flow-network maintenance.

   The cluster marks a node whenever a charge/release changes its
   ledgers, and marks [structural] on liveness or support changes
   (failure/recovery).  The network builder folds the marks into the
   persistent graph and then [clear]s them.  Node ids are topology ids;
   servers and switches get separate mark sets because they patch
   different arcs (Ms->K vs Mn->K). *)

type t = {
  server_dirty : bool array;
  switch_dirty : bool array;
  mutable server_list : int list;
  mutable switch_list : int list;
  mutable structural : bool;
}

let create ~node_count =
  {
    server_dirty = Array.make node_count false;
    switch_dirty = Array.make node_count false;
    server_list = [];
    switch_list = [];
    (* Start structural so the first build is always a full one. *)
    structural = true;
  }

let mark_server t id =
  if not t.server_dirty.(id) then begin
    t.server_dirty.(id) <- true;
    t.server_list <- id :: t.server_list
  end

let mark_switch t id =
  if not t.switch_dirty.(id) then begin
    t.switch_dirty.(id) <- true;
    t.switch_list <- id :: t.switch_list
  end

let mark_structural t = t.structural <- true
let structural t = t.structural
let iter_servers t f = List.iter f t.server_list
let iter_switches t f = List.iter f t.switch_list

let clear t =
  List.iter (fun id -> t.server_dirty.(id) <- false) t.server_list;
  List.iter (fun id -> t.switch_dirty.(id) <- false) t.switch_list;
  t.server_list <- [];
  t.switch_list <- [];
  t.structural <- false
