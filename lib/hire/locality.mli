(** Locality bookkeeping for the HIRE cost model (Appendix A).

    Two metrics steer placements towards the subtrees that already host
    related tasks:

    - [Task_census] — the per-subtree running-task counters the paper's
      N nodes maintain ("a map containing a counter for the running
      tasks of a task group in the subtree rooted at N");
    - [upsilon] — the recursive server-locality metric Υ (Eq. 6):
      roughly, the average number of related tasks *not* covered by each
      child subtree (lower = better co-location);
    - [Gain] — the INC-locality gain Γ of Alg. 1: a decaying
      breadth-first propagation of a gain γ from every switch hosting a
      related task ([IncLocProp]). *)

module Fat_tree = Topology.Fat_tree

(** Counts of running/placed tasks per task group, indexed by subtree. *)
module Task_census : sig
  type t

  val create : Fat_tree.t -> t

  (** [add t ~tg_id ~machine] records one task of [tg_id] running on
      [machine] (a server for server groups, a switch for network
      groups). *)
  val add : t -> tg_id:int -> machine:int -> unit

  val remove : t -> tg_id:int -> machine:int -> unit

  (** Tasks of the group running inside the subtree rooted at [node]. *)
  val count_under : t -> tg_id:int -> node:int -> int

  val total : t -> tg_id:int -> int

  (** Machines hosting tasks of the group, with counts. *)
  val machines : t -> tg_id:int -> (int * int) list

  (** Switches among [machines]. *)
  val switches : t -> tg_id:int -> int list

  val clear_group : t -> tg_id:int -> unit

  (** Journal-checkpoint serialization (docs/JOURNAL.md): canonical
      encoding of the (machine, count) pairs per group; restore rebuilds
      the subtree rollups through {!add}, replacing the current
      contents. *)
  val encode_state : t -> Prelude.Codec.Enc.t -> unit

  val decode_state : t -> Prelude.Codec.Dec.t -> unit
end

(** [upsilon topo census ~tg_ids ~node ~group_size] computes Υ for the
    union of the given (related) task groups at a switch [node],
    normalized to [\[0,1\]] by [group_size] (so 1 = no related task in any
    child subtree, 0 = all of them under every child).  For a server
    [node] it degrades to the fraction of related tasks not on that
    server. *)
val upsilon :
  Fat_tree.t -> Task_census.t -> tg_ids:int list -> node:int -> group_size:int -> float

(** INC-locality gains (Alg. 1). *)
module Gain : sig
  type t

  (** [compute topo census ~related ~gamma ~xi] runs IncLocProp from
      every switch hosting a task of a related group, with initial gain
      [gamma] and decay divisor [xi > 1]. *)
  val compute :
    Fat_tree.t -> Task_census.t -> related:int list -> gamma:int -> xi:int -> t

  (** Accumulated Γ at a node (0 if never reached). *)
  val at : t -> int -> int

  (** Γ normalized to [\[0,1\]]: 1 = maximum accumulated gain among all
      nodes, 0 = none.  Returns 0 everywhere when no source exists. *)
  val normalized : t -> int -> float
end
