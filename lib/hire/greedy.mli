(** Greedy best-effort placer: the last rung of the solver fallback
    chain (docs/RESILIENCE.md).

    When both MCMF backends exhaust their budgets (or are quarantined by
    the invariant guard), the round still has to terminate with whatever
    progress is cheap to compute.  This placer walks pending jobs FIFO
    by arrival — the same selection order and [max_queue_tgs] bound as
    {!Flow_network.build} — and first-fit places tasks of {e
    materialized} groups only, one machine scan per task:

    - server groups go to the first alive server (in id order) whose
      remaining resources fit the demand;
    - network groups go to the first supporting switch that passes
      {!Sharing.can_place} under the same sharing/shape rules as the
      flow network's shortcut arcs;
    - like the flow network's M→K capacity-1 arcs, a machine accepts at
      most one new task per round, and a network group never reuses a
      switch it already occupies.

    It never makes flavor decisions (undecided groups wait for a
    healthy flow round) and ignores all cost terms — placements are
    feasible but deliberately quality-blind, which is the right trade
    when the alternative is a wedged scheduler. *)

(** [place view ~jobs ~params] returns [(tg_id, machine)] pairs, one per
    placed task, in deterministic order.  The caller applies them
    exactly like {!Flow_network.outcome} placements. *)
val place :
  View.t -> jobs:Pending.job_state list -> params:Cost_model.params -> (int * int) list
