module Vec = Prelude.Vec
module Rng = Prelude.Rng

module Id_gen = struct
  type t = { mutable next : int }

  let create ?(first = 0) () = { next = first }

  let fresh t =
    let id = t.next in
    t.next <- t.next + 1;
    id
end

(* One variant of a composite before flavor finalization. *)
type proto_tg = {
  comp_id : string;
  kind : Poly_req.kind;
  count : int;
  demand : Vec.t;
  duration : float;
}

let server_proto (c : Comp_req.composite) =
  {
    comp_id = c.comp_id;
    kind = Poly_req.Server_tg;
    count = c.base.instances;
    demand = Vec.of_list [ c.base.cpu; c.base.mem ];
    duration = c.base.duration;
  }

(* The INC variant: reduced server group + network group(s). *)
let inc_protos store rng (c : Comp_req.composite) service_name =
  let svc = Comp_store.service_exn store service_name in
  let group_size = c.base.instances in
  let saved = int_of_float (Float.round (float_of_int group_size *. svc.server_saving)) in
  let reduced_count = max 1 (group_size - saved) in
  let reduced_duration = c.base.duration *. (1.0 -. svc.duration_saving) in
  let server_part =
    {
      comp_id = c.comp_id;
      kind = Poly_req.Server_tg;
      count = reduced_count;
      demand = Vec.of_list [ c.base.cpu; c.base.mem ];
      duration = reduced_duration;
    }
  in
  let n_switches = max 1 (svc.switch_count ~group_size) in
  let demand = Comp_store.draw_instance_demand svc rng ~group_size in
  let network role count =
    {
      comp_id = c.comp_id;
      kind =
        Poly_req.Network_tg
          { service = svc.name; shape = svc.shape; per_switch = svc.per_switch; role };
      count;
      demand;
      duration = reduced_duration;
    }
  in
  let network_parts =
    match svc.shape with
    | Comp_store.Spine_leaf ->
        (* Two-tier overlay (Fig. 4c): a small spine plus ToR leaves. *)
        let spine = max 1 (n_switches / 3) in
        let leaf = max 1 (n_switches - spine) in
        [ network "spine" spine; network "leaf" leaf ]
    | Comp_store.Single | Comp_store.Single_tor | Comp_store.Chain | Comp_store.Tree ->
        [ network "" n_switches ]
  in
  server_part :: network_parts

let transform store ids rng ~job_id ~arrival (req : Comp_req.t) =
  (match Comp_req.validate store req with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Transformer.transform: " ^ msg));
  let builder = Flavor.Builder.create () in
  (* Phase 1: expand variants and record flavor fragments. *)
  let expanded =
    List.map
      (fun (c : Comp_req.composite) ->
        match c.inc_alternatives with
        | [] -> (c.comp_id, [ ([ server_proto c ], []) ])
        | alts ->
            let n = 1 + List.length alts in
            let fragments = Flavor.Builder.alternatives builder n in
            let variants =
              ([ server_proto c ], fragments.(0))
              :: List.mapi
                   (fun i svc -> (inc_protos store rng c svc, fragments.(i + 1)))
                   alts
            in
            (c.comp_id, variants))
      req.composites
  in
  (* Phase 2: allocate tg ids and finalize flavors. *)
  let groups_by_comp = Hashtbl.create 8 in
  let tgs =
    List.concat_map
      (fun (comp_id, variants) ->
        List.concat_map
          (fun (protos, fragment) ->
            let flavor = Flavor.Builder.finalize builder fragment in
            List.map
              (fun p ->
                let tg_id = Id_gen.fresh ids in
                Hashtbl.add groups_by_comp comp_id tg_id;
                ( tg_id,
                  {
                    Poly_req.tg_id;
                    job_id;
                    comp_id = p.comp_id;
                    kind = p.kind;
                    count = p.count;
                    demand = p.demand;
                    duration = p.duration;
                    flavor;
                    connected = [];
                  } ))
              protos)
          variants)
      expanded
  in
  (* Phase 3: connections — within a composite and across connected
     composites.  Flavor compatibility is checked at use time by the
     scheduler; here we record the full communication graph. *)
  let comp_neighbors = Hashtbl.create 8 in
  List.iter
    (fun (a, b) ->
      Hashtbl.add comp_neighbors a b;
      Hashtbl.add comp_neighbors b a)
    req.connections;
  let connected_of comp_id self_id =
    let same_comp = Hashtbl.find_all groups_by_comp comp_id in
    let neighbor_comps = Hashtbl.find_all comp_neighbors comp_id in
    let other = List.concat_map (Hashtbl.find_all groups_by_comp) neighbor_comps in
    List.filter (fun id -> id <> self_id) (List.sort_uniq Int.compare (same_comp @ other))
  in
  let task_groups =
    List.map
      (fun (tg_id, tg) -> { tg with Poly_req.connected = connected_of tg.Poly_req.comp_id tg_id })
      tgs
  in
  {
    Poly_req.job_id;
    priority = req.priority;
    arrival;
    flavor_len = Flavor.Builder.size builder;
    task_groups;
  }
