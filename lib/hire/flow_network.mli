(** Construction and interpretation of the HIRE flow network (§5.2/§5.3,
    Fig. 6).

    One network is built per scheduling round over all pending jobs.  It
    contains:

    - a sink [K] and one super flavor-selector [S];
    - per job: a postpone node [P] and, while alternatives are open, a
      flavor selector [F] (edge S→F of capacity 1 — at most one flavor
      decision per job per round);
    - per requesting task group: a group node [G].  Materialized groups
      carry their remaining task count as supply; flavor-undecided groups
      have supply 0 and are fed through [F];
    - two copies of the topology: auxiliary server nodes [Nˢ] with server
      machine leaves [Mˢ], and the INC shadow network [Nⁿ] with switch
      machine nodes [Mⁿ].  All [M]→[K] edges have capacity 1, so a
      machine accepts at most one new task per round (the CoCo
      discipline);
    - shortcut edges [G]→[Nˢ]/[Mˢ]/[Mⁿ]: a subtree shortcut is added only
      when *every* server under the subtree can host a task of the group
      (lower-bound propagation), so all flows end in valid allocations;
      network groups get direct switch shortcuts filtered by switch
      support, sharing-aware effective demand, and the switches the group
      already occupies (a chain must use distinct switches).

    Costs follow the Appendix-A cost model. *)

type node_role =
  | Super
  | Flavor_sel of int  (** job id *)
  | Group of int  (** tg id *)
  | Postpone of int  (** job id *)
  | Aux_server of int  (** switch id in the server part *)
  | Aux_inc of int  (** switch id in the shadow part *)
  | Machine_server of int  (** server id *)
  | Machine_inc of int  (** switch id *)
  | Sink

val pp_role : Format.formatter -> node_role -> unit

type t

(** Persistent network builder.  A builder owns the graph arena, the
    node/arc maps of the topology part, and the ToR aggregates, keeping
    them alive across rounds so that a build only patches what changed
    (per the {!View.t.dirty} set) instead of reallocating everything.

    A builder is bound to one cluster (one topology instance and one
    parameter set): reuse it only across rounds of the same scheduler.
    Incremental and full builds are {e bit-identical} — the patch path
    reproduces exactly the arrays a fresh build would create, so solver
    results (placements, objective values) never depend on which path
    ran. *)
type builder

(** [create_builder ?reopt ()] makes a fresh builder.  With [reopt]
    (default [false]) the builder's graph records which arc pairs each
    solve touches ({!Flow.Graph.set_flow_tracking}), so the patch path
    undoes the previous round's flow in time proportional to the arcs
    the solve actually used instead of the arena size.  The reset is
    bit-identical to the full sweep, so [reopt] never changes
    placements — it is an escape hatch ([--no-reopt]) for measurement,
    not a behaviour switch. *)
val create_builder : ?reopt:bool -> unit -> builder

(** Per-build patching statistics of the network a builder produced
    last: [touched_arcs] counts patched prefix arcs plus rebuilt suffix
    arcs ([= total_arcs] on a full rebuild); [reset_arcs] counts the arc
    pairs whose flow the pre-patch reset actually restored (the full
    arc count without [reopt], 0 on a full rebuild where {!clear}
    subsumes the reset). *)
type build_stats = {
  full : bool;
  touched_arcs : int;
  total_arcs : int;
  reset_arcs : int;
  builds : int;
  full_rebuilds : int;
}

val stats : t -> build_stats
val graph : t -> Flow.Graph.t
val role : t -> int -> node_role

(** (nodes, arcs) of the built network — drives the think-time model. *)
val size : t -> int * int

(** [build ?builder view census ~jobs ~now ~params] assembles the
    network for the given pending jobs (FIFO-truncated to
    [params.max_queue_tgs] requesting task groups, as in §6.2).

    Without [builder] (or on a builder's first use, or whenever the
    view's dirty set is absent or structural) the whole network is
    built from scratch.  With a warmed-up [builder] and a
    non-structural dirty set, the long-lived topology part is patched
    in place and only the per-round job part is rebuilt.  The view's
    dirty set is cleared either way. *)
val build :
  ?builder:builder ->
  View.t ->
  Locality.Task_census.t ->
  jobs:Pending.job_state list ->
  now:float ->
  params:Cost_model.params ->
  t

type outcome = {
  placements : (int * int) list;  (** (tg_id, machine id), one task each *)
  flavor_picks : (int * int) list;
      (** (job_id, tg_id routed through the job's F node) *)
  solver : Flow.Mcmf.result;
}

(** Which exact MCMF algorithm solves the round (the paper's artifact
    races several solvers; all produce flows of identical cost).
    [Ssp_classic] pins the pre-reoptimization SSP implementation
    ({!Flow.Mcmf.Classic}) — kept as a measured baseline for
    [bench/bench_reopt] and end-to-end comparisons; production paths
    default to [Ssp], which runs the fast re-optimizing implementation
    (docs/PERFORMANCE.md). *)
type solver = Ssp | Ssp_classic | Cost_scaling

val solver_name : solver -> string

(** [solve_only ?solver ?budget t] runs the MCMF solve, leaving the flow
    on the graph, without extracting decisions.  With [budget] the solve
    is bounded ({!Flow.Budget}); a degraded SSP result leaves a valid
    partial flow, a degraded cost-scaling result leaves the zero flow.
    Splitting solve from extraction lets the resilience layer run the
    invariant guard (and the chaos harness) on the raw flow before any
    decision is read off it.

    [scratch]/[warm] are forwarded to {!Flow.Mcmf.solve} when the SSP
    backend runs (cost scaling ignores them): scratch reuse is exact;
    warm starts trade tie-break stability for speed.

    [ctl] forwards an externally prepared budget state to the backend
    (overriding [budget], suppressing the backend's own chaos draws) —
    the portfolio race's cancellation and chaos-ownership hook; see
    {!Flow.Mcmf.solve}. *)
val solve_only :
  ?solver:solver ->
  ?budget:Flow.Budget.t ->
  ?ctl:Flow.Budget.state ->
  ?scratch:Flow.Mcmf.scratch ->
  ?warm:bool ->
  t ->
  Flow.Mcmf.result

(** [solve_graph ~solver g] is {!solve_only} on an arbitrary graph
    carrying this network's node ids — in practice a private
    {!Flow.Graph.copy} snapshot raced by a portfolio domain. *)
val solve_graph :
  ?solver:solver ->
  ?budget:Flow.Budget.t ->
  ?ctl:Flow.Budget.state ->
  ?scratch:Flow.Mcmf.scratch ->
  ?warm:bool ->
  Flow.Graph.t ->
  Flow.Mcmf.result

(** [extract t ~solver] reads scheduling decisions off the flow
    decomposition of [t]'s graph.  Nodes unknown to the network (e.g.
    cost-scaling's virtual feasibility node) are skipped. *)
val extract : t -> solver:Flow.Mcmf.result -> outcome

(** [extract_on t ~graph ~solver] is {!extract} but decomposes [graph] —
    a snapshot sharing [t]'s node ids (e.g. a portfolio winner's private
    copy) — while reading roles from [t]. *)
val extract_on : t -> graph:Flow.Graph.t -> solver:Flow.Mcmf.result -> outcome

(** Solve the MCMF instance and read scheduling decisions back off the
    flow decomposition: [extract t ~solver:(solve_only ?solver ?budget t)]. *)
val solve_and_extract :
  ?solver:solver ->
  ?budget:Flow.Budget.t ->
  ?scratch:Flow.Mcmf.scratch ->
  ?warm:bool ->
  t ->
  outcome
