(** Binary codecs ({!Prelude.Codec}) for the HIRE request and
    pending-queue types, used by the journal subsystem
    (docs/JOURNAL.md): the WAL's arrival/retry events carry PolyReqs,
    and checkpoints carry the scheduler's pending jobs.

    Every decoder is the exact inverse of its encoder — floats round
    through their IEEE-754 bits — and raises {!Prelude.Codec.Error} on
    malformed input. *)

val enc_vec : Prelude.Codec.Enc.t -> Prelude.Vec.t -> unit
val dec_vec : Prelude.Codec.Dec.t -> Prelude.Vec.t
val enc_flavor : Prelude.Codec.Enc.t -> Flavor.t -> unit
val dec_flavor : Prelude.Codec.Dec.t -> Flavor.t
val enc_shape : Prelude.Codec.Enc.t -> Comp_store.shape -> unit
val dec_shape : Prelude.Codec.Dec.t -> Comp_store.shape
val enc_priority : Prelude.Codec.Enc.t -> Workload.Job.priority -> unit
val dec_priority : Prelude.Codec.Dec.t -> Workload.Job.priority
val enc_task_group : Prelude.Codec.Enc.t -> Poly_req.task_group -> unit
val dec_task_group : Prelude.Codec.Dec.t -> Poly_req.task_group
val enc_poly : Prelude.Codec.Enc.t -> Poly_req.t -> unit
val dec_poly : Prelude.Codec.Dec.t -> Poly_req.t

(** Pending job state: the PolyReq plus flavor decisions and per-group
    remaining/placed-on, rebuilt through {!Pending.of_poly} so decoded
    jobs are indistinguishable from live ones. *)
val enc_job : Prelude.Codec.Enc.t -> Pending.job_state -> unit

val dec_job : Prelude.Codec.Dec.t -> Pending.job_state
