module Fat_tree = Topology.Fat_tree
module Int_tbl = Prelude.Int_tbl

module Task_census = struct
  (* Per task group we keep counts by machine plus rollups by ToR and by
     pod, so [count_under] answers in O(1) for any node of the
     hierarchy.  A machine is tagged (tor, pod) as follows: servers and
     ToRs by their own ToR; aggs by their pod only; cores by neither. *)
  type group_counts = {
    by_machine : int Int_tbl.t;
    by_tor : int Int_tbl.t;
    by_pod : int Int_tbl.t;
    mutable total : int;
  }

  type t = { topo : Fat_tree.t; groups : group_counts Int_tbl.t }

  let create topo = { topo; groups = Int_tbl.create 64 }

  let group t tg_id =
    match Int_tbl.find_opt t.groups tg_id with
    | Some g -> g
    | None ->
        let g =
          {
            by_machine = Int_tbl.create 8;
            by_tor = Int_tbl.create 8;
            by_pod = Int_tbl.create 8;
            total = 0;
          }
        in
        Int_tbl.replace t.groups tg_id g;
        g

  let bump tbl key delta =
    let v = (match Int_tbl.find_opt tbl key with Some v -> v | None -> 0) + delta in
    if v <= 0 then Int_tbl.remove tbl key else Int_tbl.replace tbl key v

  let tags t machine =
    let open Fat_tree in
    match kind t.topo machine with
    | Server -> (Some (tor_of_server t.topo machine), Some (node t.topo machine).pod)
    | Tor -> (Some machine, Some (node t.topo machine).pod)
    | Agg -> (None, Some (node t.topo machine).pod)
    | Core -> (None, None)

  let adjust t ~tg_id ~machine delta =
    let g = group t tg_id in
    bump g.by_machine machine delta;
    let tor, pod = tags t machine in
    (match tor with Some x -> bump g.by_tor x delta | None -> ());
    (match pod with Some p -> bump g.by_pod p delta | None -> ());
    g.total <- g.total + delta;
    if g.total < 0 then invalid_arg "Task_census: negative total"

  let add t ~tg_id ~machine = adjust t ~tg_id ~machine 1
  let remove t ~tg_id ~machine = adjust t ~tg_id ~machine (-1)

  let count_under t ~tg_id ~node =
    match Int_tbl.find_opt t.groups tg_id with
    | None -> 0
    | Some g -> (
        let get tbl key = match Int_tbl.find_opt tbl key with Some v -> v | None -> 0 in
        match Fat_tree.kind t.topo node with
        | Fat_tree.Core -> g.total
        | Fat_tree.Agg -> get g.by_pod (Fat_tree.node t.topo node).pod
        | Fat_tree.Tor -> get g.by_tor node
        | Fat_tree.Server -> get g.by_machine node)

  let total t ~tg_id =
    match Int_tbl.find_opt t.groups tg_id with None -> 0 | Some g -> g.total

  let machines t ~tg_id =
    match Int_tbl.find_opt t.groups tg_id with
    | None -> []
    | Some g ->
        Int_tbl.fold (fun m c acc -> (m, c) :: acc) g.by_machine []
        |> List.sort (fun (m1, c1) (m2, c2) ->
               match Int.compare m1 m2 with 0 -> Int.compare c1 c2 | c -> c)

  let switches t ~tg_id =
    List.filter_map
      (fun (m, _) -> if Fat_tree.is_switch t.topo m then Some m else None)
      (machines t ~tg_id)

  let clear_group t ~tg_id = Int_tbl.remove t.groups tg_id

  (* Checkpoint serialization (docs/JOURNAL.md).  Only the primary
     (machine, count) pairs are written — the ToR/pod rollups and totals
     are re-derived through [adjust] on restore, so a decoded census is
     structurally identical to one built live.  Groups and machines are
     written in sorted order for canonical bytes. *)
  let encode_state t e =
    let module Enc = Prelude.Codec.Enc in
    let group_ids =
      Int_tbl.fold (fun tg_id _ acc -> tg_id :: acc) t.groups [] |> List.sort Int.compare
    in
    Enc.list e
      (fun e tg_id ->
        Enc.int e tg_id;
        Enc.list e
          (fun e (m, c) ->
            Enc.int e m;
            Enc.uint e c)
          (machines t ~tg_id))
      group_ids

  let decode_state t d =
    let module Dec = Prelude.Codec.Dec in
    Int_tbl.reset t.groups;
    let (_ : unit list) =
      Dec.list d (fun d ->
          let tg_id = Dec.int d in
          List.iter
            (fun (machine, c) ->
              for _ = 1 to c do
                add t ~tg_id ~machine
              done)
            (Dec.list d (fun d ->
                 let m = Dec.int d in
                 let c = Dec.uint d in
                 (m, c))))
    in
    ()
end

let upsilon topo census ~tg_ids ~node ~group_size =
  if group_size <= 0 then 1.0
  else begin
    let total_related tg_node =
      List.fold_left
        (fun acc tg_id -> acc + Task_census.count_under census ~tg_id ~node:tg_node)
        0 tg_ids
    in
    let gs = float_of_int group_size in
    (* Recursive Eq. 6: average over children of "related tasks missing
       from that child's subtree". *)
    let rec go n =
      if Fat_tree.is_server topo n then
        Float.min 1.0 (float_of_int (max 0 (group_size - total_related n)) /. gs)
      else begin
        match Fat_tree.children topo n with
        | [] -> 1.0
        | kids ->
            let sum =
              List.fold_left
                (fun acc kid ->
                  acc
                  +.
                  if Fat_tree.is_server topo kid then
                    float_of_int (max 0 (group_size - total_related kid)) /. gs
                  else go kid)
                0.0 kids
            in
            sum /. float_of_int (List.length kids)
      end
    in
    Float.max 0.0 (Float.min 1.0 (go node))
  end

module Gain = struct
  type t = { table : int Int_tbl.t; max_gain : int }

  let inc_loc_prop topo table ~start ~gamma ~xi =
    let visited = Int_tbl.create 32 in
    let visit = ref [ start ] in
    let g = ref gamma in
    while !g > 0 && !visit <> [] do
      let next = ref [] in
      List.iter
        (fun n ->
          if not (Int_tbl.mem visited n) then begin
            Int_tbl.replace visited n ();
            let cur = match Int_tbl.find_opt table n with Some v -> v | None -> 0 in
            Int_tbl.replace table n (cur + !g);
            List.iter
              (fun nb -> if Topology.Fat_tree.is_switch topo nb then next := nb :: !next)
              (Topology.Fat_tree.neighbors topo n)
          end)
        !visit;
      visit := List.filter (fun n -> not (Int_tbl.mem visited n)) !next;
      g := !g / xi
    done

  let compute topo census ~related ~gamma ~xi =
    if xi <= 1 then invalid_arg "Gain.compute: xi must be > 1";
    let table = Int_tbl.create 64 in
    let sources =
      List.concat_map (fun tg_id -> Task_census.switches census ~tg_id) related
      |> List.sort_uniq Int.compare
    in
    List.iter (fun s -> inc_loc_prop topo table ~start:s ~gamma ~xi) sources;
    let max_gain = Int_tbl.fold (fun _ v acc -> max v acc) table 0 in
    { table; max_gain }

  let at t node = match Int_tbl.find_opt t.table node with Some v -> v | None -> 0

  let normalized t node =
    if t.max_gain <= 0 then 0.0 else float_of_int (at t node) /. float_of_int t.max_gain
end
