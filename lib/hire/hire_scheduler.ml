module Clock = Prelude.Clock
module Int_tbl = Prelude.Int_tbl

type resilience = {
  budget : Flow.Budget.t option;
  guard_every : int;
}

let resilience ?budget ?(guard_every = 0) () = { budget; guard_every }

type config = {
  params : Cost_model.params;
  simple_flavor : bool;
  solver : Flow_network.solver;
  resilience : resilience option;
  incremental : bool;
  reopt : bool;
  warm_start : bool;
  portfolio : bool;
  portfolio_eager : bool option;
}

let default_config =
  {
    params = Cost_model.default_params;
    simple_flavor = false;
    solver = Flow_network.Ssp;
    resilience = None;
    incremental = true;
    reopt = true;
    warm_start = false;
    portfolio = false;
    portfolio_eager = None;
  }

(* HIRE_PORTFOLIO=1 forces the portfolio race on every round that runs
   the resilience chain (resilience = Some _); rounds without a policy
   keep the legacy single-solve path so its outputs stay byte-identical.
   Used by the CI matrix leg together with HIRE_CHAOS. *)
let portfolio_env =
  lazy
    (match Sys.getenv_opt "HIRE_PORTFOLIO" with
    | Some ("1" | "true" | "on") -> true
    | _ -> false)

type t = {
  view : View.t;
  config : config;
  jobs : Pending.job_state Int_tbl.t;
  census : Locality.Task_census.t;
  mutable order : int list;  (* job ids, newest first; kept for determinism *)
  mutable solves : int;  (* lifetime solve attempts, drives guard sampling *)
  builder : Flow_network.builder option;  (* persistent network arena *)
  scratch : Flow.Mcmf.scratch option;  (* persistent SSP workspace *)
}

let create ?(config = default_config) view =
  {
    view;
    config;
    jobs = Int_tbl.create 64;
    census = Locality.Task_census.create view.View.topo;
    order = [];
    solves = 0;
    builder =
      (if config.incremental then Some (Flow_network.create_builder ~reopt:config.reopt ())
       else None);
    scratch = (if config.incremental then Some (Flow.Mcmf.scratch ()) else None);
  }

let name t = if t.config.simple_flavor then "hire-simple" else "hire"

let submit t ~time:_ poly =
  let job = Pending.of_poly poly in
  Int_tbl.replace t.jobs poly.Poly_req.job_id job;
  t.order <- poly.Poly_req.job_id :: t.order

let job_list t =
  (* Oldest first. *)
  List.rev t.order |> List.filter_map (Int_tbl.find_opt t.jobs)

let pending_work t =
  Int_tbl.fold (fun _ job acc -> acc || Pending.has_pending_work job) t.jobs false

let pending_jobs t = Int_tbl.length t.jobs

type round_resilience = {
  degraded : bool;
  fallback_depth : int;
  guard_trips : int;
  salvaged : int;
}

type round_outcome = {
  placements : (Poly_req.task_group * int) list;
  cancelled : Poly_req.task_group list;
  fallbacks : int;
  flavor_decisions : (int * bool) list;
  solver : Flow.Mcmf.result option;
  graph_nodes : int;
  graph_arcs : int;
  resilience : round_resilience option;
}

(* In simple-flavor mode a single decision fixes the whole job: every
   remaining undecided composite is resolved to the same kind (INC or
   server) as the first pick.  Returns additionally dropped groups. *)
let propagate_simple job picked_is_inc =
  let rec go acc =
    let next =
      Pending.undecided job
      |> List.find_opt (fun (ts : Pending.tg_state) ->
             Flavor.compatible job.Pending.x_hat ts.tg.Poly_req.flavor
             && Poly_req.is_network ts.tg = picked_is_inc)
    in
    match next with
    | Some ts -> go (acc @ Pending.decide job ts)
    | None ->
        (* Composites without a matching-kind variant fall back to their
           server variant. *)
        let fallback =
          Pending.undecided job
          |> List.find_opt (fun (ts : Pending.tg_state) ->
                 Flavor.compatible job.Pending.x_hat ts.tg.Poly_req.flavor
                 && not (Poly_req.is_network ts.tg))
        in
        (match fallback with Some ts -> go (acc @ Pending.decide job ts) | None -> acc)
  in
  go []

let cleanup t =
  let finished =
    Int_tbl.fold
      (fun id job acc -> if Pending.has_pending_work job then acc else id :: acc)
      t.jobs []
  in
  List.iter (Int_tbl.remove t.jobs) finished;
  if finished <> [] then
    t.order <- List.filter (fun id -> Int_tbl.mem t.jobs id) t.order

(* True while every undecided network group of the job could in
   principle be hosted: for each group there are enough supporting
   switches whose *full* capacity covers the demand.  Transient
   congestion does not count — the alternatives stay open and the flow
   network keeps arbitrating; only capability-infeasible INC requests
   (wrong switch features, demand exceeding any switch) are preempted to
   the server fallback. *)
let inc_still_feasible t (job : Pending.job_state) =
  let sharing = t.view.View.sharing in
  let topo = t.view.View.topo in
  let capacity = Sharing.capacity sharing in
  Pending.undecided job
  |> List.filter (fun ts -> Poly_req.is_network ts.Pending.tg)
  |> List.for_all (fun (ts : Pending.tg_state) ->
         match ts.tg.Poly_req.kind with
         | Poly_req.Server_tg -> true
         | Poly_req.Network_tg n ->
             let demand = Prelude.Vec.add n.Poly_req.per_switch ts.tg.Poly_req.demand in
             let eligible =
               Array.to_list (Sharing.switch_ids sharing)
               |> List.filter (fun s ->
                      let shape_ok =
                        match n.Poly_req.shape with
                        | Comp_store.Single_tor ->
                            Topology.Fat_tree.kind topo s = Topology.Fat_tree.Tor
                        | _ -> true
                      in
                      shape_ok
                      && Sharing.supports sharing ~switch:s ~service:n.Poly_req.service
                      && Prelude.Vec.fits ~demand ~available:capacity)
             in
             (* A group of [remaining] slots needs that many distinct
                switches beyond the ones it already occupies. *)
             List.length (List.filter (fun s -> not (List.mem s ts.placed_on)) eligible)
             >= ts.remaining)

(* Apply the round's flavor picks so the picked groups materialize;
   records decisions and dropped groups. *)
let apply_flavor_picks t ~flavor_picks ~cancelled ~decisions =
  List.iter
    (fun (job_id, tg_id) ->
      match Int_tbl.find_opt t.jobs job_id with
      | None -> ()
      | Some job -> (
          match Pending.find_tg job tg_id with
          | None -> ()
          | Some ts ->
              if Pending.status job ts = Flavor.Undecided then begin
                decisions := (job_id, Poly_req.is_network ts.tg) :: !decisions;
                if Obs.enabled () then
                  Obs.Trace.emit "flavor_decision"
                    [
                      ("job", Obs.Trace.Int job_id);
                      ("inc", Obs.Trace.Bool (Poly_req.is_network ts.tg));
                    ];
                let dropped = Pending.decide job ts in
                cancelled := !cancelled @ List.map (fun d -> d.Pending.tg) dropped;
                if t.config.simple_flavor then begin
                  let dropped' = propagate_simple job (Poly_req.is_network ts.tg) in
                  cancelled := !cancelled @ List.map (fun d -> d.Pending.tg) dropped'
                end
              end))
    flavor_picks

(* Record raw (tg_id, machine) placements against pending state and the
   locality census; returns the applied (task_group, machine) pairs.
   Requeue clones share the original's tg_id under a different job id,
   so the scan runs oldest job first — a fixed submission order, not
   hash-table order, which replayed restores would not reproduce
   (docs/JOURNAL.md). *)
let apply_placements t raw =
  List.filter_map
    (fun (tg_id, machine) ->
      let found =
        List.find_map
          (fun job ->
            match Pending.find_tg job tg_id with
            | Some ts
              when Pending.status job ts = Flavor.Materialized && ts.Pending.remaining > 0
              ->
                Some (job, ts)
            | _ -> None)
          (job_list t)
      in
      match found with
      | None -> None
      | Some (job, ts) ->
          Pending.place job ts ~machine;
          Locality.Task_census.add t.census ~tg_id ~machine;
          Some (ts.Pending.tg, machine))
    raw

(* Lenient resolution of raw placements for the guard's ledger
   cross-check: flavor picks have not been applied yet at guard time, so
   group status is ignored — only groups with work left resolve.  Same
   oldest-job-first scan as [apply_placements]. *)
let resolve_for_guard t raw =
  List.filter_map
    (fun (tg_id, machine) ->
      let found =
        List.find_map
          (fun job ->
            match Pending.find_tg job tg_id with
            | Some ts when ts.Pending.remaining > 0 -> Some ts
            | _ -> None)
          (job_list t)
      in
      Option.map (fun ts -> (ts, machine)) found)
    raw

let other_backend = function
  | Flow_network.Ssp | Flow_network.Ssp_classic -> Flow_network.Cost_scaling
  | Flow_network.Cost_scaling -> Flow_network.Ssp

(* Build the round's network through the persistent builder (when
   incremental mode is on) and publish the patch statistics. *)
let build_network t ~jobs ~time ~params =
  let net = Flow_network.build ?builder:t.builder t.view t.census ~jobs ~now:time ~params in
  if Obs.enabled () then begin
    let st = Flow_network.stats net in
    Obs.Registry.incr
      (Obs.Registry.counter
         (if st.Flow_network.full then "hire.net.full_rebuilds" else "hire.net.patched_builds"));
    Obs.Histogram.observe
      (Obs.Registry.histogram "hire.net.touched_arcs")
      (float_of_int st.Flow_network.touched_arcs);
    Obs.Histogram.observe
      (Obs.Registry.histogram "hire.net.total_arcs")
      (float_of_int st.Flow_network.total_arcs)
  end;
  net

(* Scratch (exact) is reused whenever present; warm potentials are
   opt-in and only meaningful for the SSP backend. *)
let solve_opts t = (t.scratch, if t.config.warm_start then Some true else None)

(* One rung of the fallback chain: rebuild the round's network (a
   previous cost-scaling attempt leaves its virtual feasibility node
   behind, so a solved network is never reused across attempts — the
   persistent builder rewinds it instead of reallocating), solve under
   the budget, optionally corrupt (chaos) and guard the live solution.
   [`Accept] carries the extracted outcome; [`Reject] advances the
   chain. *)
let attempt_backend t ~jobs ~time ~params (r : resilience) ~backend ~trips =
  let net = build_network t ~jobs ~time ~params in
  let size = Flow_network.size net in
  t.solves <- t.solves + 1;
  let scratch, warm = solve_opts t in
  let solver = Flow_network.solve_only ~solver:backend ?budget:r.budget ?scratch ?warm net in
  if solver.Flow.Mcmf.degraded && solver.Flow.Mcmf.shipped = 0 then begin
    (* Nothing salvageable (cost-scaling aborts to the zero flow; SSP
       ran out before the first augmentation): fall through. *)
    if Obs.enabled () then
      Obs.Registry.incr (Obs.Registry.counter "hire.resilience.budget_exhausted");
    `Reject (solver, size)
  end
  else begin
    let guard_due = r.guard_every > 0 && t.solves mod r.guard_every = 0 in
    if not guard_due then `Accept (Flow_network.extract net ~solver, solver, size)
    else begin
      if Obs.enabled () then
        Obs.Registry.incr (Obs.Registry.counter "hire.resilience.guard_checks");
      (* Chaos sits between the solver and the guard: a seeded bit-flip
         on the live flow that the guard must catch. *)
      if Flow.Chaos.enabled () then
        ignore (Flow.Chaos.corrupt_solution (Flow_network.graph net));
      let verdict =
        match Guard.check_flow (Flow_network.graph net) with
        | Error v -> Error v
        | Ok () ->
            (* Only a flow-valid graph is decomposed: extraction walks
               the flow, which a corrupted graph could send astray. *)
            let outcome = Flow_network.extract net ~solver in
            let resolved = resolve_for_guard t outcome.Flow_network.placements in
            Result.map (fun () -> outcome)
              (Guard.check_placements t.view ~params ~placements:resolved)
      in
      match verdict with
      | Ok outcome -> `Accept (outcome, solver, size)
      | Error v ->
          incr trips;
          let msg = Format.asprintf "%a" Guard.pp_violation v in
          Printf.eprintf
            "hire: invariant guard trip on %s (solve #%d): %s — quarantining solution\n%!"
            (Flow_network.solver_name backend)
            t.solves msg;
          if Obs.enabled () then begin
            Obs.Registry.incr (Obs.Registry.counter "hire.resilience.guard_trips");
            Obs.Trace.emit "guard_trip"
              [
                ("solver", Obs.Trace.Str (Flow_network.solver_name backend));
                ("violation", Obs.Trace.Str msg);
              ]
          end;
          `Reject (solver, size)
    end
  end

(* Decide-side replay of [attempt_backend] for one raced entry
   (docs/PARALLELISM.md).  The worker domain already solved its private
   snapshot with no chaos draws and no obs emissions, so the coordinator
   replays the serial rung procedure here — the solve counter, the
   chaos draws on the backend's named streams, the degraded-and-empty
   rejection, guard sampling, corruption and the guard itself — against
   the entry's own graph.  Called from [Portfolio.race]'s [decide], i.e.
   with obs quiesced: every obs emission is pushed onto [deferred] (in
   serial program order) and run by the caller once obs is back. *)
let attempt_entry t ~params (r : resilience) ~trips ~deferred ~net
    (e : Flow.Portfolio.entry) =
  let push f = deferred := f :: !deferred in
  match e.Flow.Portfolio.result with
  | None -> `Skip (* worker raised; [race] re-raises after the joins *)
  | Some result ->
      t.solves <- t.solves + 1;
      (* Chaos replay: the serial solve draws from its backend's named
         stream only when a budget is present.  The forced-exhaustion
         emulation is exact for both backends (zero flow, nothing
         shipped); the wall-delay draw is consumed for stream parity but
         not retroactively applied — see docs/PARALLELISM.md. *)
      let forced =
        r.budget <> None
        && Flow.Chaos.enabled ()
        &&
        let f, _delay = Flow.Chaos.draw_solve ~backend:e.Flow.Portfolio.name in
        f
      in
      let solver =
        if not forced then result
        else begin
          Flow.Graph.reset_flows e.graph;
          {
            result with
            Flow.Mcmf.shipped = 0;
            unshipped = Flow.Graph.total_positive_supply e.graph;
            total_cost = 0;
            augmentations = 0;
            degraded = true;
            profile =
              {
                (Obs.Solver_profile.zero ~solver:e.Flow.Portfolio.name) with
                Obs.Solver_profile.nodes = result.Flow.Mcmf.profile.Obs.Solver_profile.nodes;
                arcs = result.Flow.Mcmf.profile.Obs.Solver_profile.arcs;
              };
          }
        end
      in
      (* Re-emit what the quiesced solve would have emitted itself. *)
      push (fun () ->
          let p = solver.Flow.Mcmf.profile in
          if p.Obs.Solver_profile.scratch_reused then
            Obs.Registry.incr (Obs.Registry.counter "flow.scratch_reuse");
          if t.config.warm_start && e.Flow.Portfolio.name = "ssp" then
            Obs.Registry.incr
              (Obs.Registry.counter
                 (if p.Obs.Solver_profile.warm_start then "flow.warm_hit" else "flow.warm_miss"));
          if solver.Flow.Mcmf.degraded then begin
            let reason =
              if forced then Flow.Budget.Chaos
              else
                match Option.bind e.Flow.Portfolio.ctl Flow.Budget.check with
                | Some reason -> reason
                | None -> Flow.Budget.Chaos (* unreachable: degraded implies a verdict *)
            in
            Obs.Registry.incr (Obs.Registry.counter "flow.budget_exhausted");
            Obs.Trace.emit "solver_degraded"
              [
                ("solver", Obs.Trace.Str e.Flow.Portfolio.name);
                ("reason", Obs.Trace.Str (Format.asprintf "%a" Flow.Budget.pp_reason reason));
                ("shipped", Obs.Trace.Int solver.Flow.Mcmf.shipped);
              ]
          end;
          Obs.Solver_profile.emit p);
      if solver.Flow.Mcmf.degraded && solver.Flow.Mcmf.shipped = 0 then begin
        push (fun () ->
            Obs.Registry.incr (Obs.Registry.counter "hire.resilience.budget_exhausted"));
        `Reject solver
      end
      else begin
        let guard_due = r.guard_every > 0 && t.solves mod r.guard_every = 0 in
        if not guard_due then `Accept (Flow_network.extract_on net ~graph:e.graph ~solver, solver)
        else begin
          push (fun () ->
              Obs.Registry.incr (Obs.Registry.counter "hire.resilience.guard_checks"));
          if Flow.Chaos.enabled () then
            ignore (Flow.Chaos.corrupt_solution e.Flow.Portfolio.graph);
          let verdict =
            match Guard.check_flow e.Flow.Portfolio.graph with
            | Error v -> Error v
            | Ok () ->
                let outcome = Flow_network.extract_on net ~graph:e.graph ~solver in
                let resolved = resolve_for_guard t outcome.Flow_network.placements in
                Result.map (fun () -> outcome)
                  (Guard.check_placements t.view ~params ~placements:resolved)
          in
          match verdict with
          | Ok outcome -> `Accept (outcome, solver)
          | Error v ->
              incr trips;
              let msg = Format.asprintf "%a" Guard.pp_violation v in
              let solve_no = t.solves in
              Printf.eprintf
                "hire: invariant guard trip on %s (solve #%d): %s — quarantining solution\n%!"
                e.Flow.Portfolio.name solve_no msg;
              push (fun () ->
                  Obs.Registry.incr (Obs.Registry.counter "hire.resilience.guard_trips");
                  Obs.Trace.emit "guard_trip"
                    [
                      ("solver", Obs.Trace.Str e.Flow.Portfolio.name);
                      ("violation", Obs.Trace.Str msg);
                    ]);
              `Reject solver
        end
      end

(* Portfolio variant of the fallback chain: build the round's network
   once, race both backends on private snapshots (Flow.Portfolio), and
   let the deterministic-priority [decide] replay the serial accept /
   reject procedure — so the returned value has exactly the shape and
   content of the serial [chain], only faster.  The greedy terminal rung
   stays on the caller's side. *)
let portfolio_chain t ~jobs ~time ~params (r : resilience) ~trips =
  let net = build_network t ~jobs ~time ~params in
  let size = Flow_network.size net in
  let budget = Option.value r.budget ~default:Flow.Budget.unlimited in
  let scratch, warm = solve_opts t in
  let job_of backend =
    {
      Flow.Portfolio.name = Flow_network.solver_name backend;
      run =
        (fun ~ctl g ->
          (* The persistent SSP scratch stays domain-local: it is
             captured only by the (single) SSP job and migrates to that
             job's domain for the duration of the solve. *)
          match backend with
          | Flow_network.Ssp | Flow_network.Ssp_classic ->
              Flow_network.solve_graph ~solver:backend ~ctl ?scratch ?warm g
          | Flow_network.Cost_scaling -> Flow_network.solve_graph ~solver:backend ~ctl g);
    }
  in
  let racers = List.map job_of [ t.config.solver; other_backend t.config.solver ] in
  let deferred = ref [] in
  let accepted = ref None in
  let last = ref None in
  let depth = ref 0 in
  let decide _i entry =
    match attempt_entry t ~params r ~trips ~deferred ~net entry with
    | `Accept (outcome, solver) ->
        accepted := Some (outcome, solver);
        true
    | `Reject solver ->
        last := Some (solver, size);
        incr depth;
        false
    | `Skip -> false
  in
  ignore
    (Flow.Portfolio.race ?eager:t.config.portfolio_eager ~budget
       ~source:(Flow_network.graph net) ~decide racers);
  if Obs.enabled () then List.iter (fun f -> f ()) (List.rev !deferred);
  match !accepted with
  | Some (outcome, solver) -> (`Flow (outcome, solver, size), !depth)
  | None -> (`Greedy !last, !depth)

(* Total tasks the greedy rung could in principle still place — the
   denominator of its salvage ratio. *)
let total_materialized_remaining jobs =
  List.fold_left
    (fun acc job ->
      List.fold_left
        (fun acc (ts : Pending.tg_state) -> acc + ts.Pending.remaining)
        acc (Pending.materialized job))
    0 jobs

let run_round t ~time =
  let round_t0 = if Obs.enabled () then Clock.now () else 0.0 in
  if Obs.enabled () then begin
    Obs.Trace.emit "round_start"
      [
        ("sched", Obs.Trace.Str (name t));
        ("time", Obs.Trace.Float time);
        ("pending_jobs", Obs.Trace.Int (pending_jobs t));
      ];
    Obs.Registry.incr (Obs.Registry.counter "hire.rounds")
  end;
  let params = t.config.params in
  let cancelled = ref [] in
  let fallbacks = ref 0 in
  (* Flavor timeout (Φpref upper bound): preempt the flavor decision "in
     case of congested resources" — jobs whose INC parts have become
     unsatisfiable fall back to the server variant after waiting out the
     upper bound. *)
  List.iter
    (fun (job : Pending.job_state) ->
      if
        (not job.inc_flavor_locked)
        && Pending.flavor_open job
        && time -. job.poly.Poly_req.arrival >= params.pref_upper
        && not (inc_still_feasible t job)
      then begin
        let dropped = Pending.force_server_fallback job in
        incr fallbacks;
        cancelled := !cancelled @ List.map (fun ts -> ts.Pending.tg) dropped
      end)
    (job_list t);
  let emit_round_end (o : round_outcome) =
    if Obs.enabled () then begin
      let round_s = Clock.now () -. round_t0 in
      Obs.Trace.emit "round_end"
        [
          ("placements", Obs.Trace.Int (List.length o.placements));
          ("cancelled", Obs.Trace.Int (List.length o.cancelled));
          ("fallbacks", Obs.Trace.Int o.fallbacks);
          ("flavor_decisions", Obs.Trace.Int (List.length o.flavor_decisions));
          ("round_s", Obs.Trace.Float round_s);
        ];
      Obs.Registry.incr ~by:(List.length o.placements) (Obs.Registry.counter "hire.placements");
      Obs.Registry.incr ~by:(List.length o.cancelled) (Obs.Registry.counter "hire.cancelled");
      Obs.Registry.incr ~by:o.fallbacks (Obs.Registry.counter "hire.fallbacks");
      Obs.Registry.incr
        ~by:(List.length o.flavor_decisions)
        (Obs.Registry.counter "hire.flavor_decisions");
      Obs.Histogram.observe (Obs.Registry.histogram "hire.round_s") round_s
    end;
    o
  in
  let empty_resilience =
    Option.map
      (fun _ -> { degraded = false; fallback_depth = 0; guard_trips = 0; salvaged = 0 })
      t.config.resilience
  in
  let jobs = job_list t in
  if not (List.exists Pending.has_pending_work jobs) then begin
    cleanup t;
    emit_round_end
      {
        placements = [];
        cancelled = !cancelled;
        fallbacks = !fallbacks;
        flavor_decisions = [];
        solver = None;
        graph_nodes = 0;
        graph_arcs = 0;
        resilience = empty_resilience;
      }
  end
  else begin
    match t.config.resilience with
    | None ->
        (* Legacy path: one unbounded solve, no guard. *)
        let net = build_network t ~jobs ~time ~params in
        let nodes, arcs = Flow_network.size net in
        if Obs.enabled () then begin
          let build_s = Clock.now () -. round_t0 in
          Obs.Trace.emit "network_built"
            [
              ("nodes", Obs.Trace.Int nodes);
              ("arcs", Obs.Trace.Int arcs);
              ("build_s", Obs.Trace.Float build_s);
            ];
          Obs.Histogram.observe (Obs.Registry.histogram "hire.build_s") build_s
        end;
        let scratch, warm = solve_opts t in
        let outcome = Flow_network.solve_and_extract ~solver:t.config.solver ?scratch ?warm net in
        let decisions = ref [] in
        apply_flavor_picks t ~flavor_picks:outcome.Flow_network.flavor_picks ~cancelled
          ~decisions;
        let placements = apply_placements t outcome.Flow_network.placements in
        cleanup t;
        emit_round_end
          {
            placements;
            cancelled = !cancelled;
            fallbacks = !fallbacks;
            flavor_decisions = List.rev !decisions;
            solver = Some outcome.Flow_network.solver;
            graph_nodes = nodes;
            graph_arcs = arcs;
            resilience = None;
          }
    | Some r ->
        let trips = ref 0 in
        let backends = [ t.config.solver; other_backend t.config.solver ] in
        let rec chain depth last = function
          | [] -> (`Greedy last, depth)
          | backend :: rest -> (
              match attempt_backend t ~jobs ~time ~params r ~backend ~trips with
              | `Accept (outcome, solver, size) -> (`Flow (outcome, solver, size), depth)
              | `Reject (solver, size) -> chain (depth + 1) (Some (solver, size)) rest)
        in
        let result, depth =
          if t.config.portfolio || Lazy.force portfolio_env then
            portfolio_chain t ~jobs ~time ~params r ~trips
          else chain 0 None backends
        in
        let flavor_picks, raw_placements, solver_res, (nodes, arcs), used_greedy =
          match result with
          | `Flow (outcome, solver, size) ->
              ( outcome.Flow_network.flavor_picks,
                outcome.Flow_network.placements,
                Some solver,
                size,
                false )
          | `Greedy last ->
              (* Terminal rung: every solver attempt was exhausted or
                 quarantined.  [last] reports the final failed solve so
                 callers still see its wall time and stats. *)
              let raw = Greedy.place t.view ~jobs ~params in
              let solver, size =
                match last with Some (s, sz) -> (Some s, sz) | None -> (None, (0, 0))
              in
              ([], raw, solver, size, true)
        in
        let greedy_pool = if used_greedy then total_materialized_remaining jobs else 0 in
        let decisions = ref [] in
        apply_flavor_picks t ~flavor_picks ~cancelled ~decisions;
        let placements = apply_placements t raw_placements in
        let degraded =
          used_greedy
          || match solver_res with Some s -> s.Flow.Mcmf.degraded | None -> false
        in
        let salvaged = if degraded then List.length placements else 0 in
        if Obs.enabled () then begin
          if degraded then
            Obs.Registry.incr (Obs.Registry.counter "hire.resilience.degraded_rounds");
          if depth > 0 then
            Obs.Registry.incr (Obs.Registry.counter "hire.resilience.fallback_rounds");
          if used_greedy then
            Obs.Registry.incr (Obs.Registry.counter "hire.resilience.greedy_rounds");
          Obs.Histogram.observe
            (Obs.Registry.histogram "hire.resilience.fallback_depth")
            (float_of_int depth);
          if degraded then begin
            let ratio =
              if used_greedy then
                float_of_int (List.length placements)
                /. float_of_int (max 1 greedy_pool)
              else
                match solver_res with
                | Some s ->
                    let total = s.Flow.Mcmf.shipped + s.Flow.Mcmf.unshipped in
                    float_of_int s.Flow.Mcmf.shipped /. float_of_int (max 1 total)
                | None -> 0.0
            in
            Obs.Histogram.observe
              (Obs.Registry.histogram "hire.resilience.salvage_ratio")
              ratio
          end
        end;
        cleanup t;
        emit_round_end
          {
            placements;
            cancelled = !cancelled;
            fallbacks = !fallbacks;
            flavor_decisions = List.rev !decisions;
            solver = solver_res;
            graph_nodes = nodes;
            graph_arcs = arcs;
            resilience =
              Some { degraded; fallback_depth = depth; guard_trips = !trips; salvaged };
          }
  end

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (journal checkpoints, docs/JOURNAL.md)           *)
(* ------------------------------------------------------------------ *)

(* The scheduling state proper is the pending queue (in submission
   order), the lifetime solve counter (it phases the guard sampling) and
   the locality census.  The flow-network builder and solver scratch are
   caches: a restored scheduler starts them empty and the first round
   rebuilds from scratch, which is bit-identical to the incremental
   path.  The census is serialized rather than re-derived because it
   mirrors tasks *running* in the cluster, which the pending queue no
   longer knows about. *)
let snapshot t =
  let module Enc = Prelude.Codec.Enc in
  let e = Enc.create () in
  Enc.list e Persist.enc_job (job_list t);
  Enc.uint e t.solves;
  Locality.Task_census.encode_state t.census e;
  Enc.to_string e

let restore t blob =
  let module Dec = Prelude.Codec.Dec in
  let d = Dec.of_string blob in
  let jobs = Dec.list d Persist.dec_job in
  Int_tbl.reset t.jobs;
  t.order <- [];
  List.iter
    (fun (job : Pending.job_state) ->
      let id = job.Pending.poly.Poly_req.job_id in
      Int_tbl.replace t.jobs id job;
      t.order <- id :: t.order)
    jobs;
  t.solves <- Dec.uint d;
  Locality.Task_census.decode_state t.census d;
  if not (Dec.at_end d) then
    raise (Prelude.Codec.Error "Hire_scheduler.restore: trailing bytes in snapshot")

let on_task_complete t ~tg_id ~machine =
  Locality.Task_census.remove t.census ~tg_id ~machine

let drop_task_group t ~tg_id =
  (* Requeue clones share the original's tg_id under a different job id,
     so every tracked job is scanned. *)
  Int_tbl.iter
    (fun _ job ->
      match Pending.find_tg job tg_id with
      | Some ts -> ts.Pending.remaining <- 0
      | None -> ())
    t.jobs

let census t = t.census
