(** A scheduler's read view of cluster state: the topology, the server
    ledger (capacity and per-server remaining resources), and the switch
    ledger with sharing state.  The simulator provides a concrete
    instance; keeping it abstract here lets the HIRE core stay
    independent of the simulation engine. *)

type t = {
  topo : Topology.Fat_tree.t;
  server_capacity : Prelude.Vec.t;
  server_available : int -> Prelude.Vec.t;  (** by server node id *)
  sharing : Sharing.t;
  alive : int -> bool;
      (** node liveness under fault injection; dead servers must receive
          no flow-network arcs (switch liveness is already masked inside
          {!Sharing.supports}) *)
  dirty : Dirty.t option;
      (** which nodes' ledgers changed since the last network build;
          [None] means the owner does not track dirt and incremental
          builders must conservatively rebuild everything *)
}

(** Per-dimension used fraction of one server. *)
val server_utilization : t -> int -> Prelude.Vec.t
