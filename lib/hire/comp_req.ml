type server_spec = { instances : int; cpu : float; mem : float; duration : float }

type composite = {
  comp_id : string;
  template : string;
  base : server_spec;
  inc_alternatives : string list;
}

type t = {
  priority : Workload.Job.priority;
  composites : composite list;
  connections : (string * string) list;
}

let composite t id = List.find_opt (fun c -> c.comp_id = id) t.composites

let wants_inc t = List.exists (fun c -> c.inc_alternatives <> []) t.composites

let validate store t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    let ids = List.map (fun c -> c.comp_id) t.composites in
    if List.length (List.sort_uniq String.compare ids) <> List.length ids then
      Error "duplicate composite ids"
    else Ok ()
  in
  let* () = if t.composites = [] then Error "empty CompReq" else Ok () in
  let check_composite c =
    match Comp_store.find_template store c.template with
    | None -> Error (Printf.sprintf "unknown template %S" c.template)
    | Some tpl ->
        let* () =
          if c.base.instances <= 0 || c.base.cpu <= 0.0 || c.base.mem <= 0.0
             || c.base.duration <= 0.0
          then Error (Printf.sprintf "composite %S: non-positive server spec" c.comp_id)
          else Ok ()
        in
        List.fold_left
          (fun acc svc ->
            let* () = acc in
            if Comp_store.find_service store svc = None then
              Error (Printf.sprintf "composite %S: unknown INC service %S" c.comp_id svc)
            else if not (List.mem svc tpl.Comp_store.inc_impls) then
              Error
                (Printf.sprintf "composite %S: service %S not an implementation of template %S"
                   c.comp_id svc c.template)
            else Ok ())
          (Ok ()) c.inc_alternatives
  in
  let* () = List.fold_left (fun acc c -> Result.bind acc (fun () -> check_composite c)) (Ok ()) t.composites in
  List.fold_left
    (fun acc (a, b) ->
      let* () = acc in
      if composite t a = None then Error (Printf.sprintf "connection references unknown composite %S" a)
      else if composite t b = None then
        Error (Printf.sprintf "connection references unknown composite %S" b)
      else if a = b then Error "self-connection"
      else Ok ())
    (Ok ()) t.connections

let of_job (job : Workload.Job.t) =
  let composites =
    List.map
      (fun (g : Workload.Job.task_group) ->
        {
          comp_id = Printf.sprintf "c%d" g.tg_index;
          template = "server";
          base = { instances = g.count; cpu = g.cpu; mem = g.mem; duration = g.duration };
          inc_alternatives = [];
        })
      job.groups
  in
  let connections =
    (* Chain the composites: group i talks to group i+1. *)
    let rec chain = function
      | a :: (b :: _ as rest) -> (a.comp_id, b.comp_id) :: chain rest
      | _ -> []
    in
    chain composites
  in
  { priority = job.priority; composites; connections }

let with_inc_alternative t ~comp_id ~service =
  {
    t with
    composites =
      List.map
        (fun c ->
          if c.comp_id = comp_id && not (List.mem service c.inc_alternatives) then
            { c with inc_alternatives = c.inc_alternatives @ [ service ] }
          else c)
        t.composites;
  }

let pp fmt t =
  Format.fprintf fmt "CompReq (%a): " Workload.Job.pp_priority t.priority;
  List.iter
    (fun c ->
      Format.fprintf fmt "%s[%s x%d%s] " c.comp_id c.template c.base.instances
        (match c.inc_alternatives with
        | [] -> ""
        | alts -> " | " ^ String.concat "/" alts))
    t.composites
