(** The HIRE scheduler (§5): drives one flow-network round per
    invocation, tracks pending PolyReqs, applies flavor decisions, and
    reports placements for the cluster to execute.

    The scheduler owns only scheduling state (pending jobs, active
    flavors, the task census feeding the locality cost terms); resource
    ledgers are owned by the caller and read through {!View.t}. *)

(** Solver-resilience policy (docs/RESILIENCE.md).  With a policy
    installed, each round runs a fallback chain instead of a single
    solve: the configured MCMF backend under [budget], then the other
    backend under the same budget, then the {!Greedy} best-effort
    placer — so a round always terminates with whatever progress was
    affordable.  [guard_every] = n > 0 additionally runs the
    {!Guard} invariant checks on every n-th solve's live solution
    before it is applied; a violation quarantines the solution and the
    chain advances to the next backend. *)
type resilience = {
  budget : Flow.Budget.t option;  (** per-solve-attempt budget; [None] = unbounded *)
  guard_every : int;  (** check every n-th solve; [<= 0] disables the guard *)
}

val resilience : ?budget:Flow.Budget.t -> ?guard_every:int -> unit -> resilience

type config = {
  params : Cost_model.params;
  simple_flavor : bool;
      (** the paper's ablation (§6.3): decide once per job whether the
          whole PolyReq runs with INC or without *)
  solver : Flow_network.solver;  (** MCMF algorithm for the rounds *)
  resilience : resilience option;
      (** [None] (the default) preserves the exact legacy behaviour:
          one unbounded solve per round, no guard *)
  incremental : bool;
      (** [true] (the default) keeps a persistent {!Flow_network.builder}
          and SSP scratch workspace across rounds: the topology part of
          the network is patched from the cluster's dirty set instead of
          rebuilt, and solver buffers are reused.  Placements and
          objective values are bit-identical either way; [false] is the
          escape hatch that rebuilds everything from scratch each round. *)
  reopt : bool;
      (** [true] (the default) turns on the re-optimizing solve path:
          the persistent builder's graph tracks which arc pairs each
          solve moves flow on, and the next round's patch undoes only
          those ({!Flow_network.create_builder}).  Requires
          [incremental]; ignored without it.  The sparse reset is
          bit-identical to the full sweep, so placements never depend on
          this flag — [false] ([--no-reopt]) exists to measure the
          optimization, not to change behaviour. *)
  warm_start : bool;
      (** carry SSP node potentials across rounds when still valid.
          Off by default: warm starts preserve objective values but may
          change tie-breaks between equally-cheap placements. *)
  portfolio : bool;
      (** race both MCMF backends on OCaml 5 domains instead of trying
          them sequentially (docs/PARALLELISM.md).  Only effective with
          a [resilience] policy installed (the race reuses the chain's
          accept/reject procedure); placements, ledgers, and resilience
          reports are identical to the serial chain's — only latency
          changes.  Also forced on resilient rounds by [HIRE_PORTFOLIO=1]
          in the environment.  Off by default. *)
  portfolio_eager : bool option;
      (** override {!Flow.Portfolio.race}'s spawn policy ([None] = let
          the host's core count decide); tests force eager fan-out. *)
}

val default_config : config

type t

val create : ?config:config -> View.t -> t
val name : t -> string

(** Register a new PolyReq at [time]. *)
val submit : t -> time:float -> Poly_req.t -> unit

(** Some submitted task group still has tasks to place. *)
val pending_work : t -> bool

(** Number of jobs currently tracked. *)
val pending_jobs : t -> int

(** Per-round resilience report, present iff a policy is installed. *)
type round_resilience = {
  degraded : bool;
      (** the applied result came from a budget-truncated solve or from
          the greedy placer *)
  fallback_depth : int;
      (** chain rungs abandoned before one was applied: 0 = primary
          backend, 1 = secondary, 2 = greedy *)
  guard_trips : int;  (** solutions quarantined by the guard this round *)
  salvaged : int;
      (** tasks placed by a degraded rung — progress that a fail-stop
          scheduler would have discarded *)
}

type round_outcome = {
  placements : (Poly_req.task_group * int) list;
      (** one task of the group on the machine — the caller must charge
          its ledgers accordingly *)
  cancelled : Poly_req.task_group list;
      (** groups dropped by flavor decisions this round *)
  fallbacks : int;  (** jobs whose flavor timed out to the server variant *)
  flavor_decisions : (int * bool) list;
      (** (job_id, decided variant contains INC) flavor picks this round *)
  solver : Flow.Mcmf.result option;  (** [None] when there was nothing to do *)
  graph_nodes : int;
  graph_arcs : int;
  resilience : round_resilience option;
}

(** Execute one scheduling round at simulation time [time]. *)
val run_round : t -> time:float -> round_outcome

(** Notify that a task of [tg_id] finished on [machine] (updates the
    locality census). *)
val on_task_complete : t -> tg_id:int -> machine:int -> unit

(** Fault path: the simulator cancelled [tg_id] after exhausting its
    retry budget — zero its remaining count everywhere so no further
    placements are attempted. *)
val drop_task_group : t -> tg_id:int -> unit

(** The census (exposed for tests). *)
val census : t -> Locality.Task_census.t

(** Journal-checkpoint serialization (docs/JOURNAL.md): the pending
    queue in submission order, the solve counter, and the locality
    census — everything needed so a freshly created scheduler behaves
    identically after [restore].  The flow-network builder and solver
    scratch are caches and deliberately excluded; the first
    post-restore round rebuilds them (bit-identical results either
    way).  [restore] raises {!Prelude.Codec.Error} on malformed
    blobs. *)
val snapshot : t -> string

val restore : t -> string -> unit
