module Heap = Prelude.Heap
module Clock = Prelude.Clock

type result = {
  shipped : int;
  unshipped : int;
  total_cost : int;
  augmentations : int;
  elapsed_s : float;
  degraded : bool;
  profile : Obs.Solver_profile.t;
}

let infinity_dist = max_int / 4

(* SPFA (queue-based Bellman–Ford) from every positive-excess node; used
   only to bootstrap potentials when negative arc costs are present. *)
let spfa g excess =
  let n = Graph.node_count g in
  let dist = Array.make n infinity_dist in
  let in_queue = Array.make n false in
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if excess.(v) > 0 then begin
      dist.(v) <- 0;
      Queue.push v q;
      in_queue.(v) <- true
    end
  done;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    in_queue.(v) <- false;
    Graph.iter_out g v (fun a ->
        if Graph.residual_cap g a > 0 then begin
          let u = Graph.dst g a in
          let nd = dist.(v) + Graph.cost g a in
          if nd < dist.(u) then begin
            dist.(u) <- nd;
            if not in_queue.(u) then begin
              Queue.push u q;
              in_queue.(u) <- true
            end
          end
        end);
  done;
  dist

(* Multi-source Dijkstra on reduced costs.  Returns (dist, parent_arc);
   parent_arc.(v) is the residual arc used to reach v, or -1. *)
let dijkstra g excess pot dist parent =
  let n = Graph.node_count g in
  Array.fill dist 0 n infinity_dist;
  Array.fill parent 0 n (-1);
  let heap = Heap.create ~cmp:(fun (d1, _) (d2, _) -> compare (d1 : int) d2) in
  for v = 0 to n - 1 do
    if excess.(v) > 0 then begin
      dist.(v) <- 0;
      Heap.push heap (0, v)
    end
  done;
  while not (Heap.is_empty heap) do
    let d, v = Heap.pop heap in
    if d = dist.(v) then
      Graph.iter_out g v (fun a ->
          if Graph.residual_cap g a > 0 then begin
            let u = Graph.dst g a in
            let rc = Graph.cost g a + pot.(v) - pot.(u) in
            (* Reduced costs are non-negative once potentials are valid;
               clamp tiny negatives caused by unreachable-node potential
               staleness. *)
            let rc = if rc < 0 then 0 else rc in
            let nd = d + rc in
            if nd < dist.(u) then begin
              dist.(u) <- nd;
              parent.(u) <- a;
              Heap.push heap (nd, u)
            end
          end)
  done

let solve ?budget g =
  let t0 = Clock.now () in
  let bstate = Option.map Budget.start budget in
  (* Chaos only ever perturbs budgeted solves: an unbudgeted caller has
     no degraded path to absorb it. *)
  (match bstate with
  | Some st when Chaos.enabled () ->
      if Chaos.draw_forced_exhaustion () then Budget.force_exhaustion st;
      let d = Chaos.draw_delay_s () in
      if d > 0.0 then Budget.inject_delay st d
  | _ -> ());
  let instrument = Obs.enabled () in
  let t_spfa = ref 0.0 and t_dijkstra = ref 0.0 and t_augment = ref 0.0 in
  let staged acc f =
    if instrument then begin
      let s0 = Clock.now () in
      let r = f () in
      acc := !acc +. (Clock.now () -. s0);
      r
    end
    else f ()
  in
  let n = Graph.node_count g in
  let excess = Array.init n (Graph.supply g) in
  let pot = Array.make n 0 in
  (* Bootstrap potentials if any arc cost is negative. *)
  let has_negative = ref false in
  Graph.iter_arcs g (fun a -> if Graph.cost g a < 0 then has_negative := true);
  if !has_negative then begin
    let dist = staged t_spfa (fun () -> spfa g excess) in
    for v = 0 to n - 1 do
      if dist.(v) < infinity_dist then pot.(v) <- dist.(v)
    done
  end;
  let dist = Array.make n infinity_dist in
  let parent = Array.make n (-1) in
  let shipped = ref 0 in
  let augmentations = ref 0 in
  let remaining_supply () =
    let acc = ref 0 in
    for v = 0 to n - 1 do
      if excess.(v) > 0 then acc := !acc + excess.(v)
    done;
    !acc
  in
  let exhausted = ref None in
  let within_budget () =
    match bstate with
    | None -> true
    | Some st -> (
        match Budget.check st with
        | None -> true
        | Some reason ->
            exhausted := Some reason;
            false)
  in
  let continue_ = ref (remaining_supply () > 0) in
  while !continue_ do
    (* Budget checked at augmentation boundaries: an SSP prefix is a
       valid min-cost flow for its value, so stopping here leaves a
       salvageable partial solution on the graph. *)
    if not (within_budget ()) then continue_ := false
    else begin
      staged t_dijkstra (fun () -> dijkstra g excess pot dist parent);
      (* Nearest reachable deficit node. *)
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if excess.(v) < 0 && dist.(v) < infinity_dist then
          if !best < 0 || dist.(v) < dist.(!best) then best := v
      done;
      match !best with
      | -1 -> continue_ := false
      | target ->
          staged t_augment (fun () ->
              (* Bottleneck along the path back to whichever source started it. *)
              let bottleneck = ref (-excess.(target)) in
              let v = ref target in
              while parent.(!v) >= 0 do
                let a = parent.(!v) in
                if Graph.residual_cap g a < !bottleneck then bottleneck := Graph.residual_cap g a;
                v := Graph.src g a
              done;
              let source = !v in
              if excess.(source) < !bottleneck then bottleneck := excess.(source);
              let amount = !bottleneck in
              let v = ref target in
              while parent.(!v) >= 0 do
                let a = parent.(!v) in
                Graph.push g a amount;
                v := Graph.src g a
              done;
              excess.(source) <- excess.(source) - amount;
              excess.(target) <- excess.(target) + amount;
              shipped := !shipped + amount;
              incr augmentations;
              (match bstate with Some st -> Budget.spend st 1 | None -> ());
              (* Johnson potential update keeps reduced costs non-negative. *)
              for u = 0 to n - 1 do
                if dist.(u) < infinity_dist then pot.(u) <- pot.(u) + dist.(u)
              done;
              if remaining_supply () = 0 then continue_ := false)
    end
  done;
  let degraded = !exhausted <> None in
  if degraded && Obs.enabled () then begin
    Obs.Registry.incr (Obs.Registry.counter "flow.budget_exhausted");
    Obs.Trace.emit "solver_degraded"
      [
        ("solver", Obs.Trace.Str "ssp");
        ( "reason",
          Obs.Trace.Str (Format.asprintf "%a" Budget.pp_reason (Option.get !exhausted)) );
        ("shipped", Obs.Trace.Int !shipped);
      ]
  end;
  let elapsed_s = Clock.now () -. t0 in
  let profile =
    {
      (Obs.Solver_profile.zero ~solver:"ssp") with
      nodes = n;
      arcs = Graph.arc_count g;
      augmentations = !augmentations;
      stages =
        (if instrument then
           [ ("spfa", !t_spfa); ("dijkstra", !t_dijkstra); ("augment", !t_augment) ]
         else []);
      wall_s = elapsed_s;
    }
  in
  if instrument then Obs.Solver_profile.emit profile;
  {
    shipped = !shipped;
    unshipped = remaining_supply ();
    total_cost = Graph.flow_cost g;
    augmentations = !augmentations;
    elapsed_s;
    degraded;
    profile;
  }

type path = { nodes : int list; amount : int }

let decompose g =
  let n = Graph.node_count g in
  (* Remaining flow per forward arc, consumed as paths are peeled off. *)
  let rem = Hashtbl.create 256 in
  Graph.iter_arcs g (fun a ->
      let f = Graph.flow g a in
      if f > 0 then Hashtbl.replace rem a f);
  let rem_supply = Array.init n (fun v -> max 0 (Graph.supply g v)) in
  let rem_demand = Array.init n (fun v -> max 0 (-Graph.supply g v)) in
  let out_with_flow v =
    Graph.fold_out g v None (fun acc a ->
        match acc with
        | Some _ -> acc
        | None ->
            if Graph.is_forward a && Hashtbl.mem rem a && Hashtbl.find rem a > 0 then Some a
            else None)
  in
  let paths = ref [] in
  for source = 0 to n - 1 do
    while rem_supply.(source) > 0 && out_with_flow source <> None do
      (* Walk positive-flow arcs until we hit a node with remaining
         demand and no further mandatory outflow, collecting the
         bottleneck. *)
      let rec walk v acc_nodes acc_arcs bottleneck =
        if rem_demand.(v) > 0 then (List.rev (v :: acc_nodes), List.rev acc_arcs, min bottleneck rem_demand.(v))
        else
          match out_with_flow v with
          | None ->
              (* Conservation guarantees this only happens at a demand
                 node; treat as sink with whatever bottleneck we have. *)
              (List.rev (v :: acc_nodes), List.rev acc_arcs, bottleneck)
          | Some a ->
              let f = Hashtbl.find rem a in
              walk (Graph.dst g a) (v :: acc_nodes) (a :: acc_arcs) (min bottleneck f)
      in
      let nodes, arcs, bottleneck = walk source [] [] rem_supply.(source) in
      if bottleneck <= 0 || arcs = [] then rem_supply.(source) <- 0 (* degenerate; stop *)
      else begin
        List.iter
          (fun a ->
            let f = Hashtbl.find rem a - bottleneck in
            if f <= 0 then Hashtbl.remove rem a else Hashtbl.replace rem a f)
          arcs;
        let sink = List.nth nodes (List.length nodes - 1) in
        rem_supply.(source) <- rem_supply.(source) - bottleneck;
        rem_demand.(sink) <- max 0 (rem_demand.(sink) - bottleneck);
        paths := { nodes; amount = bottleneck } :: !paths
      end
    done
  done;
  List.rev !paths
