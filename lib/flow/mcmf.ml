module Heap = Prelude.Heap
module Bucket_queue = Prelude.Bucket_queue
module Clock = Prelude.Clock
module Int_tbl = Prelude.Int_tbl

type result = {
  shipped : int;
  unshipped : int;
  total_cost : int;
  augmentations : int;
  elapsed_s : float;
  degraded : bool;
  profile : Obs.Solver_profile.t;
}

(* [Fast] is the production path: early-terminating Dijkstra with
   generation-stamped arrays, settled-only potential updates and an
   automatically selected bucket queue.  [Classic] is the historical
   full-settle implementation, kept verbatim as the measured baseline of
   bench_reopt (docs/PERFORMANCE.md); both are exact and produce
   min-cost flows, but they may break ties between equally-cheap paths
   differently, so a run must use one algorithm throughout. *)
type algo = Classic | Fast

let infinity_dist = max_int / 4

(* Keys in the bucket queue are reduced-cost path lengths, so its memory
   is proportional to the longest shortest-path; only use it when arc
   costs are small enough that this stays cheap.  Purely a performance
   heuristic: both queues pop in the same canonical (key, node) order,
   so the selection can never change results. *)
let bucket_cost_limit = 1 lsl 16

(* Reusable solver workspace.  Arrays are grown (never shrunk) to the
   instance size, so a scheduler that solves a similarly-sized network
   every round allocates nothing on the hot path after warm-up.
   [pot_nodes] records for how many nodes [pot] holds the potentials of
   a completed solve; -1 means the potentials are garbage.

   [dist]/[parent] entries are valid only where [stamp] holds the
   current [gen] — bumping [gen] invalidates both arrays in O(1),
   replacing the per-Dijkstra O(n) fills of the classic path. *)
type scratch = {
  mutable excess : int array;
  mutable pot : int array;
  mutable dist : int array;
  mutable parent : int array;
  mutable stamp : int array;
  mutable gen : int;
  mutable settled : int array;  (* nodes settled by the current Dijkstra *)
  mutable n_settled : int;
  mutable sources : int array;  (* compact positive-excess node list *)
  mutable n_sources : int;
  heap : Heap.Int_pair.t;
  bucket : Bucket_queue.t;
  mutable pot_nodes : int;
}

let scratch () =
  {
    excess = [||];
    pot = [||];
    dist = [||];
    parent = [||];
    stamp = [||];
    gen = 0;
    settled = [||];
    n_settled = 0;
    sources = [||];
    n_sources = 0;
    heap = Heap.Int_pair.create ();
    bucket = Bucket_queue.create ();
    pot_nodes = -1;
  }

let ensure_scratch s n =
  if Array.length s.excess < n then begin
    let cap = max n (2 * Array.length s.excess) in
    s.excess <- Array.make cap 0;
    s.pot <- Array.make cap 0;
    s.dist <- Array.make cap 0;
    s.parent <- Array.make cap 0;
    s.stamp <- Array.make cap 0;
    s.settled <- Array.make cap 0;
    s.sources <- Array.make cap 0;
    (* Fresh stamps read as stale for any positive generation. *)
    s.gen <- max 1 s.gen;
    s.pot_nodes <- -1
  end

(* SPFA (queue-based Bellman–Ford) from every positive-excess node; used
   only to bootstrap potentials when negative arc costs are present. *)
let spfa g excess =
  let n = Graph.node_count g in
  let dist = Array.make n infinity_dist in
  let in_queue = Array.make n false in
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if excess.(v) > 0 then begin
      dist.(v) <- 0;
      Queue.push v q;
      in_queue.(v) <- true
    end
  done;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    in_queue.(v) <- false;
    Graph.iter_out g v (fun a ->
        if Graph.residual_cap g a > 0 then begin
          let u = Graph.dst g a in
          let nd = dist.(v) + Graph.cost g a in
          if nd < dist.(u) then begin
            dist.(u) <- nd;
            if not in_queue.(u) then begin
              Queue.push u q;
              in_queue.(u) <- true
            end
          end
        end);
  done;
  dist

(* ------------------------------------------------------------------ *)
(* Classic full-settle Dijkstra (baseline algorithm)                   *)
(* ------------------------------------------------------------------ *)

(* Multi-source Dijkstra on reduced costs.  Fills [dist]/[parent];
   parent.(v) is the residual arc used to reach v, or -1.  Settles the
   whole reachable graph before the caller scans for the nearest
   deficit. *)
let dijkstra_classic g excess pot dist parent heap =
  let n = Graph.node_count g in
  Array.fill dist 0 n infinity_dist;
  Array.fill parent 0 n (-1);
  Heap.Int_pair.clear heap;
  for v = 0 to n - 1 do
    if excess.(v) > 0 then begin
      dist.(v) <- 0;
      Heap.Int_pair.push heap 0 v
    end
  done;
  while not (Heap.Int_pair.is_empty heap) do
    let d = Heap.Int_pair.min_key heap in
    let v = Heap.Int_pair.pop heap in
    (* Stale entries — superseded by a later relaxation of [v] — carry
       a key strictly above dist.(v) and are skipped without expansion.
       No decrease-key exists (or is needed): Heap.Int_pair simply
       accumulates one entry per improvement. *)
    if d = dist.(v) then
      Graph.iter_out g v (fun a ->
          if Graph.residual_cap g a > 0 then begin
            let u = Graph.dst g a in
            let rc = Graph.cost g a + pot.(v) - pot.(u) in
            (* Reduced costs are non-negative once potentials are valid;
               clamp tiny negatives caused by unreachable-node potential
               staleness. *)
            let rc = if rc < 0 then 0 else rc in
            let nd = d + rc in
            if nd < dist.(u) then begin
              dist.(u) <- nd;
              parent.(u) <- a;
              Heap.Int_pair.push heap nd u
            end
          end)
  done

(* ------------------------------------------------------------------ *)
(* Fast early-terminating Dijkstra                                     *)
(* ------------------------------------------------------------------ *)

(* Drop positive-excess nodes that have been drained since the last
   Dijkstra; the surviving order is irrelevant because both queues pop
   sources in canonical (0, node) order regardless of push order. *)
let compact_sources s =
  let i = ref 0 in
  while !i < s.n_sources do
    let v = s.sources.(!i) in
    if s.excess.(v) > 0 then incr i
    else begin
      s.n_sources <- s.n_sources - 1;
      s.sources.(!i) <- s.sources.(s.n_sources)
    end
  done

(* One Dijkstra pass that stops at the first settled deficit node and
   returns it (-1 when no deficit is reachable).  Because settling
   follows the canonical (dist, node) order, the returned target is
   exactly the minimum-(dist, node) reachable deficit — the same node
   the classic path picks with its post-settle O(n) scan — and the
   parent chain above it is final at that point.  [dist]/[parent] are
   stamped with [s.gen]; everything else in them is garbage.

   The two bodies below are identical except for the queue type; they
   are kept monomorphic (no first-class module) to avoid indirect calls
   in the innermost loop. *)
let dijkstra_fast_heap g s =
  let excess = s.excess and pot = s.pot and dist = s.dist in
  let parent = s.parent and stamp = s.stamp in
  let gen = s.gen in
  let h = s.heap in
  Heap.Int_pair.clear h;
  s.n_settled <- 0;
  compact_sources s;
  for i = 0 to s.n_sources - 1 do
    let v = s.sources.(i) in
    dist.(v) <- 0;
    parent.(v) <- -1;
    stamp.(v) <- gen;
    Heap.Int_pair.push h 0 v
  done;
  let target = ref (-1) in
  while !target < 0 && not (Heap.Int_pair.is_empty h) do
    let d = Heap.Int_pair.min_key h in
    let v = Heap.Int_pair.pop h in
    (* Stale-entry skip: a pop whose key exceeds the node's current
       distance was superseded by a later push (no decrease-key). *)
    if d = dist.(v) && stamp.(v) = gen then begin
      s.settled.(s.n_settled) <- v;
      s.n_settled <- s.n_settled + 1;
      if excess.(v) < 0 then target := v
      else
        Graph.iter_out g v (fun a ->
            if Graph.residual_cap g a > 0 then begin
              let u = Graph.dst g a in
              let rc = Graph.cost g a + pot.(v) - pot.(u) in
              let rc = if rc < 0 then 0 else rc in
              let nd = d + rc in
              if nd < (if stamp.(u) = gen then dist.(u) else infinity_dist) then begin
                dist.(u) <- nd;
                parent.(u) <- a;
                stamp.(u) <- gen;
                Heap.Int_pair.push h nd u
              end
            end)
    end
  done;
  !target

let dijkstra_fast_bucket g s =
  let excess = s.excess and pot = s.pot and dist = s.dist in
  let parent = s.parent and stamp = s.stamp in
  let gen = s.gen in
  let q = s.bucket in
  Bucket_queue.clear q;
  s.n_settled <- 0;
  compact_sources s;
  for i = 0 to s.n_sources - 1 do
    let v = s.sources.(i) in
    dist.(v) <- 0;
    parent.(v) <- -1;
    stamp.(v) <- gen;
    Bucket_queue.push q 0 v
  done;
  let target = ref (-1) in
  while !target < 0 && not (Bucket_queue.is_empty q) do
    let d = Bucket_queue.min_key q in
    let v = Bucket_queue.pop q in
    if d = dist.(v) && stamp.(v) = gen then begin
      s.settled.(s.n_settled) <- v;
      s.n_settled <- s.n_settled + 1;
      if excess.(v) < 0 then target := v
      else
        Graph.iter_out g v (fun a ->
            if Graph.residual_cap g a > 0 then begin
              let u = Graph.dst g a in
              let rc = Graph.cost g a + pot.(v) - pot.(u) in
              let rc = if rc < 0 then 0 else rc in
              let nd = d + rc in
              if nd < (if stamp.(u) = gen then dist.(u) else infinity_dist) then begin
                dist.(u) <- nd;
                parent.(u) <- a;
                stamp.(u) <- gen;
                Bucket_queue.push q nd u
              end
            end)
    end
  done;
  !target

(* Carried-over potentials are usable only if every residual arc still
   has non-negative reduced cost — otherwise Dijkstra's clamp would
   silently distort path costs.  O(n + m) scan. *)
let warm_potentials_valid g pot =
  let n = Graph.node_count g in
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    Graph.iter_out g !v (fun a ->
        if !ok && Graph.residual_cap g a > 0 then begin
          let u = Graph.dst g a in
          if Graph.cost g a + pot.(!v) - pot.(u) < 0 then ok := false
        end);
    incr v
  done;
  !ok

let solve ?budget ?ctl ?scratch:s ?(warm = false) ?(algo = Fast) g =
  let t0 = Clock.now () in
  (* [ctl] is an externally prepared budget state (portfolio race): the
     coordinator owns it — and owns chaos, drawing on this backend's
     behalf during replay — so the solve itself must not draw.  Without
     [ctl], chaos only ever perturbs budgeted solves: an unbudgeted
     caller has no degraded path to absorb it. *)
  let external_ctl = ctl <> None in
  let bstate = match ctl with Some _ -> ctl | None -> Option.map Budget.start budget in
  (match bstate with
  | Some st when (not external_ctl) && Chaos.enabled () ->
      let forced, d = Chaos.draw_solve ~backend:"ssp" in
      if forced then Budget.force_exhaustion st;
      if d > 0.0 then Budget.inject_delay st d
  | _ -> ());
  (* Read the obs flag exactly once: a solve running on a racing domain
     is spawned with obs quiesced and must never emit, even if the
     coordinator re-enables obs while the domain still runs. *)
  let instrument = Obs.enabled () in
  let t_spfa = ref 0.0 and t_dijkstra = ref 0.0 and t_augment = ref 0.0 in
  let staged acc f =
    if instrument then begin
      let s0 = Clock.now () in
      let r = f () in
      acc := !acc +. (Clock.now () -. s0);
      r
    end
    else f ()
  in
  let n = Graph.node_count g in
  let s, scratch_reused =
    match s with
    | Some s ->
        let reused = Array.length s.excess >= n in
        ensure_scratch s n;
        (s, reused)
    | None ->
        let s = scratch () in
        ensure_scratch s n;
        (s, false)
  in
  let excess = s.excess and pot = s.pot and dist = s.dist and parent = s.parent in
  for v = 0 to n - 1 do
    excess.(v) <- Graph.supply g v
  done;
  (* Potentials: reuse last round's when requested and still valid,
     otherwise start from zero and bootstrap with SPFA only if the
     graph actually has a negative-cost arc (tracked by the graph, no
     O(m) rescan here). *)
  let warm_requested = warm && s.pot_nodes = n in
  let warm_hit = warm_requested && warm_potentials_valid g pot in
  if not warm_hit then begin
    Array.fill pot 0 n 0;
    if Graph.has_negative_cost g then begin
      let bf = staged t_spfa (fun () -> spfa g excess) in
      for v = 0 to n - 1 do
        if bf.(v) < infinity_dist then pot.(v) <- bf.(v)
      done
    end
  end;
  s.pot_nodes <- -1;
  (* Queue selection for the fast path: bucket Dijkstra when all costs
     are non-negative and bounded (both always true for the HIRE cost
     model, whose scaled terms top out at the 6×cost_scale sentinel),
     binary heap otherwise.  Identical pop order either way. *)
  let use_bucket =
    algo = Fast && (not (Graph.has_negative_cost g)) && Graph.cost_ub g <= bucket_cost_limit
  in
  if instrument then begin
    if scratch_reused then Obs.Registry.incr (Obs.Registry.counter "flow.scratch_reuse");
    if warm then
      Obs.Registry.incr
        (Obs.Registry.counter (if warm_hit then "flow.warm_hit" else "flow.warm_miss"));
    if algo = Fast then
      Obs.Registry.incr
        (Obs.Registry.counter (if use_bucket then "flow.queue.bucket" else "flow.queue.heap"))
  end;
  let shipped = ref 0 in
  let augmentations = ref 0 in
  let exhausted = ref None in
  let within_budget () =
    match bstate with
    | None -> true
    | Some st -> (
        match Budget.check st with
        | None -> true
        | Some reason ->
            exhausted := Some reason;
            false)
  in
  (* Residual positive supply, maintained incrementally (the classic
     path rescans instead). *)
  let remaining = ref 0 in
  s.n_sources <- 0;
  for v = 0 to n - 1 do
    if excess.(v) > 0 then begin
      remaining := !remaining + excess.(v);
      s.sources.(s.n_sources) <- v;
      s.n_sources <- s.n_sources + 1
    end
  done;
  let continue_ = ref (!remaining > 0) in
  (match algo with
  | Fast ->
      while !continue_ do
        (* Budget checked at augmentation boundaries: an SSP prefix is a
           valid min-cost flow for its value, so stopping here leaves a
           salvageable partial solution on the graph. *)
        if not (within_budget ()) then continue_ := false
        else begin
          s.gen <- s.gen + 1;
          let target =
            staged t_dijkstra (fun () ->
                if use_bucket then dijkstra_fast_bucket g s else dijkstra_fast_heap g s)
          in
          if target < 0 then continue_ := false
          else
            staged t_augment (fun () ->
                let d_target = dist.(target) in
                (* Bottleneck along the path back to whichever source
                   started it; every node on it is settled, so the
                   parent chain is final. *)
                let bottleneck = ref (-excess.(target)) in
                let v = ref target in
                while parent.(!v) >= 0 do
                  let a = parent.(!v) in
                  if Graph.residual_cap g a < !bottleneck then
                    bottleneck := Graph.residual_cap g a;
                  v := Graph.src g a
                done;
                let source = !v in
                if excess.(source) < !bottleneck then bottleneck := excess.(source);
                let amount = !bottleneck in
                let v = ref target in
                while parent.(!v) >= 0 do
                  let a = parent.(!v) in
                  Graph.push g a amount;
                  v := Graph.src g a
                done;
                excess.(source) <- excess.(source) - amount;
                excess.(target) <- excess.(target) + amount;
                shipped := !shipped + amount;
                remaining := !remaining - amount;
                incr augmentations;
                (match bstate with Some st -> Budget.spend st 1 | None -> ());
                (* Settled-only Johnson update: π(u) += dist(u) − D
                   keeps every residual reduced cost non-negative
                   (settled→settled arcs are unchanged relative shifts;
                   settled→unsettled arcs gain dist(u) − D ≥ dist(w) − D
                   ≥ 0 slack from the relaxation at u's settle time;
                   unsettled→settled arcs gain D − dist(w) ≥ 0), while
                   leaving unreached potentials untouched. *)
                for i = 0 to s.n_settled - 1 do
                  let u = s.settled.(i) in
                  pot.(u) <- pot.(u) + dist.(u) - d_target
                done;
                if !remaining = 0 then continue_ := false)
        end
      done
  | Classic ->
      let remaining_supply () =
        let acc = ref 0 in
        for v = 0 to n - 1 do
          if excess.(v) > 0 then acc := !acc + excess.(v)
        done;
        !acc
      in
      while !continue_ do
        if not (within_budget ()) then continue_ := false
        else begin
          staged t_dijkstra (fun () -> dijkstra_classic g excess pot dist parent s.heap);
          (* Nearest reachable deficit node. *)
          let best = ref (-1) in
          for v = 0 to n - 1 do
            if excess.(v) < 0 && dist.(v) < infinity_dist then
              if !best < 0 || dist.(v) < dist.(!best) then best := v
          done;
          match !best with
          | -1 -> continue_ := false
          | target ->
              staged t_augment (fun () ->
                  let bottleneck = ref (-excess.(target)) in
                  let v = ref target in
                  while parent.(!v) >= 0 do
                    let a = parent.(!v) in
                    if Graph.residual_cap g a < !bottleneck then
                      bottleneck := Graph.residual_cap g a;
                    v := Graph.src g a
                  done;
                  let source = !v in
                  if excess.(source) < !bottleneck then bottleneck := excess.(source);
                  let amount = !bottleneck in
                  let v = ref target in
                  while parent.(!v) >= 0 do
                    let a = parent.(!v) in
                    Graph.push g a amount;
                    v := Graph.src g a
                  done;
                  excess.(source) <- excess.(source) - amount;
                  excess.(target) <- excess.(target) + amount;
                  shipped := !shipped + amount;
                  remaining := !remaining - amount;
                  incr augmentations;
                  (match bstate with Some st -> Budget.spend st 1 | None -> ());
                  (* Johnson potential update keeps reduced costs
                     non-negative. *)
                  for u = 0 to n - 1 do
                    if dist.(u) < infinity_dist then pot.(u) <- pot.(u) + dist.(u)
                  done;
                  if remaining_supply () = 0 then continue_ := false)
        end
      done);
  (* The potentials of a completed (even budget-truncated) solve are
     valid for this graph size; record that so a warm caller can try to
     reuse them next round. *)
  s.pot_nodes <- n;
  let degraded = !exhausted <> None in
  if degraded && instrument then begin
    Obs.Registry.incr (Obs.Registry.counter "flow.budget_exhausted");
    Obs.Trace.emit "solver_degraded"
      [
        ("solver", Obs.Trace.Str "ssp");
        ( "reason",
          Obs.Trace.Str (Format.asprintf "%a" Budget.pp_reason (Option.get !exhausted)) );
        ("shipped", Obs.Trace.Int !shipped);
      ]
  end;
  let elapsed_s = Clock.now () -. t0 in
  let profile =
    {
      (Obs.Solver_profile.zero ~solver:"ssp") with
      nodes = n;
      arcs = Graph.arc_count g;
      augmentations = !augmentations;
      scratch_reused;
      warm_start = warm_hit;
      stages =
        (if instrument then
           [ ("spfa", !t_spfa); ("dijkstra", !t_dijkstra); ("augment", !t_augment) ]
         else []);
      wall_s = elapsed_s;
    }
  in
  if instrument then Obs.Solver_profile.emit profile;
  {
    shipped = !shipped;
    unshipped = !remaining;
    total_cost = Graph.flow_cost g;
    augmentations = !augmentations;
    elapsed_s;
    degraded;
    profile;
  }

type path = { nodes : int list; amount : int }

let decompose g =
  let n = Graph.node_count g in
  (* Remaining flow per forward arc, consumed as paths are peeled off. *)
  let rem = Int_tbl.create 256 in
  Graph.iter_arcs g (fun a ->
      let f = Graph.flow g a in
      if f > 0 then Int_tbl.replace rem a f);
  let rem_supply = Array.init n (fun v -> max 0 (Graph.supply g v)) in
  let rem_demand = Array.init n (fun v -> max 0 (-Graph.supply g v)) in
  let out_with_flow v =
    Graph.fold_out g v None (fun acc a ->
        match acc with
        | Some _ -> acc
        | None ->
            if Graph.is_forward a && Int_tbl.mem rem a && Int_tbl.find rem a > 0 then Some a
            else None)
  in
  let paths = ref [] in
  for source = 0 to n - 1 do
    while rem_supply.(source) > 0 && out_with_flow source <> None do
      (* Walk positive-flow arcs until we hit a node with remaining
         demand and no further mandatory outflow, collecting the
         bottleneck. *)
      let rec walk v acc_nodes acc_arcs bottleneck =
        if rem_demand.(v) > 0 then (List.rev (v :: acc_nodes), List.rev acc_arcs, min bottleneck rem_demand.(v))
        else
          match out_with_flow v with
          | None ->
              (* Conservation guarantees this only happens at a demand
                 node; treat as sink with whatever bottleneck we have. *)
              (List.rev (v :: acc_nodes), List.rev acc_arcs, bottleneck)
          | Some a ->
              let f = Int_tbl.find rem a in
              walk (Graph.dst g a) (v :: acc_nodes) (a :: acc_arcs) (min bottleneck f)
      in
      let nodes, arcs, bottleneck = walk source [] [] rem_supply.(source) in
      if bottleneck <= 0 || arcs = [] then rem_supply.(source) <- 0 (* degenerate; stop *)
      else begin
        List.iter
          (fun a ->
            let f = Int_tbl.find rem a - bottleneck in
            if f <= 0 then Int_tbl.remove rem a else Int_tbl.replace rem a f)
          arcs;
        let sink = List.nth nodes (List.length nodes - 1) in
        rem_supply.(source) <- rem_supply.(source) - bottleneck;
        rem_demand.(sink) <- max 0 (rem_demand.(sink) - bottleneck);
        paths := { nodes; amount = bottleneck } :: !paths
      end
    done
  done;
  List.rev !paths
