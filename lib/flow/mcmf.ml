module Heap = Prelude.Heap
module Clock = Prelude.Clock
module Int_tbl = Prelude.Int_tbl

type result = {
  shipped : int;
  unshipped : int;
  total_cost : int;
  augmentations : int;
  elapsed_s : float;
  degraded : bool;
  profile : Obs.Solver_profile.t;
}

let infinity_dist = max_int / 4

(* Reusable solver workspace.  Arrays are grown (never shrunk) to the
   instance size, so a scheduler that solves a similarly-sized network
   every round allocates nothing on the hot path after warm-up.
   [pot_nodes] records for how many nodes [pot] holds the potentials of
   a completed solve; -1 means the potentials are garbage. *)
type scratch = {
  mutable excess : int array;
  mutable pot : int array;
  mutable dist : int array;
  mutable parent : int array;
  heap : Heap.Int_pair.t;
  mutable pot_nodes : int;
}

let scratch () =
  {
    excess = [||];
    pot = [||];
    dist = [||];
    parent = [||];
    heap = Heap.Int_pair.create ();
    pot_nodes = -1;
  }

let ensure_scratch s n =
  if Array.length s.excess < n then begin
    let cap = max n (2 * Array.length s.excess) in
    s.excess <- Array.make cap 0;
    s.pot <- Array.make cap 0;
    s.dist <- Array.make cap 0;
    s.parent <- Array.make cap 0;
    s.pot_nodes <- -1
  end

(* SPFA (queue-based Bellman–Ford) from every positive-excess node; used
   only to bootstrap potentials when negative arc costs are present. *)
let spfa g excess =
  let n = Graph.node_count g in
  let dist = Array.make n infinity_dist in
  let in_queue = Array.make n false in
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if excess.(v) > 0 then begin
      dist.(v) <- 0;
      Queue.push v q;
      in_queue.(v) <- true
    end
  done;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    in_queue.(v) <- false;
    Graph.iter_out g v (fun a ->
        if Graph.residual_cap g a > 0 then begin
          let u = Graph.dst g a in
          let nd = dist.(v) + Graph.cost g a in
          if nd < dist.(u) then begin
            dist.(u) <- nd;
            if not in_queue.(u) then begin
              Queue.push u q;
              in_queue.(u) <- true
            end
          end
        end);
  done;
  dist

(* Multi-source Dijkstra on reduced costs.  Fills [dist]/[parent];
   parent.(v) is the residual arc used to reach v, or -1.  The heap
   pops strictly by key with generic-heap tie order, so the search —
   and therefore the tie-breaking between equal-cost paths — matches
   the historical tuple-heap implementation exactly. *)
let dijkstra g excess pot dist parent heap =
  let n = Graph.node_count g in
  Array.fill dist 0 n infinity_dist;
  Array.fill parent 0 n (-1);
  Heap.Int_pair.clear heap;
  for v = 0 to n - 1 do
    if excess.(v) > 0 then begin
      dist.(v) <- 0;
      Heap.Int_pair.push heap 0 v
    end
  done;
  while not (Heap.Int_pair.is_empty heap) do
    let d = Heap.Int_pair.min_key heap in
    let v = Heap.Int_pair.pop heap in
    if d = dist.(v) then
      Graph.iter_out g v (fun a ->
          if Graph.residual_cap g a > 0 then begin
            let u = Graph.dst g a in
            let rc = Graph.cost g a + pot.(v) - pot.(u) in
            (* Reduced costs are non-negative once potentials are valid;
               clamp tiny negatives caused by unreachable-node potential
               staleness. *)
            let rc = if rc < 0 then 0 else rc in
            let nd = d + rc in
            if nd < dist.(u) then begin
              dist.(u) <- nd;
              parent.(u) <- a;
              Heap.Int_pair.push heap nd u
            end
          end)
  done

(* Carried-over potentials are usable only if every residual arc still
   has non-negative reduced cost — otherwise Dijkstra's clamp would
   silently distort path costs.  O(n + m) scan. *)
let warm_potentials_valid g pot =
  let n = Graph.node_count g in
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < n do
    Graph.iter_out g !v (fun a ->
        if !ok && Graph.residual_cap g a > 0 then begin
          let u = Graph.dst g a in
          if Graph.cost g a + pot.(!v) - pot.(u) < 0 then ok := false
        end);
    incr v
  done;
  !ok

let solve ?budget ?ctl ?scratch:s ?(warm = false) g =
  let t0 = Clock.now () in
  (* [ctl] is an externally prepared budget state (portfolio race): the
     coordinator owns it — and owns chaos, drawing on this backend's
     behalf during replay — so the solve itself must not draw.  Without
     [ctl], chaos only ever perturbs budgeted solves: an unbudgeted
     caller has no degraded path to absorb it. *)
  let external_ctl = ctl <> None in
  let bstate = match ctl with Some _ -> ctl | None -> Option.map Budget.start budget in
  (match bstate with
  | Some st when (not external_ctl) && Chaos.enabled () ->
      let forced, d = Chaos.draw_solve ~backend:"ssp" in
      if forced then Budget.force_exhaustion st;
      if d > 0.0 then Budget.inject_delay st d
  | _ -> ());
  (* Read the obs flag exactly once: a solve running on a racing domain
     is spawned with obs quiesced and must never emit, even if the
     coordinator re-enables obs while the domain still runs. *)
  let instrument = Obs.enabled () in
  let t_spfa = ref 0.0 and t_dijkstra = ref 0.0 and t_augment = ref 0.0 in
  let staged acc f =
    if instrument then begin
      let s0 = Clock.now () in
      let r = f () in
      acc := !acc +. (Clock.now () -. s0);
      r
    end
    else f ()
  in
  let n = Graph.node_count g in
  let s, scratch_reused =
    match s with
    | Some s ->
        let reused = Array.length s.excess >= n in
        ensure_scratch s n;
        (s, reused)
    | None ->
        let s = scratch () in
        ensure_scratch s n;
        (s, false)
  in
  let excess = s.excess and pot = s.pot and dist = s.dist and parent = s.parent in
  for v = 0 to n - 1 do
    excess.(v) <- Graph.supply g v
  done;
  (* Potentials: reuse last round's when requested and still valid,
     otherwise start from zero and bootstrap with SPFA only if the
     graph actually has a negative-cost arc (tracked by the graph, no
     O(m) rescan here). *)
  let warm_requested = warm && s.pot_nodes = n in
  let warm_hit = warm_requested && warm_potentials_valid g pot in
  if not warm_hit then begin
    Array.fill pot 0 n 0;
    if Graph.has_negative_cost g then begin
      let bf = staged t_spfa (fun () -> spfa g excess) in
      for v = 0 to n - 1 do
        if bf.(v) < infinity_dist then pot.(v) <- bf.(v)
      done
    end
  end;
  s.pot_nodes <- -1;
  if instrument then begin
    if scratch_reused then Obs.Registry.incr (Obs.Registry.counter "flow.scratch_reuse");
    if warm then
      Obs.Registry.incr
        (Obs.Registry.counter (if warm_hit then "flow.warm_hit" else "flow.warm_miss"))
  end;
  let shipped = ref 0 in
  let augmentations = ref 0 in
  let remaining_supply () =
    let acc = ref 0 in
    for v = 0 to n - 1 do
      if excess.(v) > 0 then acc := !acc + excess.(v)
    done;
    !acc
  in
  let exhausted = ref None in
  let within_budget () =
    match bstate with
    | None -> true
    | Some st -> (
        match Budget.check st with
        | None -> true
        | Some reason ->
            exhausted := Some reason;
            false)
  in
  let continue_ = ref (remaining_supply () > 0) in
  while !continue_ do
    (* Budget checked at augmentation boundaries: an SSP prefix is a
       valid min-cost flow for its value, so stopping here leaves a
       salvageable partial solution on the graph. *)
    if not (within_budget ()) then continue_ := false
    else begin
      staged t_dijkstra (fun () -> dijkstra g excess pot dist parent s.heap);
      (* Nearest reachable deficit node. *)
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if excess.(v) < 0 && dist.(v) < infinity_dist then
          if !best < 0 || dist.(v) < dist.(!best) then best := v
      done;
      match !best with
      | -1 -> continue_ := false
      | target ->
          staged t_augment (fun () ->
              (* Bottleneck along the path back to whichever source started it. *)
              let bottleneck = ref (-excess.(target)) in
              let v = ref target in
              while parent.(!v) >= 0 do
                let a = parent.(!v) in
                if Graph.residual_cap g a < !bottleneck then bottleneck := Graph.residual_cap g a;
                v := Graph.src g a
              done;
              let source = !v in
              if excess.(source) < !bottleneck then bottleneck := excess.(source);
              let amount = !bottleneck in
              let v = ref target in
              while parent.(!v) >= 0 do
                let a = parent.(!v) in
                Graph.push g a amount;
                v := Graph.src g a
              done;
              excess.(source) <- excess.(source) - amount;
              excess.(target) <- excess.(target) + amount;
              shipped := !shipped + amount;
              incr augmentations;
              (match bstate with Some st -> Budget.spend st 1 | None -> ());
              (* Johnson potential update keeps reduced costs non-negative. *)
              for u = 0 to n - 1 do
                if dist.(u) < infinity_dist then pot.(u) <- pot.(u) + dist.(u)
              done;
              if remaining_supply () = 0 then continue_ := false)
    end
  done;
  (* The potentials of a completed (even budget-truncated) solve are
     valid for this graph size; record that so a warm caller can try to
     reuse them next round. *)
  s.pot_nodes <- n;
  let degraded = !exhausted <> None in
  if degraded && instrument then begin
    Obs.Registry.incr (Obs.Registry.counter "flow.budget_exhausted");
    Obs.Trace.emit "solver_degraded"
      [
        ("solver", Obs.Trace.Str "ssp");
        ( "reason",
          Obs.Trace.Str (Format.asprintf "%a" Budget.pp_reason (Option.get !exhausted)) );
        ("shipped", Obs.Trace.Int !shipped);
      ]
  end;
  let elapsed_s = Clock.now () -. t0 in
  let profile =
    {
      (Obs.Solver_profile.zero ~solver:"ssp") with
      nodes = n;
      arcs = Graph.arc_count g;
      augmentations = !augmentations;
      scratch_reused;
      warm_start = warm_hit;
      stages =
        (if instrument then
           [ ("spfa", !t_spfa); ("dijkstra", !t_dijkstra); ("augment", !t_augment) ]
         else []);
      wall_s = elapsed_s;
    }
  in
  if instrument then Obs.Solver_profile.emit profile;
  {
    shipped = !shipped;
    unshipped = remaining_supply ();
    total_cost = Graph.flow_cost g;
    augmentations = !augmentations;
    elapsed_s;
    degraded;
    profile;
  }

type path = { nodes : int list; amount : int }

let decompose g =
  let n = Graph.node_count g in
  (* Remaining flow per forward arc, consumed as paths are peeled off. *)
  let rem = Int_tbl.create 256 in
  Graph.iter_arcs g (fun a ->
      let f = Graph.flow g a in
      if f > 0 then Int_tbl.replace rem a f);
  let rem_supply = Array.init n (fun v -> max 0 (Graph.supply g v)) in
  let rem_demand = Array.init n (fun v -> max 0 (-Graph.supply g v)) in
  let out_with_flow v =
    Graph.fold_out g v None (fun acc a ->
        match acc with
        | Some _ -> acc
        | None ->
            if Graph.is_forward a && Int_tbl.mem rem a && Int_tbl.find rem a > 0 then Some a
            else None)
  in
  let paths = ref [] in
  for source = 0 to n - 1 do
    while rem_supply.(source) > 0 && out_with_flow source <> None do
      (* Walk positive-flow arcs until we hit a node with remaining
         demand and no further mandatory outflow, collecting the
         bottleneck. *)
      let rec walk v acc_nodes acc_arcs bottleneck =
        if rem_demand.(v) > 0 then (List.rev (v :: acc_nodes), List.rev acc_arcs, min bottleneck rem_demand.(v))
        else
          match out_with_flow v with
          | None ->
              (* Conservation guarantees this only happens at a demand
                 node; treat as sink with whatever bottleneck we have. *)
              (List.rev (v :: acc_nodes), List.rev acc_arcs, bottleneck)
          | Some a ->
              let f = Int_tbl.find rem a in
              walk (Graph.dst g a) (v :: acc_nodes) (a :: acc_arcs) (min bottleneck f)
      in
      let nodes, arcs, bottleneck = walk source [] [] rem_supply.(source) in
      if bottleneck <= 0 || arcs = [] then rem_supply.(source) <- 0 (* degenerate; stop *)
      else begin
        List.iter
          (fun a ->
            let f = Int_tbl.find rem a - bottleneck in
            if f <= 0 then Int_tbl.remove rem a else Int_tbl.replace rem a f)
          arcs;
        let sink = List.nth nodes (List.length nodes - 1) in
        rem_supply.(source) <- rem_supply.(source) - bottleneck;
        rem_demand.(sink) <- max 0 (rem_demand.(sink) - bottleneck);
        paths := { nodes; amount = bottleneck } :: !paths
      end
    done
  done;
  List.rev !paths
