module Clock = Prelude.Clock

type t = { max_wall_s : float option; max_steps : int option }

let unlimited = { max_wall_s = None; max_steps = None }
let make ?max_wall_s ?max_steps () = { max_wall_s; max_steps }
let is_unlimited b = b.max_wall_s = None && b.max_steps = None

let pp fmt b =
  match (b.max_wall_s, b.max_steps) with
  | None, None -> Format.pp_print_string fmt "unlimited"
  | Some w, None -> Format.fprintf fmt "wall<=%.6fs" w
  | None, Some s -> Format.fprintf fmt "steps<=%d" s
  | Some w, Some s -> Format.fprintf fmt "wall<=%.6fs,steps<=%d" w s

type reason = Wall_clock of float | Steps of int | Chaos | Cancelled

let pp_reason fmt = function
  | Wall_clock s -> Format.fprintf fmt "wall-clock budget exhausted (%.6fs)" s
  | Steps n -> Format.fprintf fmt "step budget exhausted (%d steps)" n
  | Chaos -> Format.pp_print_string fmt "chaos-forced exhaustion"
  | Cancelled -> Format.pp_print_string fmt "cancelled (lost the portfolio race)"

type state = {
  budget : t;
  started : float;
  cancel : bool Atomic.t option;
  mutable steps : int;
  mutable handicap_s : float;
  mutable forced : bool;
  mutable exhausted : reason option;  (* sticky verdict *)
}

let start ?cancel budget =
  (* Only sample the clock when a wall cap can ever need it. *)
  let started = match budget.max_wall_s with Some _ -> Clock.now () | None -> 0.0 in
  { budget; started; cancel; steps = 0; handicap_s = 0.0; forced = false; exhausted = None }

let cancelled st =
  match st.cancel with Some flag -> Atomic.get flag | None -> false

let spend st n = st.steps <- st.steps + n
let steps st = st.steps
let inject_delay st s = st.handicap_s <- st.handicap_s +. s
let force_exhaustion st = st.forced <- true

let check st =
  match st.exhausted with
  | Some _ as r -> r
  | None ->
      let verdict =
        if st.forced then Some Chaos
        else if cancelled st then Some Cancelled
        else
          match st.budget.max_steps with
          | Some m when st.steps >= m -> Some (Steps m)
          | _ -> (
              match st.budget.max_wall_s with
              | Some m when Clock.elapsed_since st.started +. st.handicap_s >= m ->
                  Some (Wall_clock m)
              | _ -> None)
      in
      st.exhausted <- verdict;
      verdict
