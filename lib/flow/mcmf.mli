(** Min-cost max-flow solver: successive shortest augmenting paths with
    Johnson node potentials.

    The solver routes as much of the positive supply as possible to the
    negative-supply (demand) nodes at minimum total cost.  When the
    instance is infeasible (demand unreachable), the remaining supply is
    simply left unshipped and reported in the result — this matches how
    flow-based schedulers use the solver (an "unscheduled" node normally
    guarantees feasibility).

    Note that this graceful-degradation semantics of [unshipped] is
    specific to this backend.  The cost-scaling backend
    ({!Cost_scaling}) is an exact method that requires a feasible
    instance; it routes stranded supply over artificial
    maximum-penalty arcs, and {!Flow_network.solve_and_extract} maps
    that artificial flow back to a nonzero [unshipped] count here.
    Equal [unshipped] values therefore mean the same thing across
    backends, but only cost-scaling pays the artificial-arc cost in
    [total_cost].

    Negative arc costs are supported: one Bellman–Ford (SPFA) pass
    bootstraps the potentials, after which Dijkstra on reduced costs runs
    each augmentation.  Complexity is O(F · m log n) where F is total
    shipped flow — the same family as Quincy/Firmament's scheduling use. *)

type result = {
  shipped : int;  (** units of supply actually routed to demands *)
  unshipped : int;  (** supply that could not reach any demand *)
  total_cost : int;  (** cost of the final flow *)
  augmentations : int;  (** number of augmenting paths used *)
  elapsed_s : float;  (** monotonic wall-clock solve time ({!Prelude.Clock}) *)
  degraded : bool;
      (** the solve was stopped by its {!Budget} (or a {!Chaos}-forced
          exhaustion) before completing.  The flow left on the graph is
          still a valid min-cost flow for its (partial) value — every
          SSP prefix is — and passes {!Verify.check}; [unshipped] counts
          what the budget left behind. *)
  profile : Obs.Solver_profile.t;
      (** structured solve profile; per-stage timings are populated only
          when [Obs.enabled ()] held during the solve *)
}

(** Reusable solver workspace: excess/potential/distance/parent arrays
    and the Dijkstra heap.  Pass the same scratch to successive [solve]
    calls on similarly-sized graphs and the solver allocates nothing on
    the hot path after the first round.  Reusing scratch never changes
    results — the workspace is (re)initialised at every solve.

    A scratch is {e domain-local} state: it may migrate between domains
    across solves (the portfolio race hands it to the SSP domain and
    takes it back at join, with happens-before provided by
    [Domain.spawn]/[join]), but must never be used by two concurrent
    solves. *)
type scratch

val scratch : unit -> scratch

(** Which SSP implementation to run.  Both are exact (same shipped flow
    and total cost); they may break ties between equally-cheap augmenting
    paths differently, so outcomes are reproducible per algorithm but
    not across algorithms — pick one per run.

    [Fast] (the default) terminates each Dijkstra at the first settled
    deficit node, invalidates its distance/parent arrays in O(1) with
    generation stamps, updates only the settled nodes' potentials, and
    automatically swaps the binary heap for a monotone bucket queue when
    the graph has no negative costs and a small cost bound
    ({!Graph.cost_ub}).  The heap and bucket queue pop in the same
    canonical (distance, node) order, so queue selection never affects
    results.

    [Classic] is the historical full-settle implementation, retained as
    the measured baseline for bench_reopt (docs/PERFORMANCE.md). *)
type algo = Classic | Fast

(** [solve ?budget ?ctl ?scratch ?warm ?algo g] computes a min-cost max-flow
    on [g], mutating arc flows in place.  Supplies/demands are read from
    the graph's node supplies.  [budget] bounds the solve (checked
    before every augmentation); without one the solve runs to
    completion and [degraded] is always [false] — and the chaos harness
    never touches the solve.

    [ctl], when given, takes precedence over [budget]: the solve uses
    this externally prepared {!Budget.state} (typically carrying a
    cancellation flag, see {!Budget.start}) instead of starting its own,
    and performs {e no} chaos draws — the caller owns both the budget
    state and the chaos stream.  This is the entry point the portfolio
    race ({!Portfolio}, docs/PARALLELISM.md) uses to run the solver on
    another domain while retaining cancellation and deterministic-chaos
    control in the coordinator.

    The solve itself is single-domain but safe to run {e on} any domain:
    it touches only [g], its scratch, its budget state (all owned by the
    calling domain) and reads the obs flag once at entry, emitting
    nothing when obs was quiesced at that point.

    [scratch] provides a reusable workspace (exact; see {!scratch}).
    [warm] (default [false]) additionally carries the node potentials of
    the previous solve in [scratch] into this one when a reduced-cost
    scan proves them still valid.  Warm potentials can change which of
    several {e equally-cheap} shortest paths Dijkstra prefers, so warm
    starts preserve objective values but not necessarily tie-breaks;
    leave it off when bit-identical placements matter.

    [algo] (default [Fast]) selects the implementation; see {!algo}. *)
val solve :
  ?budget:Budget.t ->
  ?ctl:Budget.state ->
  ?scratch:scratch ->
  ?warm:bool ->
  ?algo:algo ->
  Graph.t ->
  result

(** A single decomposed flow path: node sequence from a supply node to a
    demand node, and the amount carried. *)
type path = { nodes : int list; amount : int }

(** [decompose g] decomposes the current flow of [g] into source-to-sink
    paths (cycles cannot occur in a min-cost solution with non-negative
    reduced costs; any residual cycles of zero net cost are ignored).
    The graph's flow is not modified. *)
val decompose : Graph.t -> path list
