(* Goldberg–Tarjan cost scaling.  Invariant: the flow is ε-optimal for
   the current node prices p — every residual arc (v,w) has reduced cost
   c(v,w) + p(v) - p(w) >= -ε.  Costs are multiplied by (n+1) up front so
   that 1-optimality at the end implies true optimality. *)

module Clock = Prelude.Clock

type result = {
  shipped : int;
  unshipped : int;
  total_cost : int;
  phases : int;
  pushes : int;
  relabels : int;
  elapsed_s : float;
  degraded : bool;
  profile : Obs.Solver_profile.t;
}

(* Raised internally when the budget fires mid-phase; the handler resets
   the graph's flow (a mid-run pseudoflow is not salvageable). *)
exception Exhausted of Budget.reason

let solve ?(alpha = 8) ?budget ?ctl g =
  if alpha < 2 then invalid_arg "Cost_scaling.solve: alpha must be >= 2";
  let t0 = Clock.now () in
  (* As in [Mcmf.solve]: an external [ctl] (portfolio race) supplies the
     budget state and retains chaos ownership in the coordinator. *)
  let external_ctl = ctl <> None in
  let bstate = match ctl with Some _ -> ctl | None -> Option.map Budget.start budget in
  (match bstate with
  | Some st when (not external_ctl) && Chaos.enabled () ->
      let forced, d = Chaos.draw_solve ~backend:"cost-scaling" in
      if forced then Budget.force_exhaustion st;
      if d > 0.0 then Budget.inject_delay st d
  | _ -> ());
  let check_budget () =
    match bstate with
    | None -> ()
    | Some st -> (
        match Budget.check st with None -> () | Some reason -> raise (Exhausted reason))
  in
  let spend_step () = match bstate with Some st -> Budget.spend st 1 | None -> () in
  let instrument = Obs.enabled () in
  let t_saturate = ref 0.0 and t_discharge = ref 0.0 in
  let staged acc f =
    if instrument then begin
      let s0 = Clock.now () in
      let r = f () in
      acc := !acc +. (Clock.now () -. s0);
      r
    end
    else f ()
  in
  let n0 = Graph.node_count g in
  if n0 = 0 then
    { shipped = 0; unshipped = 0; total_cost = 0; phases = 0; pushes = 0; relabels = 0;
      elapsed_s = 0.0; degraded = false;
      profile = Obs.Solver_profile.zero ~solver:"cost-scaling" }
  else begin
    (* Find the cost bound before adding artificial arcs. *)
    let max_abs_cost = ref 1 in
    Graph.iter_arcs g (fun a ->
        let c = abs (Graph.cost g a) in
        if c > !max_abs_cost then max_abs_cost := c);
    let total_supply = Graph.total_positive_supply g in
    (* Artificial feasibility arcs through one virtual node. *)
    let big = (!max_abs_cost * (n0 + 2)) + 1 in
    let virtual_node = Graph.add_node g in
    let art_out = ref [] (* supply → virtual *) and art_in = ref [] (* virtual → demand *) in
    for v = 0 to n0 - 1 do
      let s = Graph.supply g v in
      if s > 0 then
        art_out := Graph.add_arc g ~src:v ~dst:virtual_node ~cap:s ~cost:big :: !art_out
      else if s < 0 then
        art_in := Graph.add_arc g ~src:virtual_node ~dst:v ~cap:(-s) ~cost:big :: !art_in
    done;
    let n = Graph.node_count g in
    let scale = n + 1 in
    let cost a = Graph.cost g a * scale in
    let price = Array.make n 0 in
    let excess = Array.init n (fun v -> if v < n0 then Graph.supply g v else 0) in
    let pushes = ref 0 and relabels = ref 0 and phases = ref 0 in
    let reduced v a = cost a + price.(v) - price.(Graph.dst g a) in
    let eps = ref (((!max_abs_cost * scale) + alpha - 1) / alpha) in
    let queue = Queue.create () in
    let in_queue = Array.make n false in
    let activate v =
      if excess.(v) > 0 && not in_queue.(v) then begin
        Queue.push v queue;
        in_queue.(v) <- true
      end
    in
    let push v a amount =
      Graph.push g a amount;
      incr pushes;
      spend_step ();
      let w = Graph.dst g a in
      excess.(v) <- excess.(v) - amount;
      excess.(w) <- excess.(w) + amount;
      activate w
    in
    let discharge v =
      (* Push over admissible arcs; relabel when stuck. *)
      let continue_ = ref true in
      while excess.(v) > 0 && !continue_ do
        check_budget ();
        let progressed = ref false in
        Graph.iter_out g v (fun a ->
            if excess.(v) > 0 && Graph.residual_cap g a > 0 && reduced v a < 0 then begin
              push v a (min excess.(v) (Graph.residual_cap g a));
              progressed := true
            end);
        if excess.(v) > 0 && not !progressed then begin
          (* Relabel: lower the price just enough to create an
             admissible arc. *)
          let best = ref min_int in
          Graph.iter_out g v (fun a ->
              if Graph.residual_cap g a > 0 then begin
                let candidate = price.(Graph.dst g a) - cost a in
                if candidate > !best then best := candidate
              end);
          if !best = min_int then continue_ := false (* isolated; impossible with artificials *)
          else begin
            price.(v) <- !best - !eps;
            incr relabels;
            spend_step ()
          end
        end
      done
    in
    let exhausted = ref None in
    (try
       let running = ref true in
       while !running do
         incr phases;
         check_budget ();
         (* Restore ε-optimality for the smaller ε by saturating every
            negative-reduced-cost arc. *)
         staged t_saturate (fun () ->
             Graph.iter_arcs g (fun a ->
                 let v = Graph.src g a in
                 if Graph.residual_cap g a > 0 && reduced v a < 0 then
                   push v a (Graph.residual_cap g a);
                 let r = Graph.rev a in
                 let w = Graph.dst g a in
                 if Graph.residual_cap g r > 0 && reduced w r < 0 then
                   push w r (Graph.residual_cap g r));
             for v = 0 to n - 1 do
               activate v
             done);
         staged t_discharge (fun () ->
             while not (Queue.is_empty queue) do
               let v = Queue.pop queue in
               in_queue.(v) <- false;
               discharge v
             done);
         if !eps <= 1 then running := false else eps := max 1 ((!eps + alpha - 1) / alpha)
       done
     with Exhausted reason ->
       (* A mid-run pseudoflow violates conservation and is worthless to
          callers; abort cleanly to the zero flow. *)
       Graph.reset_flow g;
       exhausted := Some reason);
    let degraded = !exhausted <> None in
    if degraded && instrument then begin
      Obs.Registry.incr (Obs.Registry.counter "flow.budget_exhausted");
      Obs.Trace.emit "solver_degraded"
        [
          ("solver", Obs.Trace.Str "cost-scaling");
          ( "reason",
            Obs.Trace.Str (Format.asprintf "%a" Budget.pp_reason (Option.get !exhausted)) );
          ("shipped", Obs.Trace.Int 0);
        ]
    end;
    (* Account artificial flow as unshipped and neutralize its cost;
       each artificially-routed unit crosses one supply-side and one
       demand-side artificial arc.  After an abort all flows are zero,
       so everything counts as unshipped. *)
    let unshipped =
      if degraded then total_supply
      else List.fold_left (fun acc a -> acc + Graph.flow g a) 0 !art_out
    in
    let artificial_cost =
      List.fold_left (fun acc a -> acc + (Graph.flow g a * big)) 0 (!art_out @ !art_in)
    in
    let elapsed_s = Clock.now () -. t0 in
    let profile =
      {
        (Obs.Solver_profile.zero ~solver:"cost-scaling") with
        nodes = n;
        arcs = Graph.arc_count g;
        phases = !phases;
        pushes = !pushes;
        relabels = !relabels;
        stages =
          (if instrument then [ ("saturate", !t_saturate); ("discharge", !t_discharge) ] else []);
        wall_s = elapsed_s;
      }
    in
    if instrument then Obs.Solver_profile.emit profile;
    {
      shipped = total_supply - unshipped;
      unshipped;
      total_cost = Graph.flow_cost g - artificial_cost;
      phases = !phases;
      pushes = !pushes;
      relabels = !relabels;
      elapsed_s;
      degraded;
      profile;
    }
  end
