(** Solve budgets: bounded work for the min-cost max-flow backends.

    A budget caps a single solve by monotonic wall-clock seconds
    ({!Prelude.Clock}) and/or by solver steps (SSP augmentations;
    cost-scaling pushes + relabels).  Both backends consult the budget
    at their natural work boundaries — before each augmentation, at each
    discharge/phase step — so exhaustion is detected promptly without
    per-arc overhead.

    On exhaustion the SSP backend stops and returns the partial flow it
    has built so far, which is a valid min-cost flow {e for its value}
    (every SSP prefix is; it passes {!Verify.check}) and is flagged
    [degraded] so callers can salvage it or fall back.  The cost-scaling
    backend holds only a pseudoflow mid-run, so it aborts cleanly:
    the graph's flow is reset to zero and the result reports everything
    unshipped.

    The chaos harness ({!Chaos}) can force exhaustion or handicap the
    wall clock of a budgeted solve; unbudgeted solves are never touched,
    so exact-solver tests stay exact even with [HIRE_CHAOS] set.

    {b Concurrency.} A {!state} is owned by exactly one domain — the one
    running the solve — and its fields are plain mutable cells.  The one
    cross-domain channel is the optional cancellation flag passed to
    {!start}: any other domain may set that [bool Atomic.t] at any time,
    and the owning solve observes it at its next {!check} (the same
    step-granular hook that detects wall/step exhaustion) and stops with
    {!Cancelled}.  This is how the portfolio race ({!Portfolio},
    docs/PARALLELISM.md) tells losing backends to stop. *)

type t = {
  max_wall_s : float option;  (** monotonic wall-clock cap, seconds *)
  max_steps : int option;  (** solver-step cap (augmentations / pushes+relabels) *)
}

(** No cap at all; {!check} never fires. *)
val unlimited : t

val make : ?max_wall_s:float -> ?max_steps:int -> unit -> t
val is_unlimited : t -> bool
val pp : Format.formatter -> t -> unit

(** Why a budgeted solve was stopped. *)
type reason =
  | Wall_clock of float  (** the wall cap, seconds *)
  | Steps of int  (** the step cap *)
  | Chaos  (** {!Chaos} forced exhaustion *)
  | Cancelled  (** the {!start} cancellation flag was set by another domain *)

val pp_reason : Format.formatter -> reason -> unit

(** Mutable per-solve accounting; create one with {!start} at the top of
    each solve (or hand a pre-started state to the solver via its [?ctl]
    parameter).  Owned by the solving domain; never share one state
    between domains. *)
type state

(** [start ?cancel budget] begins accounting.  [cancel], when given, is
    an externally owned atomic flag: once any domain sets it to [true],
    the next {!check} on this state reports {!Cancelled} (sticky, like
    every other exhaustion verdict).  Setting the flag is the only
    operation on a running solve that is safe from another domain. *)
val start : ?cancel:bool Atomic.t -> t -> state

(** [spend st n] records [n] solver steps. *)
val spend : state -> int -> unit

(** Steps recorded so far. *)
val steps : state -> int

(** Chaos hook: age the wall clock by [s] seconds (the solve appears to
    have run that much longer). *)
val inject_delay : state -> float -> unit

(** Chaos hook: the next {!check} reports {!Chaos}. *)
val force_exhaustion : state -> unit

(** [check st] is [Some reason] once the budget is exhausted (sticky),
    [None] while within budget.  Checks, in order: a sticky prior
    verdict, chaos forcing, the cancellation flag, the step cap, the
    wall cap.  Reads the monotonic clock only when a wall cap is
    actually set, and the cancellation atomic only when one was given
    to {!start}. *)
val check : state -> reason option
