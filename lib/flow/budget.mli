(** Solve budgets: bounded work for the min-cost max-flow backends.

    A budget caps a single solve by monotonic wall-clock seconds
    ({!Prelude.Clock}) and/or by solver steps (SSP augmentations;
    cost-scaling pushes + relabels).  Both backends consult the budget
    at their natural work boundaries — before each augmentation, at each
    discharge/phase step — so exhaustion is detected promptly without
    per-arc overhead.

    On exhaustion the SSP backend stops and returns the partial flow it
    has built so far, which is a valid min-cost flow {e for its value}
    (every SSP prefix is; it passes {!Verify.check}) and is flagged
    [degraded] so callers can salvage it or fall back.  The cost-scaling
    backend holds only a pseudoflow mid-run, so it aborts cleanly:
    the graph's flow is reset to zero and the result reports everything
    unshipped.

    The chaos harness ({!Chaos}) can force exhaustion or handicap the
    wall clock of a budgeted solve; unbudgeted solves are never touched,
    so exact-solver tests stay exact even with [HIRE_CHAOS] set. *)

type t = {
  max_wall_s : float option;  (** monotonic wall-clock cap, seconds *)
  max_steps : int option;  (** solver-step cap (augmentations / pushes+relabels) *)
}

(** No cap at all; {!check} never fires. *)
val unlimited : t

val make : ?max_wall_s:float -> ?max_steps:int -> unit -> t
val is_unlimited : t -> bool
val pp : Format.formatter -> t -> unit

(** Why a budgeted solve was stopped. *)
type reason =
  | Wall_clock of float  (** the wall cap, seconds *)
  | Steps of int  (** the step cap *)
  | Chaos  (** {!Chaos} forced exhaustion *)

val pp_reason : Format.formatter -> reason -> unit

(** Mutable per-solve accounting; create one with {!start} at the top of
    each solve. *)
type state

val start : t -> state

(** [spend st n] records [n] solver steps. *)
val spend : state -> int -> unit

(** Steps recorded so far. *)
val steps : state -> int

(** Chaos hook: age the wall clock by [s] seconds (the solve appears to
    have run that much longer). *)
val inject_delay : state -> float -> unit

(** Chaos hook: the next {!check} reports {!Chaos}. *)
val force_exhaustion : state -> unit

(** [check st] is [Some reason] once the budget is exhausted (sticky),
    [None] while within budget.  Reads the monotonic clock only when a
    wall cap is actually set. *)
val check : state -> reason option
