(** Seeded chaos harness for the solver-resilience layer
    (docs/RESILIENCE.md).

    When active, chaos injects three kinds of trouble ahead of the
    places built to absorb it:

    - {b forced budget exhaustion} — a budgeted solve is randomly told
      its budget is gone ({!Budget.force_exhaustion}), exercising the
      degraded/salvage path;
    - {b artificial solver delay} — a budgeted solve's wall clock is
      randomly aged ({!Budget.inject_delay}), exercising wall-cap
      exhaustion without actually sleeping;
    - {b flow corruption} — one arc of a solved flow is bit-flipped
      ({!Graph.corrupt_flow}) ahead of the runtime invariant guard,
      proving that {!Verify.check} catches it and the fallback chain
      recovers.

    Activation: set the [HIRE_CHAOS] environment variable to a seed
    (any non-empty value other than ["0"]; non-numeric strings are
    hashed), or call {!activate} programmatically in tests.  Draws come
    from {e named streams}, one {!Prelude.Rng} per injection site
    (["solve.ssp"], ["solve.cost-scaling"], ["corrupt"], …), each seeded
    by mixing the chaos seed with the stream name.  A stream's sequence
    therefore depends only on how many draws that stream has made, not
    on interleaving with other sites — the property that lets the
    portfolio race ({!Portfolio}) replay the serial fallback chain's
    chaos decisions exactly (docs/PARALLELISM.md).  Only the
    coordinator domain may draw; racing solver domains never touch
    chaos state.

    Scope: chaos only ever touches {e budgeted} solves and {e guarded}
    rounds — code that opted into the resilience layer.  Plain
    [Mcmf.solve]/[Cost_scaling.solve] calls without a budget are never
    perturbed, so the exact-solver test suite stays exact under
    [HIRE_CHAOS=1]. *)

(** [enabled ()] — the harness is active (env knob or {!activate}).
    The environment is consulted once, lazily. *)
val enabled : unit -> bool

(** The active seed, if any. *)
val seed : unit -> int option

(** [activate ~seed] turns chaos on programmatically (tests), replacing
    any env-derived state. *)
val activate : seed:int -> unit

(** [deactivate ()] turns chaos off, overriding the environment. *)
val deactivate : unit -> unit

(** [draw_solve ~backend] draws this budgeted solve's perturbations from
    the ["solve." ^ backend] stream: with probability ~1/4 force its
    budget spent ({!Budget.force_exhaustion}), and independently with
    probability ~1/4 return an artificial delay (seconds, up to 2ms) to
    age its wall budget by ({!Budget.inject_delay}).  [(false, 0.)] when
    chaos is off.  Backends draw for themselves on serial budgeted
    solves; in a portfolio race the coordinator draws on the backend's
    behalf during replay, in the same per-stream order. *)
val draw_solve : backend:string -> bool * float

(** [corrupt_solution g] flips the flow of one randomly chosen forward
    arc that carries flow and ends in a zero-supply (internal) node — a
    corruption {!Verify.check} is guaranteed to catch, since internal
    nodes must conserve flow exactly.  Performed with probability ~1/2;
    returns the corrupted arc, or [None] when chaos is off, the draw
    says no, or no eligible arc exists.  Draws from the ["corrupt"]
    stream. *)
val corrupt_solution : Graph.t -> Graph.arc option
