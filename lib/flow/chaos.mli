(** Seeded chaos harness for the solver-resilience layer
    (docs/RESILIENCE.md).

    When active, chaos injects three kinds of trouble ahead of the
    places built to absorb it:

    - {b forced budget exhaustion} — a budgeted solve is randomly told
      its budget is gone ({!Budget.force_exhaustion}), exercising the
      degraded/salvage path;
    - {b artificial solver delay} — a budgeted solve's wall clock is
      randomly aged ({!Budget.inject_delay}), exercising wall-cap
      exhaustion without actually sleeping;
    - {b flow corruption} — one arc of a solved flow is bit-flipped
      ({!Graph.corrupt_flow}) ahead of the runtime invariant guard,
      proving that {!Verify.check} catches it and the fallback chain
      recovers.

    Activation: set the [HIRE_CHAOS] environment variable to a seed
    (any non-empty value other than ["0"]; non-numeric strings are
    hashed), or call {!activate} programmatically in tests.  All draws
    come from one {!Prelude.Rng} stream, so a run is deterministic given
    the seed and the sequence of injection sites.

    Scope: chaos only ever touches {e budgeted} solves and {e guarded}
    rounds — code that opted into the resilience layer.  Plain
    [Mcmf.solve]/[Cost_scaling.solve] calls without a budget are never
    perturbed, so the exact-solver test suite stays exact under
    [HIRE_CHAOS=1]. *)

(** [enabled ()] — the harness is active (env knob or {!activate}).
    The environment is consulted once, lazily. *)
val enabled : unit -> bool

(** The active seed, if any. *)
val seed : unit -> int option

(** [activate ~seed] turns chaos on programmatically (tests), replacing
    any env-derived state. *)
val activate : seed:int -> unit

(** [deactivate ()] turns chaos off, overriding the environment. *)
val deactivate : unit -> unit

(** With probability ~1/4, tell a budgeted solve its budget is spent.
    [false] when chaos is off. *)
val draw_forced_exhaustion : unit -> bool

(** With probability ~1/4, an artificial delay (seconds) to age a solve's
    wall budget by; [0.] otherwise or when chaos is off. *)
val draw_delay_s : unit -> float

(** [corrupt_solution g] flips the flow of one randomly chosen forward
    arc that carries flow and ends in a zero-supply (internal) node — a
    corruption {!Verify.check} is guaranteed to catch, since internal
    nodes must conserve flow exactly.  Performed with probability ~1/2;
    returns the corrupted arc, or [None] when chaos is off, the draw
    says no, or no eligible arc exists. *)
val corrupt_solution : Graph.t -> Graph.arc option
