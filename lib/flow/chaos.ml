module Rng = Prelude.Rng

(* Non-numeric seeds and stream names are hashed with an explicit fold
   rather than the polymorphic [Hashtbl.hash] (banned from lib/flow by
   [make lint-compare]); any stable string -> int map works. *)
let string_seed s =
  String.fold_left (fun h c -> (((h * 31) + Char.code c) land 0x3FFFFFFF)) 5381 s

(* Draws come from named streams, each its own [Rng.t] seeded by
   mix(seed, name).  A stream's draw sequence then depends only on how
   many draws *that stream* has made — not on what any other stream did
   in between — which is what lets the portfolio race replay the serial
   chain's chaos decisions exactly (docs/PARALLELISM.md).  Streams are
   created on first use; only the coordinator domain ever draws. *)
type t = { seed : int; mutable streams : (string * Rng.t) list }

(* [None] until the first query, then the resolved state; [activate] and
   [deactivate] pin it regardless of the environment. *)
let current : t option ref = ref None
let resolved = ref false

let activate ~seed =
  current := Some { seed; streams = [] };
  resolved := true

let deactivate () =
  current := None;
  resolved := true

let resolve () =
  if not !resolved then begin
    resolved := true;
    match Sys.getenv_opt "HIRE_CHAOS" with
    | None | Some "" | Some "0" -> current := None
    | Some s ->
        let seed = match int_of_string_opt s with Some n -> n | None -> string_seed s in
        activate ~seed
  end

let get () =
  resolve ();
  !current

let enabled () = get () <> None
let seed () = Option.map (fun t -> t.seed) (get ())

let stream t name =
  match List.find_opt (fun (n, _) -> String.equal n name) t.streams with
  | Some (_, rng) -> rng
  | None ->
      let rng = Rng.create (t.seed lxor string_seed name) in
      t.streams <- (name, rng) :: t.streams;
      rng

let count name =
  if Obs.enabled () then Obs.Registry.incr (Obs.Registry.counter name)

let draw_solve ~backend =
  match get () with
  | None -> (false, 0.0)
  | Some t ->
      let rng = stream t ("solve." ^ backend) in
      let forced = Rng.bernoulli rng 0.25 in
      if forced then count "chaos.forced_exhaustions";
      let delay =
        if Rng.bernoulli rng 0.25 then begin
          count "chaos.delays";
          Rng.float rng 0.002
        end
        else 0.0
      in
      (forced, delay)

let corrupt_solution g =
  match get () with
  | None -> None
  | Some t ->
      let rng = stream t "corrupt" in
      if not (Rng.bernoulli rng 0.5) then None
      else begin
        (* Only arcs into zero-supply nodes: their balance must be exactly
           zero, so the ±1 flip always surfaces as a Verify violation
           (capacity or conservation) instead of hiding in the slack of a
           partially shipped supply/demand node. *)
        let cands = ref [] in
        Graph.iter_arcs g (fun a ->
            if Graph.flow g a > 0 && Graph.supply g (Graph.dst g a) = 0 then
              cands := a :: !cands);
        match !cands with
        | [] -> None
        | l ->
            let arr = Array.of_list l in
            let a = arr.(Rng.int rng (Array.length arr)) in
            let delta = if Rng.bool rng then 1 else -1 in
            Graph.corrupt_flow g a delta;
            count "chaos.flow_flips";
            Some a
      end
