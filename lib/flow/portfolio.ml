module Clock = Prelude.Clock

type job = { name : string; run : ctl:Budget.state -> Graph.t -> Mcmf.result }

type entry = {
  name : string;
  ran : bool;
  result : Mcmf.result option;
  graph : Graph.t;
  ctl : Budget.state option;
  wall_s : float;
  cancel_requested : bool;
}

type outcome = {
  winner : int option;
  entries : entry array;
  race_wall_s : float;
  eager : bool;
}

(* Eager fan-out only pays off when the racing domains can actually run
   in parallel; on a single-core host the deterministic-priority race
   degenerates gracefully to priority-order solves with early exit,
   which produces the same outputs (the decision procedure never looks
   at timing) at serial-chain cost. *)
let default_eager () = Domain.recommended_domain_count () >= 2

(* Per-job state shared with (at most) one worker domain.  The mutable
   fields are written by the worker and read by the coordinator strictly
   after [Domain.join] — the join is the publication point.  The only
   concurrently touched field is [cancel], an atomic the coordinator
   sets and the worker's budget checks poll. *)
type slot = {
  job : job;
  g : Graph.t;
  cancel : bool Atomic.t;
  mutable verdict : (Mcmf.result, exn) result option;
  mutable ctl_ : Budget.state option;
  mutable wall : float;
}

let run_slot ~budget s =
  let t0 = Clock.now () in
  let v =
    try
      (* The budget state (and hence the wall-cap clock) starts on the
         worker, exactly where a serial solve would start it. *)
      let ctl = Budget.start ~cancel:s.cancel budget in
      s.ctl_ <- Some ctl;
      Ok (s.job.run ~ctl s.g)
    with e -> Error e
  in
  s.wall <- Clock.now () -. t0;
  s.verdict <- Some v

let entry_of s =
  {
    name = s.job.name;
    ran = s.verdict <> None;
    result = (match s.verdict with Some (Ok r) -> Some r | _ -> None);
    graph = s.g;
    ctl = s.ctl_;
    wall_s = s.wall;
    cancel_requested = Atomic.get s.cancel;
  }

let emit_stats outcome =
  if Obs.enabled () then begin
    let incr name = Obs.Registry.incr (Obs.Registry.counter name) in
    incr "flow.portfolio.races";
    (match outcome.winner with
    | Some i -> incr ("flow.portfolio.win." ^ outcome.entries.(i).name)
    | None -> incr "flow.portfolio.no_winner");
    Array.iteri
      (fun i e ->
        if e.ran && outcome.winner <> Some i then incr ("flow.portfolio.loss." ^ e.name);
        if e.cancel_requested then incr ("flow.portfolio.cancelled." ^ e.name);
        if e.ran then
          Obs.Histogram.observe
            (Obs.Registry.histogram ("flow.portfolio.solve_s." ^ e.name))
            e.wall_s)
      outcome.entries;
    Obs.Histogram.observe (Obs.Registry.histogram "flow.portfolio.race_s") outcome.race_wall_s
  end

let race ?eager ~budget ~source ~decide jobs =
  if jobs = [] then invalid_arg "Portfolio.race: no jobs";
  let eager = match eager with Some e -> e | None -> default_eager () in
  let t0 = Clock.now () in
  let slots =
    Array.of_list
      (List.map
         (fun job ->
           {
             job;
             g = Graph.copy source;
             cancel = Atomic.make false;
             verdict = None;
             ctl_ = None;
             wall = 0.0;
           })
         jobs)
  in
  let n = Array.length slots in
  (* Quiesce obs for the whole race: worker domains read the flag once
     at solve entry, and there is no ordering between a worker's read
     and a coordinator write, so the flag must stay off until every
     domain has been joined.  The caller re-emits winner-side obs after
     the race (the [decide] callback must itself stay obs-silent). *)
  let obs_prev = Obs.enabled () in
  Obs.set_enabled false;
  let winner = ref None in
  let domains = Array.make n None in
  let joined = Array.make n false in
  let join i =
    match domains.(i) with
    | Some d when not joined.(i) ->
        joined.(i) <- true;
        Domain.join d
    | _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* On any exit — including a [decide] exception — stop and reap
         every outstanding domain before giving obs back.  Only slots
         with a live domain are cancelled: in lazy mode nothing is
         running, and the winner was already joined. *)
      Array.iteri
        (fun i s -> if domains.(i) <> None && not joined.(i) then Atomic.set s.cancel true)
        slots;
      for i = 0 to n - 1 do
        join i
      done;
      Obs.set_enabled obs_prev)
    (fun () ->
      if eager then
        Array.iteri (fun i s -> domains.(i) <- Some (Domain.spawn (fun () -> run_slot ~budget s))) slots;
      let i = ref 0 in
      while !winner = None && !i < n do
        let s = slots.(!i) in
        if eager then join !i else run_slot ~budget s;
        if decide !i (entry_of s) then winner := Some !i;
        incr i
      done);
  (* A worker exception is a genuine bug (solvers report exhaustion and
     cancellation through their results); surface the first one. *)
  Array.iter
    (fun s -> match s.verdict with Some (Error e) -> raise e | _ -> ())
    slots;
  let outcome =
    {
      winner = !winner;
      entries = Array.map entry_of slots;
      race_wall_s = Clock.now () -. t0;
      eager;
    }
  in
  emit_stats outcome;
  outcome
