(** Cost-scaling min-cost flow (Goldberg–Tarjan ε-relaxation with
    push/relabel), the algorithm family used by Firmament's fastest
    solver.  The paper's artifact runs several MCMF solvers in parallel
    and takes the fastest; this module provides the second algorithm for
    the same role (and for cross-checking — both must produce flows of
    identical cost).

    The solver works on integer costs and capacities.  To guarantee a
    feasible circulation on arbitrary instances, it routes any
    otherwise-unshippable supply over artificial arcs through one virtual
    node added to the graph; those arcs carry prohibitive cost, so they
    are used only when the instance itself is infeasible.  The virtual
    node and arcs remain in the graph after solving (flow 0 on feasible
    instances) — harmless for {!Verify} but callers comparing node
    counts should solve on a scratch copy. *)

type result = {
  shipped : int;  (** supply routed to real demands *)
  unshipped : int;  (** supply that needed the artificial arcs *)
  total_cost : int;  (** cost of the final flow, artificial arcs excluded *)
  phases : int;  (** ε-scaling phases executed *)
  pushes : int;
  relabels : int;
  elapsed_s : float;  (** monotonic wall-clock solve time ({!Prelude.Clock}) *)
  degraded : bool;
      (** the solve was stopped by its {!Budget} before completing.
          Unlike SSP, a cost-scaling run holds only a pseudoflow mid-run
          — nothing salvageable — so the abort resets the graph to the
          zero flow and reports everything unshipped. *)
  profile : Obs.Solver_profile.t;
      (** structured solve profile; per-stage timings are populated only
          when [Obs.enabled ()] held during the solve *)
}

(** [solve ?alpha ?budget ?ctl g] runs cost scaling with scale factor
    [alpha] (default 8).  Arc flows of [g] are left at the optimum.
    [budget] bounds the solve (checked at phase and discharge
    boundaries; pushes and relabels are the step currency); on
    exhaustion the flow is reset to zero and the result is flagged
    [degraded].  Without a budget the chaos harness never touches the
    solve.

    [ctl] takes precedence over [budget]: the solve uses this externally
    prepared {!Budget.state} (typically carrying a cancellation flag)
    and performs no chaos draws — the portfolio-race coordinator owns
    both; see {!Mcmf.solve} and docs/PARALLELISM.md.  Like SSP, the
    solve reads the obs flag once at entry and is safe to run on a
    racing domain. *)
val solve : ?alpha:int -> ?budget:Budget.t -> ?ctl:Budget.state -> Graph.t -> result
