(** Mutable flow-network representation with residual arcs.

    Nodes are dense integers [0 .. node_count-1].  Every call to [add_arc]
    creates a forward arc with the given capacity and cost plus its paired
    residual (reverse) arc with capacity 0 and negated cost; the pair
    occupies consecutive ids so [rev a = a lxor 1].  Solvers mutate flow
    in place; [reset_flow] restores the zero flow.

    Supplies follow the usual min-cost-flow convention: positive supply
    means the node injects flow, negative means it absorbs flow.  A
    feasible flow ships all supply to the demand nodes. *)

type t
type arc = int

val create : ?node_hint:int -> ?arc_hint:int -> unit -> t

(** [add_node t] allocates a fresh node and returns its id. *)
val add_node : t -> int

(** [add_nodes t n] allocates [n] fresh nodes, returning the first id. *)
val add_nodes : t -> int -> int

val node_count : t -> int

(** Number of forward arcs (residual pairs are not counted). *)
val arc_count : t -> int

(** [add_arc t ~src ~dst ~cap ~cost] adds a forward arc and its residual
    pair; returns the forward arc id.  [cap] must be non-negative. *)
val add_arc : t -> src:int -> dst:int -> cap:int -> cost:int -> arc

val set_supply : t -> int -> int -> unit
val add_supply : t -> int -> int -> unit
val supply : t -> int -> int
val total_positive_supply : t -> int

val src : t -> arc -> int
val dst : t -> arc -> int
val cost : t -> arc -> int

(** Original capacity of the arc (forward arcs only carry the user's
    capacity; residual arcs start at 0). *)
val capacity : t -> arc -> int

(** Flow currently assigned to a *forward* arc. *)
val flow : t -> arc -> int

(** Remaining capacity of an arc in the residual network. *)
val residual_cap : t -> arc -> int

(** [rev a] is the paired reverse arc. *)
val rev : arc -> arc

(** [is_forward a] iff [a] is a user-created forward arc. *)
val is_forward : arc -> bool

(** [push t a amount] sends [amount] units along arc [a] in the residual
    network, updating the pair.
    @raise Invalid_argument if [amount] exceeds the residual capacity. *)
val push : t -> arc -> int -> unit

(** Fault-injection hook: [corrupt_flow t a delta] shifts the recorded
    flow of forward arc [a] by [delta] {e without any validation} —
    residual capacities may go negative and conservation is deliberately
    broken at both endpoints.  Exists solely so the chaos harness
    ({!Chaos}) can hand {!Verify.check} a corrupted solution; never use
    it to build flows.
    @raise Invalid_argument if [a] is not a forward arc. *)
val corrupt_flow : t -> arc -> int -> unit

(** [copy t] is a deep, fully private snapshot of [t]: identical node
    and arc ids, supplies, costs, capacities and current flow, but no
    shared backing arrays — mutating one side (including solving, which
    moves residual capacities) never shows through to the other.  This
    is the immutability contract of the portfolio race
    (docs/PARALLELISM.md): the coordinator takes one [copy] per racing
    backend, hands each domain its own, and never touches the source
    graph while domains run. *)
val copy : t -> t

(** {2 In-place patching}

    Primitives used by the incremental network builder
    (lib/hire/flow_network.ml) to maintain a persistent graph across
    scheduling rounds without reallocating.  None of them allocate. *)

(** True iff the graph currently has at least one forward arc with a
    strictly negative cost.  Maintained exactly by {!add_arc},
    {!set_cost}, {!clear} and {!release}; solvers use it to skip the
    Bellman-Ford/SPFA potential bootstrap when all costs are
    non-negative. *)
val has_negative_cost : t -> bool

(** [set_cost t a c] rewrites the cost of forward arc [a] to [c] and its
    residual twin to [-c], in place.
    @raise Invalid_argument if [a] is not a live forward arc. *)
val set_cost : t -> arc -> int -> unit

(** [set_cap t a c] rewrites the capacity of forward arc [a] to [c],
    resetting the pair to zero flow ([residual_cap a = c], twin 0).
    @raise Invalid_argument if [a] is not a live forward arc or [c < 0]. *)
val set_cap : t -> arc -> int -> unit

(** [retire_node t v] detaches node [v]: zero supply, empty adjacency
    list.  Arcs {e into} [v] are untouched — callers must also zero the
    capacities of incoming arcs (or only retire nodes whose incoming
    arcs live in a suffix about to be {!release}d). *)
val retire_node : t -> int -> unit

(** Empty the graph, keeping the backing arrays for reuse. *)
val clear : t -> unit

(** A watermark capturing the graph state at a point in time, for
    prefix/suffix reuse: build the long-lived part, [mark], then per
    round add a transient suffix and [release] back to the mark. *)
type mark

val mark : t -> mark

(** [release t mk] truncates the graph back to the state captured by
    [mk]: node/arc counts, adjacency heads, supplies and the
    negative-cost counter are all restored.  Arc attributes (costs,
    capacities) of the surviving prefix are {e not} restored — patch
    those explicitly with {!set_cost}/{!set_cap}, and call
    {!reset_flows} to restore prefix capacities consumed by a solve.
    @raise Invalid_argument if the graph is behind the mark. *)
val release : t -> mark -> unit

(** [iter_out t v f] applies [f] to every residual arc (forward and
    reverse) leaving [v]. *)
val iter_out : t -> int -> (arc -> unit) -> unit

(** [fold_out t v init f] folds over residual arcs leaving [v]. *)
val fold_out : t -> int -> 'a -> ('a -> arc -> 'a) -> 'a

(** [iter_arcs t f] applies [f] to every forward arc. *)
val iter_arcs : t -> (arc -> unit) -> unit

(** Restore every arc to zero flow (capacities back to their original
    values), undoing prior solves in place. *)
val reset_flows : t -> unit

(** Alias for {!reset_flows} (historical name). *)
val reset_flow : t -> unit

(** {2 Touched-arc flow tracking (re-optimizing solves)}

    With tracking enabled, every flow mutation ({!push},
    {!corrupt_flow}) records its arc pair once, so undoing a solve
    costs time proportional to the arcs the solve actually used instead
    of the arena size.  The persistent network builder
    (lib/hire/flow_network.ml) turns this on for its long-lived graph;
    {!copy} snapshots never inherit it. *)

(** [set_flow_tracking t on] enables or disables touched-pair
    recording.  Disabling discards the pending record. *)
val set_flow_tracking : t -> bool -> unit

(** [reset_touched_flows t] restores exactly the arc pairs that carried
    flow since the last reset to their original capacities and returns
    how many pairs were restored.  Bit-identical in effect to
    {!reset_flows} as long as every mutation since the previous reset
    went through {!push}/{!corrupt_flow} (which the tracking
    intercepts).  Falls back to a full {!reset_flows} when tracking is
    off, returning {!arc_count}. *)
val reset_touched_flows : t -> int

(** Largest forward-arc cost seen since the last {!clear} — a monotone
    upper envelope ({!set_cost} never lowers it), used by the MCMF
    solver to decide whether the bucket-queue Dijkstra applies.  Purely
    a selection heuristic: it may overestimate after costs decrease,
    which only costs performance, never correctness. *)
val cost_ub : t -> int

(** Total cost of the current flow: sum over forward arcs of
    [flow * cost]. *)
val flow_cost : t -> int

(** Flow conservation check: for every node, outflow - inflow must equal
    its supply minus any unshipped residue at that node... more precisely,
    [conserves t] verifies outflow(v) - inflow(v) = supply(v) for all
    nodes when the instance has been solved to feasibility, and returns
    the first violating node otherwise. *)
val conserves : t -> (int, int) result

(** Human-readable dump for debugging small networks. *)
val pp : Format.formatter -> t -> unit
