(** Independent checks of a solved flow, used by the test suite
    ([test/test_flow.ml] runs them after every solver test and in the
    SSP-vs-cost-scaling cross-check).  These re-derive properties from
    first principles rather than trusting the solver's bookkeeping. *)

type violation =
  | Capacity_exceeded of Graph.arc
  | Negative_flow of Graph.arc
  | Conservation of int  (** node whose balance does not match its shipped supply *)
  | Negative_cycle of int list  (** node cycle with negative residual cost *)

val pp_violation : Format.formatter -> violation -> unit

(** [check g] verifies that the current flow on [g]:
    - respects arc capacities and non-negativity,
    - conserves flow at every node up to unshipped supply
      (outflow - inflow must equal supply at fully-shipped nodes and be
      between 0 and supply at partially shipped source nodes; dually for
      demands),
    - admits no negative-cost cycle in the residual network (i.e. the
      flow is min-cost for its value).

    Returns [Ok ()] or the first violation found. *)
val check : Graph.t -> (unit, violation) result

(** [optimal g] checks only the negative-residual-cycle condition. *)
val optimal : Graph.t -> (unit, violation) result
