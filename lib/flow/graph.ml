(* Forward-star adjacency with paired residual arcs.  Arc 2k is the k-th
   user arc, arc 2k+1 its residual twin.  All per-arc attributes live in
   growable parallel int arrays.

   The arena is designed for reuse across solver rounds: [clear] empties
   it without freeing, and [mark]/[release] snapshot and restore a
   prefix so a persistent caller (lib/hire/flow_network.ml) can keep a
   long-lived topology part and rebuild only the per-round suffix. *)

type arc = int

type t = {
  mutable n : int;                 (* node count *)
  mutable m : int;                 (* residual arc count = 2 * forward arcs *)
  mutable head : int array;        (* first outgoing residual arc per node, -1 if none *)
  mutable supply_arr : int array;
  mutable next : int array;        (* next residual arc in the forward star *)
  mutable to_ : int array;         (* arc destination *)
  mutable cap : int array;         (* remaining residual capacity *)
  mutable cost_arr : int array;
  mutable orig_cap : int array;    (* initial capacity, for flow/reset *)
  mutable n_negative : int;        (* forward arcs with cost < 0 *)
  (* Touched-pair tracking (re-optimizing solves, docs/PERFORMANCE.md):
     when [track] is on, every flow mutation records its arc pair once
     (deduped through [tflag], indexed by pair id = arc/2) so
     [reset_touched_flows] can undo a solve in time proportional to the
     arcs the solve actually moved flow on, not the arena size. *)
  mutable track : bool;
  mutable touched : int array;     (* recorded pair ids *)
  mutable n_touched : int;
  mutable tflag : Bytes.t;         (* pair id -> already recorded? *)
  mutable cost_ub : int;           (* max forward cost since [clear] *)
}

let create ?(node_hint = 16) ?(arc_hint = 64) () =
  let node_hint = max 1 node_hint and arc_hint = max 1 (2 * arc_hint) in
  {
    n = 0;
    m = 0;
    head = Array.make node_hint (-1);
    supply_arr = Array.make node_hint 0;
    next = Array.make arc_hint (-1);
    to_ = Array.make arc_hint 0;
    cap = Array.make arc_hint 0;
    cost_arr = Array.make arc_hint 0;
    orig_cap = Array.make arc_hint 0;
    n_negative = 0;
    track = false;
    touched = [||];
    n_touched = 0;
    tflag = Bytes.empty;
    cost_ub = 0;
  }

let grow_int_array arr cap fill =
  if Array.length arr >= cap then arr
  else begin
    let narr = Array.make cap fill in
    Array.blit arr 0 narr 0 (Array.length arr);
    narr
  end

(* The target capacity is computed once so all parallel arrays grow to
   the same size in one pass; doubling each independently would repeat
   the blits and let lengths drift apart. *)
let ensure_node_capacity t len =
  if Array.length t.head < len then begin
    let cap = max len (2 * Array.length t.head) in
    t.head <- grow_int_array t.head cap (-1);
    t.supply_arr <- grow_int_array t.supply_arr cap 0
  end

let ensure_arc_capacity t len =
  if Array.length t.next < len then begin
    let cap = max len (2 * Array.length t.next) in
    t.next <- grow_int_array t.next cap (-1);
    t.to_ <- grow_int_array t.to_ cap 0;
    t.cap <- grow_int_array t.cap cap 0;
    t.cost_arr <- grow_int_array t.cost_arr cap 0;
    t.orig_cap <- grow_int_array t.orig_cap cap 0
  end

let add_node t =
  ensure_node_capacity t (t.n + 1);
  let id = t.n in
  t.head.(id) <- -1;
  t.supply_arr.(id) <- 0;
  t.n <- t.n + 1;
  id

let add_nodes t count =
  if count <= 0 then invalid_arg "Graph.add_nodes: count must be positive";
  let first = add_node t in
  for _ = 2 to count do
    ignore (add_node t)
  done;
  first

let node_count t = t.n
let arc_count t = t.m / 2

let check_node t v name =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Graph.%s: bad node %d" name v)

let add_half t ~src ~dst ~cap ~cost =
  let a = t.m in
  ensure_arc_capacity t (a + 1);
  t.to_.(a) <- dst;
  t.cap.(a) <- cap;
  t.orig_cap.(a) <- cap;
  t.cost_arr.(a) <- cost;
  t.next.(a) <- t.head.(src);
  t.head.(src) <- a;
  t.m <- t.m + 1;
  a

let add_arc t ~src ~dst ~cap ~cost =
  check_node t src "add_arc";
  check_node t dst "add_arc";
  if cap < 0 then invalid_arg "Graph.add_arc: negative capacity";
  let fwd = add_half t ~src ~dst ~cap ~cost in
  let (_ : arc) = add_half t ~src:dst ~dst:src ~cap:0 ~cost:(-cost) in
  if cost < 0 then t.n_negative <- t.n_negative + 1;
  if cost > t.cost_ub then t.cost_ub <- cost;
  fwd

let set_supply t v s =
  check_node t v "set_supply";
  t.supply_arr.(v) <- s

let add_supply t v s =
  check_node t v "add_supply";
  t.supply_arr.(v) <- t.supply_arr.(v) + s

let supply t v =
  check_node t v "supply";
  t.supply_arr.(v)

let total_positive_supply t =
  let acc = ref 0 in
  for v = 0 to t.n - 1 do
    if t.supply_arr.(v) > 0 then acc := !acc + t.supply_arr.(v)
  done;
  !acc

let rev a = a lxor 1
let is_forward a = a land 1 = 0

(* ------------------------------------------------------------------ *)
(* Touched-pair tracking                                               *)
(* ------------------------------------------------------------------ *)

let clear_touched t =
  for i = 0 to t.n_touched - 1 do
    Bytes.unsafe_set t.tflag t.touched.(i) '\000'
  done;
  t.n_touched <- 0

let set_flow_tracking t on =
  if on && not t.track then begin
    t.track <- true;
    t.n_touched <- 0
  end
  else if (not on) && t.track then begin
    clear_touched t;
    t.track <- false
  end

(* Record the pair of arc [a] as flow-carrying, once.  The dedup flag
   bounds the list by the number of distinct pairs mutated since the
   last reset, so a sparse reset never costs more than a full one. *)
let record_touch t a =
  let p = a lsr 1 in
  if p >= Bytes.length t.tflag then begin
    let cap = max (p + 1) (max 1024 (2 * Bytes.length t.tflag)) in
    let nb = Bytes.make cap '\000' in
    Bytes.blit t.tflag 0 nb 0 (Bytes.length t.tflag);
    t.tflag <- nb
  end;
  if Bytes.unsafe_get t.tflag p = '\000' then begin
    Bytes.unsafe_set t.tflag p '\001';
    if t.n_touched = Array.length t.touched then begin
      let cap = max 256 (2 * t.n_touched) in
      let arr = Array.make cap 0 in
      Array.blit t.touched 0 arr 0 t.n_touched;
      t.touched <- arr
    end;
    t.touched.(t.n_touched) <- p;
    t.n_touched <- t.n_touched + 1
  end
let dst t a = t.to_.(a)
let src t a = t.to_.(rev a)
let cost t a = t.cost_arr.(a)
let capacity t a = t.orig_cap.(a)
let residual_cap t a = t.cap.(a)

let flow t a =
  if not (is_forward a) then invalid_arg "Graph.flow: not a forward arc";
  t.orig_cap.(a) - t.cap.(a)

let push t a amount =
  if amount < 0 || amount > t.cap.(a) then
    invalid_arg
      (Printf.sprintf "Graph.push: amount %d exceeds residual capacity %d on arc %d" amount
         t.cap.(a) a);
  if t.track then record_touch t a;
  t.cap.(a) <- t.cap.(a) - amount;
  t.cap.(rev a) <- t.cap.(rev a) + amount

let corrupt_flow t a delta =
  if not (is_forward a) then invalid_arg "Graph.corrupt_flow: not a forward arc";
  if t.track then record_touch t a;
  t.cap.(a) <- t.cap.(a) - delta;
  t.cap.(rev a) <- t.cap.(rev a) + delta

(* ------------------------------------------------------------------ *)
(* In-place patching (incremental network maintenance)                 *)
(* ------------------------------------------------------------------ *)

let has_negative_cost t = t.n_negative > 0

let set_cost t a c =
  if not (is_forward a) then invalid_arg "Graph.set_cost: not a forward arc";
  if a >= t.m then invalid_arg "Graph.set_cost: arc out of range";
  let old = t.cost_arr.(a) in
  if old <> c then begin
    if old < 0 then t.n_negative <- t.n_negative - 1;
    if c < 0 then t.n_negative <- t.n_negative + 1;
    if c > t.cost_ub then t.cost_ub <- c;
    t.cost_arr.(a) <- c;
    t.cost_arr.(rev a) <- -c
  end

let cost_ub t = t.cost_ub

let set_cap t a c =
  if not (is_forward a) then invalid_arg "Graph.set_cap: not a forward arc";
  if a >= t.m then invalid_arg "Graph.set_cap: arc out of range";
  if c < 0 then invalid_arg "Graph.set_cap: negative capacity";
  t.orig_cap.(a) <- c;
  t.cap.(a) <- c;
  t.cap.(rev a) <- 0

let retire_node t v =
  check_node t v "retire_node";
  t.supply_arr.(v) <- 0;
  t.head.(v) <- -1

let clear t =
  t.n <- 0;
  t.m <- 0;
  t.n_negative <- 0;
  t.cost_ub <- 0;
  clear_touched t

type mark = {
  mk_n : int;
  mk_m : int;
  mk_head : int array;
  mk_supply : int array;
  mk_n_negative : int;
}

(* The head-array prefix must be part of the snapshot: residual twins of
   later (suffix) arcs are linked into the adjacency lists of earlier
   nodes, so truncating [m] alone would leave dangling arc ids at the
   front of those lists. *)
let mark t =
  {
    mk_n = t.n;
    mk_m = t.m;
    mk_head = Array.sub t.head 0 t.n;
    mk_supply = Array.sub t.supply_arr 0 t.n;
    mk_n_negative = t.n_negative;
  }

let release t mk =
  if mk.mk_n > t.n || mk.mk_m > t.m then
    invalid_arg "Graph.release: mark does not precede the current state";
  t.n <- mk.mk_n;
  t.m <- mk.mk_m;
  Array.blit mk.mk_head 0 t.head 0 mk.mk_n;
  Array.blit mk.mk_supply 0 t.supply_arr 0 mk.mk_n;
  t.n_negative <- mk.mk_n_negative

(* Deep snapshot: same node/arc ids, fully private arrays.  Arrays are
   trimmed to the live prefix so a snapshot of a small round taken from
   a large reused arena stays small; mutating either copy (including
   solving on it, which moves residual capacities) never shows through
   to the other. *)
let copy t =
  {
    n = t.n;
    m = t.m;
    head = Array.sub t.head 0 t.n;
    supply_arr = Array.sub t.supply_arr 0 t.n;
    next = Array.sub t.next 0 t.m;
    to_ = Array.sub t.to_ 0 t.m;
    cap = Array.sub t.cap 0 t.m;
    cost_arr = Array.sub t.cost_arr 0 t.m;
    orig_cap = Array.sub t.orig_cap 0 t.m;
    n_negative = t.n_negative;
    (* Tracking is a property of the persistent arena, not of private
       snapshots (which are solved and discarded). *)
    track = false;
    touched = [||];
    n_touched = 0;
    tflag = Bytes.empty;
    cost_ub = t.cost_ub;
  }

let iter_out t v f =
  check_node t v "iter_out";
  let a = ref t.head.(v) in
  while !a >= 0 do
    f !a;
    a := t.next.(!a)
  done

let fold_out t v init f =
  let acc = ref init in
  iter_out t v (fun a -> acc := f !acc a);
  !acc

let iter_arcs t f =
  let a = ref 0 in
  while !a < t.m do
    f !a;
    a := !a + 2
  done

let reset_flows t =
  for a = 0 to t.m - 1 do
    t.cap.(a) <- t.orig_cap.(a)
  done;
  (* A full reset leaves no flow anywhere; start the next recording
     epoch empty so sparse resets stay exact. *)
  clear_touched t

let reset_flow = reset_flows

let reset_touched_flows t =
  if not t.track then begin
    reset_flows t;
    arc_count t
  end
  else begin
    let restored = ref 0 in
    for i = 0 to t.n_touched - 1 do
      let p = t.touched.(i) in
      Bytes.unsafe_set t.tflag p '\000';
      let a = p * 2 in
      (* Pairs recorded in a suffix that has since been released fall
         beyond [m]; their slots are fully re-initialized by the next
         [add_arc], so only the flag needs clearing. *)
      if a < t.m then begin
        t.cap.(a) <- t.orig_cap.(a);
        t.cap.(a + 1) <- t.orig_cap.(a + 1);
        incr restored
      end
    done;
    t.n_touched <- 0;
    !restored
  end

let flow_cost t =
  let acc = ref 0 in
  iter_arcs t (fun a -> acc := !acc + (flow t a * t.cost_arr.(a)));
  !acc

let conserves t =
  let balance = Array.make t.n 0 in
  iter_arcs t (fun a ->
      let f = flow t a in
      balance.(src t a) <- balance.(src t a) + f;
      balance.(dst t a) <- balance.(dst t a) - f);
  let bad = ref None in
  for v = t.n - 1 downto 0 do
    if balance.(v) <> t.supply_arr.(v) then bad := Some v
  done;
  match !bad with None -> Ok t.n | Some v -> Error v

let pp fmt t =
  Format.fprintf fmt "flow graph: %d nodes, %d arcs@." t.n (arc_count t);
  iter_arcs t (fun a ->
      Format.fprintf fmt "  %d -> %d  cap=%d cost=%d flow=%d@." (src t a) (dst t a)
        (capacity t a) (cost t a) (flow t a))
