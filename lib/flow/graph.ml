(* Forward-star adjacency with paired residual arcs.  Arc 2k is the k-th
   user arc, arc 2k+1 its residual twin.  All per-arc attributes live in
   growable parallel int arrays. *)

type arc = int

type t = {
  mutable n : int;                 (* node count *)
  mutable m : int;                 (* residual arc count = 2 * forward arcs *)
  mutable head : int array;        (* first outgoing residual arc per node, -1 if none *)
  mutable supply_arr : int array;
  mutable next : int array;        (* next residual arc in the forward star *)
  mutable to_ : int array;         (* arc destination *)
  mutable cap : int array;         (* remaining residual capacity *)
  mutable cost_arr : int array;
  mutable orig_cap : int array;    (* initial capacity, for flow/reset *)
}

let create ?(node_hint = 16) ?(arc_hint = 64) () =
  let node_hint = max 1 node_hint and arc_hint = max 1 (2 * arc_hint) in
  {
    n = 0;
    m = 0;
    head = Array.make node_hint (-1);
    supply_arr = Array.make node_hint 0;
    next = Array.make arc_hint (-1);
    to_ = Array.make arc_hint 0;
    cap = Array.make arc_hint 0;
    cost_arr = Array.make arc_hint 0;
    orig_cap = Array.make arc_hint 0;
  }

let grow_int_array arr len fill =
  if Array.length arr >= len then arr
  else begin
    let narr = Array.make (max len (2 * Array.length arr)) fill in
    Array.blit arr 0 narr 0 (Array.length arr);
    narr
  end

let ensure_node_capacity t len =
  t.head <- grow_int_array t.head len (-1);
  t.supply_arr <- grow_int_array t.supply_arr len 0

let ensure_arc_capacity t len =
  t.next <- grow_int_array t.next len (-1);
  t.to_ <- grow_int_array t.to_ len 0;
  t.cap <- grow_int_array t.cap len 0;
  t.cost_arr <- grow_int_array t.cost_arr len 0;
  t.orig_cap <- grow_int_array t.orig_cap len 0

let add_node t =
  ensure_node_capacity t (t.n + 1);
  let id = t.n in
  t.head.(id) <- -1;
  t.supply_arr.(id) <- 0;
  t.n <- t.n + 1;
  id

let add_nodes t count =
  if count <= 0 then invalid_arg "Graph.add_nodes: count must be positive";
  let first = add_node t in
  for _ = 2 to count do
    ignore (add_node t)
  done;
  first

let node_count t = t.n
let arc_count t = t.m / 2

let check_node t v name =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Graph.%s: bad node %d" name v)

let add_half t ~src ~dst ~cap ~cost =
  let a = t.m in
  ensure_arc_capacity t (a + 1);
  t.to_.(a) <- dst;
  t.cap.(a) <- cap;
  t.orig_cap.(a) <- cap;
  t.cost_arr.(a) <- cost;
  t.next.(a) <- t.head.(src);
  t.head.(src) <- a;
  t.m <- t.m + 1;
  a

let add_arc t ~src ~dst ~cap ~cost =
  check_node t src "add_arc";
  check_node t dst "add_arc";
  if cap < 0 then invalid_arg "Graph.add_arc: negative capacity";
  let fwd = add_half t ~src ~dst ~cap ~cost in
  let (_ : arc) = add_half t ~src:dst ~dst:src ~cap:0 ~cost:(-cost) in
  fwd

let set_supply t v s =
  check_node t v "set_supply";
  t.supply_arr.(v) <- s

let add_supply t v s =
  check_node t v "add_supply";
  t.supply_arr.(v) <- t.supply_arr.(v) + s

let supply t v =
  check_node t v "supply";
  t.supply_arr.(v)

let total_positive_supply t =
  let acc = ref 0 in
  for v = 0 to t.n - 1 do
    if t.supply_arr.(v) > 0 then acc := !acc + t.supply_arr.(v)
  done;
  !acc

let rev a = a lxor 1
let is_forward a = a land 1 = 0
let dst t a = t.to_.(a)
let src t a = t.to_.(rev a)
let cost t a = t.cost_arr.(a)
let capacity t a = t.orig_cap.(a)
let residual_cap t a = t.cap.(a)

let flow t a =
  if not (is_forward a) then invalid_arg "Graph.flow: not a forward arc";
  t.orig_cap.(a) - t.cap.(a)

let push t a amount =
  if amount < 0 || amount > t.cap.(a) then
    invalid_arg
      (Printf.sprintf "Graph.push: amount %d exceeds residual capacity %d on arc %d" amount
         t.cap.(a) a);
  t.cap.(a) <- t.cap.(a) - amount;
  t.cap.(rev a) <- t.cap.(rev a) + amount

let corrupt_flow t a delta =
  if not (is_forward a) then invalid_arg "Graph.corrupt_flow: not a forward arc";
  t.cap.(a) <- t.cap.(a) - delta;
  t.cap.(rev a) <- t.cap.(rev a) + delta

let iter_out t v f =
  check_node t v "iter_out";
  let a = ref t.head.(v) in
  while !a >= 0 do
    f !a;
    a := t.next.(!a)
  done

let fold_out t v init f =
  let acc = ref init in
  iter_out t v (fun a -> acc := f !acc a);
  !acc

let iter_arcs t f =
  let a = ref 0 in
  while !a < t.m do
    f !a;
    a := !a + 2
  done

let reset_flow t =
  for a = 0 to t.m - 1 do
    t.cap.(a) <- t.orig_cap.(a)
  done

let flow_cost t =
  let acc = ref 0 in
  iter_arcs t (fun a -> acc := !acc + (flow t a * t.cost_arr.(a)));
  !acc

let conserves t =
  let balance = Array.make t.n 0 in
  iter_arcs t (fun a ->
      let f = flow t a in
      balance.(src t a) <- balance.(src t a) + f;
      balance.(dst t a) <- balance.(dst t a) - f);
  let bad = ref None in
  for v = t.n - 1 downto 0 do
    if balance.(v) <> t.supply_arr.(v) then bad := Some v
  done;
  match !bad with None -> Ok t.n | Some v -> Error v

let pp fmt t =
  Format.fprintf fmt "flow graph: %d nodes, %d arcs@." t.n (arc_count t);
  iter_arcs t (fun a ->
      Format.fprintf fmt "  %d -> %d  cap=%d cost=%d flow=%d@." (src t a) (dst t a)
        (capacity t a) (cost t a) (flow t a))
