(** Parallel solver portfolio: race MCMF backends on OCaml 5 domains.

    The HIRE artifact races several Firmament MCMF solvers and uses the
    first finisher (PAPER.md §2).  This module supplies the mechanism:
    each {!job} gets a {e private deep snapshot} of the flow network
    ({!Graph.copy}) and runs on its own domain, with a per-job
    {!Budget.state} carrying an atomic cancellation flag; losing jobs
    are told to stop through that flag and observe it at their next
    budget check.

    Winner selection is {e deterministic-priority}, not first-finisher:
    the coordinator consults finished jobs in the listed order and the
    [decide] callback applies the same accept/reject procedure the
    serial fallback chain uses, so the raced outputs are identical to
    the serial chain's for any finishing order or cancellation timing —
    only the latency changes (from the {e sum} of the attempted rungs'
    times to roughly their {e max}).  The full architecture —
    domain topology, snapshot immutability contract, cancellation
    protocol, obs quiescence, determinism guarantees — is documented in
    docs/PARALLELISM.md.

    Obs note: the race quiesces the global obs switch from before the
    first spawn until after the last join (worker domains read the flag
    once at solve entry and must never emit).  [decide] therefore runs
    with obs disabled and must not try to emit; callers re-emit
    winner-side accounting after {!race} returns.  {!race} itself emits
    [flow.portfolio.*] win/loss/cancel counters and race-latency
    histograms once obs is restored. *)

(** One racing backend.  [run ~ctl g] must solve [g] — the job's private
    snapshot — honouring [ctl] as its budget state (pass it as the
    solver's [?ctl] parameter so cancellation and budget caps are
    polled at step granularity), and must not touch any global mutable
    state (obs, chaos, shared scratch). *)
type job = { name : string; run : ctl:Budget.state -> Graph.t -> Mcmf.result }

(** Post-race view of one job, in input order. *)
type entry = {
  name : string;
  ran : bool;  (** [false] only in lazy mode for jobs after the winner *)
  result : Mcmf.result option;  (** [None] if the job never ran or raised *)
  graph : Graph.t;
      (** the job's private snapshot, holding whatever flow it built *)
  ctl : Budget.state option;
      (** the job's budget state; [Budget.check] gives the sticky
          exhaustion verdict ([Cancelled] for stopped losers) *)
  wall_s : float;  (** job wall time as measured around its [run] *)
  cancel_requested : bool;  (** the coordinator set its cancel flag *)
}

type outcome = {
  winner : int option;  (** index of the first accepted job *)
  entries : entry array;
  race_wall_s : float;  (** spawn of the first to join of the last *)
  eager : bool;  (** the spawn policy actually used *)
}

(** [true] when the host has at least two cores
    ([Domain.recommended_domain_count]): the default spawn policy. *)
val default_eager : unit -> bool

(** [race ?eager ~budget ~source ~decide jobs] runs the portfolio.

    With [eager] (default {!default_eager}): spawn every job upfront on
    its own domain, then join and [decide] them in listed
    (priority) order; at the first acceptance, set the remaining jobs'
    cancellation flags and join them.  Without [eager] (single-core
    hosts): run jobs inline in listed order, stopping at the first
    acceptance — same decisions, serial cost, and jobs after the winner
    never run ([ran = false]).

    [budget] is started per job on the job's own domain (so wall caps
    measure the job's real start).  [decide i entry] is called on the
    coordinator, in priority order, with obs quiesced; it must be
    obs-silent and deterministic given the entry.  Every spawned domain
    is joined before [race] returns, even when [decide] raises.

    @raise Invalid_argument on an empty job list; worker exceptions are
    re-raised on the coordinator after all joins. *)
val race :
  ?eager:bool ->
  budget:Budget.t ->
  source:Graph.t ->
  decide:(int -> entry -> bool) ->
  job list ->
  outcome
