(** Parallel, resumable experiment-sweep runner.

    Executes a list of cells as a pool of isolated worker processes
    ({!Pool}: [Unix.fork], one child per cell, results marshalled back
    over a pipe) — or, with [~mode:Pool.Domains], as a fixed pool of
    OCaml 5 domains sharing this process (docs/PARALLELISM.md) — behind
    an on-disk result cache ({!Cache}) keyed by a content hash of each
    cell's config.  Guarantees, in order of importance:

    - {b determinism} — outcomes are returned in input order and carry
      pure marshalled values, so a [~jobs:4] run is byte-identical to a
      sequential one;
    - {b resumability} — with a cache, finished cells are loaded from
      disk and only missing ones execute, so an interrupted sweep
      restarted over the same directory completes from where it died
      and unchanged cells are free on re-run;
    - {b robustness} — a cell that crashes, raises, or exceeds its
      wall-clock budget is retried up to a bound and then reported as a
      structured {!Pool.reason} without aborting the remaining cells.

    Progress/throughput counters land in the {!Obs} registry when
    instrumentation is on.  Architecture notes: [docs/RUNNER.md]. *)

module Cache = Cache
module Pool = Pool

(** Result of one cell, in input order.  [from_cache] outcomes have
    [attempts = 0] and [wall_s = 0.]. *)
type 'b outcome = {
  key : string;
  result : ('b, Pool.reason) result;
  attempts : int;
  wall_s : float;
  from_cache : bool;
}

type stats = {
  total : int;
  executed : int;  (** cells evaluated by a worker this run *)
  cached : int;  (** cells served from the on-disk cache *)
  failed : int;  (** cells whose retry budget ran out *)
  retries : int;  (** extra attempts across all executed cells *)
  wall_s : float;  (** wall-clock of the whole [run] call *)
}

let pp_stats fmt s =
  Format.fprintf fmt "%d cells: %d executed, %d cached, %d failed, %d retries, %.1fs"
    s.total s.executed s.cached s.failed s.retries s.wall_s

let obs_account stats =
  if Obs.enabled () then begin
    let c name = Obs.Registry.counter ("runner." ^ name) in
    Obs.Registry.incr ~by:stats.executed (c "cells_executed");
    Obs.Registry.incr ~by:stats.cached (c "cells_cached");
    Obs.Registry.incr ~by:stats.failed (c "cells_failed");
    Obs.Registry.incr ~by:stats.retries (c "retries")
  end

let run ?(jobs = 1) ?timeout ?(retries = 1) ?cache ?(resume = true) ?(isolate = true) ?mode
    ?label ?(log = ignore) ~key ~f items =
  let t0 = Prelude.Clock.now () in
  let keyed = List.map (fun item -> (item, key item)) items in
  (* Resolve cache hits first; only the misses go to the pool. *)
  let slots =
    List.map
      (fun (item, k) ->
        match cache with
        | Some c when resume -> (
            match Cache.load c k with
            | Some v ->
                ( (item, k),
                  Some { key = k; result = Ok v; attempts = 0; wall_s = 0.; from_cache = true }
                )
            | None -> ((item, k), None))
        | _ -> ((item, k), None))
      keyed
  in
  let to_run = List.filter_map (fun (ik, hit) -> if hit = None then Some ik else None) slots in
  let n_cached = List.length slots - List.length to_run in
  if n_cached > 0 then
    log (Printf.sprintf "[runner] %d/%d cells cached, %d to run" n_cached (List.length slots)
           (List.length to_run));
  let pool_label =
    match label with Some l -> Some (fun (item, _k) -> l item) | None -> None
  in
  let ran =
    Pool.map ~jobs ?timeout ~retries ~isolate ?mode ?label:pool_label ~log
      ~f:(fun (item, _k) -> f item)
      to_run
  in
  (* Persist fresh successes so a later run (or a restart after a crash
     mid-sweep) finds them. *)
  (match cache with
  | Some c ->
      List.iter2
        (fun (_item, k) (cell : _ Pool.cell) ->
          match cell.result with Ok v -> Cache.store c k v | Error _ -> ())
        to_run ran
  | None -> ());
  (* Reassemble in input order. *)
  let ran = ref ran in
  let outcomes =
    List.map
      (fun ((_item, k), hit) ->
        match hit with
        | Some o -> o
        | None ->
            let (cell : _ Pool.cell), rest =
              match !ran with [] -> assert false | c :: rest -> (c, rest)
            in
            ran := rest;
            {
              key = k;
              result = cell.result;
              attempts = cell.attempts;
              wall_s = cell.wall_s;
              from_cache = false;
            })
      slots
  in
  let stats =
    List.fold_left
      (fun acc o ->
        {
          acc with
          executed = (acc.executed + if o.from_cache then 0 else 1);
          cached = (acc.cached + if o.from_cache then 1 else 0);
          failed = (acc.failed + match o.result with Error _ -> 1 | Ok _ -> 0);
          retries = acc.retries + max 0 (o.attempts - 1);
        })
      {
        total = List.length outcomes;
        executed = 0;
        cached = 0;
        failed = 0;
        retries = 0;
        wall_s = 0.;
      }
      outcomes
  in
  let stats = { stats with wall_s = Prelude.Clock.now () -. t0 } in
  obs_account stats;
  if Obs.enabled () then
    List.iter
      (fun o ->
        if not o.from_cache then
          Obs.Histogram.observe (Obs.Registry.histogram "runner.cell_wall_s") o.wall_s)
      outcomes;
  log (Format.asprintf "[runner] done: %a" pp_stats stats);
  (outcomes, stats)
