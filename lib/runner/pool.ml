module Clock = Prelude.Clock

type reason =
  | Timed_out of float
  | Crashed of string
  | Child_error of string

let reason_to_string = function
  | Timed_out budget -> Printf.sprintf "timed out after %.1fs" budget
  | Crashed msg -> "crashed: " ^ msg
  | Child_error msg -> "error: " ^ msg

type 'b cell = { result : ('b, reason) result; attempts : int; wall_s : float }

(* ------------------------------------------------------------------ *)
(* Child protocol                                                     *)
(* ------------------------------------------------------------------ *)

(* The child writes exactly one marshalled [('b, string) result] to its
   pipe and [_exit]s (bypassing at_exit so inherited buffered channels
   are not flushed twice).  The parent reads until EOF, reaps the child,
   and only trusts the payload when it is complete and consistent with
   the exit status. *)

let rec waitpid_retry pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

type running = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  idx : int;
  attempt : int;
  started : float;
  deadline : float option;
}

let spawn ~f ~timeout item idx attempt =
  (* Anything buffered on inherited channels would be flushed by both
     processes; empty the buffers before forking. *)
  flush stdout;
  flush stderr;
  let r, w = Unix.pipe ~cloexec:false () in
  let fork () =
    (* A failed fork (EAGAIN under process pressure) must not leak the
       pipe: close both ends before re-raising. *)
    try Unix.fork ()
    with e ->
      Unix.close r;
      Unix.close w;
      raise e
  in
  match fork () with
  | 0 ->
      Unix.close r;
      let result = (try Ok (f item) with e -> Error (Printexc.to_string e)) in
      let code = match result with Ok _ -> 0 | Error _ -> 1 in
      (try
         let oc = Unix.out_channel_of_descr w in
         Marshal.to_channel oc (result : (_, string) result) [];
         flush oc
       with _ -> ());
      Unix._exit code
  | pid ->
      Unix.close w;
      let now = Clock.now () in
      {
        pid;
        fd = r;
        buf = Buffer.create 4096;
        idx;
        attempt;
        started = now;
        deadline = Option.map (fun t -> now +. t) timeout;
      }

let decode_payload (r : running) status : ('b, reason) result =
  let payload () : ('b, string) result option =
    try Some (Marshal.from_string (Buffer.contents r.buf) 0) with _ -> None
  in
  match status with
  | Unix.WEXITED 0 -> (
      match payload () with
      | Some (Ok v) -> Ok v
      | Some (Error msg) -> Error (Child_error msg)
      | None -> Error (Crashed "exit 0 with truncated result"))
  | Unix.WEXITED 1 -> (
      match payload () with
      | Some (Error msg) -> Error (Child_error msg)
      | Some (Ok _) | None -> Error (Crashed "exit 1"))
  | Unix.WEXITED code -> Error (Crashed (Printf.sprintf "exit %d" code))
  | Unix.WSIGNALED sg -> Error (Crashed (Printf.sprintf "killed by signal %d" sg))
  | Unix.WSTOPPED sg -> Error (Crashed (Printf.sprintf "stopped by signal %d" sg))

(* ------------------------------------------------------------------ *)
(* Parent scheduling loop                                             *)
(* ------------------------------------------------------------------ *)

let map_forked ~jobs ~timeout ~retries ~label ~log ~f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results : 'b cell option array = Array.make n None in
  let max_attempts = 1 + max 0 retries in
  let pending = Queue.create () in
  Array.iteri (fun i _ -> Queue.add (i, 1) pending) items;
  let running = ref [] in
  let done_count = ref 0 in
  let settle (r : running) result wall_s =
    let name = label r.idx items.(r.idx) in
    match result with
    | Ok _ ->
        incr done_count;
        results.(r.idx) <- Some { result; attempts = r.attempt; wall_s };
        log
          (Printf.sprintf "[runner] (%d/%d) ok   %s  %.1fs%s" !done_count n name wall_s
             (if r.attempt > 1 then Printf.sprintf " (attempt %d)" r.attempt else ""))
    | Error reason ->
        if r.attempt < max_attempts then begin
          log
            (Printf.sprintf "[runner] retry %s after attempt %d/%d: %s" name r.attempt
               max_attempts (reason_to_string reason));
          Queue.add (r.idx, r.attempt + 1) pending
        end
        else begin
          incr done_count;
          results.(r.idx) <- Some { result; attempts = r.attempt; wall_s };
          log
            (Printf.sprintf "[runner] (%d/%d) FAIL %s after %d attempt(s): %s" !done_count
               n name r.attempt (reason_to_string reason))
        end
  in
  let rec read_retry fd bytes =
    try Unix.read fd bytes 0 (Bytes.length bytes)
    with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd bytes
  in
  let chunk = Bytes.create 65536 in
  (* If the parent loop dies (out of memory, a signal-raised exception,
     a bug), the still-running children and their pipe fds must not
     outlive it as zombies/leaks. *)
  let reap_survivors () =
    List.iter
      (fun r ->
        (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (waitpid_retry r.pid) with Unix.Unix_error _ -> ());
        try Unix.close r.fd with Unix.Unix_error _ -> ())
      !running;
    running := []
  in
  Fun.protect ~finally:reap_survivors @@ fun () ->
  while (not (Queue.is_empty pending)) || !running <> [] do
    while (not (Queue.is_empty pending)) && List.length !running < jobs do
      let idx, attempt = Queue.pop pending in
      running := spawn ~f ~timeout items.(idx) idx attempt :: !running
    done;
    let now = Clock.now () in
    let select_timeout =
      List.fold_left
        (fun acc r ->
          match r.deadline with
          | Some d -> Float.min acc (Float.max 0.0 (d -. now))
          | None -> acc)
        infinity !running
    in
    let fds = List.map (fun r -> r.fd) !running in
    let readable, _, _ =
      try Unix.select fds [] [] (if select_timeout = infinity then -1.0 else select_timeout)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        let r = List.find (fun r -> r.fd = fd) !running in
        let k = read_retry fd chunk in
        if k > 0 then Buffer.add_subbytes r.buf chunk 0 k
        else begin
          (* EOF: the child has closed its end and is exiting. *)
          running := List.filter (fun x -> x.pid <> r.pid) !running;
          Unix.close fd;
          let status = waitpid_retry r.pid in
          settle r (decode_payload r status) (Clock.now () -. r.started)
        end)
      readable;
    let now = Clock.now () in
    let expired, alive =
      List.partition
        (fun r -> match r.deadline with Some d -> now >= d | None -> false)
        !running
    in
    running := alive;
    List.iter
      (fun r ->
        (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (waitpid_retry r.pid);
        Unix.close r.fd;
        settle r (Error (Timed_out (Option.get r.deadline -. r.started))) (now -. r.started))
      expired
  done;
  Array.to_list (Array.map Option.get results)

(* In-process fallback: same retry semantics, no isolation and therefore
   no enforceable timeout.  Used when the caller needs child-side
   instrumentation (tracing, registry counters) to land in its own
   process, and as the no-fork escape hatch. *)
let map_inline ~retries ~label ~log ~f items =
  let n = List.length items in
  let max_attempts = 1 + max 0 retries in
  List.mapi
    (fun i item ->
      let name = label i item in
      let rec attempt k =
        let t0 = Clock.now () in
        match f item with
        | v ->
            let wall_s = Clock.now () -. t0 in
            log (Printf.sprintf "[runner] (%d/%d) ok   %s  %.1fs" (i + 1) n name wall_s);
            { result = Ok v; attempts = k; wall_s }
        | exception e ->
            let wall_s = Clock.now () -. t0 in
            let msg = Printexc.to_string e in
            if k < max_attempts then begin
              log
                (Printf.sprintf "[runner] retry %s after attempt %d/%d: error: %s" name k
                   max_attempts msg);
              attempt (k + 1)
            end
            else begin
              log
                (Printf.sprintf "[runner] (%d/%d) FAIL %s after %d attempt(s): error: %s"
                   (i + 1) n name k msg);
              { result = Error (Child_error msg); attempts = k; wall_s }
            end
      in
      attempt 1)
    items

(* ------------------------------------------------------------------ *)
(* Domain-based pool                                                   *)
(* ------------------------------------------------------------------ *)

(* One OCaml 5 domain per worker, pulling cell indices off a shared
   atomic counter until it runs dry.  Cells share the process and the
   runtime — no fork, no marshalling, results stay on the major heap —
   which is the cheap mode for many small cells on a multicore host.
   The flip side: a cell cannot be SIGKILLed, so per-attempt timeouts
   are not enforceable (ignored, as in [map_inline]), a diverging cell
   hangs the pool, and [f] must not touch process-global mutable state
   (the obs registry and the chaos harness are global: run domain-mode
   sweeps with obs off and no HIRE_CHAOS — docs/PARALLELISM.md).

   Each result slot is written by exactly one domain (the one that
   pulled its index) and read by the coordinator only after joining
   every worker, so the slot array needs no lock; the log callback is
   shared and serialized by a mutex. *)
let map_domains ~jobs ~retries ~label ~log ~f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results : 'b cell option array = Array.make n None in
  let max_attempts = 1 + max 0 retries in
  let next = Atomic.make 0 in
  let done_count = Atomic.make 0 in
  let log_mutex = Mutex.create () in
  let log line =
    Mutex.lock log_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock log_mutex) (fun () -> log line)
  in
  let worker () =
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue_ := false
      else begin
        let item = items.(i) in
        let name = label i item in
        let rec attempt k =
          let t0 = Clock.now () in
          match f item with
          | v ->
              let wall_s = Clock.now () -. t0 in
              let d = 1 + Atomic.fetch_and_add done_count 1 in
              results.(i) <- Some { result = Ok v; attempts = k; wall_s };
              log
                (Printf.sprintf "[runner] (%d/%d) ok   %s  %.1fs%s" d n name wall_s
                   (if k > 1 then Printf.sprintf " (attempt %d)" k else ""))
          | exception e ->
              let msg = Printexc.to_string e in
              if k < max_attempts then begin
                log
                  (Printf.sprintf "[runner] retry %s after attempt %d/%d: error: %s" name k
                     max_attempts msg);
                attempt (k + 1)
              end
              else begin
                let wall_s = Clock.now () -. t0 in
                let d = 1 + Atomic.fetch_and_add done_count 1 in
                results.(i) <- Some { result = Error (Child_error msg); attempts = k; wall_s };
                log
                  (Printf.sprintf "[runner] (%d/%d) FAIL %s after %d attempt(s): error: %s" d
                     n name k msg)
              end
        in
        attempt 1
      end
    done
  in
  let workers = max 1 (min jobs n) in
  let domains = Array.init workers (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Array.to_list (Array.map Option.get results)

type mode = Fork | Domains | Inline

let map ?(jobs = 1) ?timeout ?(retries = 1) ?(isolate = true) ?mode ?label ?(log = ignore)
    ~f items =
  let jobs = max 1 jobs in
  let label =
    match label with
    | Some l -> fun _ item -> l item
    | None -> fun i _ -> Printf.sprintf "cell %d" i
  in
  let mode = match mode with Some m -> m | None -> if isolate then Fork else Inline in
  match mode with
  | Fork -> map_forked ~jobs ~timeout ~retries ~label ~log ~f items
  | Domains -> map_domains ~jobs ~retries ~label ~log ~f items
  | Inline -> map_inline ~retries ~label ~log ~f items
