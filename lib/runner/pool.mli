(** Fork-based worker pool: one child process per cell.

    Each item is evaluated by [f] inside a forked child; the result is
    marshalled back to the parent over a pipe.  Isolation buys three
    things a thread pool cannot give an OCaml simulation sweep: cells
    run on all cores without sharing a runtime, a crashing or diverging
    cell cannot take down the sweep, and a wall-clock timeout can be
    enforced with [SIGKILL].

    Determinism: results are returned {e in input order} regardless of
    completion order, and a cell's result is a pure marshalled value, so
    [map ~jobs:4] and [map ~jobs:1] return identical lists. *)

(** Why a cell's final attempt did not produce a value. *)
type reason =
  | Timed_out of float  (** exceeded the per-cell wall-clock budget (s) *)
  | Crashed of string
      (** the child died without a payload: killed by a signal, nonzero
          exit, or a truncated/unreadable result *)
  | Child_error of string  (** [f] raised; carries [Printexc.to_string] *)

val reason_to_string : reason -> string

(** Outcome of one cell after retries: the final attempt's result, how
    many attempts were made (1 = no retry), and the wall-clock seconds
    of the final attempt. *)
type 'b cell = { result : ('b, reason) result; attempts : int; wall_s : float }

(** How cells are evaluated (docs/PARALLELISM.md, docs/RUNNER.md).

    - [Fork] (the default): one forked child process per cell, results
      marshalled back over a pipe.  Full isolation: crashes are
      contained and timeouts enforced with [SIGKILL].
    - [Domains]: a fixed pool of OCaml 5 domains pulling cells off a
      shared atomic counter inside {e this} process.  No fork or
      marshalling cost and shared-memory parallelism on multicore, but
      no isolation: timeouts are ignored, a diverging cell hangs the
      pool, and [f] must not touch process-global mutable state — run
      with obs off and without [HIRE_CHAOS].
    - [Inline]: sequential in-process evaluation (the no-fork escape
      hatch; timeouts ignored). *)
type mode = Fork | Domains | Inline

(** [map ~f items] runs [f] on every item.

    @param jobs concurrent worker processes (default 1; clamped to >= 1).
    @param timeout per-attempt wall-clock budget in seconds; on expiry
      the child is SIGKILLed and the attempt fails with {!Timed_out}.
      Default: no timeout.
    @param retries extra attempts after a failed one (default 1); after
      [1 + retries] failures the cell settles on a structured failure —
      other cells are unaffected.
    @param isolate [false] runs every cell in-process (no fork): used
      when per-process instrumentation must accumulate in the caller.
      Timeouts are not enforceable in-process and are ignored; a raising
      [f] still yields {!Child_error}.  Default [true].  Kept as the
      historical boolean spelling of [mode]; [mode], when given, wins.
    @param mode evaluation strategy ({!mode}); default [Fork] when
      [isolate], [Inline] otherwise.
    @param label used in [log] lines (default: the item's index).
    @param log per-cell progress sink (default: silent).  In [Domains]
      mode it is called from worker domains, serialized by a mutex. *)
val map :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?isolate:bool ->
  ?mode:mode ->
  ?label:('a -> string) ->
  ?log:(string -> unit) ->
  f:('a -> 'b) ->
  'a list ->
  'b cell list
