(** On-disk result cache for sweep cells.

    One file per key under the cache directory, written atomically
    (temp file + rename), holding a version-tagged [Marshal] snapshot of
    the cell's result.  Keys are content hashes of the cell config
    ({!Harness.Experiment.cell_key}), so an interrupted sweep restarted
    over the same directory reloads every finished cell and only
    recomputes the missing ones; a config change produces a different
    key and therefore a clean miss.

    Robustness: a truncated, corrupt, or version-mismatched entry is
    treated as a miss (and may be overwritten), never as an error — the
    cache can only save work, not poison a sweep. *)

type t

(** [ensure_dir dir] creates [dir] (and parents) if missing — the
    [mkdir -p] every sweep output path needs. *)
val ensure_dir : string -> unit

(** [create ?version dir] opens (creating directories as needed) a cache
    rooted at [dir].  [version] (default ["1"]) is baked into every
    entry's header; bump it when the meaning of cached values changes so
    stale entries miss instead of deserialising garbage. *)
val create : ?version:string -> string -> t

val dir : t -> string

(** [load t key] is the cached value, or [None] on a miss (including
    unreadable / corrupt / wrong-version entries).  Unsafe like
    [Marshal]: the caller must request the type that was stored. *)
val load : t -> string -> 'a option

(** [store t key v] atomically persists [v] under [key]. *)
val store : t -> string -> 'a -> unit

val mem : t -> string -> bool

(** [remove t key] deletes the entry if present. *)
val remove : t -> string -> unit

(** Keys of every well-formed entry currently on disk (unsorted). *)
val keys : t -> string list
