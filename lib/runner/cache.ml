type t = { dir : string; magic : string }

let suffix = ".cell"

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let sanitize key =
  (* Keys are expected to be hex digests; anything else is flattened to a
     digest so a hostile key can never escape the cache directory. *)
  let safe =
    String.for_all
      (fun c ->
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '-' || c = '_' || c = '.')
      key
    && key <> "" && key.[0] <> '.'
  in
  if safe then key else Digest.to_hex (Digest.string key)

let create ?(version = "1") dir =
  ensure_dir dir;
  { dir; magic = "hire-runner-cache/" ^ version ^ "\n" }

let dir t = t.dir
let path t key = Filename.concat t.dir (sanitize key ^ suffix)

let load t key =
  let file = path t key in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception _ -> None
  | contents ->
      let m = String.length t.magic in
      if String.length contents <= m || String.sub contents 0 m <> t.magic then None
      else ( try Some (Marshal.from_string contents m) with _ -> None)

let store t key v =
  let file = path t key in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc t.magic;
         Marshal.to_channel oc v [])
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file

let mem t key = Sys.file_exists (path t key)

let remove t key = try Sys.remove (path t key) with Sys_error _ -> ()

let keys t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             if Filename.check_suffix e suffix then Some (Filename.chop_suffix e suffix)
             else None)
