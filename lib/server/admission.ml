(* The admission engine (docs/SERVER.md): external submissions →
   validated CompReqs → transformed PolyReqs → journaled [Wal.Admit]
   records → batched [Wal.Inject] rounds through the simulator.

   Durability contract: WAL-before-ack.  [submit] buffers the [Admit]
   record through the service sink; the caller runs [ack_barrier] (a
   real fsync) before acknowledging anything.  Recovery rebuilds every
   table from a full WAL scan, so an acked admission survives any
   crash, and admissions present in no [Inject] record come back as
   the pending queue.

   Storage failures (ENOSPC, EIO, failed fsync — [Journal.Error.Io],
   real or failpoint-injected, docs/FAILPOINTS.md) do not kill the
   engine: it enters a read-only *degraded* mode that sheds new
   submissions, keeps status/stats live, and probes the disk with
   jittered exponential backoff until a sync succeeds.  The sink keeps
   every unsynced frame buffered across failures, so the healed WAL is
   byte-identical to one that never failed. *)

module Clock = Prelude.Clock

type config = {
  round_interval : float;
  max_batch : int;
  max_pending : int;
  checkpoint_every : int;
  fsync_interval_s : float;
}

let default_config =
  {
    round_interval = 1.0;
    max_batch = 64;
    max_pending = 1024;
    checkpoint_every = 0;
    fsync_interval_s = 0.02;
  }

(* Admitted jobs live in a reserved id band: job_id = id_base + admit_id,
   task-group ids from id_base + admit_id * tg_stride.  The band clears
   every trace job and fault-retry clone id (those are small or
   negative); the stride clears the transformer's per-job appetite —
   at most [Protocol.max_groups] composites, each expanding to at most
   four task groups (server + reduced server + two network groups). *)
let id_base = 1_000_000_000
let tg_stride = 64

type entry = {
  poly : Hire.Poly_req.t;  (* as journaled; arrival is a placeholder *)
  client : string;
  mutable injected_at : float option;
  mutable placements : int;
  mutable completions : int;
}

(* The mutable bookkeeping lives apart from [t] so recovery can rebuild
   it from the WAL scan before the service handle exists. *)
type tables = {
  admits : (int, entry) Hashtbl.t;
  clients : (string, int) Hashtbl.t;  (* idempotency key -> admit_id *)
  mutable next_admit_id : int;
  mutable pending_rev : int list;  (* newest first; flush reverses *)
  mutable pending_n : int;
  mutable last_batch : float;  (* injection time of the previous batch *)
  mutable injected : int;
  mutable batches : int;
  mutable rejected : int;  (* session-local: rejections are never journaled *)
}

let fresh_tables () =
  {
    admits = Hashtbl.create 64;
    clients = Hashtbl.create 64;
    next_admit_id = 0;
    pending_rev = [];
    pending_n = 0;
    last_batch = Float.neg_infinity;
    injected = 0;
    batches = 0;
    rejected = 0;
  }

(* Degraded-mode bookkeeping (wall-clock side only: none of it feeds
   the journal, so it cannot perturb determinism). *)
type health = {
  mutable degraded_since : float option;  (* None = healthy *)
  mutable last_error : string;
  mutable backoff : float;  (* current probe backoff, seconds *)
  mutable next_probe : float;  (* wall deadline for the next disk probe *)
  mutable degraded_rejects : int;
  mutable io_errors : int;  (* Io failures the engine absorbed *)
  mutable probes : int;
  rng : Prelude.Rng.t;  (* probe jitter *)
}

let probe_backoff_min = 0.05
let probe_backoff_max = 5.0

type t = {
  service : Sim.Service.t;
  spec : Harness.Experiment.spec;
  config : config;
  store : Hire.Comp_store.t;
  tb : tables;
  h : health;
}

let fresh_health seed =
  {
    degraded_since = None;
    last_error = "";
    backoff = probe_backoff_min;
    next_probe = 0.0;
    degraded_rejects = 0;
    io_errors = 0;
    probes = 0;
    rng = Prelude.Rng.create (seed lxor 0x7a11);
  }

let service t = t.service
let spec t = t.spec
let config t = t.config

let admit_of_tg tg_id =
  if tg_id >= id_base then Some ((tg_id - id_base) / tg_stride) else None

(* Shared by the live observer (simulator-emitted records only — input
   records bypass it) and the recovery scan (every stored record). *)
let observe_record tb (r : Sim.Wal.record) =
  match r with
  | Sim.Wal.Admit { admit_id; client; poly } ->
      if not (Hashtbl.mem tb.admits admit_id) then begin
        Hashtbl.replace tb.admits admit_id
          { poly; client; injected_at = None; placements = 0; completions = 0 };
        if client <> "" then Hashtbl.replace tb.clients client admit_id;
        if admit_id >= tb.next_admit_id then tb.next_admit_id <- admit_id + 1
      end
  | Sim.Wal.Inject { time; admit_ids } ->
      tb.batches <- tb.batches + 1;
      tb.last_batch <- Float.max tb.last_batch time;
      List.iter
        (fun id ->
          match Hashtbl.find_opt tb.admits id with
          | Some e when e.injected_at = None ->
              e.injected_at <- Some time;
              tb.injected <- tb.injected + 1
          | _ -> ())
        admit_ids
  | Sim.Wal.Round { placements; _ } ->
      List.iter
        (fun (tg_id, _machine) ->
          match admit_of_tg tg_id with
          | None -> ()
          | Some id -> (
              match Hashtbl.find_opt tb.admits id with
              | Some e -> e.placements <- e.placements + 1
              | None -> ()))
        placements
  | Sim.Wal.Complete { tg_id; _ } -> (
      match admit_of_tg tg_id with
      | None -> ()
      | Some id -> (
          match Hashtbl.find_opt tb.admits id with
          | Some e -> e.completions <- e.completions + 1
          | None -> ()))
  | _ -> ()

(* Journaled runs substitute simulated think time for measured solver
   wall clock — replay must re-derive every record byte for byte. *)
let sim_config = { Sim.Simulator.default_config with deterministic_wall = true }

let drain_sim t =
  while Sim.Service.step t.service do
    ()
  done

let start ~dir ~config spec =
  let sim = Harness.Experiment.prepare ~config:sim_config spec in
  let svc =
    Sim.Service.start ~dir ~checkpoint_every:config.checkpoint_every
      ~fsync_interval_s:config.fsync_interval_s
      ~header:(Harness.Experiment.spec_to_blob spec)
      sim
  in
  let tb = fresh_tables () in
  let t =
    { service = svc; spec; config; store = Hire.Comp_store.default (); tb;
      h = fresh_health spec.Harness.Experiment.seed }
  in
  Sim.Service.set_observer svc (observe_record tb);
  (* Run the spec's own trace (empty under the serving default of a tiny
     horizon) to quiescence so admission starts from a settled world. *)
  drain_sim t;
  t

type recovered = { engine : t; replayed : int; pending_recovered : int }

let recover ~dir ~config () =
  let tb = fresh_tables () in
  let spec_ref = ref None in
  let r =
    Sim.Service.recover ~dir ~checkpoint_every:config.checkpoint_every
      ~fsync_interval_s:config.fsync_interval_s
      ~on_input:(fun sim record ->
        match record with
        | Sim.Wal.Admit _ -> ()  (* payload only; tables come from the scan *)
        | Sim.Wal.Inject { time; admit_ids } ->
            List.iter
              (fun id ->
                match Hashtbl.find_opt tb.admits id with
                | Some e -> Sim.Simulator.inject sim ~time e.poly
                | None ->
                    (* an [Admit] always precedes its [Inject] in the
                       stream, and the scan saw the whole log *)
                    failwith
                      (Printf.sprintf
                         "WAL inject references unknown admission %d" id))
              admit_ids
        | _ -> ())
      ~observe:(observe_record tb)
      ~rebuild:(fun header ->
        let s = Harness.Experiment.spec_of_blob header in
        spec_ref := Some s;
        Harness.Experiment.prepare ~config:sim_config s)
      ()
  in
  let spec = match !spec_ref with Some s -> s | None -> assert false in
  (* The accepted-but-unplaced queue: admitted, never injected — in
     admission order, exactly what the crashed server still owed. *)
  let pend =
    Hashtbl.fold
      (fun id e acc -> if e.injected_at = None then id :: acc else acc)
      tb.admits []
  in
  let asc = List.sort compare pend in
  tb.pending_rev <- List.rev asc;
  tb.pending_n <- List.length asc;
  let t =
    {
      service = r.Sim.Service.service;
      spec;
      config;
      store = Hire.Comp_store.default ();
      tb;
      h = fresh_health spec.Harness.Experiment.seed;
    }
  in
  Sim.Service.set_observer t.service (observe_record tb);
  (* Restore the between-batches invariant: a crash can interrupt a
     flush mid-schedule, leaving replayed-but-unprocessed events in the
     queue.  Draining them here reproduces the order the uninterrupted
     run would have journaled — rounds of the interrupted batch land
     before any new admission. *)
  drain_sim t;
  { engine = t; replayed = r.Sim.Service.replayed; pending_recovered = tb.pending_n }

type admit_result =
  | Admitted of { admit_id : int; duplicate : bool }
  | Rejected of string

let mix_seed seed admit_id = (seed * 1_000_003) + ((admit_id + 1) * 9_007_199)

(* CompReq construction + INC attachment + transformation.  [Auto]
   mirrors the harness's scenario augmentation (§6.2): up to a third of
   the composites get an INC alternative, at least one; a named service
   attaches to the first composite.  The RNG is derived from (spec
   seed, admit_id) alone, so recovery never needs to re-run this — the
   transformed PolyReq is journaled verbatim in the [Admit] record. *)
let translate t ~admit_id (js : Protocol.job_spec) =
  let job_id = id_base + admit_id in
  let job =
    { Workload.Job.id = job_id; arrival = 0.0; priority = js.priority;
      groups = js.groups }
  in
  let req = Hire.Comp_req.of_job job in
  let rng = Prelude.Rng.create (mix_seed t.spec.Harness.Experiment.seed admit_id) in
  let attached =
    match js.inc with
    | Protocol.No_inc -> Ok req
    | Protocol.Auto ->
        let services = Hire.Comp_store.service_names t.store in
        if Array.length services = 0 then Ok req
        else begin
          let comps = Array.of_list req.Hire.Comp_req.composites in
          let n = Array.length comps in
          let n_inc = Prelude.Rng.int_in rng 1 (max 1 ((n + 2) / 3)) in
          let idxs =
            Prelude.Rng.sample_without_replacement rng ~n:n_inc
              (Array.init n (fun i -> i))
          in
          List.iter
            (fun i ->
              let service = Prelude.Rng.choose rng services in
              match Hire.Comp_store.template_of_service t.store service with
              | None -> ()
              | Some template ->
                  let c = comps.(i) in
                  comps.(i) <-
                    { c with Hire.Comp_req.template; inc_alternatives = [ service ] })
            idxs;
          Ok { req with Hire.Comp_req.composites = Array.to_list comps }
        end
    | Protocol.Service s -> (
        match Hire.Comp_store.template_of_service t.store s with
        | None -> Error (Printf.sprintf "unknown INC service %S" s)
        | Some template -> (
            match req.Hire.Comp_req.composites with
            | [] -> Error "submission has no task groups"
            | c :: rest ->
                Ok
                  {
                    req with
                    Hire.Comp_req.composites =
                      { c with Hire.Comp_req.template; inc_alternatives = [ s ] }
                      :: rest;
                  }))
  in
  match attached with
  | Error _ as e -> e
  | Ok req -> (
      match Hire.Comp_req.validate t.store req with
      | Error msg -> Error ("invalid submission: " ^ msg)
      | Ok () -> (
          let ids =
            Hire.Transformer.Id_gen.create ~first:(id_base + (admit_id * tg_stride)) ()
          in
          try Ok (Hire.Transformer.transform t.store ids rng ~job_id ~arrival:0.0 req)
          with Invalid_argument msg -> Error ("invalid submission: " ^ msg)))

let reject t msg =
  t.tb.rejected <- t.tb.rejected + 1;
  if Obs.enabled () then Obs.Registry.incr (Obs.Registry.counter "server.reject");
  Rejected msg

(* ---- degraded mode -------------------------------------------------- *)

let degraded t = t.h.degraded_since <> None
let last_error t = t.h.last_error
let probe_at t = if degraded t then Some t.h.next_probe else None

(* On entry the backoff starts at its floor; every further failed probe
   doubles it up to the cap.  The deadline is jittered uniformly in
   [0.5, 1.5]× so a fleet of shedding servers does not thundering-herd
   a shared device. *)
let note_io_failure t e =
  let h = t.h in
  h.io_errors <- h.io_errors + 1;
  h.last_error <- Journal.Error.to_string e;
  (match h.degraded_since with
  | None ->
      h.degraded_since <- Some (Clock.now ());
      h.backoff <- probe_backoff_min
  | Some _ -> h.backoff <- Float.min probe_backoff_max (h.backoff *. 2.0));
  h.next_probe <- Clock.now () +. (h.backoff *. (0.5 +. Prelude.Rng.float h.rng 1.0))

let mark_healthy t =
  t.h.degraded_since <- None;
  t.h.backoff <- probe_backoff_min

(* Run [f] absorbing retryable storage failures into the health state.
   Only [Error.Io] is retryable; every other journal error (corruption,
   divergence, state misuse) is a logic fault and still propagates. *)
let guarded t f =
  match f () with
  | v -> Ok v
  | exception Journal.Error.Journal_error (Journal.Error.Io _ as e) ->
      note_io_failure t e;
      Error ()

let submit t (js : Protocol.job_spec) =
  if degraded t then begin
    (* Shedding: nothing reaches the journal, so the rejection needs no
       durability and the WAL stays byte-identical to a run that never
       saw the request. *)
    t.h.degraded_rejects <- t.h.degraded_rejects + 1;
    if Obs.enabled () then
      Obs.Registry.incr (Obs.Registry.counter "server.degraded_rejects");
    reject t "degraded"
  end
  else
  match js.client_id with
  | Some cid when Hashtbl.mem t.tb.clients cid ->
      (* idempotent resubmission: the original admission stands, nothing
         new reaches the journal *)
      Admitted { admit_id = Hashtbl.find t.tb.clients cid; duplicate = true }
  | _ ->
      if t.tb.pending_n >= t.config.max_pending then reject t "queue_full"
      else begin
        let admit_id = t.tb.next_admit_id in
        match translate t ~admit_id js with
        | Error msg -> reject t msg
        | Ok poly ->
            let client = Option.value js.client_id ~default:"" in
            Sim.Service.append t.service (Sim.Wal.Admit { admit_id; client; poly });
            t.tb.next_admit_id <- admit_id + 1;
            Hashtbl.replace t.tb.admits admit_id
              { poly; client; injected_at = None; placements = 0; completions = 0 };
            if client <> "" then Hashtbl.replace t.tb.clients client admit_id;
            t.tb.pending_rev <- admit_id :: t.tb.pending_rev;
            t.tb.pending_n <- t.tb.pending_n + 1;
            if Obs.enabled () then
              Obs.Registry.incr (Obs.Registry.counter "server.admit");
            Admitted { admit_id; duplicate = false }
      end

(* [false]: the fsync failed and the engine is now degraded — nothing
   from this round may be acknowledged as admitted.  The [Admit] frames
   stay buffered in the sink; a successful probe makes them durable, so
   a client retry with the same idempotency key converges. *)
let ack_barrier t =
  match guarded t (fun () -> Sim.Service.ack_barrier t.service) with
  | Ok () ->
      if degraded t then mark_healthy t;
      true
  | Error () -> false

(* Disk probe, rate-limited by the jittered backoff deadline ([~force]
   for tests and shutdown).  A probe retries the barrier — the sink
   rewrites its whole buffer, so success means every admission acked
   or owed so far is durable — and then finishes any batch a storage
   failure interrupted mid-drain, restoring the between-batches
   invariant before new traffic lands. *)
let probe ?(force = false) t =
  match t.h.degraded_since with
  | None -> true
  | Some _ ->
      if (not force) && Clock.now () < t.h.next_probe then false
      else begin
        t.h.probes <- t.h.probes + 1;
        match guarded t (fun () -> Sim.Service.ack_barrier t.service) with
        | Error () -> false
        | Ok () -> (
            match guarded t (fun () -> drain_sim t) with
            | Ok () ->
                mark_healthy t;
                true
            | Error () -> false)
      end

let pending t = t.tb.pending_n
let batch_due t = t.tb.pending_n >= t.config.max_batch

let flush t =
  if degraded t then 0  (* probe heals first; nothing new is injected *)
  else if t.tb.pending_n = 0 then begin
    (* Nothing to inject, but drain anyway: a recovered engine may still
       hold queued events from a batch interrupted mid-schedule. *)
    (match guarded t (fun () -> drain_sim t) with Ok () | Error () -> ());
    0
  end
  else begin
    let sim = Sim.Service.sim t.service in
    (* Batches are spaced [round_interval] apart in simulated time; the
       first lands at the simulator's current now. *)
    let time =
      Float.max (Sim.Simulator.now sim) (t.tb.last_batch +. t.config.round_interval)
    in
    let admit_ids = List.rev t.tb.pending_rev in
    Sim.Service.append t.service (Sim.Wal.Inject { time; admit_ids });
    List.iter
      (fun id ->
        let e = Hashtbl.find t.tb.admits id in
        Sim.Simulator.inject sim ~time e.poly;
        e.injected_at <- Some time;
        t.tb.injected <- t.tb.injected + 1)
      admit_ids;
    t.tb.batches <- t.tb.batches + 1;
    t.tb.last_batch <- time;
    let n = t.tb.pending_n in
    t.tb.pending_rev <- [];
    t.tb.pending_n <- 0;
    if Obs.enabled () then
      Obs.Registry.incr ~by:n (Obs.Registry.counter "server.inject");
    (* One batch = one scheduling problem: run the event loop dry so the
       next batch meets a settled world (the paper's round model, §5).
       A storage failure mid-drain flips the engine degraded with the
       batch partially processed; the queued events survive in the
       simulator and the next successful probe finishes the drain, so
       the record order matches the uninterrupted run. *)
    (match guarded t (fun () -> drain_sim t) with Ok () | Error () -> ());
    n
  end

type status = {
  phase : string;
  injected_at : float option;
  placements : int;
  completions : int;
}

let status t id =
  match Hashtbl.find_opt t.tb.admits id with
  | None -> None
  | Some e ->
      let phase =
        match e.injected_at with
        | None -> "queued"
        | Some _ ->
            if Sim.Simulator.quiescent (Sim.Service.sim t.service) then "done"
            else if e.placements > 0 then "running"
            else "injected"
      in
      Some
        {
          phase;
          injected_at = e.injected_at;
          placements = e.placements;
          completions = e.completions;
        }

type stats = {
  admitted : int;
  rejected : int;
  pending_now : int;
  injected : int;
  batches : int;
  wal_records : int;
  sim_now : float;
  degraded_now : bool;
  degraded_rejects : int;
  io_errors : int;
}

let stats t =
  {
    admitted = Hashtbl.length t.tb.admits;
    rejected = t.tb.rejected;
    pending_now = t.tb.pending_n;
    injected = t.tb.injected;
    batches = t.tb.batches;
    wal_records = Sim.Service.wal_seq t.service;
    sim_now = Sim.Simulator.now (Sim.Service.sim t.service);
    degraded_now = degraded t;
    degraded_rejects = t.h.degraded_rejects;
    io_errors = t.h.io_errors;
  }

let finish t =
  (* One last chance for a degraded engine to heal; a disk that is
     still failing makes [flush]/[Service.finish] raise [Error.Io] to
     the caller — the WAL keeps everything up to the durable boundary. *)
  if degraded t then ignore (probe ~force:true t : bool);
  let (_ : int) = flush t in
  Sim.Service.finish t.service
