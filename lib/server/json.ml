(* Minimal JSON codec for the admission wire protocol (docs/SERVER.md).
   Hand-rolled recursive descent: the container ships no JSON library
   and the protocol needs only single-line values.  Everything fails
   closed — hostile input (truncation, deep nesting, bad escapes,
   trailing garbage) yields [Error] with a byte offset, never an
   exception and never a stack overflow. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

type state = { s : string; mutable pos : int; max_depth : int }

let fail st msg = raise (Fail (Printf.sprintf "%s at byte %d" msg st.pos))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected '%c', found '%c'" c d)
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

(* UTF-8 encode one scalar value (already surrogate-combined). *)
let utf8_add buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad hex digit in \\u escape"
  in
  if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
  let v =
    (digit st.s.[st.pos] lsl 12)
    lor (digit st.s.[st.pos + 1] lsl 8)
    lor (digit st.s.[st.pos + 2] lsl 4)
    lor digit st.s.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | None -> fail st "truncated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let u = hex4 st in
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* high surrogate: require the low half *)
                  if
                    st.pos + 2 <= String.length st.s
                    && st.s.[st.pos] = '\\'
                    && st.s.[st.pos + 1] = 'u'
                  then begin
                    st.pos <- st.pos + 2;
                    let lo = hex4 st in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      fail st "unpaired surrogate in \\u escape";
                    utf8_add buf
                      (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                  end
                  else fail st "unpaired surrogate in \\u escape"
                end
                else if u >= 0xDC00 && u <= 0xDFFF then
                  fail st "unpaired surrogate in \\u escape"
                else utf8_add buf u
            | _ -> fail st "unknown escape"));
        loop ()
    | Some c when Char.code c < 0x20 -> fail st "raw control byte in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    while st.pos < String.length st.s && pred st.s.[st.pos] do
      advance st
    done
  in
  if peek st = Some '-' then advance st;
  let digits_start = st.pos in
  consume_while (function '0' .. '9' -> true | _ -> false);
  if st.pos = digits_start then fail st "expected digits";
  if peek st = Some '.' then begin
    advance st;
    let frac_start = st.pos in
    consume_while (function '0' .. '9' -> true | _ -> false);
    if st.pos = frac_start then fail st "expected digits after '.'"
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      let exp_start = st.pos in
      consume_while (function '0' .. '9' -> true | _ -> false);
      if st.pos = exp_start then fail st "expected exponent digits"
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st "unparsable number"

let rec parse_value st depth =
  if depth > st.max_depth then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' -> parse_obj st depth
  | Some '[' -> parse_arr st depth
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

and parse_obj st depth =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec members () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st (depth + 1) in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ()
      | Some '}' -> advance st
      | _ -> fail st "expected ',' or '}'"
    in
    members ();
    Obj (List.rev !fields)
  end

and parse_arr st depth =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec elements () =
      let v = parse_value st (depth + 1) in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements ()
      | Some ']' -> advance st
      | _ -> fail st "expected ',' or ']'"
    in
    elements ();
    Arr (List.rev !items)
  end

let parse ?(max_depth = 32) s =
  let st = { s; pos = 0; max_depth } in
  match parse_value st 0 with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
      else Ok v
  | exception Fail msg -> Error msg

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num f -> add_num buf f
  | Str s -> escape_string buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 64 in
  emit buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None
