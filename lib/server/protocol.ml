(* Admission-API wire protocol: parse + validate one JSON request line,
   render one JSON response line (docs/SERVER.md).  Validation is the
   admission firewall — nothing reaches the journal until a request has
   fully validated, so a malformed or hostile line can never leave a
   record behind. *)

type inc = No_inc | Auto | Service of string

type job_spec = {
  priority : Workload.Job.priority;
  groups : Workload.Job.task_group list;
  inc : inc;
  client_id : string option;
}

type request = Submit of job_spec | Status of int | Stats | Drain | Shutdown

(* One request per line; a line longer than this is rejected before it
   is buffered whole.  64 KiB comfortably fits max_groups groups. *)
let max_line_bytes = 65536
let max_groups = 8
let max_count = 4096

(* Resource bounds: generous relative to any node flavor, tight enough
   that a single submission cannot degenerate the solver. *)
let max_resource = 1024.0
let max_duration = 1e7
let max_client_id = 128

let ( let* ) = Result.bind

let field name v = Json.member name v
let missing name = Error (Printf.sprintf "missing field %S" name)

let req_str name v =
  match field name v with
  | Some j -> (
      match Json.to_str j with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S must be a string" name))
  | None -> missing name

let pos_float ~max name j =
  match Json.to_float j with
  | Some f when Float.is_finite f && f > 0.0 && f <= max -> Ok f
  | Some _ ->
      Error (Printf.sprintf "field %S must be a finite float in (0, %g]" name max)
  | None -> Error (Printf.sprintf "field %S must be a number" name)

let parse_group i v =
  match v with
  | Json.Obj _ ->
      let* count =
        match field "count" v with
        | None -> missing "count"
        | Some j -> (
            match Json.to_int j with
            | Some c when c >= 1 && c <= max_count -> Ok c
            | _ ->
                Error
                  (Printf.sprintf "field \"count\" must be an integer in [1, %d]"
                     max_count))
      in
      let* cpu =
        match field "cpu" v with
        | None -> missing "cpu"
        | Some j -> pos_float ~max:max_resource "cpu" j
      in
      let* mem =
        match field "mem" v with
        | None -> missing "mem"
        | Some j -> pos_float ~max:max_resource "mem" j
      in
      let* duration =
        match field "duration" v with
        | None -> missing "duration"
        | Some j -> pos_float ~max:max_duration "duration" j
      in
      Ok { Workload.Job.tg_index = i; count; cpu; mem; duration }
  | _ -> Error (Printf.sprintf "group %d must be an object" i)

let parse_groups v =
  match field "groups" v with
  | None -> missing "groups"
  | Some j -> (
      match Json.to_list j with
      | None -> Error "field \"groups\" must be an array"
      | Some [] -> Error "field \"groups\" must not be empty"
      | Some items when List.length items > max_groups ->
          Error (Printf.sprintf "at most %d groups per submission" max_groups)
      | Some items ->
          let rec build i acc = function
            | [] -> Ok (List.rev acc)
            | g :: rest ->
                let* tg = parse_group i g in
                build (i + 1) (tg :: acc) rest
          in
          build 0 [] items)

let parse_submit v =
  let* priority =
    let* p = req_str "priority" v in
    match p with
    | "batch" -> Ok Workload.Job.Batch
    | "service" -> Ok Workload.Job.Service
    | _ -> Error "field \"priority\" must be \"batch\" or \"service\""
  in
  let* groups = parse_groups v in
  let* inc =
    match field "inc" v with
    | None | Some Json.Null -> Ok No_inc
    | Some j -> (
        match Json.to_str j with
        | Some "none" -> Ok No_inc
        | Some "auto" -> Ok Auto
        | Some s when String.length s > 0 && String.length s <= max_client_id ->
            Ok (Service s)
        | Some _ -> Error "field \"inc\" must be \"none\", \"auto\", or a service name"
        | None -> Error "field \"inc\" must be a string")
  in
  let* client_id =
    match field "client_id" v with
    | None | Some Json.Null -> Ok None
    | Some j -> (
        match Json.to_str j with
        | Some s when String.length s > 0 && String.length s <= max_client_id ->
            Ok (Some s)
        | Some _ ->
            Error
              (Printf.sprintf "field \"client_id\" must be 1..%d bytes"
                 max_client_id)
        | None -> Error "field \"client_id\" must be a string")
  in
  Ok (Submit { priority; groups; inc; client_id })

let parse_request line =
  if String.length line > max_line_bytes then
    Error (Printf.sprintf "line exceeds %d bytes" max_line_bytes)
  else
    let* v = Json.parse line in
    match v with
    | Json.Obj _ -> (
        let* op = req_str "op" v in
        match op with
        | "submit" -> parse_submit v
        | "status" -> (
            match field "id" v with
            | None -> missing "id"
            | Some j -> (
                match Json.to_int j with
                | Some id when id >= 0 -> Ok (Status id)
                | _ -> Error "field \"id\" must be a non-negative integer"))
        | "stats" -> Ok Stats
        | "drain" -> Ok Drain
        | "shutdown" -> Ok Shutdown
        | op -> Error (Printf.sprintf "unknown op %S" op))
    | _ -> Error "request must be a JSON object"

let ok fields = Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))

let err msg =
  Json.to_string (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

(* The shedding reply of degraded mode: [retriable] tells a client that
   a backoff retry with the same idempotency key is the right move
   (docs/FAILPOINTS.md). *)
let err_degraded =
  Json.to_string
    (Json.Obj
       [ ("ok", Json.Bool false); ("error", Json.Str "degraded");
         ("retriable", Json.Bool true) ])

let render_submit { priority; groups; inc; client_id } =
  let group (g : Workload.Job.task_group) =
    Json.Obj
      [
        ("count", Json.Num (float_of_int g.count));
        ("cpu", Json.Num g.cpu);
        ("mem", Json.Num g.mem);
        ("duration", Json.Num g.duration);
      ]
  in
  let base =
    [
      ("op", Json.Str "submit");
      ( "priority",
        Json.Str
          (match priority with Workload.Job.Batch -> "batch" | Service -> "service")
      );
      ("groups", Json.Arr (List.map group groups));
    ]
  in
  let base =
    base
    @ (match inc with
      | No_inc -> []
      | Auto -> [ ("inc", Json.Str "auto") ]
      | Service s -> [ ("inc", Json.Str s) ])
    @ match client_id with None -> [] | Some c -> [ ("client_id", Json.Str c) ]
  in
  Json.to_string (Json.Obj base)
