(** Minimal JSON for the admission-API wire protocol (docs/SERVER.md).

    Deliberately small: the protocol is newline-delimited single-line
    JSON objects, so this parser accepts one self-contained value per
    call and fails closed — with a position-annotated message, never an
    exception — on anything malformed, truncated, too deep, or followed
    by trailing garbage.  Numbers are IEEE doubles, strings are byte
    strings with the standard escapes ([\uXXXX] decodes to UTF-8).
    Emission is canonical enough for tests to compare bytes: fields in
    the order given, no whitespace. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [parse s] reads exactly one JSON value spanning all of [s]
    (surrounding whitespace allowed).  [max_depth] (default 32) bounds
    nesting so hostile input cannot blow the stack; [Error msg] names
    the byte offset of the problem. *)
val parse : ?max_depth:int -> string -> (t, string) result

(** Compact canonical rendering (no whitespace; strings use the
    standard short escapes plus [\u00XX] for other control bytes).
    Non-finite numbers render as [null] — JSON has no spelling for
    them. *)
val to_string : t -> string

(** {1 Accessors} — total, for protocol code that must never raise. *)

(** Field of an object, [None] on missing field or non-object. *)
val member : string -> t -> t option

val to_float : t -> float option
val to_int : t -> int option  (** floats with integral value only *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
