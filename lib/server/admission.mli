(** The admission engine (docs/SERVER.md): validated external job
    submissions, journaled through the {!Sim.Service} WAL, batched into
    scheduling rounds on a configurable cadence.

    The durability contract is {b WAL-before-ack}: {!submit} appends a
    {!Sim.Wal.Admit} record (buffered), and the caller must run
    {!ack_barrier} — a real fsync, group-commit window notwithstanding —
    before acknowledging any admission to a client.  An acked admission
    therefore survives any crash: {!recover} rebuilds the engine from
    the WAL alone, and admissions present in no {!Sim.Wal.Inject}
    record come back as the pending queue, byte-identically.

    Batching: pending admissions accumulate until {!flush} (the server
    calls it on a wall-clock cadence, when the batch fills, or on an
    explicit [drain]).  A flush journals one [Inject] record, hands the
    batch to the simulator as arrivals at a common simulated time
    spaced [round_interval] from the previous batch, and runs the event
    loop to quiescence — one admission batch is one scheduling
    problem, the paper's round model (§5).

    {2 Degraded mode}

    Retryable storage failures ({!Journal.Error.Io}: ENOSPC, EIO,
    short writes, failed fsyncs — real or injected through the
    failpoints of docs/FAILPOINTS.md) never kill the engine.  Instead
    it enters a read-only {e degraded} mode: {!submit} sheds new work
    with a ["degraded"] rejection (nothing is journaled), status and
    stats stay live, and {!probe} retries the disk under jittered
    exponential backoff ([0.05 s] doubling to a [5 s] cap).  The sink
    keeps every unsynced frame buffered across failures, so the first
    successful probe makes all owed admissions durable and the healed
    WAL is byte-identical to a run that never failed.  A submission
    whose {!ack_barrier} failed was answered with a retriable
    ["degraded"] error but remains owed — clients that resubmit with
    the same idempotency key converge on its admission id. *)

type config = {
  round_interval : float;
      (** simulated seconds between consecutive injection batches *)
  max_batch : int;  (** pending count that triggers an early flush *)
  max_pending : int;
      (** backpressure bound: submissions beyond this are rejected with
          [queue_full] instead of being journaled *)
  checkpoint_every : int;  (** {!Sim.Service} checkpoint cadence; 0 disables *)
  fsync_interval_s : float;  (** group-commit window of the sink *)
}

val default_config : config

(** Admitted job ids are offset into a reserved band so they can never
    collide with trace jobs or fault-retry clones:
    [job_id = id_base + admit_id], task-group ids from
    [id_base + admit_id * 64]. *)
val id_base : int

type t

val service : t -> Sim.Service.t
val spec : t -> Harness.Experiment.spec
val config : t -> config

(** [start ~dir ~config spec] opens a fresh journaled world under
    [dir] (the usual [Sim.Service] layout).  The spec's workload horizon
    is irrelevant to serving — use a tiny horizon so the trace itself is
    empty and every job comes through admission. *)
val start : dir:string -> config:config -> Harness.Experiment.spec -> t

type recovered = {
  engine : t;
  replayed : int;  (** WAL records validated by re-execution *)
  pending_recovered : int;  (** acked-but-unplaced admissions restored *)
}

(** Rebuild a crashed server from [dir]: world from the WAL header,
    replay by re-execution with input records re-applied at their
    recorded positions, admission tables from a full-log scan.  The
    engine continues exactly where the crashed one stood. *)
val recover : dir:string -> config:config -> unit -> recovered

type admit_result =
  | Admitted of { admit_id : int; duplicate : bool }
      (** [duplicate] when an idempotency key matched a previous
          admission — nothing new was journaled *)
  | Rejected of string  (** [queue_full], validation failure, … *)

(** Validate, translate (CompReq → PolyReq), and journal one
    submission.  Buffered: the caller owes an {!ack_barrier} before
    acknowledging.  Never raises on bad input — rejection is a value.
    While {!degraded}, every submission (idempotent resubmissions
    included: their originals may not be durable yet) is shed with
    [Rejected "degraded"] and nothing reaches the journal. *)
val submit : t -> Protocol.job_spec -> admit_result

(** Durability barrier over everything submitted so far (WAL-before-ack).
    Amortize it over a batch of acks, not per submission.  [false]
    means the sync failed and the engine is now {!degraded}: {b nothing
    from this round may be acknowledged as admitted} — answer those
    submissions with the retriable ["degraded"] error instead.  The
    frames stay buffered and become durable at the first successful
    {!probe}. *)
val ack_barrier : t -> bool

(** True while the engine is shedding submissions after a storage
    failure. *)
val degraded : t -> bool

(** Human-readable description of the last absorbed storage failure
    ([""] if none yet). *)
val last_error : t -> string

(** Wall deadline of the next backoff-gated disk probe, while
    degraded. *)
val probe_at : t -> float option

(** Attempt to leave degraded mode: no-op before the backoff deadline
    (unless [~force]), otherwise retry the barrier — the sink rewrites
    its whole buffer, so success makes every owed admission durable —
    and finish any batch the failure interrupted mid-drain.  Returns
    [true] when the engine is healthy on return. *)
val probe : ?force:bool -> t -> bool

val pending : t -> int

(** True when the pending batch has reached [max_batch]. *)
val batch_due : t -> bool

(** Inject every pending admission as one batch and run the simulator
    to quiescence.  Returns the batch size (0 = nothing pending, and
    nothing is journaled). *)
val flush : t -> int

(** Best-effort progress of one admission, rebuilt across crashes from
    the WAL scan (counters may lag for history emitted mid-recovery). *)
type status = {
  phase : string;  (** ["queued"] | ["injected"] | ["running"] | ["done"] *)
  injected_at : float option;  (** simulated injection time *)
  placements : int;  (** placement events observed for its task groups *)
  completions : int;  (** task completions observed *)
}

val status : t -> int -> status option

type stats = {
  admitted : int;
  rejected : int;
  pending_now : int;
  injected : int;  (** admissions handed to the scheduler *)
  batches : int;
  wal_records : int;
  sim_now : float;
  degraded_now : bool;  (** shedding submissions right now *)
  degraded_rejects : int;  (** submissions shed while degraded *)
  io_errors : int;  (** retryable storage failures absorbed *)
}

val stats : t -> stats

(** Flush any pending batch, close the journal, finalize metrics.
    A degraded engine gets one forced {!probe} first; if the disk is
    still failing this raises {!Journal.Error.Journal_error} [Io] —
    the WAL keeps everything up to the durable boundary. *)
val finish : t -> Sim.Simulator.result
