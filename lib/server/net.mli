(** The admission server's socket front-end (docs/SERVER.md).

    A single-threaded [Unix.select] loop over a Unix-domain or TCP
    listening socket, speaking the newline-delimited JSON protocol of
    {!Protocol}.  Request lines batch naturally: every line readable in
    one poll round is parsed and applied, then {e one}
    {!Admission.ack_barrier} covers all the admissions of the round
    before any acknowledgment is queued — WAL-before-ack, with the
    fsync amortized over the batch.

    Scheduling ticks: every [tick_interval] wall seconds (and
    immediately when the batch reaches [max_batch]) the pending
    admissions are flushed into the simulator.  A flush or an explicit
    [drain] runs the event loop to quiescence synchronously — the
    server pauses I/O while the scheduler thinks, which is the round
    model, not an accident.

    Per-connection lines are bounded by {!Protocol.max_line_bytes}; a
    connection that exceeds the bound gets a structured error and is
    closed.  The loop exits on the [shutdown] op: pending admissions
    are flushed, the journal is closed, and the simulation result is
    returned.

    {2 Containment and degradation (docs/FAILPOINTS.md)}

    Hostile transports are contained per connection: a client gets
    [io_timeout] wall seconds to complete a started request line
    (slow-loris dribble) and to make progress draining a queued reply
    (stalled reader); past either deadline the connection is closed and
    [server.conn_timeouts] counted.  Accept failures (ECONNABORTED,
    EMFILE, ...) drop the attempt and count [server.accept_errors]
    without killing the loop.  The [net.accept]/[net.read]/[net.write]
    failpoints inject all of the above deterministically.

    When {!Admission.ack_barrier} fails (storage), the round's would-be
    admission acks are rewritten into {!Protocol.err_degraded} and the
    engine sheds submissions; ticks probe the disk (backoff-gated)
    instead of flushing until it heals.  Both transitions log one
    greppable line: ["degraded: ..."] / ["healthy: ..."]. *)

type listen =
  | Unix_sock of string  (** path; a stale socket file is replaced *)
  | Tcp of string * int  (** bind address, port *)

(** Serve until a [shutdown] request.  [tick_interval] is the wall
    cadence of batch flushes, seconds; [io_timeout] (default 30 s) is
    the per-connection containment deadline described above.  Returns
    the finalized simulation result ({!Admission.finish}).  The
    listening socket (and a Unix-domain socket file) is cleaned up on
    the way out. *)
val serve :
  engine:Admission.t -> listen:listen -> tick_interval:float ->
  ?max_conns:int -> ?io_timeout:float -> unit -> Sim.Simulator.result
