(** The admission server's socket front-end (docs/SERVER.md).

    A single-threaded [Unix.select] loop over a Unix-domain or TCP
    listening socket, speaking the newline-delimited JSON protocol of
    {!Protocol}.  Request lines batch naturally: every line readable in
    one poll round is parsed and applied, then {e one}
    {!Admission.ack_barrier} covers all the admissions of the round
    before any acknowledgment is queued — WAL-before-ack, with the
    fsync amortized over the batch.

    Scheduling ticks: every [tick_interval] wall seconds (and
    immediately when the batch reaches [max_batch]) the pending
    admissions are flushed into the simulator.  A flush or an explicit
    [drain] runs the event loop to quiescence synchronously — the
    server pauses I/O while the scheduler thinks, which is the round
    model, not an accident.

    Per-connection lines are bounded by {!Protocol.max_line_bytes}; a
    connection that exceeds the bound gets a structured error and is
    closed.  The loop exits on the [shutdown] op: pending admissions
    are flushed, the journal is closed, and the simulation result is
    returned. *)

type listen =
  | Unix_sock of string  (** path; a stale socket file is replaced *)
  | Tcp of string * int  (** bind address, port *)

(** Serve until a [shutdown] request.  [tick_interval] is the wall
    cadence of batch flushes, seconds.  Returns the finalized
    simulation result ({!Admission.finish}).  The listening socket (and
    a Unix-domain socket file) is cleaned up on the way out. *)
val serve :
  engine:Admission.t -> listen:listen -> tick_interval:float ->
  ?max_conns:int -> unit -> Sim.Simulator.result
