(** Admission-API wire protocol (docs/SERVER.md).

    Newline-delimited JSON over a stream socket: each request is one
    JSON object on one line, each response one JSON object on one line.
    The grammar is fixed by the ["op"] field:

    {v
    {"op":"submit","priority":"batch"|"service",
     "groups":[{"count":N,"cpu":F,"mem":F,"duration":F}, ...],
     "inc":"none"|"auto"|"<service>",   (optional, default "none")
     "client_id":"<key>"}               (optional idempotency key)
    {"op":"status","id":N}
    {"op":"stats"}
    {"op":"drain"}
    {"op":"shutdown"}
    v}

    Every response carries ["ok"]: [true] plus op-specific fields, or
    [false] plus ["error"].  Parsing and validation are total: hostile
    input yields [Error], never an exception, and nothing reaches the
    journal until a request has fully validated. *)

(** How the submission wants its composites treated for in-network
    acceleration: none, harness-style random augmentation ([Auto], the
    μ path of {!Sim.Scenario}), or a specific CompStore service. *)
type inc = No_inc | Auto | Service of string

type job_spec = {
  priority : Workload.Job.priority;
  groups : Workload.Job.task_group list;  (** 1..{!max_groups}, validated *)
  inc : inc;
  client_id : string option;
      (** idempotency key: resubmitting the same key returns the
          original admission id instead of journaling a duplicate *)
}

type request =
  | Submit of job_spec
  | Status of int
  | Stats
  | Drain  (** flush pending admissions and run the sim to quiescence *)
  | Shutdown

(** Longest request or response line the server accepts, newline
    included.  A connection that exceeds it gets a structured error and
    is closed — an unbounded line is a memory-exhaustion vector. *)
val max_line_bytes : int

val max_groups : int  (** per submission; matches the trace generator's cap *)

val max_count : int  (** tasks per group *)

(** Parse and validate one request line.  [Error] messages are
    single-line and safe to echo back to the client. *)
val parse_request : string -> (request, string) result

(** {1 Response rendering} — one line, no trailing newline. *)

(** [ok fields] renders [{"ok":true, ...fields}]. *)
val ok : (string * Json.t) list -> string

(** [err msg] renders [{"ok":false,"error":msg}]. *)
val err : string -> string

(** The structured shedding error of degraded mode
    ([{"ok":false,"error":"degraded","retriable":true}]): the server is
    read-only after a storage failure; retry with backoff, reusing the
    idempotency key (docs/FAILPOINTS.md). *)
val err_degraded : string

(** Render a submit request line — the client-side inverse of
    {!parse_request}, used by [hire_client] and the load generator. *)
val render_submit : job_spec -> string
