(* Single-threaded select loop for the admission API (docs/SERVER.md).
   One poll round = read every ready connection, parse complete lines,
   apply them to the engine, run one durability barrier over the
   round's admissions, then queue the acknowledgments.  The serial loop
   is a feature: the engine, the journal sink, and the simulator are
   all single-owner, so no admission interleaves with a scheduling
   step.

   Hostile transports are contained per connection (docs/FAILPOINTS.md):
   a connection gets [io_timeout] wall seconds to finish a started line
   (slow-loris) and to make progress on a queued reply (stalled write);
   past either deadline it is closed and counted, the server unharmed.
   A failed barrier flips the engine into degraded mode — the round's
   would-be acks are rewritten into retriable "degraded" errors, ticks
   probe the disk instead of flushing, and entry/exit are logged one
   line each. *)

type listen = Unix_sock of string | Tcp of string * int

type conn = {
  fd : Unix.file_descr;
  acc : Buffer.t;  (* bytes read, up to the last unterminated line *)
  mutable out : string;  (* queued response bytes not yet written *)
  mutable out_off : int;
  mutable close_after_write : bool;
  (* Containment deadlines, 0.0 = unarmed: [read_deadline] arms when a
     line is left unterminated (a well-behaved client sends whole
     lines; a slow-loris dribbles), [write_deadline] arms when a reply
     is queued and re-arms on every written byte (a stalled reader
     stops making progress). *)
  mutable read_deadline : float;
  mutable write_deadline : float;
}

(* A response owed to a connection once the round's barrier has run.
   [latency_from] carries the receipt timestamp of admissions so the
   ack latency histogram measures receipt → post-fsync. *)
type pending_reply = {
  reply_conn : conn;
  reply_line : string;
  latency_from : float option;
}

let read_chunk = 4096

let close_conn conns c =
  (try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ());
  conns := List.filter (fun c' -> c'.fd != c.fd) !conns

let queue_reply c line =
  c.out <- c.out ^ line ^ "\n"

let count name =
  if Obs.enabled () then Obs.Registry.incr (Obs.Registry.counter name)

(* Apply one parsed request; returns the reply line, whether it was a
   fresh admission (needs the barrier before acking), and whether the
   server should shut down after this round. *)
let apply engine (req : Protocol.request) =
  match req with
  | Protocol.Submit js -> (
      match Admission.submit engine js with
      | Admission.Admitted { admit_id; duplicate } ->
          ( Protocol.ok
              [
                ("id", Json.Num (float_of_int admit_id));
                ("duplicate", Json.Bool duplicate);
              ],
            (not duplicate),
            false )
      | Admission.Rejected "degraded" -> (Protocol.err_degraded, false, false)
      | Admission.Rejected reason ->
          (Protocol.err ("rejected: " ^ reason), false, false))
  | Protocol.Status id -> (
      match Admission.status engine id with
      | None -> (Protocol.err "unknown admission id", false, false)
      | Some s ->
          ( Protocol.ok
              [
                ("phase", Json.Str s.Admission.phase);
                ( "injected_at",
                  match s.Admission.injected_at with
                  | None -> Json.Null
                  | Some f -> Json.Num f );
                ("placements", Json.Num (float_of_int s.Admission.placements));
                ("completions", Json.Num (float_of_int s.Admission.completions));
              ],
            false,
            false ))
  | Protocol.Stats ->
      let s = Admission.stats engine in
      ( Protocol.ok
          [
            ("admitted", Json.Num (float_of_int s.Admission.admitted));
            ("rejected", Json.Num (float_of_int s.Admission.rejected));
            ("pending", Json.Num (float_of_int s.Admission.pending_now));
            ("injected", Json.Num (float_of_int s.Admission.injected));
            ("batches", Json.Num (float_of_int s.Admission.batches));
            ("wal_records", Json.Num (float_of_int s.Admission.wal_records));
            ("sim_now", Json.Num s.Admission.sim_now);
            ("degraded", Json.Bool s.Admission.degraded_now);
            ( "degraded_rejects",
              Json.Num (float_of_int s.Admission.degraded_rejects) );
            ("io_errors", Json.Num (float_of_int s.Admission.io_errors));
          ],
        false,
        false )
  | Protocol.Drain ->
      let n = Admission.flush engine in
      (Protocol.ok [ ("injected", Json.Num (float_of_int n)) ], false, false)
  | Protocol.Shutdown -> (Protocol.ok [ ("shutdown", Json.Bool true) ], false, true)

(* Split complete lines off a connection's accumulator.  Returns the
   lines in arrival order; enforces the line-length bound on both the
   complete lines and the unterminated remainder. *)
let take_lines c =
  let data = Buffer.contents c.acc in
  let rec split start acc =
    match String.index_from_opt data start '\n' with
    | Some i ->
        let line = String.sub data start (i - start) in
        split (i + 1) (line :: acc)
    | None ->
        Buffer.clear c.acc;
        Buffer.add_substring c.acc data start (String.length data - start);
        List.rev acc
  in
  split 0 []

let listening_socket listen =
  match listen with
  | Unix_sock path ->
      (* replace a stale socket file from a crashed predecessor *)
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (addr, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
      Unix.listen fd 64;
      fd

let serve ~engine ~listen ~tick_interval ?(max_conns = 64) ?(io_timeout = 30.0) () =
  (* a peer closing mid-write must not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lfd = listening_socket listen in
  let conns = ref [] in
  let shutdown = ref false in
  let next_tick = ref (Prelude.Clock.now () +. tick_interval) in
  let ack_hist =
    if Obs.enabled () then Some (Obs.Registry.histogram "server.ack_latency_s")
    else None
  in
  (* Degraded-mode transitions print one greppable line each (the CI
     torture leg asserts both); [was_degraded] tracks edges. *)
  let was_degraded = ref false in
  let check_health () =
    let d = Admission.degraded engine in
    if d && not !was_degraded then
      Printf.printf "degraded: shedding submissions after storage failure (%s)\n%!"
        (Admission.last_error engine)
    else if (not d) && !was_degraded then
      Printf.printf "healthy: storage writes succeed again, admissions resume\n%!";
    was_degraded := d
  in
  let process_round ready_conns =
    (* 1. read everything that is ready *)
    let chunk = Bytes.create read_chunk in
    List.iter
      (fun c ->
        match
          (match Failpt.eval "net.read" with
          | Some (Failpt.Errno e) -> raise (Unix.Unix_error (e, "read", ""))
          | Some (Failpt.Short _) | Some (Failpt.Delay _) | None -> ());
          Unix.read c.fd chunk 0 read_chunk
        with
        | 0 -> close_conn conns c
        | n ->
            Buffer.add_subbytes c.acc chunk 0 n;
            if
              Buffer.length c.acc > Protocol.max_line_bytes
              && not (String.contains (Buffer.contents c.acc) '\n')
            then begin
              (* unbounded line: structured error, then hang up *)
              queue_reply c
                (Protocol.err
                   (Printf.sprintf "line exceeds %d bytes" Protocol.max_line_bytes));
              c.close_after_write <- true;
              Buffer.clear c.acc
            end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (_, _, _) -> close_conn conns c)
      ready_conns;
    (* 2. parse + apply complete lines, deferring replies *)
    let replies = ref [] in
    let admissions = ref 0 in
    List.iter
      (fun c ->
        if not c.close_after_write then begin
          List.iter
            (fun line ->
              if String.trim line = "" then ()
              else begin
                let received = Prelude.Clock.now () in
                match Protocol.parse_request line with
                | Error msg ->
                    replies :=
                      { reply_conn = c; reply_line = Protocol.err msg;
                        latency_from = None }
                      :: !replies
                | Ok req ->
                    let reply_line, admitted, stop = apply engine req in
                    if admitted then incr admissions;
                    if stop then shutdown := true;
                    replies :=
                      { reply_conn = c; reply_line;
                        latency_from = (if admitted then Some received else None) }
                      :: !replies
              end)
            (take_lines c);
          (* a line left unterminated starts the slow-loris clock; a
             whole-line client disarms it *)
          if Buffer.length c.acc > 0 then begin
            if c.read_deadline = 0.0 then
              c.read_deadline <- Prelude.Clock.now () +. io_timeout
          end
          else c.read_deadline <- 0.0
        end)
      !conns;
    (* 3. WAL-before-ack: one barrier covers the whole round.  If the
       fsync fails, nothing submitted this round is durable — every
       admission reply is rewritten into the retriable degraded error
       (the engine keeps the frames; idempotent retries converge). *)
    let barrier_ok = if !admissions > 0 then Admission.ack_barrier engine else true in
    if not barrier_ok then check_health ();
    let acked = Prelude.Clock.now () in
    List.iter
      (fun r ->
        let line =
          if barrier_ok || r.latency_from = None then r.reply_line
          else Protocol.err_degraded
        in
        (match (r.latency_from, ack_hist) with
        | Some t0, Some h when barrier_ok -> Obs.Histogram.observe h (acked -. t0)
        | _ -> ());
        queue_reply r.reply_conn line)
      (List.rev !replies);
    (* 4. early flush when the batch fills *)
    if (not (Admission.degraded engine)) && Admission.batch_due engine then
      ignore (Admission.flush engine : int)
  in
  let write_ready ready =
    List.iter
      (fun c ->
        let len = String.length c.out - c.out_off in
        if len > 0 then
          match
            match Failpt.eval "net.write" with
            | Some (Failpt.Errno e) -> raise (Unix.Unix_error (e, "write", ""))
            | Some (Failpt.Short k) ->
                (* forced partial write: the resume path must finish the
                   reply on a later round *)
                Unix.write_substring c.fd c.out c.out_off (min (max 1 k) len)
            | Some (Failpt.Delay _) | None ->
                Unix.write_substring c.fd c.out c.out_off len
          with
          | n ->
              c.out_off <- c.out_off + n;
              if c.out_off >= String.length c.out then begin
                c.out <- "";
                c.out_off <- 0;
                c.write_deadline <- 0.0;
                if c.close_after_write then close_conn conns c
              end
              else if n > 0 then
                (* progress re-arms the stall clock *)
                c.write_deadline <- Prelude.Clock.now () +. io_timeout
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | exception Unix.Unix_error (_, _, _) -> close_conn conns c)
      ready
  in
  let accept_ready () =
    match
      (match Failpt.eval "net.accept" with
      | Some (Failpt.Errno e) -> raise (Unix.Unix_error (e, "accept", ""))
      | Some (Failpt.Short _) | Some (Failpt.Delay _) | None -> ());
      Unix.accept lfd
    with
    | fd, _ ->
        if List.length !conns >= max_conns then (try Unix.close fd with _ -> ())
        else begin
          Unix.set_nonblock fd;
          conns :=
            { fd; acc = Buffer.create 256; out = ""; out_off = 0;
              close_after_write = false; read_deadline = 0.0; write_deadline = 0.0 }
            :: !conns
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        (* ECONNABORTED, EMFILE, injected accept failures: drop this
           attempt, keep serving — the backlog retries on the next
           readiness *)
        count "server.accept_errors"
  in
  (* Close (and count) every connection past a containment deadline. *)
  let enforce_deadlines () =
    let now = Prelude.Clock.now () in
    List.iter
      (fun c ->
        if
          (c.read_deadline > 0.0 && now > c.read_deadline)
          || (c.write_deadline > 0.0 && now > c.write_deadline)
        then begin
          count "server.conn_timeouts";
          close_conn conns c
        end)
      !conns
  in
  let finally () =
    List.iter (fun c -> try Unix.close c.fd with _ -> ()) !conns;
    (try Unix.close lfd with _ -> ());
    match listen with
    | Unix_sock path -> ( try Unix.unlink path with _ -> ())
    | Tcp _ -> ()
  in
  Fun.protect ~finally (fun () ->
      Unix.set_nonblock lfd;
      while (not !shutdown) || List.exists (fun c -> c.out <> "") !conns do
        (* Wake for whichever comes first: the flush tick, the next
           degraded-mode disk probe, or a connection deadline. *)
        let wake =
          List.fold_left
            (fun w c ->
              let w = if c.read_deadline > 0.0 then Float.min w c.read_deadline else w in
              if c.write_deadline > 0.0 then Float.min w c.write_deadline else w)
            (match Admission.probe_at engine with
            | Some p -> Float.min !next_tick p
            | None -> !next_tick)
            !conns
        in
        let timeout = Float.max 0.0 (wake -. Prelude.Clock.now ()) in
        let rd = if !shutdown then [] else lfd :: List.map (fun c -> c.fd) !conns in
        let wr =
          List.filter_map
            (fun c -> if c.out <> "" then Some c.fd else None)
            !conns
        in
        let readable, writable, _ =
          try Unix.select rd wr [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.mem lfd readable then accept_ready ();
        let ready_conns =
          List.filter (fun c -> List.mem c.fd readable) !conns
        in
        if not !shutdown then process_round ready_conns;
        (* arm the write stall clock for replies queued this round *)
        List.iter
          (fun c ->
            if c.out <> "" && c.write_deadline = 0.0 then
              c.write_deadline <- Prelude.Clock.now () +. io_timeout)
          !conns;
        write_ready (List.filter (fun c -> List.mem c.fd writable) !conns);
        enforce_deadlines ();
        if Admission.degraded engine then begin
          ignore (Admission.probe engine : bool);
          check_health ()
        end;
        if Prelude.Clock.now () >= !next_tick then begin
          if (not !shutdown) && not (Admission.degraded engine) then
            ignore (Admission.flush engine : int);
          next_tick := Prelude.Clock.now () +. tick_interval
        end
      done;
      Admission.finish engine)
