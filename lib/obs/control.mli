(** Master switch of the observability layer.

    Everything in [lib/obs] is off by default.  Hot paths guard each
    emission site with [if Obs.enabled () then ...]; because OCaml only
    evaluates a function application inside the branch it occurs in, a
    disabled build pays one load-and-branch per site and allocates
    nothing. *)

(** [enabled ()] is [true] while instrumentation is switched on. *)
val enabled : unit -> bool

(** [set_enabled b] flips the global switch. *)
val set_enabled : bool -> unit

(** [now_wall ()] is the current wall-clock time in seconds
    ([Unix.gettimeofday]); exposed here so instrumented libraries need
    no direct [unix] dependency for timing. *)
val now_wall : unit -> float
