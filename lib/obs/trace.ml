type level = Debug | Info | Warn
type value = Int of int | Float of float | Str of string | Bool of bool

type record = {
  seq : int;
  t_sim : float;
  t_wall : float;
  level : level;
  name : string;
  fields : (string * value) list;
}

(* --- ring buffer --- *)

let default_capacity = 65536
let ring : record option array ref = ref (Array.make default_capacity None)
let head = ref 0 (* next write position *)
let stored = ref 0
let seq_counter = ref 0
let sim_clock = ref 0.0
let sink : out_channel option ref = ref None

let set_sim_time t = sim_clock := t
let sim_time () = !sim_clock
let length () = !stored

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  ring := Array.make n None;
  head := 0;
  stored := 0

let clear () =
  Array.fill !ring 0 (Array.length !ring) None;
  head := 0;
  stored := 0;
  seq_counter := 0

let records () =
  let cap = Array.length !ring in
  let n = !stored in
  let first = (!head - n + cap) mod cap in
  List.init n (fun i ->
      match !ring.((first + i) mod cap) with
      | Some r -> r
      | None -> assert false)

(* --- JSON rendering --- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_json_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string b s;
    (* ensure the token parses back as a float, not an int *)
    if
      not
        (String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'i') s)
    then Buffer.add_string b ".0"
  end

let level_to_string = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_of_string = function
  | "debug" -> Debug
  | "info" -> Info
  | "warn" -> Warn
  | s -> failwith ("Trace.of_json: unknown level " ^ s)

let to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"seq\":";
  Buffer.add_string b (string_of_int r.seq);
  Buffer.add_string b ",\"t_sim\":";
  buf_add_json_float b r.t_sim;
  Buffer.add_string b ",\"t_wall\":";
  buf_add_json_float b r.t_wall;
  Buffer.add_string b ",\"level\":";
  buf_add_json_string b (level_to_string r.level);
  Buffer.add_string b ",\"event\":";
  buf_add_json_string b r.name;
  Buffer.add_string b ",\"fields\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Float f -> buf_add_json_float b f
      | Str s -> buf_add_json_string b s
      | Bool bo -> Buffer.add_string b (if bo then "true" else "false"))
    r.fields;
  Buffer.add_string b "}}";
  Buffer.contents b

(* --- minimal JSON parser (only the subset to_json produces) --- *)

type token =
  | TLbrace
  | TRbrace
  | TColon
  | TComma
  | TString of string
  | TNumber of string
  | TBool of bool
  | TNull

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '{' ->
        toks := TLbrace :: !toks;
        incr i
    | '}' ->
        toks := TRbrace :: !toks;
        incr i
    | ':' ->
        toks := TColon :: !toks;
        incr i
    | ',' ->
        toks := TComma :: !toks;
        incr i
    | '"' ->
        let b = Buffer.create 16 in
        incr i;
        let finished = ref false in
        while not !finished do
          if !i >= n then failwith "Trace.of_json: unterminated string";
          let c = s.[!i] in
          if c = '"' then begin
            finished := true;
            incr i
          end
          else if c = '\\' then begin
            if !i + 1 >= n then failwith "Trace.of_json: bad escape";
            (match s.[!i + 1] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if !i + 5 >= n then failwith "Trace.of_json: bad \\u escape";
                let code = int_of_string ("0x" ^ String.sub s (!i + 2) 4) in
                if code > 0xff then failwith "Trace.of_json: non-latin \\u escape"
                else Buffer.add_char b (Char.chr code);
                i := !i + 4
            | c -> failwith (Printf.sprintf "Trace.of_json: bad escape \\%c" c));
            i := !i + 2
          end
          else begin
            Buffer.add_char b c;
            incr i
          end
        done;
        toks := TString (Buffer.contents b) :: !toks
    | 't' when !i + 4 <= n && String.sub s !i 4 = "true" ->
        toks := TBool true :: !toks;
        i := !i + 4
    | 'f' when !i + 5 <= n && String.sub s !i 5 = "false" ->
        toks := TBool false :: !toks;
        i := !i + 5
    | 'n' when !i + 4 <= n && String.sub s !i 4 = "null" ->
        toks := TNull :: !toks;
        i := !i + 4
    | '-' | '0' .. '9' ->
        let j = ref !i in
        while
          !j < n
          &&
          match s.[!j] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr j
        done;
        toks := TNumber (String.sub s !i (!j - !i)) :: !toks;
        i := !j
    | c -> failwith (Printf.sprintf "Trace.of_json: unexpected character %c" c));
  done;
  List.rev !toks

let of_json line =
  let toks = tokenize line in
  let expect t = function
    | t' :: rest when t = t' -> rest
    | _ -> failwith "Trace.of_json: malformed record"
  in
  let key = function
    | TString k :: TColon :: rest -> (k, rest)
    | _ -> failwith "Trace.of_json: expected key"
  in
  let num s = try float_of_string s with _ -> failwith "Trace.of_json: bad number" in
  let rec fields acc = function
    | TRbrace :: rest -> (List.rev acc, rest)
    | TComma :: rest -> fields acc rest
    | toks ->
        let k, rest = key toks in
        let v, rest =
          match rest with
          | TString s :: rest -> (Str s, rest)
          | TBool b :: rest -> (Bool b, rest)
          | TNull :: rest -> (Float Float.nan, rest)
          | TNumber s :: rest ->
              if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then (Float (num s), rest)
              else (Int (int_of_string s), rest)
          | _ -> failwith "Trace.of_json: bad field value"
        in
        fields ((k, v) :: acc) rest
  in
  let rec top seq t_sim t_wall level name flds = function
    | [] -> (seq, t_sim, t_wall, level, name, flds)
    | TRbrace :: rest -> top seq t_sim t_wall level name flds rest
    | TComma :: rest -> top seq t_sim t_wall level name flds rest
    | toks -> (
        let k, rest = key toks in
        match k with
        | "seq" -> (
            match rest with
            | TNumber s :: rest -> top (int_of_string s) t_sim t_wall level name flds rest
            | _ -> failwith "Trace.of_json: bad seq")
        | "t_sim" -> (
            match rest with
            | TNumber s :: rest -> top seq (num s) t_wall level name flds rest
            | TNull :: rest -> top seq Float.nan t_wall level name flds rest
            | _ -> failwith "Trace.of_json: bad t_sim")
        | "t_wall" -> (
            match rest with
            | TNumber s :: rest -> top seq t_sim (num s) level name flds rest
            | TNull :: rest -> top seq t_sim Float.nan level name flds rest
            | _ -> failwith "Trace.of_json: bad t_wall")
        | "level" -> (
            match rest with
            | TString s :: rest -> top seq t_sim t_wall (level_of_string s) name flds rest
            | _ -> failwith "Trace.of_json: bad level")
        | "event" -> (
            match rest with
            | TString s :: rest -> top seq t_sim t_wall level s flds rest
            | _ -> failwith "Trace.of_json: bad event")
        | "fields" ->
            let rest = expect TLbrace rest in
            let fs, rest = fields [] rest in
            top seq t_sim t_wall level name fs rest
        | k -> failwith ("Trace.of_json: unknown key " ^ k))
  in
  let toks = expect TLbrace toks in
  let seq, t_sim, t_wall, level, name, flds = top 0 0.0 0.0 Info "" [] toks in
  { seq; t_sim; t_wall; level; name; fields = flds }

(* --- emission --- *)

let open_jsonl path =
  (match !sink with Some oc -> close_out oc | None -> ());
  sink := Some (open_out path)

let close_jsonl () =
  match !sink with
  | Some oc ->
      close_out oc;
      sink := None
  | None -> ()

let emit ?(level = Info) name fields =
  incr seq_counter;
  let r =
    {
      seq = !seq_counter;
      t_sim = !sim_clock;
      t_wall = Control.now_wall ();
      level;
      name;
      fields;
    }
  in
  let cap = Array.length !ring in
  !ring.(!head) <- Some r;
  head := (!head + 1) mod cap;
  if !stored < cap then incr stored;
  match !sink with
  | Some oc ->
      output_string oc (to_json r);
      output_char oc '\n'
  | None -> ()

let field r k = List.assoc_opt k r.fields
