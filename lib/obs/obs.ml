(** Observability layer: structured tracing, counters/histograms, and
    solver profiling.

    Everything is off by default; flip the switch with {!set_enabled}
    (the CLI's [--trace]/[--obs-summary] flags and the bench harness's
    [HIRE_BENCH_TRACE]/[HIRE_BENCH_OBS] knobs do).  Instrumented call
    sites follow one convention:

    {[
      if Obs.enabled () then
        Obs.Trace.emit "task_place" [ ("tg", Obs.Trace.Int tg_id) ]
    ]}

    Because the emission call sits inside the branch, a disabled run
    pays one load-and-branch per site and allocates nothing — see
    [test/test_obs.ml] for the test pinning that down.

    - {!Trace} — ring-buffered structured events with an optional JSONL
      sink.
    - {!Registry} — named counters, gauges, and histograms.
    - {!Histogram} — log-scale histograms (also used standalone by
      [Sim.Metrics]).
    - {!Solver_profile} — per-solve MCMF profile record.

    Event and instrument inventory: [docs/OBSERVABILITY.md]. *)

module Histogram = Histogram
module Trace = Trace
module Registry = Registry
module Solver_profile = Solver_profile

(** [enabled ()] is [true] while instrumentation is on.  See
    {!Control.enabled}. *)
let enabled = Control.enabled

(** Flip the global instrumentation switch.  See {!Control.set_enabled}. *)
let set_enabled = Control.set_enabled

(** Wall-clock seconds ([Unix.gettimeofday]).  See {!Control.now_wall}. *)
let now_wall = Control.now_wall
