(* The enable switch is an atomic so flipping it is well-defined across
   domains: the portfolio race (Flow.Portfolio) quiesces obs before
   spawning solver domains and restores it after joining them, relying
   on spawn/join ordering plus this atomic for publication. *)
let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b
let now_wall () = Unix.gettimeofday ()
