let flag = ref false
let enabled () = !flag
let set_enabled b = flag := b
let now_wall () = Unix.gettimeofday ()
