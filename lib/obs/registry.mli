(** Global registry of named counters, gauges, and histograms.

    Any layer can obtain an instrument by name ({!counter}, {!gauge},
    {!histogram}); the first call creates it, later calls return the
    same instance, so call sites need no shared plumbing.  Names are
    dot-separated, lowercase, most-general component first —
    ["sched.yarn-sim.queue_depth"] (the full inventory lives in
    [docs/OBSERVABILITY.md]).

    Like the tracer, updates MUST be guarded by [Obs.enabled ()] at the
    call site; the registry itself never checks the switch. *)

(** Monotone counter. *)
type counter

(** Last-write-wins value. *)
type gauge

(** [counter name] is the counter registered under [name], created on
    first use. *)
val counter : string -> counter

(** [incr ?by c] adds [by] (default 1) to [c]. *)
val incr : ?by:int -> counter -> unit

(** Current value of a counter. *)
val counter_value : counter -> int

(** [gauge name] is the gauge registered under [name], created on first
    use. *)
val gauge : string -> gauge

(** [set g v] records the latest value of [g]. *)
val set : gauge -> float -> unit

(** Current value of a gauge ([0.] before the first {!set}). *)
val gauge_value : gauge -> float

(** [histogram name] is the (default-layout) histogram registered under
    [name], created on first use. *)
val histogram : string -> Histogram.t

(** Registered counters as sorted [(name, value)] pairs. *)
val counters : unit -> (string * int) list

(** Registered gauges as sorted [(name, value)] pairs. *)
val gauges : unit -> (string * float) list

(** Registered histograms as sorted [(name, histogram)] pairs. *)
val histograms : unit -> (string * Histogram.t) list

(** Remove every registered instrument (tests and multi-run drivers). *)
val reset : unit -> unit

(** Print every non-empty instrument, one per line, sorted by name. *)
val pp_summary : Format.formatter -> unit -> unit
