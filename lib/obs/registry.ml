type counter = { mutable c : int }
type gauge = { mutable g : float }

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 32
let histograms_tbl : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c = 0 } in
      Hashtbl.add counters_tbl name c;
      c

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge name =
  match Hashtbl.find_opt gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g = 0.0 } in
      Hashtbl.add gauges_tbl name g;
      g

let set g v = g.g <- v
let gauge_value g = g.g

let histogram name =
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add histograms_tbl name h;
      h

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () = sorted_bindings counters_tbl (fun c -> c.c)
let gauges () = sorted_bindings gauges_tbl (fun g -> g.g)
let histograms () = sorted_bindings histograms_tbl (fun h -> h)

let reset () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset gauges_tbl;
  Hashtbl.reset histograms_tbl

let pp_summary fmt () =
  List.iter (fun (name, v) -> Format.fprintf fmt "%-40s %d@." name v) (counters ());
  List.iter (fun (name, v) -> Format.fprintf fmt "%-40s %.6g@." name v) (gauges ());
  List.iter
    (fun (name, h) ->
      if Histogram.count h > 0 then Format.fprintf fmt "%-40s %a@." name Histogram.pp_summary h)
    (histograms ())
