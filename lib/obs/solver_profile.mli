(** Per-solve profile of a min-cost max-flow run.

    Both solver backends ({!Flow.Mcmf.solve} and
    {!Flow.Cost_scaling.solve}) attach one of these records to their
    result; {!emit} publishes it through the tracer and registry so the
    CLI, benches, and regression tests see solver behaviour without
    touching solver internals.

    Fields that do not apply to a backend are [0]: successive shortest
    paths reports [augmentations] but no [phases]/[pushes]/[relabels];
    cost scaling is the reverse. *)

type t = {
  solver : string;  (** ["ssp"] or ["cost-scaling"] *)
  nodes : int;  (** nodes in the solved network *)
  arcs : int;  (** arcs in the solved network *)
  augmentations : int;  (** shortest-path augmentations (SSP) *)
  phases : int;  (** epsilon-scaling phases (cost scaling) *)
  pushes : int;  (** push operations (cost scaling) *)
  relabels : int;  (** relabel operations (cost scaling) *)
  scratch_reused : bool;  (** solve ran entirely in a reused workspace *)
  warm_start : bool;  (** potentials carried over from the previous solve *)
  stages : (string * float) list;
      (** per-stage wall seconds, e.g. [("dijkstra", 0.8)]; empty when
          instrumentation was disabled during the solve *)
  wall_s : float;  (** total wall seconds of the solve *)
}

(** A profile with the given [solver] name and every numeric field zero.
    Solvers return this shape (with sizes filled in) when
    instrumentation is disabled. *)
val zero : solver:string -> t

(** [emit t] publishes [t]: a ["solver_profile"] trace event carrying
    every field (stages flattened as ["stage.<name>"]), the
    ["flow.solves"] counter, and the ["flow.solve_s"] histogram.  Call
    under an [Obs.enabled ()] guard. *)
val emit : t -> unit
