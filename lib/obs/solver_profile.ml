type t = {
  solver : string;
  nodes : int;
  arcs : int;
  augmentations : int;
  phases : int;
  pushes : int;
  relabels : int;
  scratch_reused : bool;
  warm_start : bool;
  stages : (string * float) list;
  wall_s : float;
}

let zero ~solver =
  {
    solver;
    nodes = 0;
    arcs = 0;
    augmentations = 0;
    phases = 0;
    pushes = 0;
    relabels = 0;
    scratch_reused = false;
    warm_start = false;
    stages = [];
    wall_s = 0.0;
  }

let emit t =
  Trace.emit "solver_profile"
    ([
       ("solver", Trace.Str t.solver);
       ("nodes", Trace.Int t.nodes);
       ("arcs", Trace.Int t.arcs);
       ("augmentations", Trace.Int t.augmentations);
       ("phases", Trace.Int t.phases);
       ("pushes", Trace.Int t.pushes);
       ("relabels", Trace.Int t.relabels);
       ("scratch_reused", Trace.Bool t.scratch_reused);
       ("warm_start", Trace.Bool t.warm_start);
       ("wall_s", Trace.Float t.wall_s);
     ]
    @ List.map (fun (name, s) -> ("stage." ^ name, Trace.Float s)) t.stages);
  Registry.incr (Registry.counter "flow.solves");
  Histogram.observe (Registry.histogram "flow.solve_s") t.wall_s
