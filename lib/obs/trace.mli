(** Low-overhead structured event tracer.

    Events are appended to a global ring buffer ({!emit}); the newest
    [capacity] records survive.  Each record carries a monotonically
    increasing sequence number, the simulation clock at emission time
    (set by the driving simulator via {!set_sim_time}), the wall clock,
    a severity, an event name, and a list of typed fields.

    Emission sites MUST be guarded by [Obs.enabled ()] — {!emit} itself
    does not check the switch, so an unguarded call both allocates its
    arguments and records the event.  The guard convention keeps the
    disabled-mode cost to a single load-and-branch per site.

    An optional JSONL sink ({!open_jsonl}) additionally streams every
    emitted record to a file, one JSON object per line (schema in
    [docs/OBSERVABILITY.md]). *)

(** Severity of a trace record. *)
type level = Debug | Info | Warn

(** A typed field value. *)
type value = Int of int | Float of float | Str of string | Bool of bool

(** One trace record. *)
type record = {
  seq : int;  (** global emission index, starting at 1 *)
  t_sim : float;  (** simulation clock (last {!set_sim_time}) *)
  t_wall : float;  (** wall clock at emission *)
  level : level;
  name : string;  (** event name, e.g. ["solver_profile"] *)
  fields : (string * value) list;
}

(** [set_sim_time t] updates the simulation clock stamped onto
    subsequent records. *)
val set_sim_time : float -> unit

(** Current simulation clock ([0.] before the first {!set_sim_time}). *)
val sim_time : unit -> float

(** [emit ?level name fields] appends a record (default level
    {!Info}) and streams it to the JSONL sink when one is open. *)
val emit : ?level:level -> string -> (string * value) list -> unit

(** Newest-last list of the retained records. *)
val records : unit -> record list

(** Number of records currently retained (≤ capacity). *)
val length : unit -> int

(** [set_capacity n] empties the ring and resizes it to [n] records
    (default capacity 65536).
    @raise Invalid_argument when [n <= 0]. *)
val set_capacity : int -> unit

(** Drop all retained records and reset the sequence counter.  Leaves
    the JSONL sink and the simulation clock untouched. *)
val clear : unit -> unit

(** [open_jsonl path] opens (truncates) [path] and streams every
    subsequently emitted record to it.  Replaces any previous sink. *)
val open_jsonl : string -> unit

(** Flush and close the JSONL sink, if any. *)
val close_jsonl : unit -> unit

(** [to_json r] is the single-line JSON rendering of [r] (no trailing
    newline) — exactly what the JSONL sink writes. *)
val to_json : record -> string

(** [of_json line] parses a line produced by {!to_json}.
    @raise Failure on malformed input. *)
val of_json : string -> record

(** [field r key] is the value of [key] in [r.fields], if present. *)
val field : record -> string -> value option
