type t = {
  lo : float;
  log_gamma : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(lo = 1e-6) ?(decades = 13) ?(buckets_per_decade = 20) () =
  if lo <= 0.0 then invalid_arg "Histogram.create: lo must be positive";
  if decades <= 0 || buckets_per_decade <= 0 then
    invalid_arg "Histogram.create: decades and buckets_per_decade must be positive";
  {
    lo;
    log_gamma = Float.log 10.0 /. float_of_int buckets_per_decade;
    counts = Array.make (decades * buckets_per_decade) 0;
    underflow = 0;
    overflow = 0;
    count = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let observe t v =
  if not (Float.is_nan v) then begin
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    if v < t.lo then t.underflow <- t.underflow + 1
    else begin
      let i = int_of_float (Float.log (v /. t.lo) /. t.log_gamma) in
      if i >= Array.length t.counts then t.overflow <- t.overflow + 1
      else t.counts.(max 0 i) <- t.counts.(max 0 i) + 1
    end
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = t.vmin
let max_value t = t.vmax

let bucket_repr t i = t.lo *. Float.exp (t.log_gamma *. (float_of_int i +. 0.5))

let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = Float.max 1.0 (Float.ceil (q *. float_of_int t.count)) in
    let target = int_of_float target in
    let clamp v = Float.max t.vmin (Float.min t.vmax v) in
    if t.underflow >= target then clamp t.vmin
    else begin
      let cum = ref t.underflow in
      let result = ref t.vmax in
      (try
         for i = 0 to Array.length t.counts - 1 do
           cum := !cum + t.counts.(i);
           if !cum >= target then begin
             result := bucket_repr t i;
             raise Exit
           end
         done
       with Exit -> ());
      clamp !result
    end
  end

let same_layout a b =
  a.lo = b.lo && a.log_gamma = b.log_gamma && Array.length a.counts = Array.length b.counts

let merge_into dst src =
  if not (same_layout dst src) then invalid_arg "Histogram.merge_into: layouts differ";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.underflow <- dst.underflow + src.underflow;
  dst.overflow <- dst.overflow + src.overflow;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax

let copy t = { t with counts = Array.copy t.counts }

let merged = function
  | [] -> create ()
  | h :: tl ->
      let acc = copy h in
      List.iter (merge_into acc) tl;
      acc

let cdf_points ~points t =
  if t.count = 0 || points <= 0 then []
  else
    List.init points (fun i ->
        let f = float_of_int (i + 1) /. float_of_int points in
        (quantile t f, f))

let ccdf_points ~points t =
  if t.count = 0 || points <= 0 then []
  else
    List.init points (fun i ->
        let f = float_of_int i /. float_of_int points in
        (quantile t f, 1.0 -. f))

type raw = {
  r_lo : float;
  r_log_gamma : float;
  r_counts : int array;
  r_underflow : int;
  r_overflow : int;
  r_count : int;
  r_sum : float;
  r_vmin : float;
  r_vmax : float;
}

let to_raw t =
  {
    r_lo = t.lo;
    r_log_gamma = t.log_gamma;
    r_counts = Array.copy t.counts;
    r_underflow = t.underflow;
    r_overflow = t.overflow;
    r_count = t.count;
    r_sum = t.sum;
    r_vmin = t.vmin;
    r_vmax = t.vmax;
  }

let of_raw r =
  {
    lo = r.r_lo;
    log_gamma = r.r_log_gamma;
    counts = Array.copy r.r_counts;
    underflow = r.r_underflow;
    overflow = r.r_overflow;
    count = r.r_count;
    sum = r.r_sum;
    vmin = r.r_vmin;
    vmax = r.r_vmax;
  }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.underflow <- 0;
  t.overflow <- 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

let pp_summary fmt t =
  if t.count = 0 then Format.pp_print_string fmt "n=0"
  else
    Format.fprintf fmt "n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g" t.count (mean t)
      (quantile t 0.5) (quantile t 0.95) (quantile t 0.99) t.vmax
