(** Log-scale histograms with exact count/sum/min/max and approximate
    quantiles (p50/p95/p99, …).

    Buckets are geometric: bucket [i] covers
    [\[lo·γ^i, lo·γ^(i+1))] with [γ = 10^(1/buckets_per_decade)], so the
    relative quantile error is bounded by half a bucket (≈ 5.9% at the
    default 20 buckets per decade).  Values below [lo] (including zero
    and negatives) land in a dedicated underflow bin represented by the
    exact minimum; values beyond the covered range land in an overflow
    bin represented by the exact maximum.

    Two histograms created with the same layout parameters can be merged
    ({!merge_into}, {!merged}); this is how multi-seed experiment cells
    aggregate their per-seed distributions. *)

type t

(** [create ()] makes an empty histogram.  The default layout — [lo] =
    1e-6, 13 decades, 20 buckets per decade — covers 1 µs to 10 Ms and
    suits both placement latencies and solver wall times in seconds.
    @param lo lower bound of the first bucket (must be positive)
    @param decades number of powers of ten covered
    @param buckets_per_decade resolution within a decade *)
val create : ?lo:float -> ?decades:int -> ?buckets_per_decade:int -> unit -> t

(** [observe t v] records one sample.  NaN samples are ignored. *)
val observe : t -> float -> unit

(** Number of recorded samples. *)
val count : t -> int

(** Exact sum of all recorded samples. *)
val sum : t -> float

(** Exact arithmetic mean; [0.] when empty. *)
val mean : t -> float

(** Exact minimum; [infinity] when empty. *)
val min_value : t -> float

(** Exact maximum; [neg_infinity] when empty. *)
val max_value : t -> float

(** [quantile t q] estimates the [q]-quantile ([q] in [\[0,1\]],
    clamped).  Returns the bucket's geometric midpoint clamped into
    [\[min_value, max_value\]]; [0.] when the histogram is empty. *)
val quantile : t -> float -> float

(** [merge_into dst src] adds [src]'s samples to [dst].
    @raise Invalid_argument when the layouts differ. *)
val merge_into : t -> t -> unit

(** [merged ts] is a fresh histogram holding all samples of [ts]
    (an empty default-layout histogram when [ts] is empty). *)
val merged : t list -> t

(** [cdf_points ~points t] is [points] evenly spaced
    [(value, cumulative-fraction)] pairs of the empirical CDF; [[]] when
    empty. *)
val cdf_points : points:int -> t -> (float * float) list

(** [ccdf_points ~points t] is the complementary CDF:
    [(value, fraction-above)] pairs; [[]] when empty. *)
val ccdf_points : points:int -> t -> (float * float) list

(** Complete internal state, exposed for external serialization (the
    journal checkpoints histograms through this).  [of_raw (to_raw t)]
    is bit-identical to [t] — quantiles, means, and printed summaries
    all reproduce exactly. *)
type raw = {
  r_lo : float;
  r_log_gamma : float;
  r_counts : int array;
  r_underflow : int;
  r_overflow : int;
  r_count : int;
  r_sum : float;
  r_vmin : float;
  r_vmax : float;
}

val to_raw : t -> raw
val of_raw : raw -> t

(** Drop all samples, keeping the layout. *)
val clear : t -> unit

(** One-line summary: count, mean, p50/p95/p99, max. *)
val pp_summary : Format.formatter -> t -> unit
