module Poly_req = Hire.Poly_req

type pick = time:float -> Modes.mjob -> Modes.tg_rt -> int option

let make ~name ~think_per_alloc ?(max_allocs_per_round = 200) ?(order_jobs = fun x -> x)
    ~pick cluster modes =
  (* Instruments are resolved once; updates stay behind [Obs.enabled]. *)
  let c_attempts = Obs.Registry.counter ("sched." ^ name ^ ".alloc_attempts") in
  let c_allocs = Obs.Registry.counter ("sched." ^ name ^ ".allocs") in
  let c_retries = Obs.Registry.counter ("sched." ^ name ^ ".pick_retries") in
  let g_depth = Obs.Registry.gauge ("sched." ^ name ^ ".queue_depth") in
  let submit ~time poly = Modes.submit modes ~time poly in
  let charge rt machine =
    match (rt : Modes.tg_rt).tg.Poly_req.kind with
    | Poly_req.Server_tg ->
        Sim.Cluster.place_server_task cluster ~server:machine ~demand:rt.tg.Poly_req.demand;
        None
    | Poly_req.Network_tg _ ->
        Some (Sim.Cluster.place_network_task cluster ~switch:machine ~tg:rt.tg ~shared:false)
  in
  let round ~time =
    let cancelled = ref (Modes.tick modes ~time) in
    let placements = ref [] in
    let attempts = ref 0 in
    let allocs = ref 0 in
    let jobs = order_jobs (Modes.jobs modes) in
    if Obs.enabled () then Obs.Registry.set g_depth (float_of_int (List.length jobs));
    List.iter
      (fun job ->
        List.iter
          (fun (rt : Modes.tg_rt) ->
            let stop = ref false in
            while (not !stop) && rt.remaining > 0 && !allocs < max_allocs_per_round do
              incr attempts;
              match pick ~time job rt with
              | None ->
                  if Obs.enabled () then Obs.Registry.incr c_retries;
                  stop := true
              | Some machine ->
                  let charged = charge rt machine in
                  let dropped = Modes.note_placement modes ~time job rt ~machine in
                  cancelled := !cancelled @ dropped;
                  placements :=
                    { Sim.Scheduler_intf.tg = rt.tg; machine; shared = false; charged }
                    :: !placements;
                  incr allocs
            done)
          (Modes.active_tgs modes job))
      jobs;
    Modes.cleanup modes;
    if Obs.enabled () then begin
      Obs.Registry.incr ~by:!attempts c_attempts;
      Obs.Registry.incr ~by:!allocs c_allocs
    end;
    {
      Sim.Scheduler_intf.placements = List.rev !placements;
      cancelled = !cancelled;
      think = think_per_alloc *. float_of_int (max 1 !attempts);
      solver_wall = None;
      resilience = None;
    }
  in
  {
    Sim.Scheduler_intf.name;
    submit;
    round;
    pending = (fun () -> Modes.pending modes);
    on_task_complete = (fun ~time:_ ~tg:_ ~machine:_ -> ());
    (* Stateless about machines: liveness is re-read from the cluster on
       every pick. *)
    on_node_event = (fun ~time:_ ~node:_ ~up:_ -> ());
    drop_task_group = (fun ~time:_ ~tg_id -> Modes.drop_tg modes ~tg_id);
    (* Cheap per-round decisions: recovery replays from genesis. *)
    persist = None;
  }
