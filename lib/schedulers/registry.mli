(** Name-indexed constructors for all schedulers, used by the CLI and the
    benchmark harness. *)

(** Known scheduler names: hire, hire-simple (the paper's §6.3 flavor
    ablation), hire-scaling (cost-scaling MCMF solver), hire-noloc /
    hire-noshare (cost-model ablations), yarn-concurrent, yarn-timeout,
    k8-concurrent, k8-timeout, sparrow-concurrent, sparrow-timeout,
    coco-timeout. *)
val names : string list

(** [create name ~seed cluster] builds the scheduler.  [resilience]
    installs a solver-resilience policy (docs/RESILIENCE.md) on the
    flow-based HIRE variants; the baselines ignore it.  [incremental]
    (default [true]) enables the persistent flow-network builder and
    solver-scratch reuse on the HIRE variants — results are identical
    either way (docs/PERFORMANCE.md); [false] is the escape hatch.
    [reopt] (default [true]) additionally makes the persistent builder
    undo the previous round's flow sparsely via touched-arc tracking —
    again bit-identical either way; [--no-reopt] is the measurement
    escape hatch and is ignored without [incremental].
    [portfolio] races the MCMF backends on OCaml 5 domains on the HIRE
    variants (docs/PARALLELISM.md) — effective only together with a
    [resilience] policy; [portfolio_eager] overrides the race's spawn
    policy (tests force eager fan-out).
    @raise Invalid_argument on unknown names. *)
val create :
  ?resilience:Hire.Hire_scheduler.resilience ->
  ?incremental:bool ->
  ?reopt:bool ->
  ?portfolio:bool ->
  ?portfolio_eager:bool ->
  string ->
  seed:int ->
  Sim.Cluster.t ->
  Sim.Scheduler_intf.t
