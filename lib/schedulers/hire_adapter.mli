(** Adapter exposing the HIRE scheduler ({!Hire.Hire_scheduler}) through
    the simulator's scheduler interface.  Charges the cluster ledgers for
    the placements HIRE decides (with sharing enabled — HIRE tracks
    [nol]) and models think time as a function of flow-network size, as
    the paper calibrates (§6.2). *)

val create :
  ?simple_flavor:bool ->
  ?params:Hire.Cost_model.params ->
  ?solver:Hire.Flow_network.solver ->
  ?shared:bool ->
  ?resilience:Hire.Hire_scheduler.resilience ->
  ?incremental:bool ->
  ?reopt:bool ->
  ?warm_start:bool ->
  ?portfolio:bool ->
  ?portfolio_eager:bool ->
  ?name:string ->
  Sim.Cluster.t ->
  Sim.Scheduler_intf.t
