let names =
  [
    "hire";
    "hire-simple";
    "hire-scaling";
    "hire-noloc";
    "hire-noshare";
    "yarn-concurrent";
    "yarn-timeout";
    "k8-concurrent";
    "k8-timeout";
    "sparrow-concurrent";
    "sparrow-timeout";
    "coco-timeout";
  ]

let create ?resilience ?(incremental = true) ?(reopt = true) ?(portfolio = false)
    ?portfolio_eager name
    ~seed cluster =
  match name with
  | "hire" -> Hire_adapter.create ?resilience ~incremental ~reopt ~portfolio ?portfolio_eager cluster
  | "hire-simple" ->
      Hire_adapter.create ~simple_flavor:true ?resilience ~incremental ~reopt ~portfolio
        ?portfolio_eager cluster
  | "hire-scaling" ->
      Hire_adapter.create ~solver:Hire.Flow_network.Cost_scaling ?resilience ~incremental ~reopt
        ~portfolio ?portfolio_eager ~name:"hire-scaling" cluster
  | "hire-noloc" ->
      Hire_adapter.create
        ~params:{ Hire.Cost_model.default_params with locality_aware = false }
        ?resilience ~incremental ~reopt ~portfolio ?portfolio_eager ~name:"hire-noloc" cluster
  | "hire-noshare" ->
      (* Ablation: the scheduler neither plans for nor physically uses
         switch-resource sharing. *)
      Hire_adapter.create
        ~params:{ Hire.Cost_model.default_params with sharing_aware = false }
        ~shared:false ?resilience ~incremental ~reopt ~portfolio ?portfolio_eager
        ~name:"hire-noshare" cluster
  | "yarn-concurrent" -> Yarn_pp.create ~mode:Modes.Concurrent cluster
  | "yarn-timeout" -> Yarn_pp.create ~mode:Modes.Timeout cluster
  | "k8-concurrent" -> K8_pp.create ~mode:Modes.Concurrent cluster
  | "k8-timeout" -> K8_pp.create ~mode:Modes.Timeout cluster
  | "sparrow-concurrent" -> Sparrow_pp.create ~mode:Modes.Concurrent ~seed cluster
  | "sparrow-timeout" -> Sparrow_pp.create ~mode:Modes.Timeout ~seed cluster
  | "coco-timeout" -> Coco_pp.create cluster
  | other -> invalid_arg (Printf.sprintf "Registry.create: unknown scheduler %S" other)
