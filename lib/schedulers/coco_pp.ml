module Poly_req = Hire.Poly_req
module Flavor = Hire.Flavor
module Pending = Hire.Pending
module Flow_network = Hire.Flow_network

(* Flow-based schedulers' think time scales with the network size (the
   paper sets it "as a function of flow network statistics"). *)
let think_of ~nodes ~arcs = 0.0005 +. (3e-7 *. float_of_int (nodes + arcs))

let params =
  {
    Hire.Cost_model.default_params with
    locality_aware = false;
    sharing_aware = false;
    max_flavor_decisions = 0;
  }

(* Fabricate a fully-materialized Pending job from the currently active
   variant of a mode-managed job. *)
let pending_of_active (job : Modes.mjob) rts =
  let strip (rt : Modes.tg_rt) = { rt.tg with Poly_req.flavor = Flavor.all_x 0 } in
  let tg_states =
    List.map
      (fun (rt : Modes.tg_rt) ->
        { Pending.tg = strip rt; remaining = rt.remaining; placed_on = rt.placed_on })
      rts
  in
  {
    Pending.poly =
      { job.poly with Poly_req.task_groups = List.map strip rts; flavor_len = 0 };
    x_hat = Flavor.all_x 0;
    tg_states = Array.of_list tg_states;
    inc_flavor_locked = true;
  }

let create cluster =
  let c_rounds = Obs.Registry.counter "sched.coco-timeout.rounds" in
  let c_retry = Obs.Registry.counter "sched.coco-timeout.retry_tgs" in
  let g_depth = Obs.Registry.gauge "sched.coco-timeout.queue_depth" in
  let modes = Modes.create Modes.Timeout in
  let view = Sim.Cluster.view cluster in
  (* CoCo++ has no locality bookkeeping: the census stays empty. *)
  let census = Hire.Locality.Task_census.create (Sim.Cluster.topo cluster) in
  let submit ~time poly = Modes.submit modes ~time poly in
  let round ~time =
    let cancelled = ref (Modes.tick modes ~time) in
    let rt_of_tg = Hashtbl.create 64 in
    let pjobs =
      List.filter_map
        (fun job ->
          match Modes.active_tgs modes job with
          | [] -> None
          | rts ->
              List.iter
                (fun (rt : Modes.tg_rt) ->
                  Hashtbl.replace rt_of_tg rt.tg.Poly_req.tg_id (job, rt))
                rts;
              Some (pending_of_active job rts))
        (Modes.jobs modes)
    in
    if Obs.enabled () then begin
      Obs.Registry.incr c_rounds;
      Obs.Registry.set g_depth (float_of_int (List.length pjobs))
    end;
    if pjobs = [] then begin
      Modes.cleanup modes;
      {
        Sim.Scheduler_intf.placements = [];
        cancelled = !cancelled;
        think = 0.0005;
        solver_wall = None;
        resilience = None;
      }
    end
    else begin
      let net = Flow_network.build view census ~jobs:pjobs ~now:time ~params in
      let nodes, arcs = Flow_network.size net in
      let outcome = Flow_network.solve_and_extract net in
      let placements =
        List.filter_map
          (fun (tg_id, machine) ->
            match Hashtbl.find_opt rt_of_tg tg_id with
            | None -> None
            | Some (job, rt) when rt.Modes.remaining > 0 ->
                let charged =
                  match rt.tg.Poly_req.kind with
                  | Poly_req.Server_tg ->
                      Sim.Cluster.place_server_task cluster ~server:machine
                        ~demand:rt.tg.Poly_req.demand;
                      None
                  | Poly_req.Network_tg _ ->
                      Some
                        (Sim.Cluster.place_network_task cluster ~switch:machine ~tg:rt.tg
                           ~shared:false)
                in
                let dropped = Modes.note_placement modes ~time job rt ~machine in
                cancelled := !cancelled @ dropped;
                Some { Sim.Scheduler_intf.tg = rt.tg; machine; shared = false; charged }
            | Some _ -> None)
          outcome.placements
      in
      if Obs.enabled () then begin
        let retry =
          Hashtbl.fold
            (fun _ (_, (rt : Modes.tg_rt)) acc -> if rt.remaining > 0 then acc + 1 else acc)
            rt_of_tg 0
        in
        Obs.Registry.incr ~by:retry c_retry
      end;
      Modes.cleanup modes;
      {
        Sim.Scheduler_intf.placements;
        cancelled = !cancelled;
        think = think_of ~nodes ~arcs;
        solver_wall = Some outcome.solver.Flow.Mcmf.elapsed_s;
        resilience = None;
      }
    end
  in
  {
    Sim.Scheduler_intf.name = "coco-timeout";
    submit;
    round;
    pending = (fun () -> Modes.pending modes);
    on_task_complete = (fun ~time:_ ~tg:_ ~machine:_ -> ());
    (* The flow network is rebuilt from the live view every round. *)
    on_node_event = (fun ~time:_ ~node:_ ~up:_ -> ());
    drop_task_group = (fun ~time:_ ~tg_id -> Modes.drop_tg modes ~tg_id);
    (* Cheap per-round decisions: recovery replays from genesis. *)
    persist = None;
  }
