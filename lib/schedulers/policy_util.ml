module Poly_req = Hire.Poly_req
module Vec = Prelude.Vec
module Fat_tree = Topology.Fat_tree

let unshared_parts (tg : Poly_req.task_group) =
  match tg.kind with
  | Poly_req.Server_tg -> invalid_arg "Policy_util.unshared_parts: not a network group"
  | Poly_req.Network_tg n ->
      (n.service, Vec.zero (Vec.dim tg.demand), Vec.add n.per_switch tg.demand)

(* Liveness is part of feasibility: every baseline routes server picks
   through here, so dead servers are masked for all of them at once
   (switch liveness is masked inside [Sharing.can_place]). *)
let server_fits cluster ~server ~demand =
  Sim.Cluster.is_alive cluster server
  && Vec.fits ~demand ~available:(Sim.Cluster.server_available cluster server)

let switch_feasible cluster ~switch (rt : Modes.tg_rt) =
  match rt.tg.Poly_req.kind with
  | Poly_req.Server_tg -> false
  | Poly_req.Network_tg n ->
      let shape_ok =
        match n.shape with
        | Hire.Comp_store.Single_tor ->
            Fat_tree.kind (Sim.Cluster.topo cluster) switch = Fat_tree.Tor
        | _ -> true
      in
      shape_ok
      && (not (List.mem switch rt.placed_on))
      &&
      let service, per_switch, per_instance = unshared_parts rt.tg in
      Hire.Sharing.can_place (Sim.Cluster.sharing cluster) ~switch ~service ~per_switch
        ~per_instance

let job_tors cluster (job : Modes.mjob) =
  let topo = Sim.Cluster.topo cluster in
  let machines =
    List.concat_map
      (fun (rt : Modes.tg_rt) -> rt.placed_on)
      (job.common @ job.server_only @ job.inc_only)
  in
  machines
  |> List.filter_map (fun m ->
         match Fat_tree.kind topo m with
         | Fat_tree.Server -> Some (Fat_tree.tor_of_server topo m)
         | Fat_tree.Tor -> Some m
         | Fat_tree.Agg | Fat_tree.Core -> None)
  |> List.sort_uniq compare

let machine_pool cluster (rt : Modes.tg_rt) =
  let topo = Sim.Cluster.topo cluster in
  if Poly_req.is_network rt.tg then Fat_tree.switches topo else Fat_tree.servers topo
