module Poly_req = Hire.Poly_req
module Hire_scheduler = Hire.Hire_scheduler

let think_of ~nodes ~arcs = 0.0005 +. (3e-7 *. float_of_int (nodes + arcs))

let create ?(simple_flavor = false) ?(params = Hire.Cost_model.default_params)
    ?(solver = Hire.Flow_network.Ssp) ?(shared = true) ?resilience
    ?(incremental = true) ?(reopt = true) ?(warm_start = false) ?(portfolio = false)
    ?portfolio_eager ?name cluster =
  let config =
    {
      Hire_scheduler.params;
      simple_flavor;
      solver;
      resilience;
      incremental;
      reopt;
      warm_start;
      portfolio;
      portfolio_eager;
    }
  in
  let sched = Hire_scheduler.create ~config (Sim.Cluster.view cluster) in
  let round ~time =
    let o = Hire_scheduler.run_round sched ~time in
    let placements =
      List.map
        (fun ((tg : Poly_req.task_group), machine) ->
          let charged =
            match tg.kind with
            | Poly_req.Server_tg ->
                Sim.Cluster.place_server_task cluster ~server:machine ~demand:tg.demand;
                None
            | Poly_req.Network_tg _ ->
                Some (Sim.Cluster.place_network_task cluster ~switch:machine ~tg ~shared)
          in
          { Sim.Scheduler_intf.tg; machine; shared; charged })
        o.placements
    in
    {
      Sim.Scheduler_intf.placements;
      cancelled = o.cancelled;
      think =
        (if o.graph_nodes = 0 then 0.0005
         else think_of ~nodes:o.graph_nodes ~arcs:o.graph_arcs);
      solver_wall = Option.map (fun (r : Flow.Mcmf.result) -> r.elapsed_s) o.solver;
      resilience =
        Option.map
          (fun (r : Hire_scheduler.round_resilience) ->
            {
              Sim.Scheduler_intf.degraded = r.degraded;
              fallback_depth = r.fallback_depth;
              guard_trips = r.guard_trips;
              salvaged = r.salvaged;
            })
          o.resilience;
    }
  in
  {
    Sim.Scheduler_intf.name =
      (match name with
      | Some n -> n
      | None -> if simple_flavor then "hire-simple" else "hire");
    submit = (fun ~time poly -> Hire_scheduler.submit sched ~time poly);
    round;
    pending = (fun () -> Hire_scheduler.pending_work sched);
    on_task_complete =
      (fun ~time:_ ~tg ~machine ->
        Hire_scheduler.on_task_complete sched ~tg_id:tg.Poly_req.tg_id ~machine);
    (* The flow network is rebuilt from the view each round, and the
       task census is already cleaned by the killed tasks'
       [on_task_complete] calls. *)
    on_node_event = (fun ~time:_ ~node:_ ~up:_ -> ());
    drop_task_group =
      (fun ~time:_ ~tg_id -> Hire_scheduler.drop_task_group sched ~tg_id);
    persist =
      Some
        {
          Sim.Scheduler_intf.snapshot = (fun () -> Hire_scheduler.snapshot sched);
          restore = Hire_scheduler.restore sched;
        };
  }
