(** Job-alternative handling for retrofitted baselines (§6.1).

    The baselines cannot schedule interchangeable alternatives inside
    one scheduling pass, so each INC-enabled job is split beforehand
    into two variants:

    - {b Concurrent}: both the server-only and the strict-INC variant are
      queued simultaneously; the first allocation that is specific to one
      variant withdraws the other.  An optional revert timer (Yarn++ uses
      1 min) falls back to the server variant if a decided INC variant
      starves.
    - {b Timeout}: only the INC variant is queued; if it is not fully
      served within 10% of the job's duration, it is withdrawn and the
      server fallback variant is submitted.

    Task groups of composites without alternatives are "common": queued
    once and unaffected by variant decisions. *)

type mode = Concurrent | Timeout

val mode_to_string : mode -> string

type tg_rt = {
  tg : Hire.Poly_req.task_group;
  mutable remaining : int;
  mutable placed_on : int list;
}

type decision = Undecided | Inc | Server

type mjob = {
  poly : Hire.Poly_req.t;
  arrival : float;
  common : tg_rt list;
  server_only : tg_rt list;
  inc_only : tg_rt list;
  deadline : float;  (** timeout-mode fallback time *)
  mutable decision : decision;
  mutable decided_at : float;
}

type t

val create : ?revert_after:float -> mode -> t
val mode : t -> mode
val submit : t -> time:float -> Hire.Poly_req.t -> unit

(** Jobs with queued work, oldest first. *)
val jobs : t -> mjob list

(** The task groups a policy may currently place for this job. *)
val active_tgs : t -> mjob -> tg_rt list

(** Process timers (timeout fallbacks, starvation reverts); returns
    groups cancelled by those transitions. *)
val tick : t -> time:float -> Hire.Poly_req.task_group list

(** Record a placement; in concurrent mode the first variant-specific
    placement decides the job.  Returns groups cancelled by the
    decision. *)
val note_placement :
  t -> time:float -> mjob -> tg_rt -> machine:int -> Hire.Poly_req.task_group list

(** Fault path: zero the remaining count of every runtime entry for
    [tg_id] (the simulator cancelled the group after exhausting its
    retry budget) so no further placements are attempted. *)
val drop_tg : t -> tg_id:int -> unit

val pending : t -> bool

(** Drop fully-served jobs from the queue. *)
val cleanup : t -> unit
