module Poly_req = Hire.Poly_req
module Flavor = Hire.Flavor

type mode = Concurrent | Timeout

let mode_to_string = function Concurrent -> "concurrent" | Timeout -> "timeout"

type tg_rt = {
  tg : Poly_req.task_group;
  mutable remaining : int;
  mutable placed_on : int list;
}

type decision = Undecided | Inc | Server

type mjob = {
  poly : Poly_req.t;
  arrival : float;
  common : tg_rt list;
  server_only : tg_rt list;
  inc_only : tg_rt list;
  deadline : float;
  mutable decision : decision;
  mutable decided_at : float;
}

type t = {
  mode : mode;
  revert_after : float option;
  jobs_tbl : (int, mjob) Hashtbl.t;
  mutable order : int list;  (* newest first *)
}

let create ?revert_after mode = { mode; revert_after; jobs_tbl = Hashtbl.create 64; order = [] }
let mode t = t.mode

(* Split a PolyReq into common task groups (single-variant composites)
   and the server-only / INC-only variant parts.  The INC variant of a
   composite is its first alternative containing a network group. *)
let split_variants (poly : Poly_req.t) =
  let by_comp = Hashtbl.create 8 in
  List.iter
    (fun (tg : Poly_req.task_group) ->
      let cur = try Hashtbl.find by_comp tg.comp_id with Not_found -> [] in
      Hashtbl.replace by_comp tg.comp_id (tg :: cur))
    poly.task_groups;
  let rt tg = { tg; remaining = tg.Poly_req.count; placed_on = [] } in
  let common = ref [] and server_only = ref [] and inc_only = ref [] in
  Hashtbl.iter
    (fun _comp tgs ->
      let tgs = List.rev tgs in
      (* Group into variants by flavor. *)
      let variants = Hashtbl.create 4 in
      let keys = ref [] in
      List.iter
        (fun (tg : Poly_req.task_group) ->
          let key = Flavor.to_string tg.flavor in
          if not (Hashtbl.mem variants key) then keys := key :: !keys;
          Hashtbl.replace variants key
            (tg :: (try Hashtbl.find variants key with Not_found -> [])))
        tgs;
      let keys = List.rev !keys in
      match keys with
      | [ _single ] -> List.iter (fun tg -> common := rt tg :: !common) tgs
      | _ ->
          let variant_tgs k = List.rev (Hashtbl.find variants k) in
          let is_server_variant k =
            List.for_all (fun tg -> not (Poly_req.is_network tg)) (variant_tgs k)
          in
          let server_key = List.find_opt is_server_variant keys in
          let inc_key = List.find_opt (fun k -> not (is_server_variant k)) keys in
          (match server_key with
          | Some k -> List.iter (fun tg -> server_only := rt tg :: !server_only) (variant_tgs k)
          | None -> ());
          (match inc_key with
          | Some k -> List.iter (fun tg -> inc_only := rt tg :: !inc_only) (variant_tgs k)
          | None -> ()))
    by_comp;
  (List.rev !common, List.rev !server_only, List.rev !inc_only)

let max_duration tgs =
  List.fold_left (fun acc (rt : tg_rt) -> Float.max acc rt.tg.Poly_req.duration) 1.0 tgs

let submit t ~time poly =
  let common, server_only, inc_only = split_variants poly in
  let deadline = time +. (0.1 *. max_duration (if inc_only = [] then common else inc_only)) in
  let decision =
    if inc_only = [] then Server
    else
      match t.mode with
      | Concurrent -> Undecided
      | Timeout -> Inc (* only the INC variant is queued initially *)
  in
  let job =
    {
      poly;
      arrival = time;
      common;
      server_only;
      inc_only;
      deadline;
      decision;
      decided_at = time;
    }
  in
  Hashtbl.replace t.jobs_tbl poly.Poly_req.job_id job;
  t.order <- poly.Poly_req.job_id :: t.order

let jobs t = List.rev t.order |> List.filter_map (Hashtbl.find_opt t.jobs_tbl)

let active_tgs t job =
  let variant =
    match (job.decision, t.mode) with
    | Server, _ -> job.server_only
    | Inc, _ -> job.inc_only
    (* Both variants race; the INC one is tried first since its resources
       are the scarce ones — a server allocation would otherwise always
       win and withdraw the INC variant immediately. *)
    | Undecided, Concurrent -> job.inc_only @ job.server_only
    | Undecided, Timeout -> job.inc_only
  in
  List.filter (fun rt -> rt.remaining > 0) (job.common @ variant)

let unplaced_tgs rts =
  List.filter_map (fun rt -> if rt.remaining > 0 then Some rt.tg else None) rts

let inc_fully_placed job = List.for_all (fun rt -> rt.remaining = 0) job.inc_only

let tick t ~time =
  let cancelled = ref [] in
  Hashtbl.iter
    (fun _ job ->
      match (t.mode, job.decision) with
      | Timeout, Inc when job.inc_only <> [] && (not (inc_fully_placed job)) && time >= job.deadline
        ->
          (* Withdraw the INC variant, fall back to the server variant. *)
          cancelled := !cancelled @ unplaced_tgs job.inc_only;
          List.iter (fun rt -> rt.remaining <- 0) job.inc_only;
          job.decision <- Server;
          job.decided_at <- time
      | Concurrent, Inc -> (
          match t.revert_after with
          | Some delay
            when (not (inc_fully_placed job)) && time -. job.decided_at >= delay ->
              (* Starvation revert (Yarn++): give up on INC. *)
              cancelled := !cancelled @ unplaced_tgs job.inc_only;
              List.iter (fun rt -> rt.remaining <- 0) job.inc_only;
              job.decision <- Server;
              job.decided_at <- time
          | _ -> ())
      | _ -> ())
    t.jobs_tbl;
  !cancelled

let note_placement t ~time job (rt : tg_rt) ~machine =
  rt.remaining <- rt.remaining - 1;
  rt.placed_on <- machine :: rt.placed_on;
  if job.decision = Undecided && t.mode = Concurrent then begin
    let in_list l = List.memq rt l in
    if in_list job.inc_only then begin
      job.decision <- Inc;
      job.decided_at <- time;
      let dropped = unplaced_tgs job.server_only in
      List.iter (fun r -> r.remaining <- 0) job.server_only;
      dropped
    end
    else if in_list job.server_only then begin
      job.decision <- Server;
      job.decided_at <- time;
      let dropped = unplaced_tgs job.inc_only in
      List.iter (fun r -> r.remaining <- 0) job.inc_only;
      dropped
    end
    else []
  end
  else []

let drop_tg t ~tg_id =
  Hashtbl.iter
    (fun _ job ->
      List.iter
        (fun (rt : tg_rt) ->
          if rt.tg.Poly_req.tg_id = tg_id then rt.remaining <- 0)
        (job.common @ job.server_only @ job.inc_only))
    t.jobs_tbl

let pending t =
  Hashtbl.fold
    (fun _ job acc ->
      acc
      || List.exists
           (fun rt -> rt.remaining > 0)
           (job.common @ job.server_only @ job.inc_only))
    t.jobs_tbl false

let cleanup t =
  let done_ids =
    Hashtbl.fold
      (fun id job acc ->
        let live rts = List.exists (fun rt -> rt.remaining > 0) rts in
        let variant_live =
          match job.decision with
          | Server -> live job.server_only
          | Inc -> live job.inc_only
          | Undecided -> live job.server_only || live job.inc_only
        in
        if live job.common || variant_live then acc else id :: acc)
      t.jobs_tbl []
  in
  List.iter (Hashtbl.remove t.jobs_tbl) done_ids;
  if done_ids <> [] then t.order <- List.filter (Hashtbl.mem t.jobs_tbl) t.order
