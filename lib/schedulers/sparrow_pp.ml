module Poly_req = Hire.Poly_req
module Rng = Prelude.Rng

let think_per_alloc = 0.0004
let recheck_interval = 0.2
let recheck_threshold = 0.5

type stub = { s_job : Modes.mjob; s_rt : Modes.tg_rt }

type sample_state = { mutable outstanding : int; mutable last_sample : float }

let create ~mode ~seed cluster =
  let name = "sparrow-" ^ Modes.mode_to_string mode in
  let c_attempts = Obs.Registry.counter ("sched." ^ name ^ ".alloc_attempts") in
  let c_samples = Obs.Registry.counter ("sched." ^ name ^ ".samples") in
  let c_blocked = Obs.Registry.counter ("sched." ^ name ^ ".head_blocked") in
  let g_depth = Obs.Registry.gauge ("sched." ^ name ^ ".queue_depth") in
  let modes = Modes.create mode in
  let rng = Rng.create seed in
  let queues : (int, stub Queue.t) Hashtbl.t = Hashtbl.create 256 in
  let samples : (int, sample_state) Hashtbl.t = Hashtbl.create 256 in
  let queue_of m =
    match Hashtbl.find_opt queues m with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace queues m q;
        q
  in
  let state_of tg_id =
    match Hashtbl.find_opt samples tg_id with
    | Some s -> s
    | None ->
        let s = { outstanding = 0; last_sample = neg_infinity } in
        Hashtbl.replace samples tg_id s;
        s
  in
  let feasible machine (rt : Modes.tg_rt) =
    if Poly_req.is_network rt.tg then Policy_util.switch_feasible cluster ~switch:machine rt
    else Policy_util.server_fits cluster ~server:machine ~demand:rt.tg.Poly_req.demand
  in
  (* Batch sampling: enqueue reservations for up to [need] tasks on the
     shortest queues among 2·need sampled feasible machines. *)
  let sample_for ~time job (rt : Modes.tg_rt) st =
    let need = rt.remaining - st.outstanding in
    if need > 0 then begin
      let pool =
        Policy_util.machine_pool cluster rt
        |> Array.to_seq
        |> Seq.filter (fun m -> feasible m rt)
        |> Array.of_seq
      in
      if Array.length pool > 0 then begin
        let sampled = Rng.sample_without_replacement rng ~n:(2 * need) pool in
        let by_queue_len =
          List.sort
            (fun a b -> compare (Queue.length (queue_of a)) (Queue.length (queue_of b)))
            sampled
        in
        List.iteri
          (fun i m ->
            if i < need then begin
              Queue.push { s_job = job; s_rt = rt } (queue_of m);
              if Obs.enabled () then Obs.Registry.incr c_samples;
              st.outstanding <- st.outstanding + 1
            end)
          by_queue_len;
        st.last_sample <- time
      end
    end
  in
  let submit ~time poly = Modes.submit modes ~time poly in
  let round ~time =
    let cancelled = ref (Modes.tick modes ~time) in
    let attempts = ref 0 in
    (* Sampling pass: fresh groups, and re-checks for starved groups. *)
    List.iter
      (fun job ->
        List.iter
          (fun (rt : Modes.tg_rt) ->
            let st = state_of rt.tg.Poly_req.tg_id in
            let fresh = st.last_sample = neg_infinity in
            let starved =
              time -. st.last_sample >= recheck_interval
              && float_of_int st.outstanding
                 < recheck_threshold *. float_of_int rt.remaining
            in
            if fresh || starved then sample_for ~time job rt st)
          (Modes.active_tgs modes job))
      (Modes.jobs modes);
    (* Late binding: machines start queued reservations that fit now. *)
    let placements = ref [] in
    Hashtbl.iter
      (fun machine q ->
        let continue_ = ref true in
        while !continue_ && not (Queue.is_empty q) do
          let stub = Queue.peek q in
          let rt = stub.s_rt in
          let st = state_of rt.tg.Poly_req.tg_id in
          if rt.remaining <= 0 then begin
            ignore (Queue.pop q);
            st.outstanding <- max 0 (st.outstanding - 1)
          end
          else if Poly_req.is_network rt.tg && List.mem machine rt.placed_on then begin
            (* A chain slot duplicated on this switch: discard the stub. *)
            ignore (Queue.pop q);
            st.outstanding <- max 0 (st.outstanding - 1)
          end
          else begin
            incr attempts;
            if feasible machine rt then begin
              ignore (Queue.pop q);
              st.outstanding <- max 0 (st.outstanding - 1);
              let charged =
                match rt.tg.Poly_req.kind with
                | Poly_req.Server_tg ->
                    Sim.Cluster.place_server_task cluster ~server:machine
                      ~demand:rt.tg.Poly_req.demand;
                    None
                | Poly_req.Network_tg _ ->
                    Some
                      (Sim.Cluster.place_network_task cluster ~switch:machine ~tg:rt.tg
                         ~shared:false)
              in
              let dropped = Modes.note_placement modes ~time stub.s_job rt ~machine in
              cancelled := !cancelled @ dropped;
              placements :=
                { Sim.Scheduler_intf.tg = rt.tg; machine; shared = false; charged }
                :: !placements
            end
            else begin
              if Obs.enabled () then Obs.Registry.incr c_blocked;
              continue_ := false (* head-of-line blocks this machine *)
            end
          end
        done)
      queues;
    Modes.cleanup modes;
    if Obs.enabled () then begin
      Obs.Registry.incr ~by:!attempts c_attempts;
      let depth = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) queues 0 in
      Obs.Registry.set g_depth (float_of_int depth)
    end;
    {
      Sim.Scheduler_intf.placements = List.rev !placements;
      cancelled = !cancelled;
      think = think_per_alloc *. float_of_int (max 1 !attempts);
      solver_wall = None;
      resilience = None;
    }
  in
  {
    Sim.Scheduler_intf.name;
    submit;
    round;
    pending = (fun () -> Modes.pending modes);
    on_task_complete = (fun ~time:_ ~tg:_ ~machine:_ -> ());
    on_node_event =
      (fun ~time:_ ~node ~up ->
        (* A dead machine never drains its reservations: flush them so
           the batch-sampling recheck sees the lost probes (otherwise
           [outstanding] stays inflated and the group starves even after
           the rest of the cluster frees up). *)
        if not up then
          match Hashtbl.find_opt queues node with
          | None -> ()
          | Some q ->
              Queue.iter
                (fun stub ->
                  let st = state_of stub.s_rt.Modes.tg.Poly_req.tg_id in
                  st.outstanding <- max 0 (st.outstanding - 1))
                q;
              Queue.clear q);
    (* Stubs for a dropped group drain lazily: the late-binding pass
       discards reservations whose [remaining] hit zero. *)
    drop_task_group = (fun ~time:_ ~tg_id -> Modes.drop_tg modes ~tg_id);
    (* Cheap per-round decisions: recovery replays from genesis. *)
    persist = None;
  }
