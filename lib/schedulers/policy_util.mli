(** Shared helpers for the retrofitted baseline policies: feasibility
    checks through the simulator API "borrowing semantics from HIRE"
    (§6.1, point 4) — baselines iterate only over machines matching
    resource constraints, INC compatibility, and multiplexing
    constraints. *)

module Poly_req = Hire.Poly_req

(** Switch-side (service, per-switch, per-instance) triple of a network
    group under baseline (unshared) accounting. *)
val unshared_parts : Poly_req.task_group -> string * Prelude.Vec.t * Prelude.Vec.t

(** [server_fits cluster ~server ~demand] — the server is alive and the
    demand fits its remaining resources. *)
val server_fits : Sim.Cluster.t -> server:int -> demand:Prelude.Vec.t -> bool

(** [switch_feasible cluster ~switch rt] — supports the service, fits the
    unshared demand, respects the overlay shape (ToR-only services), and
    is not already used by this group (chains need distinct switches). *)
val switch_feasible : Sim.Cluster.t -> switch:int -> Modes.tg_rt -> bool

(** ToRs of the machines a job has already placed tasks on. *)
val job_tors : Sim.Cluster.t -> Modes.mjob -> int list

(** All machine ids of the class the group runs on (servers or
    switches). *)
val machine_pool : Sim.Cluster.t -> Modes.tg_rt -> int array
