(** Append side of the write-ahead journal.

    File layout: an 8-byte magic, a little-endian u32 format version,
    one framed header payload (the opaque experiment spec the recovery
    side rebuilds the world from), then framed records whose payloads
    carry their own sequence number — see {!Frame}.

    Appends are buffered; {!commit} marks a durability point.  With
    [fsync_interval_s = 0.0] (the default) every commit writes the
    buffered frames and fsyncs before returning.  A positive interval
    enables {e group commit}: a commit inside the window defers the
    fsync so that one device sync covers every round-commit that landed
    in the window — on crash, at most the last window of committed
    records is lost, and deterministic replay re-derives them (see
    docs/JOURNAL.md).  {!barrier} forces the deferred sync, and is
    called by {!Sim.Service} before a checkpoint so a checkpoint's
    [upto_seq] only ever covers durable records.  An injected crash
    ({!Chaos}) flushes whole buffered frames before writing the torn
    prefix, so the tear lands exactly where a real kill would leave
    it.

    {2 I/O failures}

    A sync is failure-atomic.  Frames stay buffered until the write
    {e and} the fsync both return; on any failure — ENOSPC, EIO, a
    short write, a failed fsync, real or injected through the
    [journal.write]/[journal.fsync] failpoints (docs/FAILPOINTS.md) —
    the file is truncated back to {!durable_end} (the last durable
    frame boundary), the frames are kept, and {!Error.Io} is raised.
    Nothing is ever acknowledged off the back of a failed fsync, and a
    later {!barrier} retries the whole buffer in order, so a healed
    journal is byte-identical to one that never failed. *)

type t

val magic : string
val version : int

(** [create ~path ~header ()] starts a fresh journal.  Raises
    {!Error.Journal_error} [State] if [path] already exists — an
    existing journal must be recovered, never silently overwritten.
    [fsync_interval_s] is the group-commit window (default [0.0]:
    strict fsync-per-commit). *)
val create : ?fsync_interval_s:float -> path:string -> header:string -> unit -> t

(** [open_append ~path ~valid_end ~next_seq ()] reopens a scanned
    journal for appending: the file is truncated to [valid_end]
    (cutting a torn tail) and subsequent records continue at
    [next_seq]. *)
val open_append :
  ?fsync_interval_s:float -> path:string -> valid_end:int -> next_seq:int -> unit -> t

(** [append t body] frames and buffers one record, returning its
    sequence number.  Not yet durable — call {!commit}.  Raises
    {!Chaos.Crashed} at an armed crash point. *)
val append : t -> string -> int

(** Durability point: fsync now, or — inside a group-commit window —
    defer the fsync to a commit after the window closes (or to
    {!barrier}/{!close}, whichever comes first).  Raises {!Error.Io}
    (retryable, see above) when the sync fails. *)
val commit : t -> unit

(** Make every appended record durable before returning: flushes the
    buffer and fsyncs if anything is deferred.  A no-op when the last
    commit already synced.  Raises {!Error.Io} (retryable) on failure;
    calling {!barrier} again retries the buffered frames. *)
val barrier : t -> unit

val next_seq : t -> int

(** Byte offset of the last durable frame boundary: everything below
    it has survived an fsync, everything at or past it is still
    buffered. *)
val durable_end : t -> int

val close : t -> unit

(**/**)

(** Shared with {!Checkpoint}. *)
val write_all : Unix.file_descr -> string -> unit
