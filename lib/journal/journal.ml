(** Write-ahead journal and checkpoints for the scheduler service
    (docs/JOURNAL.md).

    {!Sink} appends length-prefixed, CRC-32-checksummed, monotonically
    sequenced records and makes them durable with an fsync at each round
    commit; {!Source} scans a journal back, failing closed on anything
    but the torn tail a crash legitimately leaves; {!Checkpoint} stores
    generation-numbered full-state snapshots with atomic
    rename-into-place so recovery replays a suffix instead of the whole
    history; {!Chaos} is the seeded crash-point injector behind the
    crash-anywhere recovery property; {!Error} is the closed error
    taxonomy shared by all of them.  {!Frame} (the shared framing
    primitives) is exposed for the adversarial-input tests.

    The replaying state machine lives on the simulator side
    ([Sim.Recovery], [Sim.Service]); this library knows nothing about
    what the record bodies mean. *)

module Error = Error
module Frame = Frame
module Chaos = Chaos
module Sink = Sink
module Source = Source
module Checkpoint = Checkpoint
