type t =
  | Missing of { path : string }
  | Empty of { path : string }
  | Bad_magic of { path : string }
  | Bad_version of { path : string; version : int }
  | Truncated_header of { path : string }
  | Torn_tail of { path : string; offset : int }
  | Corrupt_record of { path : string; seq : int; offset : int; reason : string }
  | Duplicate_seq of { path : string; seq : int; offset : int }
  | Divergence of { seq : int; detail : string }
  | Io of { path : string; op : string; error : Unix.error }
  | State of string

exception Journal_error of t

let pp fmt = function
  | Missing { path } -> Format.fprintf fmt "journal: %s does not exist" path
  | Empty { path } -> Format.fprintf fmt "journal: %s is empty" path
  | Bad_magic { path } -> Format.fprintf fmt "journal: %s has no journal magic" path
  | Bad_version { path; version } ->
      Format.fprintf fmt "journal: %s has unsupported version %d" path version
  | Truncated_header { path } ->
      Format.fprintf fmt "journal: %s is truncated inside the file header" path
  | Torn_tail { path; offset } ->
      Format.fprintf fmt "journal: %s has a torn tail at byte %d" path offset
  | Corrupt_record { path; seq; offset; reason } ->
      Format.fprintf fmt "journal: %s record %d at byte %d is corrupt (%s)" path seq
        offset reason
  | Duplicate_seq { path; seq; offset } ->
      Format.fprintf fmt "journal: %s repeats sequence number %d at byte %d" path seq
        offset
  | Divergence { seq; detail } ->
      Format.fprintf fmt
        "journal: replay diverged from the stored record at seq %d (%s)" seq detail
  | Io { path; op; error } ->
      Format.fprintf fmt "journal: %s: %s failed: %s" path op (Unix.error_message error)
  | State msg -> Format.fprintf fmt "journal: %s" msg

let to_string e = Format.asprintf "%a" pp e
let raise_ e = raise (Journal_error e)
