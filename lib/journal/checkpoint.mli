(** Generation-numbered full-state snapshots.

    A checkpoint is written to a temporary file and renamed into place
    ([checkpoint-<gen>.bin]), so a reader only ever sees an absent or a
    whole file.  [upto_seq] records how much of the WAL the snapshot
    subsumes: recovery loads the newest valid checkpoint and replays
    only the records from [upto_seq] on.  The protocol writes a
    checkpoint only after the WAL records it covers are durable, so
    [upto_seq <= Sink.next_seq] always holds on disk.

    Checkpoints are recovery {e accelerators}, not a correctness
    dependency: {!latest} skips any generation that does not load
    cleanly (CRC-framed, so a torn file never passes) and recovery
    falls back to an older generation or genesis replay.  [write]
    therefore skips its fsyncs by default — losing an unsynced
    checkpoint to a crash only lengthens the replay — and takes
    [~fsync:true] for callers that want the file and its directory
    entry forced to disk. *)

type loaded = { gen : int; upto_seq : int; blob : string }

(** Atomic write of generation [gen].  Raises {!Error.Io} when the
    write fails (ENOSPC, EIO, a short write — real or injected via the
    [checkpoint.write] failpoint, docs/FAILPOINTS.md); the temporary
    file is removed and no reader ever saw a partial checkpoint, so
    callers may skip the snapshot and retry at the next cadence. *)
val write : ?fsync:bool -> dir:string -> gen:int -> upto_seq:int -> string -> unit

(** Newest checkpoint that loads cleanly (magic, version, CRC); corrupt
    or half-written generations are skipped in favour of older ones.
    [None] when the directory holds no usable checkpoint. *)
val latest : dir:string -> loaded option

(** Keep the newest [keep] generations, delete the rest. *)
val prune : dir:string -> keep:int -> unit

(** Generations present on disk, newest first (validity not checked). *)
val generations : dir:string -> int list
