(* Record framing shared by the WAL and checkpoint files:

     [u32 len][u32 crc][payload]            (little-endian fixed fields)

   [len] is the payload length, [crc] the IEEE CRC-32 of the payload.
   WAL payloads start with a varint sequence number followed by the
   record body; the file-header payload and checkpoint payloads are
   opaque to this module. *)

module Crc32 = Prelude.Crc32

let max_len = 1 lsl 30

let put_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_u32 s pos =
  let b i = Char.code (String.unsafe_get s (pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let encode_payload payload =
  let buf = Buffer.create (String.length payload + 8) in
  put_u32 buf (String.length payload);
  put_u32 buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let encode_record ~seq body =
  let e = Prelude.Codec.Enc.create ~initial:(String.length body + 8) () in
  Prelude.Codec.Enc.uint e seq;
  Prelude.Codec.Enc.string e body;
  encode_payload (Prelude.Codec.Enc.to_string e)

(* One framed payload at [pos].  [`Torn] means the remaining bytes are a
   proper prefix of a frame (the crash-mid-append signature); [`Corrupt]
   means a complete frame failed its checks. *)
let read_payload s ~pos =
  let len_total = String.length s in
  let remaining = len_total - pos in
  if remaining = 0 then `End
  else if remaining < 8 then `Torn
  else begin
    let len = get_u32 s pos in
    if len > max_len then `Corrupt "implausible length"
    else if remaining - 8 < len then `Torn
    else begin
      let crc = get_u32 s (pos + 4) in
      if Crc32.update 0 s ~pos:(pos + 8) ~len <> crc then `Corrupt "checksum mismatch"
      else `Payload (String.sub s (pos + 8) len, pos + 8 + len)
    end
  end
