(** Read side of the write-ahead journal: a full scan that validates
    every frame (length, CRC-32, dense sequence numbers) before anything
    is handed to replay. *)

type tail =
  | Clean
  | Torn of { offset : int }
      (** the bytes past [offset] are an incomplete frame prefix — the
          signature of a crash mid-append *)

type loaded = {
  header : string;  (** the opaque spec blob written by {!Sink.create} *)
  records : string array;  (** record bodies; index = sequence number *)
  valid_end : int;  (** byte offset just past the last whole record *)
  tail : tail;
}

(** [load ~path] scans the whole journal.  A torn tail is reported, not
    an error — recovery truncates it via {!Sink.open_append}; everything
    else (bad magic/version, mid-file corruption, duplicate or gapped
    sequence numbers, empty file) fails closed. *)
val load : path:string -> (loaded, Error.t) result

(** Like {!load} but a torn tail is also an error ({!Error.Torn_tail}):
    for readers that must not tolerate any damage. *)
val load_strict : path:string -> (loaded, Error.t) result

(**/**)

val read_file : string -> string
