(** Seeded crash-point injector (the [HIRE_CHAOS] discipline applied to
    durability).

    Armed with a record sequence number, the {!Sink.append} of that
    record writes only a prefix of its frame — the torn tail a [kill -9]
    mid-write leaves — and raises {!Crashed}, abandoning the in-process
    state exactly as a real crash would.  Recovery then has to truncate
    the tear and re-land on the uninterrupted run's state byte for byte
    (the QCheck property in [test/test_journal.ml]). *)

(** Raised from {!Sink.append} when the armed crash point is hit;
    carries the sequence number of the record whose append "died". *)
exception Crashed of int

(** [arm ~crash_at ~tear ()] schedules a crash at sequence [crash_at];
    [tear] (default 5) is how many bytes of the crashing frame still
    reach the file.  A tear at least the frame length models a crash
    after the write but before the fsync. *)
val arm : crash_at:int -> ?tear:int -> unit -> unit

val disarm : unit -> unit

(** Armed crash sequence, if any. *)
val crash_at : unit -> int option

(** Arm from [HIRE_CRASH_AT="<seq>"] or ["<seq>:<tear-bytes>"]; no-op
    when unset.  @raise Invalid_argument on an unparseable value. *)
val init_env : unit -> unit

(** Consulted by {!Sink.append}: [Some keep] says write [keep] bytes of
    this frame, then crash. *)
val on_append : seq:int -> len:int -> int option
