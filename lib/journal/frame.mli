(** Record framing shared by the WAL and checkpoint files:
    [[u32 len][u32 crc][payload]] with little-endian fixed fields, [len]
    the payload length and [crc] the IEEE CRC-32 of the payload.  WAL
    record payloads are [varint seq ++ length-prefixed body].  Exposed
    mainly so the adversarial-input tests can craft damaged frames. *)

(** Frames above this payload length are rejected as corrupt. *)
val max_len : int

val put_u32 : Buffer.t -> int -> unit

(** Little-endian u32 at [pos]; the caller guarantees 4 bytes. *)
val get_u32 : string -> int -> int

(** Frame an opaque payload (file header, checkpoint body). *)
val encode_payload : string -> string

(** Frame one WAL record: payload = varint [seq] + length-prefixed
    [body]. *)
val encode_record : seq:int -> string -> string

(** Parse the frame at [pos]: the payload and the next offset, [`End] at
    EOF, [`Torn] when the remaining bytes are a proper prefix of a
    frame, [`Corrupt] for a complete frame that fails validation. *)
val read_payload :
  string -> pos:int -> [ `End | `Torn | `Corrupt of string | `Payload of string * int ]
