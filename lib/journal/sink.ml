module Clock = Prelude.Clock

let magic = "HIREWAL1"
let version = 1

type t = {
  fd : Unix.file_descr;
  path : string;
  (* Framed records accumulate here and stay buffered until a sync
     {e fully succeeds} — write + fsync.  On any I/O failure (real or a
     {!Failpt} injection) the file is truncated back to [synced_end]
     and the frames are kept, so a retry rewrites them in order and the
     healed file is byte-identical to a failure-free run.  An injected
     crash ({!Chaos}) flushes the whole frames first so the tear lands
     exactly where a real kill would leave it. *)
  buf : Buffer.t;
  (* Group-commit window: a {!commit} inside the window defers the
     fsync to a later commit (or {!barrier}/{!close}) so one device
     sync covers every round that landed in the window.  [0.0] fsyncs
     at every commit. *)
  fsync_interval_s : float;
  mutable last_sync : float;
  mutable deferred : bool;  (* committed records awaiting their fsync *)
  mutable next_seq : int;
  (* Bytes known durable, always a frame boundary: everything at or
     past this offset is still in [buf] and is rewritten on retry. *)
  mutable synced_end : int;
  mutable closed : bool;
}

let write_all fd s =
  let len = String.length s in
  let rec go pos =
    if pos < len then go (pos + Unix.write_substring fd s pos (len - pos))
  in
  go 0

let preamble header =
  let buf = Buffer.create (String.length header + 32) in
  Buffer.add_string buf magic;
  Frame.put_u32 buf version;
  Buffer.add_string buf (Frame.encode_payload header);
  Buffer.contents buf

let create ?(fsync_interval_s = 0.0) ~path ~header () =
  if Sys.file_exists path then
    Error.raise_ (Error.State (Printf.sprintf "%s already exists (use recovery)" path));
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 in
  let pre = preamble header in
  write_all fd pre;
  { fd; path; buf = Buffer.create 8192; fsync_interval_s;
    last_sync = Clock.now (); deferred = false; next_seq = 0;
    synced_end = String.length pre; closed = false }

(* Reopen after recovery: [valid_end] is the end of the last whole
   record {!Source} scanned; anything past it (the torn tail) is cut
   before appends resume. *)
let open_append ?(fsync_interval_s = 0.0) ~path ~valid_end ~next_seq () =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd valid_end;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { fd; path; buf = Buffer.create 8192; fsync_interval_s;
    last_sync = Clock.now (); deferred = false; next_seq;
    synced_end = valid_end; closed = false }

let next_seq t = t.next_seq
let durable_end t = t.synced_end

(* A failed write or fsync leaves the on-disk suffix unknown: fall all
   the way back to the last durable frame boundary and keep the frames
   buffered for the retry.  After this, the file never holds a frame
   the sink has acknowledged losing — an ack can only ever follow a
   sync that returned. *)
let io_fail t ~op error =
  (try Unix.ftruncate t.fd t.synced_end with Unix.Unix_error _ -> ());
  (try ignore (Unix.lseek t.fd 0 Unix.SEEK_END) with Unix.Unix_error _ -> ());
  if Obs.enabled () then Obs.Registry.incr (Obs.Registry.counter "journal.io_errors");
  Error.raise_ (Error.Io { path = t.path; op; error })

let write_frames t data =
  match Failpt.eval "journal.write" with
  | Some (Failpt.Errno e) -> io_fail t ~op:"write" e
  | Some (Failpt.Short k) ->
      (* A short write: [k] bytes land, then the device is full. *)
      (try write_all t.fd (String.sub data 0 (min k (String.length data)))
       with Unix.Unix_error _ -> ());
      io_fail t ~op:"write" Unix.ENOSPC
  | (Some (Failpt.Delay _) | None) as o ->
      (match o with Some (Failpt.Delay s) -> Unix.sleepf s | _ -> ());
      (try write_all t.fd data with Unix.Unix_error (e, _, _) -> io_fail t ~op:"write" e)

let do_fsync t =
  match Failpt.eval "journal.fsync" with
  | Some (Failpt.Errno e) -> io_fail t ~op:"fsync" e
  | Some (Failpt.Short _) -> io_fail t ~op:"fsync" Unix.EIO
  | (Some (Failpt.Delay _) | None) as o ->
      (match o with Some (Failpt.Delay s) -> Unix.sleepf s | _ -> ());
      (try Unix.fsync t.fd with Unix.Unix_error (e, _, _) -> io_fail t ~op:"fsync" e)

let sync t =
  let data = Buffer.contents t.buf in
  if String.length data > 0 then write_frames t data;
  if Obs.enabled () then begin
    let t0 = Clock.now () in
    do_fsync t;
    Obs.Histogram.observe (Obs.Registry.histogram "journal.fsync_s") (Clock.now () -. t0)
  end
  else do_fsync t;
  (* Only now are the buffered frames durable; anything before this
     point keeps them queued for the retry. *)
  t.synced_end <- t.synced_end + String.length data;
  Buffer.clear t.buf;
  t.deferred <- false;
  t.last_sync <- Clock.now ()

let append t body =
  if t.closed then Error.raise_ (Error.State "append to a closed sink");
  let seq = t.next_seq in
  let frame = Frame.encode_record ~seq body in
  (match Chaos.on_append ~seq ~len:(String.length frame) with
  | None -> Buffer.add_string t.buf frame
  | Some keep ->
      (* Injected crash: land every whole frame buffered so far (a real
         kill loses nothing that reached the page cache), then leave
         the torn prefix and abandon the process state right here. *)
      (try write_all t.fd (Buffer.contents t.buf) with Unix.Unix_error _ -> ());
      (try write_all t.fd (String.sub frame 0 keep) with Unix.Unix_error _ -> ());
      t.closed <- true;
      raise (Chaos.Crashed seq));
  t.next_seq <- seq + 1;
  if Obs.enabled () then begin
    Obs.Registry.incr (Obs.Registry.counter "journal.appends");
    Obs.Registry.incr ~by:(String.length frame) (Obs.Registry.counter "journal.bytes")
  end;
  seq

let commit t =
  if t.closed then Error.raise_ (Error.State "commit on a closed sink");
  t.deferred <- true;
  if t.fsync_interval_s <= 0.0 || Clock.now () -. t.last_sync >= t.fsync_interval_s then
    sync t;
  if Obs.enabled () then Obs.Registry.incr (Obs.Registry.counter "journal.commits")

let barrier t =
  if t.closed then Error.raise_ (Error.State "barrier on a closed sink");
  if t.deferred || Buffer.length t.buf > 0 then sync t

let close t =
  if not t.closed then begin
    if t.deferred || Buffer.length t.buf > 0 then sync t;
    t.closed <- true;
    Unix.close t.fd
  end
