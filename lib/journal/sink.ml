module Clock = Prelude.Clock

let magic = "HIREWAL1"
let version = 1

type t = {
  fd : Unix.file_descr;
  path : string;
  (* Framed records accumulate here and hit the fd in one write per
     group-commit sync; an injected crash ({!Chaos}) flushes the whole
     frames first so the tear lands exactly where a real kill would
     leave it. *)
  buf : Buffer.t;
  (* Group-commit window: a {!commit} inside the window defers the
     fsync to a later commit (or {!barrier}/{!close}) so one device
     sync covers every round that landed in the window.  [0.0] fsyncs
     at every commit. *)
  fsync_interval_s : float;
  mutable last_sync : float;
  mutable deferred : bool;  (* committed records awaiting their fsync *)
  mutable next_seq : int;
  mutable closed : bool;
}

let write_all fd s =
  let len = String.length s in
  let rec go pos =
    if pos < len then go (pos + Unix.write_substring fd s pos (len - pos))
  in
  go 0

let preamble header =
  let buf = Buffer.create (String.length header + 32) in
  Buffer.add_string buf magic;
  Frame.put_u32 buf version;
  Buffer.add_string buf (Frame.encode_payload header);
  Buffer.contents buf

let create ?(fsync_interval_s = 0.0) ~path ~header () =
  if Sys.file_exists path then
    Error.raise_ (Error.State (Printf.sprintf "%s already exists (use recovery)" path));
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 in
  write_all fd (preamble header);
  { fd; path; buf = Buffer.create 8192; fsync_interval_s;
    last_sync = Clock.now (); deferred = false; next_seq = 0; closed = false }

(* Reopen after recovery: [valid_end] is the end of the last whole
   record {!Source} scanned; anything past it (the torn tail) is cut
   before appends resume. *)
let open_append ?(fsync_interval_s = 0.0) ~path ~valid_end ~next_seq () =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd valid_end;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { fd; path; buf = Buffer.create 8192; fsync_interval_s;
    last_sync = Clock.now (); deferred = false; next_seq; closed = false }

let next_seq t = t.next_seq

let flush t =
  if Buffer.length t.buf > 0 then begin
    write_all t.fd (Buffer.contents t.buf);
    Buffer.clear t.buf
  end

let sync t =
  flush t;
  if Obs.enabled () then begin
    let t0 = Clock.now () in
    Unix.fsync t.fd;
    Obs.Histogram.observe (Obs.Registry.histogram "journal.fsync_s") (Clock.now () -. t0)
  end
  else Unix.fsync t.fd;
  t.deferred <- false;
  t.last_sync <- Clock.now ()

let append t body =
  if t.closed then Error.raise_ (Error.State "append to a closed sink");
  let seq = t.next_seq in
  let frame = Frame.encode_record ~seq body in
  (match Chaos.on_append ~seq ~len:(String.length frame) with
  | None -> Buffer.add_string t.buf frame
  | Some keep ->
      (* Injected crash: land every whole frame buffered so far (a real
         kill loses nothing that reached the page cache), then leave
         the torn prefix and abandon the process state right here. *)
      flush t;
      write_all t.fd (String.sub frame 0 keep);
      t.closed <- true;
      raise (Chaos.Crashed seq));
  t.next_seq <- seq + 1;
  if Obs.enabled () then begin
    Obs.Registry.incr (Obs.Registry.counter "journal.appends");
    Obs.Registry.incr ~by:(String.length frame) (Obs.Registry.counter "journal.bytes")
  end;
  seq

let commit t =
  if t.closed then Error.raise_ (Error.State "commit on a closed sink");
  t.deferred <- true;
  if t.fsync_interval_s <= 0.0 || Clock.now () -. t.last_sync >= t.fsync_interval_s then
    sync t;
  if Obs.enabled () then Obs.Registry.incr (Obs.Registry.counter "journal.commits")

let barrier t =
  if t.closed then Error.raise_ (Error.State "barrier on a closed sink");
  if t.deferred || Buffer.length t.buf > 0 then sync t

let close t =
  if not t.closed then begin
    if t.deferred || Buffer.length t.buf > 0 then sync t;
    t.closed <- true;
    Unix.close t.fd
  end
