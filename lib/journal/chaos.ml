(* Seeded crash-point injector for the journal (the HIRE_CHAOS
   discipline applied to durability): arm it with a record index and the
   next append of that sequence number writes only a prefix of its frame
   — a torn tail, exactly what a kill -9 mid-write leaves behind — and
   raises [Crashed].  The QCheck crash-anywhere property and the CI
   crash-recovery leg drive it programmatically / via HIRE_CRASH_AT. *)

exception Crashed of int

type armed = { crash_at : int; tear : int }

let state : armed option ref = ref None

let arm ~crash_at ?(tear = 5) () =
  if crash_at < 0 || tear < 0 then invalid_arg "Journal.Chaos.arm";
  state := Some { crash_at; tear }

let disarm () = state := None
let crash_at () = Option.map (fun a -> a.crash_at) !state

(* HIRE_CRASH_AT="<seq>" or "<seq>:<tear-bytes>". *)
let init_env () =
  match Sys.getenv_opt "HIRE_CRASH_AT" with
  | None -> ()
  | Some spec -> (
      let parts = String.split_on_char ':' (String.trim spec) in
      match List.map int_of_string_opt parts with
      | [ Some crash_at ] -> arm ~crash_at ()
      | [ Some crash_at; Some tear ] -> arm ~crash_at ~tear ()
      | _ -> invalid_arg (Printf.sprintf "HIRE_CRASH_AT: cannot parse %S" spec))

let on_append ~seq ~len =
  match !state with
  | Some { crash_at; tear } when seq = crash_at -> Some (min tear len)
  | _ -> None
