module Codec = Prelude.Codec
module Clock = Prelude.Clock

let magic = "HIRECKP1"
let version = 1

type loaded = { gen : int; upto_seq : int; blob : string }

let file_name gen = Printf.sprintf "checkpoint-%08d.bin" gen
let path_of ~dir gen = Filename.concat dir (file_name gen)

let gen_of_name name =
  if
    String.length name = String.length "checkpoint-00000000.bin"
    && String.sub name 0 11 = "checkpoint-"
    && Filename.check_suffix name ".bin"
  then int_of_string_opt (String.sub name 11 8)
  else None

let fsync_dir dir =
  (* Make the rename itself durable; directory fsync is best-effort on
     platforms that reject O_RDONLY directory descriptors. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

(* [fsync:false] (the default) leaves durability to the page cache: a
   checkpoint lost or torn by a crash fails its CRC and {!latest} falls
   back, so only recovery speed is at stake, never correctness.  A
   failed write — real or injected through the [checkpoint.write]
   failpoint — removes the temporary file and raises {!Error.Io}; the
   rename-into-place protocol means no reader ever saw it, so callers
   may simply skip the checkpoint ({!Sim.Service} does). *)
let write ?(fsync = false) ~dir ~gen ~upto_seq blob =
  let t0 = if Obs.enabled () then Clock.now () else 0.0 in
  let e = Codec.Enc.create ~initial:(String.length blob + 32) () in
  Codec.Enc.uint e gen;
  Codec.Enc.uint e upto_seq;
  Codec.Enc.string e blob;
  let buf = Buffer.create (String.length blob + 64) in
  Buffer.add_string buf magic;
  Frame.put_u32 buf version;
  Buffer.add_string buf (Frame.encode_payload (Codec.Enc.to_string e));
  let data = Buffer.contents buf in
  let tmp = Filename.concat dir (Printf.sprintf ".checkpoint-%08d.tmp" gen) in
  let io_fail ~op error =
    (try Sys.remove tmp with Sys_error _ -> ());
    if Obs.enabled () then Obs.Registry.incr (Obs.Registry.counter "journal.io_errors");
    Error.raise_ (Error.Io { path = tmp; op; error })
  in
  (try
     let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () ->
         (match Failpt.eval "checkpoint.write" with
         | Some (Failpt.Errno e) -> raise (Unix.Unix_error (e, "write", tmp))
         | Some (Failpt.Short k) ->
             Sink.write_all fd (String.sub data 0 (min k (String.length data)));
             raise (Unix.Unix_error (Unix.ENOSPC, "write", tmp))
         | Some (Failpt.Delay s) -> Unix.sleepf s
         | None -> ());
         Sink.write_all fd data;
         if fsync then Unix.fsync fd);
     (* rename-into-place: readers only ever see absent or whole files. *)
     Sys.rename tmp (path_of ~dir gen)
   with
  | Unix.Unix_error (e, op, _) -> io_fail ~op e
  | Sys_error _ -> io_fail ~op:"rename" Unix.EIO);
  if fsync then fsync_dir dir;
  if Obs.enabled () then begin
    Obs.Registry.incr (Obs.Registry.counter "journal.checkpoints");
    Obs.Histogram.observe
      (Obs.Registry.histogram "journal.checkpoint_s")
      (Clock.now () -. t0)
  end

let load_file path =
  let s = Source.read_file path in
  let magic_len = String.length magic in
  if String.length s < magic_len + 4 || String.sub s 0 magic_len <> magic then None
  else if Frame.get_u32 s magic_len <> version then None
  else begin
    match Frame.read_payload s ~pos:(magic_len + 4) with
    | `End | `Torn | `Corrupt _ -> None
    | `Payload (payload, _) -> (
        match
          Codec.decode_string payload (fun d ->
              let gen = Codec.Dec.uint d in
              let upto_seq = Codec.Dec.uint d in
              let blob = Codec.Dec.string d in
              { gen; upto_seq; blob })
        with
        | Ok l -> Some l
        | Result.Error _ -> None)
  end

let generations ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map gen_of_name
      |> List.sort (fun a b -> Int.compare b a)

(* Newest checkpoint that loads cleanly; a half-written or corrupt file
   (impossible via the rename protocol, possible via bit rot) is skipped
   in favour of an older generation. *)
let latest ~dir =
  let rec pick = function
    | [] -> None
    | gen :: rest -> (
        match load_file (path_of ~dir gen) with
        | Some l when l.gen = gen -> Some l
        | _ -> pick rest)
  in
  pick (generations ~dir)

let prune ~dir ~keep =
  let gens = generations ~dir in
  List.iteri
    (fun i gen -> if i >= keep then try Sys.remove (path_of ~dir gen) with Sys_error _ -> ())
    gens
