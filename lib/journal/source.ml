type tail = Clean | Torn of { offset : int }

type loaded = {
  header : string;  (** the opaque spec blob written by {!Sink.create} *)
  records : string array;  (** record bodies, index = sequence number *)
  valid_end : int;  (** byte offset just past the last whole record *)
  tail : tail;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan ~path s =
  let err e = Result.Error e in
  let len_total = String.length s in
  let magic_len = String.length Sink.magic in
  if len_total = 0 then err (Error.Empty { path })
  else if len_total < magic_len + 4 then err (Error.Bad_magic { path })
  else if String.sub s 0 magic_len <> Sink.magic then err (Error.Bad_magic { path })
  else begin
    let version = Frame.get_u32 s magic_len in
    if version <> Sink.version then err (Error.Bad_version { path; version })
    else begin
      match Frame.read_payload s ~pos:(magic_len + 4) with
      | `End | `Torn -> err (Error.Truncated_header { path })
      | `Corrupt _ -> err (Error.Truncated_header { path })
      | `Payload (header, pos0) ->
          let records = ref [] in
          let rec go pos seq =
            match Frame.read_payload s ~pos with
            | `End -> Ok { header; records = [||]; valid_end = pos; tail = Clean }
            | `Torn -> Ok { header; records = [||]; valid_end = pos; tail = Torn { offset = pos } }
            | `Corrupt reason -> err (Error.Corrupt_record { path; seq; offset = pos; reason })
            | `Payload (payload, next) -> (
                match
                  Prelude.Codec.decode_string payload (fun d ->
                      let got = Prelude.Codec.Dec.uint d in
                      (got, Prelude.Codec.Dec.string d))
                with
                | Result.Error reason ->
                    err (Error.Corrupt_record { path; seq; offset = pos; reason })
                | Ok (got, _) when got = seq - 1 && seq > 0 ->
                    err (Error.Duplicate_seq { path; seq = got; offset = pos })
                | Ok (got, _) when got <> seq ->
                    err
                      (Error.Corrupt_record
                         {
                           path;
                           seq;
                           offset = pos;
                           reason = Printf.sprintf "sequence %d where %d expected" got seq;
                         })
                | Ok (_, body) ->
                    records := body :: !records;
                    go next (seq + 1))
          in
          Result.map
            (fun (l : loaded) ->
              { l with records = Array.of_list (List.rev !records) })
            (go pos0 0)
    end
  end

let load ~path =
  if not (Sys.file_exists path) then Result.Error (Error.Missing { path })
  else scan ~path (read_file path)

(* Fail-closed variant: a torn tail is an error too.  Adversarial-input
   tests and non-recovery readers use this. *)
let load_strict ~path =
  match load ~path with
  | Ok { tail = Torn { offset }; _ } -> Result.Error (Error.Torn_tail { path; offset })
  | other -> other
