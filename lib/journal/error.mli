(** Structured journal errors (docs/JOURNAL.md).

    Every failure mode of opening, scanning, or replaying a journal is
    one of these constructors — the journal never partially loads a
    damaged file silently.  A {!Torn_tail} is special: it is the
    expected signature of a crash mid-append, and recovery (alone) may
    elect to truncate it away; every other error fails closed. *)

type t =
  | Missing of { path : string }
  | Empty of { path : string }
  | Bad_magic of { path : string }
  | Bad_version of { path : string; version : int }
  | Truncated_header of { path : string }
      (** the fixed preamble or the spec header record is incomplete *)
  | Torn_tail of { path : string; offset : int }
      (** the final record frame is an incomplete prefix — a crash
          mid-append; [offset] is the end of the last whole record *)
  | Corrupt_record of { path : string; seq : int; offset : int; reason : string }
      (** a complete frame whose checksum or structure is wrong —
          corruption, not a crash artefact; never truncated away *)
  | Duplicate_seq of { path : string; seq : int; offset : int }
  | Divergence of { seq : int; detail : string }
      (** deterministic replay re-derived a record that differs from the
          stored bytes *)
  | Io of { path : string; op : string; error : Unix.error }
      (** a write-side syscall failed (ENOSPC, EIO, a short write, a
          failed fsync — real or injected via [Failpt], docs/FAILPOINTS.md).
          Retryable: {!Sink} has already truncated the file back to its
          last durable frame boundary and kept the unsynced frames
          buffered, so the next {!Sink.barrier} retries them in order *)
  | State of string  (** journal-directory misuse (see {!Sink}/{!Service}) *)

exception Journal_error of t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Raise as {!Journal_error}. *)
val raise_ : t -> 'a
