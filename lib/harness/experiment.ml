module Rng = Prelude.Rng

type spec = {
  scheduler : string;
  mu : float;
  setup : Sim.Cluster.inc_setup;
  k : int;
  horizon : float;
  seed : int;
  target_utilization : float;
  inc_capable_fraction : float option;
  faults : Faults.spec option;
}

let default =
  {
    scheduler = "hire";
    mu = 0.5;
    setup = Sim.Cluster.Homogeneous;
    k = 8;
    horizon = 600.0;
    seed = 1;
    target_utilization = 0.80;
    inc_capable_fraction = Some 0.15;
    faults = None;
  }

let run spec =
  let rng = Rng.create spec.seed in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  (* Always drawn so that the trace/scenario/cluster streams — and hence
     the fault-free baseline behaviour — are identical whether or not
     faults are enabled. *)
  let fault_rng = Rng.split rng in
  let store = Hire.Comp_store.default () in
  let services = Array.to_list (Hire.Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ?inc_capable_fraction:spec.inc_capable_fraction ~k:spec.k
      ~setup:spec.setup ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:spec.target_utilization Workload.Trace_gen.default
  in
  let jobs = Workload.Trace_gen.generate trace_config trace_rng ~horizon:spec.horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu:spec.mu jobs in
  let sched = Schedulers.Registry.create spec.scheduler ~seed:spec.seed cluster in
  let faults_plan =
    Option.map
      (fun (fs : Faults.spec) ->
        let topo = Sim.Cluster.topo cluster in
        let sharing = Sim.Cluster.sharing cluster in
        Faults.Plan.generate fs.plan fault_rng
          ~inc_capable:(fun s -> Hire.Sharing.supported_services sharing s <> [])
          ~servers:(Topology.Fat_tree.servers topo)
          ~switches:(Topology.Fat_tree.switches topo)
          ~horizon:spec.horizon)
      spec.faults
  in
  let fault_policy = Option.map (fun (fs : Faults.spec) -> fs.policy) spec.faults in
  let result =
    Sim.Simulator.run ?faults:faults_plan ?fault_policy cluster sched
      scenario.Sim.Scenario.arrivals
  in
  result.Sim.Simulator.report

let run_seeds spec seeds = List.map (fun seed -> run { spec with seed }) seeds

let mean_over f reports = Prelude.Stats.mean (List.map f reports)
