module Rng = Prelude.Rng

type spec = {
  scheduler : string;
  mu : float;
  setup : Sim.Cluster.inc_setup;
  k : int;
  horizon : float;
  seed : int;
  target_utilization : float;
  inc_capable_fraction : float option;
  faults : Faults.spec option;
  resilience : Hire.Hire_scheduler.resilience option;
  incremental : bool;
  reopt : bool;
  portfolio : bool;
}

let default =
  {
    scheduler = "hire";
    mu = 0.5;
    setup = Sim.Cluster.Homogeneous;
    k = 8;
    horizon = 600.0;
    seed = 1;
    target_utilization = 0.80;
    inc_capable_fraction = Some 0.15;
    faults = None;
    resilience = None;
    incremental = true;
    reopt = true;
    portfolio = false;
  }

(* Build the whole world of a spec — cluster, workload, scheduler, fault
   plan — and hand back the initialized (not yet executed) simulation.
   The RNG split order (trace, scenario, cluster, fault) is part of a
   spec's identity: journaled runs rebuild the world through this very
   function during recovery (docs/JOURNAL.md), so the streams here must
   stay byte-for-byte reproducible. *)
let prepare ?config spec =
  let rng = Rng.create spec.seed in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  (* Always drawn so that the trace/scenario/cluster streams — and hence
     the fault-free baseline behaviour — are identical whether or not
     faults are enabled. *)
  let fault_rng = Rng.split rng in
  let store = Hire.Comp_store.default () in
  let services = Array.to_list (Hire.Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ?inc_capable_fraction:spec.inc_capable_fraction ~k:spec.k
      ~setup:spec.setup ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:spec.target_utilization Workload.Trace_gen.default
  in
  let jobs = Workload.Trace_gen.generate trace_config trace_rng ~horizon:spec.horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu:spec.mu jobs in
  let sched =
    Schedulers.Registry.create ?resilience:spec.resilience ~incremental:spec.incremental
      ~reopt:spec.reopt ~portfolio:spec.portfolio spec.scheduler ~seed:spec.seed cluster
  in
  let faults_plan =
    Option.map
      (fun (fs : Faults.spec) ->
        let topo = Sim.Cluster.topo cluster in
        let sharing = Sim.Cluster.sharing cluster in
        Faults.Plan.generate fs.plan fault_rng
          ~inc_capable:(fun s -> Hire.Sharing.supported_services sharing s <> [])
          ~servers:(Topology.Fat_tree.servers topo)
          ~switches:(Topology.Fat_tree.switches topo)
          ~horizon:spec.horizon)
      spec.faults
  in
  let fault_policy = Option.map (fun (fs : Faults.spec) -> fs.policy) spec.faults in
  Sim.Simulator.init ?config ?faults:faults_plan ?fault_policy cluster sched
    scenario.Sim.Scenario.arrivals

let run spec =
  let sim = prepare spec in
  while Sim.Simulator.step sim do
    ()
  done;
  (Sim.Simulator.finish sim).Sim.Simulator.report

let run_seeds spec seeds = List.map (fun seed -> run { spec with seed }) seeds

(* ------------------------------------------------------------------ *)
(* Spec serialization (journal WAL headers, docs/JOURNAL.md)           *)
(* ------------------------------------------------------------------ *)

module Enc = Prelude.Codec.Enc
module Dec = Prelude.Codec.Dec

(* Bump on any wire-format change; old journals then fail closed with a
   version error instead of being misdecoded.  v2 added the [reopt]
   flag. *)
let spec_blob_version = 2

let enc_setup e = function
  | Sim.Cluster.Homogeneous -> Enc.byte e 0
  | Sim.Cluster.Heterogeneous -> Enc.byte e 1

let dec_setup d =
  match Dec.byte d with
  | 0 -> Sim.Cluster.Homogeneous
  | 1 -> Sim.Cluster.Heterogeneous
  | b -> raise (Prelude.Codec.Error (Printf.sprintf "unknown inc_setup tag %d" b))

let enc_faults e (fs : Faults.spec) =
  Enc.f64 e fs.plan.Faults.Plan.server_mtbf;
  Enc.f64 e fs.plan.server_mttr;
  Enc.f64 e fs.plan.switch_mtbf;
  Enc.f64 e fs.plan.switch_mttr;
  Enc.f64 e fs.plan.inc_weight;
  Enc.uint e fs.policy.Faults.Policy.max_retries;
  Enc.f64 e fs.policy.backoff;
  Enc.f64 e fs.policy.multiplier

let dec_faults d : Faults.spec =
  let server_mtbf = Dec.f64 d in
  let server_mttr = Dec.f64 d in
  let switch_mtbf = Dec.f64 d in
  let switch_mttr = Dec.f64 d in
  let inc_weight = Dec.f64 d in
  let max_retries = Dec.uint d in
  let backoff = Dec.f64 d in
  let multiplier = Dec.f64 d in
  {
    plan = { Faults.Plan.server_mtbf; server_mttr; switch_mtbf; switch_mttr; inc_weight };
    policy = { Faults.Policy.max_retries; backoff; multiplier };
  }

let enc_resilience e (r : Hire.Hire_scheduler.resilience) =
  Enc.option e
    (fun e (b : Flow.Budget.t) ->
      Enc.option e Enc.f64 b.Flow.Budget.max_wall_s;
      Enc.option e Enc.uint b.max_steps)
    r.Hire.Hire_scheduler.budget;
  Enc.int e r.guard_every

let dec_resilience d : Hire.Hire_scheduler.resilience =
  let budget =
    Dec.option d (fun d ->
        let max_wall_s = Dec.option d Dec.f64 in
        let max_steps = Dec.option d Dec.uint in
        { Flow.Budget.max_wall_s; max_steps })
  in
  let guard_every = Dec.int d in
  { Hire.Hire_scheduler.budget; guard_every }

let spec_to_blob spec =
  let e = Enc.create () in
  Enc.uint e spec_blob_version;
  Enc.string e spec.scheduler;
  Enc.f64 e spec.mu;
  enc_setup e spec.setup;
  Enc.uint e spec.k;
  Enc.f64 e spec.horizon;
  Enc.int e spec.seed;
  Enc.f64 e spec.target_utilization;
  Enc.option e Enc.f64 spec.inc_capable_fraction;
  Enc.option e enc_faults spec.faults;
  Enc.option e enc_resilience spec.resilience;
  Enc.bool e spec.incremental;
  Enc.bool e spec.reopt;
  Enc.bool e spec.portfolio;
  Enc.to_string e

let spec_of_blob blob =
  let d = Dec.of_string blob in
  let v = Dec.uint d in
  if v <> spec_blob_version then
    raise
      (Prelude.Codec.Error
         (Printf.sprintf "spec blob version %d, this build reads %d" v spec_blob_version));
  let scheduler = Dec.string d in
  let mu = Dec.f64 d in
  let setup = dec_setup d in
  let k = Dec.uint d in
  let horizon = Dec.f64 d in
  let seed = Dec.int d in
  let target_utilization = Dec.f64 d in
  let inc_capable_fraction = Dec.option d Dec.f64 in
  let faults = Dec.option d dec_faults in
  let resilience = Dec.option d dec_resilience in
  let incremental = Dec.bool d in
  let reopt = Dec.bool d in
  let portfolio = Dec.bool d in
  if not (Dec.at_end d) then
    raise (Prelude.Codec.Error "trailing bytes after spec blob");
  {
    scheduler;
    mu;
    setup;
    k;
    horizon;
    seed;
    target_utilization;
    inc_capable_fraction;
    faults;
    resilience;
    incremental;
    reopt;
    portfolio;
  }

let mean_over f reports = Prelude.Stats.mean (List.map f reports)

(* ------------------------------------------------------------------ *)
(* Sweep enumeration and cell identity                                 *)
(* ------------------------------------------------------------------ *)

let sweep ?schedulers ?mus ?setups ?seeds base =
  let axis opt default = match opt with Some l -> l | None -> [ default ] in
  let schedulers = axis schedulers base.scheduler in
  let mus = axis mus base.mu in
  let setups = axis setups base.setup in
  let seeds = axis seeds base.seed in
  List.concat_map
    (fun setup ->
      List.concat_map
        (fun scheduler ->
          List.concat_map
            (fun mu -> List.map (fun seed -> { base with scheduler; mu; setup; seed }) seeds)
            mus)
        schedulers)
    setups

let describe spec =
  Printf.sprintf "%s mu=%.2f %s k=%d seed=%d%s" spec.scheduler spec.mu
    (Sim.Cluster.inc_setup_to_string spec.setup)
    spec.k spec.seed
    (match spec.faults with None -> "" | Some _ -> " +faults")
    ^ (match spec.resilience with None -> "" | Some _ -> " +resilience")
    ^ (if spec.portfolio then " +portfolio" else "")
    ^ (if spec.incremental then "" else " -incremental")
    ^ if spec.reopt then "" else " -reopt"

(* Bump when the meaning of a cell changes without its spec changing
   (simulator semantics, trace generator, metrics definitions, ...) so
   that stale cache entries miss instead of resurfacing as fresh data. *)
let cell_schema_version = "1"

let cell_key spec =
  let b = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  (* %h renders the exact float bits, so keys never collide or drift
     through decimal rounding. *)
  addf "hire.experiment.cell.v%s" cell_schema_version;
  addf "|scheduler=%s" spec.scheduler;
  addf "|mu=%h" spec.mu;
  addf "|setup=%s" (Sim.Cluster.inc_setup_to_string spec.setup);
  addf "|k=%d" spec.k;
  addf "|horizon=%h" spec.horizon;
  addf "|seed=%d" spec.seed;
  addf "|util=%h" spec.target_utilization;
  (match spec.inc_capable_fraction with
  | None -> addf "|frac=default"
  | Some f -> addf "|frac=%h" f);
  (match spec.faults with
  | None -> addf "|faults=none"
  | Some { Faults.plan; policy } ->
      addf "|faults=mtbf:%h,%h;mttr:%h,%h;w:%h;retries:%d;backoff:%h;mult:%h"
        plan.Faults.Plan.server_mtbf plan.switch_mtbf plan.server_mttr plan.switch_mttr
        plan.inc_weight policy.Faults.Policy.max_retries policy.backoff policy.multiplier);
  (* Appended only when set, so cells of resilience-free sweeps keep
     their pre-resilience keys and cached results stay valid. *)
  (match spec.resilience with
  | None -> ()
  | Some { Hire.Hire_scheduler.budget; guard_every } ->
      let wall, steps =
        match budget with
        | None -> ("none", "none")
        | Some { Flow.Budget.max_wall_s; max_steps } ->
            ( (match max_wall_s with
              | None -> "none"
              | Some s -> Printf.sprintf "%h" s),
              match max_steps with None -> "none" | Some n -> string_of_int n )
      in
      addf "|resilience=wall:%s;steps:%s;guard:%d" wall steps guard_every);
  (* Incremental network maintenance produces bit-identical results, so
     the default (on) keeps the historical key; only the explicit
     escape hatch gets its own cells. *)
  if not spec.incremental then addf "|incremental=off";
  (* Same discipline for the re-optimizing solve path: bit-identical by
     construction, so only the explicit escape hatch gets new cells. *)
  if not spec.reopt then addf "|reopt=off";
  (* The portfolio race replays the serial chain's decisions exactly, so
     its reports match serial cells — but only for deterministic fields
     (solver wall times differ), so raced cells get their own keys.
     Opt-in segment: portfolio-off sweeps keep their historical keys. *)
  if spec.portfolio then addf "|portfolio=on";
  Digest.to_hex (Digest.string (Buffer.contents b))
