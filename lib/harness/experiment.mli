(** One experiment cell of the paper's sweep (§6.2): a ⟨scheduler, μ,
    switch setup⟩ triple on a fat-tree cluster, replaying a synthetic
    Alibaba-like trace.  The paper runs each cell with three seeds. *)

type spec = {
  scheduler : string;  (** a {!Schedulers.Registry} name *)
  mu : float;  (** target ratio of jobs requesting INC *)
  setup : Sim.Cluster.inc_setup;
  k : int;  (** fat-tree arity *)
  horizon : float;  (** trace length, seconds *)
  seed : int;
  target_utilization : float;  (** offered CPU load of the trace *)
  inc_capable_fraction : float option;
      (** overrides the cluster's default INC-capable switch fraction.
          [default] pins it to 0.15 — the calibration at k=8 that puts
          INC demand at μ=1 moderately above the retrofitted baselines'
          effective switch capacity, reproducing the paper's contention
          regime (their k=26 testbed has every switch INC-capable).  Use
          [Some 1.0] when running the full k=26 configuration. *)
  faults : Faults.spec option;
      (** [Some _] injects a fault plan generated deterministically from
          the cell's seed (an independent RNG stream: the trace, the
          scenario, and the cluster are identical with faults on or
          off).  [None] (the default) reproduces the fault-free
          simulator byte for byte. *)
  resilience : Hire.Hire_scheduler.resilience option;
      (** solver-resilience policy for flow-based schedulers
          (docs/RESILIENCE.md); [None] (the default) keeps the legacy
          single-unbounded-solve behaviour and the cell's pre-resilience
          cache key *)
  incremental : bool;
      (** [true] (the default) lets HIRE variants patch a persistent
          flow network between rounds instead of rebuilding it
          (docs/PERFORMANCE.md).  Results are bit-identical either way,
          so the default keeps the historical cache key; [false] — the
          verification escape hatch — gets separate cells. *)
  reopt : bool;
      (** [true] (the default) additionally makes the persistent builder
          undo the previous round's flow sparsely, via touched-arc
          tracking, instead of sweeping the whole arena
          (docs/PERFORMANCE.md).  Bit-identical either way and ignored
          without [incremental]; like [incremental], the default keeps
          the historical cache key and only the [--no-reopt] escape
          hatch gets separate cells. *)
  portfolio : bool;
      (** race the MCMF backends on OCaml 5 domains inside each HIRE
          round (docs/PARALLELISM.md); effective only together with
          [resilience].  Placements and deterministic report fields
          match the serial chain, but solver wall times differ, so
          [true] gets its own cache cells; [false] (the default) keeps
          the historical keys. *)
}

val default : spec

(** Parameter sweep helper: [{ default with ... }] for each μ, seed, ... *)
val run : spec -> Sim.Metrics.report

(** Build the whole world of a spec — cluster, workload, scheduler, fault
    plan — and hand back the initialized, not-yet-executed simulation.
    [run] is exactly [prepare] + {!Sim.Simulator.step} to exhaustion +
    {!Sim.Simulator.finish}.  The internal RNG split order is part of a
    spec's identity: journaled runs rebuild their world through this
    function during crash recovery (docs/JOURNAL.md), so equal specs
    always produce byte-identical simulations. *)
val prepare : ?config:Sim.Simulator.config -> spec -> Sim.Simulator.t

(** Self-describing binary encoding of a spec, written as the WAL header
    of journaled runs so recovery can rebuild the world without any
    out-of-band state (docs/JOURNAL.md).  Round-trips exactly:
    [spec_of_blob (spec_to_blob s) = s]. *)
val spec_to_blob : spec -> string

(** Inverse of {!spec_to_blob}.
    @raise Prelude.Codec.Error on malformed, truncated, or
    wrong-version blobs. *)
val spec_of_blob : string -> spec

(** [run_seeds spec seeds] runs one cell per seed. *)
val run_seeds : spec -> int list -> Sim.Metrics.report list

(** Mean of a per-report statistic across seeds. *)
val mean_over : (Sim.Metrics.report -> float) -> Sim.Metrics.report list -> float

(** [sweep base ~schedulers ~mus ~setups ~seeds] enumerates one spec per
    cell of the cross product, as [{ base with scheduler; mu; setup;
    seed }].  Omitted axes default to the singleton taken from [base].
    Enumeration order is deterministic and setup-major: setups, then
    schedulers, then μ values, then seeds, each in the order given —
    the order the paper's tables are printed in, and the order
    [bin/hire_sweep] emits CSV rows in. *)
val sweep :
  ?schedulers:string list ->
  ?mus:float list ->
  ?setups:Sim.Cluster.inc_setup list ->
  ?seeds:int list ->
  spec ->
  spec list

(** One-line human-readable cell description (runner progress lines,
    failure records). *)
val describe : spec -> string

(** [cell_key spec] is a content hash (hex digest) of everything that
    determines the cell's result: topology (k, setup, INC fraction),
    workload (horizon, offered load, μ), scheduler, seed, and the fault
    plan/policy if any.  Equal specs hash equal; any semantic change
    hashes different.  Used as the {!Runner.Cache} key, so resumed
    sweeps recompute exactly the cells whose config changed.  The hash
    also folds in an internal schema version — bump it when simulator
    semantics change the meaning of a result without the spec
    changing. *)
val cell_key : spec -> string
