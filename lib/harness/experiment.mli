(** One experiment cell of the paper's sweep (§6.2): a ⟨scheduler, μ,
    switch setup⟩ triple on a fat-tree cluster, replaying a synthetic
    Alibaba-like trace.  The paper runs each cell with three seeds. *)

type spec = {
  scheduler : string;  (** a {!Schedulers.Registry} name *)
  mu : float;  (** target ratio of jobs requesting INC *)
  setup : Sim.Cluster.inc_setup;
  k : int;  (** fat-tree arity *)
  horizon : float;  (** trace length, seconds *)
  seed : int;
  target_utilization : float;  (** offered CPU load of the trace *)
  inc_capable_fraction : float option;
      (** overrides the cluster's default INC-capable switch fraction.
          [default] pins it to 0.15 — the calibration at k=8 that puts
          INC demand at μ=1 moderately above the retrofitted baselines'
          effective switch capacity, reproducing the paper's contention
          regime (their k=26 testbed has every switch INC-capable).  Use
          [Some 1.0] when running the full k=26 configuration. *)
  faults : Faults.spec option;
      (** [Some _] injects a fault plan generated deterministically from
          the cell's seed (an independent RNG stream: the trace, the
          scenario, and the cluster are identical with faults on or
          off).  [None] (the default) reproduces the fault-free
          simulator byte for byte. *)
}

val default : spec

(** Parameter sweep helper: [{ default with ... }] for each μ, seed, ... *)
val run : spec -> Sim.Metrics.report

(** [run_seeds spec seeds] runs one cell per seed. *)
val run_seeds : spec -> int list -> Sim.Metrics.report list

(** Mean of a per-report statistic across seeds. *)
val mean_over : (Sim.Metrics.report -> float) -> Sim.Metrics.report list -> float
