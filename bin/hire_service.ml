(* Journaled scheduler service: one experiment cell run under a
   write-ahead log with periodic checkpoints, recoverable after a crash
   (docs/JOURNAL.md).  The spec is serialized into the WAL header, so
   [--recover] needs nothing but the state directory: the world is
   rebuilt from the stored blob, the newest checkpoint is overlaid, the
   torn tail is truncated, and the remaining records are replayed by
   deterministic re-execution before the run continues live.

   State layout (docs/RUNNER.md): everything lives under --state-dir,
   journal in <state-dir>/journal — the same convention hire_sweep uses
   for its result cache (<state-dir>/cache). *)

let journal_subdir = "journal"

(* Journaled runs substitute the simulated think time for the measured
   solver wall clock: replay must re-derive every record byte for byte,
   and wall time is the one nondeterministic input. *)
let config = { Sim.Simulator.default_config with deterministic_wall = true }

let parse_crash_at s =
  match String.index_opt s ':' with
  | None -> (int_of_string s, None)
  | Some i ->
      ( int_of_string (String.sub s 0 i),
        Some (int_of_string (String.sub s (i + 1) (String.length s - i - 1))) )

(* One startup line enumerating every armed fault-injection knob
   (docs/FAILPOINTS.md): operators reading a failure log should never
   have to guess whether faults were injected or real. *)
let log_armed_faults () =
  let knobs =
    List.filter_map Fun.id
      [
        (match Failpt.describe () with
        | "" -> None
        | d -> Some ("failpoints " ^ d));
        (match Journal.Chaos.crash_at () with
        | None -> None
        | Some seq -> Some (Printf.sprintf "crash-at seq=%d" seq));
        (match Flow.Chaos.seed () with
        | None -> None
        | Some seed -> Some (Printf.sprintf "solver-chaos seed=%d" seed));
      ]
  in
  if knobs <> [] then
    Printf.printf "fault injection armed: %s\n%!" (String.concat "; " knobs)

let run state_dir checkpoint_every recover crash_at scheduler mu k horizon seed setup util
    fraction faults_on mtbf mttr max_retries csv obs_summary serve socket tcp
    round_interval max_batch max_pending io_timeout =
  if obs_summary then Obs.set_enabled true;
  Journal.Chaos.init_env ();
  Failpt.init_env ();
  (match crash_at with
  | None -> ()
  | Some s ->
      let crash_at, tear = parse_crash_at s in
      Journal.Chaos.arm ~crash_at ?tear ());
  log_armed_faults ();
  let dir = Filename.concat state_dir journal_subdir in
  let setup =
    match setup with
    | "homogeneous" | "homog" -> Sim.Cluster.Homogeneous
    | "heterogeneous" | "het" -> Sim.Cluster.Heterogeneous
    | other -> failwith (Printf.sprintf "unknown setup %S (homogeneous|heterogeneous)" other)
  in
  if not (List.mem scheduler Schedulers.Registry.names) then
    failwith
      (Printf.sprintf "unknown scheduler %S (known: %s)" scheduler
         (String.concat ", " Schedulers.Registry.names));
  let faults =
    if not faults_on then None
    else
      Some
        {
          Faults.plan =
            {
              Faults.Plan.default_config with
              server_mtbf = mtbf;
              switch_mtbf = mtbf;
              server_mttr = mttr;
              switch_mttr = mttr;
            };
          policy = Faults.Policy.create ~max_retries ();
        }
  in
  let spec_of_flags =
    {
      Harness.Experiment.scheduler;
      mu;
      setup;
      k;
      horizon;
      seed;
      target_utilization = util;
      inc_capable_fraction = fraction;
      faults;
      resilience = None;
      incremental = true;
      reopt = true;
      portfolio = false;
    }
  in
  let result, csv_spec =
    if serve then begin
      (* Admission-server mode (docs/SERVER.md): the journaled world
         fronted by a socket; every job arrives through the wire. *)
      if round_interval <= 0.0 || not (Float.is_finite round_interval) then
        failwith "--round-interval must be a positive number of seconds";
      if max_batch < 1 then failwith "--max-batch must be >= 1";
      if max_pending < 1 then failwith "--max-pending must be >= 1";
      let sconfig =
        {
          Server.Admission.default_config with
          round_interval;
          max_batch;
          max_pending;
          checkpoint_every;
        }
      in
      let engine =
        if recover then begin
          let r = Server.Admission.recover ~dir ~config:sconfig () in
          Printf.printf
            "recovered: %d record(s) replayed, %d pending admission(s) restored\n%!"
            r.Server.Admission.replayed r.Server.Admission.pending_recovered;
          r.Server.Admission.engine
        end
        else begin
          let spec = spec_of_flags in
          Printf.printf "serving %s from %s\n%!"
            (Harness.Experiment.describe spec)
            dir;
          Server.Admission.start ~dir ~config:sconfig spec
        end
      in
      let listen =
        match tcp with
        | Some hostport -> (
            match String.index_opt hostport ':' with
            | None -> failwith "expected HOST:PORT for --tcp"
            | Some i -> (
                let host = String.sub hostport 0 i in
                let rest = String.sub hostport (i + 1) (String.length hostport - i - 1) in
                match int_of_string_opt rest with
                | Some port -> Server.Net.Tcp (host, port)
                | None -> failwith "expected HOST:PORT for --tcp"))
        | None ->
            let path =
              match socket with
              | Some p -> p
              | None -> Filename.concat state_dir "server.sock"
            in
            Server.Net.Unix_sock path
      in
      (match listen with
      | Server.Net.Unix_sock p -> Printf.printf "listening on %s\n%!" p
      | Server.Net.Tcp (h, p) -> Printf.printf "listening on %s:%d\n%!" h p);
      let result =
        Server.Net.serve ~engine ~listen ~tick_interval:round_interval ~io_timeout ()
      in
      (result, Server.Admission.spec engine)
    end
    else begin
      let service =
        if recover then begin
          let r =
            Sim.Service.recover ~dir ~checkpoint_every
              ~rebuild:(fun header ->
                let spec = Harness.Experiment.spec_of_blob header in
                Printf.printf "recovering: %s\n%!" (Harness.Experiment.describe spec);
                Harness.Experiment.prepare ~config spec)
              ()
          in
          Printf.printf "recovered: %d record(s) replayed%s\n%!" r.Sim.Service.replayed
            (match r.Sim.Service.from_checkpoint with
            | None -> ", from genesis"
            | Some seq -> Printf.sprintf ", checkpoint covered seq < %d" seq);
          r.Sim.Service.service
        end
        else begin
          let spec = spec_of_flags in
          Printf.printf "journaling %s into %s\n%!" (Harness.Experiment.describe spec) dir;
          Sim.Service.start ~dir ~checkpoint_every
            ~header:(Harness.Experiment.spec_to_blob spec)
            (Harness.Experiment.prepare ~config spec)
        end
      in
      let result = Sim.Service.run service in
      (* The spec identity for the CSV row comes from the flags on a
         fresh start; on recovery re-read it from the journal header so
         the row labels match the journaled run, not the defaults. *)
      let csv_spec =
        if recover then
          match Journal.Source.load ~path:(Filename.concat dir "wal.bin") with
          | Ok l -> Harness.Experiment.spec_of_blob l.Journal.Source.header
          | Error e -> Journal.Error.raise_ e
        else spec_of_flags
      in
      (result, csv_spec)
    end
  in
  let report = result.Sim.Simulator.report in
  Printf.printf "%s\n" (Format.asprintf "%a" Sim.Metrics.pp_report report);
  (match csv with
  | None -> ()
  | Some path ->
      let spec = csv_spec in
      let row =
        Sim.Csv_export.row ~faults:(spec.Harness.Experiment.faults <> None) ~resilience:false
          ~scheduler:spec.Harness.Experiment.scheduler ~mu:spec.Harness.Experiment.mu
          ~setup:spec.Harness.Experiment.setup ~seed:spec.Harness.Experiment.seed report
      in
      Sim.Csv_export.write_file
        ~faults:(spec.Harness.Experiment.faults <> None)
        ~resilience:false path [ row ];
      Printf.printf "metrics row written to %s\n" path);
  if obs_summary then begin
    Printf.printf "--- observability summary ---\n%!";
    Format.printf "%a%!" Obs.Registry.pp_summary ()
  end

open Cmdliner

let state_dir =
  let doc =
    "State directory (docs/RUNNER.md): the journal lives in \
     $(docv)/journal.  Shared convention with $(b,hire_sweep)'s result \
     cache ($(docv)/cache)."
  in
  Arg.(value & opt string (Filename.concat "results" "service")
       & info [ "state-dir"; "journal-dir" ] ~docv:"DIR" ~doc)

let checkpoint_every =
  let doc =
    "Write a full state checkpoint every $(docv) scheduling rounds, so recovery \
     replays only the WAL suffix past the newest checkpoint.  0 disables \
     checkpoints (recovery replays from genesis)."
  in
  Arg.(value & opt int 250 & info [ "checkpoint-every" ] ~docv:"ROUNDS" ~doc)

let recover =
  let doc =
    "Resume a crashed run from $(b,--state-dir): truncate the torn WAL tail, rebuild \
     the world from the journaled spec, overlay the newest checkpoint, replay the \
     remaining records, and continue to completion.  All spec flags are ignored — the \
     spec comes from the journal header."
  in
  Arg.(value & flag & info [ "recover" ] ~doc)

let crash_at =
  let doc =
    "Arm the seeded crash injector: the append of WAL record $(docv) (format \
     SEQ or SEQ:TEAR-BYTES) writes only a torn prefix and the process dies with \
     exit code 9 — the state a kill -9 mid-write leaves.  Equivalent to \
     HIRE_CRASH_AT.  Testing hook for the CI crash-recovery leg."
  in
  Arg.(value & opt (some string) None & info [ "crash-at" ] ~docv:"SEQ[:TEAR]" ~doc)

let scheduler =
  let doc = "Scheduler to run: " ^ String.concat ", " Schedulers.Registry.names ^ "." in
  Arg.(value & opt string "hire" & info [ "scheduler"; "s" ] ~docv:"NAME" ~doc)

let mu =
  let doc = "Target ratio of jobs requesting INC resources." in
  Arg.(value & opt float 1.0 & info [ "mu" ] ~docv:"RATIO" ~doc)

let k =
  let doc = "Fat-tree arity." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let horizon =
  let doc = "Trace length in simulated seconds." in
  Arg.(value & opt float 400.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc)

let seed =
  let doc = "Seed of the run (one journal = one cell; sweeps drive hire_sweep)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc)

let setup =
  let doc = "Switch capability setup: homogeneous or heterogeneous." in
  Arg.(value & opt string "homogeneous" & info [ "setup" ] ~docv:"SETUP" ~doc)

let util =
  let doc = "Offered CPU load of the generated trace." in
  Arg.(value & opt float 0.8 & info [ "util" ] ~docv:"FRACTION" ~doc)

let fraction =
  let doc = "Fraction of switches that are INC-capable." in
  Arg.(value & opt (some float) None & info [ "inc-capable" ] ~docv:"FRACTION" ~doc)

let faults_flag =
  let doc = "Enable deterministic fault injection (docs/FAULTS.md)." in
  Arg.(value & flag & info [ "faults" ] ~doc)

let mtbf =
  let doc = "Mean time between failures per node, simulated seconds (with $(b,--faults))." in
  Arg.(value & opt float 200.0 & info [ "mtbf" ] ~docv:"SECONDS" ~doc)

let mttr =
  let doc = "Mean time to repair per node, simulated seconds (with $(b,--faults))." in
  Arg.(value & opt float 30.0 & info [ "mttr" ] ~docv:"SECONDS" ~doc)

let max_retries =
  let doc = "Requeue attempts per killed task group before cancellation." in
  Arg.(value & opt int 3 & info [ "max-retries" ] ~docv:"N" ~doc)

let csv =
  let doc = "Write the final metric row to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let obs_summary =
  let doc =
    "Enable instrumentation and print the observability registry after the run \
     (includes the journal.* and server.* counters)."
  in
  Arg.(value & flag & info [ "obs-summary" ] ~doc)

let serve =
  let doc =
    "Run as the admission-API server (docs/SERVER.md): instead of replaying the \
     spec's trace to completion, listen on a socket for newline-delimited JSON \
     job submissions, journal each accepted one before acknowledging it \
     (WAL-before-ack), and hand batches to the scheduler every \
     $(b,--round-interval) seconds.  Combine with $(b,--horizon 0) so every job \
     comes through the wire, and with $(b,--recover) to resume a crashed server."
  in
  Arg.(value & flag & info [ "serve" ] ~doc)

let socket =
  let doc = "Unix-domain socket path (default: $(b,--state-dir)/server.sock)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp =
  let doc = "Listen on TCP $(docv) instead of a Unix-domain socket." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let round_interval =
  let doc =
    "Scheduling cadence of $(b,--serve), seconds: pending admissions are flushed \
     into the simulator as one batch every $(docv) of wall time, and consecutive \
     batches are spaced $(docv) apart in simulated time."
  in
  Arg.(value & opt float 1.0 & info [ "round-interval" ] ~docv:"SECONDS" ~doc)

let max_batch =
  let doc = "Flush early once $(docv) admissions are pending (with $(b,--serve))." in
  Arg.(value & opt int 64 & info [ "max-batch" ] ~docv:"N" ~doc)

let max_pending =
  let doc =
    "Backpressure bound of $(b,--serve): submissions beyond $(docv) pending are \
     rejected with $(i,queue_full) instead of being journaled."
  in
  Arg.(value & opt int 1024 & info [ "max-pending" ] ~docv:"N" ~doc)

let io_timeout =
  let doc =
    "Containment deadline of $(b,--serve), seconds: a connection that takes \
     longer than $(docv) to finish a started request line (slow-loris) or to \
     accept a queued reply (stalled reader) is closed and counted as \
     $(i,server.conn_timeouts)."
  in
  Arg.(value & opt float 30.0 & info [ "io-timeout" ] ~docv:"SECONDS" ~doc)

let cmd =
  let doc = "run one scheduling experiment under a crash-recoverable journal" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs one experiment cell with a write-ahead log underneath \
         (docs/JOURNAL.md): every scheduling decision is logged before it takes \
         effect, every round commit is fsynced, and full state checkpoints are \
         written periodically.  After a crash, $(b,--recover) lands back on the \
         uninterrupted run's state byte for byte and continues.";
      `S Manpage.s_exit_status;
      `P "9 on an armed $(b,--crash-at)/HIRE_CRASH_AT injected crash.";
    ]
  in
  Cmd.v
    (Cmd.info "hire_service" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ state_dir $ checkpoint_every $ recover $ crash_at $ scheduler $ mu $ k
      $ horizon $ seed $ setup $ util $ fraction $ faults_flag $ mtbf $ mttr $ max_retries
      $ csv $ obs_summary $ serve $ socket $ tcp $ round_interval $ max_batch
      $ max_pending $ io_timeout)

(* Error convention shared with hire_sim: one line on stderr, exit 1 —
   bad flags, unreadable state directories, and journal failures all
   land the same way, so scripts can branch on the exit code alone. *)
let () =
  try exit (Cmd.eval ~catch:false cmd) with
  | Journal.Chaos.Crashed seq ->
      Printf.eprintf "hire_service: injected crash at WAL seq %d\n" seq;
      exit 9
  | Journal.Error.Journal_error e ->
      Printf.eprintf "hire_service: %s\n" (Journal.Error.to_string e);
      exit 1
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "hire_service: %s%s: %s\n" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e);
      exit 1
  | Failure msg | Sys_error msg | Invalid_argument msg ->
      Printf.eprintf "hire_service: %s\n" msg;
      exit 1
