(* Parallel, resumable experiment-sweep CLI over lib/runner: enumerates
   the ⟨scheduler, μ, setup, seed⟩ cross product, executes each cell in
   an isolated worker process, caches results on disk keyed by the
   cell's content hash, and writes one CSV row per cell in deterministic
   enumeration order (identical whatever --jobs is).  Architecture and
   failure semantics: docs/RUNNER.md. *)

module Experiment = Harness.Experiment

let parse_setup = function
  | "homogeneous" | "homog" -> Sim.Cluster.Homogeneous
  | "heterogeneous" | "het" -> Sim.Cluster.Heterogeneous
  | other -> failwith (Printf.sprintf "unknown setup %S (homogeneous|heterogeneous)" other)

let parse_pool = function
  | "fork" -> Runner.Pool.Fork
  | "domain" | "domains" -> Runner.Pool.Domains
  | "inline" -> Runner.Pool.Inline
  | other -> failwith (Printf.sprintf "unknown pool mode %S (fork|domain|inline)" other)

let sweep jobs pool resume no_cache state_dir cache_dir timeout retries schedulers mus setups seeds k
    horizon util fraction faults_on mtbf mttr max_retries solver_budget solver_steps
    guard no_incremental no_reopt portfolio out quiet =
  List.iter
    (fun s ->
      if not (List.mem s Schedulers.Registry.names) then
        failwith
          (Printf.sprintf "unknown scheduler %S (known: %s)" s
             (String.concat ", " Schedulers.Registry.names)))
    schedulers;
  let setups = List.map parse_setup setups in
  let faults =
    if not faults_on then None
    else
      Some
        {
          Faults.plan =
            {
              Faults.Plan.default_config with
              server_mtbf = mtbf;
              switch_mtbf = mtbf;
              server_mttr = mttr;
              switch_mttr = mttr;
            };
          policy = Faults.Policy.create ~max_retries ();
        }
  in
  let resilience =
    if solver_budget = None && solver_steps = None && guard = 0 then None
    else
      let budget =
        if solver_budget = None && solver_steps = None then None
        else Some (Flow.Budget.make ?max_wall_s:solver_budget ?max_steps:solver_steps ())
      in
      Some (Hire.Hire_scheduler.resilience ?budget ~guard_every:guard ())
  in
  (* The in-round portfolio race reuses the resilience chain's
     accept/reject machinery, so --portfolio alone installs the default
     (unbounded, guard-free) policy. *)
  let resilience =
    if portfolio && resilience = None then Some (Hire.Hire_scheduler.resilience ())
    else resilience
  in
  let pool = parse_pool pool in
  if pool = Runner.Pool.Domains && Sys.getenv_opt "HIRE_CHAOS" <> None then
    failwith "--pool domain cannot run with HIRE_CHAOS set (chaos state is process-global)";
  let base =
    {
      Experiment.default with
      k;
      horizon;
      target_utilization = util;
      inc_capable_fraction = fraction;
      faults;
      resilience;
      incremental = not no_incremental;
      reopt = not no_reopt;
      portfolio;
    }
  in
  let specs = Experiment.sweep base ~schedulers ~mus ~setups ~seeds in
  (* One --state-dir convention (docs/RUNNER.md): the result cache lives
     in <state-dir>/cache unless --cache-dir overrides it, the same
     layout hire_service uses for its journal (<state-dir>/journal). *)
  let cache_dir =
    match cache_dir with Some d -> d | None -> Filename.concat state_dir "cache"
  in
  let cache = if no_cache then None else Some (Runner.Cache.create cache_dir) in
  let log line = if not quiet then Printf.eprintf "%s\n%!" line in
  Printf.printf "hire_sweep: %d cells (%d scheduler(s) x %d mu(s) x %d setup(s) x %d seed(s)), jobs=%d%s\n%!"
    (List.length specs) (List.length schedulers) (List.length mus) (List.length setups)
    (List.length seeds) jobs
    (match cache with
    | None -> ", cache disabled"
    | Some c ->
        Printf.sprintf ", cache %s (%s)" (Runner.Cache.dir c)
          (if resume then "resume" else "overwrite"));
  let outcomes, stats =
    Runner.run ~jobs ?timeout ~retries ?cache ~resume ~mode:pool ~key:Experiment.cell_key
      ~label:Experiment.describe ~log ~f:Experiment.run specs
  in
  let rows =
    List.concat
      (List.map2
         (fun (s : Experiment.spec) (o : _ Runner.outcome) ->
           match o.result with
           | Ok r ->
               [
                 Sim.Csv_export.row ~faults:faults_on ~resilience:(resilience <> None)
                   ~scheduler:s.scheduler ~mu:s.mu ~setup:s.setup ~seed:s.seed r;
               ]
           | Error _ -> [])
         specs outcomes)
  in
  Runner.Cache.ensure_dir (Filename.dirname out);
  Sim.Csv_export.write_file ~faults:faults_on ~resilience:(resilience <> None) out rows;
  Printf.printf "%s\n" (Format.asprintf "%a" Runner.pp_stats stats);
  Printf.printf "%d row(s) written to %s\n" (List.length rows) out;
  let failures =
    List.concat
      (List.map2
         (fun (s : Experiment.spec) (o : _ Runner.outcome) ->
           match o.result with
           | Ok _ -> []
           | Error reason -> [ (s, o.key, o.attempts, reason) ])
         specs outcomes)
  in
  List.iter
    (fun (s, key, attempts, reason) ->
      Printf.printf "FAILED cell %s (key %s) after %d attempt(s): %s\n" (Experiment.describe s)
        key attempts
        (Runner.Pool.reason_to_string reason))
    failures;
  if failures <> [] then exit 2

open Cmdliner

let jobs =
  let doc = "Concurrent workers (forked children, or domains with $(b,--pool) domain)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let pool =
  let doc =
    "Worker pool flavor (docs/PARALLELISM.md): $(b,fork) (default) runs each cell in an \
     isolated forked child with enforceable timeouts; $(b,domain) runs cells on a pool \
     of OCaml 5 domains inside this process — no fork/marshalling cost, but no \
     isolation, $(b,--timeout) is ignored, and HIRE_CHAOS is rejected; $(b,inline) \
     runs cells sequentially in-process."
  in
  Arg.(value & opt string "fork" & info [ "pool" ] ~docv:"MODE" ~doc)

let resume =
  let doc =
    "Reuse cached results: cells whose content hash is already in the cache directory \
     are loaded instead of recomputed, so an interrupted sweep completes from where it \
     died.  Without $(b,--resume) every cell is recomputed (and the cache refreshed)."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let no_cache =
  let doc = "Disable the on-disk result cache entirely." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let state_dir =
  let doc =
    "State directory (docs/RUNNER.md): the result cache lives in $(docv)/cache.  \
     Shared convention with $(b,hire_service), whose journal lives in \
     $(docv)/journal."
  in
  Arg.(value & opt string "results" & info [ "state-dir" ] ~docv:"DIR" ~doc)

let cache_dir =
  let doc = "Override the cache directory (default: $(b,--state-dir)/cache)." in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let timeout =
  let doc =
    "Per-cell wall-clock budget in seconds; a cell exceeding it is SIGKILLed, retried \
     up to $(b,--retries) times, then reported as a structured failure."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let retries =
  let doc = "Extra attempts for a cell that crashed or timed out." in
  Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)

let schedulers =
  let doc = "Schedulers to sweep: " ^ String.concat ", " Schedulers.Registry.names ^ "." in
  Arg.(value & opt (list string) [ "hire" ] & info [ "schedulers" ] ~docv:"NAMES" ~doc)

let mus =
  let doc = "INC-request ratios to sweep (the paper's sweep axis)." in
  Arg.(value & opt (list float) [ 0.05; 0.25; 0.5; 0.75; 1.0 ] & info [ "mus" ] ~docv:"RATIOS" ~doc)

let setups =
  let doc = "Switch capability setups to sweep: homogeneous, heterogeneous." in
  Arg.(value & opt (list string) [ "homogeneous" ] & info [ "setups" ] ~docv:"SETUPS" ~doc)

let seeds =
  let doc = "Seeds per cell (the paper uses three)." in
  Arg.(value & opt (list int) [ 1; 2; 3 ] & info [ "seeds" ] ~docv:"INTS" ~doc)

let k =
  let doc = "Fat-tree arity." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let horizon =
  let doc = "Trace length in simulated seconds." in
  Arg.(value & opt float 400.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc)

let util =
  let doc = "Offered CPU load of the generated trace." in
  Arg.(value & opt float 0.8 & info [ "util" ] ~docv:"FRACTION" ~doc)

let fraction =
  let doc = "Fraction of switches that are INC-capable." in
  Arg.(value & opt (some float) None & info [ "inc-capable" ] ~docv:"FRACTION" ~doc)

let faults_flag =
  let doc = "Inject seeded node failures in every cell (docs/FAULTS.md)." in
  Arg.(value & flag & info [ "faults" ] ~doc)

let mtbf =
  let doc = "Mean time between failures per node, simulated seconds (with $(b,--faults))." in
  Arg.(value & opt float 200.0 & info [ "mtbf" ] ~docv:"SECONDS" ~doc)

let mttr =
  let doc = "Mean time to repair per node, simulated seconds (with $(b,--faults))." in
  Arg.(value & opt float 30.0 & info [ "mttr" ] ~docv:"SECONDS" ~doc)

let max_retries =
  let doc = "Requeue attempts per failure-hit task group (with $(b,--faults))." in
  Arg.(value & opt int 3 & info [ "max-retries" ] ~docv:"N" ~doc)

let solver_budget =
  let doc =
    "Cap each MCMF solve at $(docv) of monotonic wall clock; exhausted solves degrade \
     along the resilience fallback chain (docs/RESILIENCE.md).  Changes the cells' \
     cache keys."
  in
  Arg.(value & opt (some float) None & info [ "solver-budget" ] ~docv:"SECONDS" ~doc)

let solver_steps =
  let doc = "Cap each MCMF solve at $(docv) solver steps." in
  Arg.(value & opt (some int) None & info [ "solver-steps" ] ~docv:"N" ~doc)

let guard =
  let doc =
    "Run the runtime invariant guard on every $(docv)-th solve (0 disables it)."
  in
  Arg.(value & opt int 0 & info [ "guard" ] ~docv:"N" ~doc)

let no_incremental =
  let doc =
    "Disable incremental flow-network maintenance in every cell: rebuild the whole \
     network and reallocate solver buffers each round instead of patching a persistent \
     one.  Results are bit-identical either way (docs/PERFORMANCE.md), but the flag \
     changes the cells' cache keys."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_reopt =
  let doc =
    "Disable the re-optimizing solve path in every cell: full arena flow sweep \
     between rounds instead of the sparse touched-arc reset.  Results are \
     bit-identical either way (docs/PERFORMANCE.md), but the flag changes the \
     cells' cache keys.  No effect with $(b,--no-incremental)."
  in
  Arg.(value & flag & info [ "no-reopt" ] ~doc)

let portfolio =
  let doc =
    "Race both MCMF backends on OCaml 5 domains inside every HIRE scheduling round \
     (docs/PARALLELISM.md).  Placements and deterministic report fields are identical \
     to the serial chain; raced cells get their own cache keys.  Implies a default \
     resilience policy when none is configured."
  in
  Arg.(value & flag & info [ "portfolio" ] ~doc)

let out =
  let doc = "CSV output file (one row per cell, enumeration order)." in
  Arg.(value & opt string (Filename.concat "results" "sweep_results.csv")
       & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-cell progress lines.")

let cmd =
  let doc = "run an experiment sweep in parallel with crash recovery" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Enumerates the ⟨scheduler, mu, setup, seed⟩ cross product and executes every \
         cell in an isolated forked worker ($(b,--jobs) of them in parallel).  Results \
         are cached on disk keyed by a content hash of the cell config, so \
         $(b,--resume) completes an interrupted sweep without recomputing finished \
         cells; a crashing or hanging cell is retried and then reported without \
         aborting the rest.  Output tables are byte-identical for any $(b,--jobs).  \
         See docs/RUNNER.md.";
      `S Manpage.s_exit_status;
      `P "0 on success, 1 on usage errors, 2 if any cell ultimately failed.";
    ]
  in
  Cmd.v
    (Cmd.info "hire_sweep" ~version:"1.0" ~doc ~man)
    Term.(
      const sweep $ jobs $ pool $ resume $ no_cache $ state_dir $ cache_dir $ timeout $ retries
      $ schedulers $ mus $ setups $ seeds $ k $ horizon $ util $ fraction $ faults_flag
      $ mtbf $ mttr $ max_retries $ solver_budget $ solver_steps $ guard $ no_incremental
      $ no_reopt $ portfolio $ out $ quiet)

(* [~catch:false] so bad arguments surface as our one-line error + exit 1
   instead of cmdliner's "internal error" backtrace. *)
let () =
  try exit (Cmd.eval ~catch:false cmd)
  with Failure msg | Sys_error msg | Invalid_argument msg ->
    Printf.eprintf "hire_sweep: %s\n" msg;
    exit 1
