(* Command-line runner for a single experiment cell of the paper's sweep
   (one ⟨scheduler, μ, switch setup⟩ on a fat-tree cluster), mirroring
   the artifact's runner tool.  Prints the metric summary the figures are
   built from; see bench/main.ml for the full sweep. *)

let run scheduler mu k horizon seeds setup util fraction faults_on mtbf mttr max_retries
    solver_budget solver_steps guard no_incremental no_reopt portfolio jobs verbose csv
    trace obs_summary journal checkpoint_every =
  if trace <> None || obs_summary then Obs.set_enabled true;
  (match trace with
  | Some path -> (
      try Obs.Trace.open_jsonl path
      with Sys_error msg ->
        Printf.eprintf "hire_sim: cannot open trace file: %s\n" msg;
        exit 1)
  | None -> ());
  let setup =
    match setup with
    | "homogeneous" | "homog" -> Sim.Cluster.Homogeneous
    | "heterogeneous" | "het" -> Sim.Cluster.Heterogeneous
    | other -> failwith (Printf.sprintf "unknown setup %S (homogeneous|heterogeneous)" other)
  in
  if not (List.mem scheduler Schedulers.Registry.names) then
    failwith
      (Printf.sprintf "unknown scheduler %S (known: %s)" scheduler
         (String.concat ", " Schedulers.Registry.names));
  let faults =
    if not faults_on then None
    else
      Some
        {
          Faults.plan =
            {
              Faults.Plan.default_config with
              server_mtbf = mtbf;
              switch_mtbf = mtbf;
              server_mttr = mttr;
              switch_mttr = mttr;
            };
          policy = Faults.Policy.create ~max_retries ();
        }
  in
  let resilience =
    if solver_budget = None && solver_steps = None && guard = 0 then None
    else
      let budget =
        if solver_budget = None && solver_steps = None then None
        else Some (Flow.Budget.make ?max_wall_s:solver_budget ?max_steps:solver_steps ())
      in
      Some (Hire.Hire_scheduler.resilience ?budget ~guard_every:guard ())
  in
  (* The portfolio race reuses the resilience chain's accept/reject
     machinery, so --portfolio alone installs the default (unbounded,
     guard-free) policy. *)
  let resilience =
    if portfolio && resilience = None then Some (Hire.Hire_scheduler.resilience ())
    else resilience
  in
  let spec =
    {
      Harness.Experiment.scheduler;
      mu;
      setup;
      k;
      horizon;
      seed = 1;
      target_utilization = util;
      inc_capable_fraction = fraction;
      faults;
      resilience;
      incremental = not no_incremental;
      reopt = not no_reopt;
      portfolio;
    }
  in
  Printf.printf "scheduler=%s mu=%.2f k=%d horizon=%.0fs setup=%s util=%.2f seeds=[%s]\n%!"
    scheduler mu k horizon
    (Sim.Cluster.inc_setup_to_string setup)
    util
    (String.concat ";" (List.map string_of_int seeds));
  if faults_on then
    Printf.printf "faults: mtbf=%.0fs mttr=%.0fs max-retries=%d\n%!" mtbf mttr max_retries;
  (match resilience with
  | None -> ()
  | Some r ->
      Printf.printf "resilience: budget=%s guard-every=%d\n%!"
        (match r.Hire.Hire_scheduler.budget with
        | None -> "none"
        | Some b -> Format.asprintf "%a" Flow.Budget.pp b)
        r.Hire.Hire_scheduler.guard_every);
  if portfolio then
    Printf.printf "portfolio: racing ssp + cost-scaling on OCaml 5 domains per round\n%!";
  let reports =
    let instrumented = trace <> None || obs_summary in
    match journal with
    | Some state_dir ->
        (* Journaled runs are single-seed — one journal directory holds
           one run — and deterministic-wall, so a crash/recovery replay
           re-derives every WAL record byte for byte (docs/JOURNAL.md).
           Layout follows the --state-dir convention: the WAL lives in
           <state-dir>/journal; recovery is bin/hire_service --recover. *)
        List.map
          (fun seed ->
            let spec = { spec with seed } in
            let config =
              { Sim.Simulator.default_config with deterministic_wall = true }
            in
            let service =
              Sim.Service.start
                ~dir:(Filename.concat state_dir "journal")
                ~checkpoint_every
                ~header:(Harness.Experiment.spec_to_blob spec)
                (Harness.Experiment.prepare ~config spec)
            in
            (Sim.Service.run service).Sim.Simulator.report)
          (match seeds with
          | [ _ ] -> seeds
          | _ -> failwith "--journal runs exactly one seed (pass --seeds N)")
    | None ->
    if jobs <= 1 || List.length seeds <= 1 then Harness.Experiment.run_seeds spec seeds
    else if instrumented then begin
      (* Instrumentation (obs registry, trace ring) is process-global;
         seed-level domain parallelism would interleave it. *)
      Printf.eprintf
        "hire_sim: --jobs ignored with --trace/--obs-summary (instrumentation is \
         process-global)\n\
         %!";
      Harness.Experiment.run_seeds spec seeds
    end
    else
      Runner.Pool.map ~jobs ~retries:0 ~mode:Runner.Pool.Domains
        ~label:(fun seed -> Printf.sprintf "seed %d" seed)
        ~f:(fun seed -> Harness.Experiment.run { spec with seed })
        seeds
      |> List.map (fun (c : _ Runner.Pool.cell) ->
             match c.result with
             | Ok r -> r
             | Error reason -> failwith (Runner.Pool.reason_to_string reason))
  in
  List.iteri
    (fun i r ->
      Printf.printf "seed %d: %s\n" (List.nth seeds i)
        (Format.asprintf "%a" Sim.Metrics.pp_report r);
      if verbose then begin
        let lats = r.Sim.Metrics.placement_latency in
        if Obs.Histogram.count lats > 0 then begin
          Printf.printf "  placement latency: ";
          List.iter
            (fun q -> Printf.printf "p%.0f=%.3fs " (100.0 *. q) (Obs.Histogram.quantile lats q))
            [ 0.5; 0.9; 0.99 ];
          print_newline ()
        end;
        let solver = r.Sim.Metrics.solver_wall in
        if Obs.Histogram.count solver > 0 then
          Printf.printf "  solver: %d solves, median %.3f ms\n" (Obs.Histogram.count solver)
            (1000.0 *. Obs.Histogram.quantile solver 0.5)
      end)
    reports;
  (if resilience <> None then
     let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
     Printf.printf
       "resilience totals: degraded-rounds=%d fallback-rounds=%d max-depth=%d \
        guard-trips=%d salvaged=%d\n"
       (sum (fun r -> r.Sim.Metrics.degraded_rounds))
       (sum (fun r -> r.Sim.Metrics.fallback_rounds))
       (List.fold_left (fun acc r -> max acc r.Sim.Metrics.fallback_depth_max) 0 reports)
       (sum (fun r -> r.Sim.Metrics.guard_trips))
       (sum (fun r -> r.Sim.Metrics.salvaged_tasks)));
  let resilience_on = resilience <> None in
  (match csv with
  | None -> ()
  | Some path ->
      let rows =
        List.map2
          (fun seed r ->
            Sim.Csv_export.row ~faults:faults_on ~resilience:resilience_on ~scheduler ~mu
              ~setup ~seed r)
          seeds reports
      in
      Sim.Csv_export.write_file ~faults:faults_on ~resilience:resilience_on path rows;
      Printf.printf "per-seed rows written to %s\n" path);
  let mean f = Harness.Experiment.mean_over f reports in
  Printf.printf
    "mean over %d seed(s): satisfied-INC=%.3f unserved-INC-TGs=%.3f detour=%.3f\n"
    (List.length reports)
    (mean Sim.Metrics.inc_satisfaction_ratio)
    (mean Sim.Metrics.inc_tg_unserved_ratio)
    (mean (fun r -> r.Sim.Metrics.detour_mean));
  if obs_summary then begin
    Printf.printf "--- observability summary ---\n%!";
    Format.printf "%a%!" Obs.Registry.pp_summary ()
  end;
  (match trace with
  | Some path ->
      Obs.Trace.close_jsonl ();
      Printf.printf "trace written to %s (%d records retained in ring)\n" path
        (Obs.Trace.length ())
  | None -> ())

open Cmdliner

let scheduler =
  let doc =
    "Scheduler to run: " ^ String.concat ", " Schedulers.Registry.names ^ "."
  in
  Arg.(value & opt string "hire" & info [ "scheduler"; "s" ] ~docv:"NAME" ~doc)

let mu =
  let doc = "Target ratio of jobs requesting INC resources (the paper's sweep axis)." in
  Arg.(value & opt float 1.0 & info [ "mu" ] ~docv:"RATIO" ~doc)

let k =
  let doc = "Fat-tree arity (k=26 is the paper's 4394-server testbed)." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let horizon =
  let doc = "Trace length in simulated seconds." in
  Arg.(value & opt float 400.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc)

let seeds =
  let doc = "Seeds to run (the paper uses three per cell)." in
  Arg.(value & opt (list int) [ 1; 2; 3 ] & info [ "seeds" ] ~docv:"INTS" ~doc)

let setup =
  let doc = "Switch capability setup: homogeneous or heterogeneous (2 services/switch)." in
  Arg.(value & opt string "homogeneous" & info [ "setup" ] ~docv:"SETUP" ~doc)

let util =
  let doc = "Offered CPU load of the generated trace." in
  Arg.(value & opt float 0.8 & info [ "util" ] ~docv:"FRACTION" ~doc)

let fraction =
  let doc =
    "Fraction of switches that are INC-capable (default: k/26, keeping the paper's \
     servers-per-INC-switch ratio)."
  in
  Arg.(value & opt (some float) None & info [ "inc-capable" ] ~docv:"FRACTION" ~doc)

let faults_flag =
  let doc =
    "Enable deterministic fault injection: servers and switches fail and recover \
     following seeded exponential MTBF/MTTR draws; killed task groups are requeued \
     with exponential backoff.  Fault model and metrics: docs/FAULTS.md."
  in
  Arg.(value & flag & info [ "faults" ] ~doc)

let mtbf =
  let doc = "Mean time between failures per node, simulated seconds (with $(b,--faults))." in
  Arg.(value & opt float 200.0 & info [ "mtbf" ] ~docv:"SECONDS" ~doc)

let mttr =
  let doc = "Mean time to repair per node, simulated seconds (with $(b,--faults))." in
  Arg.(value & opt float 30.0 & info [ "mttr" ] ~docv:"SECONDS" ~doc)

let max_retries =
  let doc =
    "Requeue attempts per task group hit by a failure before it is cancelled (with \
     $(b,--faults))."
  in
  Arg.(value & opt int 3 & info [ "max-retries" ] ~docv:"N" ~doc)

let solver_budget =
  let doc =
    "Cap each MCMF solve at $(docv) of monotonic wall clock.  An exhausted solve \
     degrades gracefully: partial SSP flow is salvaged, and the round falls back \
     along the solver chain down to a greedy placer (docs/RESILIENCE.md).  Only \
     meaningful for flow-based schedulers."
  in
  Arg.(value & opt (some float) None & info [ "solver-budget" ] ~docv:"SECONDS" ~doc)

let solver_steps =
  let doc =
    "Cap each MCMF solve at $(docv) solver steps (SSP augmentations; cost-scaling \
     pushes+relabels), composable with $(b,--solver-budget)."
  in
  Arg.(value & opt (some int) None & info [ "solver-steps" ] ~docv:"N" ~doc)

let guard =
  let doc =
    "Run the runtime invariant guard on every $(docv)-th solve: re-verify the live \
     flow from first principles and cross-check extracted placements against the \
     capacity ledgers; a violation quarantines the solution and re-runs the round on \
     the next solver backend.  0 disables the guard."
  in
  Arg.(value & opt int 0 & info [ "guard" ] ~docv:"N" ~doc)

let no_incremental =
  let doc =
    "Disable incremental flow-network maintenance: rebuild the whole network and \
     reallocate solver buffers every round instead of patching a persistent one.  \
     Results are bit-identical either way (docs/PERFORMANCE.md); this is the \
     verification escape hatch and slow path."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_reopt =
  let doc =
    "Disable the re-optimizing solve path: undo the previous round's flow with a \
     full arena sweep instead of the sparse touched-arc reset, and skip flow \
     tracking.  Results are bit-identical either way (docs/PERFORMANCE.md); this \
     is the measurement escape hatch.  No effect with $(b,--no-incremental)."
  in
  Arg.(value & flag & info [ "no-reopt" ] ~doc)

let portfolio =
  let doc =
    "Race both MCMF backends (SSP and cost scaling) on OCaml 5 domains inside every \
     scheduling round instead of trying them sequentially (docs/PARALLELISM.md).  \
     Placements and ledgers are identical to the serial chain; only round latency \
     changes.  Implies a default resilience policy when none is configured.  Only \
     meaningful for flow-based schedulers."
  in
  Arg.(value & flag & info [ "portfolio" ] ~doc)

let jobs =
  let doc =
    "Run up to $(docv) seeds concurrently on OCaml 5 domains (docs/PARALLELISM.md).  \
     Reports are still printed in seed order.  Ignored with $(b,--trace) or \
     $(b,--obs-summary), whose instrumentation is process-global, and not supported \
     together with HIRE_CHAOS."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-seed latency and solver stats.")

let csv =
  let doc = "Also write per-seed metric rows to $(docv) (the artifact's stats-file spirit)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let trace =
  let doc =
    "Enable instrumentation and stream structured trace events (JSONL, one object per \
     line) to $(docv).  Schema and event inventory: docs/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let obs_summary =
  let doc =
    "Enable instrumentation and print every counter, gauge, and histogram of the \
     observability registry after the run."
  in
  Arg.(value & flag & info [ "obs-summary" ] ~doc)

let journal =
  let doc =
    "Journal the run under state directory $(docv) (WAL in $(docv)/journal, \
     docs/JOURNAL.md): every scheduling decision is write-ahead logged and every \
     round commit fsynced, so a crashed run resumes with $(b,hire_service \
     --recover --state-dir) $(docv).  Single-seed only; implies deterministic \
     solver wall times in the report."
  in
  Arg.(value & opt (some string) None & info [ "journal"; "state-dir" ] ~docv:"DIR" ~doc)

let checkpoint_every =
  let doc =
    "With $(b,--journal): write a full state checkpoint every $(docv) rounds (0 \
     disables checkpoints; recovery then replays from genesis)."
  in
  Arg.(value & opt int 250 & info [ "checkpoint-every" ] ~docv:"ROUNDS" ~doc)

let cmd =
  let doc = "run one HIRE-reproduction scheduling experiment" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays a synthetic Alibaba-like trace against a fat-tree cluster with \
         INC-capable switches and reports the paper's metrics (satisfied INC jobs, \
         unallocated INC task groups, switch detours, switch load, placement latency). \
         See bench/main.exe for the full figure sweep.";
    ]
  in
  Cmd.v
    (Cmd.info "hire_sim" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ scheduler $ mu $ k $ horizon $ seeds $ setup $ util $ fraction
      $ faults_flag $ mtbf $ mttr $ max_retries $ solver_budget $ solver_steps $ guard
      $ no_incremental $ no_reopt $ portfolio $ jobs $ verbose $ csv $ trace
      $ obs_summary $ journal $ checkpoint_every)

(* [~catch:false] so bad flag values (unknown scheduler/setup) and
   unreadable/unwritable files exit 1 with a one-line error instead of
   cmdliner's "internal error" backtrace. *)
let () =
  try exit (Cmd.eval ~catch:false cmd)
  with Failure msg | Sys_error msg | Invalid_argument msg ->
    Printf.eprintf "hire_sim: %s\n" msg;
    exit 1
