(* Command-line client for the admission-API server (docs/SERVER.md).
   Connects over the Unix-domain (or TCP) socket, speaks one JSON
   request per line, prints each response line to stdout.  Exit status
   1 on a transport failure or any ["ok": false] response — scripts
   (make check, the CI server leg) branch on it.

   Every socket operation is deadline-bounded (--connect-timeout,
   --io-timeout): a stalled or dead server surfaces as a one-line
   ETIMEDOUT on stderr instead of a hang.  With --retries N, transport
   failures and retriable "degraded" responses (docs/FAILPOINTS.md) are
   retried up to N times under jittered exponential backoff, resending
   the same request line — safe for submissions exactly when they carry
   idempotency keys (--client-prefix), which the server dedups. *)

let resolve_addr socket tcp =
  match tcp with
  | Some hostport -> (
      match String.index_opt hostport ':' with
      | None -> failwith "expected HOST:PORT for --tcp"
      | Some i ->
          let host = String.sub hostport 0 i in
          let port =
            match
              int_of_string_opt
                (String.sub hostport (i + 1) (String.length hostport - i - 1))
            with
            | Some p -> p
            | None -> failwith "expected HOST:PORT for --tcp"
          in
          Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  | None -> Unix.ADDR_UNIX socket

(* Readiness gate: every read/write waits here first so no syscall can
   block past the deadline. *)
let wait_fd fd ~read ~timeout ~op =
  let rd, wr = if read then ([ fd ], []) else ([], [ fd ]) in
  match Unix.select rd wr [] timeout with
  | [], [], [] -> raise (Unix.Unix_error (Unix.ETIMEDOUT, op, ""))
  | _ -> ()

(* Non-blocking connect + select so a dead TCP peer (or a full Unix
   socket backlog) times out instead of hanging in the syscall. *)
let connect_with_timeout addr ~timeout =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try
     (match Unix.connect fd addr with
     | () -> ()
     | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
       -> (
         (match Unix.select [] [ fd ] [] timeout with
         | [], [], [] -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
         | _ -> ());
         match Unix.getsockopt_error fd with
         | None -> ()
         | Some e -> raise (Unix.Unix_error (e, "connect", ""))));
     Unix.clear_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

type session = {
  mutable fd : Unix.file_descr;
  buf : Buffer.t;
  addr : Unix.sockaddr;
  connect_timeout : float;
  io_timeout : float;
  retries : int;
  rng : Prelude.Rng.t;  (* backoff jitter *)
}

let session_connect s = s.fd <- connect_with_timeout s.addr ~timeout:s.connect_timeout

(* Deadline-bounded line-oriented transport: one request out, one
   response in. *)
let send_line s line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec write off =
    if off < len then begin
      wait_fd s.fd ~read:false ~timeout:s.io_timeout ~op:"write";
      write (off + Unix.write_substring s.fd data off (len - off))
    end
  in
  write 0

let recv_line s =
  let chunk = Bytes.create 4096 in
  let rec read () =
    match String.index_opt (Buffer.contents s.buf) '\n' with
    | Some i ->
        let all = Buffer.contents s.buf in
        let line = String.sub all 0 i in
        Buffer.clear s.buf;
        Buffer.add_substring s.buf all (i + 1) (String.length all - i - 1);
        line
    | None ->
        wait_fd s.fd ~read:true ~timeout:s.io_timeout ~op:"read";
        let n = Unix.read s.fd chunk 0 4096 in
        if n = 0 then failwith "server closed the connection";
        Buffer.add_subbytes s.buf chunk 0 n;
        read ()
  in
  read ()

let backoff_sleep s k =
  let d =
    Float.min 2.0 (0.2 *. (2.0 ** float_of_int k))
    *. (0.5 +. Prelude.Rng.float s.rng 1.0)
  in
  Unix.sleepf d

let retriable resp =
  match Server.Json.parse resp with
  | Ok v -> Server.Json.member "retriable" v = Some (Server.Json.Bool true)
  | Error _ -> false

(* One request, up to [retries] re-sends; returns false when the final
   response said ["ok": false].  A transport failure reconnects before
   the retry; a retriable "degraded" response just backs off — both
   resend the identical line, so idempotency keys make submissions
   converge on their original admission id. *)
let roundtrip s line =
  let rec attempt k =
    match
      send_line s line;
      recv_line s
    with
    | resp ->
        print_endline resp;
        if retriable resp && k < s.retries then begin
          backoff_sleep s k;
          attempt (k + 1)
        end
        else begin
          match Server.Json.parse resp with
          | Ok v -> Server.Json.member "ok" v = Some (Server.Json.Bool true)
          | Error _ -> false
        end
    | exception ((Unix.Unix_error _ | Failure _) as e) ->
        if k >= s.retries then raise e;
        (try Unix.close s.fd with Unix.Unix_error _ -> ());
        Buffer.clear s.buf;
        backoff_sleep s k;
        session_connect s;
        attempt (k + 1)
  in
  attempt 0

(* Synthetic submissions, deterministic from the seed: small jobs in
   the trace generator's shape so the server-side translation exercises
   the same paths as a real trace. *)
let synth_spec rng inc client_prefix i =
  let n_groups = Prelude.Rng.int_in rng 1 3 in
  let groups =
    List.init n_groups (fun g ->
        {
          Workload.Job.tg_index = g;
          count = Prelude.Rng.int_in rng 1 8;
          cpu = Prelude.Rng.float_in rng 0.5 4.0;
          mem = Prelude.Rng.float_in rng 0.5 4.0;
          duration = Prelude.Rng.float_in rng 1.0 20.0;
        })
  in
  let priority =
    if Prelude.Rng.bernoulli rng 0.3 then Workload.Job.Service
    else Workload.Job.Batch
  in
  let inc =
    match inc with
    | "none" -> Server.Protocol.No_inc
    | "auto" -> Server.Protocol.Auto
    | s -> Server.Protocol.Service s
  in
  let client_id =
    match client_prefix with
    | None -> None
    | Some p -> Some (Printf.sprintf "%s-%d" p i)
  in
  { Server.Protocol.priority; groups; inc; client_id }

let run socket tcp submit seed inc client_prefix status stats drain shutdown raw
    connect_timeout io_timeout retries =
  let s =
    {
      fd = Unix.stdin;
      buf = Buffer.create 256;
      addr = resolve_addr socket tcp;
      connect_timeout;
      io_timeout;
      retries;
      rng = Prelude.Rng.create (seed lxor 0xbac0ff);
    }
  in
  session_connect s;
  let ok = ref true in
  let step line = if not (roundtrip s line) then ok := false in
  let rng = Prelude.Rng.create seed in
  for i = 0 to submit - 1 do
    step (Server.Protocol.render_submit (synth_spec rng inc client_prefix i))
  done;
  (match status with
  | None -> ()
  | Some id ->
      step
        (Server.Json.to_string
           (Server.Json.Obj
              [ ("op", Server.Json.Str "status"); ("id", Server.Json.Num (float_of_int id)) ])));
  if stats then
    step (Server.Json.to_string (Server.Json.Obj [ ("op", Server.Json.Str "stats") ]));
  List.iter step raw;
  if drain then
    step (Server.Json.to_string (Server.Json.Obj [ ("op", Server.Json.Str "drain") ]));
  if shutdown then
    step
      (Server.Json.to_string (Server.Json.Obj [ ("op", Server.Json.Str "shutdown") ]));
  Unix.close s.fd;
  if not !ok then exit 1

open Cmdliner

let socket =
  let doc = "Unix-domain socket path of the server (its default is <state-dir>/server.sock)." in
  Arg.(value & opt string (Filename.concat (Filename.concat "results" "service") "server.sock")
       & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp =
  let doc = "Connect over TCP instead of the Unix-domain socket." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let submit =
  let doc = "Submit $(docv) synthetic jobs (deterministic from --seed)." in
  Arg.(value & opt int 0 & info [ "submit" ] ~docv:"N" ~doc)

let seed =
  let doc = "Seed of the synthetic submission stream." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc)

let inc =
  let doc =
    "INC request of synthetic submissions: $(b,none), $(b,auto), or a CompStore \
     service name (e.g. netcache)."
  in
  Arg.(value & opt string "none" & info [ "inc" ] ~docv:"MODE" ~doc)

let client_prefix =
  let doc =
    "Attach idempotency keys $(docv)-0, $(docv)-1, … to the synthetic \
     submissions; resubmitting with the same prefix is deduplicated by the \
     server."
  in
  Arg.(value & opt (some string) None & info [ "client-prefix" ] ~docv:"PREFIX" ~doc)

let status =
  let doc = "Query the status of admission $(docv)." in
  Arg.(value & opt (some int) None & info [ "status" ] ~docv:"ID" ~doc)

let stats =
  let doc = "Query server statistics." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let drain =
  let doc = "Flush pending admissions into the scheduler and run to quiescence." in
  Arg.(value & flag & info [ "drain" ] ~doc)

let shutdown =
  let doc = "Ask the server to shut down (flushes pending work, closes the journal)." in
  Arg.(value & flag & info [ "shutdown" ] ~doc)

let raw =
  let doc = "Send $(docv) verbatim as one request line (repeatable)." in
  Arg.(value & opt_all string [] & info [ "raw" ] ~docv:"LINE" ~doc)

let connect_timeout =
  let doc = "Seconds to wait for the connection to establish." in
  Arg.(value & opt float 5.0 & info [ "connect-timeout" ] ~docv:"SECONDS" ~doc)

let io_timeout =
  let doc = "Seconds to wait for each read/write against the server." in
  Arg.(value & opt float 10.0 & info [ "io-timeout" ] ~docv:"SECONDS" ~doc)

let retries =
  let doc =
    "Retry transport failures and retriable (degraded-server) responses up to \
     $(docv) times with jittered exponential backoff, resending the same line. \
     Give submissions idempotency keys (--client-prefix) so retries cannot \
     double-admit."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let cmd =
  let doc = "submit jobs to a running admission server" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Drives the newline-delimited JSON admission API of $(b,hire_service \
         --serve) (docs/SERVER.md).  Operations run in order: submissions, \
         --status, --stats, --raw lines, --drain, --shutdown.";
      `S Manpage.s_exit_status;
      `P "1 when the transport fails or any response carries ok=false.";
    ]
  in
  Cmd.v
    (Cmd.info "hire_client" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ socket $ tcp $ submit $ seed $ inc $ client_prefix $ status $ stats
      $ drain $ shutdown $ raw $ connect_timeout $ io_timeout $ retries)

let () =
  try exit (Cmd.eval ~catch:false cmd) with
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "hire_client: %s%s: %s\n" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e);
      exit 1
  | Failure msg | Sys_error msg | Invalid_argument msg ->
      Printf.eprintf "hire_client: %s\n" msg;
      exit 1
