(* Command-line client for the admission-API server (docs/SERVER.md).
   Connects over the Unix-domain (or TCP) socket, speaks one JSON
   request per line, prints each response line to stdout.  Exit status
   1 on a transport failure or any ["ok": false] response — scripts
   (make check, the CI server leg) branch on it. *)

let connect socket tcp =
  match tcp with
  | Some hostport -> (
      match String.index_opt hostport ':' with
      | None -> failwith "expected HOST:PORT for --tcp"
      | Some i ->
          let host = String.sub hostport 0 i in
          let port =
            match
              int_of_string_opt
                (String.sub hostport (i + 1) (String.length hostport - i - 1))
            with
            | Some p -> p
            | None -> failwith "expected HOST:PORT for --tcp"
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
          fd)
  | None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      fd

(* Blocking line-oriented transport: one request out, one response in. *)
let send_line fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec write off =
    if off < len then write (off + Unix.write_substring fd data off (len - off))
  in
  write 0

let recv_line fd buf =
  let chunk = Bytes.create 4096 in
  let rec read () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
        let all = Buffer.contents buf in
        let line = String.sub all 0 i in
        Buffer.clear buf;
        Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
        line
    | None ->
        let n = Unix.read fd chunk 0 4096 in
        if n = 0 then failwith "server closed the connection";
        Buffer.add_subbytes buf chunk 0 n;
        read ()
  in
  read ()

(* One round trip; returns false when the server said ["ok": false]. *)
let roundtrip fd buf line =
  send_line fd line;
  let resp = recv_line fd buf in
  print_endline resp;
  match Server.Json.parse resp with
  | Ok v -> Server.Json.member "ok" v = Some (Server.Json.Bool true)
  | Error _ -> false

(* Synthetic submissions, deterministic from the seed: small jobs in
   the trace generator's shape so the server-side translation exercises
   the same paths as a real trace. *)
let synth_spec rng inc client_prefix i =
  let n_groups = Prelude.Rng.int_in rng 1 3 in
  let groups =
    List.init n_groups (fun g ->
        {
          Workload.Job.tg_index = g;
          count = Prelude.Rng.int_in rng 1 8;
          cpu = Prelude.Rng.float_in rng 0.5 4.0;
          mem = Prelude.Rng.float_in rng 0.5 4.0;
          duration = Prelude.Rng.float_in rng 1.0 20.0;
        })
  in
  let priority =
    if Prelude.Rng.bernoulli rng 0.3 then Workload.Job.Service
    else Workload.Job.Batch
  in
  let inc =
    match inc with
    | "none" -> Server.Protocol.No_inc
    | "auto" -> Server.Protocol.Auto
    | s -> Server.Protocol.Service s
  in
  let client_id =
    match client_prefix with
    | None -> None
    | Some p -> Some (Printf.sprintf "%s-%d" p i)
  in
  { Server.Protocol.priority; groups; inc; client_id }

let run socket tcp submit seed inc client_prefix status stats drain shutdown raw =
  let fd = connect socket tcp in
  let buf = Buffer.create 256 in
  let ok = ref true in
  let step line = if not (roundtrip fd buf line) then ok := false in
  let rng = Prelude.Rng.create seed in
  for i = 0 to submit - 1 do
    step (Server.Protocol.render_submit (synth_spec rng inc client_prefix i))
  done;
  (match status with
  | None -> ()
  | Some id ->
      step
        (Server.Json.to_string
           (Server.Json.Obj
              [ ("op", Server.Json.Str "status"); ("id", Server.Json.Num (float_of_int id)) ])));
  if stats then
    step (Server.Json.to_string (Server.Json.Obj [ ("op", Server.Json.Str "stats") ]));
  List.iter step raw;
  if drain then
    step (Server.Json.to_string (Server.Json.Obj [ ("op", Server.Json.Str "drain") ]));
  if shutdown then
    step
      (Server.Json.to_string (Server.Json.Obj [ ("op", Server.Json.Str "shutdown") ]));
  Unix.close fd;
  if not !ok then exit 1

open Cmdliner

let socket =
  let doc = "Unix-domain socket path of the server (its default is <state-dir>/server.sock)." in
  Arg.(value & opt string (Filename.concat (Filename.concat "results" "service") "server.sock")
       & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp =
  let doc = "Connect over TCP instead of the Unix-domain socket." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let submit =
  let doc = "Submit $(docv) synthetic jobs (deterministic from --seed)." in
  Arg.(value & opt int 0 & info [ "submit" ] ~docv:"N" ~doc)

let seed =
  let doc = "Seed of the synthetic submission stream." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc)

let inc =
  let doc =
    "INC request of synthetic submissions: $(b,none), $(b,auto), or a CompStore \
     service name (e.g. netcache)."
  in
  Arg.(value & opt string "none" & info [ "inc" ] ~docv:"MODE" ~doc)

let client_prefix =
  let doc =
    "Attach idempotency keys $(docv)-0, $(docv)-1, … to the synthetic \
     submissions; resubmitting with the same prefix is deduplicated by the \
     server."
  in
  Arg.(value & opt (some string) None & info [ "client-prefix" ] ~docv:"PREFIX" ~doc)

let status =
  let doc = "Query the status of admission $(docv)." in
  Arg.(value & opt (some int) None & info [ "status" ] ~docv:"ID" ~doc)

let stats =
  let doc = "Query server statistics." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let drain =
  let doc = "Flush pending admissions into the scheduler and run to quiescence." in
  Arg.(value & flag & info [ "drain" ] ~doc)

let shutdown =
  let doc = "Ask the server to shut down (flushes pending work, closes the journal)." in
  Arg.(value & flag & info [ "shutdown" ] ~doc)

let raw =
  let doc = "Send $(docv) verbatim as one request line (repeatable)." in
  Arg.(value & opt_all string [] & info [ "raw" ] ~docv:"LINE" ~doc)

let cmd =
  let doc = "submit jobs to a running admission server" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Drives the newline-delimited JSON admission API of $(b,hire_service \
         --serve) (docs/SERVER.md).  Operations run in order: submissions, \
         --status, --stats, --raw lines, --drain, --shutdown.";
      `S Manpage.s_exit_status;
      `P "1 when the transport fails or any response carries ok=false.";
    ]
  in
  Cmd.v
    (Cmd.info "hire_client" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ socket $ tcp $ submit $ seed $ inc $ client_prefix $ status $ stats
      $ drain $ shutdown $ raw)

let () =
  try exit (Cmd.eval ~catch:false cmd) with
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "hire_client: %s%s: %s\n" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e);
      exit 1
  | Failure msg | Sys_error msg | Invalid_argument msg ->
      Printf.eprintf "hire_client: %s\n" msg;
      exit 1
