(* Journal-overhead and crash-recovery benchmark (docs/JOURNAL.md):
   runs the same experiment cell plain and under the write-ahead log,
   certifies the journaled run's report byte-identical to the plain one
   (deterministic wall times on both sides, so the comparison is exact),
   and measures how recovery time scales with the replayed WAL suffix by
   crashing fresh runs at 1/4, 1/2, and 3/4 of the log — once replaying
   from genesis, once landing on the newest checkpoint.

   Emits a JSON report (BENCH_7.json) consumed by CI.  Exit status is 1
   when any identity check fails, so `make bench-journal` can gate on
   it; the <10% overhead headline is informational on shared runners. *)

module Clock = Prelude.Clock
module Experiment = Harness.Experiment
module Source = Journal.Source
module Chaos = Journal.Chaos

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hire_bench_journal_%d_%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* Deterministic wall times on both sides: the plain/journaled reports
   must be comparable byte for byte, and replay requires it anyway. *)
let config = { Sim.Simulator.default_config with deterministic_wall = true }

let spec ~k ~horizon ~seed =
  {
    Experiment.default with
    k;
    horizon;
    seed;
    faults =
      Some
        {
          Faults.plan =
            {
              Faults.Plan.default_config with
              server_mtbf = 120.0;
              switch_mtbf = 120.0;
              server_mttr = 15.0;
              switch_mttr = 15.0;
            };
          policy = Faults.Policy.create ~max_retries:2 ();
        };
  }

let report_row (s : Experiment.spec) report =
  Sim.Csv_export.row ~faults:true ~resilience:false ~scheduler:s.Experiment.scheduler
    ~mu:s.Experiment.mu ~setup:s.Experiment.setup ~seed:s.Experiment.seed report

let run_plain s =
  let sim = Experiment.prepare ~config s in
  let t0 = Clock.now () in
  while Sim.Simulator.step sim do
    ()
  done;
  let result = Sim.Simulator.finish sim in
  (Clock.elapsed_since t0, result.Sim.Simulator.report)

let run_journaled s ~dir ~checkpoint_every =
  let service =
    Sim.Service.start ~dir ~checkpoint_every
      ~header:(Experiment.spec_to_blob s)
      (Experiment.prepare ~config s)
  in
  let t0 = Clock.now () in
  let result = Sim.Service.run service in
  (Clock.elapsed_since t0, result.Sim.Simulator.report)

type recovery_point = {
  frac : float;
  crash_at : int;
  mode : string;  (* "genesis" | "checkpoint" *)
  replayed : int;
  recover_s : float;
  identical : bool;
}

(* Crash a fresh journaled run at [crash_at], time {!Sim.Service.recover}
   (torn-tail truncation + checkpoint overlay + deterministic replay),
   then finish the run and compare against the uninterrupted row. *)
let recovery_point s ~row ~checkpoint_every ~frac ~crash_at =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Fun.protect ~finally:Chaos.disarm @@ fun () ->
  Chaos.arm ~crash_at ();
  (match run_journaled s ~dir ~checkpoint_every with
  | _ -> failwith "armed crash did not fire"
  | exception Chaos.Crashed _ -> ());
  Chaos.disarm ();
  let t0 = Clock.now () in
  let recovered =
    Sim.Service.recover ~dir ~checkpoint_every
      ~rebuild:(fun header -> Experiment.prepare ~config (Experiment.spec_of_blob header))
      ()
  in
  let recover_s = Clock.elapsed_since t0 in
  let result = Sim.Service.run recovered.Sim.Service.service in
  {
    frac;
    crash_at;
    mode = (if recovered.Sim.Service.from_checkpoint = None then "genesis" else "checkpoint");
    replayed = recovered.Sim.Service.replayed;
    recover_s;
    identical = String.equal row (report_row s result.Sim.Simulator.report);
  }

(* Median of three runs: single-shot wall times on a shared box swing
   by 20%, which would swamp a <10% overhead comparison. *)
let median3 f =
  match List.sort compare [ f (); f (); f () ] with
  | [ _; m; _ ] -> m
  | _ -> assert false

let run k horizon seed checkpoint_every out =
  let s = spec ~k ~horizon ~seed in
  Printf.printf "cell: %s\n%!" (Experiment.describe s);

  (* Warm-up pass so allocator/code-cache state doesn't bias the plain
     side (it runs first). *)
  let (_ : float * Sim.Metrics.report) = run_plain s in

  let plain_s, plain_report = median3 (fun () -> run_plain s) in
  Printf.printf "plain:     %.3fs (median of 3)\n%!" plain_s;

  let journaled_once () =
    let dir = fresh_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let journaled_s, journaled_report = run_journaled s ~dir ~checkpoint_every in
    let wal = Filename.concat dir "wal.bin" in
    let loaded =
      match Source.load ~path:wal with
      | Ok l -> l
      | Error e -> failwith (Journal.Error.to_string e)
    in
    ( journaled_s,
      (journaled_report, Array.length loaded.Source.records,
       (Unix.stat wal).Unix.st_size) )
  in
  let journaled_s, (journaled_report, wal_records, wal_bytes) = median3 journaled_once in
  let overhead_pct = 100.0 *. ((journaled_s -. plain_s) /. plain_s) in
  Printf.printf "journaled: %.3fs (median of 3, %+.1f%%), %d records, %d bytes\n%!"
    journaled_s overhead_pct wal_records wal_bytes;

  let row = report_row s plain_report in
  let identical = String.equal row (report_row s journaled_report) in
  Printf.printf "identical: %b\n%!" identical;

  (* Recovery-time-vs-WAL-length curve: genesis replay cost grows with
     the crash point; checkpointed recovery replays only the suffix past
     the newest checkpoint. *)
  let points =
    List.concat_map
      (fun frac ->
        let crash_at = max 1 (int_of_float (frac *. float_of_int wal_records)) in
        [
          recovery_point s ~row ~checkpoint_every:0 ~frac ~crash_at;
          recovery_point s ~row ~checkpoint_every ~frac ~crash_at;
        ])
      [ 0.25; 0.5; 0.75 ]
  in
  List.iter
    (fun p ->
      Printf.printf "recover @%d (%s): %.4fs, %d replayed, identical=%b\n%!" p.crash_at
        p.mode p.recover_s p.replayed p.identical)
    points;
  let all_identical = identical && List.for_all (fun p -> p.identical) points in

  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\n";
  addf "  \"bench\": \"journal\",\n";
  addf "  \"config\": { \"k\": %d, \"horizon_s\": %g, \"seed\": %d, \"checkpoint_every\": %d },\n"
    k horizon seed checkpoint_every;
  addf "  \"plain_s\": %.6f,\n" plain_s;
  addf "  \"journaled_s\": %.6f,\n" journaled_s;
  addf "  \"overhead_pct\": %.3f,\n" overhead_pct;
  addf "  \"within_10pct\": %b,\n" (overhead_pct < 10.0);
  addf "  \"wal\": { \"records\": %d, \"bytes\": %d },\n" wal_records wal_bytes;
  addf "  \"recovery\": [\n";
  List.iteri
    (fun i p ->
      addf
        "    { \"frac\": %.2f, \"crash_at\": %d, \"mode\": %S, \"replayed\": %d, \
         \"recover_s\": %.6f, \"identical\": %b }%s\n"
        p.frac p.crash_at p.mode p.replayed p.recover_s p.identical
        (if i = List.length points - 1 then "" else ","))
    points;
  addf "  ],\n";
  addf "  \"identical\": %b\n" all_identical;
  addf "}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "report written to %s\n%!" out;
  if not all_identical then exit 1

open Cmdliner

let k = Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Fat-tree arity.")

let horizon =
  Arg.(value & opt float 400.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Trace length.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc:"Cell seed.")

let checkpoint_every =
  Arg.(value & opt int 250
       & info [ "checkpoint-every" ] ~docv:"ROUNDS" ~doc:"Checkpoint cadence in rounds.")

let out =
  Arg.(value & opt string "BENCH_7.json" & info [ "out" ] ~docv:"FILE" ~doc:"JSON report path.")

let cmd =
  let doc = "benchmark journaling overhead and crash-recovery time" in
  Cmd.v (Cmd.info "bench_journal" ~doc) Term.(const run $ k $ horizon $ seed $ checkpoint_every $ out)

let () = exit (Cmd.eval cmd)
