(* Load generator for the admission-API server (docs/SERVER.md).

   Forks a real server (Admission + Net over a Unix-domain socket),
   drives it from several pipelined client connections, and measures
   the paper-adjacent serving metrics: sustained admissions/sec, ack
   latency p50/p99 (send → WAL-fsynced acknowledgment), and crash
   recovery — the server is killed with SIGKILL mid-stream and the
   journal is recovered in-process, timing the rebuild and verifying
   that every acknowledged admission survived (WAL-before-ack).

   Ack latency and injection cadence are measured separately.  The ack
   path is submit → WAL-barrier → reply and never waits for the
   simulator; injection of acked admissions happens asynchronously at
   the server's tick cadence, and a tick flush blocks the serve loop
   for the duration of the scheduling rounds it triggers.  Earlier
   versions of this bench ran with a 0.5 s tick, so submissions that
   landed while a flush was running absorbed the whole flush into
   their "ack latency" (p99 ~2 s).  Now the measurement phase runs
   with ticks effectively disabled, each submission is stamped
   individually at send time ([ack_p50_ms]/[ack_p99_ms] are pure
   submit → ack), and the batching component is reported on its own as
   [flush_s]: the cost of one explicit drain injecting the whole
   phase-1 batch into the simulator.

   Emits one JSON object (BENCH_8.json for the CI bench leg) with an
   ["ok"] gate scripts can branch on. *)

module Json = Server.Json
module Protocol = Server.Protocol
module Admission = Server.Admission

let synth_spec ~seed ~client_id k =
  let rng = Prelude.Rng.create (seed + k) in
  let n_groups = Prelude.Rng.int_in rng 1 3 in
  let groups =
    List.init n_groups (fun g ->
        {
          Workload.Job.tg_index = g;
          count = Prelude.Rng.int_in rng 1 6;
          cpu = Prelude.Rng.float_in rng 0.5 4.0;
          mem = Prelude.Rng.float_in rng 0.5 4.0;
          duration = Prelude.Rng.float_in rng 1.0 15.0;
        })
  in
  let priority =
    if Prelude.Rng.bernoulli rng 0.3 then Workload.Job.Service else Workload.Job.Batch
  in
  let inc = if k mod 4 = 0 then Protocol.Auto else Protocol.No_inc in
  { Protocol.priority; groups; inc; client_id }

let send_line fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec write off =
    if off < len then write (off + Unix.write_substring fd data off (len - off))
  in
  write 0

type client = { fd : Unix.file_descr; buf : Buffer.t }

let recv_line c =
  let chunk = Bytes.create 4096 in
  let rec read () =
    match String.index_opt (Buffer.contents c.buf) '\n' with
    | Some i ->
        let all = Buffer.contents c.buf in
        let line = String.sub all 0 i in
        Buffer.clear c.buf;
        Buffer.add_substring c.buf all (i + 1) (String.length all - i - 1);
        line
    | None ->
        let n = Unix.read c.fd chunk 0 4096 in
        if n = 0 then failwith "server closed the connection";
        Buffer.add_subbytes c.buf chunk 0 n;
        read ()
  in
  read ()

let connect_with_retry path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; buf = Buffer.create 1024 }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go (tries - 1)
  in
  go 200

let admitted_id resp =
  match Json.parse resp with
  | Ok v when Json.member "ok" v = Some (Json.Bool true) ->
      Option.bind (Json.member "id" v) Json.to_int
  | _ -> None

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let run jobs conns seed out state_dir =
  let state_dir =
    match state_dir with
    | Some d -> d
    | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "hire_bench_server_%d" (Unix.getpid ()))
  in
  let journal_dir = Filename.concat state_dir "journal" in
  let sock = Filename.concat state_dir "server.sock" in
  (match Unix.mkdir state_dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let config =
    { Admission.default_config with round_interval = 0.5; max_batch = max 64 jobs }
  in
  let spec = { Harness.Experiment.default with horizon = 0.0; seed } in
  let pid =
    match Unix.fork () with
    | 0 ->
        Unix._exit
          (try
             let engine = Admission.start ~dir:journal_dir ~config spec in
             (* Ticks off during measurement: injection is driven by the
                explicit drain below, so no tick flush can block the
                serve loop mid-wave and leak into the ack numbers. *)
             let (_ : Sim.Simulator.result) =
               Server.Net.serve ~engine ~listen:(Server.Net.Unix_sock sock)
                 ~tick_interval:3600.0 ()
             in
             0
           with _ -> 1)
    | pid -> pid
  in
  Fun.protect ~finally:(fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
  @@ fun () ->
  let clients = Array.init (max 1 conns) (fun _ -> connect_with_retry sock) in
  let c0 = clients.(0) in

  (* -------- phase 1: throughput + ack latency ---------------------- *)
  let latencies = ref [] in
  let acked = ref 0 in
  let sent_at = Array.make (Array.length clients) 0.0 in
  let t0 = Prelude.Clock.now () in
  let i = ref 0 in
  while !i < jobs do
    (* pipeline one submission per connection, then collect the acks:
       the server batches the round under a single WAL barrier.  Each
       submission is stamped at its own send, so a latency sample is
       submit -> ack for that submission, not for its wave. *)
    let wave = min (Array.length clients) (jobs - !i) in
    for c = 0 to wave - 1 do
      sent_at.(c) <- Prelude.Clock.now ();
      send_line clients.(c).fd
        (Protocol.render_submit
           (synth_spec ~seed ~client_id:(Some (Printf.sprintf "load-%d" (!i + c)))
              (!i + c)))
    done;
    for c = 0 to wave - 1 do
      let resp = recv_line clients.(c) in
      if admitted_id resp <> None then incr acked;
      latencies := (Prelude.Clock.now () -. sent_at.(c)) :: !latencies
    done;
    i := !i + wave
  done;
  let elapsed = Prelude.Clock.now () -. t0 in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;

  (* -------- phase 1b: injection cadence, measured on its own -------- *)
  (* One drain injects everything phase 1 admitted and steps the
     simulator; this is the batching component that tick flushes pay at
     the configured cadence, kept out of the ack numbers above. *)
  let t_flush = Prelude.Clock.now () in
  send_line c0.fd "{\"op\":\"drain\"}";
  let flush_injected =
    match Json.parse (recv_line c0) with
    | Ok v -> Option.bind (Json.member "injected" v) Json.to_int |> Option.value ~default:0
    | Error _ -> 0
  in
  let flush_s = Prelude.Clock.now () -. t_flush in

  (* -------- phase 2: kill -9 mid-stream, recover in-process -------- *)
  let crash_ids = ref [] in
  for k = 0 to 49 do
    send_line c0.fd
      (Protocol.render_submit (synth_spec ~seed ~client_id:None (jobs + k)));
    match admitted_id (recv_line c0) with
    | Some id -> crash_ids := id :: !crash_ids
    | None -> ()
  done;
  Unix.kill pid Sys.sigkill;
  let (_ : int * Unix.process_status) = Unix.waitpid [] pid in
  let t_rec = Prelude.Clock.now () in
  let r = Admission.recover ~dir:journal_dir ~config () in
  let recovery_s = Prelude.Clock.now () -. t_rec in
  let engine = r.Admission.engine in
  let all_recovered =
    List.for_all (fun id -> Admission.status engine id <> None) !crash_ids
  in
  let st = Admission.stats engine in
  let (_ : Sim.Simulator.result) = Admission.finish engine in

  let ok = all_recovered && !acked = jobs && elapsed > 0.0 in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "server");
        ("jobs", Json.Num (float_of_int jobs));
        ("conns", Json.Num (float_of_int (Array.length clients)));
        ("acked", Json.Num (float_of_int !acked));
        ("admissions_per_s", Json.Num (float_of_int !acked /. elapsed));
        ("ack_p50_ms", Json.Num (1e3 *. percentile lat 0.50));
        ("ack_p99_ms", Json.Num (1e3 *. percentile lat 0.99));
        ("flush_s", Json.Num flush_s);
        ("flush_injected", Json.Num (float_of_int flush_injected));
        ("acked_before_crash", Json.Num (float_of_int (List.length !crash_ids)));
        ("pending_recovered", Json.Num (float_of_int r.Admission.pending_recovered));
        ("replayed", Json.Num (float_of_int r.Admission.replayed));
        ("recovery_s", Json.Num recovery_s);
        ("all_acked_recovered", Json.Bool all_recovered);
        ("degraded", Json.Bool st.Admission.degraded_now);
        ("degraded_rejects", Json.Num (float_of_int st.Admission.degraded_rejects));
        ("io_errors", Json.Num (float_of_int st.Admission.io_errors));
        ("ok", Json.Bool ok);
      ]
  in
  let text = Json.to_string doc in
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (text ^ "\n");
      close_out oc);
  print_endline text;
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
  if not ok then exit 1

open Cmdliner

let jobs =
  let doc = "Submissions in the throughput phase." in
  Arg.(value & opt int 200 & info [ "jobs" ] ~docv:"N" ~doc)

let conns =
  let doc = "Concurrent client connections." in
  Arg.(value & opt int 4 & info [ "conns" ] ~docv:"C" ~doc)

let seed =
  let doc = "Seed of the synthetic submission stream." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc)

let out =
  let doc = "Write the JSON result to $(docv) (BENCH_8.json in CI)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let state_dir =
  let doc = "Server state directory (default: a fresh temp directory)." in
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "benchmark the admission server: throughput, ack latency, recovery" in
  Cmd.v
    (Cmd.info "bench_server" ~version:"1.0" ~doc)
    Term.(const run $ jobs $ conns $ seed $ out $ state_dir)

let () = exit (Cmd.eval cmd)
