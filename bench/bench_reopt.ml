(* Re-optimizing solve-path benchmark (docs/PERFORMANCE.md): measures
   the MCMF solve phase with the Classic SSP implementation against the
   re-optimizing Fast path (early-terminating bucket/heap Dijkstra with
   generation-stamped scratch and settled-only potential updates), and
   the end-to-end effect of the default pipeline (incremental builder +
   touched-arc flow reset + Fast solves) against its escape hatches.
   Emits a JSON report (BENCH_9.json) consumed by CI.

   Three parts:

   - [micro]: one k-ary cluster with a frozen pending-job queue sized by
     [--queue-horizon].  Each round applies a small ledger mutation and
     patches the persistent network builder; the resulting instance is
     then solved twice — Classic on a private copy, Fast on the
     persistent graph (the production path: the next round's patch must
     recover from the consumed flow).  Only the [Mcmf.solve] calls are
     timed, so the ratio is a pure solve-phase speedup on identical
     instances.  Both solves must agree on shipped flow and objective
     every round (tie-breaking may differ across algorithms, so per-arc
     flows are not compared — see lib/flow/mcmf.mli).  The Fast pass
     also records an augmentations-per-round histogram.

   - [e2e]: one short Experiment cell run three ways — legacy full
     rebuilds ([--no-incremental]), incremental with cold flow resets
     ([--no-reopt]), and the default re-optimizing path — compared
     through per-round placement logs and the CSV row (wall-clock column
     masked).  The reopt and cold runs must be byte-identical; the
     legacy run gives the end-to-end speedup of the whole
     PR-5-through-PR-10 pipeline.

   - gates: exit status 1 when any identity check fails, or when
     [--min-speedup] is given and the measured solve-phase speedup falls
     short of it. *)

module Clock = Prelude.Clock
module Vec = Prelude.Vec
module Rng = Prelude.Rng
module Flow_network = Hire.Flow_network
module Graph = Flow.Graph
module Mcmf = Flow.Mcmf

(* ------------------------------------------------------------------ *)
(* Fixture: cluster + frozen pending queue (as in bench_solver)        *)
(* ------------------------------------------------------------------ *)

type fixture = {
  cluster : Sim.Cluster.t;
  view : Hire.View.t;
  census : Hire.Locality.Task_census.t;
  jobs : Hire.Pending.job_state list;
  now : float;
  params : Hire.Cost_model.params;
  servers : int array;
  demand : Vec.t;
}

let make_fixture ~k ~queue_horizon =
  let rng = Rng.create 1 in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  let store = Hire.Comp_store.default () in
  let services = Array.to_list (Hire.Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ~k ~setup:Sim.Cluster.Homogeneous ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:0.8 Workload.Trace_gen.default
  in
  let trace = Workload.Trace_gen.generate trace_config trace_rng ~horizon:queue_horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu:0.5 trace in
  let jobs =
    List.map (fun (_, poly) -> Hire.Pending.of_poly poly) scenario.Sim.Scenario.arrivals
  in
  let now =
    List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 scenario.Sim.Scenario.arrivals
    +. 1.0
  in
  let view = Sim.Cluster.view cluster in
  let census = Hire.Locality.Task_census.create view.Hire.View.topo in
  let servers = Topology.Fat_tree.servers view.Hire.View.topo in
  let demand = Vec.scale 0.05 (Sim.Cluster.server_capacity cluster) in
  {
    cluster;
    view;
    census;
    jobs;
    now;
    params = Hire.Cost_model.default_params;
    servers;
    demand;
  }

let mutate fx i =
  let server = fx.servers.(i mod Array.length fx.servers) in
  Sim.Cluster.place_server_task fx.cluster ~server ~demand:fx.demand;
  Sim.Cluster.release_server_task fx.cluster ~server ~demand:fx.demand

let build_incremental fx builder =
  Flow_network.build ~builder fx.view fx.census ~jobs:fx.jobs ~now:fx.now
    ~params:fx.params

(* ------------------------------------------------------------------ *)
(* Micro: Classic vs Fast on identical instances                       *)
(* ------------------------------------------------------------------ *)

type micro_result = {
  classic_wall_s : float;
  fast_wall_s : float;
  solve_speedup : float;
  identical : bool;
  rounds : int;
  arcs : int;
  shipped : int;
  aug_hist : (string * int) list;  (* power-of-two buckets *)
  aug_mean : float;
  queue_bucket : int;  (* Fast rounds served by the bucket queue *)
}

(* Power-of-two histogram buckets: "0", "1", "2-3", "4-7", ... *)
let bucket_label lo hi = if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi

let histogram samples =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let rec bounds lo hi = if v <= hi then (lo, hi) else bounds (hi + 1) ((2 * hi) + 1) in
      let lo, hi = if v <= 0 then (0, 0) else bounds 1 1 in
      let key = (lo, hi) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    samples;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun ((a, _), _) ((b, _), _) -> Int.compare a b)
  |> List.map (fun ((lo, hi), n) -> (bucket_label lo hi, n))

let run_micro fx ~rounds =
  let builder = Flow_network.create_builder ~reopt:true () in
  (* Cold build outside the measured region. *)
  ignore (build_incremental fx builder);
  let scratch_c = Mcmf.scratch () and scratch_f = Mcmf.scratch () in
  let classic_wall = ref 0.0 and fast_wall = ref 0.0 in
  let identical = ref true in
  let augs = ref [] in
  let arcs = ref 0 and shipped = ref 0 in
  (* Instrumentation on so the solver records its queue selection; the
     counter costs one increment per solve in both passes. *)
  Obs.set_enabled true;
  let bucket_counter = Obs.Registry.counter "flow.queue.bucket" in
  let bucket0 = Obs.Registry.counter_value bucket_counter in
  Gc.full_major ();
  for i = 0 to rounds - 1 do
    mutate fx i;
    let net = build_incremental fx builder in
    let g = Flow_network.graph net in
    arcs := Graph.arc_count g;
    (* Classic solves a private copy; Fast solves the persistent graph
       so the next round's patch has real consumed flow to undo. *)
    let gc = Graph.copy g in
    let t0 = Clock.now () in
    let rc = Mcmf.solve ~scratch:scratch_c ~algo:Mcmf.Classic gc in
    classic_wall := !classic_wall +. Clock.elapsed_since t0;
    let t1 = Clock.now () in
    let rf = Mcmf.solve ~scratch:scratch_f ~algo:Mcmf.Fast g in
    fast_wall := !fast_wall +. Clock.elapsed_since t1;
    if
      rc.Mcmf.shipped <> rf.Mcmf.shipped
      || rc.Mcmf.total_cost <> rf.Mcmf.total_cost
      || rc.Mcmf.unshipped <> rf.Mcmf.unshipped
    then begin
      Printf.eprintf
        "micro: round %d diverged (classic %d/%d cost %d, fast %d/%d cost %d)\n" i
        rc.Mcmf.shipped rc.Mcmf.unshipped rc.Mcmf.total_cost rf.Mcmf.shipped
        rf.Mcmf.unshipped rf.Mcmf.total_cost;
      identical := false
    end;
    shipped := rf.Mcmf.shipped;
    augs := rf.Mcmf.augmentations :: !augs
  done;
  Obs.set_enabled false;
  let n = List.length !augs in
  let aug_mean =
    if n = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 !augs) /. float_of_int n
  in
  {
    classic_wall_s = !classic_wall;
    fast_wall_s = !fast_wall;
    solve_speedup =
      (if !fast_wall > 0.0 then !classic_wall /. !fast_wall else 0.0);
    identical = !identical;
    rounds;
    arcs = !arcs;
    shipped = !shipped;
    aug_hist = histogram !augs;
    aug_mean;
    queue_bucket = Obs.Registry.counter_value bucket_counter - bucket0;
  }

(* ------------------------------------------------------------------ *)
(* Pipeline: per-round build+solve, pre-PR-5 vs today                  *)
(* ------------------------------------------------------------------ *)

(* Complete scheduler hot path (network construction + exact solve) per
   round, measured at the same steady-state fixture BENCH_5.json's
   baselines were recorded on (queue-horizon 10).  "pre" is the faithful
   pre-PR-5 configuration — a fresh arena every round, the classic SSP,
   no carried scratch; "now" is today's default — persistent
   re-optimizing builder, solver scratch reuse, fast SSP. *)
type pipeline_result = {
  pre_wall_s : float;
  now_wall_s : float;
  speedup_vs_pre_pr5 : float;
  identical : bool;
  rounds : int;
  arcs : int;
}

let run_pipeline fx ~rounds =
  let pre = Array.make rounds (0, 0) in
  let arcs = ref 0 in
  Gc.full_major ();
  let t0 = Clock.now () in
  for i = 0 to rounds - 1 do
    mutate fx i;
    let net =
      Flow_network.build fx.view fx.census ~jobs:fx.jobs ~now:fx.now ~params:fx.params
    in
    let r = Flow_network.solve_only ~solver:Hire.Flow_network.Ssp_classic net in
    arcs := Graph.arc_count (Flow_network.graph net);
    pre.(i) <- (r.Mcmf.shipped, r.Mcmf.total_cost)
  done;
  let pre_wall_s = Clock.elapsed_since t0 in
  let builder = Flow_network.create_builder ~reopt:true () in
  ignore (build_incremental fx builder);
  let scratch = Mcmf.scratch () in
  let identical = ref true in
  Gc.full_major ();
  let t1 = Clock.now () in
  for i = 0 to rounds - 1 do
    mutate fx i;
    let net = build_incremental fx builder in
    let r = Flow_network.solve_only ~scratch net in
    (* The round's instance is identical in both passes (the per-round
       ledger churn is charge+refund), so objectives must agree. *)
    if pre.(i) <> (r.Mcmf.shipped, r.Mcmf.total_cost) then identical := false
  done;
  let now_wall_s = Clock.elapsed_since t1 in
  {
    pre_wall_s;
    now_wall_s;
    speedup_vs_pre_pr5 = (if now_wall_s > 0.0 then pre_wall_s /. now_wall_s else 0.0);
    identical = !identical;
    rounds;
    arcs = !arcs;
  }

(* ------------------------------------------------------------------ *)
(* End to end: legacy / cold-reset / re-optimizing                     *)
(* ------------------------------------------------------------------ *)

type mode = Legacy | Cold | Reopt

(* One full simulation cell with per-round placement logging, as in
   bench_solver: identity is judged on the placement log plus the CSV
   row with the measured solver-wall column masked. *)
let run_cell ~mode ~k ~horizon ~util =
  let rng = Rng.create 1 in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  let store = Hire.Comp_store.default () in
  let services = Array.to_list (Hire.Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ~inc_capable_fraction:0.15 ~k ~setup:Sim.Cluster.Homogeneous
      ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:util Workload.Trace_gen.default
  in
  let trace = Workload.Trace_gen.generate trace_config trace_rng ~horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu:0.5 trace in
  (* Legacy is the faithful pre-PR-5 configuration: fresh network every
     round AND the classic SSP implementation (the only one back then),
     so the end-to-end ratio is against the baseline BENCH_5.json
     recorded, not against a legacy build with today's solver. *)
  let sched =
    match mode with
    | Legacy ->
        Schedulers.Hire_adapter.create ~incremental:false ~reopt:false
          ~solver:Hire.Flow_network.Ssp_classic cluster
    | Cold -> Schedulers.Registry.create ~incremental:true ~reopt:false "hire" ~seed:1 cluster
    | Reopt -> Schedulers.Registry.create ~incremental:true ~reopt:true "hire" ~seed:1 cluster
  in
  let log = Buffer.create 4096 in
  let rounds = ref 0 in
  let wrapped =
    {
      sched with
      Sim.Scheduler_intf.round =
        (fun ~time ->
          let r = sched.Sim.Scheduler_intf.round ~time in
          incr rounds;
          Buffer.add_string log (Printf.sprintf "t=%.6f" time);
          List.iter
            (fun (p : Sim.Scheduler_intf.placement) ->
              Buffer.add_string log
                (Printf.sprintf " %d->%d" p.tg.Hire.Poly_req.tg_id p.machine))
            r.Sim.Scheduler_intf.placements;
          Buffer.add_char log '\n';
          r);
    }
  in
  let t0 = Clock.now () in
  let result = Sim.Simulator.run cluster wrapped scenario.Sim.Scenario.arrivals in
  let wall = Clock.elapsed_since t0 in
  let row =
    Sim.Csv_export.row ~scheduler:"hire" ~mu:0.5 ~setup:Sim.Cluster.Homogeneous ~seed:1
      result.Sim.Simulator.report
  in
  (* Mask the solver_p50_ms column (index 19 of the base header). *)
  let row_masked =
    String.split_on_char ',' row
    |> List.mapi (fun i c -> if i = 19 then "_" else c)
    |> String.concat ","
  in
  (Buffer.contents log, row_masked, wall, !rounds)

type e2e_result = {
  identical : bool;
  wall_s_legacy : float;
  wall_s_cold : float;
  wall_s_reopt : float;
  rounds_per_sec : float;
  end_to_end_speedup : float;
}

let run_e2e ~k ~horizon ~util =
  let _log_l, _row_l, wall_s_legacy, _ = run_cell ~mode:Legacy ~k ~horizon ~util in
  let log_c, row_c, wall_s_cold, _ = run_cell ~mode:Cold ~k ~horizon ~util in
  let log_r, row_r, wall_s_reopt, n_rounds = run_cell ~mode:Reopt ~k ~horizon ~util in
  let explain name (la, ra) (lb, rb) =
    if not (String.equal la lb) then begin
      let a = String.split_on_char '\n' la and b = String.split_on_char '\n' lb in
      Printf.eprintf "e2e: %s placement logs differ (%d vs %d rounds)\n" name
        (List.length a) (List.length b);
      (try
         List.iteri
           (fun i xa ->
             let xb = List.nth b i in
             if not (String.equal xa xb) then begin
               Printf.eprintf "  first diff at round %d:\n    a: %s\n    b: %s\n" i xa xb;
               raise Exit
             end)
           a
       with Exit | Failure _ -> ());
      false
    end
    else if not (String.equal ra rb) then begin
      Printf.eprintf "e2e: %s rows differ\n  a: %s\n  b: %s\n" name ra rb;
      false
    end
    else true
  in
  (* The hard invariant is reopt == cold (bit-identical flow resets).
     The legacy run pins the classic solver, which may break ties
     between equally-cheap augmenting paths differently
     (lib/flow/mcmf.mli), so it is timed but not byte-compared. *)
  let identical = explain "reopt-vs-cold" (log_c, row_c) (log_r, row_r) in
  {
    identical;
    wall_s_legacy;
    wall_s_cold;
    wall_s_reopt;
    rounds_per_sec =
      (if wall_s_reopt > 0.0 then float_of_int n_rounds /. wall_s_reopt else 0.0);
    end_to_end_speedup =
      (if wall_s_reopt > 0.0 then wall_s_legacy /. wall_s_reopt else 0.0);
  }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let write_json path ~k ~n_jobs (m : micro_result) (p : pipeline_result)
    (e : e2e_result option) =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"bench_reopt\",\n";
  Printf.fprintf oc "  \"k\": %d,\n  \"rounds\": %d,\n  \"pending_jobs\": %d,\n" k m.rounds
    n_jobs;
  Printf.fprintf oc "  \"identical\": %b,\n"
    (m.identical && p.identical && match e with None -> true | Some e -> e.identical);
  Printf.fprintf oc "  \"micro\": {\n";
  Printf.fprintf oc "    \"arcs\": %d,\n    \"shipped\": %d,\n" m.arcs m.shipped;
  Printf.fprintf oc "    \"classic_wall_s\": %.6f,\n" m.classic_wall_s;
  Printf.fprintf oc "    \"fast_wall_s\": %.6f,\n" m.fast_wall_s;
  Printf.fprintf oc "    \"solve_speedup\": %.2f,\n" m.solve_speedup;
  Printf.fprintf oc "    \"bucket_queue_rounds\": %d,\n" m.queue_bucket;
  Printf.fprintf oc "    \"augmentations_mean\": %.1f,\n" m.aug_mean;
  Printf.fprintf oc "    \"augmentations_hist\": { %s }\n"
    (String.concat ", "
       (List.map (fun (l, n) -> Printf.sprintf "\"%s\": %d" l n) m.aug_hist));
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc
    "  \"pipeline\": { \"rounds\": %d, \"arcs\": %d, \"pre_pr5_wall_s\": %.6f, \
     \"now_wall_s\": %.6f, \"speedup_vs_pre_pr5\": %.2f, \"identical\": %b }%s\n"
    p.rounds p.arcs p.pre_wall_s p.now_wall_s p.speedup_vs_pre_pr5 p.identical
    (if e = None then "" else ",");
  (match e with
  | None -> ()
  | Some e ->
      Printf.fprintf oc
        "  \"e2e\": { \"identical\": %b, \"wall_s_legacy\": %.3f, \"wall_s_cold\": \
         %.3f, \"wall_s_reopt\": %.3f, \"rounds_per_sec\": %.1f, \
         \"end_to_end_speedup\": %.2f }\n"
        e.identical e.wall_s_legacy e.wall_s_cold e.wall_s_reopt e.rounds_per_sec
        e.end_to_end_speedup);
  Printf.fprintf oc "}\n";
  close_out oc

let run rounds k queue_horizon e2e_horizon e2e_util no_e2e min_speedup
    min_e2e_speedup out =
  let fx = make_fixture ~k ~queue_horizon in
  let n_jobs = List.length fx.jobs in
  Printf.printf "bench_reopt: k=%d rounds=%d pending-jobs=%d\n%!" k rounds n_jobs;
  let m = run_micro fx ~rounds in
  Printf.printf
    "  solve phase (%d arcs): classic %.3fs, fast %.3fs  ->  %.2fx  (%d/%d rounds on \
     the bucket queue, mean %.1f augmentations)\n"
    m.arcs m.classic_wall_s m.fast_wall_s m.solve_speedup m.queue_bucket m.rounds
    m.aug_mean;
  Printf.printf "  objectives: %s\n" (if m.identical then "identical" else "MISMATCH");
  (* The pipeline comparison runs at the steady-state fixture
     BENCH_5.json's baselines were recorded on. *)
  let fx5 = make_fixture ~k ~queue_horizon:10.0 in
  let p = run_pipeline fx5 ~rounds:(max rounds 100) in
  Printf.printf
    "  pipeline (build+solve, %d arcs): pre-PR-5 %.3fs, now %.3fs  ->  %.2fx, \
     objectives %s\n"
    p.arcs p.pre_wall_s p.now_wall_s p.speedup_vs_pre_pr5
    (if p.identical then "identical" else "MISMATCH");
  let e2e =
    if no_e2e then None
    else begin
      let e = run_e2e ~k ~horizon:e2e_horizon ~util:e2e_util in
      Printf.printf
        "  e2e (horizon %.0fs): legacy %.3fs, cold %.3fs, reopt %.3fs (%.1f rounds/s, \
         %.2fx vs legacy), runs %s\n"
        e2e_horizon e.wall_s_legacy e.wall_s_cold e.wall_s_reopt e.rounds_per_sec
        e.end_to_end_speedup
        (if e.identical then "identical" else "MISMATCH");
      Some e
    end
  in
  write_json out ~k ~n_jobs m p e2e;
  Printf.printf "report written to %s\n" out;
  let ok =
    m.identical && p.identical && match e2e with None -> true | Some e -> e.identical
  in
  if not ok then begin
    Printf.eprintf "bench_reopt: identity check FAILED\n";
    exit 1
  end;
  if min_speedup > 0.0 && m.solve_speedup < min_speedup then begin
    Printf.eprintf "bench_reopt: solve speedup %.2fx below required %.2fx\n"
      m.solve_speedup min_speedup;
    exit 1
  end;
  if min_e2e_speedup > 0.0 && p.speedup_vs_pre_pr5 < min_e2e_speedup then begin
    Printf.eprintf
      "bench_reopt: pipeline speedup %.2fx vs pre-PR-5 below required %.2fx\n"
      p.speedup_vs_pre_pr5 min_e2e_speedup;
    exit 1
  end

open Cmdliner

let rounds =
  let doc = "Measured solve rounds (each solved once per algorithm)." in
  Arg.(value & opt int 60 & info [ "rounds" ] ~docv:"N" ~doc)

let k =
  let doc = "Fat-tree arity of the benchmark cluster." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let queue_horizon =
  let doc =
    "Trace horizon (seconds) used to generate the frozen pending-job queue.  The \
     reference configuration (k=8, 400s) sizes the instance so the solve phase \
     dominates, which is the regime the Fast path targets."
  in
  Arg.(value & opt float 400.0 & info [ "queue-horizon" ] ~docv:"SECONDS" ~doc)

let e2e_horizon =
  let doc = "Horizon of the end-to-end comparison cells." in
  Arg.(value & opt float 120.0 & info [ "e2e-horizon" ] ~docv:"SECONDS" ~doc)

let e2e_util =
  let doc =
    "Offered CPU load of the end-to-end cells.  The default reproduces the \
     contention regime ($(b,--util 2.0), as the `make check' smoke cells use): the \
     pending queue grows, rounds are solve-dominated, and the end-to-end ratio \
     reflects the solver work the re-optimizing path removes.  Lower values measure \
     an idler cluster where fixed simulator costs dominate every mode."
  in
  Arg.(value & opt float 2.0 & info [ "e2e-util" ] ~docv:"LOAD" ~doc)

let no_e2e =
  let doc = "Skip the end-to-end comparison (micro only)." in
  Arg.(value & flag & info [ "no-e2e" ] ~doc)

let min_speedup =
  let doc =
    "Fail (exit 1) when the measured Classic-to-Fast solve-phase speedup is below \
     $(docv).  0 disables the gate."
  in
  Arg.(value & opt float 0.0 & info [ "min-speedup" ] ~docv:"X" ~doc)

let min_e2e_speedup =
  let doc =
    "Fail (exit 1) when the per-round pipeline (build+solve) speedup over the \
     pre-PR-5 baseline is below $(docv).  0 disables the gate."
  in
  Arg.(value & opt float 0.0 & info [ "min-e2e-speedup" ] ~docv:"X" ~doc)

let out =
  let doc = "JSON report output path." in
  Arg.(value & opt string "BENCH_9.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "benchmark the re-optimizing MCMF solve path against the classic SSP" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Measures the solve phase with the Classic and Fast SSP implementations on \
         identical instances, verifies objective identity per round and end-to-end \
         placement identity of the re-optimizing pipeline against its escape hatches, \
         and writes a JSON report.  Methodology: docs/PERFORMANCE.md.";
      `S Manpage.s_exit_status;
      `P "0 on success, 1 if any identity check or the speedup gate failed.";
    ]
  in
  Cmd.v
    (Cmd.info "bench_reopt" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ rounds $ k $ queue_horizon $ e2e_horizon $ e2e_util $ no_e2e
      $ min_speedup $ min_e2e_speedup $ out)

let () = exit (Cmd.eval cmd)
