(* Portfolio-race benchmark (docs/PARALLELISM.md, docs/PERFORMANCE.md):
   measures the per-round MCMF solve latency of each backend run
   serially against the raced portfolio, checks the race's winner
   solves to the same objective as the serial primary, measures how the
   domain-pool sweep mode scales with worker count, and emits a JSON
   report (BENCH_6.json) consumed by CI.

   Three parts:

   - [solve]: one cluster, one frozen pending-job queue, one flow
     network.  Each round resets the flow and solves — with the SSP
     backend, with the cost-scaling backend, or by racing both through
     [Flow.Portfolio.race] on private graph copies.  Per-round walls
     feed p50/p99 latencies; the headline figure is the portfolio's p99
     relative to the fastest individual backend (the race's overhead is
     two graph copies plus, when eager, domain spawn/join).

   - [identity]: the race winner's shipped units and objective value
     must equal a serial solve of the listed-priority backend — the
     deterministic-priority contract, measured rather than assumed.

   - [sweep]: a small batch of experiment cells pushed through
     [Runner.run ~mode:Pool.Domains] at increasing worker counts;
     cells/sec per worker count records how the shared-memory sweep
     scales on this host (on a single-core host the curve is flat —
     the point of recording [recommended_domains] next to it).

   Exit status is 1 when the identity check fails, so `make check` can
   gate on it. *)

module Clock = Prelude.Clock
module Rng = Prelude.Rng
module Flow_network = Hire.Flow_network
module Graph = Flow.Graph
module Budget = Flow.Budget
module Portfolio = Flow.Portfolio

(* ------------------------------------------------------------------ *)
(* Fixture: cluster + frozen pending queue -> one flow network         *)
(* ------------------------------------------------------------------ *)

let make_network ~k ~queue_horizon =
  let rng = Rng.create 1 in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  let store = Hire.Comp_store.default () in
  let services = Array.to_list (Hire.Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ~k ~setup:Sim.Cluster.Homogeneous ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:0.8 Workload.Trace_gen.default
  in
  let trace = Workload.Trace_gen.generate trace_config trace_rng ~horizon:queue_horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu:0.5 trace in
  let jobs =
    List.map (fun (_, poly) -> Hire.Pending.of_poly poly) scenario.Sim.Scenario.arrivals
  in
  let now =
    List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 scenario.Sim.Scenario.arrivals
    +. 1.0
  in
  let view = Sim.Cluster.view cluster in
  let census = Hire.Locality.Task_census.create view.Hire.View.topo in
  (Flow_network.build view census ~jobs ~now ~params:Hire.Cost_model.default_params,
   List.length jobs)

(* ------------------------------------------------------------------ *)
(* Percentiles                                                         *)
(* ------------------------------------------------------------------ *)

type dist = { p50_ms : float; p99_ms : float; mean_ms : float }

let dist_of samples =
  let a = Array.copy samples in
  Array.sort compare a;
  let n = Array.length a in
  let pct p =
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) i)) *. 1e3
  in
  let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n *. 1e3 in
  { p50_ms = pct 50.0; p99_ms = pct 99.0; mean_ms = mean }

(* ------------------------------------------------------------------ *)
(* Per-round solve latency, serial and raced                           *)
(* ------------------------------------------------------------------ *)

let job_of backend =
  {
    Portfolio.name = Flow_network.solver_name backend;
    run = (fun ~ctl g -> Flow_network.solve_graph ~solver:backend ~ctl g);
  }

let accept_healthy _i (e : Portfolio.entry) =
  match e.Portfolio.result with
  | Some r -> not r.Flow.Mcmf.degraded
  | None -> false

let warmup_rounds = 5

(* Each round must hand the solver the graph the network built —
   cost-scaling appends a virtual feasibility node and artificial arcs
   it does not remove (the real chain rebuilds or patches the graph
   between rounds), so the suffix is released after every solve.  The
   first few rounds warm caches and the allocator and are discarded. *)
let time_serial net ~rounds backend =
  let g = Flow_network.graph net in
  let samples = Array.make rounds 0.0 in
  for i = -warmup_rounds to rounds - 1 do
    Graph.reset_flows g;
    let mk = Graph.mark g in
    let t0 = Clock.now () in
    ignore (Flow_network.solve_graph ~solver:backend g);
    if i >= 0 then samples.(i) <- Clock.elapsed_since t0;
    Graph.release g mk
  done;
  Graph.reset_flows g;
  samples

(* The race's priority order is the caller's choice; the bench races the
   measured-fastest backend as the primary — the configuration a real
   deployment would pick, and the one the within-15%% headline is about
   (the race then costs the primary's solve plus two graph copies and,
   when eager, a domain spawn/join). *)
let time_portfolio net ~rounds ~eager ~primary =
  let g = Flow_network.graph net in
  Graph.reset_flows g;
  let secondary =
    match primary with
    | Flow_network.Ssp | Flow_network.Ssp_classic -> Flow_network.Cost_scaling
    | Flow_network.Cost_scaling -> Flow_network.Ssp
  in
  let jobs = [ job_of primary; job_of secondary ] in
  let samples = Array.make rounds 0.0 in
  let winner_ok = ref true in
  let serial = Flow_network.solve_graph ~solver:primary (Graph.copy g) in
  for i = -warmup_rounds to rounds - 1 do
    let t0 = Clock.now () in
    let o =
      Portfolio.race ?eager ~budget:Budget.unlimited ~source:g ~decide:accept_healthy jobs
    in
    if i >= 0 then samples.(i) <- Clock.elapsed_since t0;
    (* Deterministic-priority contract: the winner is the listed primary
       and solves to the serial objective. *)
    match o.Portfolio.winner with
    | Some 0 -> (
        match o.Portfolio.entries.(0).Portfolio.result with
        | Some r ->
            if
              r.Flow.Mcmf.shipped <> serial.Flow.Mcmf.shipped
              || r.Flow.Mcmf.total_cost <> serial.Flow.Mcmf.total_cost
            then winner_ok := false
        | None -> winner_ok := false)
    | _ -> winner_ok := false
  done;
  (samples, !winner_ok)

(* ------------------------------------------------------------------ *)
(* Domain-pool sweep scaling                                           *)
(* ------------------------------------------------------------------ *)

type sweep_point = { jobs : int; cells : int; wall_s : float; cells_per_sec : float }

let run_sweep ~k ~horizon ~cells ~jobs_list =
  let specs =
    List.init cells (fun i ->
        { Harness.Experiment.default with Harness.Experiment.k; horizon; seed = i + 1 })
  in
  List.map
    (fun jobs ->
      let t0 = Clock.now () in
      let outcomes, _stats =
        Runner.run ~jobs ~retries:0 ~mode:Runner.Pool.Domains
          ~key:Harness.Experiment.cell_key ~f:Harness.Experiment.run specs
      in
      List.iter
        (fun (o : _ Runner.outcome) ->
          match o.Runner.result with
          | Ok _ -> ()
          | Error r -> failwith (Runner.Pool.reason_to_string r))
        outcomes;
      let wall_s = Clock.elapsed_since t0 in
      {
        jobs;
        cells;
        wall_s;
        cells_per_sec = (if wall_s > 0.0 then float_of_int cells /. wall_s else 0.0);
      })
    jobs_list

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let json_of_dist d =
  Printf.sprintf "{ \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"mean_ms\": %.4f }" d.p50_ms
    d.p99_ms d.mean_ms

let write_json path ~k ~rounds ~n_jobs ~eager ~identical ~primary ~fastest_name ~fastest
    ~ssp ~cs ~race ~sweep =
  let ratio = if fastest.p99_ms > 0.0 then race.p99_ms /. fastest.p99_ms else 0.0 in
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"bench_portfolio\",\n";
  Printf.fprintf oc "  \"k\": %d,\n  \"rounds\": %d,\n  \"pending_jobs\": %d,\n" k rounds n_jobs;
  Printf.fprintf oc "  \"eager\": %b,\n" eager;
  Printf.fprintf oc "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"identical\": %b,\n" identical;
  Printf.fprintf oc "  \"solve_ms\": {\n";
  Printf.fprintf oc "    \"ssp\": %s,\n" (json_of_dist ssp);
  Printf.fprintf oc "    \"cost_scaling\": %s,\n" (json_of_dist cs);
  Printf.fprintf oc "    \"portfolio\": %s\n" (json_of_dist race);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"primary\": \"%s\",\n" primary;
  Printf.fprintf oc "  \"fastest_backend\": \"%s\",\n" fastest_name;
  Printf.fprintf oc "  \"portfolio_p99_over_fastest\": %.3f,\n" ratio;
  Printf.fprintf oc "  \"portfolio_within_15pct\": %b,\n" (ratio <= 1.15);
  Printf.fprintf oc "  \"sweep_scaling\": [\n";
  List.iteri
    (fun i (p : sweep_point) ->
      Printf.fprintf oc
        "    { \"jobs\": %d, \"cells\": %d, \"wall_s\": %.3f, \"cells_per_sec\": %.2f }%s\n"
        p.jobs p.cells p.wall_s p.cells_per_sec
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run rounds reps k queue_horizon eager_flag no_sweep sweep_cells sweep_horizon
    jobs_list out =
  let net, n_jobs = make_network ~k ~queue_horizon in
  let eager = if eager_flag then Some true else None in
  Printf.printf "bench_portfolio: k=%d rounds=%d pending-jobs=%d domains=%d\n%!" k rounds
    n_jobs
    (Domain.recommended_domain_count ());
  (* Per mode, the repetition with the lowest p99 is kept: tail latency
     on a shared host is dominated by scheduler/GC outliers, and the
     floor across repetitions is the robust estimate of the mode's own
     cost (every mode gets the same treatment). *)
  let best f =
    List.init reps (fun _ -> dist_of (f ()))
    |> List.fold_left (fun acc d -> if d.p99_ms < acc.p99_ms then d else acc)
         { p50_ms = infinity; p99_ms = infinity; mean_ms = infinity }
  in
  let ssp = best (fun () -> time_serial net ~rounds Flow_network.Ssp) in
  let cs = best (fun () -> time_serial net ~rounds Flow_network.Cost_scaling) in
  let fastest_name, fastest, primary =
    if ssp.p99_ms <= cs.p99_ms then ("ssp", ssp, Flow_network.Ssp)
    else ("cost-scaling", cs, Flow_network.Cost_scaling)
  in
  let identical = ref true in
  let race =
    best (fun () ->
        let samples, ok = time_portfolio net ~rounds ~eager ~primary in
        if not ok then identical := false;
        samples)
  in
  let identical = !identical in
  let eager_effective =
    match eager with Some e -> e | None -> Portfolio.default_eager ()
  in
  let pp name d =
    Printf.printf "  %-14s p50 %8.3f ms  p99 %8.3f ms  mean %8.3f ms\n" name d.p50_ms
      d.p99_ms d.mean_ms
  in
  pp "ssp" ssp;
  pp "cost-scaling" cs;
  pp (if eager_effective then "portfolio*" else "portfolio") race;
  Printf.printf "  primary (fastest) backend: %s\n" fastest_name;
  Printf.printf "  portfolio p99 / fastest backend p99: %.3f (within 15%%: %b)\n"
    (race.p99_ms /. Float.max 1e-9 fastest.p99_ms)
    (race.p99_ms <= 1.15 *. fastest.p99_ms);
  Printf.printf "  winner identity vs serial primary: %s\n"
    (if identical then "OK" else "MISMATCH");
  let sweep =
    if no_sweep then []
    else begin
      let points =
        run_sweep ~k:4 ~horizon:sweep_horizon ~cells:sweep_cells ~jobs_list
      in
      List.iter
        (fun p ->
          Printf.printf "  sweep jobs=%d: %d cells in %.2fs (%.2f cells/s)\n" p.jobs
            p.cells p.wall_s p.cells_per_sec)
        points;
      points
    end
  in
  write_json out ~k ~rounds ~n_jobs ~eager:eager_effective ~identical
    ~primary:(Flow_network.solver_name primary) ~fastest_name ~fastest ~ssp ~cs ~race
    ~sweep;
  Printf.printf "report written to %s\n" out;
  if not identical then begin
    Printf.eprintf "bench_portfolio: winner identity check FAILED\n";
    exit 1
  end

open Cmdliner

let rounds =
  let doc = "Timed solve rounds per mode and repetition." in
  Arg.(value & opt int 100 & info [ "rounds" ] ~docv:"N" ~doc)

let reps =
  let doc =
    "Repetitions per mode; the repetition with the lowest p99 is reported (outlier \
     control on shared hosts)."
  in
  Arg.(value & opt int 3 & info [ "reps" ] ~docv:"N" ~doc)

let k =
  let doc = "Fat-tree arity of the benchmark cluster." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let queue_horizon =
  let doc =
    "Trace horizon (seconds) generating the frozen pending-job queue.  The default \
     yields a queue whose solve dominates the race's graph-copy overhead."
  in
  Arg.(value & opt float 60.0 & info [ "queue-horizon" ] ~docv:"SECONDS" ~doc)

let eager =
  let doc =
    "Force eager domain fan-out even on a single-core host (default: \
     Flow.Portfolio.default_eager, i.e. eager iff 2+ cores)."
  in
  Arg.(value & flag & info [ "eager" ] ~doc)

let no_sweep =
  let doc = "Skip the domain-pool sweep-scaling part (solve latency only)." in
  Arg.(value & flag & info [ "no-sweep" ] ~doc)

let sweep_cells =
  let doc = "Experiment cells in the sweep-scaling part." in
  Arg.(value & opt int 6 & info [ "sweep-cells" ] ~docv:"N" ~doc)

let sweep_horizon =
  let doc = "Horizon of each sweep-scaling cell." in
  Arg.(value & opt float 60.0 & info [ "sweep-horizon" ] ~docv:"SECONDS" ~doc)

let jobs_list =
  let doc = "Worker counts measured in the sweep-scaling part." in
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "sweep-jobs" ] ~docv:"J1,J2,..." ~doc)

let out =
  let doc = "JSON report output path." in
  Arg.(value & opt string "BENCH_6.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "benchmark the raced solver portfolio against serial backends" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Measures per-round MCMF solve latency for each backend serially and for the \
         portfolio race on OCaml 5 domains, verifies the race winner matches the \
         serial primary, records how the domain-pool sweep mode scales with worker \
         count, and writes a JSON report.  Methodology: docs/PARALLELISM.md and \
         docs/PERFORMANCE.md.";
      `S Manpage.s_exit_status;
      `P "0 on success, 1 if the winner identity check failed.";
    ]
  in
  Cmd.v
    (Cmd.info "bench_portfolio" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ rounds $ reps $ k $ queue_horizon $ eager $ no_sweep $ sweep_cells
      $ sweep_horizon $ jobs_list $ out)

let () = exit (Cmd.eval cmd)
