(* Solver hot-path benchmark (docs/PERFORMANCE.md): measures the
   per-round flow-network construction cost with and without the
   persistent incremental builder, verifies that both paths produce
   bit-identical networks and solver results, and emits a small JSON
   report (BENCH_5.json) consumed by CI.

   Two parts:

   - [micro]: one cluster, one frozen pending-job queue.  Each round
     applies a small ledger mutation (place + release one server task,
     which marks the server dirty) and rebuilds the network, either from
     scratch (mode "full": a fresh builder every round, the legacy
     behaviour) or by patching the persistent builder (mode
     "incremental").  Build walls and GC words are accumulated per mode;
     a third pass builds both variants side by side each round and
     compares them arc by arc, then solves both and compares placements
     and objective values.

   - [e2e]: one short Experiment cell run twice, incremental on/off, and
     compared through its CSV row (byte identity end to end).

   Exit status is 1 when any identity check fails, so `make check` can
   gate on it. *)

module Clock = Prelude.Clock
module Vec = Prelude.Vec
module Rng = Prelude.Rng
module Flow_network = Hire.Flow_network
module Graph = Flow.Graph

(* ------------------------------------------------------------------ *)
(* Fixture: cluster + frozen pending queue                             *)
(* ------------------------------------------------------------------ *)

type fixture = {
  cluster : Sim.Cluster.t;
  view : Hire.View.t;
  census : Hire.Locality.Task_census.t;
  jobs : Hire.Pending.job_state list;
  now : float;
  params : Hire.Cost_model.params;
  servers : int array;
  demand : Vec.t;  (* per-round mutation charge, refunded in-round *)
}

let make_fixture ~k ~queue_horizon =
  let rng = Rng.create 1 in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  let store = Hire.Comp_store.default () in
  let services = Array.to_list (Hire.Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ~k ~setup:Sim.Cluster.Homogeneous ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:0.8 Workload.Trace_gen.default
  in
  let trace = Workload.Trace_gen.generate trace_config trace_rng ~horizon:queue_horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu:0.5 trace in
  let jobs =
    List.map (fun (_, poly) -> Hire.Pending.of_poly poly) scenario.Sim.Scenario.arrivals
  in
  let now =
    List.fold_left
      (fun acc (t, _) -> Float.max acc t)
      0.0 scenario.Sim.Scenario.arrivals
    +. 1.0
  in
  let view = Sim.Cluster.view cluster in
  let census = Hire.Locality.Task_census.create view.Hire.View.topo in
  let servers = Topology.Fat_tree.servers view.Hire.View.topo in
  let demand = Vec.scale 0.05 (Sim.Cluster.server_capacity cluster) in
  {
    cluster;
    view;
    census;
    jobs;
    now;
    params = Hire.Cost_model.default_params;
    servers;
    demand;
  }

(* One round's worth of cluster churn: charge and refund one server, so
   the ledger is net unchanged but the server lands in the dirty set —
   exactly what task arrivals/completions do between rounds. *)
let mutate fx i =
  let server = fx.servers.(i mod Array.length fx.servers) in
  Sim.Cluster.place_server_task fx.cluster ~server ~demand:fx.demand;
  Sim.Cluster.release_server_task fx.cluster ~server ~demand:fx.demand

let build_full fx =
  Flow_network.build fx.view fx.census ~jobs:fx.jobs ~now:fx.now ~params:fx.params

let build_incremental fx builder =
  Flow_network.build ~builder fx.view fx.census ~jobs:fx.jobs ~now:fx.now
    ~params:fx.params

(* ------------------------------------------------------------------ *)
(* Identity checks                                                     *)
(* ------------------------------------------------------------------ *)

let arcs_of g =
  let acc = ref [] in
  Graph.iter_arcs g (fun a ->
      acc := (Graph.src g a, Graph.dst g a, Graph.capacity g a, Graph.cost g a) :: !acc);
  List.rev !acc

let graphs_identical ga gb =
  Graph.node_count ga = Graph.node_count gb
  && Graph.arc_count ga = Graph.arc_count gb
  && arcs_of ga = arcs_of gb
  &&
  let n = Graph.node_count ga in
  let ok = ref true in
  for v = 0 to n - 1 do
    if Graph.supply ga v <> Graph.supply gb v then ok := false
  done;
  !ok

let outcomes_identical (a : Flow_network.outcome) (b : Flow_network.outcome) =
  a.placements = b.placements
  && a.flavor_picks = b.flavor_picks
  && a.solver.Flow.Mcmf.total_cost = b.solver.Flow.Mcmf.total_cost
  && a.solver.Flow.Mcmf.shipped = b.solver.Flow.Mcmf.shipped

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type pass_result = {
  wall_s : float;
  rounds_per_sec : float;
  ns_per_build : float;
  minor_words_per_round : float;
  major_words_per_round : float;
}

let timed_pass ~rounds f =
  Gc.full_major ();
  let gc0 = Gc.quick_stat () in
  let t0 = Clock.now () in
  for i = 0 to rounds - 1 do
    f i
  done;
  let wall_s = Clock.elapsed_since t0 in
  let gc1 = Gc.quick_stat () in
  let per r = r /. float_of_int rounds in
  {
    wall_s;
    rounds_per_sec = (if wall_s > 0.0 then float_of_int rounds /. wall_s else 0.0);
    ns_per_build = per (wall_s *. 1e9);
    minor_words_per_round = per (gc1.Gc.minor_words -. gc0.Gc.minor_words);
    major_words_per_round = per (gc1.Gc.major_words -. gc0.Gc.major_words);
  }

type micro_result = {
  full : pass_result;
  incremental : pass_result;
  identical : bool;
  verify_rounds : int;
  stats : Flow_network.build_stats;
}

let run_micro fx ~rounds ~verify_rounds =
  (* Mode "full": a fresh arena every round (legacy path). *)
  let full = timed_pass ~rounds (fun i -> mutate fx i; ignore (build_full fx)) in
  (* Mode "incremental": persistent builder, patched per round.  The
     first build is a full rebuild (cold builder); everything after
     patches the prefix in place. *)
  let builder = Flow_network.create_builder () in
  ignore (build_incremental fx builder);
  let incremental =
    timed_pass ~rounds (fun i -> mutate fx i; ignore (build_incremental fx builder))
  in
  (* Identity pass: the incremental build must be arc-for-arc identical
     to a from-scratch build of the same state, and solve to the same
     placements and objective.  The incremental build runs first (it
     consumes the round's dirty set); the fresh build never needs it.
     The solve leaves flow on the persistent graph on purpose — the next
     patch must recover from it, as it does after every real round. *)
  let scratch = Flow.Mcmf.scratch () in
  let identical = ref true in
  let last_stats = ref (Flow_network.stats (build_incremental fx builder)) in
  for i = 0 to verify_rounds - 1 do
    mutate fx i;
    let net_inc = build_incremental fx builder in
    let net_full = build_full fx in
    if not (graphs_identical (Flow_network.graph net_inc) (Flow_network.graph net_full))
    then identical := false;
    let out_inc = Flow_network.solve_and_extract ~scratch net_inc in
    let out_full = Flow_network.solve_and_extract net_full in
    if not (outcomes_identical out_inc out_full) then identical := false;
    last_stats := Flow_network.stats net_inc
  done;
  { full; incremental; identical = !identical; verify_rounds; stats = !last_stats }

type e2e_result = { identical : bool; wall_s_full : float; wall_s_incremental : float }

(* One full simulation cell with per-round placement logging.  Identity
   is judged on the placement log (every round's decisions, in order)
   plus the CSV row with the measured solver-wall column masked — wall
   clock is the one legitimately nondeterministic column. *)
let run_cell ~incremental ~k ~horizon =
  let rng = Rng.create 1 in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  let store = Hire.Comp_store.default () in
  let services = Array.to_list (Hire.Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ~inc_capable_fraction:0.15 ~k ~setup:Sim.Cluster.Homogeneous
      ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:0.8 Workload.Trace_gen.default
  in
  let trace = Workload.Trace_gen.generate trace_config trace_rng ~horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu:0.5 trace in
  let sched = Schedulers.Registry.create ~incremental "hire" ~seed:1 cluster in
  let log = Buffer.create 4096 in
  let wrapped =
    {
      sched with
      Sim.Scheduler_intf.round =
        (fun ~time ->
          let r = sched.Sim.Scheduler_intf.round ~time in
          Buffer.add_string log (Printf.sprintf "t=%.6f" time);
          List.iter
            (fun (p : Sim.Scheduler_intf.placement) ->
              Buffer.add_string log
                (Printf.sprintf " %d->%d" p.tg.Hire.Poly_req.tg_id p.machine))
            r.Sim.Scheduler_intf.placements;
          Buffer.add_char log '\n';
          r);
    }
  in
  let t0 = Clock.now () in
  let result = Sim.Simulator.run cluster wrapped scenario.Sim.Scenario.arrivals in
  let wall = Clock.elapsed_since t0 in
  let row =
    Sim.Csv_export.row ~scheduler:"hire" ~mu:0.5 ~setup:Sim.Cluster.Homogeneous ~seed:1
      result.Sim.Simulator.report
  in
  (* Mask the solver_p50_ms column (index 19 of the base header). *)
  let row_masked =
    String.split_on_char ',' row
    |> List.mapi (fun i c -> if i = 19 then "_" else c)
    |> String.concat ","
  in
  (Buffer.contents log, row_masked, wall)

let run_e2e ~k ~horizon =
  let log_full, row_full, wall_s_full = run_cell ~incremental:false ~k ~horizon in
  let log_inc, row_inc, wall_s_incremental = run_cell ~incremental:true ~k ~horizon in
  if not (String.equal log_full log_inc) then begin
    let a = String.split_on_char '\n' log_full and b = String.split_on_char '\n' log_inc in
    Printf.eprintf "e2e: placement logs differ (%d vs %d rounds)\n" (List.length a)
      (List.length b);
    (try
       List.iteri
         (fun i la ->
           let lb = List.nth b i in
           if not (String.equal la lb) then begin
             Printf.eprintf "  first diff at round %d:\n    full: %s\n    incr: %s\n" i la lb;
             raise Exit
           end)
         a
     with Exit | Failure _ -> ())
  end
  else if not (String.equal row_full row_inc) then
    Printf.eprintf "e2e: rows differ\n  full: %s\n  incr: %s\n" row_full row_inc;
  {
    identical = String.equal log_full log_inc && String.equal row_full row_inc;
    wall_s_full;
    wall_s_incremental;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let json_of_pass (p : pass_result) =
  Printf.sprintf
    "{ \"wall_s\": %.6f, \"rounds_per_sec\": %.1f, \"ns_per_build\": %.0f, \
     \"minor_words_per_round\": %.0f, \"major_words_per_round\": %.0f }"
    p.wall_s p.rounds_per_sec p.ns_per_build p.minor_words_per_round
    p.major_words_per_round

let write_json path ~k ~rounds ~n_jobs (m : micro_result) (e : e2e_result option) =
  let oc = open_out path in
  let speedup =
    if m.incremental.ns_per_build > 0.0 then m.full.ns_per_build /. m.incremental.ns_per_build
    else 0.0
  in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"bench_solver\",\n";
  Printf.fprintf oc "  \"k\": %d,\n  \"rounds\": %d,\n  \"pending_jobs\": %d,\n" k rounds
    n_jobs;
  Printf.fprintf oc "  \"identical\": %b,\n"
    (m.identical && match e with None -> true | Some e -> e.identical);
  Printf.fprintf oc "  \"micro\": {\n";
  Printf.fprintf oc "    \"full\": %s,\n" (json_of_pass m.full);
  Printf.fprintf oc "    \"incremental\": %s,\n" (json_of_pass m.incremental);
  Printf.fprintf oc "    \"build_speedup\": %.2f,\n" speedup;
  Printf.fprintf oc "    \"verify_rounds\": %d,\n" m.verify_rounds;
  Printf.fprintf oc "    \"last_build_full\": %b,\n" m.stats.Flow_network.full;
  Printf.fprintf oc "    \"touched_arcs\": %d,\n" m.stats.Flow_network.touched_arcs;
  Printf.fprintf oc "    \"total_arcs\": %d,\n" m.stats.Flow_network.total_arcs;
  Printf.fprintf oc "    \"builds\": %d,\n" m.stats.Flow_network.builds;
  Printf.fprintf oc "    \"full_rebuilds\": %d\n" m.stats.Flow_network.full_rebuilds;
  Printf.fprintf oc "  }%s\n" (if e = None then "" else ",");
  (match e with
  | None -> ()
  | Some e ->
      Printf.fprintf oc
        "  \"e2e\": { \"identical\": %b, \"wall_s_full\": %.3f, \
         \"wall_s_incremental\": %.3f }\n"
        e.identical e.wall_s_full e.wall_s_incremental);
  Printf.fprintf oc "}\n";
  close_out oc

let run rounds k queue_horizon e2e_horizon no_e2e out =
  let fx = make_fixture ~k ~queue_horizon in
  let n_jobs = List.length fx.jobs in
  Printf.printf "bench_solver: k=%d rounds=%d pending-jobs=%d\n%!" k rounds n_jobs;
  let micro = run_micro fx ~rounds ~verify_rounds:(max 10 (rounds / 10)) in
  let pp_pass name (p : pass_result) =
    Printf.printf
      "  %-12s %10.1f rounds/s  %10.0f ns/build  minor %10.0f w/round  major %8.0f \
       w/round\n"
      name p.rounds_per_sec p.ns_per_build p.minor_words_per_round p.major_words_per_round
  in
  pp_pass "full" micro.full;
  pp_pass "incremental" micro.incremental;
  Printf.printf "  build speedup: %.2fx  (touched %d / %d arcs; %d/%d full rebuilds)\n"
    (micro.full.ns_per_build /. Float.max 1e-9 micro.incremental.ns_per_build)
    micro.stats.Flow_network.touched_arcs micro.stats.Flow_network.total_arcs
    micro.stats.Flow_network.full_rebuilds micro.stats.Flow_network.builds;
  Printf.printf "  identity (%d rounds, graphs + solves): %s\n" micro.verify_rounds
    (if micro.identical then "OK" else "MISMATCH");
  let e2e =
    if no_e2e then None
    else begin
      let e = run_e2e ~k ~horizon:e2e_horizon in
      Printf.printf "  e2e (horizon %.0fs): full %.3fs, incremental %.3fs, rows %s\n"
        e2e_horizon e.wall_s_full e.wall_s_incremental
        (if e.identical then "identical" else "MISMATCH");
      Some e
    end
  in
  write_json out ~k ~rounds ~n_jobs micro e2e;
  Printf.printf "report written to %s\n" out;
  let ok = micro.identical && match e2e with None -> true | Some e -> e.identical in
  if not ok then begin
    Printf.eprintf "bench_solver: identity check FAILED\n";
    exit 1
  end

open Cmdliner

let rounds =
  let doc = "Timed build rounds per mode." in
  Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc)

let k =
  let doc = "Fat-tree arity of the benchmark cluster." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let queue_horizon =
  let doc =
    "Trace horizon (seconds) used to generate the frozen pending-job queue.  The \
     default keeps the queue small, matching the steady-state rounds of a real \
     simulation; large values shift the cost into the per-round job part, which both \
     modes rebuild."
  in
  Arg.(value & opt float 10.0 & info [ "queue-horizon" ] ~docv:"SECONDS" ~doc)

let e2e_horizon =
  let doc = "Horizon of the end-to-end comparison cell." in
  Arg.(value & opt float 120.0 & info [ "e2e-horizon" ] ~docv:"SECONDS" ~doc)

let no_e2e =
  let doc = "Skip the end-to-end experiment comparison (micro only)." in
  Arg.(value & flag & info [ "no-e2e" ] ~doc)

let out =
  let doc = "JSON report output path." in
  Arg.(value & opt string "BENCH_5.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "benchmark incremental flow-network maintenance against full rebuilds" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Measures per-round network construction with and without the persistent \
         incremental builder, verifies bit-identity of the two paths (graphs, \
         placements, objective values), and writes a JSON report.  Methodology: \
         docs/PERFORMANCE.md.";
      `S Manpage.s_exit_status;
      `P "0 on success, 1 if any identity check failed.";
    ]
  in
  Cmd.v
    (Cmd.info "bench_solver" ~version:"1.0" ~doc ~man)
    Term.(const run $ rounds $ k $ queue_horizon $ e2e_horizon $ no_e2e $ out)

let () = exit (Cmd.eval cmd)
