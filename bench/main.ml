(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) on the scaled-down default setup (see DESIGN.md §5).

   - [tab3]      the CompStore INC catalogue (configuration table)
   - [fig7]      MCMF solver speed distributions at different INC ratios μ
   - [fig8a-8e]  homogeneous switches: satisfied INC jobs, unallocated INC
                 task groups (HIRE), switch detours, switch usage (μ=1),
                 placement-latency CCDF (μ=1)
   - [fig8f-8j]  the same five metrics with heterogeneous switches
   - [bechamel]  micro-benchmarks of the MCMF substrate

   Absolute numbers differ from the paper (its testbed replayed 36 h of a
   4000-machine trace); the reproduction target is the *shape*: ordering
   of schedulers, approximate factors, and crossovers.

   Environment knobs:
     HIRE_BENCH_FAST=1     smaller sweep (smoke-test the harness)
     HIRE_BENCH_SEEDS=n    number of seeds per cell (default 3, as in the paper)
     HIRE_BENCH_HORIZON=s  trace length in seconds (default 400)
     HIRE_BENCH_TRACE=f    enable instrumentation, stream JSONL trace events to f
     HIRE_BENCH_OBS=1      enable instrumentation, print the registry summary at exit
     HIRE_BENCH_FAULTS=1   also run the fault-injection cell (scheduling under churn) *)

module Metrics = Sim.Metrics
module Experiment = Harness.Experiment
module Stats = Prelude.Stats

let fast = Sys.getenv_opt "HIRE_BENCH_FAST" <> None

let seeds =
  let n =
    match Sys.getenv_opt "HIRE_BENCH_SEEDS" with
    | Some s -> (try int_of_string s with _ -> 3)
    | None -> if fast then 1 else 3 (* the paper runs three seeds per cell *)
  in
  List.init (max 1 n) (fun i -> i + 1)

let horizon =
  match Sys.getenv_opt "HIRE_BENCH_HORIZON" with
  | Some s -> (try float_of_string s with _ -> 400.0)
  | None -> if fast then 120.0 else 400.0

let mus = if fast then [ 0.25; 1.0 ] else [ 0.05; 0.25; 0.5; 0.75; 1.0 ]

let schedulers =
  [
    "hire";
    "hire-simple";
    "yarn-concurrent";
    "k8-concurrent";
    "sparrow-concurrent";
    "coco-timeout";
  ]

let spec ~scheduler ~mu ~setup ~seed =
  { Experiment.default with scheduler; mu; setup; seed; horizon }

(* ------------------------------------------------------------------ *)
(* Result store: every figure reads from one sweep, executed upfront   *)
(* by the parallel runner (lib/runner; HIRE_BENCH_JOBS worker          *)
(* processes, docs/RUNNER.md).                                         *)
(* ------------------------------------------------------------------ *)

let jobs =
  match Sys.getenv_opt "HIRE_BENCH_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

let trace_path = Sys.getenv_opt "HIRE_BENCH_TRACE"
let obs_summary = Sys.getenv_opt "HIRE_BENCH_OBS" <> None

(* Forked workers keep their obs registry/trace buffers to themselves,
   so instrumented runs fall back to in-process execution. *)
let isolate = trace_path = None && not obs_summary

let faults_enabled = Sys.getenv_opt "HIRE_BENCH_FAULTS" <> None

(* Aggressive churn relative to the trace: several fail/recover cycles
   per node per run, so requeue throughput dominates the numbers. *)
let fault_spec =
  {
    Faults.plan =
      {
        Faults.Plan.default_config with
        server_mtbf = 120.0;
        switch_mtbf = 240.0;
        server_mttr = 15.0;
        switch_mttr = 15.0;
      };
    policy = Faults.Policy.default;
  }

let base = { Experiment.default with horizon }

(* The cells the figures need, in the order the tables print them (and
   the order the CSV rows are written in). *)
let main_specs =
  Experiment.sweep base
    ~setups:[ Sim.Cluster.Homogeneous; Sim.Cluster.Heterogeneous ]
    ~schedulers ~mus ~seeds

(* Fig. 7 adds a dedicated mu=0 HIRE run; the ablations add the three
   variants the main sweep does not cover. *)
let fig7_specs =
  Experiment.sweep base ~schedulers:[ "hire" ] ~mus:[ 0.0 ]
    ~setups:[ Sim.Cluster.Homogeneous ] ~seeds

let ablation_specs =
  Experiment.sweep base
    ~schedulers:[ "hire-noloc"; "hire-noshare"; "hire-scaling" ]
    ~mus:[ 1.0 ] ~setups:[ Sim.Cluster.Homogeneous ] ~seeds

let fault_specs =
  if not faults_enabled then []
  else
    Experiment.sweep
      { base with faults = Some fault_spec }
      ~schedulers ~mus:[ 0.5 ]
      ~setups:[ Sim.Cluster.Homogeneous ]
      ~seeds

let dedup specs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun s ->
      let k = Experiment.cell_key s in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    specs

let csv_specs = dedup (main_specs @ fig7_specs @ ablation_specs)
let all_specs = dedup (csv_specs @ fault_specs)

let results : (string, Metrics.report) Hashtbl.t = Hashtbl.create 512

(* Failed/missing cells recompute inline so one bad cell cannot hole a
   table; prime makes this the exception, not the path. *)
let report_for s =
  let key = Experiment.cell_key s in
  match Hashtbl.find_opt results key with
  | Some r -> r
  | None ->
      let r = Experiment.run s in
      Hashtbl.replace results key r;
      r

let prime () =
  let outcomes, stats =
    Runner.run ~jobs ~isolate ~key:Experiment.cell_key ~label:Experiment.describe
      ~log:(fun line -> Printf.eprintf "  %s\n%!" line)
      ~f:Experiment.run all_specs
  in
  List.iter2
    (fun s (o : _ Runner.outcome) ->
      match o.result with
      | Ok r -> Hashtbl.replace results o.key r
      | Error reason ->
          Printf.eprintf "  [runner] cell %s failed (%s); will recompute inline\n%!"
            (Experiment.describe s)
            (Runner.Pool.reason_to_string reason))
    all_specs outcomes;
  Printf.eprintf "  [runner] sweep: %s\n%!" (Format.asprintf "%a" Runner.pp_stats stats)

type cell = { reports : Metrics.report list }

let cell ~scheduler ~mu ~setup =
  { reports = List.map (fun seed -> report_for (spec ~scheduler ~mu ~setup ~seed)) seeds }

let mean_of ~scheduler ~mu ~setup f =
  Stats.mean (List.map f (cell ~scheduler ~mu ~setup).reports)

(* Pools a per-report histogram across the cell's seeds. *)
let merged_of ~scheduler ~mu ~setup f =
  Obs.Histogram.merged (List.map f (cell ~scheduler ~mu ~setup).reports)

(* ------------------------------------------------------------------ *)
(* Printing helpers                                                   *)
(* ------------------------------------------------------------------ *)

let header title description =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title description

let print_sweep_table ~tag ~metric ~setup f =
  Printf.printf "\n[%s] %s (%s switches)\n" tag metric
    (Sim.Cluster.inc_setup_to_string setup);
  Printf.printf "%-20s" "scheduler \\ mu";
  List.iter (fun mu -> Printf.printf "%10.2f" mu) mus;
  print_newline ();
  List.iter
    (fun scheduler ->
      Printf.printf "%-20s" scheduler;
      List.iter (fun mu -> Printf.printf "%10.3f" (mean_of ~scheduler ~mu ~setup f)) mus;
      print_newline ())
    schedulers

(* ------------------------------------------------------------------ *)
(* Tab. 3: the INC catalogue                                          *)
(* ------------------------------------------------------------------ *)

let tab3 () =
  header "[tab3] INC approaches in the CompStore (paper Tab. 3)"
    "Switch counts for |G|=100, per-switch (sharable) and per-instance demands.";
  let store = Hire.Comp_store.default () in
  Printf.printf "%-12s %-10s %-11s %9s   %-22s %s\n" "name" "feature" "shape" "|switches|"
    "per-switch [rc;st;MB]" "per-instance lo..hi";
  List.iter
    (fun (svc : Hire.Comp_store.inc_service) ->
      let lo, hi = svc.per_instance_range ~group_size:100 in
      Printf.printf "%-12s %-10s %-11s %9d   %-22s %s .. %s\n" svc.name
        (Hire.Comp_store.feature_to_string svc.feature)
        (Hire.Comp_store.shape_to_string svc.shape)
        (svc.switch_count ~group_size:100)
        (Prelude.Vec.to_string svc.per_switch)
        (Prelude.Vec.to_string lo) (Prelude.Vec.to_string hi))
    (Hire.Comp_store.services store)

(* ------------------------------------------------------------------ *)
(* Fig. 7: solver speed                                               *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "[fig7] HIRE MCMF solver speed vs INC ratio (paper Fig. 7)"
    "Wall-clock per MCMF solve, sampled during the homogeneous HIRE runs.\n\
     Paper shape: solve time stays in the same order across mu; higher INC\n\
     demand does not slow the solver down (smaller switch part).";
  let mus7 = 0.0 :: mus in
  Printf.printf "\n%-6s %8s %10s %10s %10s %10s %10s\n" "mu" "solves" "p10(ms)" "p50(ms)"
    "p90(ms)" "p99(ms)" "max(ms)";
  List.iter
    (fun mu ->
      let h =
        merged_of ~scheduler:"hire" ~mu ~setup:Sim.Cluster.Homogeneous (fun r ->
            r.Metrics.solver_wall)
      in
      if Obs.Histogram.count h > 0 then begin
        let p q = 1000.0 *. Obs.Histogram.quantile h q in
        Printf.printf "%-6.2f %8d %10.3f %10.3f %10.3f %10.3f %10.3f\n" mu
          (Obs.Histogram.count h) (p 0.10) (p 0.50) (p 0.90) (p 0.99)
          (1000.0 *. Obs.Histogram.max_value h)
      end)
    mus7;
  (* CDF/CCDF rows for the mu extremes, as in the figure. *)
  List.iter
    (fun mu ->
      let h =
        merged_of ~scheduler:"hire" ~mu ~setup:Sim.Cluster.Homogeneous (fun r ->
            r.Metrics.solver_wall)
      in
      if Obs.Histogram.count h > 0 then begin
        Printf.printf "\nCDF of solver time (ms) at mu=%.2f:\n  " mu;
        List.iter
          (fun (v, f) -> Printf.printf "(%.3f, %.2f) " (1000.0 *. v) f)
          (Obs.Histogram.cdf_points ~points:10 h);
        print_newline ()
      end)
    [ List.hd mus7; List.nth mus7 (List.length mus7 - 1) ]

(* ------------------------------------------------------------------ *)
(* Fig. 8                                                             *)
(* ------------------------------------------------------------------ *)

let fig8_satisfied ~tag ~setup =
  header
    (Printf.sprintf "[%s] Satisfied INC jobs vs mu (paper Fig. 8%s)" tag
       (if setup = Sim.Cluster.Homogeneous then "a" else "f"))
    "Ratio of INC-requesting jobs whose network task groups ran with INC.\n\
     Paper shape: HIRE highest and degrading least as mu -> 1; K8++ the\n\
     best baseline; Sparrow++ lowest; hire-simple below hire.";
  print_sweep_table ~tag ~metric:"satisfied INC jobs" ~setup Metrics.inc_satisfaction_ratio

let fig8_unserved_tgs ~tag ~setup =
  header
    (Printf.sprintf "[%s] Unallocated INC task groups, HIRE (paper Fig. 8%s)" tag
       (if setup = Sim.Cluster.Homogeneous then "b" else "g"))
    "Ratio of requested network task groups HIRE did not serve with INC —\n\
     checks that job-level success is not bought by rejecting task groups.";
  Printf.printf "\n%-20s" "scheduler \\ mu";
  List.iter (fun mu -> Printf.printf "%10.2f" mu) mus;
  print_newline ();
  List.iter
    (fun scheduler ->
      Printf.printf "%-20s" scheduler;
      List.iter
        (fun mu -> Printf.printf "%10.3f" (mean_of ~scheduler ~mu ~setup Metrics.inc_tg_unserved_ratio))
        mus;
      print_newline ())
    [ "hire"; "hire-simple" ]

let fig8_detours ~tag ~setup =
  header
    (Printf.sprintf "[%s] Switch detours vs mu (paper Fig. 8%s)" tag
       (if setup = Sim.Cluster.Homogeneous then "c" else "h"))
    "Mean extra topology levels needed to cover a job's switches beyond its\n\
     servers.  Paper shape: HIRE/flow-based low; Yarn++ by far the worst\n\
     (rack-aware servers + locality-unaware INC).";
  print_sweep_table ~tag ~metric:"switch detours" ~setup (fun r -> r.Metrics.detour_mean);
  Printf.printf
    "\nCompanion metric — fabric span (levels covering servers+switches; schedulers\n\
     that scatter servers across the fabric show zero detour only because their\n\
     jobs already span everything):\n";
  print_sweep_table ~tag ~metric:"fabric span (levels)" ~setup (fun r -> r.Metrics.span_mean)

let fig8_switch_usage ~tag ~setup =
  header
    (Printf.sprintf "[%s] Switch resource usage at mu=1 (paper Fig. 8%s)" tag
       (if setup = Sim.Cluster.Homogeneous then "d" else "i"))
    "Time-weighted used fraction per switch dimension across the run.\n\
     Paper shape: SRAM is the bottleneck dimension; HIRE uses fewer stages\n\
     than the baselines while serving more INC (resource sharing).";
  Printf.printf "\n%-20s %10s %10s %10s\n" "scheduler" "recirc" "stages" "sram";
  List.iter
    (fun scheduler ->
      let dim i =
        mean_of ~scheduler ~mu:1.0 ~setup (fun r -> r.Metrics.switch_load.(i))
      in
      Printf.printf "%-20s %10.4f %10.4f %10.4f\n" scheduler (dim 0) (dim 1) (dim 2))
    schedulers

let fig8_latency ~tag ~setup =
  header
    (Printf.sprintf "[%s] Placement latency CCDF at mu=1 (paper Fig. 8%s)" tag
       (if setup = Sim.Cluster.Homogeneous then "e" else "j"))
    "Complementary CDF of task-group placement latency (s).  Paper shape:\n\
     HIRE has the shortest tail among schedulers serving comparable INC\n\
     volume (50-60% shorter than the best baseline).";
  Printf.printf "\n%-20s %8s %10s %10s %10s %10s %10s\n" "scheduler" "samples" "p50" "p90"
    "p99" "p99.9" "max";
  List.iter
    (fun scheduler ->
      let h = merged_of ~scheduler ~mu:1.0 ~setup (fun r -> r.Metrics.placement_latency) in
      if Obs.Histogram.count h > 0 then begin
        let p q = Obs.Histogram.quantile h q in
        Printf.printf "%-20s %8d %10.3f %10.3f %10.3f %10.3f %10.3f\n" scheduler
          (Obs.Histogram.count h) (p 0.50) (p 0.90) (p 0.99) (p 0.999)
          (Obs.Histogram.max_value h)
      end)
    schedulers;
  Printf.printf "\nCCDF points (latency s, fraction above) at mu=1:\n";
  List.iter
    (fun scheduler ->
      let h = merged_of ~scheduler ~mu:1.0 ~setup (fun r -> r.Metrics.placement_latency) in
      if Obs.Histogram.count h > 0 then begin
        Printf.printf "%-20s " scheduler;
        List.iter
          (fun (v, f) -> Printf.printf "(%.2f, %.3f) " v f)
          (Obs.Histogram.ccdf_points ~points:8 h);
        print_newline ()
      end)
    schedulers

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "[ablation] HIRE design-choice ablations at mu=1 (homogeneous)"
    "DESIGN.md's called-out choices: flexible vs simple flavor logic (the\n\
     paper's ablation, Fig. 8a), locality cost terms, non-linear sharing,\n\
     and the MCMF algorithm (SSP vs cost scaling; results must agree).";
  Printf.printf "\n%-16s %12s %12s %10s %10s %12s\n" "variant" "inc-served" "tg-unserved"
    "detour" "stages" "lat-p99(s)";
  List.iter
    (fun scheduler ->
      let c = cell ~scheduler ~mu:1.0 ~setup:Sim.Cluster.Homogeneous in
      let mean f = Stats.mean (List.map f c.reports) in
      let lats = Obs.Histogram.merged (List.map (fun r -> r.Metrics.placement_latency) c.reports) in
      Printf.printf "%-16s %12.3f %12.3f %10.3f %10.4f %12.2f\n" scheduler
        (mean Metrics.inc_satisfaction_ratio)
        (mean Metrics.inc_tg_unserved_ratio)
        (mean (fun r -> r.Metrics.detour_mean))
        (mean (fun r -> r.Metrics.switch_load.(1)))
        (if Obs.Histogram.count lats = 0 then 0.0 else Obs.Histogram.quantile lats 0.99))
    [ "hire"; "hire-simple"; "hire-noloc"; "hire-noshare"; "hire-scaling" ]

(* ------------------------------------------------------------------ *)
(* Faults: scheduling throughput under churn (HIRE_BENCH_FAULTS=1)    *)
(* ------------------------------------------------------------------ *)

let fault_bench () =
  header "[faults] scheduling under churn (HIRE_BENCH_FAULTS)"
    "Seeded MTBF/MTTR fault plan at mu=0.5, homogeneous switches; killed task\n\
     groups are requeued with exponential backoff (docs/FAULTS.md).";
  Printf.printf "%-20s %8s %8s %8s %8s %8s %8s %12s %12s\n" "scheduler" "inc-sat" "tgs-sat"
    "fails" "killed" "requeue" "cancel" "resched-p50" "downtime-p50";
  List.iter
    (fun scheduler ->
      let reports =
        List.map
          (fun seed ->
            report_for
              {
                (spec ~scheduler ~mu:0.5 ~setup:Sim.Cluster.Homogeneous ~seed) with
                faults = Some fault_spec;
              })
          seeds
      in
      let mean f = Experiment.mean_over f reports in
      let p50 h = if Obs.Histogram.count h = 0 then 0.0 else Obs.Histogram.quantile h 0.5 in
      let resched =
        Obs.Histogram.merged (List.map (fun (r : Metrics.report) -> r.time_to_reschedule) reports)
      in
      let downtime =
        Obs.Histogram.merged (List.map (fun (r : Metrics.report) -> r.node_downtime) reports)
      in
      Printf.printf "%-20s %8.3f %8.1f %8.1f %8.1f %8.1f %8.1f %12.3f %12.3f\n" scheduler
        (mean Metrics.inc_satisfaction_ratio)
        (mean (fun r -> float_of_int r.Metrics.tgs_satisfied))
        (mean (fun r -> float_of_int r.Metrics.node_fails))
        (mean (fun r -> float_of_int r.Metrics.tasks_killed))
        (mean (fun r -> float_of_int r.Metrics.requeues))
        (mean (fun r -> float_of_int r.Metrics.fault_cancels))
        (p50 resched) (p50 downtime))
    schedulers

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the substrates                        *)
(* ------------------------------------------------------------------ *)

let bechamel_benches () =
  header "[bechamel] substrate micro-benchmarks"
    "MCMF solves on scheduling-shaped instances and HIRE flow-network\n\
     construction; monotonic-clock medians via bechamel.";
  let open Bechamel in
  let mcmf_instance n_tasks n_machines =
    Staged.stage (fun () ->
        let g = Flow.Graph.create () in
        let tasks = Array.init n_tasks (fun _ -> Flow.Graph.add_node g) in
        let machines = Array.init n_machines (fun _ -> Flow.Graph.add_node g) in
        let unsched = Flow.Graph.add_node g in
        let sink = Flow.Graph.add_node g in
        Array.iter (fun t -> Flow.Graph.set_supply g t 1) tasks;
        Flow.Graph.set_supply g sink (-n_tasks);
        Array.iteri
          (fun i t ->
            ignore (Flow.Graph.add_arc g ~src:t ~dst:unsched ~cap:1 ~cost:50);
            Array.iteri
              (fun j m ->
                if (i + j) mod 3 <> 0 then
                  ignore (Flow.Graph.add_arc g ~src:t ~dst:m ~cap:1 ~cost:((i * j) mod 37)))
              machines)
          tasks;
        Array.iter
          (fun m -> ignore (Flow.Graph.add_arc g ~src:m ~dst:sink ~cap:1 ~cost:0))
          machines;
        ignore (Flow.Graph.add_arc g ~src:unsched ~dst:sink ~cap:n_tasks ~cost:0);
        ignore (Flow.Mcmf.solve g))
  in
  let build_and_solve_network =
    Staged.stage (fun () ->
        let store = Hire.Comp_store.default () in
        let rng = Prelude.Rng.create 42 in
        let cluster =
          Sim.Cluster.create ~k:4 ~setup:Sim.Cluster.Homogeneous
            ~services:(Array.to_list (Hire.Comp_store.service_names store))
            rng
        in
        let ids = Hire.Transformer.Id_gen.create () in
        let jobs =
          List.init 8 (fun i ->
              let req =
                {
                  Hire.Comp_req.priority = Workload.Job.Batch;
                  composites =
                    [
                      {
                        Hire.Comp_req.comp_id = "c";
                        template = "coordinator";
                        base =
                          { Hire.Comp_req.instances = 6; cpu = 2.0; mem = 4.0; duration = 30.0 };
                        inc_alternatives = [ "netchain" ];
                      };
                    ];
                  connections = [];
                }
              in
              Hire.Pending.of_poly
                (Hire.Transformer.transform store ids rng ~job_id:i ~arrival:0.0 req))
        in
        let census = Hire.Locality.Task_census.create (Sim.Cluster.topo cluster) in
        let net =
          Hire.Flow_network.build (Sim.Cluster.view cluster) census ~jobs ~now:2.5
            ~params:Hire.Cost_model.default_params
        in
        ignore (Hire.Flow_network.solve_and_extract net))
  in
  let tests =
    [
      Test.make ~name:"mcmf/assignment-50x50" (mcmf_instance 50 50);
      Test.make ~name:"mcmf/assignment-200x100" (mcmf_instance 200 100);
      Test.make ~name:"hire/flow-network-build+solve-k4" build_and_solve_network;
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Main                                                               *)
(* ------------------------------------------------------------------ *)

let csv_path = Filename.concat "results" "bench_results.csv"

let () =
  if trace_path <> None || obs_summary then Obs.set_enabled true;
  (match trace_path with Some f -> Obs.Trace.open_jsonl f | None -> ());
  Printf.printf "HIRE reproduction benchmark harness\n";
  Printf.printf "seeds=%d horizon=%.0fs mus=[%s] fat-tree k=%d jobs=%d%s\n"
    (List.length seeds) horizon
    (String.concat "; " (List.map (Printf.sprintf "%.2f") mus))
    Experiment.default.Experiment.k jobs
    (if isolate then "" else " (instrumented: cells run in-process)");
  prime ();
  tab3 ();
  let homog = Sim.Cluster.Homogeneous and het = Sim.Cluster.Heterogeneous in
  (* Homogeneous block (Fig. 8a-8e). *)
  fig8_satisfied ~tag:"fig8a" ~setup:homog;
  fig8_unserved_tgs ~tag:"fig8b" ~setup:homog;
  fig8_detours ~tag:"fig8c" ~setup:homog;
  fig8_switch_usage ~tag:"fig8d" ~setup:homog;
  fig8_latency ~tag:"fig8e" ~setup:homog;
  (* Heterogeneous block (Fig. 8f-8j). *)
  fig8_satisfied ~tag:"fig8f" ~setup:het;
  fig8_unserved_tgs ~tag:"fig8g" ~setup:het;
  fig8_detours ~tag:"fig8h" ~setup:het;
  fig8_switch_usage ~tag:"fig8i" ~setup:het;
  fig8_latency ~tag:"fig8j" ~setup:het;
  (* Fig. 7 uses the solver samples collected by the HIRE runs above plus
     a dedicated mu=0 run. *)
  fig7 ();
  ablations ();
  if faults_enabled then fault_bench ();
  bechamel_benches ();
  Runner.Cache.ensure_dir "results";
  Sim.Csv_export.write_file csv_path
    (List.map
       (fun (s : Experiment.spec) ->
         Sim.Csv_export.row ~scheduler:s.scheduler ~mu:s.mu ~setup:s.setup ~seed:s.seed
           (report_for s))
       csv_specs);
  Printf.printf "\nper-cell rows written to %s\n" csv_path;
  if obs_summary then begin
    Printf.printf "\n--- observability summary ---\n";
    Format.printf "%a%!" Obs.Registry.pp_summary ()
  end;
  (match trace_path with
  | Some f ->
      Obs.Trace.close_jsonl ();
      Printf.printf "\ntrace events written to %s\n" f
  | None -> ());
  Printf.printf "\ndone.\n"
