(* Tests for the solver-resilience layer (docs/RESILIENCE.md): solve
   budgets and graceful degradation on both MCMF backends, the chaos
   harness, the runtime invariant guard, the greedy last-rung placer,
   and end-to-end runs under pathological budgets.

   Chaos state is pinned explicitly in every test ([Chaos.deactivate] /
   [Chaos.activate ~seed] under [Fun.protect]), so the suite behaves
   identically whether or not HIRE_CHAOS is set in the environment. *)

module Graph = Flow.Graph
module Mcmf = Flow.Mcmf
module Cost_scaling = Flow.Cost_scaling
module Budget = Flow.Budget
module Chaos = Flow.Chaos
module Verify = Flow.Verify
module Guard = Hire.Guard
module Pending = Hire.Pending
module Poly_req = Hire.Poly_req
module Cost_model = Hire.Cost_model
module Comp_req = Hire.Comp_req
module Comp_store = Hire.Comp_store
module Transformer = Hire.Transformer
module Vec = Prelude.Vec
module Rng = Prelude.Rng

let store = Comp_store.default ()

let make_cluster ?(k = 4) ?(setup = Sim.Cluster.Homogeneous) ?(fraction = 1.0) ?(seed = 3)
    () =
  Sim.Cluster.create ~inc_capable_fraction:fraction ~k ~setup
    ~services:(Array.to_list (Comp_store.service_names store))
    (Rng.create seed)

let server_only_req ?(cpu = 2.0) n =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = "server";
          base = { Comp_req.instances = n; cpu; mem = 4.0; duration = 30.0 };
          inc_alternatives = [];
        };
      ];
    connections = [];
  }

let inc_req ?(service = "netchain") ?(n = 10) () =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = Option.get (Comp_store.template_of_service store service);
          base = { Comp_req.instances = n; cpu = 2.0; mem = 4.0; duration = 30.0 };
          inc_alternatives = [ service ];
        };
      ];
    connections = [];
  }

(* n unit paths s -> m_i -> t with distinct costs: SSP needs exactly n
   augmentations, so step budgets cut it at a known prefix. *)
let fan_graph n =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  for i = 1 to n do
    let m = Graph.add_node g in
    ignore (Graph.add_arc g ~src:s ~dst:m ~cap:1 ~cost:i);
    ignore (Graph.add_arc g ~src:m ~dst:t ~cap:1 ~cost:1)
  done;
  Graph.set_supply g s n;
  Graph.set_supply g t (-n);
  g

(* ------------------------------------------------------------------ *)
(* Budgets on the SSP backend                                          *)
(* ------------------------------------------------------------------ *)

let test_ssp_step_budget_partial () =
  Chaos.deactivate ();
  let g = fan_graph 8 in
  let r = Mcmf.solve ~budget:(Budget.make ~max_steps:3 ()) g in
  Alcotest.(check bool) "degraded" true r.Mcmf.degraded;
  Alcotest.(check int) "shipped = step budget" 3 r.Mcmf.shipped;
  Alcotest.(check int) "unshipped remainder" 5 r.Mcmf.unshipped;
  (* The partial flow is a valid min-cost flow for its value. *)
  (match Verify.check g with
  | Ok () -> ()
  | Error v -> Alcotest.failf "partial flow invalid: %a" Verify.pp_violation v);
  (* SSP augments cheapest-first, so the salvaged prefix is the 3
     cheapest paths: (1+1) + (2+1) + (3+1). *)
  Alcotest.(check int) "prefix cost" 9 r.Mcmf.total_cost

let test_ssp_unlimited_budget_identical () =
  Chaos.deactivate ();
  let g1 = fan_graph 8 and g2 = fan_graph 8 in
  let r1 = Mcmf.solve g1 in
  let r2 = Mcmf.solve ~budget:Budget.unlimited g2 in
  Alcotest.(check bool) "not degraded" false r2.Mcmf.degraded;
  Alcotest.(check int) "same shipped" r1.Mcmf.shipped r2.Mcmf.shipped;
  Alcotest.(check int) "same cost" r1.Mcmf.total_cost r2.Mcmf.total_cost

let test_ssp_wall_zero () =
  Chaos.deactivate ();
  let g = fan_graph 4 in
  let r = Mcmf.solve ~budget:(Budget.make ~max_wall_s:0.0 ()) g in
  Alcotest.(check bool) "degraded" true r.Mcmf.degraded;
  Alcotest.(check int) "nothing shipped" 0 r.Mcmf.shipped;
  match Verify.check g with
  | Ok () -> ()
  | Error v -> Alcotest.failf "zero flow invalid: %a" Verify.pp_violation v

(* ------------------------------------------------------------------ *)
(* Budgets on the cost-scaling backend                                 *)
(* ------------------------------------------------------------------ *)

let test_cost_scaling_abort_resets_flow () =
  Chaos.deactivate ();
  let g = fan_graph 8 in
  let r = Cost_scaling.solve ~budget:(Budget.make ~max_steps:1 ()) g in
  Alcotest.(check bool) "degraded" true r.Cost_scaling.degraded;
  Alcotest.(check int) "nothing shipped" 0 r.Cost_scaling.shipped;
  Alcotest.(check int) "all unshipped" 8 r.Cost_scaling.unshipped;
  (* The abort resets to the zero flow: every real arc carries 0. *)
  for a = 0 to (2 * Graph.arc_count g) - 1 do
    if Graph.is_forward a then Alcotest.(check int) "arc flow" 0 (Graph.flow g a)
  done;
  match Verify.check g with
  | Ok () -> ()
  | Error v -> Alcotest.failf "reset flow invalid: %a" Verify.pp_violation v

let test_cost_scaling_unlimited_budget_identical () =
  Chaos.deactivate ();
  let g1 = fan_graph 6 and g2 = fan_graph 6 in
  let r1 = Cost_scaling.solve g1 in
  let r2 = Cost_scaling.solve ~budget:Budget.unlimited g2 in
  Alcotest.(check bool) "not degraded" false r2.Cost_scaling.degraded;
  Alcotest.(check int) "same shipped" r1.Cost_scaling.shipped r2.Cost_scaling.shipped;
  Alcotest.(check int) "same cost" r1.Cost_scaling.total_cost r2.Cost_scaling.total_cost

(* ------------------------------------------------------------------ *)
(* Budget state machine                                                *)
(* ------------------------------------------------------------------ *)

let test_budget_forced_exhaustion_sticky () =
  Chaos.deactivate ();
  let st = Budget.start Budget.unlimited in
  Alcotest.(check bool) "unlimited never fires" true (Budget.check st = None);
  Budget.force_exhaustion st;
  (match Budget.check st with
  | Some Budget.Chaos -> ()
  | _ -> Alcotest.fail "forced exhaustion should report Chaos");
  (* Sticky: stays exhausted on re-check. *)
  Alcotest.(check bool) "sticky" true (Budget.check st <> None)

let test_budget_injected_delay_ages_wall () =
  Chaos.deactivate ();
  let st = Budget.start (Budget.make ~max_wall_s:10.0 ()) in
  Alcotest.(check bool) "fresh budget ok" true (Budget.check st = None);
  Budget.inject_delay st 11.0;
  match Budget.check st with
  | Some (Budget.Wall_clock _) -> ()
  | _ -> Alcotest.fail "injected delay should exhaust the wall budget"

(* ------------------------------------------------------------------ *)
(* Chaos harness                                                       *)
(* ------------------------------------------------------------------ *)

let with_chaos seed f =
  Chaos.activate ~seed;
  Fun.protect ~finally:Chaos.deactivate f

let test_chaos_corruption_caught_by_verify () =
  with_chaos 42 @@ fun () ->
  (* The draw fires with p=1/2; try fresh graphs until it does. *)
  let rec go tries =
    if tries = 0 then Alcotest.fail "corrupt_solution never fired in 64 draws"
    else begin
      let g = fan_graph 6 in
      let r = Mcmf.solve g in
      Alcotest.(check bool) "unbudgeted solve untouched" false r.Mcmf.degraded;
      match Chaos.corrupt_solution g with
      | None -> go (tries - 1)
      | Some _ -> (
          match Verify.check g with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "corrupted flow passed Verify.check")
    end
  in
  go 64

let test_chaos_deterministic_given_seed () =
  let draws seed =
    with_chaos seed @@ fun () ->
    List.init 32 (fun i ->
        Chaos.draw_solve ~backend:(if i mod 2 = 0 then "ssp" else "cost-scaling"))
  in
  Alcotest.(check bool) "same seed, same draws" true (draws 7 = draws 7);
  Alcotest.(check bool) "different seed, different draws" true (draws 7 <> draws 8)

(* Streams are independent: a backend's draw sequence does not depend on
   how many draws other streams made in between.  This is the property
   the portfolio replay relies on (docs/PARALLELISM.md). *)
let test_chaos_streams_independent () =
  let ssp_only seed =
    with_chaos seed @@ fun () -> List.init 16 (fun _ -> Chaos.draw_solve ~backend:"ssp")
  in
  let ssp_interleaved seed =
    with_chaos seed @@ fun () ->
    List.init 16 (fun _ ->
        let d = Chaos.draw_solve ~backend:"ssp" in
        ignore (Chaos.draw_solve ~backend:"cost-scaling");
        d)
  in
  Alcotest.(check bool)
    "ssp stream unaffected by cost-scaling draws" true
    (ssp_only 7 = ssp_interleaved 7)

let test_chaos_off_is_inert () =
  Chaos.deactivate ();
  Alcotest.(check bool) "no perturbation" true
    (Chaos.draw_solve ~backend:"ssp" = (false, 0.0));
  let g = fan_graph 3 in
  ignore (Mcmf.solve g);
  Alcotest.(check bool) "no corruption" true (Chaos.corrupt_solution g = None)

(* ------------------------------------------------------------------ *)
(* Invariant guard                                                     *)
(* ------------------------------------------------------------------ *)

let guard_fixture ?(cpu = 2.0) () =
  let cluster = make_cluster () in
  let view = Sim.Cluster.view cluster in
  let ids = Transformer.Id_gen.create () in
  let poly =
    Transformer.transform store ids (Rng.create 5) ~job_id:1 ~arrival:0.0
      (server_only_req ~cpu 4)
  in
  let job = Pending.of_poly poly in
  (view, job.Pending.tg_states.(0))

let check_err name expected result =
  match result with
  | Ok () -> Alcotest.failf "%s: expected a violation" name
  | Error v ->
      Alcotest.(check bool) name true (expected v);
      (* Every violation renders. *)
      Alcotest.(check bool) (name ^ " renders") true
        (String.length (Format.asprintf "%a" Guard.pp_violation v) > 0)

let test_guard_accepts_valid_placements () =
  let view, ts = guard_fixture () in
  let params = Cost_model.default_params in
  let servers = Topology.Fat_tree.servers view.Hire.View.topo in
  let p = [ (ts, servers.(0)); (ts, servers.(1)) ] in
  match Guard.check_placements view ~params ~placements:p with
  | Ok () -> ()
  | Error v -> Alcotest.failf "valid placements rejected: %a" Guard.pp_violation v

let test_guard_machine_overuse () =
  let view, ts = guard_fixture () in
  let params = Cost_model.default_params in
  let s = (Topology.Fat_tree.servers view.Hire.View.topo).(0) in
  check_err "machine overuse"
    (function Guard.Machine_overuse _ -> true | _ -> false)
    (Guard.check_placements view ~params ~placements:[ (ts, s); (ts, s) ])

let test_guard_group_overplace () =
  let view, ts = guard_fixture () in
  let params = Cost_model.default_params in
  let servers = Topology.Fat_tree.servers view.Hire.View.topo in
  ts.Pending.remaining <- 1;
  check_err "group overplace"
    (function Guard.Group_overplace _ -> true | _ -> false)
    (Guard.check_placements view ~params
       ~placements:[ (ts, servers.(0)); (ts, servers.(1)) ])

let test_guard_server_overcommit () =
  let view, ts = guard_fixture ~cpu:1e6 () in
  let params = Cost_model.default_params in
  let s = (Topology.Fat_tree.servers view.Hire.View.topo).(0) in
  check_err "server overcommit"
    (function Guard.Server_overcommit _ -> true | _ -> false)
    (Guard.check_placements view ~params ~placements:[ (ts, s) ])

let test_guard_flow_check_flags_corruption () =
  Chaos.deactivate ();
  let g = fan_graph 4 in
  ignore (Mcmf.solve g);
  (match Guard.check_flow g with
  | Ok () -> ()
  | Error v -> Alcotest.failf "valid flow rejected: %a" Guard.pp_violation v);
  (* Hand-corrupt one s->m arc (dst is an internal node). *)
  Graph.corrupt_flow g 0 1;
  check_err "flow corruption"
    (function Guard.Flow_violation _ -> true | _ -> false)
    (Guard.check_flow g)

(* ------------------------------------------------------------------ *)
(* End-to-end degradation                                              *)
(* ------------------------------------------------------------------ *)

let arrivals_fixture ?(server_only = false) rng ids =
  List.init 6 (fun i ->
      let req =
        if (not server_only) && i mod 2 = 0 then inc_req () else server_only_req 3
      in
      ( float_of_int i,
        Transformer.transform store ids rng ~job_id:i ~arrival:(float_of_int i) req ))

let run_resilient ?server_only ?resilience ?(seed = 11) () =
  let rng = Rng.create seed in
  let cluster = make_cluster ~seed:(seed land 0xFFFF) () in
  let ids = Transformer.Id_gen.create () in
  let arrivals = arrivals_fixture ?server_only rng ids in
  let sched = Schedulers.Registry.create ?resilience "hire" ~seed:17 cluster in
  let result = Sim.Simulator.run cluster sched arrivals in
  (cluster, sched, result.Sim.Simulator.report)

let assert_conserved ?(drained = true) name cluster (sched : Sim.Scheduler_intf.t) =
  let topo = Sim.Cluster.topo cluster in
  Alcotest.(check bool)
    (name ^ ": switch ledger drained")
    true
    (Vec.is_zero (Sim.Cluster.switch_used_total cluster));
  Alcotest.(check bool)
    (name ^ ": server ledger drained")
    true
    (Array.for_all
       (fun s ->
         Vec.equal (Sim.Cluster.server_available cluster s)
           (Sim.Cluster.server_capacity cluster))
       (Topology.Fat_tree.servers topo));
  if drained then
    Alcotest.(check bool) (name ^ ": scheduler drained") false (sched.pending ())

let test_e2e_zero_budget_degrades_and_completes () =
  Chaos.deactivate ();
  (* Server-only arrivals: the greedy last rung never makes flavor
     decisions, so only flavor-free work is guaranteed to drain when
     every solve exhausts its budget. *)
  let resilience =
    Hire.Hire_scheduler.resilience ~budget:(Budget.make ~max_wall_s:0.0 ()) ()
  in
  let cluster, sched, r = run_resilient ~server_only:true ~resilience () in
  Alcotest.(check bool) "degraded rounds observed" true (r.Sim.Metrics.degraded_rounds > 0);
  Alcotest.(check bool) "work still placed" true (r.Sim.Metrics.tgs_satisfied > 0);
  Alcotest.(check bool) "greedy rung reached" true (r.Sim.Metrics.fallback_depth_max = 2);
  assert_conserved "zero budget" cluster sched

let test_e2e_zero_budget_mixed_conserves () =
  Chaos.deactivate ();
  (* With INC flavors in the mix, undecided groups legitimately wait for
     a healthy flow round that never comes — the run must still
     terminate with the ledgers clean, just not fully drained. *)
  let resilience =
    Hire.Hire_scheduler.resilience ~budget:(Budget.make ~max_wall_s:0.0 ()) ()
  in
  let cluster, sched, r = run_resilient ~resilience () in
  Alcotest.(check bool) "degraded rounds observed" true (r.Sim.Metrics.degraded_rounds > 0);
  assert_conserved ~drained:false "zero budget mixed" cluster sched

let test_e2e_no_policy_reports_nothing () =
  Chaos.deactivate ();
  let cluster, sched, r = run_resilient () in
  Alcotest.(check int) "no degraded rounds" 0 r.Sim.Metrics.degraded_rounds;
  Alcotest.(check int) "no fallbacks" 0 r.Sim.Metrics.fallback_rounds;
  Alcotest.(check int) "no guard trips" 0 r.Sim.Metrics.guard_trips;
  assert_conserved "no policy" cluster sched

let test_e2e_chaos_guard_trips_and_recovers () =
  with_chaos 1234 @@ fun () ->
  (* Guard every solve; chaos corrupts ~half the guarded solutions, and
     the chain must absorb every trip. *)
  let resilience = Hire.Hire_scheduler.resilience ~guard_every:1 () in
  let cluster, sched, r = run_resilient ~resilience () in
  Alcotest.(check bool) "guard tripped" true (r.Sim.Metrics.guard_trips > 0);
  Alcotest.(check bool) "work still placed" true (r.Sim.Metrics.tgs_satisfied > 0);
  assert_conserved "chaos+guard" cluster sched

(* Randomized: any budget x any fault plan -> the run terminates with
   capacity conserved and never double-places.  Full drain is only
   required with no budget: under a budget the greedy rung cannot make
   flavor decisions, so INC jobs may legitimately stay queued. *)
let prop_budgets_and_faults_conserve =
  QCheck.Test.make ~name:"degraded placements conserve capacity (budgets x faults)"
    ~count:6
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 3))
    (fun (seed, budget_kind) ->
      Chaos.deactivate ();
      let budget =
        match budget_kind with
        | 0 -> Some (Budget.make ~max_wall_s:0.0 ())
        | 1 -> Some (Budget.make ~max_steps:5 ())
        | 2 -> Some (Budget.make ~max_wall_s:0.0005 ~max_steps:50 ())
        | _ -> None
      in
      let resilience = Hire.Hire_scheduler.resilience ?budget ~guard_every:3 () in
      let rng = Rng.create seed in
      let cluster = make_cluster ~seed:(seed land 0xFFFF) () in
      let topo = Sim.Cluster.topo cluster in
      let ids = Transformer.Id_gen.create () in
      let arrivals = arrivals_fixture rng ids in
      let faults =
        Faults.Plan.generate
          {
            Faults.Plan.server_mtbf = 25.0;
            server_mttr = 3.0;
            switch_mtbf = 40.0;
            switch_mttr = 3.0;
            inc_weight = 1.0;
          }
          (Rng.create (seed + 7919))
          ~servers:(Topology.Fat_tree.servers topo)
          ~switches:(Topology.Fat_tree.switches topo) ~horizon:30.0
      in
      let fault_policy = Faults.Policy.create ~max_retries:2 ~backoff:0.5 () in
      let sched = Schedulers.Registry.create ~resilience "hire" ~seed:17 cluster in
      let result = Sim.Simulator.run ~faults ~fault_policy cluster sched arrivals in
      let r = result.Sim.Simulator.report in
      let conserved =
        Vec.is_zero (Sim.Cluster.switch_used_total cluster)
        && Array.for_all
             (fun s ->
               Vec.equal (Sim.Cluster.server_available cluster s)
                 (Sim.Cluster.server_capacity cluster))
             (Topology.Fat_tree.servers topo)
      in
      let drained =
        budget <> None || not (sched.Sim.Scheduler_intf.pending ())
      in
      let sane = r.Sim.Metrics.tgs_satisfied + r.Sim.Metrics.tgs_cancelled
                 <= r.Sim.Metrics.tgs_total in
      if not (conserved && drained && sane) then
        QCheck.Test.fail_reportf "conserved=%b drained=%b sane=%b (seed %d kind %d)"
          conserved drained sane seed budget_kind
      else true)

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

let test_cell_key_resilience_axis () =
  let base = Harness.Experiment.default in
  let with_budget =
    {
      base with
      Harness.Experiment.resilience =
        Some
          (Hire.Hire_scheduler.resilience ~budget:(Budget.make ~max_wall_s:0.01 ()) ());
    }
  in
  let with_guard =
    {
      base with
      Harness.Experiment.resilience =
        Some (Hire.Hire_scheduler.resilience ~guard_every:5 ());
    }
  in
  Alcotest.(check bool) "stable" true
    (Harness.Experiment.cell_key base = Harness.Experiment.cell_key base);
  Alcotest.(check bool) "budget changes key" true
    (Harness.Experiment.cell_key base <> Harness.Experiment.cell_key with_budget);
  Alcotest.(check bool) "guard changes key" true
    (Harness.Experiment.cell_key with_budget <> Harness.Experiment.cell_key with_guard)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "resilience"
    [
      ( "budget-ssp",
        [
          quick "step budget salvages a min-cost prefix" test_ssp_step_budget_partial;
          quick "unlimited budget is exact" test_ssp_unlimited_budget_identical;
          quick "zero wall budget degrades cleanly" test_ssp_wall_zero;
        ] );
      ( "budget-cost-scaling",
        [
          quick "abort resets to the zero flow" test_cost_scaling_abort_resets_flow;
          quick "unlimited budget is exact" test_cost_scaling_unlimited_budget_identical;
        ] );
      ( "budget-state",
        [
          quick "forced exhaustion is sticky" test_budget_forced_exhaustion_sticky;
          quick "injected delay ages the wall cap" test_budget_injected_delay_ages_wall;
        ] );
      ( "chaos",
        [
          quick "corruption is caught by Verify.check" test_chaos_corruption_caught_by_verify;
          quick "deterministic given seed" test_chaos_deterministic_given_seed;
          quick "streams are independent" test_chaos_streams_independent;
          quick "inert when off" test_chaos_off_is_inert;
        ] );
      ( "guard",
        [
          quick "accepts valid placements" test_guard_accepts_valid_placements;
          quick "machine overuse" test_guard_machine_overuse;
          quick "group overplace" test_guard_group_overplace;
          quick "server overcommit" test_guard_server_overcommit;
          quick "flow corruption flagged" test_guard_flow_check_flags_corruption;
        ] );
      ( "end-to-end",
        [
          quick "zero budget: degrade, salvage, complete"
            test_e2e_zero_budget_degrades_and_completes;
          quick "zero budget, mixed arrivals: conserves without draining"
            test_e2e_zero_budget_mixed_conserves;
          quick "no policy: no resilience accounting" test_e2e_no_policy_reports_nothing;
          quick "chaos trips the guard, chain recovers"
            test_e2e_chaos_guard_trips_and_recovers;
        ]
        @ qt [ prop_budgets_and_faults_conserve ] );
      ("cache", [ quick "resilience feeds the cell key" test_cell_key_resilience_axis ]);
    ]
