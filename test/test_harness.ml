(* Tests for Harness.Experiment's sweep enumeration and cell identity:
   deterministic setup-major order, [{ default with ... }] override
   propagation, content-hash keys that track every semantic field, and
   distinct RNG streams per seed. *)

module Experiment = Harness.Experiment

let homog = Sim.Cluster.Homogeneous
let het = Sim.Cluster.Heterogeneous

(* Rendered cell identity: easy to list literally and to diff on failure. *)
let tuple (s : Experiment.spec) =
  Printf.sprintf "%s/%.2f/%s/%d" s.scheduler s.mu
    (Sim.Cluster.inc_setup_to_string s.setup)
    s.seed

let cellid = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Enumeration                                                        *)
(* ------------------------------------------------------------------ *)

let test_sweep_defaults_to_base () =
  let base = Experiment.default in
  Alcotest.(check (list cellid)) "no axes -> the base cell" [ tuple base ]
    (List.map tuple (Experiment.sweep base))

let test_sweep_enumeration_order () =
  let cells =
    Experiment.sweep Experiment.default ~setups:[ homog; het ]
      ~schedulers:[ "hire"; "k8-concurrent" ] ~mus:[ 0.25; 1.0 ] ~seeds:[ 1; 2 ]
  in
  (* Setup-major, then scheduler, then mu, then seed — the order the
     paper's tables print and hire_sweep writes CSV rows. *)
  let expected =
    [
      "hire/0.25/homogeneous/1"; "hire/0.25/homogeneous/2";
      "hire/1.00/homogeneous/1"; "hire/1.00/homogeneous/2";
      "k8-concurrent/0.25/homogeneous/1"; "k8-concurrent/0.25/homogeneous/2";
      "k8-concurrent/1.00/homogeneous/1"; "k8-concurrent/1.00/homogeneous/2";
      "hire/0.25/heterogeneous/1"; "hire/0.25/heterogeneous/2";
      "hire/1.00/heterogeneous/1"; "hire/1.00/heterogeneous/2";
      "k8-concurrent/0.25/heterogeneous/1"; "k8-concurrent/0.25/heterogeneous/2";
      "k8-concurrent/1.00/heterogeneous/1"; "k8-concurrent/1.00/heterogeneous/2";
    ]
  in
  Alcotest.(check (list cellid)) "full cross product in order" expected
    (List.map tuple cells)

let test_sweep_preserves_overrides () =
  let base =
    {
      Experiment.default with
      k = 4;
      horizon = 123.0;
      target_utilization = 1.7;
      inc_capable_fraction = Some 0.42;
    }
  in
  let cells = Experiment.sweep base ~schedulers:[ "hire"; "yarn-concurrent" ] ~seeds:[ 1; 2; 3 ] in
  Alcotest.(check int) "2 x 3 cells" 6 (List.length cells);
  List.iter
    (fun (s : Experiment.spec) ->
      Alcotest.(check int) "k preserved" 4 s.k;
      Alcotest.(check (float 0.0)) "horizon preserved" 123.0 s.horizon;
      Alcotest.(check (float 0.0)) "util preserved" 1.7 s.target_utilization;
      Alcotest.(check (option (float 0.0))) "fraction preserved" (Some 0.42)
        s.inc_capable_fraction;
      Alcotest.(check bool) "faults preserved" true (s.faults = None))
    cells

(* ------------------------------------------------------------------ *)
(* Cell identity                                                      *)
(* ------------------------------------------------------------------ *)

let test_cell_key_stable () =
  let a = Experiment.default and b = { Experiment.default with seed = Experiment.default.seed } in
  Alcotest.(check string) "equal specs hash equal" (Experiment.cell_key a)
    (Experiment.cell_key b)

let test_cell_key_tracks_every_field () =
  let base = Experiment.default in
  let k0 = Experiment.cell_key base in
  let variants =
    [
      ("scheduler", { base with scheduler = "k8-concurrent" });
      ("mu", { base with mu = base.mu +. 0.125 });
      ("setup", { base with setup = het });
      ("k", { base with k = base.k + 2 });
      ("horizon", { base with horizon = base.horizon +. 1.0 });
      ("seed", { base with seed = base.seed + 1 });
      ("util", { base with target_utilization = base.target_utilization +. 0.01 });
      ("fraction", { base with inc_capable_fraction = Some 0.99 });
      ("fraction none", { base with inc_capable_fraction = None });
      ("faults on", { base with faults = Some Faults.default_spec });
      ( "fault plan",
        {
          base with
          faults =
            Some
              {
                Faults.default_spec with
                plan = { Faults.Plan.default_config with server_mtbf = 77.0 };
              };
        } );
      ( "fault policy",
        {
          base with
          faults =
            Some
              { Faults.default_spec with policy = Faults.Policy.create ~max_retries:7 () };
        } );
    ]
  in
  List.iter
    (fun (what, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s changes the key" what)
        true
        (Experiment.cell_key s <> k0))
    variants;
  (* All variants pairwise distinct, too. *)
  let keys = k0 :: List.map (fun (_, s) -> Experiment.cell_key s) variants in
  Alcotest.(check int) "no collisions" (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* ------------------------------------------------------------------ *)
(* Seeds drive distinct streams                                       *)
(* ------------------------------------------------------------------ *)

(* Three-seed cells must produce three genuinely different simulations
   (trace, scenario, and cluster streams all derive from the seed). *)
let test_seeds_produce_distinct_streams () =
  let spec =
    {
      Experiment.default with
      scheduler = "yarn-concurrent";
      k = 4;
      horizon = 40.0;
      target_utilization = 2.0;
      mu = 0.5;
    }
  in
  let rows =
    List.map
      (fun seed ->
        Sim.Csv_export.row ~scheduler:spec.scheduler ~mu:spec.mu ~setup:spec.setup ~seed
          (Experiment.run { spec with seed }))
      [ 1; 2; 3 ]
  in
  Alcotest.(check int) "three pairwise-distinct result rows" 3
    (List.length (List.sort_uniq compare rows));
  (* And re-running a seed reproduces its row exactly. *)
  let again =
    Sim.Csv_export.row ~scheduler:spec.scheduler ~mu:spec.mu ~setup:spec.setup ~seed:2
      (Experiment.run { spec with seed = 2 })
  in
  Alcotest.(check string) "same seed reproduces" (List.nth rows 1) again

let () =
  Alcotest.run "harness"
    [
      ( "sweep",
        [
          Alcotest.test_case "defaults to the base cell" `Quick test_sweep_defaults_to_base;
          Alcotest.test_case "setup-major enumeration order" `Quick
            test_sweep_enumeration_order;
          Alcotest.test_case "preserves { default with ... } overrides" `Quick
            test_sweep_preserves_overrides;
        ] );
      ( "cell_key",
        [
          Alcotest.test_case "equal specs hash equal" `Quick test_cell_key_stable;
          Alcotest.test_case "every field changes the key" `Quick
            test_cell_key_tracks_every_field;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "three seeds, three distinct streams" `Slow
            test_seeds_produce_distinct_streams;
        ] );
    ]
