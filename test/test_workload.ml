(* Tests for the synthetic trace generator: determinism, distributional
   shape, rate calibration, and the job model. *)

module Job = Workload.Job
module Trace_gen = Workload.Trace_gen
module Rng = Prelude.Rng

let gen ?(seed = 7) ?(horizon = 2000.0) ?(config = Trace_gen.default) () =
  Trace_gen.generate config (Rng.create seed) ~horizon

(* ------------------------------------------------------------------ *)
(* Job model                                                          *)
(* ------------------------------------------------------------------ *)

let test_job_totals () =
  let job =
    {
      Job.id = 1;
      arrival = 0.0;
      priority = Job.Batch;
      groups =
        [
          { Job.tg_index = 0; count = 3; cpu = 2.0; mem = 4.0; duration = 10.0 };
          { Job.tg_index = 1; count = 2; cpu = 1.0; mem = 2.0; duration = 5.0 };
        ];
    }
  in
  Alcotest.(check int) "total tasks" 5 (Job.total_tasks job);
  Alcotest.(check (float 1e-9)) "cpu seconds" ((3. *. 2. *. 10.) +. (2. *. 1. *. 5.))
    (Job.cpu_seconds job)

(* ------------------------------------------------------------------ *)
(* Generator                                                          *)
(* ------------------------------------------------------------------ *)

let test_deterministic () =
  let a = gen () and b = gen () in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Job.t) (y : Job.t) ->
      Alcotest.(check (float 1e-12)) "same arrival" x.arrival y.arrival;
      Alcotest.(check int) "same tasks" (Job.total_tasks x) (Job.total_tasks y))
    a b

let test_seeds_differ () =
  let a = gen ~seed:1 () and b = gen ~seed:2 () in
  Alcotest.(check bool) "different" true
    (List.map (fun (j : Job.t) -> j.arrival) a <> List.map (fun (j : Job.t) -> j.arrival) b)

let test_arrivals_sorted_and_bounded () =
  let jobs = gen () in
  let rec check prev = function
    | [] -> ()
    | (j : Job.t) :: rest ->
        Alcotest.(check bool) "sorted" true (j.arrival >= prev);
        Alcotest.(check bool) "within horizon" true (j.arrival < 2000.0);
        check j.arrival rest
  in
  check 0.0 jobs

let test_ids_dense () =
  let jobs = gen () in
  List.iteri (fun i (j : Job.t) -> Alcotest.(check int) "dense id" i j.id) jobs

let test_rate_roughly_matches () =
  let config = { Trace_gen.default with arrival_rate = 0.5; diurnal_amplitude = 0.0 } in
  let jobs = gen ~config ~horizon:4000.0 () in
  let rate = float_of_int (List.length jobs) /. 4000.0 in
  Alcotest.(check bool) "rate near 0.5" true (rate > 0.4 && rate < 0.6)

let test_priorities_mixed () =
  let jobs = gen ~horizon:4000.0 () in
  let batch = List.length (List.filter (fun (j : Job.t) -> j.priority = Job.Batch) jobs) in
  let frac = float_of_int batch /. float_of_int (List.length jobs) in
  Alcotest.(check bool) "batch fraction near 0.85" true (frac > 0.75 && frac < 0.95)

let test_group_shapes () =
  let jobs = gen () in
  List.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) "1..5 groups" true
        (List.length j.groups >= 1 && List.length j.groups <= 5);
      List.iter
        (fun (g : Job.task_group) ->
          Alcotest.(check bool) "count >= 1" true (g.count >= 1);
          Alcotest.(check bool) "count bounded" true (g.count <= 120);
          Alcotest.(check bool) "positive demands" true (g.cpu > 0.0 && g.mem > 0.0);
          Alcotest.(check bool) "duration >= 1" true (g.duration >= 1.0))
        j.groups)
    jobs

let test_batch_heavier_than_service () =
  let jobs = gen ~horizon:8000.0 () in
  let avg p =
    let sel = List.filter (fun (j : Job.t) -> j.priority = p) jobs in
    if sel = [] then 0.0
    else
      List.fold_left (fun acc j -> acc +. float_of_int (Job.total_tasks j)) 0.0 sel
      /. float_of_int (List.length sel)
  in
  Alcotest.(check bool) "batch jobs have more tasks" true (avg Job.Batch > avg Job.Service)

let test_service_longer_durations () =
  let jobs = gen ~horizon:8000.0 () in
  let avg_dur p =
    let ds =
      List.concat_map
        (fun (j : Job.t) ->
          if j.priority = p then List.map (fun (g : Job.task_group) -> g.duration) j.groups
          else [])
        jobs
    in
    Prelude.Stats.mean ds
  in
  Alcotest.(check bool) "service runs longer" true
    (avg_dur Job.Service > avg_dur Job.Batch)

let test_scaled_rate () =
  let config =
    Trace_gen.scaled_rate ~n_servers:128 ~target_utilization:0.5 Trace_gen.default
  in
  Alcotest.(check bool) "positive rate" true (config.Trace_gen.arrival_rate > 0.0);
  (* Generated offered load should be within a factor ~2 of the target
     (heavy-tailed job sizes make this noisy). *)
  let horizon = 20_000.0 in
  let jobs = Trace_gen.generate config (Rng.create 3) ~horizon in
  let offered =
    List.fold_left (fun acc j -> acc +. Job.cpu_seconds j) 0.0 jobs
    /. (horizon *. 128.0 *. 96.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "offered load %.3f near 0.5" offered)
    true
    (offered > 0.25 && offered < 1.0)

let test_scaled_rate_rejects_bad_args () =
  Alcotest.(check bool) "bad n_servers" true
    (try
       ignore (Trace_gen.scaled_rate ~n_servers:0 ~target_utilization:0.5 Trace_gen.default);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Trace CSV round-trip                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_io_roundtrip () =
  let jobs = gen ~horizon:500.0 () in
  let csv = Workload.Trace_io.to_csv jobs in
  match Workload.Trace_io.of_csv csv with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check int) "same job count" (List.length jobs) (List.length parsed);
      List.iter2
        (fun (a : Job.t) (b : Job.t) ->
          Alcotest.(check int) "id" a.id b.id;
          Alcotest.(check bool) "priority" true (a.priority = b.priority);
          Alcotest.(check int) "groups" (List.length a.groups) (List.length b.groups);
          Alcotest.(check (float 1e-6)) "arrival" a.arrival b.arrival;
          List.iter2
            (fun (g : Job.task_group) (h : Job.task_group) ->
              Alcotest.(check int) "count" g.count h.count;
              Alcotest.(check (float 1e-6)) "cpu" g.cpu h.cpu;
              Alcotest.(check (float 1e-6)) "duration" g.duration h.duration)
            a.groups b.groups)
        jobs parsed

let test_trace_io_rejects_garbage () =
  let bad header_ok body =
    let text =
      (if header_ok then Workload.Trace_io.csv_header else "nope") ^ "\n" ^ body
    in
    Result.is_error (Workload.Trace_io.of_csv text)
  in
  Alcotest.(check bool) "bad header" true (bad false "1,0.0,batch,0,1,1.0,1.0,1.0");
  Alcotest.(check bool) "short row" true (bad true "1,0.0,batch,0,1");
  Alcotest.(check bool) "bad number" true (bad true "1,xx,batch,0,1,1.0,1.0,1.0");
  Alcotest.(check bool) "bad priority" true (bad true "1,0.0,urgent,0,1,1.0,1.0,1.0");
  Alcotest.(check bool) "negative count" true (bad true "1,0.0,batch,0,0,1.0,1.0,1.0");
  Alcotest.(check bool) "inconsistent job" true
    (bad true "1,0.0,batch,0,1,1.0,1.0,1.0\n1,5.0,batch,1,1,1.0,1.0,1.0");
  Alcotest.(check bool) "empty" true (Result.is_error (Workload.Trace_io.of_csv ""))

(* ------------------------------------------------------------------ *)
(* Trace CSV property coverage (QCheck)                               *)
(* ------------------------------------------------------------------ *)

(* [to_csv] prints floats with [%.6f], so exact round-trips need values
   on a binary-fraction grid that six decimals render exactly: eighths
   and quarters.  The generator also produces dense ids with
   non-decreasing arrivals, matching the order [of_csv] normalises to —
   within that (fully representative) class, round-trip equality is
   exact structural equality. *)
let gen_jobs : Job.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let grid step lo hi = map (fun n -> float_of_int n *. step) (int_range lo hi) in
  let gen_group tg_index =
    map
      (fun (count, cpu, mem, duration) -> { Job.tg_index; count; cpu; mem; duration })
      (quad (int_range 1 20) (grid 0.25 1 40) (grid 0.25 1 40) (grid 0.5 2 120))
  in
  let gen_proto =
    let* priority = oneofl [ Job.Batch; Job.Service ] in
    let* n_groups = int_range 1 4 in
    let* groups =
      flatten_l (List.init n_groups (fun i -> gen_group i))
    in
    let* delta = grid 0.125 0 64 in
    return (priority, groups, delta)
  in
  let* n = int_range 1 8 in
  let* protos = flatten_l (List.init n (fun _ -> gen_proto)) in
  let _, jobs =
    List.fold_left
      (fun (arrival, acc) (priority, groups, delta) ->
        let arrival = arrival +. delta in
        let id = List.length acc in
        (arrival, { Job.id; arrival; priority; groups } :: acc))
      (0.0, []) protos
  in
  return (List.rev jobs)

let arbitrary_jobs =
  QCheck.make gen_jobs ~print:(fun jobs -> Workload.Trace_io.to_csv jobs)

let prop_trace_io_roundtrip =
  QCheck.Test.make ~name:"of_csv (to_csv jobs) = Ok jobs" ~count:200 arbitrary_jobs
    (fun jobs -> Workload.Trace_io.of_csv (Workload.Trace_io.to_csv jobs) = Ok jobs)

(* Mangling any single data row must turn the whole parse into a
   descriptive error, never a silently different trace. *)
let prop_trace_io_malformed_row =
  QCheck.Test.make ~name:"malformed rows are rejected" ~count:200
    QCheck.(pair arbitrary_jobs (int_range 0 1_000_000))
    (fun (jobs, choice) ->
      let csv = Workload.Trace_io.to_csv jobs in
      match String.split_on_char '\n' csv |> List.filter (fun l -> String.trim l <> "") with
      | header :: (_ :: _ as rows) ->
          let victim = choice mod List.length rows in
          let mangle =
            match choice / List.length rows mod 4 with
            | 0 -> fun row -> String.sub row 0 (String.rindex row ',') (* drop a field *)
            | 1 -> fun row -> row ^ ",9"                     (* extra field *)
            | 2 -> fun row -> "x" ^ row                      (* unparsable job id *)
            | _ -> fun _ -> "1,-1.0,batch,0,1,1.0,1.0,1.0"   (* negative arrival *)
          in
          let rows = List.mapi (fun i r -> if i = victim then mangle r else r) rows in
          Result.is_error (Workload.Trace_io.of_csv (String.concat "\n" (header :: rows)))
      | _ -> false)

let test_trace_io_file_roundtrip () =
  let jobs = gen ~horizon:200.0 () in
  let path = Filename.temp_file "hire_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace_io.write_file path jobs;
      match Workload.Trace_io.read_file path with
      | Ok parsed -> Alcotest.(check int) "count" (List.length jobs) (List.length parsed)
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "workload"
    [
      ("job", [ Alcotest.test_case "totals" `Quick test_job_totals ]);
      ( "trace_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_io_rejects_garbage;
          Alcotest.test_case "file roundtrip" `Quick test_trace_io_file_roundtrip;
          QCheck_alcotest.to_alcotest prop_trace_io_roundtrip;
          QCheck_alcotest.to_alcotest prop_trace_io_malformed_row;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "sorted/bounded arrivals" `Quick test_arrivals_sorted_and_bounded;
          Alcotest.test_case "dense ids" `Quick test_ids_dense;
          Alcotest.test_case "rate" `Slow test_rate_roughly_matches;
          Alcotest.test_case "priorities" `Slow test_priorities_mixed;
          Alcotest.test_case "group shapes" `Quick test_group_shapes;
          Alcotest.test_case "batch heavier" `Slow test_batch_heavier_than_service;
          Alcotest.test_case "service longer" `Slow test_service_longer_durations;
          Alcotest.test_case "scaled rate" `Slow test_scaled_rate;
          Alcotest.test_case "scaled rate args" `Quick test_scaled_rate_rejects_bad_args;
        ] );
    ]
