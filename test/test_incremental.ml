(* Tests for incremental flow-network maintenance and warm-started
   solves (docs/PERFORMANCE.md): the Graph in-place patching primitives
   (mark/release, set_cost/set_cap, negative-cost tracking, flow reset),
   solver scratch/warm-start exactness, builder-vs-fresh network
   identity under cost, structural, and liveness churn, and the
   end-to-end property that a simulation run with [incremental = true]
   is placement-for-placement identical to the full-rebuild path —
   with and without fault injection. *)

module Graph = Flow.Graph
module Mcmf = Flow.Mcmf
module Flow_network = Hire.Flow_network
module Pending = Hire.Pending
module Poly_req = Hire.Poly_req
module Comp_store = Hire.Comp_store
module Comp_req = Hire.Comp_req
module Transformer = Hire.Transformer
module Cost_model = Hire.Cost_model
module Vec = Prelude.Vec
module Rng = Prelude.Rng

let store = Comp_store.default ()

(* ------------------------------------------------------------------ *)
(* Graph patching primitives                                           *)
(* ------------------------------------------------------------------ *)

let fan_graph n =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  for i = 1 to n do
    let m = Graph.add_node g in
    ignore (Graph.add_arc g ~src:s ~dst:m ~cap:1 ~cost:i);
    ignore (Graph.add_arc g ~src:m ~dst:t ~cap:1 ~cost:1)
  done;
  Graph.set_supply g s n;
  Graph.set_supply g t (-n);
  (g, s, t)

let test_mark_release_roundtrip () =
  let g, s, t = fan_graph 3 in
  let n0 = Graph.node_count g and m0 = Graph.arc_count g in
  let out0 = Graph.fold_out g s 0 (fun acc _ -> acc + 1) in
  let mk = Graph.mark g in
  (* Suffix: a node with arcs into *prefix* nodes, so the prefix head
     lists and supplies are disturbed and must be restored. *)
  let v = Graph.add_node g in
  ignore (Graph.add_arc g ~src:v ~dst:s ~cap:5 ~cost:7);
  ignore (Graph.add_arc g ~src:v ~dst:t ~cap:5 ~cost:(-2));
  Graph.add_supply g s 10;
  Alcotest.(check bool) "suffix went negative" true (Graph.has_negative_cost g);
  Graph.release g mk;
  Alcotest.(check int) "node count restored" n0 (Graph.node_count g);
  Alcotest.(check int) "arc count restored" m0 (Graph.arc_count g);
  Alcotest.(check int) "supply restored" 3 (Graph.supply g s);
  Alcotest.(check int) "head list restored" out0
    (Graph.fold_out g s 0 (fun acc _ -> acc + 1));
  Alcotest.(check bool) "negative-cost counter restored" false (Graph.has_negative_cost g);
  (* The graph is usable after release: the solve sees only the prefix. *)
  let r = Mcmf.solve g in
  Alcotest.(check int) "prefix solves" 3 r.Mcmf.shipped

let test_release_behind_mark_rejected () =
  let g, _, _ = fan_graph 2 in
  let mk = Graph.mark g in
  let g2 = g in
  Graph.release g2 mk;
  (* Releasing to a mark that is *ahead* of the graph must fail: capture
     a later mark, rewind to an earlier one, then try the later. *)
  let early = Graph.mark g in
  ignore (Graph.add_node g);
  let late = Graph.mark g in
  Graph.release g early;
  Alcotest.check_raises "mark ahead of graph"
    (Invalid_argument "Graph.release: mark does not precede the current state")
    (fun () -> Graph.release g late)

let test_set_cost_tracks_negative () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let arc = Graph.add_arc g ~src:a ~dst:b ~cap:1 ~cost:5 in
  Alcotest.(check bool) "non-negative" false (Graph.has_negative_cost g);
  Graph.set_cost g arc (-3);
  Alcotest.(check bool) "negative after set" true (Graph.has_negative_cost g);
  Alcotest.(check int) "cost rewritten" (-3) (Graph.cost g arc);
  Alcotest.(check int) "twin negated" 3 (Graph.cost g (Graph.rev arc));
  Graph.set_cost g arc 2;
  Alcotest.(check bool) "non-negative again" false (Graph.has_negative_cost g);
  Graph.set_cost g arc 2;
  Alcotest.(check bool) "no-op set keeps counter" false (Graph.has_negative_cost g)

let test_set_cap_resets_pair () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let arc = Graph.add_arc g ~src:a ~dst:b ~cap:4 ~cost:1 in
  Graph.push g arc 3;
  Alcotest.(check int) "flow on" 3 (Graph.flow g arc);
  Graph.set_cap g arc 9;
  Alcotest.(check int) "capacity rewritten" 9 (Graph.capacity g arc);
  Alcotest.(check int) "flow zeroed" 0 (Graph.flow g arc);
  Alcotest.(check int) "residual = new cap" 9 (Graph.residual_cap g arc)

let test_reset_flows_restores_capacities () =
  let g, _, _ = fan_graph 4 in
  ignore (Mcmf.solve g);
  let consumed = ref 0 in
  Graph.iter_arcs g (fun a -> consumed := !consumed + Graph.flow g a);
  Alcotest.(check bool) "solve consumed capacity" true (!consumed > 0);
  Graph.reset_flows g;
  Graph.iter_arcs g (fun a ->
      Alcotest.(check int) "flow zero" 0 (Graph.flow g a);
      Alcotest.(check int) "residual = original cap" (Graph.capacity g a)
        (Graph.residual_cap g a))

(* ------------------------------------------------------------------ *)
(* Scratch reuse and warm starts                                       *)
(* ------------------------------------------------------------------ *)

let test_scratch_solve_identical () =
  let scratch = Mcmf.scratch () in
  for n = 2 to 6 do
    let g1, _, _ = fan_graph n in
    let g2, _, _ = fan_graph n in
    let r1 = Mcmf.solve g1 in
    let r2 = Mcmf.solve ~scratch g2 in
    Alcotest.(check int) "same shipped" r1.Mcmf.shipped r2.Mcmf.shipped;
    Alcotest.(check int) "same cost" r1.Mcmf.total_cost r2.Mcmf.total_cost;
    (* Per-arc flows identical, not just the objective. *)
    Graph.iter_arcs g1 (fun a ->
        Alcotest.(check int) "same flow" (Graph.flow g1 a) (Graph.flow g2 a))
  done

let test_warm_start_cost_identical () =
  let scratch = Mcmf.scratch () in
  let g, _, _ = fan_graph 5 in
  let cold = Mcmf.solve ~scratch g in
  Alcotest.(check bool) "cold run is not warm" false cold.Mcmf.profile.Obs.Solver_profile.warm_start;
  (* Re-solve the same instance warm: hit or miss (the validity scan
     decides — resetting flows can re-expose saturated arcs with
     negative reduced cost), the objective must not move. *)
  Graph.reset_flows g;
  let warm = Mcmf.solve ~scratch ~warm:true g in
  Alcotest.(check int) "same cost" cold.Mcmf.total_cost warm.Mcmf.total_cost;
  Alcotest.(check int) "same shipped" cold.Mcmf.shipped warm.Mcmf.shipped;
  (* On a zero-cost instance the carried potentials (all zero) are
     always valid, so the warm request must actually hit. *)
  let z = Graph.create () in
  let zs = Graph.add_node z and zt = Graph.add_node z in
  ignore (Graph.add_arc z ~src:zs ~dst:zt ~cap:2 ~cost:0);
  Graph.set_supply z zs 2;
  Graph.set_supply z zt (-2);
  ignore (Mcmf.solve ~scratch z);
  Graph.reset_flows z;
  let hit = Mcmf.solve ~scratch ~warm:true z in
  Alcotest.(check bool) "warm hit" true hit.Mcmf.profile.Obs.Solver_profile.warm_start;
  Alcotest.(check int) "warm hit ships" 2 hit.Mcmf.shipped;
  (* Costs changed since the potentials were computed -> the validity
     scan must reject them and fall back to a cold bootstrap. *)
  Graph.reset_flows g;
  Graph.iter_arcs g (fun a -> Graph.set_cost g a (Graph.cost g a + 1));
  let miss = Mcmf.solve ~scratch ~warm:true g in
  Alcotest.(check bool) "stale potentials rejected" false
    miss.Mcmf.profile.Obs.Solver_profile.warm_start;
  Alcotest.(check int) "still ships everything" cold.Mcmf.shipped miss.Mcmf.shipped

(* ------------------------------------------------------------------ *)
(* Builder-vs-fresh network identity                                   *)
(* ------------------------------------------------------------------ *)

let make_cluster ?(k = 4) ?(fraction = 1.0) ?(seed = 3) () =
  Sim.Cluster.create ~inc_capable_fraction:fraction ~k ~setup:Sim.Cluster.Homogeneous
    ~services:(Array.to_list (Comp_store.service_names store))
    (Rng.create seed)

let server_only_req ?(cpu = 2.0) n =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = "server";
          base = { Comp_req.instances = n; cpu; mem = 4.0; duration = 30.0 };
          inc_alternatives = [];
        };
      ];
    connections = [];
  }

let inc_req ?(service = "netchain") ?(n = 4) () =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = Option.get (Comp_store.template_of_service store service);
          base = { Comp_req.instances = n; cpu = 2.0; mem = 4.0; duration = 30.0 };
          inc_alternatives = [ service ];
        };
      ];
    connections = [];
  }

let pending_jobs () =
  let ids = Transformer.Id_gen.create () in
  let rng = Rng.create 5 in
  List.init 4 (fun i ->
      let req = if i mod 2 = 0 then inc_req () else server_only_req 3 in
      Pending.of_poly
        (Transformer.transform store ids rng ~job_id:i ~arrival:(float_of_int i) req))

let arcs_of g =
  let acc = ref [] in
  Graph.iter_arcs g (fun a ->
      acc := (Graph.src g a, Graph.dst g a, Graph.capacity g a, Graph.cost g a) :: !acc);
  List.rev !acc

let check_identical_networks name na nb =
  let ga = Flow_network.graph na and gb = Flow_network.graph nb in
  Alcotest.(check int) (name ^ ": node count") (Graph.node_count gb) (Graph.node_count ga);
  Alcotest.(check int) (name ^ ": arc count") (Graph.arc_count gb) (Graph.arc_count ga);
  Alcotest.(check bool) (name ^ ": arcs identical") true (arcs_of ga = arcs_of gb);
  for v = 0 to Graph.node_count ga - 1 do
    Alcotest.(check int) (name ^ ": supply") (Graph.supply gb v) (Graph.supply ga v)
  done;
  let oa = Flow_network.solve_and_extract na and ob = Flow_network.solve_and_extract nb in
  Alcotest.(check bool)
    (name ^ ": same placements")
    true
    (oa.Flow_network.placements = ob.Flow_network.placements);
  Alcotest.(check int)
    (name ^ ": same objective")
    ob.Flow_network.solver.Mcmf.total_cost oa.Flow_network.solver.Mcmf.total_cost

let test_builder_identity_under_churn () =
  let cluster = make_cluster () in
  let view = Sim.Cluster.view cluster in
  let census = Hire.Locality.Task_census.create view.Hire.View.topo in
  let jobs = pending_jobs () in
  let params = Cost_model.default_params in
  let builder = Flow_network.create_builder () in
  let servers = Topology.Fat_tree.servers view.Hire.View.topo in
  let demand = Vec.scale 0.1 (Sim.Cluster.server_capacity cluster) in
  let build_both name =
    (* The incremental build runs first: it consumes the dirty set the
       fresh build does not need. *)
    let ni = Flow_network.build ~builder view census ~jobs ~now:10.0 ~params in
    let nf = Flow_network.build view census ~jobs ~now:10.0 ~params in
    check_identical_networks name ni nf
  in
  build_both "cold builder";
  (* Cost churn: ledger charges mark servers dirty; the next build
     patches in place. *)
  Sim.Cluster.place_server_task cluster ~server:servers.(0) ~demand;
  Sim.Cluster.place_server_task cluster ~server:servers.(3) ~demand;
  build_both "after charges";
  Alcotest.(check bool) "patched, not rebuilt" false
    (Flow_network.stats (Flow_network.build ~builder view census ~jobs ~now:10.0 ~params))
      .Flow_network.full;
  Sim.Cluster.release_server_task cluster ~server:servers.(0) ~demand;
  build_both "after release";
  (* Structural churn: liveness flips force a full prefix rebuild. *)
  Sim.Cluster.fail_node cluster ~time:11.0 servers.(1);
  let ni = Flow_network.build ~builder view census ~jobs ~now:12.0 ~params in
  Alcotest.(check bool) "structural -> full rebuild" true (Flow_network.stats ni).Flow_network.full;
  let nf = Flow_network.build view census ~jobs ~now:12.0 ~params in
  check_identical_networks "after server failure" ni nf;
  ignore (Sim.Cluster.recover_node cluster servers.(1));
  build_both "after recovery"

(* ------------------------------------------------------------------ *)
(* End-to-end property: incremental == full rebuild                    *)
(* ------------------------------------------------------------------ *)

(* One full simulation cell (mirrors Harness.Experiment.run, with the
   scheduler wrapped to log every round's placements in order). *)
let run_cell ~incremental ~seed ~mu ~faults_on ~horizon =
  let rng = Rng.create seed in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  let fault_rng = Rng.split rng in
  let services = Array.to_list (Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ~inc_capable_fraction:0.5 ~k:4 ~setup:Sim.Cluster.Homogeneous
      ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:0.8 Workload.Trace_gen.default
  in
  let trace = Workload.Trace_gen.generate trace_config trace_rng ~horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu trace in
  let sched = Schedulers.Registry.create ~incremental "hire" ~seed:17 cluster in
  let log = Buffer.create 1024 in
  let wrapped =
    {
      sched with
      Sim.Scheduler_intf.round =
        (fun ~time ->
          let r = sched.Sim.Scheduler_intf.round ~time in
          Buffer.add_string log (Printf.sprintf "t=%.6f" time);
          List.iter
            (fun (p : Sim.Scheduler_intf.placement) ->
              Buffer.add_string log (Printf.sprintf " %d->%d" p.tg.Poly_req.tg_id p.machine))
            r.Sim.Scheduler_intf.placements;
          List.iter
            (fun (tg : Poly_req.task_group) ->
              Buffer.add_string log (Printf.sprintf " !%d" tg.Poly_req.tg_id))
            r.Sim.Scheduler_intf.cancelled;
          Buffer.add_char log '\n';
          r);
    }
  in
  let faults, fault_policy =
    if not faults_on then (None, None)
    else begin
      let topo = Sim.Cluster.topo cluster in
      let sharing = Sim.Cluster.sharing cluster in
      let plan =
        Faults.Plan.generate
          { Faults.Plan.default_config with server_mtbf = 80.0; switch_mtbf = 80.0 }
          fault_rng
          ~inc_capable:(fun s -> Hire.Sharing.supported_services sharing s <> [])
          ~servers:(Topology.Fat_tree.servers topo)
          ~switches:(Topology.Fat_tree.switches topo)
          ~horizon
      in
      (Some plan, Some (Faults.Policy.create ~max_retries:2 ()))
    end
  in
  let result =
    Sim.Simulator.run ?faults ?fault_policy cluster wrapped scenario.Sim.Scenario.arrivals
  in
  let ledger =
    String.concat ";"
      (Array.to_list
         (Array.map
            (fun s -> Vec.to_string (Sim.Cluster.server_available cluster s))
            (Topology.Fat_tree.servers (Sim.Cluster.topo cluster))))
  in
  (Buffer.contents log, ledger, result.Sim.Simulator.report)

let report_summary (r : Sim.Metrics.report) =
  Printf.sprintf "jobs=%d inc=%d/%d tgs=%d/%d unserved=%d rounds=%d detour=%.6f"
    r.Sim.Metrics.jobs_total r.Sim.Metrics.inc_jobs_served r.Sim.Metrics.inc_jobs_total
    r.Sim.Metrics.tgs_satisfied r.Sim.Metrics.tgs_total r.Sim.Metrics.inc_tgs_unserved
    r.Sim.Metrics.rounds r.Sim.Metrics.detour_mean

let prop_incremental_identical =
  QCheck.Test.make ~name:"incremental solves identical to full rebuild (e2e)" ~count:8
    QCheck.(triple (int_range 0 1_000_000) (float_range 0.0 1.0) bool)
    (fun (seed, mu, faults_on) ->
      let horizon = 60.0 in
      let log_f, ledger_f, rep_f = run_cell ~incremental:false ~seed ~mu ~faults_on ~horizon in
      let log_i, ledger_i, rep_i = run_cell ~incremental:true ~seed ~mu ~faults_on ~horizon in
      if not (String.equal log_f log_i) then
        QCheck.Test.fail_reportf "placement logs diverge (seed=%d mu=%.3f faults=%b)" seed
          mu faults_on;
      if not (String.equal ledger_f ledger_i) then
        QCheck.Test.fail_reportf "final ledgers diverge (seed=%d mu=%.3f faults=%b)" seed mu
          faults_on;
      if not (String.equal (report_summary rep_f) (report_summary rep_i)) then
        QCheck.Test.fail_reportf "reports diverge (seed=%d): %s vs %s" seed
          (report_summary rep_f) (report_summary rep_i);
      true)

let test_cell_key_escape_hatch () =
  let base = Harness.Experiment.default in
  Alcotest.(check string)
    "incremental default keeps the historical key"
    (Harness.Experiment.cell_key base)
    (Harness.Experiment.cell_key { base with incremental = true });
  Alcotest.(check bool)
    "escape hatch gets its own cells" false
    (String.equal
       (Harness.Experiment.cell_key base)
       (Harness.Experiment.cell_key { base with incremental = false }))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "incremental"
    [
      ( "graph-patching",
        [
          Alcotest.test_case "mark/release roundtrip" `Quick test_mark_release_roundtrip;
          Alcotest.test_case "release behind mark rejected" `Quick
            test_release_behind_mark_rejected;
          Alcotest.test_case "set_cost tracks negative costs" `Quick
            test_set_cost_tracks_negative;
          Alcotest.test_case "set_cap resets the pair" `Quick test_set_cap_resets_pair;
          Alcotest.test_case "reset_flows restores capacities" `Quick
            test_reset_flows_restores_capacities;
        ] );
      ( "solver-reuse",
        [
          Alcotest.test_case "scratch solves identical" `Quick test_scratch_solve_identical;
          Alcotest.test_case "warm start cost-identical" `Quick
            test_warm_start_cost_identical;
        ] );
      ( "builder",
        [
          Alcotest.test_case "identity under churn" `Quick test_builder_identity_under_churn;
        ] );
      ( "end-to-end",
        qt [ prop_incremental_identical ]
        @ [
            Alcotest.test_case "cell_key escape hatch" `Quick test_cell_key_escape_hatch;
          ] );
    ]
