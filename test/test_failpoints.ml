(* Fault-hardening tests (docs/FAILPOINTS.md): the failpoint registry
   grammar and its deterministic seeding, crash-consistent sink
   behaviour under injected ENOSPC/EIO/short-write/fsync failures (a
   failed sync never loses or reorders frames — the healed journal is
   byte-identical to one that never failed), checkpoint-write failures
   as recoverable skips, the admission engine's degraded (shedding)
   mode, adversarial transports against a forked server (byte-by-byte
   partial writes, slow-loris, disconnect between request and reply,
   accept failures), and the headline property: under any seeded
   failpoint schedule plus a crash at any WAL record, no acked
   admission is lost and the healed run is byte-identical to an
   uninterrupted one. *)

module Json = Server.Json
module Protocol = Server.Protocol
module Admission = Server.Admission
module Chaos = Journal.Chaos
module Experiment = Harness.Experiment
module Sink = Journal.Sink
module Checkpoint = Journal.Checkpoint

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)
(* ------------------------------------------------------------------ *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hire_failpt_test_%d_%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Every test that arms the registry disarms it on the way out, so no
   schedule leaks into a later test (or into the server tests running
   in the same binary). *)
let with_failpoints f = Fun.protect ~finally:Failpt.deactivate f

(* ------------------------------------------------------------------ *)
(* Registry grammar                                                    *)
(* ------------------------------------------------------------------ *)

let test_grammar_parses () =
  with_failpoints @@ fun () ->
  Failpt.load "seed=42; journal.fsync=1*eio, net.write=25%3*short(1);checkpoint.write=off";
  Alcotest.(check string)
    "describe round-trips the armed registry"
    "seed=42 journal.fsync=1*eio net.write=25%3*short(1)"
    (Failpt.describe ());
  Alcotest.(check (list string))
    "armed sites sorted" [ "journal.fsync"; "net.write" ] (Failpt.armed_sites ());
  (* an exhausted site drops out of the armed list *)
  Alcotest.(check bool) "bounded site fires" true
    (Failpt.eval "journal.fsync" = Some (Failpt.Errno Unix.EIO));
  Alcotest.(check bool) "then goes quiet" true (Failpt.eval "journal.fsync" = None);
  Alcotest.(check (list string)) "exhausted site disarmed" [ "net.write" ]
    (Failpt.armed_sites ());
  (* delay and off specs *)
  Failpt.set "x" "delay(0.5)";
  Alcotest.(check bool) "delay parses" true (Failpt.eval "x" = Some (Failpt.Delay 0.5));
  Failpt.set "x" "off";
  Alcotest.(check bool) "off disarms" true (Failpt.eval "x" = None);
  Failpt.deactivate ();
  Alcotest.(check string) "disarmed registry describes empty" "" (Failpt.describe ())

let test_grammar_rejects () =
  with_failpoints @@ fun () ->
  let bad_loads =
    [
      "seed=abc";
      "journal.fsync";  (* no '=' *)
      "journal.fsync=150%eio";
      "journal.write=-1*eio";
      "journal.write=short";
      "journal.write=short(x)";
      "journal.write=short(1";
      "journal.write=frobnicate";
      "journal.write=eio(3)";
      "journal.write=delay(-1)";
      "journal.write=delay(inf)";
    ]
  in
  List.iter
    (fun v ->
      match Failpt.load v with
      | () -> Alcotest.failf "%S must be rejected" v
      | exception Invalid_argument _ -> ())
    bad_loads

(* A site's draw stream depends only on (seed, site name, evaluations
   of that site) — never on what other sites did in between. *)
let test_eval_deterministic () =
  with_failpoints @@ fun () ->
  let pattern other_cadence =
    Failpt.activate ~seed:7;
    Failpt.set "a" "50%eio";
    Failpt.set "b" "50%enospc";
    List.init 64 (fun i ->
        if i mod other_cadence = 0 then ignore (Failpt.eval "b" : Failpt.outcome option);
        Failpt.eval "a" <> None)
  in
  let p1 = pattern 3 and p2 = pattern 2 in
  Alcotest.(check bool) "a's stream independent of b's evaluations" true (p1 = p2);
  Alcotest.(check bool) "50% fires sometimes" true (List.mem true p1);
  Alcotest.(check bool) "50% skips sometimes" true (List.mem false p1);
  (* count-bounded site fires exactly N times *)
  Failpt.activate ~seed:7;
  Failpt.set "c" "3*eio";
  let fires =
    List.init 100 (fun _ -> if Failpt.eval "c" <> None then 1 else 0)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "3* fires exactly thrice" 3 fires

(* ------------------------------------------------------------------ *)
(* Sink: crash-consistent storage failures                             *)
(* ------------------------------------------------------------------ *)

let records = [ "record-zero"; "record-one"; "record-two" ]

(* Uninterrupted control journal: the byte-level target every healed
   run must land on. *)
let control_bytes dir =
  let path = Filename.concat dir "control.bin" in
  let s = Sink.create ~path ~header:"hdr" () in
  List.iter
    (fun r ->
      ignore (Sink.append s r : int);
      Sink.commit s)
    records;
  Sink.close s;
  Journal.Source.read_file path

(* Returns the errno the failed operation surfaced. *)
let expect_io f =
  match f () with
  | _ -> Alcotest.fail "storage failure must raise Error.Io"
  | exception Journal.Error.Journal_error (Journal.Error.Io { error; _ }) -> error

let check_healed dir path =
  Alcotest.(check string) "healed journal byte-identical to control"
    (control_bytes dir) (Journal.Source.read_file path);
  match Journal.Source.load_strict ~path with
  | Ok l ->
      Alcotest.(check int) "all records durable" (List.length records)
        (Array.length l.Journal.Source.records)
  | Error e -> Alcotest.failf "healed journal unreadable: %s" (Journal.Error.to_string e)

let test_sink_short_write_heals () =
  with_dir @@ fun dir ->
  with_failpoints @@ fun () ->
  let path = Filename.concat dir "wal.bin" in
  let s = Sink.create ~path ~header:"hdr" () in
  ignore (Sink.append s (List.nth records 0) : int);
  Sink.commit s;
  Failpt.set "journal.write" "1*short(7)";
  ignore (Sink.append s (List.nth records 1) : int);
  let errno = expect_io (fun () -> Sink.commit s) in
  Alcotest.(check bool) "short write surfaces as ENOSPC" true (errno = Unix.ENOSPC);
  (* the torn tail is cut: nothing past the durable boundary remains *)
  Alcotest.(check int) "file truncated to the durable boundary" (Sink.durable_end s)
    (Unix.stat path).Unix.st_size;
  (* the failed frames stayed buffered: one barrier heals everything *)
  ignore (Sink.append s (List.nth records 2) : int);
  Sink.barrier s;
  Sink.close s;
  check_healed dir path

let test_sink_fsync_failure_heals () =
  with_dir @@ fun dir ->
  with_failpoints @@ fun () ->
  let path = Filename.concat dir "wal.bin" in
  let s = Sink.create ~path ~header:"hdr" () in
  ignore (Sink.append s (List.nth records 0) : int);
  Sink.commit s;
  Failpt.set "journal.fsync" "2*eio";
  ignore (Sink.append s (List.nth records 1) : int);
  let errno = expect_io (fun () -> Sink.commit s) in
  Alcotest.(check bool) "fsync failure surfaces as EIO" true (errno = Unix.EIO);
  Alcotest.(check int) "file truncated to the durable boundary" (Sink.durable_end s)
    (Unix.stat path).Unix.st_size;
  (* still failing: the retry fails too, frames still buffered *)
  let (_ : Unix.error) = expect_io (fun () -> Sink.barrier s) in
  (* disk heals (schedule exhausted): the whole buffer lands in order *)
  ignore (Sink.append s (List.nth records 2) : int);
  Sink.barrier s;
  Sink.close s;
  check_healed dir path

let test_sink_enospc_heals () =
  with_dir @@ fun dir ->
  with_failpoints @@ fun () ->
  let path = Filename.concat dir "wal.bin" in
  let s = Sink.create ~path ~header:"hdr" () in
  Failpt.set "journal.write" "1*enospc";
  List.iter (fun r -> ignore (Sink.append s r : int)) records;
  let errno = expect_io (fun () -> Sink.barrier s) in
  Alcotest.(check bool) "ENOSPC propagates" true (errno = Unix.ENOSPC);
  Sink.barrier s;
  Sink.close s;
  check_healed dir path

let test_checkpoint_write_failure_is_recoverable () =
  with_dir @@ fun dir ->
  with_failpoints @@ fun () ->
  Failpt.set "checkpoint.write" "1*enospc";
  (match Checkpoint.write ~dir ~gen:1 ~upto_seq:5 "blob" with
  | () -> Alcotest.fail "checkpoint ENOSPC must raise"
  | exception Journal.Error.Journal_error (Journal.Error.Io _) -> ());
  (* no partial file is left behind, and no reader sees a checkpoint *)
  Alcotest.(check int) "temporary file removed" 0 (Array.length (Sys.readdir dir));
  Alcotest.(check bool) "no checkpoint visible" true (Checkpoint.latest ~dir = None);
  (* the next cadence retries the same generation and succeeds *)
  Checkpoint.write ~dir ~gen:1 ~upto_seq:5 "blob";
  match Checkpoint.latest ~dir with
  | Some l ->
      Alcotest.(check int) "generation" 1 l.Checkpoint.gen;
      Alcotest.(check int) "coverage" 5 l.Checkpoint.upto_seq;
      Alcotest.(check string) "payload" "blob" l.Checkpoint.blob
  | None -> Alcotest.fail "retried checkpoint must be visible"

(* ------------------------------------------------------------------ *)
(* Admission engine: degraded (shedding) mode                          *)
(* ------------------------------------------------------------------ *)

let server_spec seed = { Experiment.default with seed; horizon = 0.0 }

let engine_config =
  { Admission.default_config with round_interval = 1.0; max_batch = 1000 }

let synth_spec ?client_id ?(inc = Protocol.No_inc) k =
  let rng = Prelude.Rng.create (1000 + k) in
  let n_groups = Prelude.Rng.int_in rng 1 3 in
  let groups =
    List.init n_groups (fun g ->
        {
          Workload.Job.tg_index = g;
          count = Prelude.Rng.int_in rng 1 6;
          cpu = Prelude.Rng.float_in rng 0.5 4.0;
          mem = Prelude.Rng.float_in rng 0.5 4.0;
          duration = Prelude.Rng.float_in rng 1.0 15.0;
        })
  in
  let priority =
    if Prelude.Rng.bernoulli rng 0.3 then Workload.Job.Service else Workload.Job.Batch
  in
  { Protocol.priority; groups; inc; client_id }

let keyed k =
  synth_spec
    ~client_id:(Printf.sprintf "fp-%d" k)
    ~inc:(if k mod 2 = 0 then Protocol.Auto else Protocol.No_inc)
    k

let admit_exn engine spec =
  match Admission.submit engine spec with
  | Admission.Admitted { admit_id; _ } -> admit_id
  | Admission.Rejected r -> Alcotest.failf "unexpected rejection: %s" r

let wal_bytes dir = Journal.Source.read_file (Filename.concat dir "wal.bin")

let test_engine_degraded_mode () =
  with_dir @@ fun root ->
  with_failpoints @@ fun () ->
  let dir_a = Filename.concat root "a" and dir_b = Filename.concat root "b" in
  (* control: three keyed submissions, one batch, no failures *)
  let engine = Admission.start ~dir:dir_a ~config:engine_config (server_spec 11) in
  List.iter
    (fun k ->
      let (_ : int) = admit_exn engine (keyed k) in
      assert (Admission.ack_barrier engine))
    [ 0; 1; 2 ];
  ignore (Admission.flush engine : int);
  let (_ : Sim.Simulator.result) = Admission.finish engine in
  let bytes_a = wal_bytes dir_a in
  (* failing run: the fsync under submission 1's ack barrier dies *)
  let engine = Admission.start ~dir:dir_b ~config:engine_config (server_spec 11) in
  let (_ : int) = admit_exn engine (keyed 0) in
  assert (Admission.ack_barrier engine);
  Failpt.set "journal.fsync" "1*eio";
  let id1 = admit_exn engine (keyed 1) in
  Alcotest.(check bool) "barrier reports the failure" false
    (Admission.ack_barrier engine);
  Alcotest.(check bool) "engine degraded" true (Admission.degraded engine);
  Alcotest.(check bool) "failure described" true (Admission.last_error engine <> "");
  Alcotest.(check bool) "probe deadline armed" true (Admission.probe_at engine <> None);
  (* shedding: new submissions and idempotent resubmissions alike *)
  (match Admission.submit engine (keyed 2) with
  | Admission.Rejected "degraded" -> ()
  | _ -> Alcotest.fail "degraded engine must shed new submissions");
  (match Admission.submit engine (keyed 1) with
  | Admission.Rejected "degraded" -> ()
  | _ -> Alcotest.fail "degraded engine must shed resubmissions too");
  Alcotest.(check int) "degraded flush injects nothing" 0 (Admission.flush engine);
  let st = Admission.stats engine in
  Alcotest.(check bool) "stats: degraded flag" true st.Admission.degraded_now;
  Alcotest.(check int) "stats: shed count" 2 st.Admission.degraded_rejects;
  Alcotest.(check int) "stats: io errors" 1 st.Admission.io_errors;
  (* un-forced probe respects the backoff deadline *)
  Alcotest.(check bool) "probe before deadline declines" false (Admission.probe engine);
  (* the disk heals (schedule exhausted): a forced probe recovers *)
  Alcotest.(check bool) "forced probe heals" true (Admission.probe ~force:true engine);
  Alcotest.(check bool) "healthy again" true (not (Admission.degraded engine));
  (* the owed admission became durable: the client retry converges *)
  (match Admission.submit engine (keyed 1) with
  | Admission.Admitted { admit_id; duplicate } ->
      Alcotest.(check int) "same admission id" id1 admit_id;
      Alcotest.(check bool) "flagged duplicate" true duplicate
  | Admission.Rejected r -> Alcotest.failf "healed resubmission rejected: %s" r);
  let (_ : int) = admit_exn engine (keyed 2) in
  assert (Admission.ack_barrier engine);
  ignore (Admission.flush engine : int);
  let (_ : Sim.Simulator.result) = Admission.finish engine in
  Alcotest.(check string) "healed WAL byte-identical to the failure-free run" bytes_a
    (wal_bytes dir_b)

(* ------------------------------------------------------------------ *)
(* Headline property: failpoint schedules + kill-anywhere              *)
(* ------------------------------------------------------------------ *)

type op = Sub of int | Flush

let script =
  [ Sub 0; Sub 1; Flush; Sub 2; Sub 3; Sub 4; Flush; Flush; Sub 5; Sub 6; Flush ]

(* Finite (count-bounded) schedules only: every site exhausts, so the
   probe loop terminates and the run is guaranteed to heal. *)
let schedules =
  [|
    "seed=1;journal.fsync=1*eio";
    "seed=2;journal.write=1*enospc";
    "seed=3;journal.write=1*short(7);journal.fsync=1*eio";
    "seed=4;journal.fsync=2*eio;checkpoint.write=1*enospc";
    "seed=5;journal.write=2*short(3)";
  |]

let prop_config = { engine_config with Admission.checkpoint_every = 2 }

let heal engine =
  let tries = ref 0 in
  while not (Admission.probe ~force:true engine) do
    incr tries;
    if !tries > 10_000 then
      Alcotest.fail "disk never healed (unbounded failpoint schedule?)"
  done

(* Degraded-aware serving session: before each op the engine is healed
   (a real server probes on its select loop), a submission whose ack
   barrier failed — answered "degraded", still owed — is retried with
   the same idempotency key until the ack sticks.  Mirrors a client
   driving [--retries] against a shedding server. *)
let apply_ops_resilient engine ops ~acked =
  let acked = ref acked in
  List.iteri
    (fun i op ->
      if Admission.degraded engine then heal engine;
      match op with
      | Sub k ->
          let rec go tries =
            if tries > 100 then Alcotest.failf "op %d never converged" i;
            match Admission.submit engine (keyed k) with
            | Admission.Admitted { admit_id; duplicate = _ } ->
                if Admission.ack_barrier engine then begin
                  if not (List.mem admit_id !acked) then acked := admit_id :: !acked
                end
                else begin
                  heal engine;
                  go (tries + 1)
                end
            | Admission.Rejected "degraded" ->
                heal engine;
                go (tries + 1)
            | Admission.Rejected r -> Alcotest.failf "op %d rejected: %s" i r
          in
          go 0
      | Flush -> ignore (Admission.flush engine : int))
    ops;
  let result = Admission.finish engine in
  (List.rev !acked, result)

(* Failure-free variant for the control run and the post-recovery
   resumption (failpoints are disarmed before recovery: the operator
   restarts the server once the disk is back). *)
let apply_ops engine ops ~from_ ~acked =
  let acked = ref acked in
  List.iteri
    (fun i op ->
      if i >= from_ then
        match op with
        | Sub k ->
            (match Admission.submit engine (keyed k) with
            | Admission.Admitted { admit_id; duplicate = _ } ->
                assert (Admission.ack_barrier engine);
                if not (List.mem admit_id !acked) then acked := admit_id :: !acked
            | Admission.Rejected r -> Alcotest.failf "op %d rejected: %s" i r)
        | Flush -> ignore (Admission.flush engine : int))
    ops;
  let result = Admission.finish engine in
  (List.rev !acked, result)

let report_row spec (report : Sim.Metrics.report) =
  Sim.Csv_export.row ~faults:false ~resilience:false
    ~scheduler:spec.Experiment.scheduler ~mu:spec.Experiment.mu
    ~setup:spec.Experiment.setup ~seed:spec.Experiment.seed report

let resume_index ops ~admitted ~batches =
  let a = ref 0 and b = ref 0 and pending = ref 0 and idx = ref (List.length ops) in
  (try
     List.iteri
       (fun i op ->
         match op with
         | Sub _ ->
             if !a >= admitted then begin
               idx := i;
               raise Exit
             end;
             incr a;
             incr pending
         | Flush ->
             if !pending > 0 then begin
               if !b >= batches then begin
                 idx := i;
                 raise Exit
               end;
               incr b;
               pending := 0
             end)
       ops
   with Exit -> ());
  !idx

let prop_failpoints_and_kill_lose_no_acked_job =
  QCheck.Test.make
    ~name:
      "failpoints: any seeded schedule + crash at any WAL record loses no acked \
       admission, heals byte-identically"
    ~count:8
    QCheck.(
      triple (int_range 1 4) (float_range 0.0 1.0)
        (int_range 0 (Array.length schedules - 1)))
    (fun (seed, frac, sched_idx) ->
      let spec = server_spec seed in
      let dir_a = fresh_dir () and dir_b = fresh_dir () in
      Fun.protect
        ~finally:(fun () ->
          Chaos.disarm ();
          Failpt.deactivate ();
          rm_rf dir_a;
          rm_rf dir_b)
        (fun () ->
          (* control: no failpoints, no crash *)
          let engine_a = Admission.start ~dir:dir_a ~config:prop_config spec in
          let acked_a, result_a = apply_ops engine_a script ~from_:0 ~acked:[] in
          let bytes_a = wal_bytes dir_a in
          let l =
            match Journal.Source.load ~path:(Filename.concat dir_a "wal.bin") with
            | Ok l -> l
            | Error e ->
                QCheck.Test.fail_reportf "control WAL unreadable: %s"
                  (Journal.Error.to_string e)
          in
          let n = Array.length l.Journal.Source.records in
          if n < 3 then QCheck.Test.fail_reportf "degenerate session: %d records" n;
          let crash_at = 1 + int_of_float (frac *. float_of_int (n - 2)) in
          let schedule = schedules.(sched_idx) in
          (* tortured run: failpoint schedule armed AND a kill anywhere *)
          Failpt.load schedule;
          Chaos.arm ~crash_at ();
          let engine_b = Admission.start ~dir:dir_b ~config:prop_config spec in
          match apply_ops_resilient engine_b script ~acked:[] with
          | acked_b, result_b ->
              (* the armed crash index fell past this run's lifetime: the
                 completed session must equal the control run outright *)
              Chaos.disarm ();
              Failpt.deactivate ();
              if not (String.equal bytes_a (wal_bytes dir_b)) then
                QCheck.Test.fail_reportf "seed %d sched %S: uncrashed WALs differ" seed
                  schedule;
              if report_row spec result_a.Sim.Simulator.report
                 <> report_row spec result_b.Sim.Simulator.report
              then
                QCheck.Test.fail_reportf "seed %d sched %S: uncrashed reports differ"
                  seed schedule;
              List.sort compare acked_a = List.sort compare acked_b
          | exception Chaos.Crashed _ ->
              (* disk heals and the operator restarts: recovery runs with
                 the failpoints disarmed *)
              Chaos.disarm ();
              Failpt.deactivate ();
              (* every durable [Admit] record is an admission whose ack
                 could have reached a client (WAL-before-ack) *)
              let acked_pre =
                let survivors = ref [] in
                (match Journal.Source.load ~path:(Filename.concat dir_b "wal.bin") with
                | Ok l ->
                    Array.iter
                      (fun body ->
                        match Sim.Wal.decode body with
                        | Sim.Wal.Admit { admit_id; _ } ->
                            survivors := admit_id :: !survivors
                        | _ -> ()
                        | exception Prelude.Codec.Error _ -> ())
                      l.Journal.Source.records
                | Error _ -> ());
                List.rev !survivors
              in
              let r =
                try Admission.recover ~dir:dir_b ~config:prop_config ()
                with Journal.Error.Journal_error e ->
                  QCheck.Test.fail_reportf
                    "seed %d sched %S crash@%d/%d: recovery failed: %s" seed schedule
                    crash_at n (Journal.Error.to_string e)
              in
              let engine_b = r.Admission.engine in
              List.iter
                (fun id ->
                  if Admission.status engine_b id = None then
                    QCheck.Test.fail_reportf
                      "seed %d sched %S crash@%d/%d: acked admission %d lost" seed
                      schedule crash_at n id)
                acked_pre;
              let st = Admission.stats engine_b in
              let from_ =
                resume_index script ~admitted:st.Admission.admitted
                  ~batches:st.Admission.batches
              in
              let acked_b, result_b = apply_ops engine_b script ~from_ ~acked:acked_pre in
              if report_row spec result_a.Sim.Simulator.report
                 <> report_row spec result_b.Sim.Simulator.report
              then
                QCheck.Test.fail_reportf "seed %d sched %S crash@%d/%d: reports differ"
                  seed schedule crash_at n;
              if not (String.equal bytes_a (wal_bytes dir_b)) then
                QCheck.Test.fail_reportf
                  "seed %d sched %S crash@%d/%d (resumed at op %d): WALs differ" seed
                  schedule crash_at n from_;
              if List.sort compare acked_a <> List.sort compare acked_b then
                QCheck.Test.fail_reportf
                  "seed %d sched %S crash@%d/%d: acked sets differ" seed schedule
                  crash_at n;
              true))

(* ------------------------------------------------------------------ *)
(* Adversarial transports against a forked server                      *)
(* ------------------------------------------------------------------ *)

let send_all fd data =
  let len = String.length data in
  let rec write off =
    if off < len then write (off + Unix.write_substring fd data off (len - off))
  in
  write 0

let send_line fd line = send_all fd (line ^ "\n")

(* Bounded read: the test must never hang on a server bug. *)
let recv_line ?(timeout = 10.0) fd buf =
  let chunk = Bytes.create 4096 in
  let rec read () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
        let all = Buffer.contents buf in
        let line = String.sub all 0 i in
        Buffer.clear buf;
        Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
        line
    | None ->
        (match Unix.select [ fd ] [] [] timeout with
        | [], _, _ -> Alcotest.fail "timed out waiting for the server's reply"
        | _ -> ());
        let n = Unix.read fd chunk 0 4096 in
        if n = 0 then Alcotest.fail "server closed the connection";
        Buffer.add_subbytes buf chunk 0 n;
        read ()
  in
  read ()

let connect_with_retry path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0
      ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go (tries - 1)
  in
  go 100

let check_ok resp name =
  match Json.parse resp with
  | Ok v when Json.member "ok" v = Some (Json.Bool true) -> v
  | Ok _ -> Alcotest.failf "%s: server said no: %s" name resp
  | Error e -> Alcotest.failf "%s: bad response %s: %s" name resp e

(* Fork a serving child; [failpoints] is loaded in the child (the
   registry is per-process), [io_timeout] is the containment deadline. *)
let with_server ?failpoints ?(io_timeout = 30.0) ~seed f =
  with_dir @@ fun dir ->
  let sock = Filename.concat dir "server.sock" in
  let state = Filename.concat dir "journal" in
  match Unix.fork () with
  | 0 ->
      Unix._exit
        (try
           (match failpoints with None -> () | Some v -> Failpt.load v);
           let engine = Admission.start ~dir:state ~config:engine_config (server_spec seed) in
           let (_ : Sim.Simulator.result) =
             Server.Net.serve ~engine ~listen:(Server.Net.Unix_sock sock)
               ~tick_interval:10.0 ~io_timeout ()
           in
           0
         with _ -> 1)
  | pid ->
      let finally () = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          f sock;
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, Unix.WEXITED c -> Alcotest.failf "server exited %d" c
          | _ -> Alcotest.fail "server killed by signal")

(* A submit line whose client key holds multi-byte UTF-8, so the
   byte-by-byte transport splits mid-character as well as mid-frame. *)
let utf8_submit =
  {|{"op":"submit","priority":"batch","groups":[{"count":2,"cpu":1.0,"mem":2.0,"duration":10.0}],"client_id":"clé-é-0"}|}

let test_transport_partial_writes () =
  with_server ~seed:21 @@ fun sock ->
  let fd = connect_with_retry sock in
  let buf = Buffer.create 256 in
  (* one byte per write: every frame and every UTF-8 character is split *)
  String.iter (fun c -> send_all fd (String.make 1 c)) (utf8_submit ^ "\n");
  let v = check_ok (recv_line fd buf) "byte-by-byte submit" in
  Alcotest.(check (option int)) "admitted" (Some 0)
    (Option.bind (Json.member "id" v) Json.to_int);
  (* two requests split mid-frame across writes *)
  let line2 = Protocol.render_submit (synth_spec ~client_id:"frame-1" 1) in
  let both = line2 ^ "\n" ^ {|{"op":"stats"}|} ^ "\n" in
  let cut = String.length line2 / 2 in
  send_all fd (String.sub both 0 cut);
  Unix.sleepf 0.05;
  send_all fd (String.sub both cut (String.length both - cut));
  let v = check_ok (recv_line fd buf) "mid-frame submit" in
  Alcotest.(check (option int)) "second admission" (Some 1)
    (Option.bind (Json.member "id" v) Json.to_int);
  let v = check_ok (recv_line fd buf) "stats after split" in
  Alcotest.(check (option bool)) "stats report healthy" (Some false)
    (Option.bind (Json.member "degraded" v) (function
      | Json.Bool b -> Some b
      | _ -> None));
  send_line fd {|{"op":"shutdown"}|};
  let (_ : Json.t) = check_ok (recv_line fd buf) "shutdown" in
  Unix.close fd

let test_transport_disconnect_before_reply () =
  with_server ~seed:22 @@ fun sock ->
  (* fire a keyed submission and vanish without reading the reply *)
  let fd = connect_with_retry sock in
  send_line fd (Protocol.render_submit (synth_spec ~client_id:"gone-0" 0));
  Unix.close fd;
  Unix.sleepf 0.2;
  (* the admission was journaled: a retry with the same key converges *)
  let fd = connect_with_retry sock in
  let buf = Buffer.create 256 in
  send_line fd (Protocol.render_submit (synth_spec ~client_id:"gone-0" 0));
  let v = check_ok (recv_line fd buf) "resubmission" in
  Alcotest.(check (option bool)) "deduplicated" (Some true)
    (Option.bind (Json.member "duplicate" v) (function
      | Json.Bool b -> Some b
      | _ -> None));
  send_line fd {|{"op":"shutdown"}|};
  let (_ : Json.t) = check_ok (recv_line fd buf) "shutdown" in
  Unix.close fd

let test_transport_slow_loris_contained () =
  with_server ~seed:23 ~io_timeout:0.4 @@ fun sock ->
  (* a dribbling connection starts a line and never finishes it *)
  let loris = connect_with_retry sock in
  send_all loris {|{"op|};
  (* the server must cut it off at the io deadline *)
  let closed =
    match Unix.select [ loris ] [] [] 5.0 with
    | [], _, _ -> false
    | _ -> (
        match Unix.read loris (Bytes.create 64) 0 64 with
        | 0 -> true
        | _ -> false
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> true)
  in
  Alcotest.(check bool) "slow-loris connection closed" true closed;
  (try Unix.close loris with Unix.Unix_error _ -> ());
  (* the server is still alive and serving *)
  let fd = connect_with_retry sock in
  let buf = Buffer.create 256 in
  send_line fd {|{"op":"stats"}|};
  let (_ : Json.t) = check_ok (recv_line fd buf) "stats after loris" in
  send_line fd {|{"op":"shutdown"}|};
  let (_ : Json.t) = check_ok (recv_line fd buf) "shutdown" in
  Unix.close fd

let test_transport_survives_net_failpoints () =
  (* accept fails once with EMFILE, replies dribble out through forced
     1-byte partial writes — the exchange still completes *)
  with_server ~seed:24 ~failpoints:"seed=9;net.accept=1*emfile;net.write=6*short(1)"
  @@ fun sock ->
  let fd = connect_with_retry sock in
  let buf = Buffer.create 256 in
  send_line fd (Protocol.render_submit (synth_spec ~client_id:"fp-net-0" 0));
  let v = check_ok (recv_line fd buf) "submit through failpoints" in
  Alcotest.(check (option int)) "admitted" (Some 0)
    (Option.bind (Json.member "id" v) Json.to_int);
  send_line fd {|{"op":"shutdown"}|};
  let (_ : Json.t) = check_ok (recv_line fd buf) "shutdown" in
  Unix.close fd

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "failpoints"
    [
      ( "registry",
        [
          quick "grammar parses and describes" test_grammar_parses;
          quick "bad specs rejected" test_grammar_rejects;
          quick "seeded streams deterministic and independent" test_eval_deterministic;
        ] );
      ( "sink",
        [
          quick "short write truncates and heals" test_sink_short_write_heals;
          quick "fsync failure keeps frames buffered" test_sink_fsync_failure_heals;
          quick "ENOSPC barrier retries in order" test_sink_enospc_heals;
          quick "checkpoint write failure is a clean skip"
            test_checkpoint_write_failure_is_recoverable;
        ] );
      ( "degraded",
        [ quick "shed, probe, heal, byte-identical WAL" test_engine_degraded_mode ]
        @ qt [ prop_failpoints_and_kill_lose_no_acked_job ] );
      ( "transport",
        [
          quick "partial writes mid-UTF-8 and mid-frame" test_transport_partial_writes;
          quick "disconnect between request and reply"
            test_transport_disconnect_before_reply;
          quick "slow-loris contained" test_transport_slow_loris_contained;
          quick "accept/write failpoints survived" test_transport_survives_net_failpoints;
        ] );
    ]
