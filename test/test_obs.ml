(* Tests of the observability layer: histogram quantiles, ring-buffer
   wraparound, the zero-cost disabled mode, JSONL round-trips, and the
   agreement between Sim.Metrics' solver histogram and the tracer's
   solver_profile records. *)

let reset_obs () =
  Obs.set_enabled false;
  Obs.Trace.close_jsonl ();
  Obs.Trace.clear ();
  Obs.Trace.set_sim_time 0.0;
  Obs.Registry.reset ()

(* ------------------------------------------------------------------ *)
(* Histogram                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_exact_stats () =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.observe h) [ 0.004; 0.002; 0.01; 0.001; 0.003 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum" 0.02 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-12)) "mean" 0.004 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-12)) "min" 0.001 (Obs.Histogram.min_value h);
  Alcotest.(check (float 1e-12)) "max" 0.01 (Obs.Histogram.max_value h)

let test_histogram_empty () =
  let h = Obs.Histogram.create () in
  Alcotest.(check int) "count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 0.0)) "quantile" 0.0 (Obs.Histogram.quantile h 0.5);
  Alcotest.(check bool) "cdf empty" true (Obs.Histogram.cdf_points ~points:5 h = []);
  Obs.Histogram.observe h Float.nan;
  Alcotest.(check int) "NaN ignored" 0 (Obs.Histogram.count h)

(* Quantiles on a log-uniform sample (1 ms .. 10 s) must land within the
   bucket resolution (about 5.9% at 20 buckets/decade; 8% leaves margin
   for the discrete sample). *)
let test_histogram_quantiles () =
  let n = 10_000 in
  let h = Obs.Histogram.create () in
  let samples =
    List.init n (fun i ->
        let u = float_of_int i /. float_of_int (n - 1) in
        0.001 *. (10.0 ** (4.0 *. u)))
  in
  List.iter (Obs.Histogram.observe h) samples;
  let sorted = List.sort compare samples in
  let exact q = List.nth sorted (min (n - 1) (int_of_float (q *. float_of_int n))) in
  List.iter
    (fun q ->
      let est = Obs.Histogram.quantile h q in
      let ref_ = exact q in
      let rel = abs_float (est -. ref_) /. ref_ in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within 8%% (est %g ref %g)" (100.0 *. q) est ref_)
        true (rel < 0.08))
    [ 0.10; 0.50; 0.90; 0.95; 0.99 ];
  (* Extremes are exact. *)
  Alcotest.(check (float 1e-9)) "p0 = min" (Obs.Histogram.min_value h)
    (Obs.Histogram.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" (Obs.Histogram.max_value h)
    (Obs.Histogram.quantile h 1.0)

let test_histogram_out_of_range () =
  let h = Obs.Histogram.create ~lo:1e-6 ~decades:3 ~buckets_per_decade:10 () in
  (* Below lo (underflow) and far above the covered range (overflow). *)
  Obs.Histogram.observe h 0.0;
  Obs.Histogram.observe h 1e-9;
  Obs.Histogram.observe h 50.0;
  Alcotest.(check int) "count" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-12)) "min exact" 0.0 (Obs.Histogram.min_value h);
  Alcotest.(check (float 1e-12)) "max exact" 50.0 (Obs.Histogram.max_value h);
  Alcotest.(check (float 1e-12)) "low quantile clamps to min" 0.0 (Obs.Histogram.quantile h 0.0);
  Alcotest.(check (float 1e-12)) "high quantile clamps to max" 50.0
    (Obs.Histogram.quantile h 1.0)

let test_histogram_merge () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  let all = Obs.Histogram.create () in
  List.iteri
    (fun i v ->
      Obs.Histogram.observe (if i mod 2 = 0 then a else b) v;
      Obs.Histogram.observe all v)
    (List.init 1000 (fun i -> 0.001 *. float_of_int (i + 1)));
  let m = Obs.Histogram.merged [ a; b ] in
  Alcotest.(check int) "count" (Obs.Histogram.count all) (Obs.Histogram.count m);
  Alcotest.(check (float 1e-9)) "sum" (Obs.Histogram.sum all) (Obs.Histogram.sum m);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%g equals unsplit histogram" q)
        (Obs.Histogram.quantile all q) (Obs.Histogram.quantile m q))
    [ 0.1; 0.5; 0.9; 0.99 ];
  (* Merging must not alias the source's buckets. *)
  Obs.Histogram.observe a 1.0;
  Alcotest.(check int) "merged unaffected by later observes" 1000 (Obs.Histogram.count m);
  let other = Obs.Histogram.create ~buckets_per_decade:5 () in
  Alcotest.check_raises "layout mismatch rejected"
    (Invalid_argument "Histogram.merge_into: layouts differ") (fun () ->
      Obs.Histogram.merge_into a other)

(* ------------------------------------------------------------------ *)
(* Tracer                                                             *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  reset_obs ();
  Obs.Trace.set_capacity 8;
  Obs.set_enabled true;
  for i = 1 to 20 do
    if Obs.enabled () then Obs.Trace.emit "tick" [ ("i", Obs.Trace.Int i) ]
  done;
  let rs = Obs.Trace.records () in
  Alcotest.(check int) "only capacity retained" 8 (List.length rs);
  Alcotest.(check (list int))
    "newest 8 survive, in order"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map
       (fun r ->
         match Obs.Trace.field r "i" with Some (Obs.Trace.Int i) -> i | _ -> -1)
       rs);
  Alcotest.(check int) "seq keeps counting" 20 (List.nth rs 7).Obs.Trace.seq;
  reset_obs ();
  Obs.Trace.set_capacity 65536

let test_disabled_is_noop () =
  reset_obs ();
  let big = String.make 64 'x' in
  let emit_guarded i =
    if Obs.enabled () then begin
      Obs.Trace.emit "hot_path"
        [ ("i", Obs.Trace.Int i); ("payload", Obs.Trace.Str (big ^ string_of_int i)) ];
      Obs.Registry.incr (Obs.Registry.counter "test.noop")
    end
  in
  (* Warm up so the closure itself is not counted. *)
  emit_guarded 0;
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    emit_guarded i
  done;
  let after = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "no allocation with tracing disabled" 0.0 (after -. before);
  Alcotest.(check int) "no records" 0 (Obs.Trace.length ());
  Alcotest.(check bool) "no counters touched" true (Obs.Registry.counters () = [])

let test_registry () =
  reset_obs ();
  let c = Obs.Registry.counter "a.count" in
  Obs.Registry.incr c;
  Obs.Registry.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Registry.counter_value c);
  Alcotest.(check bool) "same instance by name" true (c == Obs.Registry.counter "a.count");
  let g = Obs.Registry.gauge "a.depth" in
  Obs.Registry.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge" 3.5 (Obs.Registry.gauge_value g);
  Obs.Histogram.observe (Obs.Registry.histogram "a.hist") 0.25;
  Alcotest.(check int) "histogram registered" 1
    (Obs.Histogram.count (Obs.Registry.histogram "a.hist"));
  Alcotest.(check (list (pair string int))) "counters listing" [ ("a.count", 5) ]
    (Obs.Registry.counters ());
  Obs.Registry.reset ();
  Alcotest.(check int) "reset drops state" 0
    (Obs.Histogram.count (Obs.Registry.histogram "a.hist"))

(* ------------------------------------------------------------------ *)
(* JSONL                                                              *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let r =
    {
      Obs.Trace.seq = 42;
      t_sim = 12.25;
      t_wall = 1690000000.125;
      level = Obs.Trace.Warn;
      name = "odd \"event\"\nname";
      fields =
        [
          ("n", Obs.Trace.Int (-7));
          ("x", Obs.Trace.Float (-0.001));
          ("big", Obs.Trace.Float 1e17);
          ("s", Obs.Trace.Str "tab\there, quote\" and back\\slash");
          ("flag", Obs.Trace.Bool true);
          ("off", Obs.Trace.Bool false);
        ];
    }
  in
  let line = Obs.Trace.to_json r in
  Alcotest.(check bool) "single line" true (not (String.contains line '\n'));
  let r' = Obs.Trace.of_json line in
  Alcotest.(check bool) "round-trips" true (r = r')

let test_jsonl_sink () =
  reset_obs ();
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Obs.set_enabled true;
  Obs.Trace.open_jsonl path;
  Obs.Trace.set_sim_time 1.5;
  if Obs.enabled () then begin
    Obs.Trace.emit "first" [ ("k", Obs.Trace.Str "v") ];
    Obs.Trace.emit ~level:Obs.Trace.Debug "second" []
  end;
  Obs.Trace.close_jsonl ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  let parsed = List.map Obs.Trace.of_json lines in
  Alcotest.(check (list string)) "event names" [ "first"; "second" ]
    (List.map (fun r -> r.Obs.Trace.name) parsed);
  List.iter
    (fun r -> Alcotest.(check (float 1e-9)) "sim time stamped" 1.5 r.Obs.Trace.t_sim)
    parsed;
  Sys.remove path;
  reset_obs ()

(* ------------------------------------------------------------------ *)
(* Solver profile integration                                         *)
(* ------------------------------------------------------------------ *)

let solve_small_instance () =
  let g = Flow.Graph.create () in
  let s = Flow.Graph.add_node g and m1 = Flow.Graph.add_node g in
  let m2 = Flow.Graph.add_node g and sink = Flow.Graph.add_node g in
  Flow.Graph.set_supply g s 2;
  Flow.Graph.set_supply g sink (-2);
  ignore (Flow.Graph.add_arc g ~src:s ~dst:m1 ~cap:1 ~cost:1);
  ignore (Flow.Graph.add_arc g ~src:s ~dst:m2 ~cap:1 ~cost:3);
  ignore (Flow.Graph.add_arc g ~src:m1 ~dst:sink ~cap:1 ~cost:0);
  ignore (Flow.Graph.add_arc g ~src:m2 ~dst:sink ~cap:1 ~cost:0);
  Flow.Mcmf.solve g

let test_solver_profile_emitted () =
  reset_obs ();
  Obs.set_enabled true;
  let r = solve_small_instance () in
  Alcotest.(check string) "solver name" "ssp" r.Flow.Mcmf.profile.Obs.Solver_profile.solver;
  Alcotest.(check int) "nodes" 4 r.Flow.Mcmf.profile.Obs.Solver_profile.nodes;
  Alcotest.(check int) "arcs" 4 r.Flow.Mcmf.profile.Obs.Solver_profile.arcs;
  Alcotest.(check int) "augmentations in profile" r.Flow.Mcmf.augmentations
    r.Flow.Mcmf.profile.Obs.Solver_profile.augmentations;
  Alcotest.(check bool) "stage timings present" true
    (List.mem_assoc "dijkstra" r.Flow.Mcmf.profile.Obs.Solver_profile.stages);
  let profile_events =
    List.filter (fun e -> e.Obs.Trace.name = "solver_profile") (Obs.Trace.records ())
  in
  Alcotest.(check int) "one solver_profile event" 1 (List.length profile_events);
  Alcotest.(check int) "flow.solves counter" 1
    (Obs.Registry.counter_value (Obs.Registry.counter "flow.solves"));
  Alcotest.(check int) "flow.solve_s histogram" 1
    (Obs.Histogram.count (Obs.Registry.histogram "flow.solve_s"));
  reset_obs ();
  (* Disabled: profile still attached (sizes etc.) but nothing emitted
     and no stage timings collected. *)
  let r = solve_small_instance () in
  Alcotest.(check bool) "no stages when disabled" true
    (r.Flow.Mcmf.profile.Obs.Solver_profile.stages = []);
  Alcotest.(check int) "no events when disabled" 0 (Obs.Trace.length ())

(* Regression: the solver wall time reported through Metrics.on_solver_sample
   must agree with the wall_s of the solver_profile trace records — the
   adapter feeds r.elapsed_s, the profile carries the same measurement. *)
let test_metrics_profile_agree () =
  reset_obs ();
  Obs.Trace.set_capacity 131072;
  Obs.set_enabled true;
  let spec =
    {
      Harness.Experiment.default with
      scheduler = "hire";
      k = 4;
      horizon = 120.0;
      mu = 0.7;
      target_utilization = 1.5;
    }
  in
  let r = Harness.Experiment.run spec in
  let profile_walls =
    Obs.Trace.records ()
    |> List.filter (fun e -> e.Obs.Trace.name = "solver_profile")
    |> List.map (fun e ->
           match Obs.Trace.field e "wall_s" with
           | Some (Obs.Trace.Float w) -> w
           | _ -> Alcotest.fail "solver_profile without wall_s")
  in
  let h = r.Sim.Metrics.solver_wall in
  Alcotest.(check bool) "solver ran" true (profile_walls <> []);
  Alcotest.(check int) "one profile per metrics sample" (Obs.Histogram.count h)
    (List.length profile_walls);
  let profile_sum = List.fold_left ( +. ) 0.0 profile_walls in
  let diff = abs_float (profile_sum -. Obs.Histogram.sum h) in
  Alcotest.(check bool)
    (Printf.sprintf "wall-time totals agree (profiles %.6fs, metrics %.6fs)" profile_sum
       (Obs.Histogram.sum h))
    true
    (diff <= 1e-9 +. (1e-6 *. profile_sum));
  reset_obs ();
  Obs.Trace.set_capacity 65536

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact stats" `Quick test_histogram_exact_stats;
          Alcotest.test_case "empty and NaN" `Quick test_histogram_empty;
          Alcotest.test_case "quantile accuracy" `Quick test_histogram_quantiles;
          Alcotest.test_case "underflow/overflow" `Quick test_histogram_out_of_range;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "file sink" `Quick test_jsonl_sink;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "solver profile emitted" `Quick test_solver_profile_emitted;
          Alcotest.test_case "metrics agree with profiles" `Quick test_metrics_profile_agree;
        ] );
    ]
