(* Integration tests across the scheduling stack: the HIRE flow network,
   the HIRE scheduler, baseline mode handling, the cluster ledgers, the
   event queue, metrics, and full simulator runs (determinism, resource
   conservation, all registered schedulers). *)

module Poly_req = Hire.Poly_req
module Comp_req = Hire.Comp_req
module Comp_store = Hire.Comp_store
module Transformer = Hire.Transformer
module Pending = Hire.Pending
module Flow_network = Hire.Flow_network
module Hire_scheduler = Hire.Hire_scheduler
module Cost_model = Hire.Cost_model
module Vec = Prelude.Vec
module Rng = Prelude.Rng

let store = Comp_store.default ()

let make_cluster ?(k = 4) ?(setup = Sim.Cluster.Homogeneous) ?(fraction = 1.0) ?(seed = 3) ()
    =
  Sim.Cluster.create ~inc_capable_fraction:fraction ~k ~setup
    ~services:(Array.to_list (Comp_store.service_names store))
    (Rng.create seed)

let poly_of_req ?(ids = Transformer.Id_gen.create ()) ?(job_id = 1) ?(seed = 5) req =
  Transformer.transform store ids (Rng.create seed) ~job_id ~arrival:0.0 req

let server_only_req n =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = "server";
          base = { Comp_req.instances = n; cpu = 2.0; mem = 4.0; duration = 30.0 };
          inc_alternatives = [];
        };
      ];
    connections = [];
  }

let inc_req ?(service = "netchain") ?(n = 10) () =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = Option.get (Comp_store.template_of_service store service);
          base = { Comp_req.instances = n; cpu = 2.0; mem = 4.0; duration = 30.0 };
          inc_alternatives = [ service ];
        };
      ];
    connections = [];
  }

(* ------------------------------------------------------------------ *)
(* Event queue                                                        *)
(* ------------------------------------------------------------------ *)

let test_event_queue_order () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q ~time:2.0 "b";
  Sim.Event_queue.push q ~time:1.0 "a";
  Sim.Event_queue.push q ~time:2.0 "c";
  Alcotest.(check (option (pair (float 1e-9) string))) "a first" (Some (1.0, "a"))
    (Sim.Event_queue.pop q);
  (* Ties delivered in insertion order. *)
  Alcotest.(check (option (pair (float 1e-9) string))) "b before c" (Some (2.0, "b"))
    (Sim.Event_queue.pop q);
  Alcotest.(check (option (pair (float 1e-9) string))) "c last" (Some (2.0, "c"))
    (Sim.Event_queue.pop q);
  Alcotest.(check bool) "empty" true (Sim.Event_queue.is_empty q)

let test_event_queue_rejects_nan () =
  let q = Sim.Event_queue.create () in
  Alcotest.(check bool) "nan rejected" true
    (try
       Sim.Event_queue.push q ~time:Float.nan "x";
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cluster                                                            *)
(* ------------------------------------------------------------------ *)

let test_cluster_setup () =
  let c = make_cluster () in
  Alcotest.(check int) "servers" 16 (Sim.Cluster.n_servers c);
  Alcotest.(check int) "switches" 20 (Sim.Cluster.n_switches c);
  Alcotest.(check int) "all capable at fraction 1" 20 (Sim.Cluster.n_inc_capable c)

let test_cluster_capable_fraction () =
  let c = make_cluster ~fraction:0.5 () in
  Alcotest.(check int) "half capable" 10 (Sim.Cluster.n_inc_capable c)

let test_cluster_heterogeneous_two_services () =
  let c = make_cluster ~setup:Sim.Cluster.Heterogeneous () in
  Array.iter
    (fun s ->
      let n = List.length (Hire.Sharing.supported_services (Sim.Cluster.sharing c) s) in
      Alcotest.(check int) "two services" 2 n)
    (Topology.Fat_tree.switches (Sim.Cluster.topo c))

let test_cluster_server_ledger () =
  let c = make_cluster () in
  let s = (Topology.Fat_tree.servers (Sim.Cluster.topo c)).(0) in
  let demand = Vec.of_list [ 10.0; 10.0 ] in
  Sim.Cluster.place_server_task c ~server:s ~demand;
  let avail = Sim.Cluster.server_available c s in
  Alcotest.(check (float 1e-9)) "cpu deducted" 86.0 avail.(0);
  Sim.Cluster.release_server_task c ~server:s ~demand;
  let avail = Sim.Cluster.server_available c s in
  Alcotest.(check (float 1e-9)) "restored" 96.0 avail.(0);
  Alcotest.(check bool) "overload rejected" true
    (try
       Sim.Cluster.place_server_task c ~server:s ~demand:(Vec.of_list [ 1000.0; 1.0 ]);
       false
     with Invalid_argument _ -> true)

let test_cluster_network_ledger_shared_vs_not () =
  let c = make_cluster () in
  let poly = poly_of_req (inc_req ()) in
  let tg = List.hd (Poly_req.network_groups poly) in
  let sw = (Topology.Fat_tree.tor_switches (Sim.Cluster.topo c)).(0) in
  let charged_first = Sim.Cluster.place_network_task c ~switch:sw ~tg ~shared:true in
  let charged_second = Sim.Cluster.place_network_task c ~switch:sw ~tg ~shared:true in
  (* NetChain registers 8 stages once; the second instance is cheaper. *)
  Alcotest.(check bool) "second shared instance cheaper" true
    (Vec.avg charged_second < Vec.avg charged_first);
  Sim.Cluster.release_network_task c ~switch:sw ~tg ~shared:true;
  Sim.Cluster.release_network_task c ~switch:sw ~tg ~shared:true;
  let used = Sim.Cluster.switch_used_total c in
  Alcotest.(check bool) "all refunded" true (Vec.is_zero used);
  (* Unshared charging folds the registration every time. *)
  let u1 = Sim.Cluster.place_network_task c ~switch:sw ~tg ~shared:false in
  let u2 = Sim.Cluster.place_network_task c ~switch:sw ~tg ~shared:false in
  Alcotest.(check bool) "unshared charges equal" true (Vec.equal u1 u2)

(* ------------------------------------------------------------------ *)
(* Flow network                                                       *)
(* ------------------------------------------------------------------ *)

let build_net ?(now = 1.0) cluster jobs =
  let census = Hire.Locality.Task_census.create (Sim.Cluster.topo cluster) in
  Flow_network.build (Sim.Cluster.view cluster) census ~jobs ~now
    ~params:Cost_model.default_params

let test_flow_network_places_server_job () =
  let cluster = make_cluster () in
  let job = Pending.of_poly (poly_of_req (server_only_req 3)) in
  let net = build_net cluster [ job ] in
  let outcome = Flow_network.solve_and_extract net in
  Alcotest.(check int) "3 placements" 3 (List.length outcome.placements);
  List.iter
    (fun (_, m) ->
      Alcotest.(check bool) "on a server" true
        (Topology.Fat_tree.is_server (Sim.Cluster.topo cluster) m))
    outcome.placements;
  let machines = List.map snd outcome.placements in
  Alcotest.(check int) "distinct machines per round" 3
    (List.length (List.sort_uniq compare machines))

let test_flow_network_flavor_pick_prefers_inc () =
  let cluster = make_cluster () in
  let job = Pending.of_poly (poly_of_req (inc_req ())) in
  (* Past the Φpref window the decision is strictly cheaper than
     postponing; with free switches the INC variant must be picked. *)
  let net = build_net ~now:2.5 cluster [ job ] in
  let outcome = Flow_network.solve_and_extract net in
  Alcotest.(check int) "one flavor pick" 1 (List.length outcome.flavor_picks);
  let _, tg_id = List.hd outcome.flavor_picks in
  let ts = Option.get (Pending.find_tg job tg_id) in
  Alcotest.(check bool) "picked the INC variant" true
    (Poly_req.is_network ts.Pending.tg
    || ts.Pending.tg.Poly_req.count < 10 (* the reduced server sibling *))

let test_flow_network_no_inc_when_unsupported () =
  (* Heterogeneous cluster where no switch supports the requested
     service: the flavor decision must go to the server variant. *)
  let cluster = make_cluster () in
  (* Use a service name absent from every switch by monkeying the
     request: create cluster with zero capable switches instead. *)
  let cluster0 = make_cluster ~fraction:0.0001 () in
  ignore cluster;
  let job = Pending.of_poly (poly_of_req (inc_req ~service:"netcache" ())) in
  (* fraction rounds up to at least 1 switch; pick a service whose shape
     requires a ToR and hope the one capable switch is not one?  Make it
     deterministic instead: require more switches than exist. *)
  let job_big = Pending.of_poly (poly_of_req ~seed:8 (inc_req ~n:4 ())) in
  ignore job_big;
  let net = build_net cluster0 [ job ] in
  let outcome = Flow_network.solve_and_extract net in
  (* Either a server-variant pick or a postponed flavor — but never an
     INC placement on a switch. *)
  List.iter
    (fun (_, m) ->
      Alcotest.(check bool) "never on a switch" true
        (Topology.Fat_tree.is_server (Sim.Cluster.topo cluster0) m
        || not (Poly_req.is_network (Option.get (Pending.find_tg job 0)).Pending.tg)))
    outcome.placements

let test_flow_network_respects_capacity () =
  let cluster = make_cluster () in
  (* Fill every server almost completely. *)
  Array.iter
    (fun s ->
      Sim.Cluster.place_server_task cluster ~server:s ~demand:(Vec.of_list [ 95.0; 99.0 ]))
    (Topology.Fat_tree.servers (Sim.Cluster.topo cluster));
  let job = Pending.of_poly (poly_of_req (server_only_req 5)) in
  let net = build_net cluster [ job ] in
  let outcome = Flow_network.solve_and_extract net in
  Alcotest.(check int) "nothing placeable" 0 (List.length outcome.placements)

let test_flow_network_one_task_per_machine_per_round () =
  let cluster = make_cluster () in
  let jobs =
    List.init 3 (fun i ->
        Pending.of_poly (poly_of_req ~job_id:i ~seed:(10 + i) (server_only_req 8)))
  in
  let net = build_net cluster jobs in
  let outcome = Flow_network.solve_and_extract net in
  let machines = List.map snd outcome.placements in
  Alcotest.(check int) "machines distinct" (List.length machines)
    (List.length (List.sort_uniq compare machines))

let test_flow_network_solver_optimal () =
  let cluster = make_cluster () in
  let jobs = [ Pending.of_poly (poly_of_req (inc_req ())) ] in
  let net = build_net cluster jobs in
  let _ = Flow_network.solve_and_extract net in
  match Flow.Verify.check (Flow_network.graph net) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "flow not optimal: %a" Flow.Verify.pp_violation v

(* ------------------------------------------------------------------ *)
(* HIRE scheduler                                                     *)
(* ------------------------------------------------------------------ *)

let drive_rounds sched cluster times =
  List.concat_map
    (fun time ->
      let o = Hire_scheduler.run_round sched ~time in
      List.iter
        (fun ((tg : Poly_req.task_group), m) ->
          match tg.kind with
          | Poly_req.Server_tg ->
              Sim.Cluster.place_server_task cluster ~server:m ~demand:tg.demand
          | Poly_req.Network_tg _ ->
              ignore (Sim.Cluster.place_network_task cluster ~switch:m ~tg ~shared:true))
        o.placements;
      o.placements)
    times

let test_hire_scheduler_serves_inc_job () =
  let cluster = make_cluster () in
  let sched = Hire_scheduler.create (Sim.Cluster.view cluster) in
  Hire_scheduler.submit sched ~time:0.0 (poly_of_req (inc_req ()));
  let times = [ 0.1; 0.4; 0.7; 1.0; 1.3; 1.6; 1.9; 2.2; 2.5 ] in
  let placements = drive_rounds sched cluster times in
  let on_switches =
    List.filter (fun ((tg : Poly_req.task_group), _) -> Poly_req.is_network tg) placements
  in
  Alcotest.(check int) "3 chain switches placed" 3 (List.length on_switches);
  let sw = List.map snd on_switches in
  Alcotest.(check int) "distinct switches" 3 (List.length (List.sort_uniq compare sw));
  Alcotest.(check bool) "job drained" false (Hire_scheduler.pending_work sched)

let test_hire_scheduler_falls_back_when_inc_impossible () =
  (* One capable switch cannot host a 3-switch chain: after the Φpref
     upper bound the job must fall back to the server variant. *)
  let cluster = make_cluster ~fraction:0.0001 () in
  let sched = Hire_scheduler.create (Sim.Cluster.view cluster) in
  Hire_scheduler.submit sched ~time:0.0 (poly_of_req (inc_req ()));
  let outcomes =
    List.map (fun time -> Hire_scheduler.run_round sched ~time) [ 0.5; 1.0; 2.1; 2.4 ]
  in
  let fallbacks = List.fold_left (fun acc o -> acc + o.Hire_scheduler.fallbacks) 0 outcomes in
  Alcotest.(check int) "fell back" 1 fallbacks

let test_hire_scheduler_determinism () =
  let run () =
    let cluster = make_cluster () in
    let sched = Hire_scheduler.create (Sim.Cluster.view cluster) in
    let ids = Transformer.Id_gen.create () in
    List.iteri
      (fun i req ->
        Hire_scheduler.submit sched ~time:0.0 (poly_of_req ~ids ~job_id:i ~seed:21 req))
      [ inc_req (); server_only_req 5; inc_req ~service:"harmonia" () ];
    drive_rounds sched cluster [ 0.2; 0.6; 1.0; 1.4; 1.8 ]
    |> List.map (fun ((tg : Poly_req.task_group), m) -> (tg.tg_id, m))
  in
  Alcotest.(check (list (pair int int))) "identical placements" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Modes                                                              *)
(* ------------------------------------------------------------------ *)

let mjob_of modes time req =
  let poly = poly_of_req req in
  Schedulers.Modes.submit modes ~time poly;
  List.hd (Schedulers.Modes.jobs modes)

let test_modes_concurrent_race () =
  let modes = Schedulers.Modes.create Schedulers.Modes.Concurrent in
  let job = mjob_of modes 0.0 (inc_req ()) in
  let active = Schedulers.Modes.active_tgs modes job in
  (* The INC variant's groups come before the full server variant. *)
  let index p =
    let rec go i = function
      | [] -> max_int
      | rt :: rest -> if p rt then i else go (i + 1) rest
    in
    go 0 active
  in
  let net_idx = index (fun rt -> Poly_req.is_network rt.Schedulers.Modes.tg) in
  let full_idx =
    index (fun rt ->
        (not (Poly_req.is_network rt.Schedulers.Modes.tg))
        && rt.Schedulers.Modes.tg.Poly_req.count = 10)
  in
  Alcotest.(check bool) "inc variant offered before server variant" true (net_idx < full_idx);
  (* Placing an INC task decides the job for INC and drops the full
     server variant. *)
  let inc_rt = List.find (fun rt -> Poly_req.is_network rt.Schedulers.Modes.tg) active in
  let dropped = Schedulers.Modes.note_placement modes ~time:0.1 job inc_rt ~machine:5 in
  Alcotest.(check int) "server variant dropped" 1 (List.length dropped);
  Alcotest.(check bool) "decided inc" true (job.Schedulers.Modes.decision = Schedulers.Modes.Inc)

let test_modes_concurrent_server_wins () =
  let modes = Schedulers.Modes.create Schedulers.Modes.Concurrent in
  let job = mjob_of modes 0.0 (inc_req ()) in
  let active = Schedulers.Modes.active_tgs modes job in
  let srv_rt =
    List.find
      (fun rt ->
        (not (Poly_req.is_network rt.Schedulers.Modes.tg))
        && rt.Schedulers.Modes.tg.Poly_req.count = 10)
      active
  in
  let dropped = Schedulers.Modes.note_placement modes ~time:0.1 job srv_rt ~machine:30 in
  Alcotest.(check bool) "inc variant dropped" true
    (List.exists Poly_req.is_network dropped);
  Alcotest.(check bool) "decided server" true
    (job.Schedulers.Modes.decision = Schedulers.Modes.Server)

let test_modes_timeout_fallback () =
  let modes = Schedulers.Modes.create Schedulers.Modes.Timeout in
  let job = mjob_of modes 0.0 (inc_req ()) in
  (* Only the INC variant is queued: the full server group is absent. *)
  Alcotest.(check bool) "starts on inc variant" true
    (List.for_all
       (fun rt -> rt.Schedulers.Modes.tg.Poly_req.count <> 10)
       (Schedulers.Modes.active_tgs modes job));
  Alcotest.(check bool) "network groups queued" true
    (List.exists
       (fun rt -> Poly_req.is_network rt.Schedulers.Modes.tg)
       (Schedulers.Modes.active_tgs modes job));
  (* Deadline is 10% of the job duration (30 s -> 2.7+ s given savings). *)
  let cancelled = Schedulers.Modes.tick modes ~time:10.0 in
  Alcotest.(check bool) "inc cancelled" true (List.exists Poly_req.is_network cancelled);
  Alcotest.(check bool) "fell back to servers" true
    (List.for_all
       (fun rt -> not (Poly_req.is_network rt.Schedulers.Modes.tg))
       (Schedulers.Modes.active_tgs modes job))

let test_modes_revert_after () =
  let modes = Schedulers.Modes.create ~revert_after:60.0 Schedulers.Modes.Concurrent in
  let job = mjob_of modes 0.0 (inc_req ()) in
  let inc_rt =
    List.find
      (fun rt -> Poly_req.is_network rt.Schedulers.Modes.tg)
      (Schedulers.Modes.active_tgs modes job)
  in
  ignore (Schedulers.Modes.note_placement modes ~time:0.1 job inc_rt ~machine:5);
  (* Still 2 chain slots missing after a minute: revert to servers. *)
  let cancelled = Schedulers.Modes.tick modes ~time:61.0 in
  Alcotest.(check bool) "reverted" true (job.Schedulers.Modes.decision = Schedulers.Modes.Server);
  Alcotest.(check bool) "remaining inc work cancelled" true
    (List.exists Poly_req.is_network cancelled)

let test_modes_pending_and_cleanup () =
  let modes = Schedulers.Modes.create Schedulers.Modes.Concurrent in
  let job = mjob_of modes 0.0 (server_only_req 2) in
  Alcotest.(check bool) "pending" true (Schedulers.Modes.pending modes);
  List.iter
    (fun rt ->
      for _ = 1 to rt.Schedulers.Modes.remaining do
        ignore (Schedulers.Modes.note_placement modes ~time:0.1 job rt ~machine:40)
      done)
    (Schedulers.Modes.active_tgs modes job);
  Alcotest.(check bool) "drained" false (Schedulers.Modes.pending modes);
  Schedulers.Modes.cleanup modes;
  Alcotest.(check int) "cleaned" 0 (List.length (Schedulers.Modes.jobs modes))

(* ------------------------------------------------------------------ *)
(* Scenario                                                           *)
(* ------------------------------------------------------------------ *)

let trace ~horizon seed =
  Workload.Trace_gen.generate
    { Workload.Trace_gen.default with arrival_rate = 0.5 }
    (Rng.create seed) ~horizon

let test_scenario_mu_extremes () =
  let jobs = trace ~horizon:400.0 11 in
  let none = Sim.Scenario.build store (Rng.create 1) ~mu:0.0 jobs in
  Alcotest.(check (float 1e-9)) "mu=0" 0.0 (Sim.Scenario.inc_fraction none);
  let all = Sim.Scenario.build store (Rng.create 1) ~mu:1.0 jobs in
  Alcotest.(check (float 1e-9)) "mu=1" 1.0 (Sim.Scenario.inc_fraction all)

let test_scenario_mu_middle () =
  let jobs = trace ~horizon:2000.0 12 in
  let s = Sim.Scenario.build store (Rng.create 2) ~mu:0.5 jobs in
  let f = Sim.Scenario.inc_fraction s in
  Alcotest.(check bool) (Printf.sprintf "mu=0.5 -> %.2f" f) true (f > 0.35 && f < 0.65)

let test_scenario_unique_tg_ids () =
  let jobs = trace ~horizon:400.0 13 in
  let s = Sim.Scenario.build store (Rng.create 3) ~mu:0.8 jobs in
  let ids =
    List.concat_map
      (fun (_, p) -> List.map (fun tg -> tg.Poly_req.tg_id) p.Poly_req.task_groups)
      s.Sim.Scenario.arrivals
  in
  Alcotest.(check int) "unique" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_scenario_rejects_bad_mu () =
  Alcotest.(check bool) "mu out of range" true
    (try
       ignore (Sim.Scenario.build store (Rng.create 1) ~mu:1.5 []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Baseline policies                                                  *)
(* ------------------------------------------------------------------ *)

let run_policy_round sched ~time = (sched : Sim.Scheduler_intf.t).round ~time

let test_yarn_rack_awareness () =
  (* Both tasks of a job should land under the same ToR (delay/rack-aware
     placement), even though many other servers are free. *)
  let cluster = make_cluster () in
  let sched = Schedulers.Registry.create "yarn-concurrent" ~seed:1 cluster in
  sched.submit ~time:0.0 (poly_of_req (server_only_req 2));
  let res = run_policy_round sched ~time:0.0 in
  Alcotest.(check int) "both placed" 2 (List.length res.placements);
  let topo = Sim.Cluster.topo cluster in
  match res.placements with
  | [ a; b ] ->
      Alcotest.(check int) "same rack"
        (Topology.Fat_tree.tor_of_server topo a.machine)
        (Topology.Fat_tree.tor_of_server topo b.machine)
  | _ -> Alcotest.fail "expected two placements"

let test_yarn_service_priority () =
  (* The service-class job drains before the earlier batch job. *)
  let cluster = make_cluster () in
  let sched = Schedulers.Registry.create "yarn-concurrent" ~seed:1 cluster in
  let ids = Transformer.Id_gen.create () in
  let mk priority job_id =
    Transformer.transform store ids (Rng.create 5) ~job_id ~arrival:0.0
      { (server_only_req 1) with Comp_req.priority = priority }
  in
  sched.submit ~time:0.0 (mk Workload.Job.Batch 0);
  sched.submit ~time:0.0 (mk Workload.Job.Service 1);
  let res = run_policy_round sched ~time:0.0 in
  match res.placements with
  | first :: _ ->
      Alcotest.(check int) "service job first" 1 first.Sim.Scheduler_intf.tg.Poly_req.job_id
  | [] -> Alcotest.fail "nothing placed"

let test_k8_round_robin_spreads () =
  (* The resumed cursor spreads consecutive single-task jobs over
     distinct machines. *)
  let cluster = make_cluster () in
  let sched = Schedulers.Registry.create "k8-concurrent" ~seed:1 cluster in
  let ids = Transformer.Id_gen.create () in
  for i = 0 to 3 do
    sched.submit ~time:0.0
      (Transformer.transform store ids (Rng.create 6) ~job_id:i ~arrival:0.0
         (server_only_req 1))
  done;
  let res = run_policy_round sched ~time:0.0 in
  let machines = List.map (fun p -> p.Sim.Scheduler_intf.machine) res.placements in
  Alcotest.(check int) "four placements" 4 (List.length machines);
  Alcotest.(check int) "all distinct" 4 (List.length (List.sort_uniq compare machines))

let test_sparrow_places_via_sampling () =
  let cluster = make_cluster () in
  let sched = Schedulers.Registry.create "sparrow-concurrent" ~seed:7 cluster in
  sched.submit ~time:0.0 (poly_of_req (server_only_req 3));
  let res = run_policy_round sched ~time:0.0 in
  Alcotest.(check int) "all reservations start" 3 (List.length res.placements);
  Alcotest.(check bool) "drained" false (sched.pending ())

let test_baseline_timeout_falls_back_end_to_end () =
  (* No capable switch: the timeout-mode baseline must eventually serve
     the job on servers. *)
  let cluster = make_cluster ~fraction:0.0001 () in
  let sched = Schedulers.Registry.create "k8-timeout" ~seed:1 cluster in
  sched.submit ~time:0.0 (poly_of_req (inc_req ()));
  let r1 = run_policy_round sched ~time:0.0 in
  (* The chain needs 3 distinct switches but at most one exists. *)
  let network_placements =
    List.filter (fun p -> Poly_req.is_network p.Sim.Scheduler_intf.tg) r1.placements
  in
  Alcotest.(check bool) "inc not fully placeable" true (List.length network_placements < 3);
  let r2 = run_policy_round sched ~time:10.0 (* past the 10% deadline *) in
  Alcotest.(check bool) "fallback cancelled inc work" true
    (List.exists Poly_req.is_network (r1.cancelled @ r2.cancelled));
  let served_servers =
    List.filter
      (fun p -> not (Poly_req.is_network p.Sim.Scheduler_intf.tg))
      (r1.placements @ r2.placements)
  in
  Alcotest.(check bool) "server variant placed" true (List.length served_servers >= 10)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_lifecycle () =
  let topo = Topology.Fat_tree.create ~k:4 in
  let m = Sim.Metrics.create topo in
  let poly = poly_of_req (inc_req ()) in
  Sim.Metrics.on_submit m ~time:0.0 poly;
  (* Serve the INC variant: network TG fully, cancel the full server
     variant. *)
  let net_tg = List.hd (Poly_req.network_groups poly) in
  let full_server =
    List.find
      (fun tg -> (not (Poly_req.is_network tg)) && tg.Poly_req.count = 10)
      poly.Poly_req.task_groups
  in
  Sim.Metrics.on_cancel m ~time:0.5 ~tg:full_server;
  let switches = Topology.Fat_tree.tor_switches topo in
  for i = 0 to net_tg.Poly_req.count - 1 do
    Sim.Metrics.on_place m ~time:1.0 ~tg:net_tg ~machine:switches.(i)
      ~charged:(Some (Vec.of_list [ 0.0; 10.0; 6.0 ]))
  done;
  (* The reduced server variant group. *)
  let reduced =
    List.find
      (fun tg -> (not (Poly_req.is_network tg)) && tg.Poly_req.count < 10)
      poly.Poly_req.task_groups
  in
  let servers = Topology.Fat_tree.servers topo in
  for i = 0 to reduced.Poly_req.count - 1 do
    Sim.Metrics.on_place m ~time:2.0 ~tg:reduced ~machine:servers.(i) ~charged:None
  done;
  Sim.Metrics.finalize m ~time:10.0;
  let r = Sim.Metrics.report m in
  Alcotest.(check int) "one inc job" 1 r.Sim.Metrics.inc_jobs_total;
  Alcotest.(check int) "served" 1 r.Sim.Metrics.inc_jobs_served;
  Alcotest.(check int) "no unserved tgs" 0 r.Sim.Metrics.inc_tgs_unserved;
  Alcotest.(check int) "latency samples" 2 (Obs.Histogram.count r.Sim.Metrics.placement_latency);
  Alcotest.(check bool) "switch load accounted" true
    (r.Sim.Metrics.switch_load.(1) > 0.0);
  Alcotest.(check int) "detour sample" 1 r.Sim.Metrics.detour_samples

let test_metrics_unserved_inc () =
  let topo = Topology.Fat_tree.create ~k:4 in
  let m = Sim.Metrics.create topo in
  let poly = poly_of_req (inc_req ()) in
  Sim.Metrics.on_submit m ~time:0.0 poly;
  let net_tg = List.hd (Poly_req.network_groups poly) in
  Sim.Metrics.on_cancel m ~time:1.0 ~tg:net_tg;
  Sim.Metrics.finalize m ~time:5.0;
  let r = Sim.Metrics.report m in
  Alcotest.(check int) "not served" 0 r.Sim.Metrics.inc_jobs_served;
  Alcotest.(check int) "unserved tg" 1 r.Sim.Metrics.inc_tgs_unserved;
  Alcotest.(check (float 1e-9)) "ratio" 1.0 (Sim.Metrics.inc_tg_unserved_ratio r)

(* ------------------------------------------------------------------ *)
(* Full simulations                                                   *)
(* ------------------------------------------------------------------ *)

let small_spec scheduler =
  (* A k=4 cluster is tiny, so the offered load is cranked up to get a
     meaningful number of jobs into a short horizon. *)
  {
    Harness.Experiment.default with
    scheduler;
    k = 4;
    horizon = 240.0;
    mu = 0.7;
    target_utilization = 2.0;
  }

let test_all_schedulers_run () =
  List.iter
    (fun name ->
      let r = Harness.Experiment.run (small_spec name) in
      Alcotest.(check bool) (name ^ " processed jobs") true (r.Sim.Metrics.jobs_total > 0);
      Alcotest.(check bool)
        (name ^ " placed something")
        true
        (r.Sim.Metrics.tgs_satisfied > 0))
    Schedulers.Registry.names

let test_simulation_deterministic () =
  let run () =
    let r = Harness.Experiment.run (small_spec "hire") in
    ( r.Sim.Metrics.inc_jobs_served,
      r.Sim.Metrics.tgs_satisfied,
      Obs.Histogram.count r.Sim.Metrics.placement_latency )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "reproducible" true (a = b)

let test_simulation_seeds_vary () =
  let r1 = Harness.Experiment.run (small_spec "hire") in
  let r2 = Harness.Experiment.run { (small_spec "hire") with seed = 99 } in
  Alcotest.(check bool) "different traces" true
    (r1.Sim.Metrics.jobs_total <> r2.Sim.Metrics.jobs_total
    || r1.Sim.Metrics.tgs_satisfied <> r2.Sim.Metrics.tgs_satisfied)

let test_gang_semantics () =
  (* With gang on, no task of a group completes before the group is fully
     placed: run the same arrival stream with and without gang; gang can
     only delay completions, so end-time(gang) >= end-time(no gang). *)
  let run gang =
    let rng = Rng.create 31 in
    let cluster = make_cluster ~seed:31 () in
    let ids = Transformer.Id_gen.create () in
    let arrivals =
      List.init 4 (fun i ->
          ( float_of_int i,
            Transformer.transform store ids rng ~job_id:i ~arrival:(float_of_int i)
              (server_only_req 20) ))
    in
    let sched = Schedulers.Registry.create "hire" ~seed:31 cluster in
    let config = { Sim.Simulator.default_config with gang } in
    let result = Sim.Simulator.run ~config cluster sched arrivals in
    (result.Sim.Simulator.end_time, result.Sim.Simulator.report.Sim.Metrics.tgs_satisfied)
  in
  let end_plain, sat_plain = run false in
  let end_gang, sat_gang = run true in
  Alcotest.(check int) "same groups satisfied" sat_plain sat_gang;
  Alcotest.(check bool) "gang cannot finish earlier" true (end_gang >= end_plain -. 1e-9)

let test_csv_export_row () =
  let r = Harness.Experiment.run (small_spec "hire") in
  let row =
    Sim.Csv_export.row ~scheduler:"hire" ~mu:0.7 ~setup:Sim.Cluster.Homogeneous ~seed:1 r
  in
  let n_fields = List.length (String.split_on_char ',' row) in
  let n_cols = List.length (String.split_on_char ',' Sim.Csv_export.header) in
  Alcotest.(check int) "column count matches header" n_cols n_fields;
  let path = Filename.temp_file "hire_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sim.Csv_export.write_file path [ row ];
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int) "header + one row" 2 (List.length !lines))

let test_registry_unknown () =
  let cluster = make_cluster () in
  Alcotest.(check bool) "unknown rejected" true
    (try
       ignore (Schedulers.Registry.create "nonsense" ~seed:1 cluster);
       false
     with Invalid_argument _ -> true)

(* Resources must be fully released once every job has finished. *)
let test_resources_conserved_after_drain () =
  List.iter
    (fun name ->
      let rng = Rng.create 17 in
      let cluster = make_cluster ~seed:17 () in
      let ids = Transformer.Id_gen.create () in
      let arrivals =
        List.init 6 (fun i ->
            let req = if i mod 2 = 0 then inc_req () else server_only_req 3 in
            ( float_of_int i,
              Transformer.transform store ids rng ~job_id:i ~arrival:(float_of_int i) req ))
      in
      let sched = Schedulers.Registry.create name ~seed:17 cluster in
      let _ = Sim.Simulator.run cluster sched arrivals in
      Alcotest.(check bool)
        (name ^ ": switches fully released")
        true
        (Vec.is_zero (Sim.Cluster.switch_used_total cluster));
      Array.iter
        (fun s ->
          Alcotest.(check bool)
            (name ^ ": server fully released")
            true
            (Vec.equal
               (Sim.Cluster.server_available cluster s)
               (Sim.Cluster.server_capacity cluster)))
        (Topology.Fat_tree.servers (Sim.Cluster.topo cluster)))
    [ "hire"; "yarn-concurrent"; "k8-timeout"; "sparrow-concurrent"; "coco-timeout" ]

let () =
  Alcotest.run "scheduling"
    [
      ( "event_queue",
        [
          Alcotest.test_case "order" `Quick test_event_queue_order;
          Alcotest.test_case "nan" `Quick test_event_queue_rejects_nan;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "setup" `Quick test_cluster_setup;
          Alcotest.test_case "capable fraction" `Quick test_cluster_capable_fraction;
          Alcotest.test_case "heterogeneous" `Quick test_cluster_heterogeneous_two_services;
          Alcotest.test_case "server ledger" `Quick test_cluster_server_ledger;
          Alcotest.test_case "network ledger" `Quick test_cluster_network_ledger_shared_vs_not;
        ] );
      ( "flow_network",
        [
          Alcotest.test_case "places server job" `Quick test_flow_network_places_server_job;
          Alcotest.test_case "flavor pick prefers inc" `Quick
            test_flow_network_flavor_pick_prefers_inc;
          Alcotest.test_case "no switch when unsupported" `Quick
            test_flow_network_no_inc_when_unsupported;
          Alcotest.test_case "respects capacity" `Quick test_flow_network_respects_capacity;
          Alcotest.test_case "one task per machine" `Quick
            test_flow_network_one_task_per_machine_per_round;
          Alcotest.test_case "solver optimal" `Quick test_flow_network_solver_optimal;
        ] );
      ( "hire_scheduler",
        [
          Alcotest.test_case "serves inc job" `Quick test_hire_scheduler_serves_inc_job;
          Alcotest.test_case "fallback when impossible" `Quick
            test_hire_scheduler_falls_back_when_inc_impossible;
          Alcotest.test_case "deterministic" `Quick test_hire_scheduler_determinism;
        ] );
      ( "modes",
        [
          Alcotest.test_case "concurrent inc race" `Quick test_modes_concurrent_race;
          Alcotest.test_case "concurrent server wins" `Quick test_modes_concurrent_server_wins;
          Alcotest.test_case "timeout fallback" `Quick test_modes_timeout_fallback;
          Alcotest.test_case "starvation revert" `Quick test_modes_revert_after;
          Alcotest.test_case "pending/cleanup" `Quick test_modes_pending_and_cleanup;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "mu extremes" `Quick test_scenario_mu_extremes;
          Alcotest.test_case "mu middle" `Slow test_scenario_mu_middle;
          Alcotest.test_case "unique tg ids" `Quick test_scenario_unique_tg_ids;
          Alcotest.test_case "bad mu" `Quick test_scenario_rejects_bad_mu;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "yarn rack awareness" `Quick test_yarn_rack_awareness;
          Alcotest.test_case "yarn service priority" `Quick test_yarn_service_priority;
          Alcotest.test_case "k8 round robin" `Quick test_k8_round_robin_spreads;
          Alcotest.test_case "sparrow sampling" `Quick test_sparrow_places_via_sampling;
          Alcotest.test_case "timeout fallback e2e" `Quick
            test_baseline_timeout_falls_back_end_to_end;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "lifecycle" `Quick test_metrics_lifecycle;
          Alcotest.test_case "unserved inc" `Quick test_metrics_unserved_inc;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "all schedulers run" `Slow test_all_schedulers_run;
          Alcotest.test_case "deterministic" `Slow test_simulation_deterministic;
          Alcotest.test_case "seeds vary" `Slow test_simulation_seeds_vary;
          Alcotest.test_case "gang semantics" `Slow test_gang_semantics;
          Alcotest.test_case "csv export" `Slow test_csv_export_row;
          Alcotest.test_case "unknown scheduler" `Quick test_registry_unknown;
          Alcotest.test_case "resources conserved" `Slow test_resources_conserved_after_drain;
        ] );
    ]
