(* Tests for the journal subsystem (docs/JOURNAL.md): the binary codec,
   WAL framing against adversarial inputs (torn tails, flipped CRC
   bytes, duplicate sequence numbers, empty/garbage files — each fails
   closed with a structured error), checkpoint atomicity, Wal record
   round-trips, simulator snapshot/restore equivalence, and the headline
   crash-recovery property: kill the journaled service at any record
   index, recover, and land byte-for-byte on the uninterrupted run. *)

module Codec = Prelude.Codec
module Enc = Codec.Enc
module Dec = Codec.Dec
module Sink = Journal.Sink
module Source = Journal.Source
module Checkpoint = Journal.Checkpoint
module Chaos = Journal.Chaos
module Error = Journal.Error
module Experiment = Harness.Experiment

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)
(* ------------------------------------------------------------------ *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hire_journal_test_%d_%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let write_raw path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let flip_byte bytes pos =
  let b = Bytes.of_string bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let e = Enc.create () in
  Enc.byte e 0xAB;
  Enc.uint e 0;
  Enc.uint e 300;
  Enc.uint e max_int;
  Enc.int e 0;
  Enc.int e (-1);
  Enc.int e min_int;
  Enc.int e max_int;
  Enc.bool e true;
  Enc.bool e false;
  Enc.f64 e 0.125;
  Enc.f64 e (-0.0);
  Enc.f64 e infinity;
  Enc.string e "";
  Enc.string e "hello\x00world";
  Enc.option e Enc.int None;
  Enc.option e Enc.int (Some 42);
  Enc.list e Enc.string [ "a"; "bb"; "" ];
  Enc.array e Enc.f64 [| 1.5; -2.5 |];
  Enc.float_array e [| 0.0; 3.25; -1.0 |];
  let d = Dec.of_string (Enc.to_string e) in
  Alcotest.(check int) "byte" 0xAB (Dec.byte d);
  Alcotest.(check int) "uint 0" 0 (Dec.uint d);
  Alcotest.(check int) "uint 300" 300 (Dec.uint d);
  Alcotest.(check int) "uint max" max_int (Dec.uint d);
  Alcotest.(check int) "int 0" 0 (Dec.int d);
  Alcotest.(check int) "int -1" (-1) (Dec.int d);
  Alcotest.(check int) "int min" min_int (Dec.int d);
  Alcotest.(check int) "int max" max_int (Dec.int d);
  Alcotest.(check bool) "bool t" true (Dec.bool d);
  Alcotest.(check bool) "bool f" false (Dec.bool d);
  Alcotest.(check (float 0.0)) "f64" 0.125 (Dec.f64 d);
  Alcotest.(check bool) "-0." true (1.0 /. Dec.f64 d = neg_infinity);
  Alcotest.(check (float 0.0)) "inf" infinity (Dec.f64 d);
  Alcotest.(check string) "empty string" "" (Dec.string d);
  Alcotest.(check string) "string" "hello\x00world" (Dec.string d);
  Alcotest.(check (option int)) "none" None (Dec.option d Dec.int);
  Alcotest.(check (option int)) "some" (Some 42) (Dec.option d Dec.int);
  Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ] (Dec.list d Dec.string);
  Alcotest.(check (array (float 0.0))) "array" [| 1.5; -2.5 |] (Dec.array d Dec.f64);
  Alcotest.(check (array (float 0.0))) "float_array" [| 0.0; 3.25; -1.0 |] (Dec.float_array d);
  Alcotest.(check bool) "at end" true (Dec.at_end d)

let test_codec_fails_closed () =
  let e = Enc.create () in
  Enc.string e "payload";
  let s = Enc.to_string e in
  let truncated = String.sub s 0 (String.length s - 3) in
  Alcotest.(check bool) "truncated raises" true
    (match Dec.string (Dec.of_string truncated) with
    | exception Codec.Error _ -> true
    | _ -> false);
  Alcotest.(check bool) "decode_string is an Error" true
    (Result.is_error (Codec.decode_string truncated (fun d -> Dec.string d)))

let prop_codec_int_roundtrip =
  QCheck.Test.make ~name:"codec: zigzag int round-trips" ~count:500 QCheck.int (fun i ->
      let e = Enc.create () in
      Enc.int e i;
      let d = Dec.of_string (Enc.to_string e) in
      Dec.int d = i && Dec.at_end d)

(* ------------------------------------------------------------------ *)
(* WAL framing: round-trip and adversarial inputs                      *)
(* ------------------------------------------------------------------ *)

let make_journal dir records =
  let path = Filename.concat dir "wal.bin" in
  let sink = Sink.create ~path ~header:"spec-blob" () in
  List.iter (fun r -> ignore (Sink.append sink r)) records;
  Sink.commit sink;
  Sink.close sink;
  path

let load_exn path =
  match Source.load ~path with
  | Ok l -> l
  | Error e -> Alcotest.failf "unexpected load error: %s" (Error.to_string e)

let test_sink_source_roundtrip () =
  with_dir @@ fun dir ->
  let records = [ "alpha"; ""; "gamma\x00\xff"; String.make 1000 'x' ] in
  let path = make_journal dir records in
  let l = load_exn path in
  Alcotest.(check string) "header" "spec-blob" l.Source.header;
  Alcotest.(check (list string)) "records" records (Array.to_list l.Source.records);
  Alcotest.(check bool) "clean tail" true (l.Source.tail = Source.Clean)

let test_create_refuses_existing () =
  with_dir @@ fun dir ->
  let path = make_journal dir [ "r0" ] in
  Alcotest.(check bool) "second create fails closed" true
    (match Sink.create ~path ~header:"other" () with
    | exception Error.Journal_error (Error.State _) -> true
    | _ -> false)

let test_empty_file_fails_closed () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "wal.bin" in
  write_raw path "";
  Alcotest.(check bool) "Empty" true
    (match Source.load ~path with Error (Error.Empty _) -> true | _ -> false);
  Alcotest.(check bool) "missing is Missing" true
    (match Source.load ~path:(Filename.concat dir "nope.bin") with
    | Error (Error.Missing _) -> true
    | _ -> false)

let test_bad_magic_fails_closed () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "wal.bin" in
  write_raw path "NOTAWAL0garbage-bytes-here";
  Alcotest.(check bool) "Bad_magic" true
    (match Source.load ~path with Error (Error.Bad_magic _) -> true | _ -> false)

let test_torn_tail_truncated_mid_record () =
  with_dir @@ fun dir ->
  let path = make_journal dir [ "first"; "second"; "third" ] in
  let whole = Source.read_file path in
  (* Cut into the last frame: an incomplete prefix, the signature of a
     crash mid-append. *)
  write_raw path (String.sub whole 0 (String.length whole - 3));
  (match Source.load ~path with
  | Ok l ->
      Alcotest.(check (list string)) "whole records survive" [ "first"; "second" ]
        (Array.to_list l.Source.records);
      Alcotest.(check bool) "tail reported torn" true
        (match l.Source.tail with Source.Torn _ -> true | Source.Clean -> false)
  | Error e -> Alcotest.failf "torn tail must load: %s" (Error.to_string e));
  Alcotest.(check bool) "strict readers reject the tear" true
    (match Source.load_strict ~path with Error (Error.Torn_tail _) -> true | _ -> false)

let test_flipped_crc_byte_fails_closed () =
  with_dir @@ fun dir ->
  let path = make_journal dir [ "first"; "second"; "third" ] in
  let whole = Source.read_file path in
  (* Flip one byte inside the *middle* record's frame: a complete frame
     that no longer checksums — corruption, not a crash artefact. *)
  let l = load_exn path in
  ignore l;
  let tail_frame = Journal.Frame.encode_record ~seq:2 "third" in
  let mid_frame = Journal.Frame.encode_record ~seq:1 "second" in
  let mid_off = String.length whole - String.length tail_frame - String.length mid_frame in
  (* +4 lands inside the CRC field of the mid frame. *)
  write_raw path (flip_byte whole (mid_off + 4));
  (match Source.load ~path with
  | Error (Error.Corrupt_record { seq; _ }) -> Alcotest.(check int) "seq named" 1 seq
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "corrupt record must not load");
  (* Flipping a payload byte (not the CRC field) fails the same way. *)
  write_raw path (flip_byte whole (mid_off + 9));
  Alcotest.(check bool) "payload flip also fails closed" true
    (match Source.load ~path with Error (Error.Corrupt_record _) -> true | _ -> false)

let test_duplicate_seq_fails_closed () =
  with_dir @@ fun dir ->
  let path = make_journal dir [ "first"; "second" ] in
  let whole = Source.read_file path in
  (* A well-formed frame re-using sequence 1: replayed/misordered write. *)
  write_raw path (whole ^ Journal.Frame.encode_record ~seq:1 "again");
  (match Source.load ~path with
  | Error (Error.Duplicate_seq { seq; _ }) -> Alcotest.(check int) "seq named" 1 seq
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "duplicate seq must not load");
  (* A gap (skipping ahead) fails closed too. *)
  write_raw path (whole ^ Journal.Frame.encode_record ~seq:7 "gap");
  Alcotest.(check bool) "gapped seq fails closed" true
    (match Source.load ~path with Error _ -> true | Ok _ -> false)

let test_open_append_truncates_tear () =
  with_dir @@ fun dir ->
  let path = make_journal dir [ "first"; "second" ] in
  let whole = Source.read_file path in
  write_raw path (whole ^ "\x0a\x00\x00");
  let l = load_exn path in
  Alcotest.(check bool) "torn before reopen" true (l.Source.tail <> Source.Clean);
  let sink =
    Sink.open_append ~path ~valid_end:l.Source.valid_end
      ~next_seq:(Array.length l.Source.records)
      ()
  in
  ignore (Sink.append sink "third");
  Sink.commit sink;
  Sink.close sink;
  let l = load_exn path in
  Alcotest.(check (list string)) "tear cut, log continued" [ "first"; "second"; "third" ]
    (Array.to_list l.Source.records);
  Alcotest.(check bool) "clean after reopen" true (l.Source.tail = Source.Clean)

let test_chaos_tears_exactly () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "wal.bin" in
  Fun.protect ~finally:Chaos.disarm @@ fun () ->
  Chaos.arm ~crash_at:2 ~tear:3 ();
  let sink = Sink.create ~path ~header:"h" () in
  ignore (Sink.append sink "r0");
  ignore (Sink.append sink "r1");
  (match Sink.append sink "r2" with
  | exception Chaos.Crashed seq -> Alcotest.(check int) "crashed at armed seq" 2 seq
  | _ -> Alcotest.fail "armed crash did not fire");
  (* The file holds the two whole records plus a 3-byte torn prefix. *)
  let l = load_exn path in
  Alcotest.(check (list string)) "records before the crash" [ "r0"; "r1" ]
    (Array.to_list l.Source.records);
  Alcotest.(check bool) "torn" true (l.Source.tail <> Source.Clean)

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip_and_fallback () =
  with_dir @@ fun dir ->
  Checkpoint.write ~dir ~gen:0 ~upto_seq:10 "blob-0";
  Checkpoint.write ~dir ~gen:1 ~upto_seq:20 "blob-1";
  Checkpoint.write ~dir ~gen:2 ~upto_seq:30 "blob-2";
  (match Checkpoint.latest ~dir with
  | Some { Checkpoint.gen; upto_seq; blob } ->
      Alcotest.(check int) "newest gen" 2 gen;
      Alcotest.(check int) "upto_seq" 30 upto_seq;
      Alcotest.(check string) "blob" "blob-2" blob
  | None -> Alcotest.fail "latest missing");
  Alcotest.(check (list int)) "generations newest first" [ 2; 1; 0 ]
    (Checkpoint.generations ~dir);
  (* Corrupt the newest generation: latest skips it for the previous
     one instead of failing or returning damage. *)
  let p2 = Filename.concat dir "checkpoint-00000002.bin" in
  write_raw p2 (flip_byte (Source.read_file p2) (String.length (Source.read_file p2) - 1));
  (match Checkpoint.latest ~dir with
  | Some { Checkpoint.gen; blob; _ } ->
      Alcotest.(check int) "fell back" 1 gen;
      Alcotest.(check string) "older blob intact" "blob-1" blob
  | None -> Alcotest.fail "fallback missing");
  Checkpoint.prune ~dir ~keep:1;
  Alcotest.(check (list int)) "pruned to newest" [ 2 ] (Checkpoint.generations ~dir)

(* ------------------------------------------------------------------ *)
(* Wal record codec                                                    *)
(* ------------------------------------------------------------------ *)

let test_wal_record_roundtrip () =
  (* A realistic PolyReq payload for the Admit record: produced by the
     actual translation path, so the codec is exercised on the same
     shapes the admission server journals (docs/SERVER.md). *)
  let poly =
    let store = Hire.Comp_store.default () in
    let job =
      {
        Workload.Job.id = 1_000_000_007;
        arrival = 0.0;
        priority = Workload.Job.Batch;
        groups =
          [ { Workload.Job.tg_index = 0; count = 2; cpu = 1.0; mem = 2.0; duration = 10.0 } ];
      }
    in
    let ids = Hire.Transformer.Id_gen.create ~first:1_000_000_448 () in
    Hire.Transformer.transform store ids (Prelude.Rng.create 42)
      ~job_id:1_000_000_007 ~arrival:0.0
      (Hire.Comp_req.of_job job)
  in
  let records =
    [
      Sim.Wal.Submit { time = 1.5; job_id = 7 };
      Sim.Wal.Resubmit { time = 2.5; job_id = 7; tg_ids = [ 3; 4; 5 ] };
      Sim.Wal.Round
        {
          time = 3.0;
          round = 12;
          placements = [ (1, 100); (2, 200) ];
          cancelled = [ 9 ];
          think = 0.0125;
        };
      Sim.Wal.Commit { round = 12 };
      Sim.Wal.Complete { time = 4.0; token = 33; tg_id = 2; machine = 200 };
      Sim.Wal.Node_fail { time = 5.0; node = 17; killed = [ (2, 3); (4, 1) ] };
      Sim.Wal.Requeue { time = 6.0; tg_id = 2; lost = 3; attempt = 1; retry_time = 7.5 };
      Sim.Wal.Fault_cancel { time = 8.0; tg_id = 4; lost = 1 };
      Sim.Wal.Node_recover { time = 9.0; node = 17; downtime_s = 4.0 };
      Sim.Wal.Admit { admit_id = 7; client = "bench-7"; poly };
      Sim.Wal.Admit { admit_id = 8; client = ""; poly };
      Sim.Wal.Inject { time = 2.5; admit_ids = [ 0; 1; 5 ] };
      Sim.Wal.Inject { time = 3.5; admit_ids = [] };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "is_input agrees with is_input_encoded: %s" (Sim.Wal.kind r))
        (Sim.Wal.is_input r)
        (Sim.Wal.is_input_encoded (Sim.Wal.encode r)))
    records;
  List.iter
    (fun r ->
      let b = Sim.Wal.encode r in
      Alcotest.(check bool)
        (Printf.sprintf "round-trips: %s" (Format.asprintf "%a" Sim.Wal.pp r))
        true
        (Sim.Wal.decode b = r))
    records;
  Alcotest.(check bool) "garbage fails closed" true
    (match Sim.Wal.decode "\xfegarbage" with
    | exception Codec.Error _ -> true
    | _ -> false);
  Alcotest.(check bool) "trailing bytes fail closed" true
    (match Sim.Wal.decode (Sim.Wal.encode (Sim.Wal.Commit { round = 1 }) ^ "x") with
    | exception Codec.Error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace_io adversarial inputs                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_io_adversarial () =
  let header = Workload.Trace_io.csv_header in
  let good = header ^ "\n1,0.5,batch,0,2,1.0,2.0,10.0" in
  Alcotest.(check bool) "control row parses" true
    (Result.is_ok (Workload.Trace_io.of_csv good));
  let cases =
    [
      ("empty", "");
      ("header only truncated", String.sub header 0 (String.length header / 2));
      ("row truncated mid-field", header ^ "\n1,0.5,batch,0,2,1.");
      ("row with missing columns", header ^ "\n1,0.5,batch,0");
      ("unparsable number", header ^ "\n1,0.5,batch,0,2,abc,2.0,10.0");
      ("negative count", header ^ "\n1,0.5,batch,0,-2,1.0,2.0,10.0");
      ("unknown priority", header ^ "\n1,0.5,urgent,0,2,1.0,2.0,10.0");
      ( "inconsistent job rows",
        header ^ "\n1,0.5,batch,0,2,1.0,2.0,10.0\n1,0.9,batch,1,2,1.0,2.0,10.0" );
    ]
  in
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool) (name ^ " fails closed") true
        (Result.is_error (Workload.Trace_io.of_csv text)))
    cases

(* ------------------------------------------------------------------ *)
(* Spec blob                                                           *)
(* ------------------------------------------------------------------ *)

let test_spec_blob_roundtrip () =
  let specs =
    [
      Experiment.default;
      {
        Experiment.default with
        scheduler = "coco";
        mu = 0.25;
        setup = Sim.Cluster.Heterogeneous;
        k = 4;
        horizon = 123.5;
        seed = 99;
        inc_capable_fraction = None;
        faults = Some Faults.default_spec;
        incremental = false;
        portfolio = true;
      };
      {
        Experiment.default with
        resilience =
          Some
            (Hire.Hire_scheduler.resilience
               ~budget:(Flow.Budget.make ~max_wall_s:0.5 ~max_steps:1000 ())
               ~guard_every:3 ());
      };
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trips: %s" (Experiment.describe s))
        true
        (Experiment.spec_of_blob (Experiment.spec_to_blob s) = s))
    specs;
  Alcotest.(check bool) "garbage fails closed" true
    (match Experiment.spec_of_blob "\xff\xfe\x00" with
    | exception Codec.Error _ -> true
    | _ -> false);
  Alcotest.(check bool) "trailing bytes fail closed" true
    (match Experiment.spec_of_blob (Experiment.spec_to_blob Experiment.default ^ "z") with
    | exception Codec.Error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore equivalence                                      *)
(* ------------------------------------------------------------------ *)

(* A small journaled cell: k=8 keeps the trace non-trivial at a short
   horizon, faults exercise the kill/requeue records, deterministic
   wall times make replay byte-reproducible. *)
let journal_config = { Sim.Simulator.default_config with deterministic_wall = true }

let journal_spec seed =
  {
    Experiment.default with
    seed;
    horizon = 45.0;
    faults =
      Some
        {
          Faults.plan =
            {
              Faults.Plan.default_config with
              server_mtbf = 40.0;
              switch_mtbf = 40.0;
              server_mttr = 5.0;
              switch_mttr = 5.0;
            };
          policy = Faults.Policy.create ~max_retries:2 ();
        };
  }

let report_row spec (report : Sim.Metrics.report) =
  Sim.Csv_export.row ~faults:true ~resilience:false ~scheduler:spec.Experiment.scheduler
    ~mu:spec.Experiment.mu ~setup:spec.Experiment.setup ~seed:spec.Experiment.seed report

let test_snapshot_restore_equivalence () =
  let spec = journal_spec 3 in
  let sim_a = Experiment.prepare ~config:journal_config spec in
  (* Run A halfway, snapshot, and overlay the blob on a freshly built
     world: both must finish with identical reports, and the restored
     state must re-snapshot to the identical blob. *)
  let steps = ref 0 in
  while Sim.Simulator.step sim_a && !steps < 500 do
    incr steps
  done;
  Alcotest.(check bool) "midpoint reached" true (!steps = 500);
  let blob =
    match Sim.Simulator.snapshot sim_a with
    | Some b -> b
    | None -> Alcotest.fail "hire must be snapshotable"
  in
  let sim_b = Experiment.prepare ~config:journal_config spec in
  Sim.Simulator.restore sim_b blob;
  (match Sim.Simulator.ledger_check sim_b with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "restored ledgers drifted: %s" msg);
  (match Sim.Simulator.snapshot sim_b with
  | Some b -> Alcotest.(check bool) "re-snapshot is byte-identical" true (String.equal b blob)
  | None -> Alcotest.fail "restored sim must stay snapshotable");
  while Sim.Simulator.step sim_a do () done;
  while Sim.Simulator.step sim_b do () done;
  let ra = (Sim.Simulator.finish sim_a).Sim.Simulator.report in
  let rb = (Sim.Simulator.finish sim_b).Sim.Simulator.report in
  Alcotest.(check string) "reports identical" (report_row spec ra) (report_row spec rb)

let test_restore_rejects_garbage () =
  let spec = journal_spec 3 in
  let sim = Experiment.prepare ~config:journal_config spec in
  Alcotest.(check bool) "garbage blob fails closed" true
    (match Sim.Simulator.restore sim "\x00\x01garbage" with
    | exception Codec.Error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Service crash recovery                                              *)
(* ------------------------------------------------------------------ *)

let run_uninterrupted spec ~dir ~checkpoint_every =
  let service =
    Sim.Service.start ~dir ~checkpoint_every
      ~header:(Experiment.spec_to_blob spec)
      (Experiment.prepare ~config:journal_config spec)
  in
  (Sim.Service.run service).Sim.Simulator.report

let rebuild header =
  Experiment.prepare ~config:journal_config (Experiment.spec_of_blob header)

let crash_then_recover spec ~dir ~checkpoint_every ~crash_at =
  Fun.protect ~finally:Chaos.disarm @@ fun () ->
  Chaos.arm ~crash_at ();
  (match
     Sim.Service.run
       (Sim.Service.start ~dir ~checkpoint_every
          ~header:(Experiment.spec_to_blob spec)
          (Experiment.prepare ~config:journal_config spec))
   with
  | _ -> Alcotest.fail "armed crash did not fire"
  | exception Chaos.Crashed _ -> ());
  Chaos.disarm ();
  let r = Sim.Service.recover ~dir ~checkpoint_every ~rebuild () in
  (r, (Sim.Service.run r.Sim.Service.service).Sim.Simulator.report)

let wal_bytes dir = Source.read_file (Filename.concat dir "wal.bin")

(* The headline property: crash the journaled service at ANY record
   index, recover, run to completion — the final report row and the
   whole WAL are byte-identical to the uninterrupted run's. *)
let prop_crash_anywhere_recovers =
  QCheck.Test.make ~name:"service: crash at any record index recovers byte-identically"
    ~count:8
    QCheck.(pair (int_range 1 5) (float_range 0.0 1.0))
    (fun (seed, frac) ->
      let spec = journal_spec seed in
      let dir_a = fresh_dir () and dir_b = fresh_dir () in
      Fun.protect
        ~finally:(fun () ->
          rm_rf dir_a;
          rm_rf dir_b)
        (fun () ->
          let report_a = run_uninterrupted spec ~dir:dir_a ~checkpoint_every:7 in
          let l = load_exn (Filename.concat dir_a "wal.bin") in
          let n = Array.length l.Source.records in
          if n < 2 then QCheck.Test.fail_reportf "degenerate run: %d records" n;
          (* Crash on the append of record 1 .. n-1 (0 is inside the
             first event; n-1 the final commit). *)
          let crash_at = 1 + int_of_float (frac *. float_of_int (n - 2)) in
          let recovered, report_b =
            try crash_then_recover spec ~dir:dir_b ~checkpoint_every:7 ~crash_at
            with Error.Journal_error e ->
              QCheck.Test.fail_reportf "seed %d crash@%d/%d: recovery failed: %s" seed
                crash_at n (Error.to_string e)
          in
          if report_row spec report_a <> report_row spec report_b then
            QCheck.Test.fail_reportf "seed %d crash@%d/%d: reports differ\nA: %s\nB: %s"
              seed crash_at n (report_row spec report_a) (report_row spec report_b);
          if not (String.equal (wal_bytes dir_a) (wal_bytes dir_b)) then
            QCheck.Test.fail_reportf
              "seed %d crash@%d/%d (replayed %d): WALs differ" seed crash_at n
              recovered.Sim.Service.replayed;
          true))

let test_recover_from_genesis_without_checkpoints () =
  let spec = journal_spec 2 in
  with_dir @@ fun dir_a ->
  with_dir @@ fun dir_b ->
  let report_a = run_uninterrupted spec ~dir:dir_a ~checkpoint_every:0 in
  let recovered, report_b =
    crash_then_recover spec ~dir:dir_b ~checkpoint_every:0 ~crash_at:40
  in
  Alcotest.(check (option int)) "no checkpoint used" None
    recovered.Sim.Service.from_checkpoint;
  Alcotest.(check int) "whole prefix replayed" 40 recovered.Sim.Service.replayed;
  Alcotest.(check string) "reports identical" (report_row spec report_a)
    (report_row spec report_b);
  Alcotest.(check bool) "WALs identical" true
    (String.equal (wal_bytes dir_a) (wal_bytes dir_b))

let test_recover_refuses_lost_committed_data () =
  let spec = journal_spec 1 in
  with_dir @@ fun dir ->
  let (_ : Sim.Metrics.report) = run_uninterrupted spec ~dir ~checkpoint_every:0 in
  (* A checkpoint claiming to subsume more records than the WAL holds
     means committed data vanished: recovery must fail closed, not
     silently continue from thin air. *)
  Checkpoint.write ~dir ~gen:0 ~upto_seq:1_000_000 "bogus";
  Alcotest.(check bool) "State error" true
    (match Sim.Service.recover ~dir ~checkpoint_every:0 ~rebuild () with
    | exception Error.Journal_error (Error.State _) -> true
    | _ -> false)

let test_torn_tail_counter_increments () =
  let spec = journal_spec 4 in
  with_dir @@ fun dir ->
  let was_enabled = Obs.enabled () in
  Fun.protect ~finally:(fun () -> Obs.set_enabled was_enabled) @@ fun () ->
  Obs.set_enabled true;
  let before = Obs.Registry.counter_value (Obs.Registry.counter "journal.torn_tail") in
  let _, _ = crash_then_recover spec ~dir ~checkpoint_every:5 ~crash_at:60 in
  let after = Obs.Registry.counter_value (Obs.Registry.counter "journal.torn_tail") in
  Alcotest.(check bool) "journal.torn_tail incremented" true (after > before)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "journal"
    [
      ( "codec",
        [
          quick "round-trip" test_codec_roundtrip;
          quick "fails closed" test_codec_fails_closed;
        ]
        @ qt [ prop_codec_int_roundtrip ] );
      ( "framing",
        [
          quick "sink/source round-trip" test_sink_source_roundtrip;
          quick "create refuses existing journal" test_create_refuses_existing;
          quick "empty file fails closed" test_empty_file_fails_closed;
          quick "bad magic fails closed" test_bad_magic_fails_closed;
          quick "truncation mid-record is a torn tail" test_torn_tail_truncated_mid_record;
          quick "flipped CRC byte fails closed" test_flipped_crc_byte_fails_closed;
          quick "duplicate seq fails closed" test_duplicate_seq_fails_closed;
          quick "open_append truncates the tear" test_open_append_truncates_tear;
          quick "chaos tears exactly at the armed seq" test_chaos_tears_exactly;
        ] );
      ( "checkpoint",
        [ quick "round-trip, fallback, prune" test_checkpoint_roundtrip_and_fallback ] );
      ("wal", [ quick "record round-trip" test_wal_record_roundtrip ]);
      ("trace-io", [ quick "adversarial inputs fail closed" test_trace_io_adversarial ]);
      ("spec-blob", [ quick "round-trip" test_spec_blob_roundtrip ]);
      ( "snapshot",
        [
          quick "restore equivalence" test_snapshot_restore_equivalence;
          quick "restore rejects garbage" test_restore_rejects_garbage;
        ] );
      ( "recovery",
        [
          quick "genesis replay without checkpoints"
            test_recover_from_genesis_without_checkpoints;
          quick "refuses lost committed data" test_recover_refuses_lost_committed_data;
          quick "torn tail increments the obs counter" test_torn_tail_counter_increments;
        ]
        @ qt [ prop_crash_anywhere_recovers ] );
    ]
